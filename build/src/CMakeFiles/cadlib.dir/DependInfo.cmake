
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/pipeline.cc" "src/CMakeFiles/cadlib.dir/app/pipeline.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/app/pipeline.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/cadlib.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/common/flags.cc.o.d"
  "/root/repo/src/common/parallel.cc" "src/CMakeFiles/cadlib.dir/common/parallel.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/common/parallel.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/cadlib.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cadlib.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/cadlib.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/common/strings.cc.o.d"
  "/root/repo/src/commute/approx_commute.cc" "src/CMakeFiles/cadlib.dir/commute/approx_commute.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/commute/approx_commute.cc.o.d"
  "/root/repo/src/commute/exact_commute.cc" "src/CMakeFiles/cadlib.dir/commute/exact_commute.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/commute/exact_commute.cc.o.d"
  "/root/repo/src/commute/random_walk.cc" "src/CMakeFiles/cadlib.dir/commute/random_walk.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/commute/random_walk.cc.o.d"
  "/root/repo/src/core/act_detector.cc" "src/CMakeFiles/cadlib.dir/core/act_detector.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/core/act_detector.cc.o.d"
  "/root/repo/src/core/afm_detector.cc" "src/CMakeFiles/cadlib.dir/core/afm_detector.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/core/afm_detector.cc.o.d"
  "/root/repo/src/core/cad_detector.cc" "src/CMakeFiles/cadlib.dir/core/cad_detector.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/core/cad_detector.cc.o.d"
  "/root/repo/src/core/case_classifier.cc" "src/CMakeFiles/cadlib.dir/core/case_classifier.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/core/case_classifier.cc.o.d"
  "/root/repo/src/core/clc_detector.cc" "src/CMakeFiles/cadlib.dir/core/clc_detector.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/core/clc_detector.cc.o.d"
  "/root/repo/src/core/edge_scores.cc" "src/CMakeFiles/cadlib.dir/core/edge_scores.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/core/edge_scores.cc.o.d"
  "/root/repo/src/core/online_monitor.cc" "src/CMakeFiles/cadlib.dir/core/online_monitor.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/core/online_monitor.cc.o.d"
  "/root/repo/src/core/threshold.cc" "src/CMakeFiles/cadlib.dir/core/threshold.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/core/threshold.cc.o.d"
  "/root/repo/src/datagen/dblp_sim.cc" "src/CMakeFiles/cadlib.dir/datagen/dblp_sim.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/datagen/dblp_sim.cc.o.d"
  "/root/repo/src/datagen/enron_sim.cc" "src/CMakeFiles/cadlib.dir/datagen/enron_sim.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/datagen/enron_sim.cc.o.d"
  "/root/repo/src/datagen/gmm.cc" "src/CMakeFiles/cadlib.dir/datagen/gmm.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/datagen/gmm.cc.o.d"
  "/root/repo/src/datagen/precip_sim.cc" "src/CMakeFiles/cadlib.dir/datagen/precip_sim.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/datagen/precip_sim.cc.o.d"
  "/root/repo/src/datagen/random_graphs.cc" "src/CMakeFiles/cadlib.dir/datagen/random_graphs.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/datagen/random_graphs.cc.o.d"
  "/root/repo/src/datagen/sbm.cc" "src/CMakeFiles/cadlib.dir/datagen/sbm.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/datagen/sbm.cc.o.d"
  "/root/repo/src/datagen/synthetic_gmm.cc" "src/CMakeFiles/cadlib.dir/datagen/synthetic_gmm.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/datagen/synthetic_gmm.cc.o.d"
  "/root/repo/src/datagen/toy_example.cc" "src/CMakeFiles/cadlib.dir/datagen/toy_example.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/datagen/toy_example.cc.o.d"
  "/root/repo/src/eval/roc.cc" "src/CMakeFiles/cadlib.dir/eval/roc.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/eval/roc.cc.o.d"
  "/root/repo/src/eval/statistics.cc" "src/CMakeFiles/cadlib.dir/eval/statistics.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/eval/statistics.cc.o.d"
  "/root/repo/src/graph/centrality.cc" "src/CMakeFiles/cadlib.dir/graph/centrality.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/graph/centrality.cc.o.d"
  "/root/repo/src/graph/components.cc" "src/CMakeFiles/cadlib.dir/graph/components.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/graph/components.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/cadlib.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/shortest_paths.cc" "src/CMakeFiles/cadlib.dir/graph/shortest_paths.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/graph/shortest_paths.cc.o.d"
  "/root/repo/src/graph/spectral_embedding.cc" "src/CMakeFiles/cadlib.dir/graph/spectral_embedding.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/graph/spectral_embedding.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/CMakeFiles/cadlib.dir/graph/subgraph.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/graph/subgraph.cc.o.d"
  "/root/repo/src/graph/temporal_graph.cc" "src/CMakeFiles/cadlib.dir/graph/temporal_graph.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/graph/temporal_graph.cc.o.d"
  "/root/repo/src/graph/temporal_stats.cc" "src/CMakeFiles/cadlib.dir/graph/temporal_stats.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/graph/temporal_stats.cc.o.d"
  "/root/repo/src/io/csv_writer.cc" "src/CMakeFiles/cadlib.dir/io/csv_writer.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/io/csv_writer.cc.o.d"
  "/root/repo/src/io/dot_writer.cc" "src/CMakeFiles/cadlib.dir/io/dot_writer.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/io/dot_writer.cc.o.d"
  "/root/repo/src/io/event_stream.cc" "src/CMakeFiles/cadlib.dir/io/event_stream.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/io/event_stream.cc.o.d"
  "/root/repo/src/io/json_writer.cc" "src/CMakeFiles/cadlib.dir/io/json_writer.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/io/json_writer.cc.o.d"
  "/root/repo/src/io/temporal_io.cc" "src/CMakeFiles/cadlib.dir/io/temporal_io.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/io/temporal_io.cc.o.d"
  "/root/repo/src/linalg/cholesky.cc" "src/CMakeFiles/cadlib.dir/linalg/cholesky.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/linalg/cholesky.cc.o.d"
  "/root/repo/src/linalg/conjugate_gradient.cc" "src/CMakeFiles/cadlib.dir/linalg/conjugate_gradient.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/linalg/conjugate_gradient.cc.o.d"
  "/root/repo/src/linalg/dense_matrix.cc" "src/CMakeFiles/cadlib.dir/linalg/dense_matrix.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/linalg/dense_matrix.cc.o.d"
  "/root/repo/src/linalg/incomplete_cholesky.cc" "src/CMakeFiles/cadlib.dir/linalg/incomplete_cholesky.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/linalg/incomplete_cholesky.cc.o.d"
  "/root/repo/src/linalg/jacobi_eigen.cc" "src/CMakeFiles/cadlib.dir/linalg/jacobi_eigen.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/linalg/jacobi_eigen.cc.o.d"
  "/root/repo/src/linalg/lanczos.cc" "src/CMakeFiles/cadlib.dir/linalg/lanczos.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/linalg/lanczos.cc.o.d"
  "/root/repo/src/linalg/power_iteration.cc" "src/CMakeFiles/cadlib.dir/linalg/power_iteration.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/linalg/power_iteration.cc.o.d"
  "/root/repo/src/linalg/sparse_matrix.cc" "src/CMakeFiles/cadlib.dir/linalg/sparse_matrix.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/linalg/sparse_matrix.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "src/CMakeFiles/cadlib.dir/linalg/vector_ops.cc.o" "gcc" "src/CMakeFiles/cadlib.dir/linalg/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
