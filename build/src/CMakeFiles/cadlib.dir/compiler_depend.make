# Empty compiler generated dependencies file for cadlib.
# This may be replaced when dependencies are built.
