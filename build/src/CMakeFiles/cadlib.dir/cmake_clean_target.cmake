file(REMOVE_RECURSE
  "libcadlib.a"
)
