# Empty compiler generated dependencies file for cad_tests.
# This may be replaced when dependencies are built.
