
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_act_detector.cc" "tests/CMakeFiles/cad_tests.dir/test_act_detector.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_act_detector.cc.o.d"
  "/root/repo/tests/test_afm_detector.cc" "tests/CMakeFiles/cad_tests.dir/test_afm_detector.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_afm_detector.cc.o.d"
  "/root/repo/tests/test_betweenness.cc" "tests/CMakeFiles/cad_tests.dir/test_betweenness.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_betweenness.cc.o.d"
  "/root/repo/tests/test_cad_detector.cc" "tests/CMakeFiles/cad_tests.dir/test_cad_detector.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_cad_detector.cc.o.d"
  "/root/repo/tests/test_cad_properties.cc" "tests/CMakeFiles/cad_tests.dir/test_cad_properties.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_cad_properties.cc.o.d"
  "/root/repo/tests/test_case_classifier.cc" "tests/CMakeFiles/cad_tests.dir/test_case_classifier.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_case_classifier.cc.o.d"
  "/root/repo/tests/test_centrality.cc" "tests/CMakeFiles/cad_tests.dir/test_centrality.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_centrality.cc.o.d"
  "/root/repo/tests/test_check_death.cc" "tests/CMakeFiles/cad_tests.dir/test_check_death.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_check_death.cc.o.d"
  "/root/repo/tests/test_cholesky.cc" "tests/CMakeFiles/cad_tests.dir/test_cholesky.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_cholesky.cc.o.d"
  "/root/repo/tests/test_clc_detector.cc" "tests/CMakeFiles/cad_tests.dir/test_clc_detector.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_clc_detector.cc.o.d"
  "/root/repo/tests/test_commute_approx.cc" "tests/CMakeFiles/cad_tests.dir/test_commute_approx.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_commute_approx.cc.o.d"
  "/root/repo/tests/test_commute_exact.cc" "tests/CMakeFiles/cad_tests.dir/test_commute_exact.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_commute_exact.cc.o.d"
  "/root/repo/tests/test_components.cc" "tests/CMakeFiles/cad_tests.dir/test_components.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_components.cc.o.d"
  "/root/repo/tests/test_conjugate_gradient.cc" "tests/CMakeFiles/cad_tests.dir/test_conjugate_gradient.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_conjugate_gradient.cc.o.d"
  "/root/repo/tests/test_csv_writer.cc" "tests/CMakeFiles/cad_tests.dir/test_csv_writer.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_csv_writer.cc.o.d"
  "/root/repo/tests/test_dblp_sim.cc" "tests/CMakeFiles/cad_tests.dir/test_dblp_sim.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_dblp_sim.cc.o.d"
  "/root/repo/tests/test_dense_matrix.cc" "tests/CMakeFiles/cad_tests.dir/test_dense_matrix.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_dense_matrix.cc.o.d"
  "/root/repo/tests/test_detector_sweeps.cc" "tests/CMakeFiles/cad_tests.dir/test_detector_sweeps.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_detector_sweeps.cc.o.d"
  "/root/repo/tests/test_dot_writer.cc" "tests/CMakeFiles/cad_tests.dir/test_dot_writer.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_dot_writer.cc.o.d"
  "/root/repo/tests/test_edge_scores.cc" "tests/CMakeFiles/cad_tests.dir/test_edge_scores.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_edge_scores.cc.o.d"
  "/root/repo/tests/test_enron_sim.cc" "tests/CMakeFiles/cad_tests.dir/test_enron_sim.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_enron_sim.cc.o.d"
  "/root/repo/tests/test_event_stream.cc" "tests/CMakeFiles/cad_tests.dir/test_event_stream.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_event_stream.cc.o.d"
  "/root/repo/tests/test_flags.cc" "tests/CMakeFiles/cad_tests.dir/test_flags.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_flags.cc.o.d"
  "/root/repo/tests/test_gmm.cc" "tests/CMakeFiles/cad_tests.dir/test_gmm.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_gmm.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/cad_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_incomplete_cholesky.cc" "tests/CMakeFiles/cad_tests.dir/test_incomplete_cholesky.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_incomplete_cholesky.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/cad_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_io_fuzz.cc" "tests/CMakeFiles/cad_tests.dir/test_io_fuzz.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_io_fuzz.cc.o.d"
  "/root/repo/tests/test_jacobi_eigen.cc" "tests/CMakeFiles/cad_tests.dir/test_jacobi_eigen.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_jacobi_eigen.cc.o.d"
  "/root/repo/tests/test_json_writer.cc" "tests/CMakeFiles/cad_tests.dir/test_json_writer.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_json_writer.cc.o.d"
  "/root/repo/tests/test_lanczos.cc" "tests/CMakeFiles/cad_tests.dir/test_lanczos.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_lanczos.cc.o.d"
  "/root/repo/tests/test_online_monitor.cc" "tests/CMakeFiles/cad_tests.dir/test_online_monitor.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_online_monitor.cc.o.d"
  "/root/repo/tests/test_optimization_equivalence.cc" "tests/CMakeFiles/cad_tests.dir/test_optimization_equivalence.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_optimization_equivalence.cc.o.d"
  "/root/repo/tests/test_parallel.cc" "tests/CMakeFiles/cad_tests.dir/test_parallel.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_parallel.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/cad_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_power_iteration.cc" "tests/CMakeFiles/cad_tests.dir/test_power_iteration.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_power_iteration.cc.o.d"
  "/root/repo/tests/test_precip_sim.cc" "tests/CMakeFiles/cad_tests.dir/test_precip_sim.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_precip_sim.cc.o.d"
  "/root/repo/tests/test_random_graphs.cc" "tests/CMakeFiles/cad_tests.dir/test_random_graphs.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_random_graphs.cc.o.d"
  "/root/repo/tests/test_random_walk.cc" "tests/CMakeFiles/cad_tests.dir/test_random_walk.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_random_walk.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/cad_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_roc.cc" "tests/CMakeFiles/cad_tests.dir/test_roc.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_roc.cc.o.d"
  "/root/repo/tests/test_roundtrip_properties.cc" "tests/CMakeFiles/cad_tests.dir/test_roundtrip_properties.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_roundtrip_properties.cc.o.d"
  "/root/repo/tests/test_sbm.cc" "tests/CMakeFiles/cad_tests.dir/test_sbm.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_sbm.cc.o.d"
  "/root/repo/tests/test_shortest_paths.cc" "tests/CMakeFiles/cad_tests.dir/test_shortest_paths.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_shortest_paths.cc.o.d"
  "/root/repo/tests/test_sparse_matrix.cc" "tests/CMakeFiles/cad_tests.dir/test_sparse_matrix.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_sparse_matrix.cc.o.d"
  "/root/repo/tests/test_spectral_embedding.cc" "tests/CMakeFiles/cad_tests.dir/test_spectral_embedding.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_spectral_embedding.cc.o.d"
  "/root/repo/tests/test_statistics.cc" "tests/CMakeFiles/cad_tests.dir/test_statistics.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_statistics.cc.o.d"
  "/root/repo/tests/test_status.cc" "tests/CMakeFiles/cad_tests.dir/test_status.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_status.cc.o.d"
  "/root/repo/tests/test_strings.cc" "tests/CMakeFiles/cad_tests.dir/test_strings.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_strings.cc.o.d"
  "/root/repo/tests/test_subgraph.cc" "tests/CMakeFiles/cad_tests.dir/test_subgraph.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_subgraph.cc.o.d"
  "/root/repo/tests/test_synthetic_gmm.cc" "tests/CMakeFiles/cad_tests.dir/test_synthetic_gmm.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_synthetic_gmm.cc.o.d"
  "/root/repo/tests/test_temporal_graph.cc" "tests/CMakeFiles/cad_tests.dir/test_temporal_graph.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_temporal_graph.cc.o.d"
  "/root/repo/tests/test_temporal_io.cc" "tests/CMakeFiles/cad_tests.dir/test_temporal_io.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_temporal_io.cc.o.d"
  "/root/repo/tests/test_temporal_stats.cc" "tests/CMakeFiles/cad_tests.dir/test_temporal_stats.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_temporal_stats.cc.o.d"
  "/root/repo/tests/test_threshold.cc" "tests/CMakeFiles/cad_tests.dir/test_threshold.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_threshold.cc.o.d"
  "/root/repo/tests/test_toy_example.cc" "tests/CMakeFiles/cad_tests.dir/test_toy_example.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_toy_example.cc.o.d"
  "/root/repo/tests/test_vector_ops.cc" "tests/CMakeFiles/cad_tests.dir/test_vector_ops.cc.o" "gcc" "tests/CMakeFiles/cad_tests.dir/test_vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cadlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
