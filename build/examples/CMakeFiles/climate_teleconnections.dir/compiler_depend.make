# Empty compiler generated dependencies file for climate_teleconnections.
# This may be replaced when dependencies are built.
