file(REMOVE_RECURSE
  "CMakeFiles/climate_teleconnections.dir/climate_teleconnections.cpp.o"
  "CMakeFiles/climate_teleconnections.dir/climate_teleconnections.cpp.o.d"
  "climate_teleconnections"
  "climate_teleconnections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_teleconnections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
