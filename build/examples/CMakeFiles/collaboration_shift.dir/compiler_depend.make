# Empty compiler generated dependencies file for collaboration_shift.
# This may be replaced when dependencies are built.
