file(REMOVE_RECURSE
  "CMakeFiles/collaboration_shift.dir/collaboration_shift.cpp.o"
  "CMakeFiles/collaboration_shift.dir/collaboration_shift.cpp.o.d"
  "collaboration_shift"
  "collaboration_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaboration_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
