# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_insider_threat "/root/repo/build/examples/insider_threat" "--employees" "80" "--months" "42")
set_tests_properties(example_insider_threat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_collaboration_shift "/root/repo/build/examples/collaboration_shift" "--authors" "300")
set_tests_properties(example_collaboration_shift PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_climate_teleconnections "/root/repo/build/examples/climate_teleconnections" "--years" "8")
set_tests_properties(example_climate_teleconnections PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_monitor "/root/repo/build/examples/streaming_monitor" "--employees" "80" "--months" "42")
set_tests_properties(example_streaming_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
