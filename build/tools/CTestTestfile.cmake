# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_make_demo_data "/root/repo/build/tools/make_demo_data" "--output_dir" "/root/repo/build/demo_data" "--employees" "80" "--months" "42")
set_tests_properties(tool_make_demo_data PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_cad_cli_toy "/root/repo/build/tools/cad_cli" "--input" "/root/repo/build/demo_data/toy.tel" "--engine" "exact" "--l" "6" "--edges_csv" "-" "--json" "-")
set_tests_properties(tool_cad_cli_toy PROPERTIES  DEPENDS "tool_make_demo_data" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_cad_cli_profile_org "/root/repo/build/tools/cad_cli" "--input" "/root/repo/build/demo_data/org.tel" "--method" "ACT" "--profile" "--nodes_csv" "/root/repo/build/demo_data/act_scores.csv")
set_tests_properties(tool_cad_cli_profile_org PROPERTIES  DEPENDS "tool_make_demo_data" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
