# Empty dependencies file for make_demo_data.
# This may be replaced when dependencies are built.
