file(REMOVE_RECURSE
  "CMakeFiles/make_demo_data.dir/make_demo_data.cc.o"
  "CMakeFiles/make_demo_data.dir/make_demo_data.cc.o.d"
  "make_demo_data"
  "make_demo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_demo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
