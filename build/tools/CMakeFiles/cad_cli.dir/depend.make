# Empty dependencies file for cad_cli.
# This may be replaced when dependencies are built.
