# Empty compiler generated dependencies file for cad_cli.
# This may be replaced when dependencies are built.
