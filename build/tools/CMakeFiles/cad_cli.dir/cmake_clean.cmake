file(REMOVE_RECURSE
  "CMakeFiles/cad_cli.dir/cad_cli.cc.o"
  "CMakeFiles/cad_cli.dir/cad_cli.cc.o.d"
  "cad_cli"
  "cad_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
