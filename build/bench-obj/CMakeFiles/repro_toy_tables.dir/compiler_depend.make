# Empty compiler generated dependencies file for repro_toy_tables.
# This may be replaced when dependencies are built.
