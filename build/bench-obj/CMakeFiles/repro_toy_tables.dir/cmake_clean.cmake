file(REMOVE_RECURSE
  "../bench/repro_toy_tables"
  "../bench/repro_toy_tables.pdb"
  "CMakeFiles/repro_toy_tables.dir/repro_toy_tables.cc.o"
  "CMakeFiles/repro_toy_tables.dir/repro_toy_tables.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_toy_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
