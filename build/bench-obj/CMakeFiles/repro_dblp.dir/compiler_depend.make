# Empty compiler generated dependencies file for repro_dblp.
# This may be replaced when dependencies are built.
