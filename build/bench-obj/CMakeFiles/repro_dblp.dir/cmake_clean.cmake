file(REMOVE_RECURSE
  "../bench/repro_dblp"
  "../bench/repro_dblp.pdb"
  "CMakeFiles/repro_dblp.dir/repro_dblp.cc.o"
  "CMakeFiles/repro_dblp.dir/repro_dblp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
