file(REMOVE_RECURSE
  "../bench/ablation_regularization"
  "../bench/ablation_regularization.pdb"
  "CMakeFiles/ablation_regularization.dir/ablation_regularization.cc.o"
  "CMakeFiles/ablation_regularization.dir/ablation_regularization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
