# Empty compiler generated dependencies file for repro_precipitation.
# This may be replaced when dependencies are built.
