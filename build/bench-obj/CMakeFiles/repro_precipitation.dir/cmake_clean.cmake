file(REMOVE_RECURSE
  "../bench/repro_precipitation"
  "../bench/repro_precipitation.pdb"
  "CMakeFiles/repro_precipitation.dir/repro_precipitation.cc.o"
  "CMakeFiles/repro_precipitation.dir/repro_precipitation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_precipitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
