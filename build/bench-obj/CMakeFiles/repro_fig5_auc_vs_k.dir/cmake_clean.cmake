file(REMOVE_RECURSE
  "../bench/repro_fig5_auc_vs_k"
  "../bench/repro_fig5_auc_vs_k.pdb"
  "CMakeFiles/repro_fig5_auc_vs_k.dir/repro_fig5_auc_vs_k.cc.o"
  "CMakeFiles/repro_fig5_auc_vs_k.dir/repro_fig5_auc_vs_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig5_auc_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
