# Empty dependencies file for repro_fig5_auc_vs_k.
# This may be replaced when dependencies are built.
