file(REMOVE_RECURSE
  "../bench/ablation_preconditioner"
  "../bench/ablation_preconditioner.pdb"
  "CMakeFiles/ablation_preconditioner.dir/ablation_preconditioner.cc.o"
  "CMakeFiles/ablation_preconditioner.dir/ablation_preconditioner.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preconditioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
