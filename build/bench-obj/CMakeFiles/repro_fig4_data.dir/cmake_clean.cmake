file(REMOVE_RECURSE
  "../bench/repro_fig4_data"
  "../bench/repro_fig4_data.pdb"
  "CMakeFiles/repro_fig4_data.dir/repro_fig4_data.cc.o"
  "CMakeFiles/repro_fig4_data.dir/repro_fig4_data.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig4_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
