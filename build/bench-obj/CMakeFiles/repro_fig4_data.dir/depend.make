# Empty dependencies file for repro_fig4_data.
# This may be replaced when dependencies are built.
