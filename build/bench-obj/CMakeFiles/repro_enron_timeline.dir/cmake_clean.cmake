file(REMOVE_RECURSE
  "../bench/repro_enron_timeline"
  "../bench/repro_enron_timeline.pdb"
  "CMakeFiles/repro_enron_timeline.dir/repro_enron_timeline.cc.o"
  "CMakeFiles/repro_enron_timeline.dir/repro_enron_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_enron_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
