# Empty compiler generated dependencies file for repro_enron_timeline.
# This may be replaced when dependencies are built.
