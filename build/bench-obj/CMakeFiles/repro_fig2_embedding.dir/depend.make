# Empty dependencies file for repro_fig2_embedding.
# This may be replaced when dependencies are built.
