file(REMOVE_RECURSE
  "../bench/repro_fig2_embedding"
  "../bench/repro_fig2_embedding.pdb"
  "CMakeFiles/repro_fig2_embedding.dir/repro_fig2_embedding.cc.o"
  "CMakeFiles/repro_fig2_embedding.dir/repro_fig2_embedding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig2_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
