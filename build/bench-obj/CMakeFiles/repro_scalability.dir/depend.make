# Empty dependencies file for repro_scalability.
# This may be replaced when dependencies are built.
