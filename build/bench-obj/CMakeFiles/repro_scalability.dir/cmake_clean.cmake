file(REMOVE_RECURSE
  "../bench/repro_scalability"
  "../bench/repro_scalability.pdb"
  "CMakeFiles/repro_scalability.dir/repro_scalability.cc.o"
  "CMakeFiles/repro_scalability.dir/repro_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
