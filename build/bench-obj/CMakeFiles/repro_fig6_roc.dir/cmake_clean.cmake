file(REMOVE_RECURSE
  "../bench/repro_fig6_roc"
  "../bench/repro_fig6_roc.pdb"
  "CMakeFiles/repro_fig6_roc.dir/repro_fig6_roc.cc.o"
  "CMakeFiles/repro_fig6_roc.dir/repro_fig6_roc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig6_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
