# Empty dependencies file for repro_fig6_roc.
# This may be replaced when dependencies are built.
