#include "linalg/workspace.h"

#include <cstring>

#include <gtest/gtest.h>

#include "common/check.h"
#include "commute/approx_commute.h"
#include "commute/solver_cache.h"
#include "datagen/rmat.h"
#include "graph/graph.h"

namespace cad {
namespace {

TEST(DenseWorkspaceTest, FirstAcquireAllocatesFresh) {
  DenseWorkspace workspace;
  DenseMatrix m = workspace.Acquire(4, 3);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(workspace.acquires(), 1u);
  EXPECT_EQ(workspace.pool_hits(), 0u);
  for (double v : m.data()) EXPECT_EQ(v, 0.0);
}

TEST(DenseWorkspaceTest, ReleasedBufferIsReusedAndRezeroed) {
  DenseWorkspace workspace;
  DenseMatrix m = workspace.Acquire(5, 5);
  m(2, 2) = 123.0;  // dirty the buffer before retiring it
  workspace.Release(std::move(m));
  EXPECT_EQ(workspace.retired_capacity(), 25u);

  DenseMatrix again = workspace.Acquire(5, 5);
  EXPECT_EQ(workspace.acquires(), 2u);
  EXPECT_EQ(workspace.pool_hits(), 1u);
  EXPECT_EQ(workspace.retired_capacity(), 0u);
  // Pooled reuse must be indistinguishable from a fresh zero matrix.
  for (double v : again.data()) EXPECT_EQ(v, 0.0);
}

TEST(DenseWorkspaceTest, SmallerShapeReusesLargerBuffer) {
  DenseWorkspace workspace;
  workspace.Release(workspace.Acquire(10, 10));
  DenseMatrix small = workspace.Acquire(3, 3);
  EXPECT_EQ(workspace.pool_hits(), 1u);
  EXPECT_EQ(small.rows(), 3u);
  EXPECT_EQ(small.cols(), 3u);
}

TEST(DenseWorkspaceTest, TooSmallBufferIsNotAHit) {
  DenseWorkspace workspace;
  workspace.Release(workspace.Acquire(2, 2));
  DenseMatrix big = workspace.Acquire(8, 8);
  EXPECT_EQ(big.rows(), 8u);
  EXPECT_EQ(workspace.pool_hits(), 0u);
}

TEST(DenseWorkspaceTest, ClearDropsRetiredBuffers) {
  DenseWorkspace workspace;
  workspace.Release(workspace.Acquire(6, 6));
  EXPECT_GT(workspace.retired_capacity(), 0u);
  workspace.Clear();
  EXPECT_EQ(workspace.retired_capacity(), 0u);
  workspace.Acquire(6, 6);
  EXPECT_EQ(workspace.pool_hits(), 0u);
}

TEST(PooledDenseTest, FallsBackToPlainAllocationWithoutWorkspace) {
  PooledDense pooled(nullptr, 3, 2);
  EXPECT_EQ(pooled.get().rows(), 3u);
  EXPECT_EQ(pooled.get().cols(), 2u);
  for (double v : pooled.get().data()) EXPECT_EQ(v, 0.0);
}

TEST(PooledDenseTest, ReturnsBufferOnDestruction) {
  DenseWorkspace workspace;
  {
    PooledDense pooled(&workspace, 4, 4);
    pooled.get()(0, 0) = 1.0;
  }
  EXPECT_EQ(workspace.retired_capacity(), 16u);
}

TEST(SolverCacheWorkspaceTest, WorkspaceIsLazyAndStable) {
  CommuteSolverCache cache;
  DenseWorkspace* first = cache.workspace();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first, cache.workspace());
}

/// The arena is a memory-layout concern only: embeddings built through the
/// pooled path must be byte-for-byte what the malloc path produces.
TEST(ArenaTest, ArenaEmbeddingsAreBitIdentical) {
  RmatOptions graph_options;
  graph_options.num_nodes = 250;
  graph_options.num_edges = 1000;
  graph_options.seed = 11;
  Result<WeightedGraph> graph = MakeRmatGraph(graph_options);
  ASSERT_TRUE(graph.ok());

  ApproxCommuteOptions options;
  options.embedding_dim = 5;
  options.cg.use_block_solver = true;

  Result<ApproxCommuteEmbedding> plain =
      ApproxCommuteEmbedding::Build(*graph, options);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  options.use_arena = true;
  CommuteSolverCache cache;
  // Two pooled builds through one cache: the second run draws retired
  // buffers from the first, which is exactly the cross-snapshot reuse the
  // detector loop performs.
  Result<ApproxCommuteEmbedding> pooled_first =
      ApproxCommuteEmbedding::Build(*graph, options, &cache);
  ASSERT_TRUE(pooled_first.ok()) << pooled_first.status().ToString();
  Result<ApproxCommuteEmbedding> pooled_second =
      ApproxCommuteEmbedding::Build(*graph, options, &cache);
  ASSERT_TRUE(pooled_second.ok()) << pooled_second.status().ToString();
  EXPECT_GT(cache.workspace()->pool_hits(), 0u);

  for (const ApproxCommuteEmbedding* pooled :
       {&*pooled_first, &*pooled_second}) {
    const DenseMatrix& a = plain->embedding();
    const DenseMatrix& b = pooled->embedding();
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                          a.data().size() * sizeof(double)),
              0);
  }
}

/// Every optimization flag at once (the bench's "optimized" configuration)
/// must still match the all-defaults build bit for bit.
TEST(ArenaTest, FullyOptimizedConfigIsBitIdentical) {
  RmatOptions graph_options;
  graph_options.num_nodes = 250;
  graph_options.num_edges = 1000;
  graph_options.seed = 12;
  Result<WeightedGraph> graph = MakeRmatGraph(graph_options);
  ASSERT_TRUE(graph.ok());

  ApproxCommuteOptions defaults;
  defaults.embedding_dim = 5;
  Result<ApproxCommuteEmbedding> reference =
      ApproxCommuteEmbedding::Build(*graph, defaults);
  ASSERT_TRUE(reference.ok());

  ApproxCommuteOptions optimized = defaults;
  optimized.cg.use_block_solver = true;
  optimized.cg.tiled_spmm = true;
  optimized.relabel = true;
  optimized.use_arena = true;
  CommuteSolverCache cache;
  Result<ApproxCommuteEmbedding> tuned =
      ApproxCommuteEmbedding::Build(*graph, optimized, &cache);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();

  const DenseMatrix& a = reference->embedding();
  const DenseMatrix& b = tuned->embedding();
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.data().size() * sizeof(double)),
            0);
}

}  // namespace
}  // namespace cad
