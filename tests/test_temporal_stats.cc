#include "graph/temporal_stats.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cad {
namespace {

TemporalGraphSequence SampleSequence() {
  TemporalGraphSequence seq(5);
  WeightedGraph g1(5);
  CAD_CHECK_OK(g1.SetEdge(0, 1, 2.0));
  CAD_CHECK_OK(g1.SetEdge(1, 2, 1.0));
  WeightedGraph g2(5);
  CAD_CHECK_OK(g2.SetEdge(0, 1, 3.0));  // reweighted
  CAD_CHECK_OK(g2.SetEdge(3, 4, 1.0));  // added; 1-2 removed
  CAD_CHECK_OK(seq.Append(std::move(g1)));
  CAD_CHECK_OK(seq.Append(std::move(g2)));
  return seq;
}

TEST(TemporalStatsTest, SnapshotStats) {
  const TemporalProfile profile = ProfileSequence(SampleSequence());
  ASSERT_EQ(profile.snapshots.size(), 2u);
  const SnapshotStats& s0 = profile.snapshots[0];
  EXPECT_EQ(s0.num_edges, 2u);
  EXPECT_DOUBLE_EQ(s0.volume, 6.0);
  EXPECT_DOUBLE_EQ(s0.mean_weight, 1.5);
  // Components: {0,1,2}, {3}, {4}.
  EXPECT_EQ(s0.num_components, 3u);
  EXPECT_EQ(s0.largest_component, 3u);
  EXPECT_EQ(s0.isolated_nodes, 2u);

  const SnapshotStats& s1 = profile.snapshots[1];
  EXPECT_EQ(s1.num_edges, 2u);
  // Components: {0,1}, {2}, {3,4}.
  EXPECT_EQ(s1.num_components, 3u);
  EXPECT_EQ(s1.isolated_nodes, 1u);
}

TEST(TemporalStatsTest, TransitionStats) {
  const TemporalProfile profile = ProfileSequence(SampleSequence());
  ASSERT_EQ(profile.transitions.size(), 1u);
  const TransitionStats& t = profile.transitions[0];
  EXPECT_EQ(t.edges_added, 1u);       // 3-4
  EXPECT_EQ(t.edges_removed, 1u);     // 1-2
  EXPECT_EQ(t.edges_reweighted, 1u);  // 0-1
  EXPECT_DOUBLE_EQ(t.weight_change_l1, 1.0 + 1.0 + 1.0);
  // Union support = 3, shared = 1.
  EXPECT_NEAR(t.support_jaccard, 1.0 / 3.0, 1e-12);
}

TEST(TemporalStatsTest, IdenticalSnapshotsAreCalm) {
  WeightedGraph g(3);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  TemporalGraphSequence seq(3);
  CAD_CHECK_OK(seq.Append(g));
  CAD_CHECK_OK(seq.Append(g));
  const TemporalProfile profile = ProfileSequence(seq);
  const TransitionStats& t = profile.transitions[0];
  EXPECT_EQ(t.edges_added + t.edges_removed + t.edges_reweighted, 0u);
  EXPECT_EQ(t.weight_change_l1, 0.0);
  EXPECT_DOUBLE_EQ(t.support_jaccard, 1.0);
}

TEST(TemporalStatsTest, EmptySnapshotsConvention) {
  TemporalGraphSequence seq(4);
  CAD_CHECK_OK(seq.Append(WeightedGraph(4)));
  CAD_CHECK_OK(seq.Append(WeightedGraph(4)));
  const TemporalProfile profile = ProfileSequence(seq);
  EXPECT_DOUBLE_EQ(profile.transitions[0].support_jaccard, 1.0);
  EXPECT_EQ(profile.snapshots[0].num_edges, 0u);
  EXPECT_EQ(profile.snapshots[0].num_components, 4u);
}

TEST(TemporalStatsTest, PrintRendersTables) {
  std::ostringstream out;
  PrintTemporalProfile(ProfileSequence(SampleSequence()), &out);
  const std::string text = out.str();
  EXPECT_NE(text.find("snapshot"), std::string::npos);
  EXPECT_NE(text.find("jaccard"), std::string::npos);
  // Two snapshot rows + one transition row present.
  EXPECT_NE(text.find("\n0"), std::string::npos);
}

}  // namespace
}  // namespace cad
