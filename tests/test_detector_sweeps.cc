// Seed-parameterized end-to-end sweeps: detection quality must hold across
// random realizations, not just the fixed seeds used by the integration
// tests.

#include <gtest/gtest.h>

#include "core/cad_detector.h"
#include "datagen/sbm.h"
#include "datagen/synthetic_gmm.h"
#include "eval/roc.h"

namespace cad {
namespace {

class GmmSeedSweep : public ::testing::TestWithParam<uint64_t> {};

/// CAD's AUC on the GMM benchmark stays high and beats ADJ on every seed.
TEST_P(GmmSeedSweep, CadAucHighAndAboveAdj) {
  GmmBenchmarkOptions options;
  options.num_points = 150;
  options.seed = GetParam();
  const GmmBenchmarkInstance instance = MakeGmmBenchmark(options);

  CadOptions cad_options;
  cad_options.engine = CommuteEngine::kExact;
  auto cad_scores = CadDetector(cad_options).ScoreTransitions(instance.sequence);
  ASSERT_TRUE(cad_scores.ok());
  auto cad_auc = ComputeAuc((*cad_scores)[0], instance.node_is_anomalous);
  ASSERT_TRUE(cad_auc.ok());

  CadOptions adj_options = cad_options;
  adj_options.score_kind = EdgeScoreKind::kAdj;
  auto adj_scores = CadDetector(adj_options).ScoreTransitions(instance.sequence);
  ASSERT_TRUE(adj_scores.ok());
  auto adj_auc = ComputeAuc((*adj_scores)[0], instance.node_is_anomalous);
  ASSERT_TRUE(adj_auc.ok());

  // Per-seed bounds are looser than the averaged integration test, but the
  // ordering must hold every single time.
  EXPECT_GT(*cad_auc, 0.65) << "seed " << GetParam();
  EXPECT_GT(*cad_auc, *adj_auc) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GmmSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

class SbmSeedSweep : public ::testing::TestWithParam<uint64_t> {};

/// Planting one strong cross-block edge on an otherwise benignly-jittered
/// SBM transition: CAD must rank the planted edge first.
TEST_P(SbmSeedSweep, PlantedCrossBlockEdgeRanksFirst) {
  SbmOptions options;
  options.num_nodes = 160;
  options.num_blocks = 4;
  options.intra_block_prob = 0.15;
  options.inter_block_prob = 0.004;
  options.seed = GetParam();
  const SbmGraph sbm = MakeStochasticBlockModel(options);

  WeightedGraph after = sbm.graph;
  // Benign jitter: rescale every edge slightly (deterministic pattern).
  size_t index = 0;
  for (const Edge& e : sbm.graph.Edges()) {
    const double scale = (index++ % 2 == 0) ? 1.05 : 0.95;
    CAD_CHECK_OK(after.SetEdge(e.u, e.v, e.weight * scale));
  }
  // The planted anomaly: a strong brand-new tie between blocks 0 and 2.
  NodeId u = 5;
  NodeId v = static_cast<NodeId>(2 * (options.num_nodes / 4) + 7);
  ASSERT_NE(sbm.block[u], sbm.block[v]);
  ASSERT_FALSE(sbm.graph.HasEdge(u, v));
  CAD_CHECK_OK(after.SetEdge(u, v, 3.0));

  TemporalGraphSequence seq(options.num_nodes);
  CAD_CHECK_OK(seq.Append(sbm.graph));
  CAD_CHECK_OK(seq.Append(std::move(after)));

  CadOptions cad_options;
  cad_options.engine = CommuteEngine::kExact;
  auto analyses = CadDetector(cad_options).Analyze(seq);
  ASSERT_TRUE(analyses.ok());
  EXPECT_EQ((*analyses)[0].edges[0].pair, NodePair::Make(u, v))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SbmSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cad
