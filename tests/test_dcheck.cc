// Behavior tests for the CAD_DCHECK family: fatal when CAD_ENABLE_DCHECK is
// compiled in, completely free (conditions never evaluated) when it is not.
// Both halves compile in both configurations; the active half is selected by
// the same macro the build system sets.

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/status.h"

namespace cad {
namespace {

#ifdef CAD_ENABLE_DCHECK

TEST(DcheckEnabledDeathTest, FiresOnViolation) {
  EXPECT_DEATH({ CAD_DCHECK(1 == 2) << "extra context"; },
               "CHECK failed.*1 == 2.*extra context");
}

TEST(DcheckEnabledDeathTest, ComparisonMacrosIncludeValues) {
  EXPECT_DEATH({ CAD_DCHECK_EQ(3, 5); }, "3 +vs +5");
  EXPECT_DEATH({ CAD_DCHECK_LT(9, 2); }, "9 +vs +2");
  EXPECT_DEATH({ CAD_DCHECK_GT(1, 4); }, "1 +vs +4");
  CAD_DCHECK_GE(5, 5);
  CAD_DCHECK_LE(5, 5);
  CAD_DCHECK_NE(1, 2);
}

TEST(DcheckEnabledDeathTest, DcheckOkAbortsWithStatusMessage) {
  EXPECT_DEATH({ CAD_DCHECK_OK(Status::Internal("corrupted invariant")); },
               "Internal: corrupted invariant");
  CAD_DCHECK_OK(Status::OK());
}

TEST(DcheckEnabledTest, PassingChecksAreSilent) {
  CAD_DCHECK(true) << "never shown";
  CAD_DCHECK_EQ(4, 2 + 2);
  SUCCEED();
}

#else  // !CAD_ENABLE_DCHECK

TEST(DcheckDisabledTest, FalseConditionsDoNotAbort) {
  CAD_DCHECK(false) << "streamed context still compiles";
  CAD_DCHECK_EQ(1, 2);
  CAD_DCHECK_NE(3, 3);
  CAD_DCHECK_LT(9, 2);
  CAD_DCHECK_LE(9, 2);
  CAD_DCHECK_GT(2, 9);
  CAD_DCHECK_GE(2, 9);
  SUCCEED();
}

TEST(DcheckDisabledTest, ConditionIsNeverEvaluated) {
  int evaluations = 0;
  const auto probe = [&evaluations]() {
    ++evaluations;
    return false;
  };
  CAD_DCHECK(probe());
  CAD_DCHECK_EQ(probe() ? 1 : 0, 1);
  EXPECT_EQ(evaluations, 0);
}

TEST(DcheckDisabledTest, StatusExpressionIsNeverEvaluated) {
  int calls = 0;
  const auto make_status = [&calls]() {
    ++calls;
    return Status::Internal("never constructed");
  };
  CAD_DCHECK_OK(make_status());
  EXPECT_EQ(calls, 0);
}

TEST(DcheckDisabledTest, StreamedMessageIsNeverEvaluated) {
  int evaluations = 0;
  const auto message = [&evaluations]() {
    ++evaluations;
    return "msg";
  };
  CAD_DCHECK(false) << message();
  EXPECT_EQ(evaluations, 0);
}

#endif  // CAD_ENABLE_DCHECK

}  // namespace
}  // namespace cad
