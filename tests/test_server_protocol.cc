// Wire-protocol tests for the cad_server local-socket framing
// (src/server/protocol.h): payload codec roundtrips, tenant-name
// validation, and frame I/O over a real socketpair including the
// malformed-input paths (oversized length, missing type byte, truncation).

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/protocol.h"

namespace cad::server {
namespace {

TEST(ProtocolCodecTest, TenantRoundTrips) {
  for (const std::string& name :
       {std::string("alpha"), std::string("a"), std::string(64, 'x'),
        std::string()}) {
    const Result<std::string> decoded = DecodeTenant(EncodeTenant(name));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, name);
  }
}

TEST(ProtocolCodecTest, EventsRoundTripBitExact) {
  std::vector<WireEvent> events;
  WireEvent a;
  a.u = "alice";
  a.v = "bob";
  a.timestamp = 1.5;
  a.weight = 0.1;  // not exactly representable: must survive bit-exact
  events.push_back(a);
  WireEvent b;
  b.u = "7";
  b.v = "12";
  b.timestamp = -3.25;
  b.weight = 2.0;
  events.push_back(b);

  const Result<EventsRequest> decoded =
      DecodeEvents(EncodeEvents("tenant-1", events));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tenant, "tenant-1");
  ASSERT_EQ(decoded->events.size(), 2u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded->events[i].u, events[i].u);
    EXPECT_EQ(decoded->events[i].v, events[i].v);
    EXPECT_EQ(decoded->events[i].timestamp, events[i].timestamp);
    EXPECT_EQ(decoded->events[i].weight, events[i].weight);
  }
}

TEST(ProtocolCodecTest, EmptyEventBatchRoundTrips) {
  const Result<EventsRequest> decoded = DecodeEvents(EncodeEvents("t", {}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tenant, "t");
  EXPECT_TRUE(decoded->events.empty());
}

TEST(ProtocolCodecTest, OpenReplyRoundTrips) {
  OpenReply reply;
  reply.resumed = true;
  reply.next_window = 42;
  reply.num_nodes = 1000;
  const Result<OpenReply> decoded = DecodeOpenReply(EncodeOpenReply(reply));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->resumed);
  EXPECT_EQ(decoded->next_window, 42u);
  EXPECT_EQ(decoded->num_nodes, 1000u);
}

TEST(ProtocolCodecTest, TextRoundTripsWithEmbeddedNulAndNewline) {
  const std::string text = std::string("line1\nline2\0tail", 16);
  const Result<std::string> decoded = DecodeText(EncodeText(text));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, text);
}

TEST(ProtocolCodecTest, TruncatedPayloadIsError) {
  const std::string full = EncodeEvents("tenant", {WireEvent{}});
  // Every proper prefix must fail cleanly, never crash or over-read.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(DecodeEvents(full.substr(0, cut)).ok()) << "cut=" << cut;
  }
}

TEST(ProtocolCodecTest, GarbageStringLengthIsErrorNotBadAlloc) {
  // A corrupt length prefix of ~4 GiB must be rejected, not allocated.
  std::string payload(8, '\0');
  payload[0] = '\xff';
  payload[1] = '\xff';
  payload[2] = '\xff';
  payload[3] = '\xff';
  EXPECT_FALSE(DecodeTenant(payload).ok());
}

TEST(TenantNameTest, AcceptsTheDocumentedAlphabet) {
  EXPECT_TRUE(IsValidTenantName("alpha"));
  EXPECT_TRUE(IsValidTenantName("tenant-7_a.b"));
  EXPECT_TRUE(IsValidTenantName("A"));
  EXPECT_TRUE(IsValidTenantName(std::string(kMaxTenantNameBytes, 'z')));
}

TEST(TenantNameTest, RejectsPathAliasesAndOversizedNames) {
  EXPECT_FALSE(IsValidTenantName(""));
  EXPECT_FALSE(IsValidTenantName("."));
  EXPECT_FALSE(IsValidTenantName(".."));
  EXPECT_FALSE(IsValidTenantName("a/b"));
  EXPECT_FALSE(IsValidTenantName("a b"));
  EXPECT_FALSE(IsValidTenantName("a,b"));
  EXPECT_FALSE(IsValidTenantName("a\n"));
  EXPECT_FALSE(IsValidTenantName(std::string(kMaxTenantNameBytes + 1, 'z')));
  // Dot-leading names are fine (not "." or ".." themselves).
  EXPECT_TRUE(IsValidTenantName(".hidden"));
}

// --- frame I/O over a real socketpair --------------------------------------

class FramePipeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  void CloseWriter() {
    ::close(fds_[0]);
    fds_[0] = -1;
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramePipeTest, WriteThenReadRoundTrips) {
  const std::string payload = EncodeTenant("alpha");
  ASSERT_TRUE(WriteFrame(fds_[0], MessageType::kOpen, payload).ok());
  const Result<std::optional<Frame>> frame = ReadFrame(fds_[1]);
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, MessageType::kOpen);
  EXPECT_EQ((*frame)->payload, payload);
}

TEST_F(FramePipeTest, EmptyPayloadFramesWork) {
  ASSERT_TRUE(WriteFrame(fds_[0], MessageType::kPing, "").ok());
  const Result<std::optional<Frame>> frame = ReadFrame(fds_[1]);
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, MessageType::kPing);
  EXPECT_TRUE((*frame)->payload.empty());
}

TEST_F(FramePipeTest, BackToBackFramesPreserveBoundaries) {
  ASSERT_TRUE(WriteFrame(fds_[0], MessageType::kPing, "").ok());
  ASSERT_TRUE(
      WriteFrame(fds_[0], MessageType::kStats, EncodeTenant("t")).ok());
  Result<std::optional<Frame>> first = ReadFrame(fds_[1]);
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ((*first)->type, MessageType::kPing);
  Result<std::optional<Frame>> second = ReadFrame(fds_[1]);
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ((*second)->type, MessageType::kStats);
}

TEST_F(FramePipeTest, CleanEofAtBoundaryIsNullopt) {
  CloseWriter();
  const Result<std::optional<Frame>> frame = ReadFrame(fds_[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame->has_value());
}

TEST_F(FramePipeTest, TruncationMidHeaderIsIoError) {
  const char two_bytes[2] = {0x05, 0x00};
  ASSERT_EQ(::send(fds_[0], two_bytes, sizeof(two_bytes), 0), 2);
  CloseWriter();
  const Result<std::optional<Frame>> frame = ReadFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
}

TEST_F(FramePipeTest, TruncationMidPayloadIsIoError) {
  // Header promises 100 payload bytes; only 3 arrive before EOF.
  const char header[4] = {100, 0, 0, 0};
  ASSERT_EQ(::send(fds_[0], header, sizeof(header), 0), 4);
  ASSERT_EQ(::send(fds_[0], "abc", 3, 0), 3);
  CloseWriter();
  const Result<std::optional<Frame>> frame = ReadFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
}

TEST_F(FramePipeTest, ZeroLengthFrameIsIoError) {
  // A zero length means no message-type byte; the reader must reject it
  // instead of returning a typeless frame.
  const char header[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fds_[0], header, sizeof(header), 0), 4);
  const Result<std::optional<Frame>> frame = ReadFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
}

TEST_F(FramePipeTest, OversizedLengthIsRejectedNotAllocated) {
  // 0xffffffff as the length would be a 4 GiB allocation from a garbage
  // header; the reader bounds-checks against kMaxFramePayloadBytes first.
  const char header[4] = {'\xff', '\xff', '\xff', '\xff'};
  ASSERT_EQ(::send(fds_[0], header, sizeof(header), 0), 4);
  const Result<std::optional<Frame>> frame = ReadFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
}

TEST_F(FramePipeTest, WriterRefusesOversizedPayload) {
  const std::string huge(kMaxFramePayloadBytes, 'x');  // +1 type byte > max
  const Status status = WriteFrame(fds_[0], MessageType::kEvents, huge);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cad::server
