#include "core/threshold.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

TransitionScores MakeScores(std::vector<double> values) {
  TransitionScores scores;
  NodeId next = 0;
  for (double v : values) {
    scores.edges.push_back(ScoredEdge{NodePair{next, next + 1}, v, 0, 0});
    next += 2;  // disjoint endpoints: 2 nodes per edge
    scores.total_score += v;
  }
  scores.node_scores.assign(2 * values.size(), 0.0);
  return scores;
}

TEST(ApplyThresholdTest, ProducesReportsPerTransition) {
  std::vector<TransitionScores> all = {MakeScores({5, 1}), MakeScores({0.5})};
  const std::vector<AnomalyReport> reports = ApplyThreshold(all, 2.0);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].transition, 0u);
  EXPECT_EQ(reports[1].transition, 1u);
  // Transition 0: total 6 >= 2, peel 5 -> remaining 1 < 2. One edge.
  EXPECT_EQ(reports[0].edges.size(), 1u);
  EXPECT_EQ(reports[0].nodes.size(), 2u);
  // Transition 1: total 0.5 < 2: calm, nothing flagged.
  EXPECT_TRUE(reports[1].edges.empty());
  EXPECT_TRUE(reports[1].nodes.empty());
}

TEST(ApplyThresholdTest, EdgesKeepDescendingOrder) {
  std::vector<TransitionScores> all = {MakeScores({5, 4, 3})};
  const std::vector<AnomalyReport> reports = ApplyThreshold(all, 1.0);
  ASSERT_EQ(reports[0].edges.size(), 3u);
  EXPECT_GE(reports[0].edges[0].score, reports[0].edges[1].score);
  EXPECT_GE(reports[0].edges[1].score, reports[0].edges[2].score);
}

TEST(CountAnomalousNodesTest, CountsAcrossTransitions) {
  std::vector<TransitionScores> all = {MakeScores({5, 1}), MakeScores({7})};
  // delta = 2: transition 0 flags 1 edge (2 nodes); transition 1 flags 1
  // edge (2 nodes).
  EXPECT_EQ(CountAnomalousNodes(all, 2.0), 4u);
  // Huge delta: nothing.
  EXPECT_EQ(CountAnomalousNodes(all, 100.0), 0u);
}

TEST(CountAnomalousNodesTest, MonotoneNonIncreasingInDelta) {
  std::vector<TransitionScores> all = {MakeScores({9, 4, 2, 1}),
                                       MakeScores({3, 3})};
  size_t previous = CountAnomalousNodes(all, 0.01);
  for (double delta : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    const size_t count = CountAnomalousNodes(all, delta);
    EXPECT_LE(count, previous);
    previous = count;
  }
}

// Strips the O(log E) selection index so the functions under test fall back
// to the legacy O(E) peel loop, giving a reference for bitwise comparisons.
std::vector<TransitionScores> WithoutIndex(std::vector<TransitionScores> all) {
  for (TransitionScores& scores : all) scores.ClearSelectionIndex();
  return all;
}

TEST(SelectionIndexEquivalenceTest, CountAnomalousNodesMatchesLegacy) {
  std::vector<TransitionScores> indexed = {MakeScores({9, 4, 2, 1, 0}),
                                           MakeScores({3, 3}),
                                           MakeScores({0.25})};
  // Overlapping endpoints exercise the prefix_nodes path against the
  // EndpointUnion fallback.
  indexed.push_back(MakeScores({6, 5}));
  indexed.back().edges[1].pair = NodePair{0, 1};  // same nodes as edge 0
  for (TransitionScores& scores : indexed) scores.BuildSelectionIndex();
  const std::vector<TransitionScores> legacy = WithoutIndex(indexed);
  for (double delta : {0.0, 0.1, 0.5, 1.0, 2.0, 3.0, 5.0, 9.0, 11.0, 100.0}) {
    EXPECT_EQ(CountAnomalousNodes(indexed, delta),
              CountAnomalousNodes(legacy, delta))
        << "delta=" << delta;
  }
}

TEST(SelectionIndexEquivalenceTest, CalibrateDeltaMatchesLegacyBitwise) {
  // CalibrateDelta bisects on CountAnomalousNodes; identical counts at every
  // probe force an identical (bitwise) final delta.
  std::vector<TransitionScores> indexed = {MakeScores({8.5, 4.25, 2.0, 1e-3}),
                                           MakeScores({3, 3, 0.5}),
                                           MakeScores({0.125, 0.0})};
  for (TransitionScores& scores : indexed) scores.BuildSelectionIndex();
  const std::vector<TransitionScores> legacy = WithoutIndex(indexed);
  for (double target : {0.0, 0.5, 1.0, 2.0, 3.5, 6.0, 100.0}) {
    const double from_indexed = CalibrateDelta(indexed, target);
    const double from_legacy = CalibrateDelta(legacy, target);
    EXPECT_EQ(from_indexed, from_legacy) << "target=" << target;
  }
}

TEST(SelectionIndexEquivalenceTest, ApplyThresholdMatchesLegacy) {
  std::vector<TransitionScores> indexed = {MakeScores({9, 4, 2, 1}),
                                           MakeScores({0.5})};
  for (TransitionScores& scores : indexed) scores.BuildSelectionIndex();
  const std::vector<TransitionScores> legacy = WithoutIndex(indexed);
  for (double delta : {0.5, 2.0, 7.0, 20.0}) {
    const std::vector<AnomalyReport> a = ApplyThreshold(indexed, delta);
    const std::vector<AnomalyReport> b = ApplyThreshold(legacy, delta);
    ASSERT_EQ(a.size(), b.size());
    for (size_t t = 0; t < a.size(); ++t) {
      EXPECT_EQ(a[t].transition, b[t].transition);
      EXPECT_EQ(a[t].nodes, b[t].nodes);
      EXPECT_EQ(a[t].edges.size(), b[t].edges.size());
    }
  }
}

TEST(CalibrateDeltaTest, HitsExactTargetWhenAchievable) {
  // One transition, disjoint edges: flagging k edges = 2k nodes.
  std::vector<TransitionScores> all = {MakeScores({8, 4, 2, 1})};
  // Target 4 nodes per transition = 2 edges.
  const double delta = CalibrateDelta(all, 4.0);
  EXPECT_EQ(CountAnomalousNodes(all, delta), 4u);
}

TEST(CalibrateDeltaTest, CalmTransitionsStayCalm) {
  // The paper's rationale for a single global threshold: a quiet transition
  // must report nothing even when the average target is positive.
  std::vector<TransitionScores> all = {MakeScores({100, 90}),
                                       MakeScores({0.01})};
  const double delta = CalibrateDelta(all, 2.0);
  const std::vector<AnomalyReport> reports = ApplyThreshold(all, delta);
  EXPECT_FALSE(reports[0].nodes.empty());
  EXPECT_TRUE(reports[1].nodes.empty());
}

TEST(CalibrateDeltaTest, EmptyInput) {
  EXPECT_EQ(CalibrateDelta({}, 5.0), 0.0);
}

TEST(CalibrateDeltaTest, AllZeroScores) {
  std::vector<TransitionScores> all = {MakeScores({0, 0})};
  const double delta = CalibrateDelta(all, 5.0);
  EXPECT_EQ(CountAnomalousNodes(all, delta), 0u);
}

TEST(CalibrateDeltaTest, ZeroTargetFlagsNothing) {
  std::vector<TransitionScores> all = {MakeScores({5, 3})};
  const double delta = CalibrateDelta(all, 0.0);
  EXPECT_EQ(CountAnomalousNodes(all, delta), 0u);
}

TEST(CalibrateDeltaTest, TargetBeyondSupplyFlagsEverything) {
  std::vector<TransitionScores> all = {MakeScores({5, 3})};
  const double delta = CalibrateDelta(all, 100.0);
  // Only 2 edges exist -> 4 nodes max.
  EXPECT_EQ(CountAnomalousNodes(all, delta), 4u);
}

}  // namespace
}  // namespace cad
