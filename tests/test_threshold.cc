#include "core/threshold.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

TransitionScores MakeScores(std::vector<double> values) {
  TransitionScores scores;
  NodeId next = 0;
  for (double v : values) {
    scores.edges.push_back(ScoredEdge{NodePair{next, next + 1}, v, 0, 0});
    next += 2;  // disjoint endpoints: 2 nodes per edge
    scores.total_score += v;
  }
  scores.node_scores.assign(2 * values.size(), 0.0);
  return scores;
}

TEST(ApplyThresholdTest, ProducesReportsPerTransition) {
  std::vector<TransitionScores> all = {MakeScores({5, 1}), MakeScores({0.5})};
  const std::vector<AnomalyReport> reports = ApplyThreshold(all, 2.0);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].transition, 0u);
  EXPECT_EQ(reports[1].transition, 1u);
  // Transition 0: total 6 >= 2, peel 5 -> remaining 1 < 2. One edge.
  EXPECT_EQ(reports[0].edges.size(), 1u);
  EXPECT_EQ(reports[0].nodes.size(), 2u);
  // Transition 1: total 0.5 < 2: calm, nothing flagged.
  EXPECT_TRUE(reports[1].edges.empty());
  EXPECT_TRUE(reports[1].nodes.empty());
}

TEST(ApplyThresholdTest, EdgesKeepDescendingOrder) {
  std::vector<TransitionScores> all = {MakeScores({5, 4, 3})};
  const std::vector<AnomalyReport> reports = ApplyThreshold(all, 1.0);
  ASSERT_EQ(reports[0].edges.size(), 3u);
  EXPECT_GE(reports[0].edges[0].score, reports[0].edges[1].score);
  EXPECT_GE(reports[0].edges[1].score, reports[0].edges[2].score);
}

TEST(CountAnomalousNodesTest, CountsAcrossTransitions) {
  std::vector<TransitionScores> all = {MakeScores({5, 1}), MakeScores({7})};
  // delta = 2: transition 0 flags 1 edge (2 nodes); transition 1 flags 1
  // edge (2 nodes).
  EXPECT_EQ(CountAnomalousNodes(all, 2.0), 4u);
  // Huge delta: nothing.
  EXPECT_EQ(CountAnomalousNodes(all, 100.0), 0u);
}

TEST(CountAnomalousNodesTest, MonotoneNonIncreasingInDelta) {
  std::vector<TransitionScores> all = {MakeScores({9, 4, 2, 1}),
                                       MakeScores({3, 3})};
  size_t previous = CountAnomalousNodes(all, 0.01);
  for (double delta : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    const size_t count = CountAnomalousNodes(all, delta);
    EXPECT_LE(count, previous);
    previous = count;
  }
}

TEST(CalibrateDeltaTest, HitsExactTargetWhenAchievable) {
  // One transition, disjoint edges: flagging k edges = 2k nodes.
  std::vector<TransitionScores> all = {MakeScores({8, 4, 2, 1})};
  // Target 4 nodes per transition = 2 edges.
  const double delta = CalibrateDelta(all, 4.0);
  EXPECT_EQ(CountAnomalousNodes(all, delta), 4u);
}

TEST(CalibrateDeltaTest, CalmTransitionsStayCalm) {
  // The paper's rationale for a single global threshold: a quiet transition
  // must report nothing even when the average target is positive.
  std::vector<TransitionScores> all = {MakeScores({100, 90}),
                                       MakeScores({0.01})};
  const double delta = CalibrateDelta(all, 2.0);
  const std::vector<AnomalyReport> reports = ApplyThreshold(all, delta);
  EXPECT_FALSE(reports[0].nodes.empty());
  EXPECT_TRUE(reports[1].nodes.empty());
}

TEST(CalibrateDeltaTest, EmptyInput) {
  EXPECT_EQ(CalibrateDelta({}, 5.0), 0.0);
}

TEST(CalibrateDeltaTest, AllZeroScores) {
  std::vector<TransitionScores> all = {MakeScores({0, 0})};
  const double delta = CalibrateDelta(all, 5.0);
  EXPECT_EQ(CountAnomalousNodes(all, delta), 0u);
}

TEST(CalibrateDeltaTest, ZeroTargetFlagsNothing) {
  std::vector<TransitionScores> all = {MakeScores({5, 3})};
  const double delta = CalibrateDelta(all, 0.0);
  EXPECT_EQ(CountAnomalousNodes(all, delta), 0u);
}

TEST(CalibrateDeltaTest, TargetBeyondSupplyFlagsEverything) {
  std::vector<TransitionScores> all = {MakeScores({5, 3})};
  const double delta = CalibrateDelta(all, 100.0);
  // Only 2 edges exist -> 4 nodes max.
  EXPECT_EQ(CountAnomalousNodes(all, delta), 4u);
}

}  // namespace
}  // namespace cad
