#include "io/dot_writer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cad {
namespace {

WeightedGraph SmallGraph() {
  WeightedGraph g(4);
  CAD_CHECK_OK(g.SetEdge(0, 1, 2.0));
  CAD_CHECK_OK(g.SetEdge(1, 2, 1.0));
  return g;
}

TEST(DotWriterTest, EmitsNodesAndEdges) {
  std::ostringstream out;
  ASSERT_TRUE(WriteDot(SmallGraph(), DotOptions{}, &out).ok());
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph cad {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
  // Isolated node 3 excluded by default.
  EXPECT_EQ(dot.find("n3"), std::string::npos);
}

TEST(DotWriterTest, IncludeIsolated) {
  DotOptions options;
  options.include_isolated = true;
  std::ostringstream out;
  ASSERT_TRUE(WriteDot(SmallGraph(), options, &out).ok());
  EXPECT_NE(out.str().find("n3"), std::string::npos);
}

TEST(DotWriterTest, HighlightsAnomalies) {
  DotOptions options;
  options.highlighted_nodes = {1};
  options.highlighted_edges = {NodePair::Make(0, 1)};
  std::ostringstream out;
  ASSERT_TRUE(WriteDot(SmallGraph(), options, &out).ok());
  const std::string dot = out.str();
  EXPECT_NE(dot.find("fillcolor=\"#e74c3c\""), std::string::npos);
  // The highlighted edge carries the red color attribute.
  const size_t edge_pos = dot.find("n0 -- n1");
  ASSERT_NE(edge_pos, std::string::npos);
  const size_t line_end = dot.find('\n', edge_pos);
  EXPECT_NE(dot.substr(edge_pos, line_end - edge_pos).find("color="),
            std::string::npos);
}

TEST(DotWriterTest, UsesNodeNames) {
  DotOptions options;
  options.node_names = {"alice", "bob", "carol", "dan"};
  std::ostringstream out;
  ASSERT_TRUE(WriteDot(SmallGraph(), options, &out).ok());
  EXPECT_NE(out.str().find("label=\"alice\""), std::string::npos);
  EXPECT_NE(out.str().find("label=\"bob\""), std::string::npos);
}

TEST(DotWriterTest, EscapesLabels) {
  DotOptions options;
  options.node_names = {"say \"hi\"", "b", "c", "d"};
  std::ostringstream out;
  ASSERT_TRUE(WriteDot(SmallGraph(), options, &out).ok());
  EXPECT_NE(out.str().find("say \\\"hi\\\""), std::string::npos);
}

TEST(DotWriterTest, RejectsBadNameCount) {
  DotOptions options;
  options.node_names = {"only", "two"};
  std::ostringstream out;
  EXPECT_FALSE(WriteDot(SmallGraph(), options, &out).ok());
}

TEST(DotWriterTest, FileErrors) {
  EXPECT_EQ(
      WriteDotFile(SmallGraph(), DotOptions{}, "/nonexistent/dir/g.dot").code(),
      StatusCode::kIoError);
}

}  // namespace
}  // namespace cad
