#include "graph/edge_delta.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "graph/graph.h"

namespace cad {
namespace {

WeightedGraph MakePath(size_t n, double weight = 1.0) {
  WeightedGraph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    CAD_CHECK_OK(g.SetEdge(u, u + 1, weight));
  }
  return g;
}

TEST(EdgeDeltaTest, IdenticalSnapshotsProduceEmptyDelta) {
  const WeightedGraph g = MakePath(5);
  const EdgeDelta delta = DiffSnapshots(g, g);
  EXPECT_TRUE(delta.changes.empty());
  EXPECT_EQ(delta.rank(), 0u);
  EXPECT_EQ(delta.edges_before, 4u);
  EXPECT_EQ(delta.edges_after, 4u);
  EXPECT_EQ(delta.ChurnRatio(), 0.0);
}

TEST(EdgeDeltaTest, InsertionDeletionAndWeightChange) {
  WeightedGraph before = MakePath(6);
  WeightedGraph after = MakePath(6);
  CAD_CHECK_OK(after.SetEdge(0, 5, 2.5));  // inserted
  CAD_CHECK_OK(after.SetEdge(2, 3, 0.0));  // weight 0 deletes the edge
  CAD_CHECK_OK(after.SetEdge(3, 4, 7.0));  // weight changed

  const EdgeDelta delta = DiffSnapshots(before, after);
  ASSERT_EQ(delta.changes.size(), 3u);

  // Changes come out in canonical (u, v) ascending order.
  EXPECT_EQ(delta.changes[0].u, 0u);
  EXPECT_EQ(delta.changes[0].v, 5u);
  EXPECT_EQ(delta.changes[0].weight_before, 0.0);
  EXPECT_EQ(delta.changes[0].weight_after, 2.5);
  EXPECT_EQ(delta.changes[0].delta(), 2.5);

  EXPECT_EQ(delta.changes[1].u, 2u);
  EXPECT_EQ(delta.changes[1].v, 3u);
  EXPECT_EQ(delta.changes[1].weight_before, 1.0);
  EXPECT_EQ(delta.changes[1].weight_after, 0.0);
  EXPECT_EQ(delta.changes[1].delta(), -1.0);

  EXPECT_EQ(delta.changes[2].u, 3u);
  EXPECT_EQ(delta.changes[2].v, 4u);
  EXPECT_EQ(delta.changes[2].weight_before, 1.0);
  EXPECT_EQ(delta.changes[2].weight_after, 7.0);
  EXPECT_EQ(delta.changes[2].delta(), 6.0);
}

TEST(EdgeDeltaTest, UnchangedWeightsAreNotReported) {
  WeightedGraph before = MakePath(4, 3.0);
  WeightedGraph after = MakePath(4, 3.0);
  CAD_CHECK_OK(after.SetEdge(1, 2, 3.0));  // overwrite with the same weight
  const EdgeDelta delta = DiffSnapshots(before, after);
  EXPECT_TRUE(delta.changes.empty());
}

TEST(EdgeDeltaTest, ChurnRatioUsesLargerEdgeCount) {
  WeightedGraph before = MakePath(5);  // 4 edges
  WeightedGraph after = MakePath(5);
  CAD_CHECK_OK(after.SetEdge(0, 2, 1.0));
  CAD_CHECK_OK(after.SetEdge(0, 3, 1.0));  // 6 edges, 2 changed
  const EdgeDelta delta = DiffSnapshots(before, after);
  EXPECT_EQ(delta.rank(), 2u);
  EXPECT_DOUBLE_EQ(delta.ChurnRatio(), 2.0 / 6.0);
}

TEST(EdgeDeltaTest, EmptyToEmptyHasZeroChurn) {
  const WeightedGraph a(3);
  const WeightedGraph b(3);
  const EdgeDelta delta = DiffSnapshots(a, b);
  EXPECT_EQ(delta.ChurnRatio(), 0.0);
}

TEST(EdgeDeltaTest, DisjointEdgeSetsChangeEverything) {
  WeightedGraph before(4);
  CAD_CHECK_OK(before.SetEdge(0, 1, 1.0));
  WeightedGraph after(4);
  CAD_CHECK_OK(after.SetEdge(2, 3, 1.0));
  const EdgeDelta delta = DiffSnapshots(before, after);
  ASSERT_EQ(delta.changes.size(), 2u);
  EXPECT_EQ(delta.changes[0].weight_after, 0.0);  // (0,1) deleted
  EXPECT_EQ(delta.changes[1].weight_before, 0.0);  // (2,3) inserted
  EXPECT_DOUBLE_EQ(delta.ChurnRatio(), 2.0);
}

TEST(EdgeDeltaTest, GrownNodeSetDiffsFine) {
  // The extractor diffs edge lists, so a larger `after` node set with the
  // same edges is a clean no-op delta (the monitor grows snapshots before
  // diffing).
  const WeightedGraph before = MakePath(4);
  WeightedGraph after = MakePath(4);
  CAD_CHECK_OK(after.GrowTo(7));
  const EdgeDelta delta = DiffSnapshots(before, after);
  EXPECT_TRUE(delta.changes.empty());
}

}  // namespace
}  // namespace cad
