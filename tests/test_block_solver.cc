// Lockstep block-PCG contract tests: SolveBlock must reproduce the serial
// per-RHS path bit for bit — solutions, residuals, and iteration counts —
// because its per-column floating-point operation sequence is identical.
// (The thread-sweep variant of this contract lives in
// test_parallel_stress.cc.)

#include <bit>
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/random_graphs.h"
#include "graph/graph.h"
#include "linalg/conjugate_gradient.h"
#include "linalg/dense_matrix.h"
#include "linalg/incomplete_cholesky.h"

namespace cad {
namespace {

CsrMatrix LaplacianFixture(size_t n, uint64_t seed) {
  RandomGraphOptions opts;
  opts.num_nodes = n;
  opts.average_degree = 6.0;
  opts.seed = seed;
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  return g.ToLaplacianCsr(1e-6 * std::max(g.Volume(), 1.0));
}

/// k mean-centered right-hand sides as an n x k block.
DenseMatrix RhsBlock(size_t n, size_t k, uint64_t seed) {
  DenseMatrix b(n, k);
  Rng rng(seed);
  for (size_t c = 0; c < k; ++c) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double v = rng.Normal();
      b(i, c) = v;
      mean += v;
    }
    mean /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) b(i, c) -= mean;
  }
  return b;
}

std::vector<std::vector<double>> Columns(const DenseMatrix& b) {
  std::vector<std::vector<double>> columns(b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    columns[c].resize(b.rows());
    for (size_t i = 0; i < b.rows(); ++i) columns[c][i] = b(i, c);
  }
  return columns;
}

void ExpectBitIdentical(double expected, double actual, const char* what,
                        size_t i, size_t c) {
  EXPECT_EQ(std::bit_cast<uint64_t>(expected), std::bit_cast<uint64_t>(actual))
      << what << " differs at (" << i << ", " << c << "): " << expected
      << " vs " << actual;
}

void ExpectBlockMatchesSerial(const CsrMatrix& a, const DenseMatrix& b,
                              const CgOptions& options,
                              const CgSolveContext& context = {}) {
  const ConjugateGradientSolver solver(options);
  DenseMatrix x_block;
  Result<std::vector<CgSummary>> block =
      solver.SolveBlock(a, b, &x_block, context);
  ASSERT_TRUE(block.ok()) << block.status().ToString();

  const std::vector<std::vector<double>> rhs = Columns(b);
  std::vector<std::vector<double>> x_serial;
  Result<std::vector<CgSummary>> serial =
      solver.SolveMany(a, rhs, &x_serial, context);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  ASSERT_EQ(block->size(), serial->size());
  for (size_t c = 0; c < b.cols(); ++c) {
    EXPECT_EQ((*block)[c].iterations, (*serial)[c].iterations)
        << "iteration count differs for system " << c;
    EXPECT_EQ((*block)[c].converged, (*serial)[c].converged);
    ExpectBitIdentical((*serial)[c].relative_residual,
                       (*block)[c].relative_residual, "residual", 0, c);
    for (size_t i = 0; i < b.rows(); ++i) {
      ExpectBitIdentical(x_serial[c][i], x_block(i, c), "solution", i, c);
    }
  }
}

class BlockSolverWidths : public ::testing::TestWithParam<size_t> {};

TEST_P(BlockSolverWidths, BitIdenticalToSerialAcrossPreconditioners) {
  const size_t k = GetParam();
  const CsrMatrix a = LaplacianFixture(120, 77);
  const DenseMatrix b = RhsBlock(120, k, 123);
  for (CgPreconditioner preconditioner :
       {CgPreconditioner::kNone, CgPreconditioner::kJacobi,
        CgPreconditioner::kIncompleteCholesky}) {
    SCOPED_TRACE(CgPreconditionerToString(preconditioner));
    CgOptions options;
    options.preconditioner = preconditioner;
    ExpectBlockMatchesSerial(a, b, options);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BlockSolverWidths,
                         ::testing::Values(1, 3, 8));

TEST(BlockSolverTest, ZeroColumnConvergesInZeroIterationsAndStaysZero) {
  const CsrMatrix a = LaplacianFixture(40, 5);
  DenseMatrix b = RhsBlock(40, 3, 9);
  for (size_t i = 0; i < 40; ++i) b(i, 1) = 0.0;
  const ConjugateGradientSolver solver;
  DenseMatrix x;
  Result<std::vector<CgSummary>> summaries = solver.SolveBlock(a, b, &x);
  ASSERT_TRUE(summaries.ok());
  EXPECT_EQ((*summaries)[1].iterations, 0u);
  EXPECT_TRUE((*summaries)[1].converged);
  for (size_t i = 0; i < 40; ++i) EXPECT_EQ(x(i, 1), 0.0);
  EXPECT_GT((*summaries)[0].iterations, 0u);
  EXPECT_GT((*summaries)[2].iterations, 0u);
}

TEST(BlockSolverTest, InitialGuessBlockMatchesSerialWarmSolves) {
  const CsrMatrix a = LaplacianFixture(90, 31);
  const DenseMatrix b = RhsBlock(90, 4, 32);
  // A deliberately mediocre guess: the rhs itself, scaled.
  DenseMatrix guess(90, 4);
  for (size_t i = 0; i < 90; ++i) {
    for (size_t c = 0; c < 4; ++c) guess(i, c) = 0.1 * b(i, c);
  }
  CgSolveContext context;
  context.initial_guess = &guess;
  CgOptions options;
  ExpectBlockMatchesSerial(a, b, options, context);
}

TEST(BlockSolverTest, ExactGuessBlockConvergesInZeroIterations) {
  const CsrMatrix a = LaplacianFixture(60, 41);
  // Manufacture solutions first, then the rhs block B = A X.
  const DenseMatrix x_true = RhsBlock(60, 3, 42);
  DenseMatrix b;
  a.MultiplyBlock(x_true, &b);
  CgSolveContext context;
  context.initial_guess = &x_true;
  const ConjugateGradientSolver solver;
  DenseMatrix x;
  Result<std::vector<CgSummary>> summaries =
      solver.SolveBlock(a, b, &x, context);
  ASSERT_TRUE(summaries.ok());
  for (const CgSummary& summary : *summaries) {
    EXPECT_TRUE(summary.converged);
    EXPECT_EQ(summary.iterations, 0u);
  }
}

TEST(BlockSolverTest, CachedFactorMatchesFreshFactorBitwise) {
  const CsrMatrix a = LaplacianFixture(80, 51);
  const DenseMatrix b = RhsBlock(80, 4, 52);
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;
  const ConjugateGradientSolver solver(options);

  DenseMatrix x_fresh;
  Result<std::vector<CgSummary>> fresh = solver.SolveBlock(a, b, &x_fresh);
  ASSERT_TRUE(fresh.ok());

  Result<IncompleteCholesky> factor = IncompleteCholesky::Factor(a);
  ASSERT_TRUE(factor.ok());
  CgSolveContext context;
  context.cached_factor = &*factor;
  DenseMatrix x_cached;
  Result<std::vector<CgSummary>> cached =
      solver.SolveBlock(a, b, &x_cached, context);
  ASSERT_TRUE(cached.ok());

  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ((*fresh)[c].iterations, (*cached)[c].iterations);
    for (size_t i = 0; i < 80; ++i) {
      ExpectBitIdentical(x_fresh(i, c), x_cached(i, c), "solution", i, c);
    }
  }
}

TEST(BlockSolverTest, IndefiniteMatrixReportsBreakdown) {
  CooMatrix coo(2, 2);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 1, 1.0);
  coo.AddSymmetric(0, 1, 2.0);
  DenseMatrix b(2, 2);
  b(0, 0) = 1.0;
  b(1, 0) = -3.0;
  b(0, 1) = 2.0;
  b(1, 1) = 1.0;
  CgOptions options;
  options.preconditioner = CgPreconditioner::kNone;
  DenseMatrix x;
  Result<std::vector<CgSummary>> summaries =
      ConjugateGradientSolver(options).SolveBlock(coo.ToCsr(), b, &x);
  EXPECT_FALSE(summaries.ok());
  EXPECT_EQ(summaries.status().code(), StatusCode::kNumericalError);
}

TEST(BlockSolverTest, RejectsMismatchedGuessShape) {
  const CsrMatrix a = LaplacianFixture(30, 61);
  const DenseMatrix b = RhsBlock(30, 2, 62);
  DenseMatrix guess(30, 3);  // wrong column count
  CgSolveContext context;
  context.initial_guess = &guess;
  DenseMatrix x;
  EXPECT_FALSE(
      ConjugateGradientSolver().SolveBlock(a, b, &x, context).ok());
}

TEST(BlockSolverTest, SolveManyDispatchesToBlockPath) {
  // use_block_solver routes SolveMany through SolveBlock; outputs must stay
  // bit-identical to the per-RHS path.
  const CsrMatrix a = LaplacianFixture(70, 71);
  const DenseMatrix b = RhsBlock(70, 5, 72);
  const std::vector<std::vector<double>> rhs = Columns(b);

  CgOptions serial_options;
  CgOptions block_options;
  block_options.use_block_solver = true;

  std::vector<std::vector<double>> x_serial;
  std::vector<std::vector<double>> x_block;
  Result<std::vector<CgSummary>> serial =
      ConjugateGradientSolver(serial_options).SolveMany(a, rhs, &x_serial);
  Result<std::vector<CgSummary>> block =
      ConjugateGradientSolver(block_options).SolveMany(a, rhs, &x_block);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(block.ok());
  for (size_t c = 0; c < rhs.size(); ++c) {
    EXPECT_EQ((*serial)[c].iterations, (*block)[c].iterations);
    for (size_t i = 0; i < 70; ++i) {
      ExpectBitIdentical(x_serial[c][i], x_block[c][i], "solution", i, c);
    }
  }
}

TEST(SpMMKernelTest, MultiplyBlockMatchesPerColumnSpMV) {
  const CsrMatrix a = LaplacianFixture(100, 81);
  const DenseMatrix x = RhsBlock(100, 7, 82);
  DenseMatrix y;
  a.MultiplyBlock(x, &y);
  for (size_t c = 0; c < 7; ++c) {
    std::vector<double> column(100);
    for (size_t i = 0; i < 100; ++i) column[i] = x(i, c);
    const std::vector<double> expected = a.Multiply(column);
    for (size_t i = 0; i < 100; ++i) {
      ExpectBitIdentical(expected[i], y(i, c), "SpMM", i, c);
    }
  }
}

TEST(SpMMKernelTest, MultiplyAccumulateBlockMatchesPerColumnAccumulate) {
  const CsrMatrix a = LaplacianFixture(64, 91);
  const DenseMatrix x = RhsBlock(64, 5, 92);
  DenseMatrix y = RhsBlock(64, 5, 93);
  DenseMatrix y_block = y;
  a.MultiplyAccumulateBlock(-1.0, x, &y_block);
  for (size_t c = 0; c < 5; ++c) {
    std::vector<double> x_col(64);
    std::vector<double> y_col(64);
    for (size_t i = 0; i < 64; ++i) {
      x_col[i] = x(i, c);
      y_col[i] = y(i, c);
    }
    a.MultiplyAccumulate(-1.0, x_col, &y_col);
    for (size_t i = 0; i < 64; ++i) {
      ExpectBitIdentical(y_col[i], y_block(i, c), "SpMM accumulate", i, c);
    }
  }
}

TEST(SpMMKernelTest, BlockedIcApplyMatchesPerColumnApply) {
  const CsrMatrix a = LaplacianFixture(96, 95);
  Result<IncompleteCholesky> factor = IncompleteCholesky::Factor(a);
  ASSERT_TRUE(factor.ok());
  const DenseMatrix b = RhsBlock(96, 6, 96);
  DenseMatrix x;
  factor->ApplyBlock(b, &x);
  for (size_t c = 0; c < 6; ++c) {
    std::vector<double> column(96);
    for (size_t i = 0; i < 96; ++i) column[i] = b(i, c);
    const std::vector<double> expected = factor->Apply(column);
    for (size_t i = 0; i < 96; ++i) {
      ExpectBitIdentical(expected[i], x(i, c), "IC apply", i, c);
    }
  }
}

}  // namespace
}  // namespace cad
