#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/online_monitor.h"

namespace cad {
namespace {

// ---------------------------------------------------------------------------
// Primitive encoding

TEST(CheckpointPrimitiveTest, ScalarsRoundTrip) {
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  writer.WriteU8(200);
  writer.WriteU32(0x12345678u);
  writer.WriteU64(0xDEADBEEFCAFEF00DULL);
  writer.WriteDouble(-0.1);
  ASSERT_TRUE(writer.Finish().ok());

  CheckpointReader reader(&buffer);
  auto u8 = reader.ReadU8();
  ASSERT_TRUE(u8.ok());
  EXPECT_EQ(*u8, 200);
  auto u32 = reader.ReadU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0x12345678u);
  auto u64 = reader.ReadU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0xDEADBEEFCAFEF00DULL);
  auto dbl = reader.ReadDouble();
  ASSERT_TRUE(dbl.ok());
  EXPECT_EQ(*dbl, -0.1);  // bit-exact, not approximate
}

TEST(CheckpointPrimitiveTest, EncodingIsLittleEndian) {
  // The format promises byte-identical output across hosts; pin the layout.
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  writer.WriteU32(0x12345678u);
  ASSERT_TRUE(writer.Finish().ok());
  const std::string bytes = buffer.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x78);
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0x56);
  EXPECT_EQ(static_cast<uint8_t>(bytes[2]), 0x34);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0x12);
}

TEST(CheckpointPrimitiveTest, VectorsRoundTrip) {
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  const std::vector<uint32_t> u32s = {3, 1, 4, 1, 5};
  const std::vector<size_t> sizes = {0, 9, 1ull << 40};
  const std::vector<double> doubles = {1.5, -2.25, 0.0};
  writer.WriteU32Vec(u32s);
  writer.WriteSizeVec(sizes);
  writer.WriteDoubleVec(doubles);
  ASSERT_TRUE(writer.Finish().ok());

  CheckpointReader reader(&buffer);
  auto read_u32s = reader.ReadU32Vec();
  ASSERT_TRUE(read_u32s.ok());
  EXPECT_EQ(*read_u32s, u32s);
  auto read_sizes = reader.ReadSizeVec();
  ASSERT_TRUE(read_sizes.ok());
  EXPECT_EQ(*read_sizes, sizes);
  auto read_doubles = reader.ReadDoubleVec();
  ASSERT_TRUE(read_doubles.ok());
  EXPECT_EQ(*read_doubles, doubles);
}

TEST(CheckpointPrimitiveTest, TruncationIsIoError) {
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  writer.WriteU32(7);  // 4 bytes: not enough for a u64
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  auto u64 = reader.ReadU64();
  ASSERT_FALSE(u64.ok());
  EXPECT_EQ(u64.status().code(), StatusCode::kIoError);
}

TEST(CheckpointPrimitiveTest, CorruptVectorLengthIsIoErrorNotBadAlloc) {
  // A huge claimed element count must surface as truncation, not as an
  // upfront allocation of the claimed size.
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  writer.WriteU64(1ull << 60);  // claimed count, no elements follow
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  auto values = reader.ReadDoubleVec();
  ASSERT_FALSE(values.ok());
  EXPECT_EQ(values.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Composite serializers

TEST(CheckpointCompositeTest, WeightedGraphRoundTrips) {
  WeightedGraph graph(6);
  ASSERT_TRUE(graph.SetEdge(0, 1, 2.5).ok());
  ASSERT_TRUE(graph.SetEdge(2, 5, 0.125).ok());
  ASSERT_TRUE(graph.SetEdge(3, 4, 7.0).ok());
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  WriteWeightedGraph(&writer, graph);
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  auto restored = ReadWeightedGraph(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == graph);
}

TEST(CheckpointCompositeTest, DenseMatrixRoundTrips) {
  DenseMatrix matrix(2, 3);
  matrix(0, 0) = 1.0;
  matrix(0, 2) = -4.5;
  matrix(1, 1) = 1e-17;
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  WriteDenseMatrix(&writer, matrix);
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  auto restored = ReadDenseMatrix(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->rows(), 2u);
  EXPECT_EQ(restored->cols(), 3u);
  EXPECT_EQ(restored->data(), matrix.data());
}

TEST(CheckpointCompositeTest, CsrMatrixRoundTrips) {
  CooMatrix coo(3, 3);
  coo.AddSymmetric(0, 1, 2.0);
  coo.Add(2, 2, -1.5);
  const CsrMatrix matrix = coo.ToCsr();
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  WriteCsrMatrix(&writer, matrix);
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  auto restored = ReadCsrMatrix(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->row_offsets(), matrix.row_offsets());
  EXPECT_EQ(restored->col_indices(), matrix.col_indices());
  EXPECT_EQ(restored->values(), matrix.values());
}

TEST(CheckpointCompositeTest, CorruptCsrStructureRejected) {
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  writer.WriteU64(2);                     // rows
  writer.WriteU64(2);                     // cols
  writer.WriteSizeVec({0, 2, 1});         // offsets not sorted
  writer.WriteU32Vec({0, 1});             // col indices
  writer.WriteDoubleVec({1.0, 2.0});      // values
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  auto restored = ReadCsrMatrix(&reader);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointCompositeTest, TransitionScoresRoundTripRebuildsIndex) {
  TransitionScores scores;
  scores.edges = {
      ScoredEdge{NodePair{0, 1}, 5.0, 1.0, 5.0},
      ScoredEdge{NodePair{1, 2}, 3.0, -3.0, 1.0},
      ScoredEdge{NodePair{2, 3}, 0.0, 0.0, 7.0},
  };
  scores.total_score = 8.0;
  scores.node_scores = {5.0, 8.0, 3.0, 0.0};
  scores.BuildSelectionIndex();

  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  WriteTransitionScores(&writer, scores);
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  auto restored = ReadTransitionScores(&reader);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->edges.size(), scores.edges.size());
  for (size_t i = 0; i < scores.edges.size(); ++i) {
    EXPECT_EQ(restored->edges[i].pair, scores.edges[i].pair);
    EXPECT_EQ(restored->edges[i].score, scores.edges[i].score);
    EXPECT_EQ(restored->edges[i].weight_delta, scores.edges[i].weight_delta);
    EXPECT_EQ(restored->edges[i].commute_delta, scores.edges[i].commute_delta);
  }
  EXPECT_EQ(restored->total_score, scores.total_score);
  EXPECT_EQ(restored->node_scores, scores.node_scores);
  // The selection index is rebuilt on read, not stored.
  EXPECT_TRUE(restored->has_selection_index());
  EXPECT_EQ(restored->num_positive, scores.num_positive);
  EXPECT_EQ(restored->remaining_mass, scores.remaining_mass);
  EXPECT_EQ(restored->prefix_nodes, scores.prefix_nodes);
}

// ---------------------------------------------------------------------------
// Header validation

TEST(CheckpointHeaderTest, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOTACKPT and then some trailing garbage";
  CheckpointReader reader(&buffer);
  const Status status = reader.ExpectHeader();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointHeaderTest, UnsupportedVersionRejected) {
  std::stringstream buffer;
  buffer.write(kCheckpointMagic, kCheckpointMagicSize);
  const char version = 99;
  buffer.write(&version, 1);
  CheckpointReader reader(&buffer);
  const Status status = reader.ExpectHeader();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointHeaderTest, TruncatedHeaderIsIoError) {
  std::stringstream buffer;
  buffer << "CAD";  // shorter than the magic
  CheckpointReader reader(&buffer);
  const Status status = reader.ExpectHeader();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Monitor save/load

WeightedGraph TwoTeams(double bridge_weight) {
  WeightedGraph g(8);
  for (NodeId base : {NodeId{0}, NodeId{4}}) {
    for (NodeId a = 0; a < 4; ++a) {
      for (NodeId b = a + 1; b < 4; ++b) {
        CAD_CHECK_OK(g.SetEdge(base + a, base + b, 3.0));
      }
    }
  }
  CAD_CHECK_OK(g.SetEdge(3, 4, 0.3));
  if (bridge_weight > 0.0) CAD_CHECK_OK(g.SetEdge(0, 7, bridge_weight));
  return g;
}

std::vector<WeightedGraph> DriftingStream() {
  std::vector<WeightedGraph> stream;
  for (double w : {0.0, 0.0, 0.5, 0.0, 2.0, 0.0, 1.0, 0.0, 3.0, 0.5}) {
    stream.push_back(TwoTeams(w));
  }
  return stream;
}

void ExpectIdenticalReports(const Result<std::optional<AnomalyReport>>& lhs,
                            const Result<std::optional<AnomalyReport>>& rhs) {
  ASSERT_TRUE(lhs.ok());
  ASSERT_TRUE(rhs.ok());
  ASSERT_EQ(lhs->has_value(), rhs->has_value());
  if (!lhs->has_value()) return;
  const AnomalyReport& a = **lhs;
  const AnomalyReport& b = **rhs;
  EXPECT_EQ(a.transition, b.transition);
  EXPECT_EQ(a.nodes, b.nodes);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].pair, b.edges[i].pair);
    // Bitwise equality: the checkpoint stores IEEE-754 bit patterns and the
    // restored monitor must retrace the continued monitor exactly.
    EXPECT_EQ(a.edges[i].score, b.edges[i].score);
    EXPECT_EQ(a.edges[i].weight_delta, b.edges[i].weight_delta);
    EXPECT_EQ(a.edges[i].commute_delta, b.edges[i].commute_delta);
  }
}

// Feeds `stream` to a monitor, checkpointing after `split` snapshots;
// restores a second monitor from the checkpoint and verifies the remaining
// reports are identical to the uninterrupted run's.
void RunKillAndRestore(const OnlineMonitorOptions& options, size_t split) {
  const std::vector<WeightedGraph> stream = DriftingStream();
  ASSERT_LT(split, stream.size());

  OnlineCadMonitor continued(options);
  for (size_t t = 0; t < split; ++t) {
    ASSERT_TRUE(continued.Observe(stream[t]).ok());
  }
  std::stringstream checkpoint;
  ASSERT_TRUE(continued.SaveCheckpoint(&checkpoint).ok());

  OnlineCadMonitor restored(options);
  ASSERT_TRUE(restored.LoadCheckpoint(&checkpoint).ok());
  EXPECT_EQ(restored.num_snapshots(), continued.num_snapshots());
  EXPECT_EQ(restored.num_transitions(), continued.num_transitions());
  EXPECT_EQ(restored.current_delta(), continued.current_delta());
  EXPECT_EQ(restored.history().size(), continued.history().size());

  for (size_t t = split; t < stream.size(); ++t) {
    auto from_continued = continued.Observe(stream[t]);
    auto from_restored = restored.Observe(stream[t]);
    ExpectIdenticalReports(from_continued, from_restored);
    EXPECT_EQ(restored.current_delta(), continued.current_delta());
  }
}

TEST(MonitorCheckpointTest, KillAndRestoreExactEngine) {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  options.nodes_per_transition = 2.0;
  options.warmup_transitions = 2;
  RunKillAndRestore(options, 5);
}

TEST(MonitorCheckpointTest, KillAndRestoreApproxWarmStart) {
  // Warm start is the hard case: the checkpoint must carry the solver
  // cache's embedding and IC(0) factor, or the resumed CG iterates (and so
  // the scores) diverge from the uninterrupted run.
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kApprox;
  options.detector.approx.embedding_dim = 8;
  options.detector.approx.seed = 3;
  options.detector.approx.warm_start = true;
  options.nodes_per_transition = 2.0;
  options.warmup_transitions = 2;
  RunKillAndRestore(options, 4);
}

TEST(MonitorCheckpointTest, KillAndRestoreUnderSlidingWindow) {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  options.nodes_per_transition = 2.0;
  options.warmup_transitions = 2;
  options.max_history = 3;
  RunKillAndRestore(options, 6);
}

TEST(MonitorCheckpointTest, SaveBeforeAnySnapshotRestores) {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor fresh(options);
  std::stringstream checkpoint;
  ASSERT_TRUE(fresh.SaveCheckpoint(&checkpoint).ok());
  OnlineCadMonitor restored(options);
  ASSERT_TRUE(restored.LoadCheckpoint(&checkpoint).ok());
  EXPECT_EQ(restored.num_snapshots(), 0u);
  EXPECT_EQ(restored.num_transitions(), 0u);
  EXPECT_EQ(restored.current_delta(), 0.0);
}

TEST(MonitorCheckpointTest, EngineMismatchRejected) {
  OnlineMonitorOptions exact_options;
  exact_options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor saver(exact_options);
  ASSERT_TRUE(saver.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(saver.Observe(TwoTeams(1.0)).ok());
  std::stringstream checkpoint;
  ASSERT_TRUE(saver.SaveCheckpoint(&checkpoint).ok());

  OnlineMonitorOptions approx_options;
  approx_options.detector.engine = CommuteEngine::kApprox;
  OnlineCadMonitor loader(approx_options);
  const Status status = loader.LoadCheckpoint(&checkpoint);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // A failed load leaves the monitor untouched.
  EXPECT_EQ(loader.num_snapshots(), 0u);
}

TEST(MonitorCheckpointTest, FailedLoadLeavesMonitorUsable) {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());

  std::stringstream garbage;
  garbage << "definitely not a checkpoint";
  ASSERT_FALSE(monitor.LoadCheckpoint(&garbage).ok());
  EXPECT_EQ(monitor.num_snapshots(), 1u);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  EXPECT_EQ(monitor.num_snapshots(), 2u);
}

TEST(MonitorCheckpointTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/monitor_ckpt_test.bin";
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor saver(options);
  ASSERT_TRUE(saver.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(saver.Observe(TwoTeams(2.0)).ok());
  ASSERT_TRUE(saver.SaveCheckpointFile(path).ok());

  OnlineCadMonitor restored(options);
  ASSERT_TRUE(restored.LoadCheckpointFile(path).ok());
  EXPECT_EQ(restored.num_snapshots(), 2u);
  EXPECT_EQ(restored.num_transitions(), 1u);
  EXPECT_EQ(restored.current_delta(), saver.current_delta());
  std::remove(path.c_str());
}

TEST(MonitorCheckpointTest, MissingFileIsIoError) {
  OnlineCadMonitor monitor;
  const Status status =
      monitor.LoadCheckpointFile("/nonexistent/checkpoint.bin");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Vocabulary / format versioning (DESIGN.md §8)

TEST(CheckpointPrimitiveTest, StringsRoundTrip) {
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  writer.WriteString("");
  writer.WriteString("alice");
  writer.WriteString(std::string(10000, 'x'));
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  auto empty = reader.ReadString();
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, "");
  auto alice = reader.ReadString();
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(*alice, "alice");
  auto big = reader.ReadString();
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->size(), 10000u);
}

TEST(CheckpointPrimitiveTest, CorruptStringLengthIsIoErrorNotBadAlloc) {
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  writer.WriteU64(1ull << 60);  // claimed length, no bytes follow
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  auto value = reader.ReadString();
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kIoError);
}

TEST(CheckpointCompositeTest, NodeVocabularyRoundTrips) {
  Result<NodeVocabulary> vocab =
      NodeVocabulary::FromNames({"alice", "bob", "carol_7"});
  ASSERT_TRUE(vocab.ok());
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  WriteNodeVocabulary(&writer, *vocab);
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  auto restored = ReadNodeVocabulary(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == *vocab);
}

TEST(CheckpointCompositeTest, CorruptVocabularyWithDuplicatesRejected) {
  std::stringstream buffer;
  CheckpointWriter writer(&buffer);
  writer.WriteU64(2);
  writer.WriteString("same");
  writer.WriteString("same");
  ASSERT_TRUE(writer.Finish().ok());
  CheckpointReader reader(&buffer);
  EXPECT_FALSE(ReadNodeVocabulary(&reader).ok());
}

TEST(MonitorCheckpointTest, IntegerStreamsStillWriteVersion1) {
  // Byte-level compatibility: without a vocabulary the checkpoint must be
  // exactly the v1 format, so existing integer kill/resume byte-diffs hold.
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  std::stringstream checkpoint;
  ASSERT_TRUE(monitor.SaveCheckpoint(&checkpoint).ok());
  const std::string bytes = checkpoint.str();
  ASSERT_GT(bytes.size(), kCheckpointMagicSize);
  EXPECT_EQ(static_cast<uint8_t>(bytes[kCheckpointMagicSize]),
            kCheckpointVersionIntegerIds);
}

TEST(MonitorCheckpointTest, VocabularyRoundTripsThroughVersion2) {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor saver(options);
  ASSERT_TRUE(saver.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(saver.Observe(TwoTeams(1.0)).ok());
  Result<NodeVocabulary> vocab = NodeVocabulary::FromNames(
      {"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3"});
  ASSERT_TRUE(vocab.ok());
  saver.SetVocabulary(*vocab);
  std::stringstream checkpoint;
  ASSERT_TRUE(saver.SaveCheckpoint(&checkpoint).ok());
  const std::string bytes = checkpoint.str();
  EXPECT_EQ(static_cast<uint8_t>(bytes[kCheckpointMagicSize]),
            kCheckpointVersionNamedNodes);

  OnlineCadMonitor restored(options);
  ASSERT_TRUE(restored.LoadCheckpoint(&checkpoint).ok());
  ASSERT_NE(restored.vocabulary(), nullptr);
  EXPECT_TRUE(*restored.vocabulary() == *vocab);
  EXPECT_EQ(restored.num_snapshots(), 2u);
}

TEST(MonitorCheckpointTest, VocabularyMayRunAheadOfSnapshot) {
  // The stream driver's vocabulary can already hold names interned from
  // open-window events past the checkpointed snapshot; that is legal. It
  // must never run behind.
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor saver(options);
  ASSERT_TRUE(saver.Observe(TwoTeams(0.0)).ok());
  Result<NodeVocabulary> ahead = NodeVocabulary::FromNames(
      {"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3", "late_joiner"});
  ASSERT_TRUE(ahead.ok());
  saver.SetVocabulary(*ahead);
  std::stringstream checkpoint;
  ASSERT_TRUE(saver.SaveCheckpoint(&checkpoint).ok());
  OnlineCadMonitor restored(options);
  ASSERT_TRUE(restored.LoadCheckpoint(&checkpoint).ok());
  ASSERT_NE(restored.vocabulary(), nullptr);
  EXPECT_EQ(restored.vocabulary()->size(), 9u);

  OnlineCadMonitor behind_saver(options);
  ASSERT_TRUE(behind_saver.Observe(TwoTeams(0.0)).ok());
  Result<NodeVocabulary> behind = NodeVocabulary::FromNames({"only_one"});
  ASSERT_TRUE(behind.ok());
  behind_saver.SetVocabulary(*behind);
  std::stringstream bad_checkpoint;
  ASSERT_TRUE(behind_saver.SaveCheckpoint(&bad_checkpoint).ok());
  OnlineCadMonitor rejecting(options);
  EXPECT_FALSE(rejecting.LoadCheckpoint(&bad_checkpoint).ok());
}

// ---------------------------------------------------------------------------
// Incremental maintenance / format version 3 (DESIGN.md §12)

OnlineMonitorOptions IncrementalApproxOptions() {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kApprox;
  options.detector.approx.embedding_dim = 8;
  options.detector.approx.seed = 3;
  options.incremental = true;
  options.nodes_per_transition = 2.0;
  options.warmup_transitions = 2;
  return options;
}

TEST(MonitorCheckpointTest, KillAndRestoreIncrementalMonitor) {
  // The incremental path's cross-window state (JL right-hand-side block,
  // reuse counters, previous embedding) rides in the v3 section; a restored
  // monitor must retrace the uninterrupted run's reports byte-for-byte,
  // including which columns the residual gate reuses.
  RunKillAndRestore(IncrementalApproxOptions(), 4);
}

TEST(MonitorCheckpointTest, KillAndRestoreIncrementalAtEveryEarlySplit) {
  // Split points straddle the state's lifecycle: before any snapshot,
  // after the seeding full build, and after incremental windows.
  for (size_t split : {size_t{1}, size_t{2}, size_t{6}}) {
    RunKillAndRestore(IncrementalApproxOptions(), split);
  }
}

TEST(MonitorCheckpointTest, IncrementalMonitorWritesVersion3) {
  OnlineCadMonitor monitor(IncrementalApproxOptions());
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  std::stringstream checkpoint;
  ASSERT_TRUE(monitor.SaveCheckpoint(&checkpoint).ok());
  const std::string bytes = checkpoint.str();
  ASSERT_GT(bytes.size(), kCheckpointMagicSize);
  EXPECT_EQ(static_cast<uint8_t>(bytes[kCheckpointMagicSize]),
            kCheckpointVersionIncremental);

  // The same stream through a non-incremental monitor stays v1 — the new
  // format never leaks into existing byte-compatibility contracts.
  OnlineMonitorOptions plain = IncrementalApproxOptions();
  plain.incremental = false;
  plain.detector.approx.warm_start = true;
  OnlineCadMonitor old_style(plain);
  ASSERT_TRUE(old_style.Observe(TwoTeams(0.0)).ok());
  std::stringstream old_checkpoint;
  ASSERT_TRUE(old_style.SaveCheckpoint(&old_checkpoint).ok());
  EXPECT_EQ(static_cast<uint8_t>(old_checkpoint.str()[kCheckpointMagicSize]),
            kCheckpointVersionIntegerIds);
}

TEST(MonitorCheckpointTest, PreIncrementalCheckpointLoadsIntoIncrementalMonitor) {
  // v1/v2 files predate the incremental section; loading one into an
  // incremental monitor must succeed with empty incremental state (the
  // first resumed window full-rebuilds to re-seed it).
  OnlineMonitorOptions plain = IncrementalApproxOptions();
  plain.incremental = false;
  plain.detector.approx.warm_start = true;
  OnlineCadMonitor saver(plain);
  ASSERT_TRUE(saver.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(saver.Observe(TwoTeams(1.0)).ok());
  std::stringstream checkpoint;
  ASSERT_TRUE(saver.SaveCheckpoint(&checkpoint).ok());

  OnlineCadMonitor restored(IncrementalApproxOptions());
  ASSERT_TRUE(restored.LoadCheckpoint(&checkpoint).ok());
  EXPECT_EQ(restored.num_snapshots(), 2u);
  ASSERT_TRUE(restored.Observe(TwoTeams(0.5)).ok());
  ASSERT_TRUE(restored.Observe(TwoTeams(2.0)).ok());
}

TEST(MonitorCheckpointTest, TruncatedIncrementalCheckpointRejectedCleanly) {
  // Cutting the v3 stream anywhere — including inside the incremental
  // section — must be reported as IoError with the monitor left untouched
  // and usable, never partially restored.
  OnlineCadMonitor saver(IncrementalApproxOptions());
  ASSERT_TRUE(saver.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(saver.Observe(TwoTeams(1.0)).ok());
  ASSERT_TRUE(saver.Observe(TwoTeams(0.5)).ok());
  std::stringstream checkpoint;
  ASSERT_TRUE(saver.SaveCheckpoint(&checkpoint).ok());
  const std::string bytes = checkpoint.str();

  for (size_t keep : {bytes.size() - 1, bytes.size() - 9,
                      bytes.size() * 3 / 4, bytes.size() / 2}) {
    std::stringstream truncated(bytes.substr(0, keep));
    OnlineCadMonitor loader(IncrementalApproxOptions());
    ASSERT_TRUE(loader.Observe(TwoTeams(0.0)).ok());
    const Status status = loader.LoadCheckpoint(&truncated);
    ASSERT_FALSE(status.ok()) << "keep=" << keep;
    EXPECT_EQ(status.code(), StatusCode::kIoError) << "keep=" << keep;
    EXPECT_EQ(loader.num_snapshots(), 1u);
    ASSERT_TRUE(loader.Observe(TwoTeams(1.0)).ok());
  }
}

TEST(MonitorCheckpointTest, Version1CheckpointStillLoads) {
  // Forward compatibility with pre-vocabulary checkpoints: a v1 byte stream
  // (which is exactly what a vocabulary-less monitor writes) must load into
  // the current code with no vocabulary attached.
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor saver(options);
  ASSERT_TRUE(saver.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(saver.Observe(TwoTeams(2.0)).ok());
  std::stringstream checkpoint;
  ASSERT_TRUE(saver.SaveCheckpoint(&checkpoint).ok());

  OnlineCadMonitor restored(options);
  ASSERT_TRUE(restored.LoadCheckpoint(&checkpoint).ok());
  EXPECT_EQ(restored.vocabulary(), nullptr);
  EXPECT_EQ(restored.num_snapshots(), 2u);
  EXPECT_EQ(restored.current_delta(), saver.current_delta());
}

// ---------------------------------------------------------------------------
// Atomic file replacement (WriteFileAtomic / SaveCheckpointFile)

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool PathExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.is_open();
}

TEST(AtomicSaveTest, WriterFailureLeavesTargetUntouchedAndNoTempBehind) {
  const std::string path = ::testing::TempDir() + "/atomic_fail.bin";
  std::remove(path.c_str());
  ASSERT_TRUE(WriteFileAtomic(path, [](std::ostream* out) {
                *out << "good bytes";
                return Status::OK();
              }).ok());
  EXPECT_EQ(SlurpFile(path), "good bytes");

  const Status failed = WriteFileAtomic(path, [](std::ostream* out) {
    *out << "half-writ";
    return Status::IoError("simulated mid-write failure");
  });
  ASSERT_FALSE(failed.ok());
  // The previous contents survive and the temp file is cleaned up.
  EXPECT_EQ(SlurpFile(path), "good bytes");
  EXPECT_FALSE(PathExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicSaveTest, KillMidWriteLeavesOldCheckpointLoadable) {
  // A crash between opening <path>.tmp and the rename leaves a stray or
  // truncated temp file next to an intact checkpoint. Loading must see only
  // the intact file, and the next save must replace the stray temp.
  const std::string path = ::testing::TempDir() + "/atomic_kill.bin";
  std::remove(path.c_str());
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor saver(options);
  ASSERT_TRUE(saver.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(saver.Observe(TwoTeams(2.0)).ok());
  ASSERT_TRUE(saver.SaveCheckpointFile(path).ok());

  {  // Plant the debris a kill -9 mid-write would leave.
    std::ofstream stray(path + ".tmp", std::ios::binary | std::ios::trunc);
    stray << "CADCKPT";  // valid magic, then nothing: a truncated write
  }
  OnlineCadMonitor restored(options);
  ASSERT_TRUE(restored.LoadCheckpointFile(path).ok());
  EXPECT_EQ(restored.num_snapshots(), 2u);
  EXPECT_EQ(restored.current_delta(), saver.current_delta());

  // The next interval checkpoint replaces both the target and the debris.
  ASSERT_TRUE(saver.Observe(TwoTeams(1.0)).ok());
  ASSERT_TRUE(saver.SaveCheckpointFile(path).ok());
  EXPECT_FALSE(PathExists(path + ".tmp"));
  OnlineCadMonitor latest(options);
  ASSERT_TRUE(latest.LoadCheckpointFile(path).ok());
  EXPECT_EQ(latest.num_snapshots(), 3u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Cross-field consistency (corrupt or hand-edited checkpoints)

TEST(MonitorCheckpointTest, InconsistentTransitionCountRejected) {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor saver(options);
  ASSERT_TRUE(saver.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(saver.Observe(TwoTeams(2.0)).ok());
  std::stringstream checkpoint;
  ASSERT_TRUE(saver.SaveCheckpoint(&checkpoint).ok());
  std::string bytes = checkpoint.str();
  ASSERT_EQ(static_cast<uint8_t>(bytes[7]), kCheckpointVersionIntegerIds);

  // v1 layout: magic(7) version(1) snapshots(u64 at 8) transitions(u64 at
  // 16). Bump the transition count so it no longer equals snapshots - 1.
  bytes[16] = static_cast<char>(static_cast<uint8_t>(bytes[16]) + 1);
  std::stringstream corrupted(bytes);
  OnlineCadMonitor loader(options);
  const Status status = loader.LoadCheckpoint(&corrupted);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(loader.num_snapshots(), 0u);
}

TEST(MonitorCheckpointTest, InconsistentPresenceByteRejected) {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  OnlineCadMonitor saver(options);
  ASSERT_TRUE(saver.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(saver.Observe(TwoTeams(2.0)).ok());
  std::stringstream checkpoint;
  ASSERT_TRUE(saver.SaveCheckpoint(&checkpoint).ok());
  std::string bytes = checkpoint.str();
  ASSERT_EQ(static_cast<uint8_t>(bytes[7]), kCheckpointVersionIntegerIds);

  // v1 layout: the previous-snapshot presence byte sits at offset 32 (after
  // snapshots, transitions, and the delta double). Claiming "no previous
  // snapshot" with 2 observed snapshots is self-contradictory.
  ASSERT_EQ(static_cast<uint8_t>(bytes[32]), 1u);
  bytes[32] = 0;
  std::stringstream corrupted(bytes);
  OnlineCadMonitor loader(options);
  const Status status = loader.LoadCheckpoint(&corrupted);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(loader.num_snapshots(), 0u);
}

}  // namespace
}  // namespace cad
