// Randomized round-trip and algebraic invariant properties over the graph
// and I/O substrates.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/random_graphs.h"
#include "io/temporal_io.h"
#include "linalg/vector_ops.h"

namespace cad {
namespace {

class RoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

/// Write -> read recovers random temporal sequences bit-for-bit (weights are
/// serialized at full precision).
TEST_P(RoundTripSweep, TemporalIoIsLossless) {
  Rng rng(GetParam());
  const size_t n = 5 + rng.UniformInt(40);
  const size_t num_snapshots = 1 + rng.UniformInt(5);
  TemporalGraphSequence original(n);
  for (size_t t = 0; t < num_snapshots; ++t) {
    WeightedGraph g(n);
    const size_t edges = rng.UniformInt(3 * n);
    for (size_t e = 0; e < edges; ++e) {
      const auto u = static_cast<NodeId>(rng.UniformInt(n));
      const auto v = static_cast<NodeId>(rng.UniformInt(n));
      if (u == v) continue;
      // Awkward weights: tiny, huge, and non-representable decimals.
      const double weight = std::ldexp(rng.Uniform(0.1, 1.0),
                                       static_cast<int>(rng.UniformInt(60)) - 30);
      CAD_CHECK_OK(g.SetEdge(u, v, weight));
    }
    CAD_CHECK_OK(original.Append(std::move(g)));
  }

  std::ostringstream out;
  ASSERT_TRUE(WriteTemporalEdgeList(original, &out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_snapshots(), original.num_snapshots());
  for (size_t t = 0; t < num_snapshots; ++t) {
    EXPECT_TRUE(parsed->Snapshot(t) == original.Snapshot(t)) << "snapshot " << t;
  }
}

/// The graph Laplacian is positive semidefinite: x^T L x >= 0 for random x,
/// and exactly 0 for the all-ones vector.
TEST_P(RoundTripSweep, LaplacianQuadraticFormNonNegative) {
  RandomGraphOptions options;
  options.num_nodes = 30;
  options.average_degree = 5.0;
  options.seed = GetParam() + 500;
  const WeightedGraph g = MakeRandomSparseGraph(options);
  const CsrMatrix l = g.ToLaplacianCsr();
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(30);
    for (double& v : x) v = rng.Normal();
    EXPECT_GE(Dot(x, l.Multiply(x)), -1e-9);
  }
  const std::vector<double> ones(30, 1.0);
  EXPECT_NEAR(Dot(ones, l.Multiply(ones)), 0.0, 1e-9);
  // The quadratic form equals sum_e w_e (x_u - x_v)^2 for a random x.
  std::vector<double> x(30);
  for (double& v : x) v = rng.Normal();
  double by_edges = 0.0;
  for (const Edge& e : g.Edges()) {
    by_edges += e.weight * (x[e.u] - x[e.v]) * (x[e.u] - x[e.v]);
  }
  EXPECT_NEAR(Dot(x, l.Multiply(x)), by_edges, 1e-8 * (1.0 + by_edges));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSweep,
                         ::testing::Values(10, 20, 30, 40, 50));

}  // namespace
}  // namespace cad
