// Tests for the flight recorder (src/obs/flight_recorder.h): the runtime-off
// default, record/collect round trips, ring wraparound accounting, the
// TraceSpan integration, the JSON dump shape, and a concurrent-writer stress
// for the per-slot seqlock (meaningful under TSan).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/obs.h"

namespace cad {
namespace obs {
namespace {

TEST(FlightRecorderTest, DisabledByDefaultAndNotesAreNoOps) {
  ResetFlightRecorder();
  ASSERT_FALSE(FlightRecorderEnabled());
  CAD_FLIGHT_NOTE("test.flight.ignored", 7);
  FlightNote("test.flight.also_ignored", 8.0);
  EXPECT_TRUE(CollectFlightRecorder().empty());
  EXPECT_EQ(GlobalFlightRecorder().total_recorded(), 0u);
}

TEST(FlightRecorderTest, RecordedEventsRoundTripInTicketOrder) {
  const ScopedFlightRecorderEnable enable;
  CAD_FLIGHT_NOTE("test.flight.first", 1);
  CAD_FLIGHT_NOTE("test.flight.second", 2.5);
  GlobalFlightRecorder().Record("test.flight.span", 100, 250, 0.0);
  const std::vector<FlightEvent> events = CollectFlightRecorder();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "test.flight.first");
  EXPECT_EQ(events[0].value, 1.0);
  EXPECT_EQ(events[0].ticket, 0u);
  // Point events are zero-duration stamps at the current time.
  EXPECT_EQ(events[0].start_ns, events[0].end_ns);
  EXPECT_STREQ(events[1].name, "test.flight.second");
  EXPECT_EQ(events[1].value, 2.5);
  EXPECT_EQ(events[1].ticket, 1u);
  EXPECT_STREQ(events[2].name, "test.flight.span");
  EXPECT_EQ(events[2].start_ns, 100u);
  EXPECT_EQ(events[2].end_ns, 250u);
  EXPECT_EQ(events[2].ticket, 2u);
}

TEST(FlightRecorderTest, RingOverwritesOldestAndReportsDropped) {
  const ScopedFlightRecorderEnable enable;
  const size_t total = FlightRecorder::kCapacity + 10;
  for (size_t i = 0; i < total; ++i) {
    GlobalFlightRecorder().Record("test.flight.wrap", i, i + 1,
                                  static_cast<double>(i));
  }
  EXPECT_EQ(GlobalFlightRecorder().total_recorded(), total);
  const std::vector<FlightEvent> events = CollectFlightRecorder();
  ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
  // The ten oldest tickets were overwritten; the survivors are contiguous.
  EXPECT_EQ(events.front().ticket, 10u);
  EXPECT_EQ(events.back().ticket, total - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ticket, events[i - 1].ticket + 1);
  }
}

TEST(FlightRecorderTest, ResetDropsHistoryAndRestartsTickets) {
  const ScopedFlightRecorderEnable enable;
  CAD_FLIGHT_NOTE("test.flight.before", 1);
  ResetFlightRecorder();
  EXPECT_TRUE(CollectFlightRecorder().empty());
  EXPECT_EQ(GlobalFlightRecorder().total_recorded(), 0u);
  CAD_FLIGHT_NOTE("test.flight.after", 2);
  const std::vector<FlightEvent> events = CollectFlightRecorder();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.flight.after");
  EXPECT_EQ(events[0].ticket, 0u);
}

TEST(FlightRecorderTest, TraceSpansRecordEvenWithTracingAndMetricsOff) {
  const ScopedFlightRecorderEnable enable;
  ASSERT_FALSE(TracingEnabled());
  ASSERT_FALSE(MetricsEnabled());
  { CAD_TRACE_SPAN("test.flight.traced_span"); }
  const std::vector<FlightEvent> events = CollectFlightRecorder();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.flight.traced_span");
  EXPECT_GE(events[0].end_ns, events[0].start_ns);
  EXPECT_EQ(events[0].value, 0.0);
}

TEST(FlightRecorderTest, JsonDumpCarriesTotalsDroppedAndEventFields) {
  const ScopedFlightRecorderEnable enable;
  CAD_FLIGHT_NOTE("test.flight.json", 42);
  GlobalFlightRecorder().Record("test.flight.json_span", 10, 35, 0.0);
  std::ostringstream out;
  ASSERT_TRUE(WriteFlightRecorderJson(&out).ok());
  const std::string dump = out.str();
  EXPECT_EQ(dump.back(), '\n');
  EXPECT_NE(dump.find("\"total_recorded\":2"), std::string::npos);
  EXPECT_NE(dump.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"test.flight.json\""), std::string::npos);
  EXPECT_NE(dump.find("\"value\":42"), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"test.flight.json_span\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"duration_ns\":25"), std::string::npos);
}

TEST(FlightRecorderTest, JsonDumpFailsCleanlyOnBadSink) {
  const ScopedFlightRecorderEnable enable;
  std::ostringstream out;
  out.setstate(std::ios::badbit);
  EXPECT_FALSE(WriteFlightRecorderJson(&out).ok());
}

TEST(FlightRecorderTest, ConcurrentWritersNeverProduceTornEvents) {
  const ScopedFlightRecorderEnable enable;
  constexpr size_t kWriters = 4;
  constexpr size_t kPerWriter = 2000;
  ParallelFor(kWriters, kWriters, [&](size_t w) {
    for (size_t i = 0; i < kPerWriter; ++i) {
      GlobalFlightRecorder().Record("test.flight.stress",
                                    /*start_ns=*/777, /*end_ns=*/999,
                                    static_cast<double>(w));
    }
  });
  EXPECT_EQ(GlobalFlightRecorder().total_recorded(), kWriters * kPerWriter);
  const std::vector<FlightEvent> events = CollectFlightRecorder();
  EXPECT_LE(events.size(), FlightRecorder::kCapacity);
  for (const FlightEvent& event : events) {
    // Published slots are internally consistent: every field matches what
    // some single Record() call wrote.
    EXPECT_STREQ(event.name, "test.flight.stress");
    EXPECT_EQ(event.start_ns, 777u);
    EXPECT_EQ(event.end_ns, 999u);
    EXPECT_GE(event.value, 0.0);
    EXPECT_LT(event.value, static_cast<double>(kWriters));
  }
}

}  // namespace
}  // namespace obs
}  // namespace cad
