#include "linalg/dense_matrix.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(DenseMatrixTest, DefaultIsEmpty) {
  DenseMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(DenseMatrixTest, ZeroInitialized) {
  DenseMatrix m(2, 3);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(DenseMatrixTest, ConstructFromData) {
  DenseMatrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(DenseMatrixTest, Identity) {
  const DenseMatrix eye = DenseMatrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrixTest, MatrixVectorMultiply) {
  DenseMatrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<double> y = m.Multiply(std::vector<double>{1.0, 0.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(DenseMatrixTest, MatrixMatrixMultiply) {
  DenseMatrix a(2, 2, {1, 2, 3, 4});
  DenseMatrix b(2, 2, {5, 6, 7, 8});
  const DenseMatrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(DenseMatrixTest, MultiplyByIdentityIsNoop) {
  DenseMatrix a(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(a.Multiply(DenseMatrix::Identity(3)).MaxAbsDifference(a), 0.0);
}

TEST(DenseMatrixTest, TransposeRoundTrip) {
  DenseMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const DenseMatrix at = a.Transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_EQ(at(2, 1), 6.0);
  EXPECT_EQ(at.Transpose().MaxAbsDifference(a), 0.0);
}

TEST(DenseMatrixTest, AddSubtractScale) {
  DenseMatrix a(1, 2, {1, 2});
  DenseMatrix b(1, 2, {3, 5});
  EXPECT_EQ(a.Add(b)(0, 1), 7.0);
  EXPECT_EQ(b.Subtract(a)(0, 0), 2.0);
  EXPECT_EQ(a.Scale(-2.0)(0, 1), -4.0);
}

TEST(DenseMatrixTest, MaxAbsDifference) {
  DenseMatrix a(1, 2, {1, 2});
  DenseMatrix b(1, 2, {1.5, 1.0});
  EXPECT_DOUBLE_EQ(a.MaxAbsDifference(b), 1.0);
}

TEST(DenseMatrixTest, IsSymmetric) {
  DenseMatrix sym(2, 2, {1, 2, 2, 3});
  EXPECT_TRUE(sym.IsSymmetric());
  DenseMatrix asym(2, 2, {1, 2, 2.5, 3});
  EXPECT_FALSE(asym.IsSymmetric(1e-3));
  EXPECT_TRUE(asym.IsSymmetric(1.0));
  DenseMatrix rect(1, 2, {1, 2});
  EXPECT_FALSE(rect.IsSymmetric());
}

TEST(DenseMatrixTest, FrobeniusNorm) {
  DenseMatrix m(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(DenseMatrixTest, RowPointers) {
  DenseMatrix m(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m.row(1)[0], 3.0);
  m.mutable_row(0)[1] = 9.0;
  EXPECT_EQ(m(0, 1), 9.0);
}

TEST(DenseMatrixTest, ToStringHasRows) {
  DenseMatrix m(2, 1, {1, 2});
  EXPECT_EQ(m.ToString(), "1\n2\n");
}

}  // namespace
}  // namespace cad
