#include "linalg/lanczos.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/random_graphs.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"

namespace cad {
namespace {

CsrMatrix DiagonalMatrix(const std::vector<double>& values) {
  CooMatrix coo(values.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    coo.Add(static_cast<uint32_t>(i), static_cast<uint32_t>(i), values[i]);
  }
  return coo.ToCsr();
}

TEST(LanczosTest, SmallestOfDiagonal) {
  const CsrMatrix a = DiagonalMatrix({5, 1, 9, 3, 7, 2, 8, 4, 6, 0.5});
  LanczosOptions options;
  options.num_eigenpairs = 3;
  auto result = SmallestEigenpairs(a, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], 0.5, 1e-8);
  EXPECT_NEAR(result->eigenvalues[1], 1.0, 1e-8);
  EXPECT_NEAR(result->eigenvalues[2], 2.0, 1e-8);
}

TEST(LanczosTest, LargestOfDiagonal) {
  const CsrMatrix a = DiagonalMatrix({5, 1, 9, 3, 7});
  LanczosOptions options;
  options.num_eigenpairs = 2;
  auto result = LargestEigenpairs(a, options);
  ASSERT_TRUE(result.ok());
  // Ascending order: {7, 9}.
  EXPECT_NEAR(result->eigenvalues[0], 7.0, 1e-8);
  EXPECT_NEAR(result->eigenvalues[1], 9.0, 1e-8);
}

TEST(LanczosTest, EigenvectorsSatisfyDefinition) {
  RandomGraphOptions opts;
  opts.num_nodes = 80;
  opts.average_degree = 6.0;
  opts.seed = 4;
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  const CsrMatrix l = g.ToLaplacianCsr();
  LanczosOptions options;
  options.num_eigenpairs = 4;
  auto result = SmallestEigenpairs(l, options);
  ASSERT_TRUE(result.ok());
  for (size_t k = 0; k < 4; ++k) {
    std::vector<double> v(80);
    for (size_t i = 0; i < 80; ++i) v[i] = result->eigenvectors(i, k);
    std::vector<double> lv(80, 0.0);
    l.MultiplyAccumulate(1.0, v, &lv);
    Axpy(-result->eigenvalues[k], v, &lv);
    EXPECT_LT(Norm2(lv), 1e-6) << "pair " << k;
    EXPECT_NEAR(Norm2(v), 1.0, 1e-9);
  }
}

TEST(LanczosTest, LaplacianSmallestIsZeroWithConstantVector) {
  WeightedGraph g(12);
  for (NodeId i = 0; i + 1 < 12; ++i) CAD_CHECK_OK(g.SetEdge(i, i + 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(0, 11, 1.0));  // ring
  auto result = SmallestEigenpairs(g.ToLaplacianCsr());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalues[0], 0.0, 1e-8);
  // The corresponding eigenvector is constant.
  const double first = result->eigenvectors(0, 0);
  for (size_t i = 1; i < 12; ++i) {
    EXPECT_NEAR(result->eigenvectors(i, 0), first, 1e-6);
  }
  // Ring Fiedler value: 2 - 2 cos(2 pi / 12).
  EXPECT_NEAR(result->eigenvalues[1],
              2.0 - 2.0 * std::cos(2.0 * M_PI / 12.0), 1e-7);
}

TEST(LanczosTest, EigenvaluesAscending) {
  RandomGraphOptions opts;
  opts.num_nodes = 60;
  opts.average_degree = 5.0;
  const CsrMatrix l = MakeRandomSparseGraph(opts).ToLaplacianCsr();
  LanczosOptions options;
  options.num_eigenpairs = 5;
  auto small = SmallestEigenpairs(l, options);
  auto large = LargestEigenpairs(l, options);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_LE(small->eigenvalues[i - 1], small->eigenvalues[i] + 1e-12);
    EXPECT_LE(large->eigenvalues[i - 1], large->eigenvalues[i] + 1e-12);
  }
  EXPECT_LE(small->eigenvalues.back(), large->eigenvalues.front() + 1e-9);
}

TEST(LanczosTest, RejectsBadArguments) {
  const CsrMatrix a = DiagonalMatrix({1, 2, 3});
  LanczosOptions zero;
  zero.num_eigenpairs = 0;
  EXPECT_FALSE(SmallestEigenpairs(a, zero).ok());
  LanczosOptions too_many;
  too_many.num_eigenpairs = 4;
  EXPECT_FALSE(SmallestEigenpairs(a, too_many).ok());
  CsrMatrix rect(2, 3);
  EXPECT_FALSE(SmallestEigenpairs(rect).ok());
}

TEST(LanczosTest, ConvergedFlagSetOnEasyProblem) {
  const CsrMatrix a = DiagonalMatrix({1, 2, 3, 4, 5, 6, 7, 8});
  auto result = SmallestEigenpairs(a);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  for (double r : result->residuals) EXPECT_LT(r, 1e-8);
}

}  // namespace
}  // namespace cad
