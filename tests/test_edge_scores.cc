#include "core/edge_scores.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "commute/exact_commute.h"

namespace cad {
namespace {

/// Fake oracle with a constant commute time between all distinct pairs.
class ConstantOracle : public CommuteTimeOracle {
 public:
  ConstantOracle(size_t n, double value) : n_(n), value_(value) {}
  double CommuteTime(NodeId u, NodeId v) const override {
    return u == v ? 0.0 : value_;
  }
  size_t num_nodes() const override { return n_; }

 private:
  size_t n_;
  double value_;
};

TEST(EdgeScoreKindTest, Names) {
  EXPECT_STREQ(EdgeScoreKindToString(EdgeScoreKind::kCad), "CAD");
  EXPECT_STREQ(EdgeScoreKindToString(EdgeScoreKind::kAdj), "ADJ");
  EXPECT_STREQ(EdgeScoreKindToString(EdgeScoreKind::kCom), "COM");
  EXPECT_STREQ(EdgeScoreKindToString(EdgeScoreKind::kSum), "SUM");
}

TEST(EdgeScoresTest, SupportIsUnionOfEdgeSets) {
  WeightedGraph before(4);
  ASSERT_TRUE(before.SetEdge(0, 1, 1.0).ok());
  WeightedGraph after(4);
  ASSERT_TRUE(after.SetEdge(2, 3, 2.0).ok());
  ConstantOracle o1(4, 1.0);
  ConstantOracle o2(4, 2.0);
  const TransitionScores scores =
      ComputeTransitionScores(before, after, o1, o2, EdgeScoreKind::kCad);
  EXPECT_EQ(scores.edges.size(), 2u);
}

TEST(EdgeScoresTest, CadScoreIsProductOfDeltas) {
  WeightedGraph before(2);
  ASSERT_TRUE(before.SetEdge(0, 1, 1.0).ok());
  WeightedGraph after(2);
  ASSERT_TRUE(after.SetEdge(0, 1, 3.0).ok());
  ConstantOracle o1(2, 5.0);
  ConstantOracle o2(2, 2.0);
  const TransitionScores scores =
      ComputeTransitionScores(before, after, o1, o2, EdgeScoreKind::kCad);
  ASSERT_EQ(scores.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(scores.edges[0].weight_delta, 2.0);
  EXPECT_DOUBLE_EQ(scores.edges[0].commute_delta, -3.0);
  EXPECT_DOUBLE_EQ(scores.edges[0].score, 6.0);  // |2| * |-3|
  EXPECT_DOUBLE_EQ(scores.total_score, 6.0);
}

TEST(EdgeScoresTest, AdjIgnoresCommuteChange) {
  WeightedGraph before(2);
  ASSERT_TRUE(before.SetEdge(0, 1, 1.0).ok());
  WeightedGraph after(2);
  ASSERT_TRUE(after.SetEdge(0, 1, 4.0).ok());
  ConstantOracle o1(2, 100.0);
  ConstantOracle o2(2, 1.0);
  const TransitionScores scores =
      ComputeTransitionScores(before, after, o1, o2, EdgeScoreKind::kAdj);
  EXPECT_DOUBLE_EQ(scores.edges[0].score, 3.0);
}

TEST(EdgeScoresTest, ComIgnoresWeightChange) {
  WeightedGraph before(2);
  ASSERT_TRUE(before.SetEdge(0, 1, 1.0).ok());
  WeightedGraph after(2);
  ASSERT_TRUE(after.SetEdge(0, 1, 4.0).ok());
  ConstantOracle o1(2, 100.0);
  ConstantOracle o2(2, 40.0);
  const TransitionScores scores =
      ComputeTransitionScores(before, after, o1, o2, EdgeScoreKind::kCom);
  EXPECT_DOUBLE_EQ(scores.edges[0].score, 60.0);
}

TEST(EdgeScoresTest, SumNormalizesBothTerms) {
  WeightedGraph before(3);
  ASSERT_TRUE(before.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(before.SetEdge(1, 2, 1.0).ok());
  WeightedGraph after(3);
  ASSERT_TRUE(after.SetEdge(0, 1, 3.0).ok());  // dA = 2 (max)
  ASSERT_TRUE(after.SetEdge(1, 2, 2.0).ok());  // dA = 1
  ConstantOracle o1(3, 1.0);
  ConstantOracle o2(3, 1.0);  // dc = 0 for all
  const TransitionScores scores =
      ComputeTransitionScores(before, after, o1, o2, EdgeScoreKind::kSum);
  // Top edge: |dA|/max = 1, dc term 0 -> 1.0.
  EXPECT_DOUBLE_EQ(scores.edges[0].score, 1.0);
  EXPECT_DOUBLE_EQ(scores.edges[1].score, 0.5);
}

TEST(EdgeScoresTest, UnchangedEdgeScoresZeroUnderCad) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(0, 1, 2.0).ok());
  ConstantOracle o1(3, 1.0);
  ConstantOracle o2(3, 9.0);  // commute changed everywhere
  const TransitionScores scores =
      ComputeTransitionScores(g, g, o1, o2, EdgeScoreKind::kCad);
  // dA = 0 kills the product even though dc is large.
  EXPECT_DOUBLE_EQ(scores.edges[0].score, 0.0);
}

TEST(EdgeScoresTest, EdgesSortedByScoreDescending) {
  WeightedGraph before(4);
  ASSERT_TRUE(before.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(before.SetEdge(2, 3, 1.0).ok());
  WeightedGraph after(4);
  ASSERT_TRUE(after.SetEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(after.SetEdge(2, 3, 9.0).ok());
  ConstantOracle o1(4, 2.0);
  ConstantOracle o2(4, 1.0);
  const TransitionScores scores =
      ComputeTransitionScores(before, after, o1, o2, EdgeScoreKind::kCad);
  ASSERT_EQ(scores.edges.size(), 2u);
  EXPECT_GE(scores.edges[0].score, scores.edges[1].score);
  EXPECT_EQ(scores.edges[0].pair, NodePair::Make(2, 3));
}

TEST(EdgeScoresTest, NodeScoresAggregateIncidentEdges) {
  WeightedGraph before(3);
  ASSERT_TRUE(before.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(before.SetEdge(1, 2, 1.0).ok());
  WeightedGraph after(3);
  ASSERT_TRUE(after.SetEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(after.SetEdge(1, 2, 3.0).ok());
  ConstantOracle o1(3, 2.0);
  ConstantOracle o2(3, 1.0);
  const TransitionScores scores =
      ComputeTransitionScores(before, after, o1, o2, EdgeScoreKind::kCad);
  // Edge scores: (0,1): 1*1 = 1; (1,2): 2*1 = 2.
  EXPECT_DOUBLE_EQ(scores.node_scores[0], 1.0);
  EXPECT_DOUBLE_EQ(scores.node_scores[1], 3.0);
  EXPECT_DOUBLE_EQ(scores.node_scores[2], 2.0);
}

TEST(SelectAnomalousEdgesTest, PeelsUntilRemainderBelowDelta) {
  TransitionScores scores;
  scores.edges = {
      ScoredEdge{NodePair{0, 1}, 5.0, 0, 0},
      ScoredEdge{NodePair{1, 2}, 3.0, 0, 0},
      ScoredEdge{NodePair{2, 3}, 1.0, 0, 0},
  };
  scores.total_score = 9.0;
  // delta = 4: remaining after {5} is 4 -> not < 4, peel {3} too -> 1 < 4.
  EXPECT_EQ(SelectAnomalousEdges(scores, 4.0), (std::vector<size_t>{0, 1}));
  // delta = 10 > total: nothing anomalous.
  EXPECT_TRUE(SelectAnomalousEdges(scores, 10.0).empty());
  // delta = 0.5: everything with positive score gets selected.
  EXPECT_EQ(SelectAnomalousEdges(scores, 0.5).size(), 3u);
}

TEST(SelectAnomalousEdgesTest, ZeroScoreEdgesNeverSelected) {
  TransitionScores scores;
  scores.edges = {
      ScoredEdge{NodePair{0, 1}, 2.0, 0, 0},
      ScoredEdge{NodePair{1, 2}, 0.0, 0, 0},
  };
  scores.total_score = 2.0;
  // Even with delta <= 0 (impossible to satisfy), zero-score edges must not
  // be flagged.
  EXPECT_EQ(SelectAnomalousEdges(scores, 0.0), (std::vector<size_t>{0}));
}

TEST(SelectionIndexTest, BuildComputesPositiveCountAndPrefixes) {
  TransitionScores scores;
  scores.edges = {
      ScoredEdge{NodePair{0, 1}, 5.0, 0, 0},
      ScoredEdge{NodePair{1, 2}, 3.0, 0, 0},  // shares node 1
      ScoredEdge{NodePair{3, 4}, 1.0, 0, 0},
      ScoredEdge{NodePair{5, 6}, 0.0, 0, 0},  // zero score: excluded
  };
  scores.total_score = 9.0;
  scores.BuildSelectionIndex();
  ASSERT_TRUE(scores.has_selection_index());
  EXPECT_EQ(scores.num_positive, 3u);
  ASSERT_EQ(scores.remaining_mass.size(), 3u);
  EXPECT_EQ(scores.remaining_mass[0], 9.0);
  EXPECT_EQ(scores.remaining_mass[1], 4.0);
  EXPECT_EQ(scores.remaining_mass[2], 1.0);
  // prefix_nodes[k] = distinct endpoints among the first k edges.
  EXPECT_EQ(scores.prefix_nodes,
            (std::vector<size_t>{0, 2, 3, 5}));
}

TEST(SelectionIndexTest, ClearRemovesIndex) {
  TransitionScores scores;
  scores.edges = {ScoredEdge{NodePair{0, 1}, 2.0, 0, 0}};
  scores.total_score = 2.0;
  scores.BuildSelectionIndex();
  ASSERT_TRUE(scores.has_selection_index());
  scores.ClearSelectionIndex();
  EXPECT_FALSE(scores.has_selection_index());
}

TEST(SelectionIndexTest, ComputeTransitionScoresBuildsIndex) {
  WeightedGraph before(4);
  ASSERT_TRUE(before.SetEdge(0, 1, 1.0).ok());
  WeightedGraph after(4);
  ASSERT_TRUE(after.SetEdge(0, 1, 2.0).ok());
  ConstantOracle o1(4, 2.0);
  ConstantOracle o2(4, 1.0);
  const TransitionScores scores =
      ComputeTransitionScores(before, after, o1, o2, EdgeScoreKind::kCad);
  EXPECT_TRUE(scores.has_selection_index());
}

TEST(SelectionIndexTest, IndexedSelectionMatchesLegacyPeelBitwise) {
  // The binary search over remaining_mass must reproduce the legacy peel
  // loop exactly — same floating-point comparisons, same counts — for any
  // delta. remaining_mass stores the successive-subtraction values the peel
  // loop would compute, so this holds bitwise, not just approximately.
  TransitionScores indexed;
  indexed.edges = {
      ScoredEdge{NodePair{0, 1}, 0.3, 0, 0},
      ScoredEdge{NodePair{1, 2}, 0.1 + 0.2, 0, 0},  // == 0.30000000000000004
      ScoredEdge{NodePair{2, 3}, 0.1, 0, 0},
      ScoredEdge{NodePair{3, 4}, 1e-9, 0, 0},
      ScoredEdge{NodePair{4, 5}, 0.0, 0, 0},
  };
  std::sort(indexed.edges.begin(), indexed.edges.end(),
            [](const ScoredEdge& a, const ScoredEdge& b) {
              return a.score > b.score;
            });
  for (const ScoredEdge& edge : indexed.edges) {
    indexed.total_score += edge.score;
  }
  indexed.BuildSelectionIndex();
  TransitionScores legacy = indexed;
  legacy.ClearSelectionIndex();

  for (double delta :
       {-1.0, 0.0, 1e-12, 1e-9, 0.05, 0.1, 0.3, 0.30000000000000004, 0.4,
        0.6000000000000001, 0.7, 0.7000000000000001, 1.0, 10.0}) {
    EXPECT_EQ(CountSelectedEdges(indexed, delta),
              CountSelectedEdges(legacy, delta))
        << "delta=" << delta;
    EXPECT_EQ(SelectAnomalousEdges(indexed, delta),
              SelectAnomalousEdges(legacy, delta))
        << "delta=" << delta;
  }
}

TEST(EndpointUnionTest, DeduplicatesAndSorts) {
  TransitionScores scores;
  scores.edges = {
      ScoredEdge{NodePair{2, 5}, 3.0, 0, 0},
      ScoredEdge{NodePair{0, 2}, 2.0, 0, 0},
  };
  const std::vector<NodeId> nodes = EndpointUnion(scores, {0, 1});
  EXPECT_EQ(nodes, (std::vector<NodeId>{0, 2, 5}));
  EXPECT_TRUE(EndpointUnion(scores, {}).empty());
}

TEST(EdgeScoresTest, ToyCase2NewEdgeBridgingClusters) {
  // Two triangles; the transition adds a bridge. Under CAD the bridge's
  // score must dominate: dA > 0 and commute distance collapses.
  WeightedGraph before(6);
  for (auto [u, v] : std::vector<std::pair<NodeId, NodeId>>{
           {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}) {
    ASSERT_TRUE(before.SetEdge(u, v, 2.0).ok());
  }
  WeightedGraph after = before;
  ASSERT_TRUE(after.SetEdge(0, 3, 2.0).ok());
  // Also a benign jiggle inside a triangle.
  ASSERT_TRUE(after.SetEdge(0, 1, 2.2).ok());

  auto o1 = ExactCommuteTime::Build(before);
  auto o2 = ExactCommuteTime::Build(after);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  const TransitionScores scores =
      ComputeTransitionScores(before, after, *o1, *o2, EdgeScoreKind::kCad);
  EXPECT_EQ(scores.edges[0].pair, NodePair::Make(0, 3));
  EXPECT_GT(scores.edges[0].score, 10.0 * scores.edges[1].score);
}

}  // namespace
}  // namespace cad
