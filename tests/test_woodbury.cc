#include "linalg/woodbury.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "commute/exact_commute.h"
#include "graph/graph.h"

namespace cad {
namespace {

/// Connected random graph: a Hamiltonian path (connectivity) plus `extra`
/// random chords with random weights.
WeightedGraph MakeConnectedRandom(size_t n, size_t extra, uint64_t seed) {
  WeightedGraph g(n);
  Rng rng(seed);
  for (NodeId u = 0; u + 1 < n; ++u) {
    CAD_CHECK_OK(g.SetEdge(u, u + 1, 0.5 + rng.Uniform()));
  }
  size_t added = 0;
  while (added < extra) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v || g.HasEdge(u, v)) continue;
    CAD_CHECK_OK(g.SetEdge(u, v, 0.5 + rng.Uniform()));
    ++added;
  }
  return g;
}

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  CAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double worst = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

/// Applies `updates` to a copy of `graph` (AddEdgeWeight accumulates, weight
/// reaching zero deletes) and checks that the Woodbury-updated L+ matches a
/// fresh exact build on the mutated graph.
void CheckAgainstRebuild(const WeightedGraph& graph,
                         const std::vector<IncidenceUpdate>& updates) {
  auto before = ExactCommuteTime::Build(graph);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  WeightedGraph mutated = graph;
  for (const IncidenceUpdate& update : updates) {
    CAD_CHECK_OK(
        mutated.AddEdgeWeight(update.u, update.v, update.weight_delta));
  }
  auto rebuilt = ExactCommuteTime::Build(mutated);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();

  DenseMatrix lplus = before->laplacian_pseudoinverse();
  ASSERT_TRUE(ApplyWoodburyUpdate(updates, &lplus).ok());
  // The DESIGN.md §12 tolerance contract: O(n^2 k) update vs O(n^3) rebuild
  // agree to floating-point accumulation error, asserted at 1e-8 relative
  // (entries of L+ are O(1) on these graphs).
  EXPECT_LT(MaxAbsDiff(lplus, rebuilt->laplacian_pseudoinverse()), 1e-8);
}

TEST(WoodburyTest, EmptyUpdateIsNoOp) {
  const WeightedGraph g = MakeConnectedRandom(10, 5, 1);
  auto built = ExactCommuteTime::Build(g);
  ASSERT_TRUE(built.ok());
  DenseMatrix lplus = built->laplacian_pseudoinverse();
  const DenseMatrix original = lplus;
  ASSERT_TRUE(ApplyWoodburyUpdate({}, &lplus).ok());
  EXPECT_EQ(MaxAbsDiff(lplus, original), 0.0);
}

TEST(WoodburyTest, RankOneIncrementMatchesRebuild) {
  const WeightedGraph g = MakeConnectedRandom(12, 6, 2);
  CheckAgainstRebuild(g, {{0, 7, 1.5}});
}

TEST(WoodburyTest, RankOneDecrementMatchesRebuild) {
  WeightedGraph g = MakeConnectedRandom(12, 6, 3);
  // Weaken a path edge without deleting it (the path keeps g connected).
  const double w = g.EdgeWeight(4, 5);
  CheckAgainstRebuild(g, {{4, 5, -0.5 * w}});
}

TEST(WoodburyTest, EdgeDeletionOffTheSpanningPathMatchesRebuild) {
  WeightedGraph g = MakeConnectedRandom(12, 0, 4);
  CAD_CHECK_OK(g.SetEdge(2, 9, 0.75));  // chord; deleting it keeps the path
  CheckAgainstRebuild(g, {{2, 9, -0.75}});
}

TEST(WoodburyTest, MixedRankKUpdateMatchesRebuild) {
  WeightedGraph g = MakeConnectedRandom(16, 10, 5);
  CAD_CHECK_OK(g.SetEdge(3, 12, 0.6));
  std::vector<IncidenceUpdate> updates;
  updates.push_back({1, 2, 0.8});                          // strengthen
  updates.push_back({5, 6, -0.25 * g.EdgeWeight(5, 6)});   // weaken
  updates.push_back({0, 15, 1.1});                         // insert chord
  updates.push_back({3, 12, -0.6});                        // delete chord
  updates.push_back({7, 8, 0.0});                          // ignored no-op
  CheckAgainstRebuild(g, updates);
}

TEST(WoodburyTest, RandomizedChurnMatchesRebuild) {
  Rng rng(99);
  for (uint64_t trial = 0; trial < 5; ++trial) {
    const size_t n = 10 + 2 * static_cast<size_t>(trial);
    WeightedGraph g = MakeConnectedRandom(n, n / 2, 100 + trial);
    std::vector<IncidenceUpdate> updates;
    // Random weight perturbations on existing path edges (never to zero,
    // so the component structure is provably unchanged) plus one insertion.
    for (size_t j = 0; j < 4; ++j) {
      const NodeId u = static_cast<NodeId>(rng.UniformInt(n - 1));
      const double w = g.EdgeWeight(u, u + 1);
      const double delta = (rng.Uniform() - 0.4) * 0.9 * w;
      updates.push_back({u, u + 1, delta});
    }
    if (!g.HasEdge(0, static_cast<NodeId>(n - 2))) {
      updates.push_back({0, static_cast<NodeId>(n - 2), 0.3});
    }
    CheckAgainstRebuild(g, updates);
  }
}

TEST(WoodburyTest, BridgeDeletionBreaksDownAsNumericalError) {
  // Deleting a bridge disconnects the graph: the decrement capacitance
  // 1/w - r_uv hits zero (a bridge's effective resistance is exactly 1/w),
  // so the dense Cholesky must report breakdown, not return garbage.
  WeightedGraph path(6);
  for (NodeId u = 0; u + 1 < 6; ++u) {
    CAD_CHECK_OK(path.SetEdge(u, u + 1, 1.0));
  }
  auto built = ExactCommuteTime::Build(path);
  ASSERT_TRUE(built.ok());
  DenseMatrix lplus = built->laplacian_pseudoinverse();
  const Status status = ApplyWoodburyUpdate({{2, 3, -1.0}}, &lplus);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNumericalError);
}

TEST(WoodburyTest, OutOfRangeEndpointDies) {
  DenseMatrix lplus(4, 4);
  EXPECT_DEATH(
      { (void)ApplyWoodburyUpdate({{1, 9, 1.0}}, &lplus); }, "");
}

}  // namespace
}  // namespace cad
