#include "core/clc_detector.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(ClcDetectorTest, RejectsTooFewSnapshots) {
  TemporalGraphSequence seq(2);
  CAD_CHECK_OK(seq.Append(WeightedGraph(2)));
  EXPECT_FALSE(ClcDetector().ScoreTransitions(seq).ok());
}

TEST(ClcDetectorTest, IdenticalSnapshotsScoreZero) {
  WeightedGraph g(4);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(1, 2, 1.0));
  TemporalGraphSequence seq(4);
  CAD_CHECK_OK(seq.Append(g));
  CAD_CHECK_OK(seq.Append(g));
  auto scores = ClcDetector().ScoreTransitions(seq);
  ASSERT_TRUE(scores.ok());
  for (double s : (*scores)[0]) EXPECT_EQ(s, 0.0);
}

TEST(ClcDetectorTest, CentralityShiftDetected) {
  // A chain where the middle node loses its links: its centrality collapses.
  WeightedGraph before(5);
  for (NodeId i = 0; i + 1 < 5; ++i) CAD_CHECK_OK(before.SetEdge(i, i + 1, 1.0));
  WeightedGraph after = before;
  CAD_CHECK_OK(after.SetEdge(1, 2, 0.0));
  CAD_CHECK_OK(after.SetEdge(2, 3, 0.0));
  TemporalGraphSequence seq(5);
  CAD_CHECK_OK(seq.Append(before));
  CAD_CHECK_OK(seq.Append(after));
  auto scores = ClcDetector().ScoreTransitions(seq);
  ASSERT_TRUE(scores.ok());
  const std::vector<double>& s = (*scores)[0];
  // Node 2 experienced the largest centrality change.
  EXPECT_EQ(std::max_element(s.begin(), s.end()) - s.begin(), 2);
}

TEST(ClcDetectorTest, MultipleTransitions) {
  WeightedGraph a(3);
  CAD_CHECK_OK(a.SetEdge(0, 1, 1.0));
  WeightedGraph b = a;
  CAD_CHECK_OK(b.SetEdge(1, 2, 1.0));
  TemporalGraphSequence seq(3);
  CAD_CHECK_OK(seq.Append(a));
  CAD_CHECK_OK(seq.Append(b));
  CAD_CHECK_OK(seq.Append(b));
  auto scores = ClcDetector().ScoreTransitions(seq);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 2u);
  // First transition changes things; second does not.
  EXPECT_GT(*std::max_element((*scores)[0].begin(), (*scores)[0].end()), 0.0);
  EXPECT_EQ(*std::max_element((*scores)[1].begin(), (*scores)[1].end()), 0.0);
}

TEST(ClcDetectorTest, SampledModeRuns) {
  WeightedGraph g(20);
  for (NodeId i = 0; i + 1 < 20; ++i) CAD_CHECK_OK(g.SetEdge(i, i + 1, 1.0));
  WeightedGraph g2 = g;
  CAD_CHECK_OK(g2.SetEdge(0, 19, 5.0));
  TemporalGraphSequence seq(20);
  CAD_CHECK_OK(seq.Append(g));
  CAD_CHECK_OK(seq.Append(g2));
  ClosenessOptions options;
  options.num_samples = 5;
  auto scores = ClcDetector(options).ScoreTransitions(seq);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ((*scores)[0].size(), 20u);
}

TEST(ClcDetectorTest, NameIsClc) { EXPECT_EQ(ClcDetector().name(), "CLC"); }

}  // namespace
}  // namespace cad
