#include "datagen/toy_example.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/components.h"

namespace cad {
namespace {

TEST(ToyExampleTest, NodeIdHelpers) {
  EXPECT_EQ(ToyBlue(1), 0u);
  EXPECT_EQ(ToyBlue(8), 7u);
  EXPECT_EQ(ToyRed(1), 8u);
  EXPECT_EQ(ToyRed(9), 16u);
}

TEST(ToyExampleTest, HasSeventeenNodesAndTwoSnapshots) {
  const ToyExample toy = MakeToyExample();
  EXPECT_EQ(toy.sequence.num_nodes(), 17u);
  EXPECT_EQ(toy.sequence.num_snapshots(), 2u);
  EXPECT_EQ(toy.node_names.size(), 17u);
  EXPECT_EQ(toy.node_names[0], "b1");
  EXPECT_EQ(toy.node_names[16], "r9");
}

TEST(ToyExampleTest, BothSnapshotsConnected) {
  const ToyExample toy = MakeToyExample();
  EXPECT_TRUE(IsConnected(toy.sequence.Snapshot(0)));
  EXPECT_TRUE(IsConnected(toy.sequence.Snapshot(1)));
}

TEST(ToyExampleTest, ScriptedChangesPresent) {
  const ToyExample toy = MakeToyExample();
  const WeightedGraph& before = toy.sequence.Snapshot(0);
  const WeightedGraph& after = toy.sequence.Snapshot(1);
  // S1: new edge b1-r1.
  EXPECT_EQ(before.EdgeWeight(ToyBlue(1), ToyRed(1)), 0.0);
  EXPECT_GT(after.EdgeWeight(ToyBlue(1), ToyRed(1)), 0.0);
  // S2: bridge r7-r8 weakened.
  EXPECT_GT(before.EdgeWeight(ToyRed(7), ToyRed(8)),
            after.EdgeWeight(ToyRed(7), ToyRed(8)));
  // S3: b4-b5 strengthened sharply.
  EXPECT_GT(after.EdgeWeight(ToyBlue(4), ToyBlue(5)),
            4.0 * before.EdgeWeight(ToyBlue(4), ToyBlue(5)));
  // S4: benign decrease; S5: benign increase.
  EXPECT_LT(after.EdgeWeight(ToyBlue(1), ToyBlue(3)),
            before.EdgeWeight(ToyBlue(1), ToyBlue(3)));
  EXPECT_GT(after.EdgeWeight(ToyBlue(2), ToyBlue(7)),
            before.EdgeWeight(ToyBlue(2), ToyBlue(7)));
}

TEST(ToyExampleTest, OnlyFiveEdgesChange) {
  const ToyExample toy = MakeToyExample();
  const WeightedGraph& before = toy.sequence.Snapshot(0);
  const WeightedGraph& after = toy.sequence.Snapshot(1);
  size_t changed = 0;
  for (const NodePair& pair : toy.sequence.TransitionSupport(0)) {
    if (before.EdgeWeight(pair.u, pair.v) != after.EdgeWeight(pair.u, pair.v)) {
      ++changed;
    }
  }
  EXPECT_EQ(changed, 5u);
}

TEST(ToyExampleTest, GroundTruthSetsConsistent) {
  const ToyExample toy = MakeToyExample();
  ASSERT_EQ(toy.anomalous_edges.size(), 3u);
  ASSERT_EQ(toy.anomalous_nodes.size(), 6u);
  // Every anomalous node is an endpoint of an anomalous edge.
  for (NodeId node : toy.anomalous_nodes) {
    const bool covered =
        std::any_of(toy.anomalous_edges.begin(), toy.anomalous_edges.end(),
                    [node](const NodePair& p) {
                      return p.u == node || p.v == node;
                    });
    EXPECT_TRUE(covered) << "node " << node;
  }
  // Benign changed edges are disjoint from anomalous edges.
  for (const NodePair& benign : toy.benign_changed_edges) {
    EXPECT_EQ(std::count(toy.anomalous_edges.begin(), toy.anomalous_edges.end(),
                         benign),
              0);
  }
}

TEST(ToyExampleTest, RemovingBridgeSplitsRedSubgroup) {
  // The r7-r8 bridge is what holds {r4, r6, r8, r9} to the rest of the red
  // community: deleting it must disconnect the graph into >= 2 components.
  const ToyExample toy = MakeToyExample();
  WeightedGraph cut = toy.sequence.Snapshot(0);
  // Remove inter-community links and the bridge; subgroup B must detach.
  ASSERT_TRUE(cut.SetEdge(ToyRed(7), ToyRed(8), 0.0).ok());
  const ComponentLabeling labeling = ConnectedComponents(cut);
  EXPECT_GT(labeling.num_components, 1u);
  EXPECT_TRUE(labeling.SameComponent(ToyRed(4), ToyRed(8)));
  EXPECT_TRUE(labeling.SameComponent(ToyRed(6), ToyRed(9)));
  EXPECT_FALSE(labeling.SameComponent(ToyRed(7), ToyRed(8)));
}

}  // namespace
}  // namespace cad
