#include "commute/random_walk.h"

#include <gtest/gtest.h>

#include "commute/exact_commute.h"
#include "datagen/random_graphs.h"

namespace cad {
namespace {

TEST(RandomWalkTest, TwoNodeGraphCommutesInTwoSteps) {
  WeightedGraph g(2);
  CAD_CHECK_OK(g.SetEdge(0, 1, 3.0));
  auto estimate = EstimateCommuteTimeByWalking(g, 0, 1);
  ASSERT_TRUE(estimate.ok());
  // Deterministic: one step to v, one step back.
  EXPECT_DOUBLE_EQ(estimate->mean_steps, 2.0);
  EXPECT_DOUBLE_EQ(estimate->standard_error, 0.0);
  EXPECT_EQ(estimate->truncated_walks, 0u);
}

TEST(RandomWalkTest, MatchesEq3OnPathGraph) {
  // Unit path on 4 nodes: c(0,3) = 2 * volume * ... = 2(n-1)|i-j| = 18.
  WeightedGraph g(4);
  for (NodeId i = 0; i + 1 < 4; ++i) CAD_CHECK_OK(g.SetEdge(i, i + 1, 1.0));
  RandomWalkOptions options;
  options.num_walks = 20000;
  options.seed = 5;
  auto estimate = EstimateCommuteTimeByWalking(g, 0, 3, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->mean_steps, 18.0, 5.0 * estimate->standard_error);
}

TEST(RandomWalkTest, MatchesExactEngineOnWeightedGraph) {
  // The load-bearing validation: the Monte-Carlo definition of commute time
  // (paper §3.1) agrees with the algebraic Eq. 3 implementation on an
  // irregular weighted graph.
  WeightedGraph g(6);
  CAD_CHECK_OK(g.SetEdge(0, 1, 2.0));
  CAD_CHECK_OK(g.SetEdge(0, 2, 0.5));
  CAD_CHECK_OK(g.SetEdge(1, 2, 1.0));
  CAD_CHECK_OK(g.SetEdge(2, 3, 3.0));
  CAD_CHECK_OK(g.SetEdge(3, 4, 1.5));
  CAD_CHECK_OK(g.SetEdge(4, 5, 2.5));
  CAD_CHECK_OK(g.SetEdge(1, 5, 0.25));

  auto exact = ExactCommuteTime::Build(g);
  ASSERT_TRUE(exact.ok());
  RandomWalkOptions options;
  options.num_walks = 30000;
  options.seed = 11;
  for (const auto& [a, b] : std::vector<std::pair<NodeId, NodeId>>{
           {0, 5}, {1, 3}, {2, 4}}) {
    auto estimate = EstimateCommuteTimeByWalking(g, a, b, options);
    ASSERT_TRUE(estimate.ok());
    EXPECT_EQ(estimate->truncated_walks, 0u);
    EXPECT_NEAR(estimate->mean_steps, exact->CommuteTime(a, b),
                5.0 * estimate->standard_error + 0.05)
        << "pair " << a << "," << b;
  }
}

TEST(RandomWalkTest, SymmetryOfCommute) {
  WeightedGraph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) {
    CAD_CHECK_OK(g.SetEdge(i, i + 1, 1.0 + i));
  }
  RandomWalkOptions options;
  options.num_walks = 20000;
  auto forward = EstimateCommuteTimeByWalking(g, 0, 4, options);
  options.seed = 99;
  auto backward = EstimateCommuteTimeByWalking(g, 4, 0, options);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_NEAR(forward->mean_steps, backward->mean_steps,
              5.0 * (forward->standard_error + backward->standard_error));
}

TEST(RandomWalkTest, RejectsBadArguments) {
  WeightedGraph g(4);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(2, 3, 1.0));
  EXPECT_FALSE(EstimateCommuteTimeByWalking(g, 0, 0).ok());
  EXPECT_FALSE(EstimateCommuteTimeByWalking(g, 0, 9).ok());
  // Different components: infinite commute.
  EXPECT_EQ(EstimateCommuteTimeByWalking(g, 0, 2).status().code(),
            StatusCode::kFailedPrecondition);
  RandomWalkOptions zero;
  zero.num_walks = 0;
  EXPECT_FALSE(EstimateCommuteTimeByWalking(g, 0, 1, zero).ok());
}

TEST(RandomWalkTest, TruncationReported) {
  WeightedGraph g(3);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(1, 2, 1.0));
  RandomWalkOptions options;
  options.num_walks = 50;
  options.max_steps_per_walk = 1;  // impossible to commute in one step
  auto estimate = EstimateCommuteTimeByWalking(g, 0, 2, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->truncated_walks, 50u);
}

}  // namespace
}  // namespace cad
