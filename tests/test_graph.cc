#include "graph/graph.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(NodePairTest, MakeNormalizesOrientation) {
  const NodePair p = NodePair::Make(5, 2);
  EXPECT_EQ(p.u, 2u);
  EXPECT_EQ(p.v, 5u);
  EXPECT_EQ(p, NodePair::Make(2, 5));
}

TEST(NodePairTest, KeyIsInjective) {
  EXPECT_NE(NodePair::Make(0, 1).Key(), NodePair::Make(1, 2).Key());
  EXPECT_NE(NodePair::Make(0, 2).Key(), NodePair::Make(0, 3).Key());
}

TEST(WeightedGraphTest, EmptyGraph) {
  WeightedGraph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.Volume(), 0.0);
  EXPECT_TRUE(g.Edges().empty());
}

TEST(WeightedGraphTest, SetAndGetEdge) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(0, 1, 2.5).ok());
  EXPECT_EQ(g.EdgeWeight(0, 1), 2.5);
  EXPECT_EQ(g.EdgeWeight(1, 0), 2.5);  // undirected
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(WeightedGraphTest, ZeroWeightDeletesEdge) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.SetEdge(0, 1, 0.0).ok());
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(WeightedGraphTest, RejectsSelfLoop) {
  WeightedGraph g(3);
  EXPECT_EQ(g.SetEdge(1, 1, 1.0).code(), StatusCode::kInvalidArgument);
}

TEST(WeightedGraphTest, RejectsOutOfRange) {
  WeightedGraph g(3);
  EXPECT_EQ(g.SetEdge(0, 3, 1.0).code(), StatusCode::kOutOfRange);
}

TEST(WeightedGraphTest, RejectsNegativeAndNonFiniteWeights) {
  WeightedGraph g(3);
  EXPECT_FALSE(g.SetEdge(0, 1, -1.0).ok());
  EXPECT_FALSE(g.SetEdge(0, 1, std::nan("")).ok());
  EXPECT_FALSE(g.SetEdge(0, 1, std::numeric_limits<double>::infinity()).ok());
}

TEST(WeightedGraphTest, AddEdgeWeightAccumulates) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.AddEdgeWeight(0, 1, 1.5).ok());
  ASSERT_TRUE(g.AddEdgeWeight(1, 0, 2.0).ok());
  EXPECT_EQ(g.EdgeWeight(0, 1), 3.5);
  EXPECT_FALSE(g.AddEdgeWeight(0, 1, -10.0).ok());
  ASSERT_TRUE(g.AddEdgeWeight(0, 1, -3.5).ok());
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(WeightedGraphTest, EdgesSortedCanonical) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(3, 2, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 0, 2.0).ok());
  const std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].u, 0u);
  EXPECT_EQ(edges[0].v, 1u);
  EXPECT_EQ(edges[1].u, 2u);
  EXPECT_EQ(edges[1].v, 3u);
}

TEST(WeightedGraphTest, DegreesAndVolume) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 3.0).ok());
  EXPECT_EQ(g.WeightedDegrees(), (std::vector<double>{2, 5, 3}));
  EXPECT_EQ(g.Degrees(), (std::vector<size_t>{1, 2, 1}));
  EXPECT_EQ(g.Volume(), 10.0);
}

TEST(WeightedGraphTest, AdjacencyCsrIsSymmetric) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 3.0).ok());
  const CsrMatrix a = g.ToAdjacencyCsr();
  EXPECT_TRUE(a.IsSymmetric());
  EXPECT_EQ(a.At(0, 1), 2.0);
  EXPECT_EQ(a.At(2, 1), 3.0);
  EXPECT_EQ(a.nnz(), 4u);
}

TEST(WeightedGraphTest, LaplacianRowSumsAreZero) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 2.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 0.5).ok());
  const CsrMatrix l = g.ToLaplacianCsr();
  for (double row_sum : l.RowSums()) EXPECT_NEAR(row_sum, 0.0, 1e-12);
  EXPECT_EQ(l.At(1, 1), 3.0);
  EXPECT_EQ(l.At(1, 2), -2.0);
}

TEST(WeightedGraphTest, LaplacianRegularizationOnDiagonal) {
  WeightedGraph g(2);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  const CsrMatrix l = g.ToLaplacianCsr(0.25);
  EXPECT_DOUBLE_EQ(l.At(0, 0), 1.25);
  EXPECT_DOUBLE_EQ(l.At(1, 1), 1.25);
}

TEST(WeightedGraphTest, DenseMatchesSparse) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.5).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 2.5).ok());
  EXPECT_EQ(
      g.ToAdjacencyDense().MaxAbsDifference(g.ToAdjacencyCsr().ToDense()),
      0.0);
  EXPECT_EQ(
      g.ToLaplacianDense(0.1).MaxAbsDifference(g.ToLaplacianCsr(0.1).ToDense()),
      0.0);
}

TEST(WeightedGraphTest, AdjacencyListsSortedAndSymmetric) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(2, 0, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(0, 1, 2.0).ok());
  const auto lists = g.AdjacencyLists();
  ASSERT_EQ(lists[0].size(), 2u);
  EXPECT_EQ(lists[0][0].node, 1u);
  EXPECT_EQ(lists[0][1].node, 2u);
  EXPECT_EQ(lists[1][0].weight, 2.0);
  EXPECT_EQ(lists[2][0].node, 0u);
}

TEST(WeightedGraphTest, EqualityAndToString) {
  WeightedGraph a(2);
  WeightedGraph b(2);
  EXPECT_TRUE(a == b);
  ASSERT_TRUE(a.SetEdge(0, 1, 1.0).ok());
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.ToString().find("n=2"), std::string::npos);
  EXPECT_NE(a.ToString().find("m=1"), std::string::npos);
}

TEST(WeightedGraphTest, EdgeWeightOutOfRangeQueriesReturnZero) {
  WeightedGraph g(2);
  EXPECT_EQ(g.EdgeWeight(0, 7), 0.0);
  EXPECT_EQ(g.EdgeWeight(3, 3), 0.0);
}

}  // namespace
}  // namespace cad
