#include "linalg/incomplete_cholesky.h"

#include "commute/approx_commute.h"

#include <gtest/gtest.h>

#include "datagen/random_graphs.h"
#include "graph/graph.h"
#include "linalg/cholesky.h"
#include "linalg/conjugate_gradient.h"
#include "linalg/vector_ops.h"

namespace cad {
namespace {

CsrMatrix SpdTridiagonal(size_t n) {
  CooMatrix coo(n, n);
  for (size_t i = 0; i < n; ++i) {
    coo.Add(static_cast<uint32_t>(i), static_cast<uint32_t>(i), 2.0);
    if (i + 1 < n) {
      coo.AddSymmetric(static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1),
                       -1.0);
    }
  }
  return coo.ToCsr();
}

TEST(IncompleteCholeskyTest, ExactOnTridiagonal) {
  // A tridiagonal SPD matrix has no fill-in, so IC(0) equals the exact
  // Cholesky factor and Apply() is an exact solve.
  const CsrMatrix a = SpdTridiagonal(30);
  auto ic = IncompleteCholesky::Factor(a);
  ASSERT_TRUE(ic.ok());
  EXPECT_EQ(ic->shift_used(), 0.0);

  auto dense_factor = CholeskyFactorization::Factor(a.ToDense());
  ASSERT_TRUE(dense_factor.ok());
  EXPECT_LT(ic->lower().ToDense().MaxAbsDifference(dense_factor->lower()),
            1e-10);

  std::vector<double> b(30, 1.0);
  const std::vector<double> x = ic->Apply(b);
  const std::vector<double> residual = Subtract(a.Multiply(x), b);
  EXPECT_LT(Norm2(residual), 1e-9);
}

TEST(IncompleteCholeskyTest, ApplyIsSpdOperator) {
  RandomGraphOptions opts;
  opts.num_nodes = 50;
  opts.average_degree = 6.0;
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  const CsrMatrix l = g.ToLaplacianCsr(0.01 * g.Volume());
  auto ic = IncompleteCholesky::Factor(l);
  ASSERT_TRUE(ic.ok());
  // M^{-1} must be symmetric: x^T M^{-1} y == y^T M^{-1} x.
  Rng rng(4);
  std::vector<double> x(50);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  EXPECT_NEAR(Dot(x, ic->Apply(y)), Dot(y, ic->Apply(x)), 1e-9);
  // And positive definite: x^T M^{-1} x > 0.
  EXPECT_GT(Dot(x, ic->Apply(x)), 0.0);
}

TEST(IncompleteCholeskyTest, RejectsNonSquareAndZeroDiagonal) {
  CsrMatrix rect(2, 3);
  EXPECT_FALSE(IncompleteCholesky::Factor(rect).ok());
  // Zero diagonal cannot be factorized even with multiplicative shifts.
  CooMatrix coo(2, 2);
  coo.AddSymmetric(0, 1, 1.0);
  EXPECT_FALSE(IncompleteCholesky::Factor(coo.ToCsr()).ok());
}

TEST(IncompleteCholeskyTest, CgWithIcConvergesFasterThanJacobi) {
  RandomGraphOptions opts;
  opts.num_nodes = 2000;
  opts.average_degree = 4.0;
  opts.seed = 17;
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  const CsrMatrix l = g.ToLaplacianCsr(1e-8 * g.Volume());
  std::vector<double> b(2000, 0.0);
  b[0] = 1.0;
  b[1999] = -1.0;

  CgOptions jacobi;
  jacobi.preconditioner = CgPreconditioner::kJacobi;
  CgOptions ic;
  ic.preconditioner = CgPreconditioner::kIncompleteCholesky;
  std::vector<double> x;
  auto jacobi_summary = ConjugateGradientSolver(jacobi).Solve(l, b, &x);
  auto ic_summary = ConjugateGradientSolver(ic).Solve(l, b, &x);
  ASSERT_TRUE(jacobi_summary.ok());
  ASSERT_TRUE(ic_summary.ok());
  EXPECT_LE(ic_summary->relative_residual, 1e-6);
  EXPECT_LT(ic_summary->iterations, jacobi_summary->iterations);
}

TEST(IncompleteCholeskyTest, SolveManyAmortizesFactorization) {
  const CsrMatrix a = SpdTridiagonal(100);
  std::vector<std::vector<double>> rhs(3, std::vector<double>(100, 0.0));
  rhs[0][0] = 1.0;
  rhs[1][50] = 1.0;
  rhs[2][99] = 1.0;
  CgOptions options;
  options.preconditioner = CgPreconditioner::kIncompleteCholesky;
  std::vector<std::vector<double>> solutions;
  auto summaries =
      ConjugateGradientSolver(options).SolveMany(a, rhs, &solutions);
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(solutions.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE((*summaries)[i].converged);
    const std::vector<double> residual =
        Subtract(a.Multiply(solutions[i]), rhs[i]);
    EXPECT_LT(Norm2(residual), 1e-6);
  }
}

TEST(IncompleteCholeskyTest, PreconditionerNames) {
  EXPECT_STREQ(CgPreconditionerToString(CgPreconditioner::kNone), "none");
  EXPECT_STREQ(CgPreconditionerToString(CgPreconditioner::kJacobi), "jacobi");
  EXPECT_STREQ(
      CgPreconditionerToString(CgPreconditioner::kIncompleteCholesky), "ic0");
}

TEST(IncompleteCholeskyTest, ApproxCommuteWorksWithIc) {
  RandomGraphOptions opts;
  opts.num_nodes = 60;
  opts.average_degree = 5.0;
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  ApproxCommuteOptions options;
  options.embedding_dim = 25;
  options.cg.preconditioner = CgPreconditioner::kIncompleteCholesky;
  auto oracle = ApproxCommuteEmbedding::Build(g, options);
  ASSERT_TRUE(oracle.ok());
  EXPECT_GT(oracle->total_cg_iterations(), 0u);
}

}  // namespace
}  // namespace cad
