#include "eval/roc.h"

#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cad {
namespace {

TEST(RocTest, PerfectSeparationGivesAucOne) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<bool> labels = {true, true, false, false};
  auto curve = ComputeRoc(scores, labels);
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve->auc, 1.0);
  auto auc = ComputeAuc(scores, labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 1.0);
}

TEST(RocTest, PerfectlyWrongGivesAucZero) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<bool> labels = {true, true, false, false};
  EXPECT_DOUBLE_EQ(*ComputeAuc(scores, labels), 0.0);
  EXPECT_DOUBLE_EQ(ComputeRoc(scores, labels)->auc, 0.0);
}

TEST(RocTest, ConstantScoresGiveHalf) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const std::vector<bool> labels = {true, false, true, false};
  EXPECT_DOUBLE_EQ(*ComputeAuc(scores, labels), 0.5);
  EXPECT_DOUBLE_EQ(ComputeRoc(scores, labels)->auc, 0.5);
}

TEST(RocTest, CurveAndRankAucAgree) {
  Rng rng(5);
  std::vector<double> scores;
  std::vector<bool> labels;
  for (int i = 0; i < 500; ++i) {
    const bool label = rng.Bernoulli(0.3);
    scores.push_back(rng.Normal(label ? 1.0 : 0.0, 1.0));
    labels.push_back(label);
  }
  const double curve_auc = ComputeRoc(scores, labels)->auc;
  const double rank_auc = *ComputeAuc(scores, labels);
  EXPECT_NEAR(curve_auc, rank_auc, 1e-10);
  EXPECT_GT(rank_auc, 0.6);  // separated means
}

TEST(RocTest, HandlesTiesConsistently) {
  const std::vector<double> scores = {1.0, 1.0, 1.0, 0.0};
  const std::vector<bool> labels = {true, false, true, false};
  // Positives: both at score 1 (ranks mid 2); one negative at 1, one at 0.
  // AUC = (1*1 + 0.5 + 0.5*... compute: pairs (p,n): (1,1)->0.5 twice,
  // (1,0)->1 twice => (0.5+1+0.5+1)/4 = 0.75.
  EXPECT_DOUBLE_EQ(*ComputeAuc(scores, labels), 0.75);
  EXPECT_DOUBLE_EQ(ComputeRoc(scores, labels)->auc, 0.75);
}

TEST(RocTest, CurveEndpointsAreCorners) {
  const std::vector<double> scores = {0.9, 0.1, 0.5};
  const std::vector<bool> labels = {true, false, false};
  auto curve = ComputeRoc(scores, labels);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->points.front().false_positive_rate, 0.0);
  EXPECT_EQ(curve->points.front().true_positive_rate, 0.0);
  EXPECT_EQ(curve->points.back().false_positive_rate, 1.0);
  EXPECT_EQ(curve->points.back().true_positive_rate, 1.0);
}

TEST(RocTest, RejectsDegenerateInput) {
  EXPECT_FALSE(ComputeRoc({1.0}, {true}).ok());
  EXPECT_FALSE(ComputeRoc({1.0, 2.0}, {false, false}).ok());
  EXPECT_FALSE(ComputeRoc({1.0, 2.0}, {true, true}).ok());
  EXPECT_FALSE(ComputeRoc({1.0}, {true, false}).ok());
  EXPECT_FALSE(ComputeAuc({1.0, 2.0}, {true, true}).ok());
}

TEST(PrecisionAtKTest, Basics) {
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.1};
  const std::vector<bool> labels = {true, false, true, false};
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 0), 0.0);
  // k beyond size clamps.
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 10), 0.5);
}

TEST(AverageRocCurvesTest, AverageOfIdenticalCurvesIsUnchanged) {
  const std::vector<double> scores = {0.9, 0.8, 0.3, 0.1};
  const std::vector<bool> labels = {true, false, true, false};
  const RocCurve curve = *ComputeRoc(scores, labels);
  const RocCurve averaged = AverageRocCurves({curve, curve, curve});
  EXPECT_NEAR(averaged.auc, curve.auc, 0.02);  // grid discretization
}

TEST(AverageRocCurvesTest, EmptyInput) {
  const RocCurve averaged = AverageRocCurves({});
  EXPECT_TRUE(averaged.points.empty());
  EXPECT_EQ(averaged.auc, 0.0);
}

TEST(AverageRocCurvesTest, MonotoneNonDecreasing) {
  Rng rng(9);
  std::vector<RocCurve> curves;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> scores;
    std::vector<bool> labels;
    for (int i = 0; i < 100; ++i) {
      const bool label = rng.Bernoulli(0.2);
      scores.push_back(rng.Normal(label ? 0.5 : 0.0, 1.0));
      labels.push_back(label);
    }
    curves.push_back(*ComputeRoc(scores, labels));
  }
  const RocCurve averaged = AverageRocCurves(curves);
  for (size_t i = 1; i < averaged.points.size(); ++i) {
    EXPECT_GE(averaged.points[i].true_positive_rate,
              averaged.points[i - 1].true_positive_rate - 1e-12);
  }
}

// NaN scores used to flow into the sort comparator, which is UB (strict weak
// ordering is violated). Both entry points must reject them up front.
TEST(RocTest, RejectsNonFiniteScores) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<bool> labels = {true, false, true, false};

  for (const double bad : {nan, inf, -inf}) {
    const std::vector<double> scores = {0.9, bad, 0.2, 0.1};
    const auto curve = ComputeRoc(scores, labels);
    ASSERT_FALSE(curve.ok());
    EXPECT_EQ(curve.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(curve.status().message().find("non-finite score at index 1"),
              std::string::npos)
        << curve.status().message();
    const auto auc = ComputeAuc(scores, labels);
    ASSERT_FALSE(auc.ok());
    EXPECT_EQ(auc.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(RocTest, FiniteExtremeScoresStillAccepted) {
  const double big = std::numeric_limits<double>::max();
  const std::vector<double> scores = {big, 0.8, -big, 0.1};
  const std::vector<bool> labels = {true, true, false, false};
  const auto auc = ComputeAuc(scores, labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 1.0);
}

}  // namespace
}  // namespace cad
