#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/vector_ops.h"

namespace cad {
namespace {

DenseMatrix RandomSymmetric(size_t n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  auto eig = JacobiEigenDecomposition(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_DOUBLE_EQ(eig->eigenvalues[0], 1.0);
  EXPECT_DOUBLE_EQ(eig->eigenvalues[1], 2.0);
  EXPECT_DOUBLE_EQ(eig->eigenvalues[2], 3.0);
}

TEST(JacobiEigenTest, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  DenseMatrix a(2, 2, {2, 1, 1, 2});
  auto eig = JacobiEigenDecomposition(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-12);
}

TEST(JacobiEigenTest, EigenvectorsSatisfyDefinition) {
  const DenseMatrix a = RandomSymmetric(10, 3);
  auto eig = JacobiEigenDecomposition(a);
  ASSERT_TRUE(eig.ok());
  for (size_t k = 0; k < 10; ++k) {
    std::vector<double> v(10);
    for (size_t i = 0; i < 10; ++i) v[i] = eig->eigenvectors(i, k);
    const std::vector<double> av = a.Multiply(v);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(av[i], eig->eigenvalues[k] * v[i], 1e-8);
    }
  }
}

TEST(JacobiEigenTest, EigenvectorsOrthonormal) {
  const DenseMatrix a = RandomSymmetric(8, 5);
  auto eig = JacobiEigenDecomposition(a);
  ASSERT_TRUE(eig.ok());
  const DenseMatrix vtv =
      eig->eigenvectors.Transpose().Multiply(eig->eigenvectors);
  EXPECT_LT(vtv.MaxAbsDifference(DenseMatrix::Identity(8)), 1e-9);
}

TEST(JacobiEigenTest, EigenvaluesAscending) {
  const DenseMatrix a = RandomSymmetric(12, 7);
  auto eig = JacobiEigenDecomposition(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(
      std::is_sorted(eig->eigenvalues.begin(), eig->eigenvalues.end()));
}

TEST(JacobiEigenTest, TraceEqualsEigenvalueSum) {
  const DenseMatrix a = RandomSymmetric(9, 9);
  auto eig = JacobiEigenDecomposition(a);
  ASSERT_TRUE(eig.ok());
  double trace = 0.0;
  for (size_t i = 0; i < 9; ++i) trace += a(i, i);
  EXPECT_NEAR(trace, Sum(eig->eigenvalues), 1e-9);
}

TEST(JacobiEigenTest, SizeOneAndEmpty) {
  DenseMatrix one(1, 1, {5.0});
  auto eig = JacobiEigenDecomposition(one);
  ASSERT_TRUE(eig.ok());
  EXPECT_DOUBLE_EQ(eig->eigenvalues[0], 5.0);
  EXPECT_DOUBLE_EQ(eig->eigenvectors(0, 0), 1.0);

  DenseMatrix empty(0, 0);
  EXPECT_TRUE(JacobiEigenDecomposition(empty).ok());
}

TEST(JacobiEigenTest, RejectsNonSquareAndNonSymmetric) {
  EXPECT_FALSE(JacobiEigenDecomposition(DenseMatrix(2, 3)).ok());
  DenseMatrix asym(2, 2, {1, 2, 3, 4});
  EXPECT_FALSE(JacobiEigenDecomposition(asym).ok());
}

TEST(SymmetricPseudoInverseTest, InvertibleMatrixGivesInverse) {
  DenseMatrix a(2, 2, {2, 0, 0, 4});
  auto pinv = SymmetricPseudoInverse(a);
  ASSERT_TRUE(pinv.ok());
  EXPECT_NEAR((*pinv)(0, 0), 0.5, 1e-12);
  EXPECT_NEAR((*pinv)(1, 1), 0.25, 1e-12);
}

TEST(SymmetricPseudoInverseTest, PenroseConditionsOnSingularMatrix) {
  // Laplacian of a path 0-1-2: singular with nullspace = span(1).
  DenseMatrix l(3, 3, {1, -1, 0, -1, 2, -1, 0, -1, 1});
  auto pinv = SymmetricPseudoInverse(l);
  ASSERT_TRUE(pinv.ok());
  // Penrose: A A+ A = A and A+ A A+ = A+.
  const DenseMatrix a_pinv_a = l.Multiply(*pinv).Multiply(l);
  EXPECT_LT(a_pinv_a.MaxAbsDifference(l), 1e-9);
  const DenseMatrix pinv_a_pinv = pinv->Multiply(l).Multiply(*pinv);
  EXPECT_LT(pinv_a_pinv.MaxAbsDifference(*pinv), 1e-9);
  // Symmetry of A+ A.
  const DenseMatrix pa = pinv->Multiply(l);
  EXPECT_TRUE(pa.IsSymmetric(1e-9));
}

TEST(SymmetricPseudoInverseTest, NullspaceMapsToZero) {
  DenseMatrix l(3, 3, {1, -1, 0, -1, 2, -1, 0, -1, 1});
  auto pinv = SymmetricPseudoInverse(l);
  ASSERT_TRUE(pinv.ok());
  const std::vector<double> ones(3, 1.0);
  EXPECT_LT(MaxAbs(pinv->Multiply(ones)), 1e-9);
}

/// Parameterized property sweep: pinv satisfies the Penrose identities on
/// random symmetric matrices of varying size (some near-singular).
class PinvSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PinvSweep, PenroseIdentities) {
  const size_t n = GetParam();
  const DenseMatrix a = RandomSymmetric(n, 777 + n);
  auto pinv = SymmetricPseudoInverse(a);
  ASSERT_TRUE(pinv.ok());
  EXPECT_LT(a.Multiply(*pinv).Multiply(a).MaxAbsDifference(a), 1e-7);
  EXPECT_LT(pinv->Multiply(a).Multiply(*pinv).MaxAbsDifference(*pinv), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PinvSweep, ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace cad
