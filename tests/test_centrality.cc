#include "graph/centrality.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace cad {
namespace {

WeightedGraph UnitStar(size_t leaves) {
  WeightedGraph g(leaves + 1);
  for (NodeId leaf = 1; leaf <= leaves; ++leaf) {
    CAD_CHECK_OK(g.SetEdge(0, leaf, 1.0));
  }
  return g;
}

TEST(ClosenessTest, StarCenterIsMostCentral) {
  const WeightedGraph g = UnitStar(5);
  const std::vector<double> cc = ClosenessCentrality(g);
  for (NodeId leaf = 1; leaf <= 5; ++leaf) {
    EXPECT_GT(cc[0], cc[leaf]);
  }
}

TEST(ClosenessTest, StarKnownValues) {
  // Unit-weight star, inverse-weight lengths = 1 per edge. Center: sum of
  // distances = 5, cc = (5/5) * (5/5) = 1. Leaf: distances {1, 2,2,2,2},
  // sum = 9, cc = 5/9 * ... with WF normalization r=5, n-1=5: (5/5)*(5/9).
  const WeightedGraph g = UnitStar(5);
  const std::vector<double> cc = ClosenessCentrality(g);
  EXPECT_NEAR(cc[0], 1.0, 1e-12);
  EXPECT_NEAR(cc[1], 5.0 / 9.0, 1e-12);
}

TEST(ClosenessTest, PathEndsLessCentralThanMiddle) {
  WeightedGraph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) {
    ASSERT_TRUE(g.SetEdge(i, i + 1, 1.0).ok());
  }
  const std::vector<double> cc = ClosenessCentrality(g);
  EXPECT_GT(cc[2], cc[0]);
  EXPECT_GT(cc[2], cc[4]);
  EXPECT_NEAR(cc[0], cc[4], 1e-12);  // symmetry
}

TEST(ClosenessTest, IsolatedNodeHasZeroCentrality) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  const std::vector<double> cc = ClosenessCentrality(g);
  EXPECT_EQ(cc[2], 0.0);
  EXPECT_GT(cc[0], 0.0);
}

TEST(ClosenessTest, DisconnectedPenalizedVsConnected) {
  // Wasserman-Faust: a node in a small component must score below a node
  // with the same local distances in a spanning component.
  WeightedGraph g(6);
  // Component A: triangle 0-1-2. Component B: triangle 3-4-5.
  for (auto [u, v] : std::vector<std::pair<NodeId, NodeId>>{
           {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}) {
    ASSERT_TRUE(g.SetEdge(u, v, 1.0).ok());
  }
  WeightedGraph connected(3);
  ASSERT_TRUE(connected.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(connected.SetEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(connected.SetEdge(0, 2, 1.0).ok());
  const double six_node = ClosenessCentrality(g)[0];
  const double three_node = ClosenessCentrality(connected)[0];
  EXPECT_LT(six_node, three_node);
}

TEST(ClosenessTest, StrongerTiesIncreaseCentrality) {
  WeightedGraph weak(3);
  ASSERT_TRUE(weak.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(weak.SetEdge(1, 2, 1.0).ok());
  WeightedGraph strong(3);
  ASSERT_TRUE(strong.SetEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(strong.SetEdge(1, 2, 2.0).ok());
  EXPECT_GT(ClosenessCentrality(strong)[1], ClosenessCentrality(weak)[1]);
}

TEST(ClosenessTest, EmptyAndSingletonGraphs) {
  EXPECT_TRUE(ClosenessCentrality(WeightedGraph(0)).empty());
  EXPECT_EQ(ClosenessCentrality(WeightedGraph(1)), std::vector<double>{0.0});
}

TEST(ClosenessTest, SampledApproximatesExactOrdering) {
  // A barbell-ish graph: hub-heavy side vs. chain side.
  WeightedGraph g(30);
  for (NodeId i = 1; i < 15; ++i) ASSERT_TRUE(g.SetEdge(0, i, 1.0).ok());
  for (NodeId i = 15; i + 1 < 30; ++i) {
    ASSERT_TRUE(g.SetEdge(i, i + 1, 1.0).ok());
  }
  ASSERT_TRUE(g.SetEdge(0, 15, 1.0).ok());

  ClosenessOptions sampled;
  sampled.num_samples = 15;
  sampled.seed = 3;
  const std::vector<double> approx = ClosenessCentrality(g, sampled);
  const std::vector<double> exact = ClosenessCentrality(g);
  // The hub (node 0) is most central exactly.
  EXPECT_EQ(std::max_element(exact.begin(), exact.end()) - exact.begin(), 0);
  // The sampled estimator is noisy at 15 pivots; require the coarse shape:
  // hub clearly above the chain tail, and positive correlation with exact.
  EXPECT_LT(approx[29], approx[0]);
  double mean_a = 0.0;
  double mean_e = 0.0;
  for (size_t i = 0; i < 30; ++i) {
    mean_a += approx[i];
    mean_e += exact[i];
  }
  mean_a /= 30.0;
  mean_e /= 30.0;
  double cov = 0.0;
  double var_a = 0.0;
  double var_e = 0.0;
  for (size_t i = 0; i < 30; ++i) {
    cov += (approx[i] - mean_a) * (exact[i] - mean_e);
    var_a += (approx[i] - mean_a) * (approx[i] - mean_a);
    var_e += (exact[i] - mean_e) * (exact[i] - mean_e);
  }
  EXPECT_GT(cov / std::sqrt(var_a * var_e), 0.5);
}

TEST(ClosenessTest, SampledWithAllNodesMatchesExact) {
  WeightedGraph g(8);
  for (NodeId i = 0; i + 1 < 8; ++i) ASSERT_TRUE(g.SetEdge(i, i + 1, 1.0).ok());
  ClosenessOptions all;
  all.num_samples = 8;  // >= n falls back to exact
  const std::vector<double> a = ClosenessCentrality(g, all);
  const std::vector<double> b = ClosenessCentrality(g);
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

}  // namespace
}  // namespace cad
