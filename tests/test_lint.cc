// Unit tests for the repo linter (src/lint): each rule is exercised against
// inline fixture strings, including its scoping (which directories it
// applies to) and the `cad-lint: allow(<rule>)` escape hatch. The fixtures
// deliberately contain banned constructs; they only become findings when
// presented under a src/ path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/lint.h"

namespace cad {
namespace lint {
namespace {

std::vector<std::string> RuleNames(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& finding : findings) rules.push_back(finding.rule);
  return rules;
}

// --- include guards -------------------------------------------------------

TEST(ExpectedIncludeGuardTest, MapsPathsToGuards) {
  EXPECT_EQ(ExpectedIncludeGuard("src/linalg/cholesky.h"),
            "CAD_LINALG_CHOLESKY_H_");
  EXPECT_EQ(ExpectedIncludeGuard("src/common/check.h"), "CAD_COMMON_CHECK_H_");
  EXPECT_EQ(ExpectedIncludeGuard("bench/report.h"), "CAD_BENCH_REPORT_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tools/my-tool.h"), "CAD_TOOLS_MY_TOOL_H_");
}

TEST(IncludeGuardRuleTest, AcceptsMatchingGuard) {
  const std::string content =
      "#ifndef CAD_GRAPH_FOO_H_\n"
      "#define CAD_GRAPH_FOO_H_\n"
      "#endif  // CAD_GRAPH_FOO_H_\n";
  EXPECT_TRUE(LintContent("src/graph/foo.h", content).empty());
}

TEST(IncludeGuardRuleTest, FlagsWrongGuardName) {
  const std::string content =
      "#ifndef FOO_H\n"
      "#define FOO_H\n"
      "#endif\n";
  const std::vector<Finding> findings = LintContent("src/graph/foo.h", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("CAD_GRAPH_FOO_H_"), std::string::npos);
}

TEST(IncludeGuardRuleTest, FlagsMissingGuard) {
  const std::vector<Finding> findings =
      LintContent("src/graph/foo.h", "int x;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
}

TEST(IncludeGuardRuleTest, FlagsMismatchedDefineLine) {
  const std::string content =
      "#ifndef CAD_GRAPH_FOO_H_\n"
      "#define CAD_GRAPH_BAR_H_\n"
      "#endif\n";
  const std::vector<Finding> findings = LintContent("src/graph/foo.h", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(IncludeGuardRuleTest, AllowAnnotationSuppresses) {
  const std::string content =
      "#ifndef LEGACY_GUARD_H  // cad-lint: allow(include-guard)\n"
      "#define LEGACY_GUARD_H\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/graph/foo.h", content).empty());
}

TEST(IncludeGuardRuleTest, DoesNotApplyToSourceFiles) {
  EXPECT_TRUE(LintContent("src/graph/foo.cc", "int x;\n").empty());
}

// --- banned calls ---------------------------------------------------------

TEST(BannedCallRuleTest, FlagsRawAssertAndAbort) {
  const std::vector<Finding> findings = LintContent(
      "src/core/foo.cc", "void F() {\n  assert(x > 0);\n  abort();\n}\n");
  EXPECT_EQ(RuleNames(findings),
            (std::vector<std::string>{"banned-call", "banned-call"}));
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST(BannedCallRuleTest, AllowsStdAbort) {
  // std::abort is the sanctioned fail-fast primitive (CheckFailure uses it).
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "void F() { std::abort(); }\n").empty());
}

TEST(BannedCallRuleTest, FlagsPrintfFamilyButNotSnprintf) {
  EXPECT_EQ(RuleNames(LintContent("src/io/foo.cc",
                                  "void F() { printf(\"x\"); }\n")),
            std::vector<std::string>{"banned-call"});
  EXPECT_EQ(RuleNames(LintContent("src/io/foo.cc",
                                  "void F() { std::fprintf(f, \"x\"); }\n")),
            std::vector<std::string>{"banned-call"});
  EXPECT_TRUE(LintContent("src/io/foo.cc",
                          "void F() { std::snprintf(buf, 4, \"x\"); }\n")
                  .empty());
}

TEST(BannedCallRuleTest, FlagsRandButNotSrandSubstring) {
  EXPECT_EQ(RuleNames(LintContent("src/core/foo.cc",
                                  "int x = std::rand();\n")),
            std::vector<std::string>{"banned-call"});
  EXPECT_EQ(RuleNames(LintContent("src/core/foo.cc", "int x = rand();\n")),
            std::vector<std::string>{"banned-call"});
  // 'grand(' must not match the rand rule via substring.
  EXPECT_TRUE(LintContent("src/core/foo.cc", "int x = grand();\n").empty());
}

TEST(BannedCallRuleTest, ScopedToSrcOnly) {
  const std::string content = "void F() { assert(1); printf(\"x\"); }\n";
  EXPECT_FALSE(LintContent("src/core/foo.cc", content).empty());
  EXPECT_TRUE(LintContent("tests/test_foo.cc", content).empty());
  EXPECT_TRUE(LintContent("bench/bench_foo.cc", content).empty());
  EXPECT_TRUE(LintContent("tools/tool_foo.cc", content).empty());
}

TEST(BannedCallRuleTest, CommentsAndAllowAnnotationsSuppress) {
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "// uses assert(x) upstream\n").empty());
  EXPECT_TRUE(LintContent("src/core/foo.cc",
                          "assert(x);  // cad-lint: allow(banned-call)\n")
                  .empty());
}

// --- using namespace in headers -------------------------------------------

TEST(UsingNamespaceRuleTest, FlagsHeadersOnly) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "using namespace std;\n"
      "#endif\n";
  const std::vector<Finding> findings = LintContent("src/core/foo.h", header);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "using-namespace-header");
  EXPECT_EQ(findings[0].line, 3u);

  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "using namespace std;\n").empty());
}

TEST(UsingNamespaceRuleTest, AllowsUsingDeclarations) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "using std::vector;\n"
      "using NodeId = uint32_t;\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/core/foo.h", header).empty());
}

// --- [[nodiscard]] on Status/Result ---------------------------------------

TEST(NodiscardRuleTest, FlagsUnannotatedStatusAndResult) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "Status Append(int snapshot);\n"
      "Result<std::vector<int>> Solve(int n);\n"
      "#endif\n";
  const std::vector<Finding> findings = LintContent("src/core/foo.h", header);
  EXPECT_EQ(RuleNames(findings), (std::vector<std::string>{
                                     "nodiscard-status", "nodiscard-status"}));
}

TEST(NodiscardRuleTest, AcceptsAnnotatedDeclarations) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "[[nodiscard]] Status Append(int snapshot);\n"
      "  [[nodiscard]] static Result<int> Make();\n"
      "[[nodiscard]]\n"
      "Result<int> Other(int n);\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/core/foo.h", header).empty());
}

TEST(NodiscardRuleTest, MatchesSpecifiersAndIndentation) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "  static Result<int> Factor(int a);\n"
      "  virtual Status Run() = 0;\n"
      "#endif\n";
  EXPECT_EQ(LintContent("src/core/foo.h", header).size(), 2u);
}

TEST(NodiscardRuleTest, IgnoresNonDeclarations) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "// Status Run(int x); in a comment\n"
      "enum class StatusCode : int { kOk };\n"
      "const char* StatusCodeToString(StatusCode code);\n"
      "void Use(Status s);\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/core/foo.h", header).empty());
}

TEST(NodiscardRuleTest, HeadersOnlyAndAllowSuppresses) {
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "Status Append(int snapshot);\n")
          .empty());
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "Status Append(int s);  // cad-lint: allow(nodiscard-status)\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/core/foo.h", header).empty());
}

// --- nondeterminism containment -------------------------------------------

TEST(NondeterminismRuleTest, FlagsWallClockAndEntropy) {
  EXPECT_EQ(RuleNames(LintContent("src/core/foo.cc",
                                  "long t = time(nullptr);\n")),
            std::vector<std::string>{"nondeterminism"});
  EXPECT_EQ(RuleNames(LintContent("src/core/foo.cc",
                                  "long t = std::time(nullptr);\n")),
            std::vector<std::string>{"nondeterminism"});
  EXPECT_EQ(RuleNames(LintContent("src/core/foo.cc",
                                  "std::random_device rd;\n")),
            std::vector<std::string>{"nondeterminism"});
}

TEST(NondeterminismRuleTest, RngModuleIsExempt) {
  EXPECT_TRUE(
      LintContent("src/common/rng.cc", "std::random_device rd;\n").empty());
  EXPECT_TRUE(LintContent("tests/test_foo.cc", "time(nullptr);\n").empty());
}

TEST(NondeterminismRuleTest, DoesNotFlagIdentifierSuffixes) {
  // CamelCase methods, member access, and *_time identifiers are fine.
  EXPECT_TRUE(LintContent("src/core/foo.cc",
                          "double c = oracle.CommuteTime(u, v);\n")
                  .empty());
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "double c = commute_time(u);\n").empty());
  EXPECT_TRUE(LintContent("src/core/foo.cc", "timer.time();\n").empty());
}

// --- raw-clock -------------------------------------------------------------

TEST(RawClockRuleTest, FlagsSteadyAndHighResolutionClocks) {
  EXPECT_EQ(
      RuleNames(LintContent(
          "src/core/foo.cc",
          "auto t = std::chrono::steady_clock::now();\n")),  // cad-lint: allow(raw-clock)
      (std::vector<std::string>{"raw-clock"}));
  EXPECT_EQ(
      RuleNames(LintContent(
          "src/core/foo.cc",
          "auto t = std::chrono::high_resolution_clock::now();\n")),  // cad-lint: allow(raw-clock)
      (std::vector<std::string>{"raw-clock"}));
}

TEST(RawClockRuleTest, AppliesOutsideSrcToo) {
  const std::string content =
      "auto t = std::chrono::steady_clock::now();\n";  // cad-lint: allow(raw-clock)
  EXPECT_EQ(RuleNames(LintContent("bench/bench_foo.cc", content)),
            (std::vector<std::string>{"raw-clock"}));
  EXPECT_EQ(RuleNames(LintContent("tests/test_foo.cc", content)),
            (std::vector<std::string>{"raw-clock"}));
  EXPECT_EQ(RuleNames(LintContent("tools/tool_foo.cc", content)),
            (std::vector<std::string>{"raw-clock"}));
}

TEST(RawClockRuleTest, TimerAndObsAreExempt) {
  // The header fixtures still trip unrelated rules (no include guard), so
  // assert specifically that raw-clock is absent rather than findings-empty.
  const std::string content =
      "auto t = std::chrono::steady_clock::now();\n";  // cad-lint: allow(raw-clock)
  for (const char* path :
       {"src/common/timer.h", "src/obs/trace.cc", "src/obs/metrics.h"}) {
    for (const std::string& rule : RuleNames(LintContent(path, content))) {
      EXPECT_NE(rule, "raw-clock") << path;
    }
  }
}

TEST(RawClockRuleTest, SystemClockAndAllowAnnotationPass) {
  // system_clock is wall time, covered by the nondeterminism policy rather
  // than this rule; the escape hatch works like everywhere else.
  EXPECT_TRUE(LintContent("src/core/foo.cc",
                          "auto t = std::chrono::system_clock::now();\n")
                  .empty());
  // NOLINT-style escape: the annotation must sit on the same physical line
  // as the clock use (kept as one literal so the self-scan sees it too).
  EXPECT_TRUE(
      LintContent("src/core/foo.cc",
                  "auto t = std::chrono::steady_clock::now();  // cad-lint: allow(raw-clock)\n")
          .empty());
}

// --- formatting -----------------------------------------------------------

TEST(FormatFindingTest, RendersFileLineRuleMessage) {
  const Finding finding{"src/core/foo.cc", 12, "banned-call", "no printf"};
  EXPECT_EQ(FormatFinding(finding),
            "src/core/foo.cc:12: [banned-call] no printf");
  const Finding whole_file{"src/core/foo.h", 0, "include-guard", "missing"};
  EXPECT_EQ(FormatFinding(whole_file),
            "src/core/foo.h: [include-guard] missing");
}

}  // namespace
}  // namespace lint
}  // namespace cad
