// Unit tests for the repo linter (src/lint): each rule is exercised against
// inline fixture strings, including its scoping (which directories it
// applies to) and the `cad-lint: allow(<rule>)` escape hatch. The fixtures
// deliberately contain banned constructs; they only become findings when
// presented under a src/ path.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace cad {
namespace lint {
namespace {

std::vector<std::string> RuleNames(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& finding : findings) rules.push_back(finding.rule);
  return rules;
}

// --- include guards -------------------------------------------------------

TEST(ExpectedIncludeGuardTest, MapsPathsToGuards) {
  EXPECT_EQ(ExpectedIncludeGuard("src/linalg/cholesky.h"),
            "CAD_LINALG_CHOLESKY_H_");
  EXPECT_EQ(ExpectedIncludeGuard("src/common/check.h"), "CAD_COMMON_CHECK_H_");
  EXPECT_EQ(ExpectedIncludeGuard("bench/report.h"), "CAD_BENCH_REPORT_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tools/my-tool.h"), "CAD_TOOLS_MY_TOOL_H_");
}

TEST(IncludeGuardRuleTest, AcceptsMatchingGuard) {
  const std::string content =
      "#ifndef CAD_GRAPH_FOO_H_\n"
      "#define CAD_GRAPH_FOO_H_\n"
      "#endif  // CAD_GRAPH_FOO_H_\n";
  EXPECT_TRUE(LintContent("src/graph/foo.h", content).empty());
}

TEST(IncludeGuardRuleTest, FlagsWrongGuardName) {
  const std::string content =
      "#ifndef FOO_H\n"
      "#define FOO_H\n"
      "#endif\n";
  const std::vector<Finding> findings = LintContent("src/graph/foo.h", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("CAD_GRAPH_FOO_H_"), std::string::npos);
}

TEST(IncludeGuardRuleTest, FlagsMissingGuard) {
  const std::vector<Finding> findings =
      LintContent("src/graph/foo.h", "int x;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
}

TEST(IncludeGuardRuleTest, FlagsMismatchedDefineLine) {
  const std::string content =
      "#ifndef CAD_GRAPH_FOO_H_\n"
      "#define CAD_GRAPH_BAR_H_\n"
      "#endif\n";
  const std::vector<Finding> findings = LintContent("src/graph/foo.h", content);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(IncludeGuardRuleTest, AllowAnnotationSuppresses) {
  const std::string content =
      "#ifndef LEGACY_GUARD_H  // cad-lint: allow(include-guard)\n"
      "#define LEGACY_GUARD_H\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/graph/foo.h", content).empty());
}

TEST(IncludeGuardRuleTest, DoesNotApplyToSourceFiles) {
  EXPECT_TRUE(LintContent("src/graph/foo.cc", "int x;\n").empty());
}

// --- banned calls ---------------------------------------------------------

TEST(BannedCallRuleTest, FlagsRawAssertAndAbort) {
  const std::vector<Finding> findings = LintContent(
      "src/core/foo.cc", "void F() {\n  assert(x > 0);\n  abort();\n}\n");
  EXPECT_EQ(RuleNames(findings),
            (std::vector<std::string>{"banned-call", "banned-call"}));
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST(BannedCallRuleTest, AllowsStdAbort) {
  // std::abort is the sanctioned fail-fast primitive (CheckFailure uses it).
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "void F() { std::abort(); }\n").empty());
}

TEST(BannedCallRuleTest, FlagsPrintfFamilyButNotSnprintf) {
  EXPECT_EQ(RuleNames(LintContent("src/io/foo.cc",
                                  "void F() { printf(\"x\"); }\n")),
            std::vector<std::string>{"banned-call"});
  EXPECT_EQ(RuleNames(LintContent("src/io/foo.cc",
                                  "void F() { std::fprintf(f, \"x\"); }\n")),
            std::vector<std::string>{"banned-call"});
  EXPECT_TRUE(LintContent("src/io/foo.cc",
                          "void F() { std::snprintf(buf, 4, \"x\"); }\n")
                  .empty());
}

TEST(BannedCallRuleTest, FlagsRandButNotSrandSubstring) {
  EXPECT_EQ(RuleNames(LintContent("src/core/foo.cc",
                                  "int x = std::rand();\n")),
            std::vector<std::string>{"banned-call"});
  EXPECT_EQ(RuleNames(LintContent("src/core/foo.cc", "int x = rand();\n")),
            std::vector<std::string>{"banned-call"});
  // 'grand(' must not match the rand rule via substring.
  EXPECT_TRUE(LintContent("src/core/foo.cc", "int x = grand();\n").empty());
}

TEST(BannedCallRuleTest, AssertBannedEverywherePrintfScoped) {
  // assert/abort/rand are portable hazards: banned in every scanned tree.
  const std::string asserts = "void F() { assert(1); }\n";
  for (const char* path : {"src/core/foo.cc", "tests/test_foo.cc",
                           "bench/bench_foo.cc", "tools/tool_foo.cc",
                           "examples/demo.cpp"}) {
    EXPECT_EQ(RuleNames(LintContent(path, asserts)),
              std::vector<std::string>{"banned-call"})
        << path;
  }
  // The printf family is only banned where stdout is not the product:
  // bench mains and tests print results and tables freely.
  const std::string prints = "void F() { printf(\"x\"); }\n";
  EXPECT_FALSE(LintContent("src/core/foo.cc", prints).empty());
  EXPECT_FALSE(LintContent("tools/tool_foo.cc", prints).empty());
  EXPECT_FALSE(LintContent("examples/demo.cpp", prints).empty());
  EXPECT_TRUE(LintContent("tests/test_foo.cc", prints).empty());
  EXPECT_TRUE(LintContent("bench/bench_foo.cc", prints).empty());
}

TEST(BannedCallRuleTest, CommentsAndAllowAnnotationsSuppress) {
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "// uses assert(x) upstream\n").empty());
  EXPECT_TRUE(LintContent("src/core/foo.cc",
                          "assert(x);  // cad-lint: allow(banned-call)\n")
                  .empty());
}

// --- using namespace in headers -------------------------------------------

TEST(UsingNamespaceRuleTest, FlagsHeadersOnly) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "using namespace std;\n"
      "#endif\n";
  const std::vector<Finding> findings = LintContent("src/core/foo.h", header);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "using-namespace-header");
  EXPECT_EQ(findings[0].line, 3u);

  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "using namespace std;\n").empty());
}

TEST(UsingNamespaceRuleTest, AllowsUsingDeclarations) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "using std::vector;\n"
      "using NodeId = uint32_t;\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/core/foo.h", header).empty());
}

// --- [[nodiscard]] on Status/Result ---------------------------------------

TEST(NodiscardRuleTest, FlagsUnannotatedStatusAndResult) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "Status Append(int snapshot);\n"
      "Result<std::vector<int>> Solve(int n);\n"
      "#endif\n";
  const std::vector<Finding> findings = LintContent("src/core/foo.h", header);
  EXPECT_EQ(RuleNames(findings), (std::vector<std::string>{
                                     "nodiscard-status", "nodiscard-status"}));
}

TEST(NodiscardRuleTest, AcceptsAnnotatedDeclarations) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "[[nodiscard]] Status Append(int snapshot);\n"
      "  [[nodiscard]] static Result<int> Make();\n"
      "[[nodiscard]]\n"
      "Result<int> Other(int n);\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/core/foo.h", header).empty());
}

TEST(NodiscardRuleTest, MatchesSpecifiersAndIndentation) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "  static Result<int> Factor(int a);\n"
      "  virtual Status Run() = 0;\n"
      "#endif\n";
  EXPECT_EQ(LintContent("src/core/foo.h", header).size(), 2u);
}

TEST(NodiscardRuleTest, IgnoresNonDeclarations) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "// Status Run(int x); in a comment\n"
      "enum class StatusCode : int { kOk };\n"
      "const char* StatusCodeToString(StatusCode code);\n"
      "void Use(Status s);\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/core/foo.h", header).empty());
}

TEST(NodiscardRuleTest, HeadersOnlyAndAllowSuppresses) {
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "Status Append(int snapshot);\n")
          .empty());
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "Status Append(int s);  // cad-lint: allow(nodiscard-status)\n"
      "#endif\n";
  EXPECT_TRUE(LintContent("src/core/foo.h", header).empty());
}

// --- nondeterminism containment -------------------------------------------

TEST(NondeterminismRuleTest, FlagsWallClockAndEntropy) {
  EXPECT_EQ(RuleNames(LintContent("src/core/foo.cc",
                                  "long t = time(nullptr);\n")),
            std::vector<std::string>{"nondeterminism"});
  EXPECT_EQ(RuleNames(LintContent("src/core/foo.cc",
                                  "long t = std::time(nullptr);\n")),
            std::vector<std::string>{"nondeterminism"});
  EXPECT_EQ(RuleNames(LintContent("src/core/foo.cc",
                                  "std::random_device rd;\n")),
            std::vector<std::string>{"nondeterminism"});
}

TEST(NondeterminismRuleTest, RngModuleIsExempt) {
  EXPECT_TRUE(
      LintContent("src/common/rng.cc", "std::random_device rd;\n").empty());
  EXPECT_TRUE(LintContent("tests/test_foo.cc", "time(nullptr);\n").empty());
}

TEST(NondeterminismRuleTest, DoesNotFlagIdentifierSuffixes) {
  // CamelCase methods, member access, and *_time identifiers are fine.
  EXPECT_TRUE(LintContent("src/core/foo.cc",
                          "double c = oracle.CommuteTime(u, v);\n")
                  .empty());
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "double c = commute_time(u);\n").empty());
  EXPECT_TRUE(LintContent("src/core/foo.cc", "timer.time();\n").empty());
}

// --- raw-clock -------------------------------------------------------------

TEST(RawClockRuleTest, FlagsSteadyAndHighResolutionClocks) {
  EXPECT_EQ(
      RuleNames(LintContent(
          "src/core/foo.cc",
          "auto t = std::chrono::steady_clock::now();\n")),
      (std::vector<std::string>{"raw-clock"}));
  EXPECT_EQ(
      RuleNames(LintContent(
          "src/core/foo.cc",
          "auto t = std::chrono::high_resolution_clock::now();\n")),
      (std::vector<std::string>{"raw-clock"}));
}

TEST(RawClockRuleTest, AppliesOutsideSrcToo) {
  const std::string content =
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(RuleNames(LintContent("bench/bench_foo.cc", content)),
            (std::vector<std::string>{"raw-clock"}));
  EXPECT_EQ(RuleNames(LintContent("tests/test_foo.cc", content)),
            (std::vector<std::string>{"raw-clock"}));
  EXPECT_EQ(RuleNames(LintContent("tools/tool_foo.cc", content)),
            (std::vector<std::string>{"raw-clock"}));
}

TEST(RawClockRuleTest, TimerAndObsAreExempt) {
  // The header fixtures still trip unrelated rules (no include guard), so
  // assert specifically that raw-clock is absent rather than findings-empty.
  const std::string content =
      "auto t = std::chrono::steady_clock::now();\n";
  for (const char* path :
       {"src/common/timer.h", "src/obs/trace.cc", "src/obs/metrics.h"}) {
    for (const std::string& rule : RuleNames(LintContent(path, content))) {
      EXPECT_NE(rule, "raw-clock") << path;
    }
  }
}

TEST(RawClockRuleTest, SystemClockAndAllowAnnotationPass) {
  // system_clock is wall time, covered by the nondeterminism policy rather
  // than this rule; the escape hatch works like everywhere else.
  EXPECT_TRUE(LintContent("src/core/foo.cc",
                          "auto t = std::chrono::system_clock::now();\n")
                  .empty());
  // NOLINT-style escape: the annotation must sit on the same physical line
  // as the clock use.
  EXPECT_TRUE(
      LintContent("src/core/foo.cc",
                  "auto t = std::chrono::steady_clock::now();  // cad-lint: allow(raw-clock)\n")
          .empty());
}

// --- raw-signal ------------------------------------------------------------

TEST(RawSignalRuleTest, FlagsSignalFamilyCalls) {
  EXPECT_EQ(RuleNames(LintContent(
                "src/core/foo.cc", "::signal(SIGTERM, SIG_IGN);\n")),
            (std::vector<std::string>{"raw-signal"}));
  EXPECT_EQ(RuleNames(LintContent(
                "tools/tool_foo.cc",
                "::sigaction(SIGINT, &action, nullptr);\n")),
            (std::vector<std::string>{"raw-signal"}));
  EXPECT_EQ(RuleNames(LintContent(
                "src/app/foo.cc", "std::signal(SIGTERM, handler);\n")),
            (std::vector<std::string>{"raw-signal"}));
  EXPECT_EQ(RuleNames(LintContent(
                "tests/test_foo.cc", "signal(SIGTERM, handler);\n")),
            (std::vector<std::string>{"raw-signal"}));
}

TEST(RawSignalRuleTest, SignalUtilIsExempt) {
  const std::string content = "::sigaction(SIGTERM, &action, nullptr);\n";
  EXPECT_TRUE(LintContent("src/server/signal_util.cc", content).empty());
  for (const std::string& rule :
       RuleNames(LintContent("src/server/signal_util.h", content))) {
    EXPECT_NE(rule, "raw-signal");
  }
}

TEST(RawSignalRuleTest, DoesNotFlagDeclarationsOrMembers) {
  // `struct sigaction action;` is a type use, not a handler installation;
  // member calls named like the libc functions belong to their own class.
  EXPECT_TRUE(LintContent("src/server/foo.cc",
                          "struct sigaction action;\n")
                  .empty());
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "bus.signal(kReady);\n").empty());
  EXPECT_TRUE(LintContent("src/core/foo.cc",
                          "const char* s = \"signal(SIGTERM)\";\n")
                  .empty());
}

// --- false-positive corpus: strings and comments --------------------------

// The regex-era linter matched raw text, so banned spellings inside string
// literals or block comments produced false findings. The token lexer
// classifies those regions, so the rules never see them.
TEST(FalsePositiveCorpusTest, BannedSpellingsInStringLiteralsAreIgnored) {
  const std::string content =
      "const char* a = \"assert(x) and abort() and printf(fmt)\";\n"
      "const char* b = \"std::chrono::steady_clock::now()\";\n"
      "const char* c = \"// not a comment: time(nullptr)\";\n"
      "const char* d = \"m.lock(); m.unlock();\";\n"
      "char e = \'\\'\';  // a quote char cannot derail the lexer\n";
  EXPECT_TRUE(LintContent("src/core/foo.cc", content).empty());
}

TEST(FalsePositiveCorpusTest, BannedSpellingsInBlockCommentsAreIgnored) {
  const std::string content =
      "/* historical code:\n"
      "   assert(x > 0);\n"
      "   auto t = std::chrono::steady_clock::now();\n"
      "   std::random_device rd;  rand();\n"
      "*/\n"
      "int x = 0;\n";
  EXPECT_TRUE(LintContent("src/core/foo.cc", content).empty());
}

TEST(FalsePositiveCorpusTest, RawStringsAreIgnored) {
  const std::string content =
      "const char* sql = R\"(assert(1); abort(); printf(\"x\"))\";\n"
      "const char* gold = R\"gold(\n"
      "  std::chrono::steady_clock::now();\n"
      "  time(nullptr);\n"
      ")gold\";\n";
  EXPECT_TRUE(LintContent("src/core/foo.cc", content).empty());
}

TEST(FalsePositiveCorpusTest, CallsSplitAcrossLinesAreStillCaught) {
  // The flip side: physical-line regexes missed constructs broken across
  // lines; the token stream does not.
  const std::vector<Finding> split_assert = LintContent(
      "src/core/foo.cc", "void F() {\n  assert\n      (x > 0);\n}\n");
  EXPECT_EQ(RuleNames(split_assert), std::vector<std::string>{"banned-call"});
  const std::vector<Finding> spliced = LintContent(
      "src/core/foo.cc", "void F() { as\\\nsert(1); }\n");
  EXPECT_EQ(RuleNames(spliced), std::vector<std::string>{"banned-call"});
  const std::vector<Finding> split_clock = LintContent(
      "src/core/foo.cc",
      "auto t = std::chrono::\n    steady_clock::now();\n");
  EXPECT_EQ(RuleNames(split_clock), std::vector<std::string>{"raw-clock"});
}

TEST(FalsePositiveCorpusTest, LineCommentLooksLikeDirectiveIsIgnored) {
  // `// #include "x.h"` must not register as an include, and a commented
  // `#ifndef` must not satisfy the include-guard rule.
  const std::string header =
      "// #ifndef WRONG_GUARD_H\n"
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "#endif  // CAD_CORE_FOO_H_\n";
  EXPECT_TRUE(LintContent("src/core/foo.h", header).empty());
}

// --- lock-discipline -------------------------------------------------------

TEST(LockDisciplineRuleTest, FlagsRawLockAndUnlock) {
  const std::vector<Finding> findings = LintContent(
      "src/core/foo.cc",
      "void F() {\n  mu_.lock();\n  work();\n  mu_.unlock();\n}\n");
  EXPECT_EQ(RuleNames(findings),
            (std::vector<std::string>{"lock-discipline", "lock-discipline"}));
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 4u);
  // Pointer access and everywhere-scoping (tests included) are covered too.
  EXPECT_EQ(RuleNames(LintContent("tests/test_foo.cc",
                                  "void F() { mu->lock(); }\n")),
            std::vector<std::string>{"lock-discipline"});
}

TEST(LockDisciplineRuleTest, RaiiAndNonMemberUsesPass) {
  const std::string content =
      "void F() {\n"
      "  std::lock_guard<std::mutex> lock(mu_);\n"
      "  std::unique_lock<std::mutex> u(mu_);\n"
      "  std::scoped_lock all(a_, b_);\n"
      "  lock();  // free function named lock is not a mutex member call\n"
      "  m.try_lock_shared();\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/core/foo.cc", content).empty());
  // .lock() with arguments is something else (e.g. weak_ptr has none, but a
  // custom API might); only the zero-argument member spelling is the smell.
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "void F() { w.lock(fallback); }\n")
          .empty());
}

TEST(LockDisciplineRuleTest, AllowAnnotationSuppresses) {
  EXPECT_TRUE(LintContent("src/core/foo.cc",
                          "void F() { mu_.lock(); }  "
                          "// cad-lint: allow(lock-discipline)\n")
                  .empty());
}

// --- hot-alloc -------------------------------------------------------------

TEST(HotAllocRuleTest, FlagsGrowthCallsInsideMarkedRegion) {
  const std::string content =
      "void F(std::vector<int>& v) {\n"
      "  // cad-lint: hot-path begin\n"
      "  v.resize(10);\n"
      "  v.push_back(1);\n"
      "  v.emplace_back(2);\n"
      "  ptr->reserve(3);\n"
      "  // cad-lint: hot-path end\n"
      "}\n";
  EXPECT_EQ(RuleNames(LintContent("src/linalg/foo.cc", content)),
            (std::vector<std::string>{"hot-alloc", "hot-alloc", "hot-alloc",
                                      "hot-alloc"}));
}

TEST(HotAllocRuleTest, IgnoresGrowthOutsideRegionsAndNonMemberSpellings) {
  const std::string content =
      "void F(std::vector<int>& v) {\n"
      "  v.resize(10);  // before the region: preallocation is the point\n"
      "  // cad-lint: hot-path begin\n"
      "  resize(10);    // free function, not a member growth call\n"
      "  v.size();\n"
      "  // cad-lint: hot-path end\n"
      "  v.push_back(1);  // after the region\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/linalg/foo.cc", content).empty());
}

TEST(HotAllocRuleTest, AllowAnnotationSuppresses) {
  const std::string content =
      "void F(std::vector<int>& v) {\n"
      "  // cad-lint: hot-path begin\n"
      "  v.resize(w);  // shrink only  // cad-lint: allow(hot-alloc)\n"
      "  // cad-lint: hot-path end\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/linalg/foo.cc", content).empty());
}

TEST(HotAllocRuleTest, UnmatchedBeginExtendsToEndOfFile) {
  const std::string content =
      "void F(std::vector<int>& v) {\n"
      "  // cad-lint: hot-path begin\n"
      "  v.push_back(1);\n"
      "}\n";
  EXPECT_EQ(RuleNames(LintContent("src/linalg/foo.cc", content)),
            std::vector<std::string>{"hot-alloc"});
}

TEST(HotAllocRuleTest, AppliesInEveryDirectory) {
  const std::string content =
      "void F(std::vector<int>& v) {\n"
      "  // cad-lint: hot-path begin\n"
      "  v.push_back(1);\n"
      "  // cad-lint: hot-path end\n"
      "}\n";
  for (const char* path :
       {"src/core/foo.cc", "tools/tool_foo.cc", "bench/bench_foo.cc",
        "tests/test_foo.cc"}) {
    EXPECT_EQ(RuleNames(LintContent(path, content)),
              std::vector<std::string>{"hot-alloc"})
        << path;
  }
}

// --- static-mutable-header -------------------------------------------------

TEST(StaticMutableHeaderRuleTest, FlagsNamespaceScopeMutableStatics) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "static int counter = 0;\n"
      "inline int hits = 0;\n"
      "static double table[] = {1.0, 2.0};\n"
      "#endif  // CAD_CORE_FOO_H_\n";
  const std::vector<Finding> findings = LintContent("src/core/foo.h", header);
  EXPECT_EQ(RuleNames(findings),
            (std::vector<std::string>{"static-mutable-header",
                                      "static-mutable-header",
                                      "static-mutable-header"}));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(StaticMutableHeaderRuleTest, ConstFunctionsAndMembersPass) {
  const std::string header =
      "#ifndef CAD_CORE_FOO_H_\n"
      "#define CAD_CORE_FOO_H_\n"
      "static constexpr int kMax = 8;\n"
      "inline const char* kName = \"cad\";\n"
      "static int Helper() { return 1; }\n"
      "inline int Twice(int x) { return 2 * x; }\n"
      "class Foo {\n"
      "  static int instances_;  // class member: different rule territory\n"
      "  mutable std::mutex mu_;\n"
      "};\n"
      "void Body();\n"
      "#endif  // CAD_CORE_FOO_H_\n";
  EXPECT_TRUE(LintContent("src/core/foo.h", header).empty());
}

TEST(StaticMutableHeaderRuleTest, SourceFilesAreExempt) {
  // File-local statics in a .cc are the sanctioned pattern.
  EXPECT_TRUE(
      LintContent("src/core/foo.cc", "static int counter = 0;\n").empty());
}

// --- rule catalog ----------------------------------------------------------

TEST(RuleCatalogTest, CatalogIsSortedAndComplete) {
  const std::vector<RuleInfo>& catalog = RuleCatalog();
  ASSERT_FALSE(catalog.empty());
  for (size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(std::string(catalog[i - 1].id), std::string(catalog[i].id));
  }
  for (const char* id :
       {"banned-call", "duplicate-include", "include-cycle", "include-guard",
        "hot-alloc",
        "layering", "lock-discipline", "nodiscard-status", "nondeterminism",
        "raw-clock", "raw-signal", "self-include", "static-mutable-header",
        "using-namespace-header"}) {
    EXPECT_TRUE(IsKnownRule(id)) << id;
  }
  EXPECT_FALSE(IsKnownRule("no-such-rule"));
  EXPECT_FALSE(IsKnownRule(""));
}

// --- formatting -----------------------------------------------------------

TEST(FormatFindingTest, RendersFileLineRuleMessage) {
  const Finding finding{"src/core/foo.cc", 12, "banned-call", "no printf"};
  EXPECT_EQ(FormatFinding(finding),
            "src/core/foo.cc:12: [banned-call] no printf");
  const Finding whole_file{"src/core/foo.h", 0, "include-guard", "missing"};
  EXPECT_EQ(FormatFinding(whole_file),
            "src/core/foo.h: [include-guard] missing");
}

TEST(FormatFindingTest, GithubFormatEscapesWorkflowCommandCharacters) {
  const Finding finding{"src/core/foo.cc", 12, "banned-call",
                        "bad: line1\nline2, 100%"};
  // Only %, CR, and LF need escaping in the message part; colons and commas
  // are only special inside the property list before the `::`.
  EXPECT_EQ(FormatFindingGithub(finding),
            "::error file=src/core/foo.cc,line=12,title=cad_lint "
            "banned-call::bad: line1%0Aline2, 100%25");
}

TEST(WriteFindingsJsonTest, SnapshotMatches) {
  std::vector<Finding> findings = {
      {"src/core/foo.cc", 12, "banned-call", "raw \"assert\" call"},
      {"src/core/foo.h", 0, "include-guard", "missing"},
  };
  std::ostringstream out;
  WriteFindingsJson(findings, &out);
  EXPECT_EQ(out.str(),
            "{\"findings\":[{\"file\":\"src/core/foo.cc\",\"line\":12,"
            "\"rule\":\"banned-call\",\"message\":\"raw \\\"assert\\\" "
            "call\"},{\"file\":\"src/core/foo.h\",\"line\":0,"
            "\"rule\":\"include-guard\",\"message\":\"missing\"}]}\n");
}

TEST(WriteFindingsJsonTest, EmptyFindingsStillWellFormed) {
  std::ostringstream out;
  WriteFindingsJson({}, &out);
  EXPECT_EQ(out.str(), "{\"findings\":[]}\n");
}

TEST(SortFindingsTest, OrdersByFileLineRule) {
  std::vector<Finding> findings = {
      {"b.cc", 1, "x", "m"},
      {"a.cc", 9, "x", "m"},
      {"a.cc", 2, "z", "m"},
      {"a.cc", 2, "y", "m"},
  };
  SortFindings(&findings);
  EXPECT_EQ(findings[0], (Finding{"a.cc", 2, "y", "m"}));
  EXPECT_EQ(findings[1], (Finding{"a.cc", 2, "z", "m"}));
  EXPECT_EQ(findings[2], (Finding{"a.cc", 9, "x", "m"}));
  EXPECT_EQ(findings[3], (Finding{"b.cc", 1, "x", "m"}));
}

}  // namespace
}  // namespace lint
}  // namespace cad
