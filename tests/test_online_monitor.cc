#include "core/online_monitor.h"

#include <gtest/gtest.h>

#include "datagen/toy_example.h"

namespace cad {
namespace {

WeightedGraph TwoTeams(double bridge_weight) {
  WeightedGraph g(8);
  for (NodeId base : {NodeId{0}, NodeId{4}}) {
    for (NodeId a = 0; a < 4; ++a) {
      for (NodeId b = a + 1; b < 4; ++b) {
        CAD_CHECK_OK(g.SetEdge(base + a, base + b, 3.0));
      }
    }
  }
  CAD_CHECK_OK(g.SetEdge(3, 4, 0.3));
  if (bridge_weight > 0.0) CAD_CHECK_OK(g.SetEdge(0, 7, bridge_weight));
  return g;
}

TEST(OnlineMonitorTest, FirstSnapshotYieldsNoReport) {
  OnlineCadMonitor monitor;
  auto report = monitor.Observe(TwoTeams(0.0));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->has_value());
  EXPECT_EQ(monitor.num_snapshots(), 1u);
  EXPECT_EQ(monitor.num_transitions(), 0u);
}

TEST(OnlineMonitorTest, WarmupSuppressesReports) {
  OnlineMonitorOptions options;
  options.warmup_transitions = 2;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  auto first = monitor.Observe(TwoTeams(0.0));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->has_value());  // transition 0: warmup
  auto second = monitor.Observe(TwoTeams(0.0));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->has_value());  // transition 1: warmup
  auto third = monitor.Observe(TwoTeams(0.0));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->has_value());  // transition 2: live
}

TEST(OnlineMonitorTest, DetectsPlantedBridgeAfterCalmHistory) {
  OnlineMonitorOptions options;
  options.nodes_per_transition = 1.0;
  options.warmup_transitions = 2;
  OnlineCadMonitor monitor(options);
  // Calm history: identical snapshots.
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  }
  // The bridge appears.
  auto report = monitor.Observe(TwoTeams(2.0));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->has_value());
  ASSERT_FALSE((*report)->edges.empty());
  EXPECT_EQ((*report)->edges[0].pair, NodePair::Make(0, 7));
  EXPECT_EQ((*report)->nodes, (std::vector<NodeId>{0, 7}));
  EXPECT_EQ((*report)->transition, 4u);
}

TEST(OnlineMonitorTest, CalmTransitionsReportNothing) {
  OnlineMonitorOptions options;
  options.nodes_per_transition = 1.0;
  options.warmup_transitions = 1;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(monitor.Observe(TwoTeams(2.0)).ok());  // warmup (event absorbed)
  // Subsequent identical snapshots: zero-score transitions, no anomalies.
  for (int t = 0; t < 3; ++t) {
    auto report = monitor.Observe(TwoTeams(2.0));
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->has_value());
    EXPECT_TRUE((*report)->edges.empty());
    EXPECT_TRUE((*report)->nodes.empty());
  }
}

TEST(OnlineMonitorTest, RejectsNodeCountChange) {
  OnlineCadMonitor monitor;
  ASSERT_TRUE(monitor.Observe(WeightedGraph(5)).ok());
  EXPECT_FALSE(monitor.Observe(WeightedGraph(6)).ok());
}

TEST(OnlineMonitorTest, HistoryMatchesBatchAnalysis) {
  // Streaming the toy example must produce the same transition scores as
  // the batch detector.
  const ToyExample toy = MakeToyExample();
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  options.warmup_transitions = 0;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(toy.sequence.Snapshot(0)).ok());
  auto report = monitor.Observe(toy.sequence.Snapshot(1));
  ASSERT_TRUE(report.ok());

  CadOptions batch_options;
  batch_options.engine = CommuteEngine::kExact;
  auto batch = CadDetector(batch_options).Analyze(toy.sequence);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(monitor.history().size(), 1u);
  EXPECT_DOUBLE_EQ(monitor.history()[0].total_score, (*batch)[0].total_score);
}

TEST(OnlineMonitorTest, DeltaUpdatesOverTime) {
  OnlineMonitorOptions options;
  options.nodes_per_transition = 2.0;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  EXPECT_EQ(monitor.current_delta(), 0.0);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.5)).ok());
  const double delta_small_event = monitor.current_delta();
  EXPECT_GT(delta_small_event, 0.0);
  // A much larger event enters the history: the calibrated threshold must
  // adapt to the new score scale.
  ASSERT_TRUE(monitor.Observe(TwoTeams(4.0)).ok());
  EXPECT_NE(monitor.current_delta(), delta_small_event);
}

}  // namespace
}  // namespace cad
