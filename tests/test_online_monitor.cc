#include "core/online_monitor.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "datagen/toy_example.h"
#include "obs/obs.h"

namespace cad {
namespace {

WeightedGraph TwoTeams(double bridge_weight) {
  WeightedGraph g(8);
  for (NodeId base : {NodeId{0}, NodeId{4}}) {
    for (NodeId a = 0; a < 4; ++a) {
      for (NodeId b = a + 1; b < 4; ++b) {
        CAD_CHECK_OK(g.SetEdge(base + a, base + b, 3.0));
      }
    }
  }
  CAD_CHECK_OK(g.SetEdge(3, 4, 0.3));
  if (bridge_weight > 0.0) CAD_CHECK_OK(g.SetEdge(0, 7, bridge_weight));
  return g;
}

TEST(OnlineMonitorTest, FirstSnapshotYieldsNoReport) {
  OnlineCadMonitor monitor;
  auto report = monitor.Observe(TwoTeams(0.0));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->has_value());
  EXPECT_EQ(monitor.num_snapshots(), 1u);
  EXPECT_EQ(monitor.num_transitions(), 0u);
}

TEST(OnlineMonitorTest, WarmupSuppressesReports) {
  OnlineMonitorOptions options;
  options.warmup_transitions = 2;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  auto first = monitor.Observe(TwoTeams(0.0));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->has_value());  // transition 0: warmup
  auto second = monitor.Observe(TwoTeams(0.0));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->has_value());  // transition 1: warmup
  auto third = monitor.Observe(TwoTeams(0.0));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->has_value());  // transition 2: live
}

TEST(OnlineMonitorTest, DetectsPlantedBridgeAfterCalmHistory) {
  OnlineMonitorOptions options;
  options.nodes_per_transition = 1.0;
  options.warmup_transitions = 2;
  OnlineCadMonitor monitor(options);
  // Calm history: identical snapshots.
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  }
  // The bridge appears.
  auto report = monitor.Observe(TwoTeams(2.0));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->has_value());
  ASSERT_FALSE((*report)->edges.empty());
  EXPECT_EQ((*report)->edges[0].pair, NodePair::Make(0, 7));
  EXPECT_EQ((*report)->nodes, (std::vector<NodeId>{0, 7}));
  EXPECT_EQ((*report)->transition, 4u);
}

TEST(OnlineMonitorTest, CalmTransitionsReportNothing) {
  OnlineMonitorOptions options;
  options.nodes_per_transition = 1.0;
  options.warmup_transitions = 1;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(monitor.Observe(TwoTeams(2.0)).ok());  // warmup (event absorbed)
  // Subsequent identical snapshots: zero-score transitions, no anomalies.
  for (int t = 0; t < 3; ++t) {
    auto report = monitor.Observe(TwoTeams(2.0));
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->has_value());
    EXPECT_TRUE((*report)->edges.empty());
    EXPECT_TRUE((*report)->nodes.empty());
  }
}

TEST(OnlineMonitorTest, AcceptsGrowthRejectsShrink) {
  // Discovered node sets only grow (DESIGN.md §8): a larger snapshot grows
  // the stream in place, a smaller one is rejected.
  OnlineCadMonitor monitor;
  ASSERT_TRUE(monitor.Observe(WeightedGraph(5)).ok());
  ASSERT_TRUE(monitor.Observe(WeightedGraph(6)).ok());
  EXPECT_EQ(monitor.num_nodes(), 6u);
  EXPECT_FALSE(monitor.Observe(WeightedGraph(5)).ok());
}

WeightedGraph PadGraph(const WeightedGraph& g, size_t n) {
  WeightedGraph padded(n);
  for (const Edge& e : g.Edges()) {
    CAD_CHECK_OK(padded.SetEdge(e.u, e.v, e.weight));
  }
  return padded;
}

// A stream whose node set grows mid-way must report exactly what a stream
// premapped to the final size reports: appended nodes are isolated, and
// isolated nodes leave commute scores bit-identical (DESIGN.md §8).
void ExpectGrowingStreamMatchesPremapped(CommuteEngine engine) {
  OnlineMonitorOptions options;
  options.detector.engine = engine;
  options.detector.approx.embedding_dim = 4;
  options.detector.approx.seed = 11;
  options.nodes_per_transition = 2.0;
  options.warmup_transitions = 1;
  OnlineCadMonitor growing(options);
  OnlineCadMonitor premapped(options);

  // Two 8-node snapshots, then the set grows to 10 (nodes 8, 9 join while
  // node 2 goes isolated).
  WeightedGraph early = TwoTeams(0.0);
  WeightedGraph late(10);
  for (const Edge& e : early.Edges()) {
    if (e.u == 2 || e.v == 2) continue;  // node 2 goes quiet
    CAD_CHECK_OK(late.SetEdge(e.u, e.v, e.weight));
  }
  CAD_CHECK_OK(late.SetEdge(7, 8, 1.5));
  CAD_CHECK_OK(late.SetEdge(8, 9, 1.0));

  const std::vector<WeightedGraph> grown_stream = {early, early, late, late};
  for (size_t t = 0; t < grown_stream.size(); ++t) {
    auto from_growing = growing.Observe(grown_stream[t]);
    auto from_premapped = premapped.Observe(PadGraph(grown_stream[t], 10));
    ASSERT_TRUE(from_growing.ok()) << from_growing.status().ToString();
    ASSERT_TRUE(from_premapped.ok());
    EXPECT_EQ(growing.current_delta(), premapped.current_delta());
    ASSERT_EQ(from_growing->has_value(), from_premapped->has_value());
    if (!from_growing->has_value()) continue;
    const AnomalyReport& a = **from_growing;
    const AnomalyReport& b = **from_premapped;
    EXPECT_EQ(a.transition, b.transition);
    EXPECT_EQ(a.nodes, b.nodes);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (size_t i = 0; i < a.edges.size(); ++i) {
      EXPECT_EQ(a.edges[i].pair, b.edges[i].pair);
      EXPECT_EQ(a.edges[i].score, b.edges[i].score);
      EXPECT_EQ(a.edges[i].commute_delta, b.edges[i].commute_delta);
    }
  }
  EXPECT_EQ(growing.num_nodes(), 10u);
}

TEST(OnlineMonitorTest, GrowingStreamMatchesPremappedExact) {
  ExpectGrowingStreamMatchesPremapped(CommuteEngine::kExact);
}

TEST(OnlineMonitorTest, GrowingStreamMatchesPremappedApprox) {
  ExpectGrowingStreamMatchesPremapped(CommuteEngine::kApprox);
}

TEST(OnlineMonitorTest, HistoryMatchesBatchAnalysis) {
  // Streaming the toy example must produce the same transition scores as
  // the batch detector.
  const ToyExample toy = MakeToyExample();
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  options.warmup_transitions = 0;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(toy.sequence.Snapshot(0)).ok());
  auto report = monitor.Observe(toy.sequence.Snapshot(1));
  ASSERT_TRUE(report.ok());

  CadOptions batch_options;
  batch_options.engine = CommuteEngine::kExact;
  auto batch = CadDetector(batch_options).Analyze(toy.sequence);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(monitor.history().size(), 1u);
  EXPECT_DOUBLE_EQ(monitor.history()[0].total_score, (*batch)[0].total_score);
}

TEST(OnlineMonitorTest, DeltaUpdatesOverTime) {
  OnlineMonitorOptions options;
  options.nodes_per_transition = 2.0;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  EXPECT_EQ(monitor.current_delta(), 0.0);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.5)).ok());
  const double delta_small_event = monitor.current_delta();
  EXPECT_GT(delta_small_event, 0.0);
  // A much larger event enters the history: the calibrated threshold must
  // adapt to the new score scale.
  ASSERT_TRUE(monitor.Observe(TwoTeams(4.0)).ok());
  EXPECT_NE(monitor.current_delta(), delta_small_event);
}

TEST(OnlineMonitorTest, SlidingWindowMatchesUnboundedWhileHistoryFits) {
  // While the stream is no longer than max_history, the window holds the
  // full history, so every report and delta must be identical to the
  // unbounded monitor's (the ISSUE's bit-identity requirement).
  OnlineMonitorOptions unbounded_options;
  unbounded_options.detector.engine = CommuteEngine::kExact;
  unbounded_options.nodes_per_transition = 2.0;
  unbounded_options.warmup_transitions = 1;
  OnlineMonitorOptions windowed_options = unbounded_options;
  windowed_options.max_history = 10;  // stream has 6 transitions

  OnlineCadMonitor unbounded(unbounded_options);
  OnlineCadMonitor windowed(windowed_options);
  for (double w : {0.0, 0.0, 0.5, 0.0, 2.0, 0.0, 1.0}) {
    auto from_unbounded = unbounded.Observe(TwoTeams(w));
    auto from_windowed = windowed.Observe(TwoTeams(w));
    ASSERT_TRUE(from_unbounded.ok());
    ASSERT_TRUE(from_windowed.ok());
    ASSERT_EQ(from_unbounded->has_value(), from_windowed->has_value());
    EXPECT_EQ(unbounded.current_delta(), windowed.current_delta());
    if (!from_unbounded->has_value()) continue;
    const AnomalyReport& a = **from_unbounded;
    const AnomalyReport& b = **from_windowed;
    EXPECT_EQ(a.transition, b.transition);
    EXPECT_EQ(a.nodes, b.nodes);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (size_t i = 0; i < a.edges.size(); ++i) {
      EXPECT_EQ(a.edges[i].pair, b.edges[i].pair);
      EXPECT_EQ(a.edges[i].score, b.edges[i].score);
    }
  }
  EXPECT_EQ(unbounded.history().size(), windowed.history().size());
}

TEST(OnlineMonitorTest, SlidingWindowBoundsHistory) {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  options.max_history = 3;
  OnlineCadMonitor monitor(options);
  for (int t = 0; t < 8; ++t) {
    ASSERT_TRUE(monitor.Observe(TwoTeams(t % 2 == 0 ? 0.0 : 0.5)).ok());
    EXPECT_LE(monitor.history().size(), 3u);
  }
  EXPECT_EQ(monitor.history().size(), 3u);
  // The lifetime transition count is not capped by the window.
  EXPECT_EQ(monitor.num_transitions(), 7u);
}

TEST(OnlineMonitorTest, SlidingWindowKeepsGlobalTransitionIndices) {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  options.nodes_per_transition = 1.0;
  options.warmup_transitions = 2;
  options.max_history = 2;
  OnlineCadMonitor monitor(options);
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  }
  // Transition 4 completes here; its report must say so even though the
  // retained history only holds the last 2 transitions.
  auto report = monitor.Observe(TwoTeams(2.0));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->has_value());
  EXPECT_EQ((*report)->transition, 4u);
  EXPECT_EQ(monitor.history().size(), 2u);
}

// Runs a fixed-seed approx-engine stream with an attached StatsReporter and
// returns the emitted heartbeats with the volatile trailing "timer" object
// stripped from each line.
std::vector<std::string> HeartbeatsForThreads(size_t num_threads) {
  const obs::ScopedMetricsEnable metrics;
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kApprox;
  options.detector.approx.embedding_dim = 4;
  options.detector.approx.seed = 11;
  options.detector.analysis_threads = num_threads;
  options.detector.approx.cg.num_threads = num_threads;
  options.nodes_per_transition = 2.0;
  options.warmup_transitions = 1;
  OnlineCadMonitor monitor(options);
  std::ostringstream out;
  obs::StatsReporter reporter(&out, 4);
  monitor.SetStatsReporter(&reporter);
  for (double w : {0.0, 0.0, 0.5, 0.0, 2.0, 0.0, 1.0, 0.0}) {
    CAD_CHECK_OK(monitor.Observe(TwoTeams(w)).status());
  }
  EXPECT_EQ(reporter.records_emitted(), 2u);
  std::vector<std::string> stripped;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    const size_t cut = line.find(",\"timer\":");
    EXPECT_NE(cut, std::string::npos) << line;
    stripped.push_back(line.substr(0, cut));
  }
  return stripped;
}

TEST(OnlineMonitorTest, HeartbeatsAreDeterministicAcrossThreadCounts) {
  // The acceptance bar for the observability layer: the non-timer fields of
  // every heartbeat are byte-identical across same-seed runs regardless of
  // thread count. Wall-clock data lives only in the stripped "timer" object.
  const std::vector<std::string> one_thread = HeartbeatsForThreads(1);
  const std::vector<std::string> eight_threads = HeartbeatsForThreads(8);
  ASSERT_EQ(one_thread.size(), 2u);
  EXPECT_EQ(one_thread, eight_threads);
  // The monitor's own instrumentation is present in the deterministic part.
  EXPECT_NE(one_thread[0].find("\"monitor.windows\":4"), std::string::npos);
  EXPECT_NE(one_thread[0].find("\"monitor.delta\":"), std::string::npos);
}

TEST(OnlineMonitorTest, WindowLatencyHistogramTracksEveryObserve) {
  const obs::ScopedMetricsEnable metrics;
  OnlineCadMonitor monitor;
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  }
  const obs::MetricsSnapshot snapshot = obs::SnapshotMetrics();
  const obs::HistogramData* latency = nullptr;
  for (const auto& [name, data] : snapshot.timer_histograms) {
    if (name == "monitor.window_latency") latency = &data;
  }
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 5u);
  EXPECT_GT(latency->Quantile(0.5), 0.0);
}

TEST(OnlineMonitorTest, SlidingWindowForgetsOldEvents) {
  // After a burst leaves the window, calibration no longer sees its large
  // scores, so the delta adapts back down to the recent (calm) scale.
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  options.nodes_per_transition = 2.0;
  options.max_history = 2;
  OnlineCadMonitor monitor(options);
  ASSERT_TRUE(monitor.Observe(TwoTeams(0.0)).ok());
  ASSERT_TRUE(monitor.Observe(TwoTeams(4.0)).ok());  // burst enters
  const double delta_during_burst = monitor.current_delta();
  EXPECT_GT(delta_during_burst, 0.0);
  ASSERT_TRUE(monitor.Observe(TwoTeams(4.0)).ok());
  ASSERT_TRUE(monitor.Observe(TwoTeams(4.0)).ok());
  ASSERT_TRUE(monitor.Observe(TwoTeams(4.0)).ok());  // burst transitions aged out
  EXPECT_LT(monitor.current_delta(), delta_during_burst);
}

}  // namespace
}  // namespace cad
