#include "datagen/random_graphs.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(RandomGraphsTest, RespectsNodeCount) {
  RandomGraphOptions options;
  options.num_nodes = 200;
  const WeightedGraph g = MakeRandomSparseGraph(options);
  EXPECT_EQ(g.num_nodes(), 200u);
}

TEST(RandomGraphsTest, ApproximatesTargetDegree) {
  RandomGraphOptions options;
  options.num_nodes = 2000;
  options.average_degree = 4.0;
  const WeightedGraph g = MakeRandomSparseGraph(options);
  const double average_degree =
      2.0 * static_cast<double>(g.num_edges()) / 2000.0;
  EXPECT_NEAR(average_degree, 4.0, 0.5);
}

TEST(RandomGraphsTest, WeightsInRange) {
  RandomGraphOptions options;
  options.num_nodes = 100;
  options.min_weight = 1.5;
  options.max_weight = 1.75;
  const WeightedGraph g = MakeRandomSparseGraph(options);
  for (const Edge& e : g.Edges()) {
    EXPECT_GE(e.weight, 1.5);
    EXPECT_LT(e.weight, 1.75);
  }
}

TEST(RandomGraphsTest, DeterministicGivenSeed) {
  RandomGraphOptions options;
  options.seed = 5;
  EXPECT_TRUE(MakeRandomSparseGraph(options) == MakeRandomSparseGraph(options));
  options.seed = 6;
  EXPECT_FALSE(MakeRandomSparseGraph(RandomGraphOptions()) ==
               MakeRandomSparseGraph(options));
}

TEST(PerturbGraphTest, ZeroPerturbationKeepsEdgeSet) {
  RandomGraphOptions options;
  options.num_nodes = 100;
  const WeightedGraph g = MakeRandomSparseGraph(options);
  Rng rng(1);
  const WeightedGraph p = PerturbGraph(g, 0.0, 0.0, &rng);
  EXPECT_TRUE(p == g);
}

TEST(PerturbGraphTest, JitterKeepsSupportChangesWeights) {
  RandomGraphOptions options;
  options.num_nodes = 100;
  const WeightedGraph g = MakeRandomSparseGraph(options);
  Rng rng(2);
  const WeightedGraph p = PerturbGraph(g, 0.2, 0.0, &rng);
  EXPECT_EQ(p.num_edges(), g.num_edges());
  size_t changed = 0;
  for (const Edge& e : g.Edges()) {
    EXPECT_TRUE(p.HasEdge(e.u, e.v));
    if (p.EdgeWeight(e.u, e.v) != e.weight) ++changed;
  }
  EXPECT_GT(changed, g.num_edges() / 2);
}

TEST(PerturbGraphTest, RewiringChangesSupport) {
  RandomGraphOptions options;
  options.num_nodes = 500;
  options.average_degree = 6.0;
  const WeightedGraph g = MakeRandomSparseGraph(options);
  Rng rng(3);
  const WeightedGraph p = PerturbGraph(g, 0.0, 0.3, &rng);
  size_t removed = 0;
  for (const Edge& e : g.Edges()) {
    if (!p.HasEdge(e.u, e.v)) ++removed;
  }
  EXPECT_GT(removed, g.num_edges() / 10);
  // Edge count roughly preserved (removed edges are replaced).
  EXPECT_NEAR(static_cast<double>(p.num_edges()),
              static_cast<double>(g.num_edges()),
              0.1 * static_cast<double>(g.num_edges()));
}

TEST(MakeRandomTransitionTest, TwoSnapshots) {
  RandomGraphOptions options;
  options.num_nodes = 50;
  const TemporalGraphSequence seq = MakeRandomTransition(options, 0.1, 0.05);
  EXPECT_EQ(seq.num_snapshots(), 2u);
  EXPECT_EQ(seq.num_transitions(), 1u);
  EXPECT_FALSE(seq.Snapshot(0) == seq.Snapshot(1));
}

}  // namespace
}  // namespace cad
