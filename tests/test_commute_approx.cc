#include "commute/approx_commute.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "commute/exact_commute.h"
#include "commute/solver_cache.h"
#include "datagen/random_graphs.h"

namespace cad {
namespace {

TEST(ApproxCommuteTest, RejectsZeroDimension) {
  WeightedGraph g(2);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ApproxCommuteOptions options;
  options.embedding_dim = 0;
  EXPECT_FALSE(ApproxCommuteEmbedding::Build(g, options).ok());
}

TEST(ApproxCommuteTest, SelfDistanceZero) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 1.0).ok());
  auto oracle = ApproxCommuteEmbedding::Build(g);
  ASSERT_TRUE(oracle.ok());
  for (NodeId i = 0; i < 3; ++i) EXPECT_EQ(oracle->CommuteTime(i, i), 0.0);
}

TEST(ApproxCommuteTest, EmbeddingDimensionsMatch) {
  WeightedGraph g(5);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ApproxCommuteOptions options;
  options.embedding_dim = 13;
  auto oracle = ApproxCommuteEmbedding::Build(g, options);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle->embedding_dim(), 13u);
  EXPECT_EQ(oracle->num_nodes(), 5u);
  EXPECT_EQ(oracle->embedding().rows(), 13u);
  EXPECT_EQ(oracle->embedding().cols(), 5u);
}

TEST(ApproxCommuteTest, ApproximatesExactOnSmallGraph) {
  // With a large embedding dimension, every pairwise distance should be
  // within ~25% of the exact value (JL concentration).
  WeightedGraph g(10);
  for (NodeId i = 0; i + 1 < 10; ++i) {
    ASSERT_TRUE(g.SetEdge(i, i + 1, 1.0 + 0.3 * i).ok());
  }
  ASSERT_TRUE(g.SetEdge(0, 9, 0.5).ok());
  ASSERT_TRUE(g.SetEdge(2, 7, 1.0).ok());

  auto exact = ExactCommuteTime::Build(g);
  ASSERT_TRUE(exact.ok());
  ApproxCommuteOptions options;
  options.embedding_dim = 600;
  options.seed = 5;
  auto approx = ApproxCommuteEmbedding::Build(g, options);
  ASSERT_TRUE(approx.ok());

  for (NodeId i = 0; i < 10; ++i) {
    for (NodeId j = i + 1; j < 10; ++j) {
      const double e = exact->CommuteTime(i, j);
      const double a = approx->CommuteTime(i, j);
      EXPECT_NEAR(a, e, 0.25 * e) << "pair " << i << "," << j;
    }
  }
}

TEST(ApproxCommuteTest, AccuracyImprovesWithDimension) {
  RandomGraphOptions opts;
  opts.num_nodes = 40;
  opts.average_degree = 6.0;
  opts.seed = 12;
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  auto exact = ExactCommuteTime::Build(g);
  ASSERT_TRUE(exact.ok());

  const auto mean_relative_error = [&](size_t k) {
    ApproxCommuteOptions options;
    options.embedding_dim = k;
    options.seed = 3;
    auto approx = ApproxCommuteEmbedding::Build(g, options);
    CAD_CHECK(approx.ok());
    double total = 0.0;
    size_t count = 0;
    for (NodeId i = 0; i < 40; ++i) {
      for (NodeId j = i + 1; j < 40; ++j) {
        const double e = exact->CommuteTime(i, j);
        if (e <= 0.0 || e >= g.Volume() * 40) continue;  // skip sentinels
        total += std::fabs(approx->CommuteTime(i, j) - e) / e;
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };

  const double err_small = mean_relative_error(4);
  const double err_large = mean_relative_error(400);
  EXPECT_LT(err_large, err_small);
  EXPECT_LT(err_large, 0.10);
}

TEST(ApproxCommuteTest, CrossComponentPaperModeMatchesExact) {
  // Default policy: the embedding estimates Eq. 3 on the global L+, which
  // across components is V_G (l+_uu + l+_vv) = 2 for two disjoint unit
  // edges (see the exact-engine test).
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 1.0).ok());
  ApproxCommuteOptions options;
  options.embedding_dim = 2000;
  auto oracle = ApproxCommuteEmbedding::Build(g, options);
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(oracle->CommuteTime(0, 2), 2.0, 0.4);
  EXPECT_NEAR(oracle->CommuteTime(0, 1), 4.0, 0.6);
}

TEST(ApproxCommuteTest, CrossComponentStrictModeUsesSentinel) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 1.0).ok());
  ApproxCommuteOptions options;
  options.commute.use_cross_component_sentinel = true;
  auto oracle = ApproxCommuteEmbedding::Build(g, options);
  ASSERT_TRUE(oracle.ok());
  EXPECT_DOUBLE_EQ(oracle->CommuteTime(0, 2), g.Volume() * 4.0);
  EXPECT_GT(oracle->CommuteTime(0, 3), oracle->CommuteTime(0, 1));
}

TEST(ApproxCommuteTest, DeterministicGivenSeed) {
  WeightedGraph g(6);
  for (NodeId i = 0; i + 1 < 6; ++i) ASSERT_TRUE(g.SetEdge(i, i + 1, 1.0).ok());
  ApproxCommuteOptions options;
  options.seed = 42;
  auto a = ApproxCommuteEmbedding::Build(g, options);
  auto b = ApproxCommuteEmbedding::Build(g, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->embedding().MaxAbsDifference(b->embedding()), 0.0);
}

TEST(ApproxCommuteTest, SymmetricDistances) {
  RandomGraphOptions opts;
  opts.num_nodes = 30;
  opts.average_degree = 4.0;
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  auto oracle = ApproxCommuteEmbedding::Build(g);
  ASSERT_TRUE(oracle.ok());
  for (NodeId i = 0; i < 30; i += 2) {
    for (NodeId j = 1; j < 30; j += 3) {
      EXPECT_DOUBLE_EQ(oracle->CommuteTime(i, j), oracle->CommuteTime(j, i));
    }
  }
}

TEST(ApproxCommuteTest, TracksCgIterations) {
  WeightedGraph g(10);
  for (NodeId i = 0; i + 1 < 10; ++i) ASSERT_TRUE(g.SetEdge(i, i + 1, 1.0).ok());
  auto oracle = ApproxCommuteEmbedding::Build(g);
  ASSERT_TRUE(oracle.ok());
  EXPECT_GT(oracle->total_cg_iterations(), 0u);
}

/// Parameterized: the relative ordering of distances is already stable at
/// moderate k across seeds — near vs far node pairs on a dumbbell graph.
class ApproxOrderingSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproxOrderingSweep, NearPairsCloserThanFarPairs) {
  // Dumbbell: two unit-weight cliques joined by one weak edge.
  const size_t half = 6;
  WeightedGraph g(2 * half);
  for (NodeId i = 0; i < half; ++i) {
    for (NodeId j = i + 1; j < half; ++j) {
      ASSERT_TRUE(g.SetEdge(i, j, 1.0).ok());
      ASSERT_TRUE(g.SetEdge(half + i, half + j, 1.0).ok());
    }
  }
  ASSERT_TRUE(g.SetEdge(0, half, 0.1).ok());

  ApproxCommuteOptions options;
  options.embedding_dim = 50;
  options.seed = GetParam();
  auto oracle = ApproxCommuteEmbedding::Build(g, options);
  ASSERT_TRUE(oracle.ok());
  // Any same-clique pair must be closer than any cross-clique pair.
  const double same = oracle->CommuteTime(1, 2);
  const double cross = oracle->CommuteTime(1, half + 1);
  EXPECT_LT(same, cross);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxOrderingSweep,
                         ::testing::Values(1, 7, 19, 23, 101));

WeightedGraph WarmStartFixtureGraph() {
  RandomGraphOptions opts;
  opts.num_nodes = 60;
  opts.average_degree = 5.0;
  opts.seed = 71;
  return MakeRandomSparseGraph(opts);
}

ApproxCommuteOptions WarmStartOptions() {
  ApproxCommuteOptions options;
  options.embedding_dim = 24;
  options.seed = 17;
  options.warm_start = true;
  return options;
}

TEST(ApproxWarmStartTest, SameGraphSecondBuildNeedsAlmostNoIterations) {
  // Rebuilding the identical snapshot warm: the previous embedding already
  // solves every system to tolerance, so CG converges (near) immediately.
  const WeightedGraph g = WarmStartFixtureGraph();
  const ApproxCommuteOptions options = WarmStartOptions();
  CommuteSolverCache cache(options.refactor_threshold);
  auto cold = ApproxCommuteEmbedding::Build(g, options, &cache);
  ASSERT_TRUE(cold.ok());
  auto warm = ApproxCommuteEmbedding::Build(g, options, &cache);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(cold->total_cg_iterations(), 0u);
  // Each system starts at its own converged solution; at most a rounding
  // residual's worth of polish per system remains.
  EXPECT_LE(warm->total_cg_iterations(), options.embedding_dim);
  EXPECT_LT(warm->embedding().MaxAbsDifference(cold->embedding()), 1e-8);
}

TEST(ApproxWarmStartTest, PerturbedGraphWarmBuildSavesIterations) {
  // A lightly perturbed snapshot: the previous embedding is a strong guess,
  // so the warm build must need strictly fewer CG iterations than cold.
  const WeightedGraph before = WarmStartFixtureGraph();
  WeightedGraph after = before;
  ASSERT_TRUE(after.SetEdge(0, 1, 2.5).ok());
  ASSERT_TRUE(after.SetEdge(10, 30, 0.7).ok());
  const ApproxCommuteOptions options = WarmStartOptions();

  CommuteSolverCache cache(options.refactor_threshold);
  ASSERT_TRUE(ApproxCommuteEmbedding::Build(before, options, &cache).ok());
  auto warm = ApproxCommuteEmbedding::Build(after, options, &cache);
  ASSERT_TRUE(warm.ok());

  auto cold = ApproxCommuteEmbedding::Build(after, options, nullptr);
  ASSERT_TRUE(cold.ok());
  EXPECT_LT(warm->total_cg_iterations(), cold->total_cg_iterations());
  // Same edge-keyed right-hand sides, same solves to the same tolerance: the
  // two embeddings agree to solver precision (amplified at most by the
  // regularized Laplacian's smallest eigenvalue).
  EXPECT_LT(warm->embedding().MaxAbsDifference(cold->embedding()), 1e-2);
}

TEST(ApproxWarmStartTest, WarmEmbeddingStillApproximatesExact) {
  const WeightedGraph before = WarmStartFixtureGraph();
  WeightedGraph after = before;
  ASSERT_TRUE(after.SetEdge(2, 3, 1.9).ok());
  ApproxCommuteOptions options = WarmStartOptions();
  options.embedding_dim = 500;

  CommuteSolverCache cache(options.refactor_threshold);
  ASSERT_TRUE(ApproxCommuteEmbedding::Build(before, options, &cache).ok());
  auto warm = ApproxCommuteEmbedding::Build(after, options, &cache);
  ASSERT_TRUE(warm.ok());
  auto exact = ExactCommuteTime::Build(after);
  ASSERT_TRUE(exact.ok());
  double total = 0.0;
  size_t count = 0;
  for (NodeId i = 0; i < 60; i += 3) {
    for (NodeId j = i + 1; j < 60; j += 4) {
      const double e = exact->CommuteTime(i, j);
      if (e <= 0.0) continue;
      total += std::fabs(warm->CommuteTime(i, j) - e) / e;
      ++count;
    }
  }
  EXPECT_LT(total / static_cast<double>(count), 0.15);
}

TEST(ApproxWarmStartTest, WarmStartOffIsBitIdenticalToLegacyBuild) {
  // The default path must not change: passing a cache with warm_start off
  // (or no cache at all) reproduces the historical stream-order embedding.
  const WeightedGraph g = WarmStartFixtureGraph();
  ApproxCommuteOptions options;
  options.embedding_dim = 24;
  options.seed = 17;
  auto legacy = ApproxCommuteEmbedding::Build(g, options);
  CommuteSolverCache cache;
  auto with_cache = ApproxCommuteEmbedding::Build(g, options, &cache);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(with_cache.ok());
  EXPECT_EQ(legacy->embedding().MaxAbsDifference(with_cache->embedding()),
            0.0);
  EXPECT_EQ(cache.PreviousEmbedding(24, 60), nullptr);  // nothing stored
}

TEST(ApproxWarmStartTest, BlockSolverMatchesSerialUnderWarmStart) {
  const WeightedGraph before = WarmStartFixtureGraph();
  WeightedGraph after = before;
  ASSERT_TRUE(after.SetEdge(5, 6, 3.0).ok());
  ApproxCommuteOptions options = WarmStartOptions();
  options.cg.preconditioner = CgPreconditioner::kIncompleteCholesky;

  const auto build_timeline = [&](bool block) {
    ApproxCommuteOptions o = options;
    o.cg.use_block_solver = block;
    CommuteSolverCache cache(o.refactor_threshold);
    auto first = ApproxCommuteEmbedding::Build(before, o, &cache);
    CAD_CHECK(first.ok());
    return ApproxCommuteEmbedding::Build(after, o, &cache);
  };
  auto serial = build_timeline(false);
  auto block = build_timeline(true);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(serial->total_cg_iterations(), block->total_cg_iterations());
  EXPECT_EQ(serial->embedding().MaxAbsDifference(block->embedding()), 0.0);
}

TEST(ApproxWarmStartTest, EmbeddingDimensionChangeInvalidatesCache) {
  const WeightedGraph g = WarmStartFixtureGraph();
  ApproxCommuteOptions options = WarmStartOptions();
  CommuteSolverCache cache(options.refactor_threshold);
  ASSERT_TRUE(ApproxCommuteEmbedding::Build(g, options, &cache).ok());
  options.embedding_dim = 12;  // previous 24-dim embedding no longer fits
  auto rebuilt = ApproxCommuteEmbedding::Build(g, options, &cache);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_GT(rebuilt->total_cg_iterations(), 0u);
  EXPECT_EQ(rebuilt->embedding_dim(), 12u);
}

}  // namespace
}  // namespace cad
