#include "core/case_classifier.h"

#include <gtest/gtest.h>

#include "commute/exact_commute.h"
#include "core/cad_detector.h"
#include "datagen/toy_example.h"

namespace cad {
namespace {

TEST(CaseClassifierTest, Names) {
  EXPECT_STREQ(AnomalyCaseToString(AnomalyCase::kMagnitudeChange),
               "case-1-magnitude-change");
  EXPECT_STREQ(AnomalyCaseToString(AnomalyCase::kNewBridge),
               "case-2-new-bridge");
  EXPECT_STREQ(AnomalyCaseToString(AnomalyCase::kWeakenedBridge),
               "case-3-weakened-bridge");
  EXPECT_STREQ(AnomalyCaseToString(AnomalyCase::kUnclassified),
               "unclassified");
}

class CaseClassifierToyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    toy_ = MakeToyExample();
    auto oracle = ExactCommuteTime::Build(toy_.sequence.Snapshot(0));
    ASSERT_TRUE(oracle.ok());
    oracle_before_ =
        std::make_unique<ExactCommuteTime>(std::move(oracle).ValueOrDie());

    CadOptions options;
    options.engine = CommuteEngine::kExact;
    auto analyses = CadDetector(options).Analyze(toy_.sequence);
    ASSERT_TRUE(analyses.ok());
    scores_ = (*analyses)[0];
  }

  AnomalyCase ClassifyPair(NodePair pair) {
    for (const ScoredEdge& edge : scores_.edges) {
      if (edge.pair == pair) {
        return ClassifyAnomalousEdge(
            edge, oracle_before_->CommuteTime(pair.u, pair.v),
            toy_.sequence.Snapshot(0), toy_.sequence.Snapshot(1));
      }
    }
    ADD_FAILURE() << "pair not in support";
    return AnomalyCase::kUnclassified;
  }

  ToyExample toy_;
  std::unique_ptr<ExactCommuteTime> oracle_before_;
  TransitionScores scores_;
};

TEST_F(CaseClassifierToyTest, S1NewEdgeIsCase2) {
  EXPECT_EQ(ClassifyPair(NodePair::Make(ToyBlue(1), ToyRed(1))),
            AnomalyCase::kNewBridge);
}

TEST_F(CaseClassifierToyTest, S2WeakenedBridgeIsCase3) {
  EXPECT_EQ(ClassifyPair(NodePair::Make(ToyRed(7), ToyRed(8))),
            AnomalyCase::kWeakenedBridge);
}

TEST_F(CaseClassifierToyTest, S3LargeIncreaseIsCase1) {
  EXPECT_EQ(ClassifyPair(NodePair::Make(ToyBlue(4), ToyBlue(5))),
            AnomalyCase::kMagnitudeChange);
}

TEST_F(CaseClassifierToyTest, BenignChangesUnclassified) {
  // S4 and S5 are small jitters between tightly coupled pairs: neither
  // structural nor high magnitude.
  EXPECT_EQ(ClassifyPair(NodePair::Make(ToyBlue(1), ToyBlue(3))),
            AnomalyCase::kUnclassified);
  EXPECT_EQ(ClassifyPair(NodePair::Make(ToyBlue(2), ToyBlue(7))),
            AnomalyCase::kUnclassified);
}

TEST(CaseClassifierTest, ZeroBaselineCommuteHandled) {
  WeightedGraph before(2);
  CAD_CHECK_OK(before.SetEdge(0, 1, 1.0));
  WeightedGraph after(2);
  CAD_CHECK_OK(after.SetEdge(0, 1, 5.0));
  ScoredEdge edge;
  edge.pair = NodePair::Make(0, 1);
  edge.weight_delta = 4.0;
  edge.commute_delta = 0.0;
  EXPECT_EQ(ClassifyAnomalousEdge(edge, 0.0, before, after),
            AnomalyCase::kMagnitudeChange);
}

}  // namespace
}  // namespace cad
