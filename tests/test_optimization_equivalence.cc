// Validates the paper's §2.4.1 reduction: because the distance satisfies
// d_S = sum_{e in E-S} dE(e), the combinatorial problem
//
//   E_t = argmin |S|  subject to  sum_{e in E-S} dE(e) < delta     (Eq. 1)
//
// is solved exactly by taking scores in decreasing order. These tests check
// the greedy selection against brute-force enumeration of all subsets on
// small random instances, across a sweep of thresholds.

#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/edge_scores.h"

namespace cad {
namespace {

/// Brute force: smallest |S| over all subsets with sum(E - S) < delta, or
/// SIZE_MAX if even S = E fails (cannot happen for delta > 0).
size_t BruteForceMinimalCardinality(const std::vector<double>& scores,
                                    double delta) {
  const size_t m = scores.size();
  size_t best = SIZE_MAX;
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    double remaining = 0.0;
    size_t cardinality = 0;
    for (size_t e = 0; e < m; ++e) {
      if (mask & (uint64_t{1} << e)) {
        ++cardinality;
      } else {
        remaining += scores[e];
      }
    }
    if (remaining < delta) best = std::min(best, cardinality);
  }
  return best;
}

TransitionScores FromScores(const std::vector<double>& scores) {
  TransitionScores transition;
  NodeId next = 0;
  for (double score : scores) {
    transition.edges.push_back(ScoredEdge{NodePair{next, next + 1}, score, 0, 0});
    next += 2;
    transition.total_score += score;
  }
  std::sort(transition.edges.begin(), transition.edges.end(),
            [](const ScoredEdge& a, const ScoredEdge& b) {
              return a.score > b.score;
            });
  return transition;
}

class OptimizationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizationSweep, GreedyMatchesBruteForce) {
  Rng rng(GetParam());
  // Random instance: up to 12 edges with skewed scores (some ties, some
  // zeros — the hard cases for a greedy rule).
  const size_t m = 4 + rng.UniformInt(9);
  std::vector<double> scores;
  for (size_t e = 0; e < m; ++e) {
    const double roll = rng.Uniform();
    if (roll < 0.15) {
      scores.push_back(0.0);
    } else if (roll < 0.35) {
      scores.push_back(1.0);  // deliberate ties
    } else {
      scores.push_back(rng.Uniform(0.1, 10.0));
    }
  }
  const TransitionScores transition = FromScores(scores);

  double total = 0.0;
  for (double s : scores) total += s;
  for (double fraction : {0.05, 0.2, 0.5, 0.8, 0.95, 1.1}) {
    const double delta = fraction * std::max(total, 1e-9);
    const std::vector<size_t> selected =
        SelectAnomalousEdges(transition, delta);
    // (a) The greedy selection satisfies the constraint.
    double remaining = transition.total_score;
    for (size_t index : selected) remaining -= transition.edges[index].score;
    EXPECT_LT(remaining, delta)
        << "constraint violated at delta=" << delta << " seed=" << GetParam();
    // (b) Its cardinality is optimal.
    const size_t optimum = BruteForceMinimalCardinality(scores, delta);
    ASSERT_NE(optimum, SIZE_MAX);
    EXPECT_EQ(selected.size(), optimum)
        << "suboptimal cardinality at delta=" << delta
        << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizationSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(OptimizationEquivalenceTest, AllZeroScoresSelectNothing) {
  const TransitionScores transition = FromScores({0.0, 0.0, 0.0});
  // Any positive delta is satisfied by the empty set.
  EXPECT_TRUE(SelectAnomalousEdges(transition, 0.5).empty());
  EXPECT_EQ(BruteForceMinimalCardinality({0.0, 0.0, 0.0}, 0.5), 0u);
}

TEST(OptimizationEquivalenceTest, DeltaAboveTotalSelectsNothing) {
  const std::vector<double> scores = {3.0, 2.0, 1.0};
  const TransitionScores transition = FromScores(scores);
  EXPECT_TRUE(SelectAnomalousEdges(transition, 6.5).empty());
  EXPECT_EQ(BruteForceMinimalCardinality(scores, 6.5), 0u);
}

}  // namespace
}  // namespace cad
