#include "common/strings.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTokensTest, SplitsOnWhitespaceRuns) {
  EXPECT_EQ(SplitTokens("a b c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitTokens("a  b\tc"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitTokens("0\t1\t2.5"),
            (std::vector<std::string>{"0", "1", "2.5"}));
}

TEST(SplitTokensTest, IgnoresLeadingAndTrailingWhitespace) {
  EXPECT_EQ(SplitTokens("  a b  "), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitTokens("\t x \t"), (std::vector<std::string>{"x"}));
}

TEST(SplitTokensTest, EmptyAndBlankYieldNoTokens) {
  EXPECT_TRUE(SplitTokens("").empty());
  EXPECT_TRUE(SplitTokens("   \t  ").empty());
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(JoinTest, SingleAndEmpty) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\nhi\r "), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-flag", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("  8  "), 8);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(ParseInt64Test, RejectsOverflow) {
  EXPECT_EQ(ParseInt64("99999999999999999999999").status().code(),
            StatusCode::kOutOfRange);
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e-3"), -2e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 7 "), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("pi").ok());
  EXPECT_FALSE(ParseDouble("1.5z").ok());
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(FormatDouble(2.0, 6), "2");
}

}  // namespace
}  // namespace cad
