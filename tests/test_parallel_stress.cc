// Concurrency stress tests aimed at the ThreadSanitizer build
// (-DCAD_SANITIZE=thread): they hammer ParallelFor with contended atomic
// counters and drive the CgOptions::num_threads > 1 solve path, verifying
// bit-identical results across thread counts. In uninstrumented builds they
// double as determinism regression tests.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "graph/graph.h"
#include "linalg/conjugate_gradient.h"
#include "linalg/sparse_matrix.h"
#include "obs/obs.h"

namespace cad {
namespace {

TEST(ParallelForStressTest, ContendedCounterSumsExactly) {
  constexpr size_t kCount = 100000;
  std::atomic<uint64_t> sum{0};
  ParallelFor(kCount, 8, [&sum](size_t i) {
    sum.fetch_add(i + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), uint64_t{kCount} * (kCount + 1) / 2);
}

TEST(ParallelForStressTest, DisjointIndexWritesCoverEveryElement) {
  constexpr size_t kCount = 50000;
  std::vector<double> out(kCount, 0.0);
  ParallelFor(kCount, 8, [&out](size_t i) {
    out[i] = static_cast<double>(i) * 0.5 + 1.0;
  });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(out[i], static_cast<double>(i) * 0.5 + 1.0) << "index " << i;
  }
}

TEST(ParallelForStressTest, RepeatedLaunchesWithSharedCounter) {
  // Many short-lived pools stress thread creation/join and the work-stealing
  // counter far more than one long loop does.
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    ParallelFor(64, 4, [&total](size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), uint64_t{200} * (63 * 64 / 2));
}

/// A deterministic, connected, irregular test graph: ring plus skip chords
/// with varied weights.
WeightedGraph MakeStressGraph(size_t n) {
  WeightedGraph graph(n);
  for (size_t i = 0; i < n; ++i) {
    const NodeId u = static_cast<NodeId>(i);
    const NodeId v = static_cast<NodeId>((i + 1) % n);
    CAD_CHECK_OK(graph.SetEdge(u, v, 1.0 + 0.25 * static_cast<double>(i % 7)));
  }
  for (size_t i = 0; i < n; i += 3) {
    const NodeId u = static_cast<NodeId>(i);
    const NodeId v = static_cast<NodeId>((i * i + 5) % n);
    if (u == v || graph.HasEdge(u, v)) continue;
    CAD_CHECK_OK(graph.SetEdge(u, v, 0.5 + 0.1 * static_cast<double>(i % 5)));
  }
  return graph;
}

std::vector<std::vector<double>> MakeRightHandSides(size_t n, size_t k) {
  std::vector<std::vector<double>> rhs(k, std::vector<double>(n, 0.0));
  for (size_t j = 0; j < k; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) {
      rhs[j][i] = static_cast<double>((i * (j + 3) + 11 * j) % 17) - 8.0;
      mean += rhs[j][i];
    }
    // Keep the rhs near range(L) so regularized solves stay well-behaved.
    mean /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) rhs[j][i] -= mean;
  }
  return rhs;
}

void ExpectBitIdentical(const std::vector<std::vector<double>>& a,
                        const std::vector<std::vector<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t j = 0; j < a.size(); ++j) {
    ASSERT_EQ(a[j].size(), b[j].size());
    for (size_t i = 0; i < a[j].size(); ++i) {
      ASSERT_EQ(std::bit_cast<uint64_t>(a[j][i]),
                std::bit_cast<uint64_t>(b[j][i]))
          << "system " << j << ", component " << i << ": " << a[j][i]
          << " vs " << b[j][i];
    }
  }
}

class SolveManyThreadStressTest
    : public ::testing::TestWithParam<CgPreconditioner> {};

TEST_P(SolveManyThreadStressTest, BitIdenticalAcrossThreadCounts) {
  constexpr size_t kNodes = 120;
  constexpr size_t kSystems = 12;
  const WeightedGraph graph = MakeStressGraph(kNodes);
  const CsrMatrix laplacian = graph.ToLaplacianCsr(1e-3);
  const std::vector<std::vector<double>> rhs =
      MakeRightHandSides(kNodes, kSystems);

  CgOptions options;
  options.preconditioner = GetParam();
  options.tolerance = 1e-10;

  std::vector<std::vector<std::vector<double>>> solutions;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    options.num_threads = threads;
    const ConjugateGradientSolver solver(options);
    std::vector<std::vector<double>> x;
    Result<std::vector<CgSummary>> summaries =
        solver.SolveMany(laplacian, rhs, &x);
    ASSERT_TRUE(summaries.ok()) << summaries.status();
    for (const CgSummary& summary : *summaries) {
      EXPECT_TRUE(summary.converged)
          << "relative residual " << summary.relative_residual;
    }
    solutions.push_back(std::move(x));
  }
  // The k systems are independent and each solve's arithmetic is sequential,
  // so the thread count must not perturb a single bit of any solution.
  ExpectBitIdentical(solutions[0], solutions[1]);
  ExpectBitIdentical(solutions[0], solutions[2]);
}

INSTANTIATE_TEST_SUITE_P(AllPreconditioners, SolveManyThreadStressTest,
                         ::testing::Values(
                             CgPreconditioner::kNone, CgPreconditioner::kJacobi,
                             CgPreconditioner::kIncompleteCholesky),
                         [](const auto& info) {
                           return std::string(
                               CgPreconditionerToString(info.param));
                         });

TEST_P(SolveManyThreadStressTest, BitIdenticalWithObservabilityOn) {
  // Same contract as above, but with metrics and tracing recording: the
  // instrumentation only observes, so it must not perturb a single solution
  // bit nor change any deterministic (non-timer) metric across thread
  // counts. Under TSan this also races the metric atomics and the
  // per-thread trace buffers against the solver threads.
  constexpr size_t kNodes = 96;
  constexpr size_t kSystems = 10;
  const WeightedGraph graph = MakeStressGraph(kNodes);
  const CsrMatrix laplacian = graph.ToLaplacianCsr(1e-3);
  const std::vector<std::vector<double>> rhs =
      MakeRightHandSides(kNodes, kSystems);

  CgOptions options;
  options.preconditioner = GetParam();
  options.tolerance = 1e-10;

  std::vector<std::vector<std::vector<double>>> solutions;
  std::vector<uint64_t> iteration_counters;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    const obs::ScopedMetricsEnable metrics_enable;
    const obs::ScopedTracingEnable tracing_enable;
    options.num_threads = threads;
    const ConjugateGradientSolver solver(options);
    std::vector<std::vector<double>> x;
    Result<std::vector<CgSummary>> summaries =
        solver.SolveMany(laplacian, rhs, &x);
    ASSERT_TRUE(summaries.ok()) << summaries.status();
    solutions.push_back(std::move(x));

#ifndef CAD_OBS_DISABLED
    uint64_t iterations = 0;
    bool found = false;
    for (const auto& [name, value] : obs::SnapshotMetrics().counters) {
      if (name == "pcg.iterations") {
        iterations = value;
        found = true;
      }
    }
    ASSERT_TRUE(found);
    iteration_counters.push_back(iterations);
#else
    iteration_counters.push_back(0);  // hard-off build: macros compile away
#endif
  }
  ExpectBitIdentical(solutions[0], solutions[1]);
  ExpectBitIdentical(solutions[0], solutions[2]);
  // Counter sums commute, so the iteration total is thread-count-invariant.
  EXPECT_EQ(iteration_counters[0], iteration_counters[1]);
  EXPECT_EQ(iteration_counters[0], iteration_counters[2]);
}

TEST_P(SolveManyThreadStressTest, BlockSolverBitIdenticalAcrossThreadCounts) {
  // The lockstep block path chunks columns across threads; no thread count
  // (and no chunking) may perturb a bit of any solution or any iteration
  // count relative to the serial per-RHS path.
  constexpr size_t kNodes = 120;
  constexpr size_t kSystems = 12;
  const WeightedGraph graph = MakeStressGraph(kNodes);
  const CsrMatrix laplacian = graph.ToLaplacianCsr(1e-3);
  const std::vector<std::vector<double>> rhs =
      MakeRightHandSides(kNodes, kSystems);

  CgOptions options;
  options.preconditioner = GetParam();
  options.tolerance = 1e-10;

  // Reference: the serial per-RHS path.
  std::vector<std::vector<double>> reference;
  std::vector<CgSummary> reference_summaries;
  {
    const ConjugateGradientSolver solver(options);
    Result<std::vector<CgSummary>> summaries =
        solver.SolveMany(laplacian, rhs, &reference);
    ASSERT_TRUE(summaries.ok()) << summaries.status();
    reference_summaries = *summaries;
  }

  options.use_block_solver = true;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    options.num_threads = threads;
    const ConjugateGradientSolver solver(options);
    std::vector<std::vector<double>> x;
    Result<std::vector<CgSummary>> summaries =
        solver.SolveMany(laplacian, rhs, &x);
    ASSERT_TRUE(summaries.ok()) << summaries.status();
    ExpectBitIdentical(reference, x);
    ASSERT_EQ(summaries->size(), reference_summaries.size());
    for (size_t j = 0; j < summaries->size(); ++j) {
      EXPECT_EQ((*summaries)[j].iterations, reference_summaries[j].iterations)
          << "system " << j << " at " << threads << " threads";
      EXPECT_EQ(std::bit_cast<uint64_t>((*summaries)[j].relative_residual),
                std::bit_cast<uint64_t>(reference_summaries[j].relative_residual));
    }
  }
}

TEST(SolveManyThreadStressTest, RepeatedContendedSolves) {
  // Repeatedly launch the threaded solve path so TSan sees many
  // pool lifetimes against the shared read-only preconditioner closure.
  constexpr size_t kNodes = 48;
  const WeightedGraph graph = MakeStressGraph(kNodes);
  const CsrMatrix laplacian = graph.ToLaplacianCsr(1e-3);
  const std::vector<std::vector<double>> rhs = MakeRightHandSides(kNodes, 8);

  CgOptions options;
  options.num_threads = 8;
  const ConjugateGradientSolver solver(options);
  std::vector<std::vector<double>> first;
  ASSERT_TRUE(solver.SolveMany(laplacian, rhs, &first).ok());
  for (int round = 0; round < 10; ++round) {
    std::vector<std::vector<double>> x;
    Result<std::vector<CgSummary>> summaries =
        solver.SolveMany(laplacian, rhs, &x);
    ASSERT_TRUE(summaries.ok()) << summaries.status();
    ExpectBitIdentical(first, x);
  }
}

}  // namespace
}  // namespace cad
