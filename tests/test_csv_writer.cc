#include "common/csv_writer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(EscapeCsvFieldTest, PlainFieldUnchanged) {
  EXPECT_EQ(EscapeCsvField("hello"), "hello");
  EXPECT_EQ(EscapeCsvField("3.14"), "3.14");
  EXPECT_EQ(EscapeCsvField(""), "");
}

TEST(EscapeCsvFieldTest, QuotesFieldsWithSpecials) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(EscapeCsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, WritesHeaderImmediately) {
  std::ostringstream out;
  CsvWriter writer(&out, {"a", "b"});
  EXPECT_EQ(out.str(), "a,b\n");
  EXPECT_EQ(writer.rows_written(), 0u);
}

TEST(CsvWriterTest, WritesRows) {
  std::ostringstream out;
  CsvWriter writer(&out, {"x", "y"});
  writer.WriteRow({"1", "2"});
  writer.WriteRow({"hello, world", "ok"});
  EXPECT_EQ(out.str(), "x,y\n1,2\n\"hello, world\",ok\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(CsvWriterTest, NumericRows) {
  std::ostringstream out;
  CsvWriter writer(&out, {"value", "half"});
  writer.WriteNumericRow({1.0, 0.5});
  EXPECT_EQ(out.str(), "value,half\n1,0.5\n");
}

TEST(CsvWriterTest, NumericPrecision) {
  std::ostringstream out;
  CsvWriter writer(&out, {"pi"});
  writer.WriteNumericRow({3.14159265358979}, 3);
  EXPECT_EQ(out.str(), "pi\n3.14\n");
}

}  // namespace
}  // namespace cad
