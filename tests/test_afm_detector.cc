#include "core/afm_detector.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/toy_example.h"

namespace cad {
namespace {

TEST(AfmDetectorTest, NodeFeaturesOnStar) {
  // Star: center 0 with 3 leaves at weights 1, 2, 3.
  WeightedGraph g(4);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(0, 2, 2.0));
  CAD_CHECK_OK(g.SetEdge(0, 3, 3.0));
  const DenseMatrix features = AfmDetector::NodeFeatures(g);
  ASSERT_EQ(features.rows(), 4u);
  ASSERT_EQ(features.cols(), AfmDetector::kNumFeatures);
  // Center: weighted degree 6, 3 neighbors, mean 2, max 3, egonet edges 0.
  EXPECT_DOUBLE_EQ(features(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(features(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(features(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(features(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(features(0, 4), 0.0);
  // Leaf 3: weighted degree 3, 1 neighbor.
  EXPECT_DOUBLE_EQ(features(3, 0), 3.0);
  EXPECT_DOUBLE_EQ(features(3, 1), 1.0);
}

TEST(AfmDetectorTest, EgonetInternalEdgesCounted) {
  // Triangle + pendant: node 0's egonet {1, 2} contains the edge 1-2.
  WeightedGraph g(4);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(0, 2, 1.0));
  CAD_CHECK_OK(g.SetEdge(1, 2, 1.0));
  CAD_CHECK_OK(g.SetEdge(2, 3, 1.0));
  const DenseMatrix features = AfmDetector::NodeFeatures(g);
  EXPECT_DOUBLE_EQ(features(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(features(3, 4), 0.0);
}

TEST(AfmDetectorTest, IsolatedNodeFeaturesAreZero) {
  WeightedGraph g(3);
  CAD_CHECK_OK(g.SetEdge(0, 1, 2.0));
  const DenseMatrix features = AfmDetector::NodeFeatures(g);
  for (size_t f = 0; f < AfmDetector::kNumFeatures; ++f) {
    EXPECT_DOUBLE_EQ(features(2, f), 0.0);
  }
}

TEST(AfmDetectorTest, RejectsTooFewSnapshots) {
  TemporalGraphSequence seq(3);
  CAD_CHECK_OK(seq.Append(WeightedGraph(3)));
  EXPECT_FALSE(AfmDetector().ScoreTransitions(seq).ok());
}

TEST(AfmDetectorTest, IdenticalSnapshotsScoreZero) {
  WeightedGraph g(5);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(1, 2, 2.0));
  CAD_CHECK_OK(g.SetEdge(3, 4, 1.0));
  TemporalGraphSequence seq(5);
  for (int t = 0; t < 3; ++t) CAD_CHECK_OK(seq.Append(g));
  auto scores = AfmDetector().ScoreTransitions(seq);
  ASSERT_TRUE(scores.ok());
  for (const auto& transition : *scores) {
    for (double s : transition) EXPECT_LT(s, 1e-6);
  }
}

TEST(AfmDetectorTest, ScoresHaveOnePerTransition) {
  const ToyExample toy = MakeToyExample();
  auto scores = AfmDetector().ScoreTransitions(toy.sequence);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 1u);
  EXPECT_EQ((*scores)[0].size(), 17u);
}

TEST(AfmDetectorTest, PaperCriticismLocalFeaturesBlurTheDistinction) {
  // Paper §3.4: AFM's local features "do not necessarily differentiate
  // between significant changes in graph structure and benign changes".
  // Verify the diagnosis on the toy example: the benign pair (b1, b3) is
  // NOT cleanly separated from the anomalous pair (r7, r8) by AFM —
  // their scores are within a small factor — whereas CAD separates them by
  // an order of magnitude (asserted in test_cad_detector.cc).
  const ToyExample toy = MakeToyExample();
  auto scores = AfmDetector().ScoreTransitions(toy.sequence);
  ASSERT_TRUE(scores.ok());
  const std::vector<double>& s = (*scores)[0];
  const double benign = std::max(s[ToyBlue(1)], s[ToyBlue(3)]);
  const double anomalous = std::max(s[ToyRed(7)], s[ToyRed(8)]);
  ASSERT_GT(anomalous, 0.0);
  EXPECT_GT(benign, 0.05 * anomalous)
      << "expected AFM to blur benign vs anomalous locally";
}

TEST(AfmDetectorTest, NameIsAfm) { EXPECT_EQ(AfmDetector().name(), "AFM"); }

TEST(AfmDetectorTest, WindowSizeOneUsesDegenerateDependency) {
  const ToyExample toy = MakeToyExample();
  AfmOptions options;
  options.window_size = 1;
  auto scores = AfmDetector(options).ScoreTransitions(toy.sequence);
  ASSERT_TRUE(scores.ok());
  // Scores finite and defined for all nodes.
  for (double s : (*scores)[0]) {
    EXPECT_GE(s, 0.0);
    EXPECT_TRUE(std::isfinite(s));
  }
}

}  // namespace
}  // namespace cad
