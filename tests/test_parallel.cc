#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "commute/approx_commute.h"
#include "core/cad_detector.h"
#include "datagen/random_graphs.h"
#include "linalg/conjugate_gradient.h"

namespace cad {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t num_threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(hits.size(), num_threads,
                [&hits](size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ZeroAndOneCount) {
  int calls = 0;
  ParallelFor(0, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, InlineWhenSingleThreaded) {
  // With num_threads = 1 the function runs on the calling thread in order.
  std::vector<size_t> order;
  ParallelFor(5, 1, [&order](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> sum{0};
  ParallelFor(3, 16, [&sum](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(HardwareThreadsTest, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1u); }

TEST(ParallelSolveTest, ParallelSolveManyMatchesSerial) {
  RandomGraphOptions opts;
  opts.num_nodes = 300;
  opts.average_degree = 6.0;
  opts.seed = 8;
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  const CsrMatrix l = g.ToLaplacianCsr(1e-8 * g.Volume());

  std::vector<std::vector<double>> rhs(8, std::vector<double>(300, 0.0));
  for (size_t i = 0; i < rhs.size(); ++i) {
    rhs[i][i] = 1.0;
    rhs[i][299 - i] = -1.0;
  }

  CgOptions serial;
  serial.num_threads = 1;
  CgOptions parallel;
  parallel.num_threads = 4;
  std::vector<std::vector<double>> serial_solutions;
  std::vector<std::vector<double>> parallel_solutions;
  auto s1 = ConjugateGradientSolver(serial).SolveMany(l, rhs, &serial_solutions);
  auto s2 =
      ConjugateGradientSolver(parallel).SolveMany(l, rhs, &parallel_solutions);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // CG is deterministic per system; the parallel schedule must not change
  // any solution bit-for-bit.
  for (size_t i = 0; i < rhs.size(); ++i) {
    EXPECT_EQ(serial_solutions[i], parallel_solutions[i]) << "system " << i;
    EXPECT_EQ((*s1)[i].iterations, (*s2)[i].iterations);
  }
}

TEST(ParallelSolveTest, ParallelAnalyzeMatchesSerial) {
  // A 6-snapshot sequence with churn; parallel snapshot analysis must be
  // bit-identical to the serial pass.
  RandomGraphOptions opts;
  opts.num_nodes = 60;
  opts.average_degree = 5.0;
  opts.seed = 21;
  TemporalGraphSequence seq(60);
  WeightedGraph current = MakeRandomSparseGraph(opts);
  Rng rng(31);
  for (int t = 0; t < 6; ++t) {
    CAD_CHECK_OK(seq.Append(current));
    current = PerturbGraph(current, 0.2, 0.05, &rng);
  }

  CadOptions serial;
  serial.engine = CommuteEngine::kExact;
  CadOptions parallel = serial;
  parallel.analysis_threads = 4;
  auto a = CadDetector(serial).Analyze(seq);
  auto b = CadDetector(parallel).Analyze(seq);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t t = 0; t < a->size(); ++t) {
    EXPECT_EQ((*a)[t].total_score, (*b)[t].total_score) << "transition " << t;
    ASSERT_EQ((*a)[t].edges.size(), (*b)[t].edges.size());
    for (size_t e = 0; e < (*a)[t].edges.size(); ++e) {
      EXPECT_EQ((*a)[t].edges[e].pair, (*b)[t].edges[e].pair);
      EXPECT_EQ((*a)[t].edges[e].score, (*b)[t].edges[e].score);
    }
    EXPECT_EQ((*a)[t].node_scores, (*b)[t].node_scores);
  }
}

TEST(ParallelSolveTest, ParallelEmbeddingMatchesSerial) {
  RandomGraphOptions opts;
  opts.num_nodes = 200;
  opts.average_degree = 6.0;
  opts.seed = 9;
  const WeightedGraph g = MakeRandomSparseGraph(opts);

  ApproxCommuteOptions serial;
  serial.embedding_dim = 16;
  serial.seed = 11;
  ApproxCommuteOptions parallel = serial;
  parallel.cg.num_threads = 4;

  auto a = ApproxCommuteEmbedding::Build(g, serial);
  auto b = ApproxCommuteEmbedding::Build(g, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->embedding().MaxAbsDifference(b->embedding()), 0.0);
}

}  // namespace
}  // namespace cad
