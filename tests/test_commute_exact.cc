#include "commute/exact_commute.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/random_graphs.h"
#include "linalg/jacobi_eigen.h"

namespace cad {
namespace {

WeightedGraph UnitPath(size_t n) {
  WeightedGraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) CAD_CHECK_OK(g.SetEdge(i, i + 1, 1.0));
  return g;
}

TEST(ExactCommuteTest, TwoNodesSingleEdge) {
  // For two nodes joined by one edge, the walk crosses and returns: c = 2,
  // independent of the edge weight (V_G = 2w, resistance = 1/w).
  for (double weight : {0.5, 1.0, 4.0}) {
    WeightedGraph g(2);
    ASSERT_TRUE(g.SetEdge(0, 1, weight).ok());
    auto oracle = ExactCommuteTime::Build(g);
    ASSERT_TRUE(oracle.ok());
    EXPECT_NEAR(oracle->CommuteTime(0, 1), 2.0, 1e-9);
  }
}

TEST(ExactCommuteTest, UnitPathKnownValues) {
  // Unit path on n nodes: V_G = 2(n-1), resistance(i,j) = |i-j|,
  // so c(i,j) = 2(n-1)|i-j|.
  const size_t n = 6;
  auto oracle = ExactCommuteTime::Build(UnitPath(n));
  ASSERT_TRUE(oracle.ok());
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      const double expected = 2.0 * (n - 1) * std::fabs(double(i) - double(j));
      EXPECT_NEAR(oracle->CommuteTime(i, j), expected, 1e-8)
          << "pair " << i << "," << j;
    }
  }
}

TEST(ExactCommuteTest, CompleteGraphKnownValue) {
  // K_n with unit weights: resistance = 2/n, V_G = n(n-1), c = 2(n-1).
  const size_t n = 7;
  WeightedGraph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) ASSERT_TRUE(g.SetEdge(i, j, 1.0).ok());
  }
  auto oracle = ExactCommuteTime::Build(g);
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(oracle->CommuteTime(0, 1), 2.0 * (n - 1), 1e-8);
}

TEST(ExactCommuteTest, SelfDistanceIsZero) {
  auto oracle = ExactCommuteTime::Build(UnitPath(4));
  ASSERT_TRUE(oracle.ok());
  for (NodeId i = 0; i < 4; ++i) EXPECT_EQ(oracle->CommuteTime(i, i), 0.0);
}

TEST(ExactCommuteTest, MatchesEigendecompositionPseudoinverse) {
  // Cross-check the Cholesky + rank-one-shift construction against the
  // spectral pseudoinverse on an irregular weighted graph.
  WeightedGraph g(6);
  ASSERT_TRUE(g.SetEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.SetEdge(0, 2, 0.5).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 3.0).ok());
  ASSERT_TRUE(g.SetEdge(3, 4, 1.5).ok());
  ASSERT_TRUE(g.SetEdge(4, 5, 2.5).ok());
  ASSERT_TRUE(g.SetEdge(1, 5, 0.25).ok());

  auto oracle = ExactCommuteTime::Build(g);
  ASSERT_TRUE(oracle.ok());
  auto lplus = SymmetricPseudoInverse(g.ToLaplacianDense());
  ASSERT_TRUE(lplus.ok());
  const double volume = g.Volume();
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = 0; j < 6; ++j) {
      const double expected =
          i == j ? 0.0
                 : volume * ((*lplus)(i, i) + (*lplus)(j, j) -
                             2.0 * (*lplus)(i, j));
      EXPECT_NEAR(oracle->CommuteTime(i, j), expected, 1e-7);
    }
  }
}

TEST(ExactCommuteTest, CrossComponentPaperModeUsesGlobalPseudoinverse) {
  // Default (paper-faithful) policy: Eq. 3 evaluated on the global L+, so
  // across components c = V_G (l+_uu + l+_vv). For two disjoint unit edges,
  // each component block has l+_ii = 0.25 and V_G = 4:
  //   c(0,2) = 4 * (0.25 + 0.25) = 2, while c(0,1) = 4 * 1 = 4.
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 1.0).ok());
  auto oracle = ExactCommuteTime::Build(g);
  ASSERT_TRUE(oracle.ok());
  EXPECT_NEAR(oracle->CommuteTime(0, 2), 2.0, 1e-9);
  EXPECT_NEAR(oracle->CommuteTime(1, 3), 2.0, 1e-9);
  EXPECT_NEAR(oracle->CommuteTime(0, 1), 4.0, 1e-9);
}

TEST(ExactCommuteTest, CrossComponentStrictModeUsesSentinel) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 1.0).ok());
  CommuteTimeOptions options;
  options.use_cross_component_sentinel = true;
  auto oracle = ExactCommuteTime::Build(g, options);
  ASSERT_TRUE(oracle.ok());
  const double sentinel = g.Volume() * 4.0;  // default scale 1.0
  EXPECT_DOUBLE_EQ(oracle->CommuteTime(0, 2), sentinel);
  EXPECT_DOUBLE_EQ(oracle->CommuteTime(1, 3), sentinel);
  // The sentinel dominates every within-component distance.
  EXPECT_GT(oracle->CommuteTime(0, 2), oracle->CommuteTime(0, 1));
}

TEST(ExactCommuteTest, IsolatedNodes) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  auto oracle = ExactCommuteTime::Build(g);
  ASSERT_TRUE(oracle.ok());
  // Paper mode: the isolated node has l+_22 = 0, so c(0,2) = V_G * l+_00 =
  // 2 * 0.25 = 0.5 — finite and *small*, so a silent node does not dominate.
  EXPECT_NEAR(oracle->CommuteTime(0, 2), 0.5, 1e-9);
  EXPECT_EQ(oracle->CommuteTime(2, 2), 0.0);
  // Strict mode: the isolated node is "infinitely" far instead.
  CommuteTimeOptions strict;
  strict.use_cross_component_sentinel = true;
  auto strict_oracle = ExactCommuteTime::Build(g, strict);
  ASSERT_TRUE(strict_oracle.ok());
  EXPECT_GT(strict_oracle->CommuteTime(0, 2),
            strict_oracle->CommuteTime(0, 1));
}

TEST(ExactCommuteTest, WeakerBridgeIncreasesCommuteTime) {
  // Weakening an edge must increase the commute time across it (Rayleigh
  // monotonicity) even as the volume shrinks in this construction.
  WeightedGraph strong(4);
  ASSERT_TRUE(strong.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(strong.SetEdge(1, 2, 4.0).ok());
  ASSERT_TRUE(strong.SetEdge(2, 3, 1.0).ok());
  WeightedGraph weak = strong;
  ASSERT_TRUE(weak.SetEdge(1, 2, 0.5).ok());
  auto strong_oracle = ExactCommuteTime::Build(strong);
  auto weak_oracle = ExactCommuteTime::Build(weak);
  ASSERT_TRUE(strong_oracle.ok());
  ASSERT_TRUE(weak_oracle.ok());
  EXPECT_GT(weak_oracle->CommuteTime(1, 2), strong_oracle->CommuteTime(1, 2));
}

TEST(ExactCommuteTest, CommuteTimeMatrixSymmetricZeroDiagonal) {
  auto oracle = ExactCommuteTime::Build(UnitPath(5));
  ASSERT_TRUE(oracle.ok());
  const DenseMatrix c = oracle->CommuteTimeMatrix();
  EXPECT_TRUE(c.IsSymmetric(1e-9));
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(c(i, i), 0.0);
}

/// Metric properties on random graphs: symmetry, non-negativity, triangle
/// inequality (commute time is a metric).
class ExactCommuteMetricSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactCommuteMetricSweep, MetricAxioms) {
  RandomGraphOptions opts;
  opts.num_nodes = 24;
  opts.average_degree = 5.0;
  opts.seed = GetParam();
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  // Strict cross-component mode: the sentinel preserves the triangle
  // inequality globally (paper mode trades metricity across components for
  // Eq. 3 faithfulness).
  CommuteTimeOptions options;
  options.use_cross_component_sentinel = true;
  auto oracle = ExactCommuteTime::Build(g, options);
  ASSERT_TRUE(oracle.ok());
  const size_t n = g.num_nodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      const double cab = oracle->CommuteTime(a, b);
      EXPECT_GE(cab, 0.0);
      EXPECT_NEAR(cab, oracle->CommuteTime(b, a), 1e-7);
    }
  }
  // Triangle inequality on a subsample (full cubic sweep is slow).
  for (NodeId a = 0; a < n; a += 3) {
    for (NodeId b = 1; b < n; b += 3) {
      for (NodeId c = 2; c < n; c += 3) {
        EXPECT_LE(oracle->CommuteTime(a, b),
                  oracle->CommuteTime(a, c) + oracle->CommuteTime(c, b) + 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactCommuteMetricSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cad
