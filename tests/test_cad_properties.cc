// Property-based tests of CAD's mathematical invariances, swept over random
// graph transitions. These pin down behaviours that unit tests on fixed
// examples cannot: how scores transform under relabeling, time reversal,
// weight rescaling, and graph composition.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "core/cad_detector.h"
#include "datagen/random_graphs.h"

namespace cad {
namespace {

CadDetector ExactDetector() {
  CadOptions options;
  options.engine = CommuteEngine::kExact;
  return CadDetector(options);
}

TemporalGraphSequence RandomSequence(uint64_t seed, size_t n = 24) {
  RandomGraphOptions options;
  options.num_nodes = n;
  options.average_degree = 5.0;
  options.seed = seed;
  return MakeRandomTransition(options, 0.25, 0.1);
}

std::map<uint64_t, double> ScoreMap(const TransitionScores& scores) {
  std::map<uint64_t, double> map;
  for (const ScoredEdge& edge : scores.edges) {
    map[edge.pair.Key()] = edge.score;
  }
  return map;
}

class CadPropertySweep : public ::testing::TestWithParam<uint64_t> {};

/// Relabeling nodes by a permutation must permute the scores and nothing
/// else: CAD is purely structural.
TEST_P(CadPropertySweep, PermutationEquivariance) {
  const TemporalGraphSequence seq = RandomSequence(GetParam());
  const size_t n = seq.num_nodes();

  // Build a deterministic permutation: reverse.
  std::vector<NodeId> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(n - 1 - i);

  TemporalGraphSequence permuted(n);
  for (size_t t = 0; t < 2; ++t) {
    WeightedGraph g(n);
    for (const Edge& e : seq.Snapshot(t).Edges()) {
      CAD_CHECK_OK(g.SetEdge(perm[e.u], perm[e.v], e.weight));
    }
    CAD_CHECK_OK(permuted.Append(std::move(g)));
  }

  const CadDetector detector = ExactDetector();
  auto original = detector.Analyze(seq);
  auto relabeled = detector.Analyze(permuted);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(relabeled.ok());

  const auto original_map = ScoreMap((*original)[0]);
  const auto relabeled_map = ScoreMap((*relabeled)[0]);
  ASSERT_EQ(original_map.size(), relabeled_map.size());
  for (const auto& [key, score] : original_map) {
    const NodePair pair{static_cast<NodeId>(key >> 32),
                        static_cast<NodeId>(key & 0xffffffffULL)};
    const NodePair mapped = NodePair::Make(perm[pair.u], perm[pair.v]);
    const auto it = relabeled_map.find(mapped.Key());
    ASSERT_NE(it, relabeled_map.end());
    EXPECT_NEAR(it->second, score, 1e-6 * (1.0 + score));
  }
}

/// Swapping G_t and G_{t+1} leaves every |dA| and |dc| unchanged, so the
/// scores must be identical: CAD is time-reversal symmetric per transition.
TEST_P(CadPropertySweep, TimeReversalSymmetry) {
  const TemporalGraphSequence seq = RandomSequence(GetParam() + 100);
  TemporalGraphSequence reversed(seq.num_nodes());
  CAD_CHECK_OK(reversed.Append(seq.Snapshot(1)));
  CAD_CHECK_OK(reversed.Append(seq.Snapshot(0)));

  const CadDetector detector = ExactDetector();
  auto forward = detector.Analyze(seq);
  auto backward = detector.Analyze(reversed);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_NEAR((*forward)[0].total_score, (*backward)[0].total_score,
              1e-6 * (1.0 + (*forward)[0].total_score));
  const auto forward_map = ScoreMap((*forward)[0]);
  const auto backward_map = ScoreMap((*backward)[0]);
  ASSERT_EQ(forward_map.size(), backward_map.size());
  for (const auto& [key, score] : forward_map) {
    EXPECT_NEAR(backward_map.at(key), score, 1e-6 * (1.0 + score));
  }
}

/// Scaling all weights of both snapshots by alpha leaves commute times
/// unchanged (volume scales by alpha, resistance by 1/alpha) and scales
/// every |dA| by alpha, so every CAD score scales by exactly alpha.
TEST_P(CadPropertySweep, WeightScalingScalesScoresLinearly) {
  const TemporalGraphSequence seq = RandomSequence(GetParam() + 200);
  const double alpha = 3.5;
  TemporalGraphSequence scaled(seq.num_nodes());
  for (size_t t = 0; t < 2; ++t) {
    WeightedGraph g(seq.num_nodes());
    for (const Edge& e : seq.Snapshot(t).Edges()) {
      CAD_CHECK_OK(g.SetEdge(e.u, e.v, alpha * e.weight));
    }
    CAD_CHECK_OK(scaled.Append(std::move(g)));
  }

  const CadDetector detector = ExactDetector();
  auto original = detector.Analyze(seq);
  auto rescaled = detector.Analyze(scaled);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(rescaled.ok());
  const auto original_map = ScoreMap((*original)[0]);
  const auto rescaled_map = ScoreMap((*rescaled)[0]);
  for (const auto& [key, score] : original_map) {
    EXPECT_NEAR(rescaled_map.at(key), alpha * score,
                1e-5 * (1.0 + alpha * score));
  }
}

/// Adding isolated nodes must not disturb any existing pair's score: an
/// inactive participant changes neither weights nor the Laplacian blocks.
TEST_P(CadPropertySweep, IsolatedNodesAreInert) {
  const TemporalGraphSequence seq = RandomSequence(GetParam() + 300);
  const size_t n = seq.num_nodes();
  TemporalGraphSequence padded(n + 5);
  for (size_t t = 0; t < 2; ++t) {
    WeightedGraph g(n + 5);
    for (const Edge& e : seq.Snapshot(t).Edges()) {
      CAD_CHECK_OK(g.SetEdge(e.u, e.v, e.weight));
    }
    CAD_CHECK_OK(padded.Append(std::move(g)));
  }
  const CadDetector detector = ExactDetector();
  auto original = detector.Analyze(seq);
  auto with_padding = detector.Analyze(padded);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(with_padding.ok());
  const auto original_map = ScoreMap((*original)[0]);
  const auto padded_map = ScoreMap((*with_padding)[0]);
  ASSERT_EQ(original_map.size(), padded_map.size());
  for (const auto& [key, score] : original_map) {
    EXPECT_NEAR(padded_map.at(key), score, 1e-6 * (1.0 + score));
  }
}

/// Disjoint union with an *unchanging* copy: the copy contributes no scored
/// change, and (paper Eq. 3 with the global volume) the original pairs'
/// commute deltas scale with the enlarged volume. For the scaling to be a
/// single factor, the transition must preserve the volume (otherwise c_t
/// and c_{t+1} scale by different ratios), so this test uses a
/// weight-transfer transition: mass moves between edges, total unchanged.
TEST_P(CadPropertySweep, DisjointStaticCopyOnlyRescalesVolume) {
  // Volume-preserving transition: shift half of one edge's weight onto
  // another edge.
  RandomGraphOptions base_options;
  base_options.num_nodes = 24;
  base_options.average_degree = 5.0;
  base_options.seed = GetParam() + 400;
  const WeightedGraph before = MakeRandomSparseGraph(base_options);
  const std::vector<Edge> edges = before.Edges();
  ASSERT_GE(edges.size(), 2u);
  WeightedGraph after = before;
  const double transfer = edges[0].weight / 2.0;
  CAD_CHECK_OK(after.AddEdgeWeight(edges[0].u, edges[0].v, -transfer));
  CAD_CHECK_OK(after.AddEdgeWeight(edges[1].u, edges[1].v, transfer));
  ASSERT_NEAR(before.Volume(), after.Volume(), 1e-9);

  TemporalGraphSequence seq(before.num_nodes());
  CAD_CHECK_OK(seq.Append(before));
  CAD_CHECK_OK(seq.Append(after));
  const size_t n = seq.num_nodes();

  // The static companion graph (same on both sides of the transition).
  RandomGraphOptions companion_options;
  companion_options.num_nodes = n;
  companion_options.average_degree = 5.0;
  companion_options.seed = GetParam() + 999;
  const WeightedGraph companion = MakeRandomSparseGraph(companion_options);

  TemporalGraphSequence combined(2 * n);
  for (size_t t = 0; t < 2; ++t) {
    WeightedGraph g(2 * n);
    for (const Edge& e : seq.Snapshot(t).Edges()) {
      CAD_CHECK_OK(g.SetEdge(e.u, e.v, e.weight));
    }
    for (const Edge& e : companion.Edges()) {
      CAD_CHECK_OK(g.SetEdge(static_cast<NodeId>(e.u + n),
                             static_cast<NodeId>(e.v + n), e.weight));
    }
    CAD_CHECK_OK(combined.Append(std::move(g)));
  }

  const CadDetector detector = ExactDetector();
  auto original = detector.Analyze(seq);
  auto with_copy = detector.Analyze(combined);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(with_copy.ok());

  // No static-copy edge may carry a nonzero score.
  for (const ScoredEdge& edge : (*with_copy)[0].edges) {
    if (edge.pair.u >= n) {
      EXPECT_EQ(edge.score, 0.0);
    }
  }
  // Original pairs' scores scale by the combined/original volume ratio.
  const double ratio =
      combined.Snapshot(0).Volume() / seq.Snapshot(0).Volume();
  const auto original_map = ScoreMap((*original)[0]);
  const auto combined_map = ScoreMap((*with_copy)[0]);
  for (const auto& [key, score] : original_map) {
    EXPECT_NEAR(combined_map.at(key), ratio * score,
                1e-5 * (1.0 + ratio * score));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CadPropertySweep,
                         ::testing::Values(1, 2, 3, 7, 11));

}  // namespace
}  // namespace cad
