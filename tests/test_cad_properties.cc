// Property-based tests of CAD's mathematical invariances, swept over random
// graph transitions. These pin down behaviours that unit tests on fixed
// examples cannot: how scores transform under relabeling, time reversal,
// weight rescaling, graph composition, and — for the incremental
// maintenance paths of DESIGN.md §12 — agreement with a full rebuild within
// the documented tolerance under randomized churn.

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "commute/approx_commute.h"
#include "commute/exact_commute.h"
#include "commute/solver_cache.h"
#include "core/cad_detector.h"
#include "datagen/random_graphs.h"
#include "graph/edge_delta.h"

namespace cad {
namespace {

CadDetector ExactDetector() {
  CadOptions options;
  options.engine = CommuteEngine::kExact;
  return CadDetector(options);
}

TemporalGraphSequence RandomSequence(uint64_t seed, size_t n = 24) {
  RandomGraphOptions options;
  options.num_nodes = n;
  options.average_degree = 5.0;
  options.seed = seed;
  return MakeRandomTransition(options, 0.25, 0.1);
}

std::map<uint64_t, double> ScoreMap(const TransitionScores& scores) {
  std::map<uint64_t, double> map;
  for (const ScoredEdge& edge : scores.edges) {
    map[edge.pair.Key()] = edge.score;
  }
  return map;
}

class CadPropertySweep : public ::testing::TestWithParam<uint64_t> {};

/// Relabeling nodes by a permutation must permute the scores and nothing
/// else: CAD is purely structural.
TEST_P(CadPropertySweep, PermutationEquivariance) {
  const TemporalGraphSequence seq = RandomSequence(GetParam());
  const size_t n = seq.num_nodes();

  // Build a deterministic permutation: reverse.
  std::vector<NodeId> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(n - 1 - i);

  TemporalGraphSequence permuted(n);
  for (size_t t = 0; t < 2; ++t) {
    WeightedGraph g(n);
    for (const Edge& e : seq.Snapshot(t).Edges()) {
      CAD_CHECK_OK(g.SetEdge(perm[e.u], perm[e.v], e.weight));
    }
    CAD_CHECK_OK(permuted.Append(std::move(g)));
  }

  const CadDetector detector = ExactDetector();
  auto original = detector.Analyze(seq);
  auto relabeled = detector.Analyze(permuted);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(relabeled.ok());

  const auto original_map = ScoreMap((*original)[0]);
  const auto relabeled_map = ScoreMap((*relabeled)[0]);
  ASSERT_EQ(original_map.size(), relabeled_map.size());
  for (const auto& [key, score] : original_map) {
    const NodePair pair{static_cast<NodeId>(key >> 32),
                        static_cast<NodeId>(key & 0xffffffffULL)};
    const NodePair mapped = NodePair::Make(perm[pair.u], perm[pair.v]);
    const auto it = relabeled_map.find(mapped.Key());
    ASSERT_NE(it, relabeled_map.end());
    EXPECT_NEAR(it->second, score, 1e-6 * (1.0 + score));
  }
}

/// Swapping G_t and G_{t+1} leaves every |dA| and |dc| unchanged, so the
/// scores must be identical: CAD is time-reversal symmetric per transition.
TEST_P(CadPropertySweep, TimeReversalSymmetry) {
  const TemporalGraphSequence seq = RandomSequence(GetParam() + 100);
  TemporalGraphSequence reversed(seq.num_nodes());
  CAD_CHECK_OK(reversed.Append(seq.Snapshot(1)));
  CAD_CHECK_OK(reversed.Append(seq.Snapshot(0)));

  const CadDetector detector = ExactDetector();
  auto forward = detector.Analyze(seq);
  auto backward = detector.Analyze(reversed);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_NEAR((*forward)[0].total_score, (*backward)[0].total_score,
              1e-6 * (1.0 + (*forward)[0].total_score));
  const auto forward_map = ScoreMap((*forward)[0]);
  const auto backward_map = ScoreMap((*backward)[0]);
  ASSERT_EQ(forward_map.size(), backward_map.size());
  for (const auto& [key, score] : forward_map) {
    EXPECT_NEAR(backward_map.at(key), score, 1e-6 * (1.0 + score));
  }
}

/// Scaling all weights of both snapshots by alpha leaves commute times
/// unchanged (volume scales by alpha, resistance by 1/alpha) and scales
/// every |dA| by alpha, so every CAD score scales by exactly alpha.
TEST_P(CadPropertySweep, WeightScalingScalesScoresLinearly) {
  const TemporalGraphSequence seq = RandomSequence(GetParam() + 200);
  const double alpha = 3.5;
  TemporalGraphSequence scaled(seq.num_nodes());
  for (size_t t = 0; t < 2; ++t) {
    WeightedGraph g(seq.num_nodes());
    for (const Edge& e : seq.Snapshot(t).Edges()) {
      CAD_CHECK_OK(g.SetEdge(e.u, e.v, alpha * e.weight));
    }
    CAD_CHECK_OK(scaled.Append(std::move(g)));
  }

  const CadDetector detector = ExactDetector();
  auto original = detector.Analyze(seq);
  auto rescaled = detector.Analyze(scaled);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(rescaled.ok());
  const auto original_map = ScoreMap((*original)[0]);
  const auto rescaled_map = ScoreMap((*rescaled)[0]);
  for (const auto& [key, score] : original_map) {
    EXPECT_NEAR(rescaled_map.at(key), alpha * score,
                1e-5 * (1.0 + alpha * score));
  }
}

/// Adding isolated nodes must not disturb any existing pair's score: an
/// inactive participant changes neither weights nor the Laplacian blocks.
TEST_P(CadPropertySweep, IsolatedNodesAreInert) {
  const TemporalGraphSequence seq = RandomSequence(GetParam() + 300);
  const size_t n = seq.num_nodes();
  TemporalGraphSequence padded(n + 5);
  for (size_t t = 0; t < 2; ++t) {
    WeightedGraph g(n + 5);
    for (const Edge& e : seq.Snapshot(t).Edges()) {
      CAD_CHECK_OK(g.SetEdge(e.u, e.v, e.weight));
    }
    CAD_CHECK_OK(padded.Append(std::move(g)));
  }
  const CadDetector detector = ExactDetector();
  auto original = detector.Analyze(seq);
  auto with_padding = detector.Analyze(padded);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(with_padding.ok());
  const auto original_map = ScoreMap((*original)[0]);
  const auto padded_map = ScoreMap((*with_padding)[0]);
  ASSERT_EQ(original_map.size(), padded_map.size());
  for (const auto& [key, score] : original_map) {
    EXPECT_NEAR(padded_map.at(key), score, 1e-6 * (1.0 + score));
  }
}

/// Disjoint union with an *unchanging* copy: the copy contributes no scored
/// change, and (paper Eq. 3 with the global volume) the original pairs'
/// commute deltas scale with the enlarged volume. For the scaling to be a
/// single factor, the transition must preserve the volume (otherwise c_t
/// and c_{t+1} scale by different ratios), so this test uses a
/// weight-transfer transition: mass moves between edges, total unchanged.
TEST_P(CadPropertySweep, DisjointStaticCopyOnlyRescalesVolume) {
  // Volume-preserving transition: shift half of one edge's weight onto
  // another edge.
  RandomGraphOptions base_options;
  base_options.num_nodes = 24;
  base_options.average_degree = 5.0;
  base_options.seed = GetParam() + 400;
  const WeightedGraph before = MakeRandomSparseGraph(base_options);
  const std::vector<Edge> edges = before.Edges();
  ASSERT_GE(edges.size(), 2u);
  WeightedGraph after = before;
  const double transfer = edges[0].weight / 2.0;
  CAD_CHECK_OK(after.AddEdgeWeight(edges[0].u, edges[0].v, -transfer));
  CAD_CHECK_OK(after.AddEdgeWeight(edges[1].u, edges[1].v, transfer));
  ASSERT_NEAR(before.Volume(), after.Volume(), 1e-9);

  TemporalGraphSequence seq(before.num_nodes());
  CAD_CHECK_OK(seq.Append(before));
  CAD_CHECK_OK(seq.Append(after));
  const size_t n = seq.num_nodes();

  // The static companion graph (same on both sides of the transition).
  RandomGraphOptions companion_options;
  companion_options.num_nodes = n;
  companion_options.average_degree = 5.0;
  companion_options.seed = GetParam() + 999;
  const WeightedGraph companion = MakeRandomSparseGraph(companion_options);

  TemporalGraphSequence combined(2 * n);
  for (size_t t = 0; t < 2; ++t) {
    WeightedGraph g(2 * n);
    for (const Edge& e : seq.Snapshot(t).Edges()) {
      CAD_CHECK_OK(g.SetEdge(e.u, e.v, e.weight));
    }
    for (const Edge& e : companion.Edges()) {
      CAD_CHECK_OK(g.SetEdge(static_cast<NodeId>(e.u + n),
                             static_cast<NodeId>(e.v + n), e.weight));
    }
    CAD_CHECK_OK(combined.Append(std::move(g)));
  }

  const CadDetector detector = ExactDetector();
  auto original = detector.Analyze(seq);
  auto with_copy = detector.Analyze(combined);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(with_copy.ok());

  // No static-copy edge may carry a nonzero score.
  for (const ScoredEdge& edge : (*with_copy)[0].edges) {
    if (edge.pair.u >= n) {
      EXPECT_EQ(edge.score, 0.0);
    }
  }
  // Original pairs' scores scale by the combined/original volume ratio.
  const double ratio =
      combined.Snapshot(0).Volume() / seq.Snapshot(0).Volume();
  const auto original_map = ScoreMap((*original)[0]);
  const auto combined_map = ScoreMap((*with_copy)[0]);
  for (const auto& [key, score] : original_map) {
    EXPECT_NEAR(combined_map.at(key), ratio * score,
                1e-5 * (1.0 + ratio * score));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CadPropertySweep,
                         ::testing::Values(1, 2, 3, 7, 11));

// ---------------------------------------------------------------------------
// Incremental maintenance (DESIGN.md §12): randomized-churn agreement with a
// full rebuild, within each engine's documented tolerance.

/// Connected random graph: a Hamiltonian path plus random chords, so churn
/// on the chords can never change the component structure.
WeightedGraph ConnectedRandomGraph(size_t n, size_t chords, uint64_t seed) {
  WeightedGraph g(n);
  Rng rng(seed);
  for (NodeId u = 0; u + 1 < n; ++u) {
    CAD_CHECK_OK(g.SetEdge(u, u + 1, 0.5 + rng.Uniform()));
  }
  size_t added = 0;
  while (added < chords) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v || g.HasEdge(u, v)) continue;
    CAD_CHECK_OK(g.SetEdge(u, v, 0.5 + rng.Uniform()));
    ++added;
  }
  return g;
}

/// Random churn that provably preserves connectivity: rescales a few
/// existing edges (never to zero), deletes a chord if one exists off the
/// path, and inserts a fresh chord.
WeightedGraph ChurnedCopy(const WeightedGraph& graph, uint64_t seed) {
  WeightedGraph churned = graph;
  Rng rng(seed);
  const size_t n = graph.num_nodes();
  for (size_t j = 0; j < 3; ++j) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n - 1));
    const double w = churned.EdgeWeight(u, u + 1);
    CAD_CHECK_OK(churned.SetEdge(u, u + 1, w * (0.6 + 0.8 * rng.Uniform())));
  }
  for (const Edge& e : graph.Edges()) {
    if (e.v != e.u + 1) {  // a chord: safe to delete
      CAD_CHECK_OK(churned.SetEdge(e.u, e.v, 0.0));
      break;
    }
  }
  for (size_t attempts = 0; attempts < 64; ++attempts) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v || churned.HasEdge(u, v)) continue;
    CAD_CHECK_OK(churned.SetEdge(u, v, 0.5 + rng.Uniform()));
    break;
  }
  return churned;
}

class IncrementalSweep : public ::testing::TestWithParam<uint64_t> {};

/// Exact engine: the Woodbury-updated oracle matches a full rebuild at
/// 1e-8 relative — the documented tolerance contract for the exact path.
TEST_P(IncrementalSweep, ExactIncrementalMatchesFullRebuild) {
  const WeightedGraph before = ConnectedRandomGraph(20, 8, GetParam());
  const WeightedGraph after = ChurnedCopy(before, GetParam() + 1000);
  const EdgeDelta delta = DiffSnapshots(before, after);
  ASSERT_GT(delta.rank(), 0u);

  auto previous = ExactCommuteTime::Build(before);
  ASSERT_TRUE(previous.ok());
  auto incremental = ExactCommuteTime::BuildIncremental(after, *previous, delta);
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
  auto rebuilt = ExactCommuteTime::Build(after);
  ASSERT_TRUE(rebuilt.ok());

  const DenseMatrix& a = incremental->laplacian_pseudoinverse();
  const DenseMatrix& b = rebuilt->laplacian_pseudoinverse();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      ASSERT_NEAR(a(i, j), b(i, j), 1e-8 * (1.0 + std::fabs(b(i, j))));
    }
  }
  for (NodeId u = 0; u < after.num_nodes(); ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < after.num_nodes(); ++v) {
      const double full = rebuilt->CommuteTime(u, v);
      ASSERT_NEAR(incremental->CommuteTime(u, v), full, 1e-8 * (1.0 + full));
    }
  }
}

/// Exact engine: a node-count or component-structure change is refused with
/// FailedPrecondition (the caller's cue to rebuild), never silently applied.
TEST_P(IncrementalSweep, ExactIncrementalRefusesStructuralChange) {
  // A pendant node hanging off the random core by a single bridge: deleting
  // the bridge provably disconnects it (chords never touch the pendant).
  WeightedGraph before = ConnectedRandomGraph(14, 4, GetParam() + 50);
  const NodeId pendant = static_cast<NodeId>(before.num_nodes());
  CAD_CHECK_OK(before.GrowTo(before.num_nodes() + 1));
  CAD_CHECK_OK(before.SetEdge(pendant - 1, pendant, 1.0));
  auto previous = ExactCommuteTime::Build(before);
  ASSERT_TRUE(previous.ok());

  WeightedGraph split = before;
  CAD_CHECK_OK(split.SetEdge(pendant - 1, pendant, 0.0));
  const Status component_change =
      ExactCommuteTime::BuildIncremental(
          split, *previous, DiffSnapshots(before, split))
          .status();
  ASSERT_FALSE(component_change.ok());
  EXPECT_EQ(component_change.code(), StatusCode::kFailedPrecondition);

  WeightedGraph grown = before;
  CAD_CHECK_OK(grown.GrowTo(before.num_nodes() + 2));
  const Status node_growth =
      ExactCommuteTime::BuildIncremental(
          grown, *previous, DiffSnapshots(before, grown))
          .status();
  ASSERT_FALSE(node_growth.ok());
  EXPECT_EQ(node_growth.code(), StatusCode::kFailedPrecondition);
}

/// Approximate engine: every column of an incremental build satisfies the
/// residual contract ||y_r - L z_r|| <= max(tolerance, cg_tol) * ||y_r||
/// against the *new* snapshot's right-hand sides and Laplacian — reused and
/// re-solved columns alike — and the incrementally folded RHS block matches
/// a from-scratch JL construction.
TEST_P(IncrementalSweep, ApproxIncrementalHonorsResidualContract) {
  const size_t n = 40;
  const size_t k = 8;
  const WeightedGraph before = ConnectedRandomGraph(n, 24, GetParam() + 200);
  const WeightedGraph after = ChurnedCopy(before, GetParam() + 1200);
  const EdgeDelta delta = DiffSnapshots(before, after);

  ApproxCommuteOptions options;
  options.embedding_dim = k;
  options.warm_start = true;
  options.incremental = true;
  options.incremental_tolerance = 0.15;
  options.cg.tolerance = 1e-10;

  CommuteSolverCache cache;
  auto seed_build = ApproxCommuteEmbedding::Build(before, options, &cache);
  ASSERT_TRUE(seed_build.ok());
  auto incremental =
      ApproxCommuteEmbedding::BuildIncremental(after, delta, options, &cache);
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();

  // The folded RHS block must equal the one a full build derives from
  // scratch (same edge-keyed draws, same arithmetic shape).
  const DenseMatrix* folded = cache.IncrementalRhs(n, k);
  ASSERT_NE(folded, nullptr);
  CommuteSolverCache fresh_cache;
  auto fresh = ApproxCommuteEmbedding::Build(after, options, &fresh_cache);
  ASSERT_TRUE(fresh.ok());
  const DenseMatrix* scratch = fresh_cache.IncrementalRhs(n, k);
  ASSERT_NE(scratch, nullptr);
  for (size_t i = 0; i < n; ++i) {
    for (size_t r = 0; r < k; ++r) {
      ASSERT_NEAR((*folded)(i, r), (*scratch)(i, r),
                  1e-12 * (1.0 + std::fabs((*scratch)(i, r))));
    }
  }

  // Residual contract, column by column, against the new regularized
  // Laplacian (the same epsilon formula the build uses).
  const double epsilon = options.commute.regularization_scale *
                         std::max(after.Volume(), 1.0);
  const CsrMatrix laplacian = after.ToLaplacianCsr(epsilon);
  const DenseMatrix& z = incremental->embedding();  // k x n
  DenseMatrix x0(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t r = 0; r < k; ++r) x0(i, r) = z(r, i);
  }
  DenseMatrix lz;
  laplacian.MultiplyBlock(x0, &lz);
  for (size_t r = 0; r < k; ++r) {
    double residual2 = 0.0;
    double norm2 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = (*folded)(i, r) - lz(i, r);
      residual2 += d * d;
      norm2 += (*folded)(i, r) * (*folded)(i, r);
    }
    ASSERT_GT(norm2, 0.0);
    // Slack of 2x on the bound: the gate is evaluated in exact arithmetic
    // on the same data, the slack only covers accumulation differences.
    EXPECT_LE(std::sqrt(residual2),
              2.0 * options.incremental_tolerance * std::sqrt(norm2));
  }
}

/// Approximate engine: under small churn the default gate reuses most
/// columns (that is the point of the incremental path), while a
/// zero-tolerance gate forces every column through CG, reproducing the
/// warm-start rebuild's embedding to solver accuracy.
TEST_P(IncrementalSweep, ApproxIncrementalReusesOrRefinesAsConfigured) {
  const size_t n = 40;
  const size_t k = 8;
  const WeightedGraph before = ConnectedRandomGraph(n, 24, GetParam() + 300);
  WeightedGraph after = before;
  // One-edge churn: the smallest honest delta.
  const double w01 = before.EdgeWeight(0, 1);
  CAD_CHECK_OK(after.SetEdge(0, 1, 1.05 * w01));
  const EdgeDelta delta = DiffSnapshots(before, after);
  ASSERT_EQ(delta.rank(), 1u);

  ApproxCommuteOptions options;
  options.embedding_dim = k;
  options.warm_start = true;
  options.incremental = true;
  options.cg.tolerance = 1e-10;

  {
    CommuteSolverCache cache;
    ASSERT_TRUE(ApproxCommuteEmbedding::Build(before, options, &cache).ok());
    auto incremental =
        ApproxCommuteEmbedding::BuildIncremental(after, delta, options, &cache);
    ASSERT_TRUE(incremental.ok());
    EXPECT_GT(cache.rhs_reused(), 0u);
    EXPECT_LT(cache.last_resolved_fraction(), 0.5);
  }

  {
    ApproxCommuteOptions strict = options;
    strict.incremental_tolerance = 0.0;  // cg.tolerance floor still applies
    CommuteSolverCache cache;
    ASSERT_TRUE(ApproxCommuteEmbedding::Build(before, strict, &cache).ok());
    auto incremental =
        ApproxCommuteEmbedding::BuildIncremental(after, delta, strict, &cache);
    ASSERT_TRUE(incremental.ok());

    CommuteSolverCache rebuild_cache;
    ASSERT_TRUE(ApproxCommuteEmbedding::Build(before, strict, &rebuild_cache).ok());
    auto rebuilt = ApproxCommuteEmbedding::Build(after, strict, &rebuild_cache);
    ASSERT_TRUE(rebuilt.ok());
    Rng rng(GetParam());
    for (size_t trial = 0; trial < 64; ++trial) {
      const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
      const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
      const double full = rebuilt->CommuteTime(u, v);
      ASSERT_NEAR(incremental->CommuteTime(u, v), full, 1e-5 * (1.0 + full));
    }
  }
}

/// Detector level: BuildOracleIncremental must agree with BuildOracle for
/// the exact engine (Woodbury is exact) and fall back — not fail — on
/// structural change.
TEST_P(IncrementalSweep, DetectorIncrementalOracleAgreesAndFallsBack) {
  // Large enough that ChurnedCopy's ~5-edge delta stays under the exact
  // path's 4 * rank <= n low-rank guard, so the Woodbury path really runs.
  const WeightedGraph before = ConnectedRandomGraph(30, 10, GetParam() + 400);
  const WeightedGraph after = ChurnedCopy(before, GetParam() + 1400);

  CadOptions cad_options;
  cad_options.engine = CommuteEngine::kExact;
  const CadDetector detector(cad_options);

  auto previous = detector.BuildOracle(before);
  ASSERT_TRUE(previous.ok());
  auto incremental = detector.BuildOracleIncremental(
      after, before, previous->get(), nullptr);
  ASSERT_TRUE(incremental.ok());
  auto rebuilt = detector.BuildOracle(after);
  ASSERT_TRUE(rebuilt.ok());
  for (NodeId u = 0; u < after.num_nodes(); ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < after.num_nodes(); ++v) {
      const double full = (*rebuilt)->CommuteTime(u, v);
      ASSERT_NEAR((*incremental)->CommuteTime(u, v), full,
                  1e-8 * (1.0 + full));
    }
  }

  // Splitting the graph must fall back to a full rebuild transparently.
  WeightedGraph split = after;
  CAD_CHECK_OK(split.SetEdge(0, 1, 0.0));
  auto fallback = detector.BuildOracleIncremental(
      split, after, incremental->get(), nullptr);
  ASSERT_TRUE(fallback.ok());
  auto split_rebuilt = detector.BuildOracle(split);
  ASSERT_TRUE(split_rebuilt.ok());
  const double expected = (*split_rebuilt)->CommuteTime(2, 3);
  EXPECT_NEAR((*fallback)->CommuteTime(2, 3), expected,
              1e-8 * (1.0 + expected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSweep,
                         ::testing::Values(21, 22, 23, 27, 31));

}  // namespace
}  // namespace cad
