#include "linalg/cholesky.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/vector_ops.h"

namespace cad {
namespace {

DenseMatrix RandomSpd(size_t n, uint64_t seed) {
  // A = B B^T + n I is SPD for any B.
  Rng rng(seed);
  DenseMatrix b(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) b(i, j) = rng.Normal();
  }
  DenseMatrix a = b.Multiply(b.Transpose());
  for (size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(CholeskyTest, FactorsKnownMatrix) {
  // A = [[4, 2], [2, 3]]; L = [[2, 0], [1, sqrt(2)]].
  DenseMatrix a(2, 2, {4, 2, 2, 3});
  auto factor = CholeskyFactorization::Factor(a);
  ASSERT_TRUE(factor.ok());
  EXPECT_NEAR(factor->lower()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(factor->lower()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(factor->lower()(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_EQ(factor->lower()(0, 1), 0.0);
}

TEST(CholeskyTest, LowerTimesTransposeReconstructs) {
  const DenseMatrix a = RandomSpd(8, 11);
  auto factor = CholeskyFactorization::Factor(a);
  ASSERT_TRUE(factor.ok());
  const DenseMatrix rebuilt =
      factor->lower().Multiply(factor->lower().Transpose());
  EXPECT_LT(rebuilt.MaxAbsDifference(a), 1e-9);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  const DenseMatrix a = RandomSpd(10, 22);
  Rng rng(33);
  std::vector<double> x_true(10);
  for (double& v : x_true) v = rng.Normal();
  const std::vector<double> b = a.Multiply(x_true);
  auto factor = CholeskyFactorization::Factor(a);
  ASSERT_TRUE(factor.ok());
  const std::vector<double> x = factor->Solve(b);
  EXPECT_LT(MaxAbsDifference(x, x_true), 1e-9);
}

TEST(CholeskyTest, InverseTimesMatrixIsIdentity) {
  const DenseMatrix a = RandomSpd(6, 44);
  auto factor = CholeskyFactorization::Factor(a);
  ASSERT_TRUE(factor.ok());
  const DenseMatrix product = a.Multiply(factor->Inverse());
  EXPECT_LT(product.MaxAbsDifference(DenseMatrix::Identity(6)), 1e-9);
}

TEST(CholeskyTest, SolveMatrixMatchesColumnSolves) {
  const DenseMatrix a = RandomSpd(5, 55);
  DenseMatrix b(5, 2);
  Rng rng(66);
  for (size_t i = 0; i < 5; ++i) {
    b(i, 0) = rng.Normal();
    b(i, 1) = rng.Normal();
  }
  auto factor = CholeskyFactorization::Factor(a);
  ASSERT_TRUE(factor.ok());
  const DenseMatrix x = factor->SolveMatrix(b);
  for (size_t col = 0; col < 2; ++col) {
    std::vector<double> rhs(5);
    for (size_t i = 0; i < 5; ++i) rhs[i] = b(i, col);
    const std::vector<double> col_solution = factor->Solve(rhs);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(x(i, col), col_solution[i], 1e-12);
    }
  }
}

TEST(CholeskyTest, RejectsNonSquare) {
  DenseMatrix a(2, 3);
  EXPECT_EQ(CholeskyFactorization::Factor(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsNonSymmetric) {
  DenseMatrix a(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(CholeskyFactorization::Factor(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  DenseMatrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3 and -1
  EXPECT_EQ(CholeskyFactorization::Factor(a).status().code(),
            StatusCode::kNumericalError);
}

TEST(CholeskyTest, RejectsSingular) {
  DenseMatrix a(2, 2, {1, 1, 1, 1});
  EXPECT_FALSE(CholeskyFactorization::Factor(a).ok());
}

/// Parameterized property: solve-then-multiply round trip across sizes.
class CholeskySizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskySizeSweep, RoundTripResidualSmall) {
  const size_t n = GetParam();
  const DenseMatrix a = RandomSpd(n, 100 + n);
  auto factor = CholeskyFactorization::Factor(a);
  ASSERT_TRUE(factor.ok());
  Rng rng(200 + n);
  std::vector<double> b(n);
  for (double& v : b) v = rng.Normal();
  const std::vector<double> x = factor->Solve(b);
  const std::vector<double> residual = Subtract(a.Multiply(x), b);
  EXPECT_LT(Norm2(residual), 1e-8 * (1.0 + Norm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeSweep,
                         ::testing::Values(1, 2, 3, 5, 17, 40, 80));

}  // namespace
}  // namespace cad
