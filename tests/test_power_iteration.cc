#include "linalg/power_iteration.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"

namespace cad {
namespace {

TEST(PowerIterationTest, DiagonalDominantEigenpair) {
  CooMatrix coo(3, 3);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 1, 5.0);
  coo.Add(2, 2, 2.0);
  auto result = PrincipalEigenvector(coo.ToCsr());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->eigenvalue, 5.0, 1e-8);
  EXPECT_NEAR(std::fabs(result->eigenvector[1]), 1.0, 1e-6);
}

TEST(PowerIterationTest, SymmetricKnownMatrix) {
  // [[2, 1], [1, 2]]: dominant eigenpair (3, [1,1]/sqrt(2)).
  CooMatrix coo(2, 2);
  coo.Add(0, 0, 2.0);
  coo.Add(1, 1, 2.0);
  coo.AddSymmetric(0, 1, 1.0);
  auto result = PrincipalEigenvector(coo.ToCsr());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->eigenvalue, 3.0, 1e-8);
  EXPECT_NEAR(std::fabs(result->eigenvector[0]),
              std::fabs(result->eigenvector[1]), 1e-6);
}

TEST(PowerIterationTest, UnitNormOutput) {
  CooMatrix coo(4, 4);
  coo.AddSymmetric(0, 1, 1.0);
  coo.AddSymmetric(1, 2, 2.0);
  coo.AddSymmetric(2, 3, 3.0);
  auto result = PrincipalEigenvector(coo.ToCsr());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(Norm2(result->eigenvector), 1.0, 1e-9);
}

TEST(PowerIterationTest, ZeroMatrixConvergesWithZeroEigenvalue) {
  CsrMatrix zero(5, 5);
  auto result = PrincipalEigenvector(zero);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->eigenvalue, 0.0);
}

TEST(PowerIterationTest, EmptyMatrix) {
  CsrMatrix empty(0, 0);
  auto result = PrincipalEigenvector(empty);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
}

TEST(PowerIterationTest, RejectsNonSquare) {
  CsrMatrix rect(2, 3);
  EXPECT_FALSE(PrincipalEigenvector(rect).ok());
}

TEST(PowerIterationTest, ResidualIsSmall) {
  // Adjacency of a weighted star: residual ||A v - lambda v|| must be tiny.
  CooMatrix coo(5, 5);
  for (uint32_t leaf = 1; leaf < 5; ++leaf) {
    coo.AddSymmetric(0, leaf, static_cast<double>(leaf));
  }
  const CsrMatrix a = coo.ToCsr();
  auto result = PrincipalEigenvector(a);
  ASSERT_TRUE(result.ok());
  std::vector<double> av = a.Multiply(result->eigenvector);
  Axpy(-result->eigenvalue, result->eigenvector, &av);
  EXPECT_LT(Norm2(av), 1e-6);
}

TEST(PowerIterationTest, IterationCapReported) {
  // Two nearly equal dominant eigenvalues converge slowly.
  CooMatrix coo(2, 2);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 1, 1.0000000001);
  PowerIterationOptions options;
  options.max_iterations = 3;
  options.tolerance = 0.0;  // unreachable
  auto result = PrincipalEigenvector(coo.ToCsr(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->converged);
  EXPECT_EQ(result->iterations, 3u);
}

}  // namespace
}  // namespace cad
