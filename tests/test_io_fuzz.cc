// Robustness fuzzing of the text parsers: random byte soup and structured
// near-miss inputs must produce clean Status errors (or valid parses), never
// crashes, hangs, or CHECK failures. Parsers are the classic place where a
// "production-quality" claim dies; these sweeps keep them honest.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/event_stream.h"
#include "io/temporal_io.h"

namespace cad {
namespace {

std::string RandomBytes(Rng* rng, size_t length) {
  // Printable-heavy alphabet plus newlines and a few hostile characters.
  static constexpr char kAlphabet[] =
      "0123456789 \n\t-+.eE#abctemporalsnapshotedge\"\\\r";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out += kAlphabet[rng->UniformInt(sizeof(kAlphabet) - 1)];
  }
  return out;
}

class IoFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IoFuzzSweep, TemporalParserNeverCrashesOnByteSoup) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::string soup = RandomBytes(&rng, rng.UniformInt(400));
    std::istringstream in(soup);
    // Must return: either a valid sequence or a clean error. Never crash.
    auto parsed = ReadTemporalEdgeList(&in);
    if (parsed.ok()) {
      // If it parsed, the result must be internally consistent.
      for (size_t t = 0; t < parsed->num_snapshots(); ++t) {
        EXPECT_EQ(parsed->Snapshot(t).num_nodes(), parsed->num_nodes());
      }
    } else {
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

TEST_P(IoFuzzSweep, EventParserNeverCrashesOnByteSoup) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string soup = RandomBytes(&rng, rng.UniformInt(300));
    std::istringstream in(soup);
    auto events = ReadEventStream(&in);
    if (!events.ok()) {
      EXPECT_FALSE(events.status().message().empty());
    }
  }
}

TEST_P(IoFuzzSweep, TemporalParserSurvivesMutatedValidInput) {
  // Start from a valid document and flip single characters: the parser must
  // accept or reject cleanly, and accepted documents must round-trip.
  const std::string valid =
      "temporal 4 2\n"
      "snapshot 0\n"
      "edge 0 1 1.5\n"
      "edge 2 3 0.25\n"
      "snapshot 1\n"
      "edge 1 2 3\n";
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    const size_t position = rng.UniformInt(mutated.size());
    mutated[position] =
        static_cast<char>('0' + rng.UniformInt(80));  // wide range
    std::istringstream in(mutated);
    auto parsed = ReadTemporalEdgeList(&in);
    if (parsed.ok()) {
      std::ostringstream out;
      ASSERT_TRUE(WriteTemporalEdgeList(*parsed, &out).ok());
      std::istringstream reread(out.str());
      auto second = ReadTemporalEdgeList(&reread);
      ASSERT_TRUE(second.ok());
      for (size_t t = 0; t < parsed->num_snapshots(); ++t) {
        EXPECT_TRUE(second->Snapshot(t) == parsed->Snapshot(t));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzzSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cad
