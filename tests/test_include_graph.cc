// Unit tests for the cross-file include-graph pass (src/lint/include_graph):
// layer assignment, include extraction, and the four repo-wide rules
// (layering, include-cycle, self-include, duplicate-include) over synthetic
// file sets.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/include_graph.h"

namespace cad {
namespace lint {
namespace {

std::vector<std::string> RuleNames(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& finding : findings) rules.push_back(finding.rule);
  return rules;
}

TEST(LayerOfTest, MatchesDeclaredDag) {
  EXPECT_EQ(LayerOf("src/common/status.h"), 0);
  EXPECT_EQ(LayerOf("src/linalg/cholesky.h"), 1);
  EXPECT_EQ(LayerOf("src/obs/metrics.cc"), 1);
  EXPECT_EQ(LayerOf("src/lint/lexer.h"), 1);
  EXPECT_EQ(LayerOf("src/graph/snapshot.h"), 2);
  EXPECT_EQ(LayerOf("src/commute/solver.h"), 2);
  EXPECT_EQ(LayerOf("src/io/temporal_io.h"), 2);
  EXPECT_EQ(LayerOf("src/core/cad_detector.h"), 3);
  EXPECT_EQ(LayerOf("src/eval/metrics.h"), 3);
  EXPECT_EQ(LayerOf("src/datagen/synthetic.h"), 3);
  EXPECT_EQ(LayerOf("src/app/pipeline.h"), 4);
  EXPECT_EQ(LayerOf("tools/cad_cli.cc"), 5);
  EXPECT_EQ(LayerOf("bench/micro_kernels.cc"), 5);
  EXPECT_EQ(LayerOf("tests/test_lint.cc"), 5);
  EXPECT_EQ(LayerOf("examples/quickstart.cpp"), 5);
  EXPECT_EQ(LayerOf("README.md"), -1);
  EXPECT_EQ(LayerOf("src/unknown/x.h"), -1);
}

TEST(ExtractIncludesTest, ParsesQuotedAndAngledForms) {
  const std::vector<IncludeEdge> includes = ExtractIncludes(
      "// header\n"
      "#include <vector>\n"
      "#include \"common/status.h\"\n"
      "  #  include   \"graph/snapshot.h\"\n"
      "#define X include\n"
      "int include = 0;  // not a directive\n");
  ASSERT_EQ(includes.size(), 3u);
  EXPECT_TRUE(includes[0].angled);
  EXPECT_EQ(includes[0].target, "vector");
  EXPECT_EQ(includes[0].line, 2u);
  EXPECT_FALSE(includes[1].angled);
  EXPECT_EQ(includes[1].target, "common/status.h");
  EXPECT_EQ(includes[2].target, "graph/snapshot.h");
  EXPECT_EQ(includes[2].line, 4u);
}

TEST(ExtractIncludesTest, IgnoresCommentedAndStringEmbeddedDirectives) {
  const std::vector<IncludeEdge> includes = ExtractIncludes(
      "// #include \"not/real.h\"\n"
      "/* #include \"also/not.h\" */\n"
      "const char* s = \"#include \\\"nor/this.h\\\"\";\n"
      "#include \"yes/real.h\"\n");
  ASSERT_EQ(includes.size(), 1u);
  EXPECT_EQ(includes[0].target, "yes/real.h");
  EXPECT_EQ(includes[0].line, 4u);
}

TEST(IncludeGraphTest, CleanLayeringProducesNoFindings) {
  const std::vector<SourceFile> files = {
      {"src/common/status.h", ""},
      {"src/graph/snapshot.h", "#include \"common/status.h\"\n"},
      {"src/core/detector.h",
       "#include \"common/status.h\"\n#include \"graph/snapshot.h\"\n"},
      {"tools/cli.cc", "#include \"core/detector.h\"\n"},
  };
  EXPECT_TRUE(AnalyzeIncludeGraph(files).empty());
}

TEST(IncludeGraphTest, UpwardIncludeIsALayeringFinding) {
  // Seeded violation: common (layer 0) reaching into core (layer 3).
  const std::vector<SourceFile> files = {
      {"src/common/util.cc", "#include \"core/detector.h\"\n"},
      {"src/core/detector.h", ""},
  };
  const std::vector<Finding> findings = AnalyzeIncludeGraph(files);
  ASSERT_EQ(RuleNames(findings), std::vector<std::string>{"layering"});
  EXPECT_EQ(findings[0].file, "src/common/util.cc");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("src/core/detector.h"),
            std::string::npos);
}

TEST(IncludeGraphTest, SameLayerAndDownwardIncludesPass) {
  const std::vector<SourceFile> files = {
      {"src/graph/snapshot.h", ""},
      {"src/io/reader.cc", "#include \"graph/snapshot.h\"\n"},  // same layer
      {"src/obs/metrics.cc", "#include \"common/csv_writer.h\"\n"},
      {"src/common/csv_writer.h", ""},
  };
  EXPECT_TRUE(AnalyzeIncludeGraph(files).empty());
}

TEST(IncludeGraphTest, UnresolvedAndAngledIncludesAreExempt) {
  const std::vector<SourceFile> files = {
      {"src/common/util.cc",
       "#include <core/detector.h>\n#include \"third_party/x.h\"\n"},
  };
  EXPECT_TRUE(AnalyzeIncludeGraph(files).empty());
}

TEST(IncludeGraphTest, DetectsSeededCycle) {
  const std::vector<SourceFile> files = {
      {"src/core/a.h", "#include \"core/b.h\"\n"},
      {"src/core/b.h", "#include \"core/c.h\"\n"},
      {"src/core/c.h", "#include \"core/a.h\"\n"},
      {"src/core/acyclic.h", "#include \"core/a.h\"\n"},
  };
  const std::vector<Finding> findings = AnalyzeIncludeGraph(files);
  ASSERT_EQ(RuleNames(findings), std::vector<std::string>{"include-cycle"});
  // Anchored at the lexicographically smallest member, one finding per cycle.
  EXPECT_EQ(findings[0].file, "src/core/a.h");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("src/core/b.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/core/c.h"), std::string::npos);
}

TEST(IncludeGraphTest, TwoFileCycleAndDeterministicOrder) {
  const std::vector<SourceFile> files = {
      {"src/graph/x.h", "#include \"graph/y.h\"\n"},
      {"src/graph/y.h", "#include \"graph/x.h\"\n"},
  };
  const std::vector<Finding> first = AnalyzeIncludeGraph(files);
  // Same inputs in reversed order must produce identical findings.
  const std::vector<SourceFile> reversed = {files[1], files[0]};
  EXPECT_EQ(first, AnalyzeIncludeGraph(reversed));
  ASSERT_EQ(RuleNames(first), std::vector<std::string>{"include-cycle"});
  EXPECT_EQ(first[0].file, "src/graph/x.h");
}

TEST(IncludeGraphTest, FlagsSelfInclude) {
  const std::vector<SourceFile> files = {
      {"src/core/a.h", "#include \"core/a.h\"\n"},
  };
  const std::vector<Finding> findings = AnalyzeIncludeGraph(files);
  ASSERT_EQ(RuleNames(findings), std::vector<std::string>{"self-include"});
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(IncludeGraphTest, FlagsDuplicateIncludeAtSecondOccurrence) {
  const std::vector<SourceFile> files = {
      {"src/core/a.cc",
       "#include \"core/b.h\"\n#include <vector>\n#include \"core/b.h\"\n"
       "#include <vector>\n"},
      {"src/core/b.h", ""},
  };
  const std::vector<Finding> findings = AnalyzeIncludeGraph(files);
  ASSERT_EQ(RuleNames(findings),
            (std::vector<std::string>{"duplicate-include",
                                      "duplicate-include"}));
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("line 1"), std::string::npos);
  EXPECT_EQ(findings[1].line, 4u);  // angled duplicates count too
}

TEST(IncludeGraphTest, SameDirectoryResolutionWithoutPrefix) {
  // `#include "b.h"` from src/core/a.cc resolves against the includer's own
  // directory, so the cycle and layering logic still see the edge.
  const std::vector<SourceFile> files = {
      {"src/core/a.cc", "#include \"b.h\"\n#include \"core/b.h\"\n"},
      {"src/core/b.h", ""},
  };
  const std::vector<Finding> findings = AnalyzeIncludeGraph(files);
  // Both spellings resolve to the same file: the second is a duplicate.
  ASSERT_EQ(RuleNames(findings),
            std::vector<std::string>{"duplicate-include"});
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(IncludeGraphTest, AllowAnnotationSuppressesEachRule) {
  const std::vector<SourceFile> layering = {
      {"src/common/util.cc",
       "#include \"core/detector.h\"  // cad-lint: allow(layering)\n"},
      {"src/core/detector.h", ""},
  };
  EXPECT_TRUE(AnalyzeIncludeGraph(layering).empty());
  const std::vector<SourceFile> cycle = {
      {"src/core/a.h",
       "#include \"core/b.h\"  // cad-lint: allow(include-cycle)\n"},
      {"src/core/b.h", "#include \"core/a.h\"\n"},
  };
  EXPECT_TRUE(AnalyzeIncludeGraph(cycle).empty());
  const std::vector<SourceFile> dup = {
      {"src/core/a.cc",
       "#include \"core/b.h\"\n"
       "#include \"core/b.h\"  // cad-lint: allow(duplicate-include)\n"},
      {"src/core/b.h", ""},
  };
  EXPECT_TRUE(AnalyzeIncludeGraph(dup).empty());
}

}  // namespace
}  // namespace lint
}  // namespace cad
