#include "core/cad_detector.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/threshold.h"
#include "datagen/toy_example.h"

namespace cad {
namespace {

TEST(CadDetectorTest, RejectsTooFewSnapshots) {
  TemporalGraphSequence seq(3);
  CAD_CHECK_OK(seq.Append(WeightedGraph(3)));
  CadDetector detector;
  EXPECT_FALSE(detector.Analyze(seq).ok());
  EXPECT_FALSE(detector.ScoreTransitions(seq).ok());
}

TEST(CadDetectorTest, NameTracksScoreKind) {
  EXPECT_EQ(CadDetector().name(), "CAD");
  CadOptions adj;
  adj.score_kind = EdgeScoreKind::kAdj;
  EXPECT_EQ(CadDetector(adj).name(), "ADJ");
  CadOptions com;
  com.score_kind = EdgeScoreKind::kCom;
  EXPECT_EQ(CadDetector(com).name(), "COM");
}

TEST(CadDetectorTest, IdenticalSnapshotsScoreZero) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 2.0).ok());
  TemporalGraphSequence seq(4);
  CAD_CHECK_OK(seq.Append(g));
  CAD_CHECK_OK(seq.Append(g));
  CadDetector detector;
  auto analyses = detector.Analyze(seq);
  ASSERT_TRUE(analyses.ok());
  ASSERT_EQ(analyses->size(), 1u);
  EXPECT_DOUBLE_EQ((*analyses)[0].total_score, 0.0);
}

TEST(CadDetectorTest, ToyExampleTopThreeEdgesAreGroundTruth) {
  const ToyExample toy = MakeToyExample();
  CadOptions options;
  options.engine = CommuteEngine::kExact;
  CadDetector detector(options);
  auto analyses = detector.Analyze(toy.sequence);
  ASSERT_TRUE(analyses.ok());
  const TransitionScores& scores = (*analyses)[0];
  ASSERT_GE(scores.edges.size(), 3u);

  std::vector<NodePair> top3 = {scores.edges[0].pair, scores.edges[1].pair,
                                scores.edges[2].pair};
  std::sort(top3.begin(), top3.end());
  std::vector<NodePair> expected = toy.anomalous_edges;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(top3, expected);
}

TEST(CadDetectorTest, ToyExampleAnomalousDominateBenignByOrderOfMagnitude) {
  // Table 1's shape: anomalous edge scores sit orders of magnitude above the
  // benign changed edges (10.6 / 9.56 / 8.99 vs 0.07 / 0.04 in the paper).
  const ToyExample toy = MakeToyExample();
  CadOptions options;
  options.engine = CommuteEngine::kExact;
  CadDetector detector(options);
  auto analyses = detector.Analyze(toy.sequence);
  ASSERT_TRUE(analyses.ok());
  const TransitionScores& scores = (*analyses)[0];

  const auto score_of = [&scores](const NodePair& pair) {
    for (const ScoredEdge& e : scores.edges) {
      if (e.pair == pair) return e.score;
    }
    return -1.0;
  };
  double min_anomalous = 1e300;
  for (const NodePair& pair : toy.anomalous_edges) {
    min_anomalous = std::min(min_anomalous, score_of(pair));
  }
  double max_benign = 0.0;
  for (const NodePair& pair : toy.benign_changed_edges) {
    max_benign = std::max(max_benign, score_of(pair));
  }
  EXPECT_GT(min_anomalous, 10.0 * max_benign);
}

TEST(CadDetectorTest, ToyExampleNodeScoresMatchTable2Shape) {
  // Table 2's shape: the six responsible nodes dominate; unaffected nodes
  // score ~0 (e.g. r4, r6, r9 which are only *affected* by the r7-r8 change).
  const ToyExample toy = MakeToyExample();
  CadOptions options;
  options.engine = CommuteEngine::kExact;
  CadDetector detector(options);
  auto node_scores = detector.ScoreTransitions(toy.sequence);
  ASSERT_TRUE(node_scores.ok());
  const std::vector<double>& scores = (*node_scores)[0];

  double min_anomalous = 1e300;
  for (NodeId node : toy.anomalous_nodes) {
    min_anomalous = std::min(min_anomalous, scores[node]);
  }
  for (NodeId node = 0; node < 17; ++node) {
    if (std::count(toy.anomalous_nodes.begin(), toy.anomalous_nodes.end(),
                   node) == 0) {
      EXPECT_LT(scores[node], min_anomalous)
          << "non-anomalous node " << toy.node_names[node]
          << " outranks an anomalous node";
    }
  }
  // The affected-but-not-responsible red subgroup must score far below the
  // responsible nodes (CAD's key differentiator vs ACT, paper §3.4).
  for (int r : {4, 6, 9}) {
    EXPECT_LT(scores[ToyRed(r)], 0.1 * min_anomalous);
  }
}

TEST(CadDetectorTest, ApproxEngineAgreesWithExactOnToyTopEdges) {
  const ToyExample toy = MakeToyExample();
  CadOptions options;
  options.engine = CommuteEngine::kApprox;
  options.approx.embedding_dim = 300;
  options.approx.seed = 9;
  CadDetector detector(options);
  auto analyses = detector.Analyze(toy.sequence);
  ASSERT_TRUE(analyses.ok());
  const TransitionScores& scores = (*analyses)[0];
  std::vector<NodePair> top3 = {scores.edges[0].pair, scores.edges[1].pair,
                                scores.edges[2].pair};
  std::sort(top3.begin(), top3.end());
  std::vector<NodePair> expected = toy.anomalous_edges;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(top3, expected);
}

TEST(CadDetectorTest, AutoEngineSelectsExactForSmallGraphs) {
  // On the toy graph auto mode must produce the exact engine's scores.
  const ToyExample toy = MakeToyExample();
  CadOptions auto_options;
  auto_options.engine = CommuteEngine::kAuto;
  CadOptions exact_options;
  exact_options.engine = CommuteEngine::kExact;
  auto auto_scores = CadDetector(auto_options).Analyze(toy.sequence);
  auto exact_scores = CadDetector(exact_options).Analyze(toy.sequence);
  ASSERT_TRUE(auto_scores.ok());
  ASSERT_TRUE(exact_scores.ok());
  EXPECT_DOUBLE_EQ((*auto_scores)[0].total_score,
                   (*exact_scores)[0].total_score);
}

TEST(CadDetectorTest, AnalyzeTransitionMatchesSequenceAnalyze) {
  const ToyExample toy = MakeToyExample();
  CadOptions options;
  options.engine = CommuteEngine::kExact;
  CadDetector detector(options);
  auto single = detector.AnalyzeTransition(toy.sequence.Snapshot(0),
                                           toy.sequence.Snapshot(1));
  auto full = detector.Analyze(toy.sequence);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(single->total_score, (*full)[0].total_score);
}

TEST(CadDetectorTest, AnalyzeTransitionRejectsMismatchedSizes) {
  CadDetector detector;
  EXPECT_FALSE(
      detector.AnalyzeTransition(WeightedGraph(3), WeightedGraph(4)).ok());
}

TEST(CadDetectorTest, EndToEndWithCalibratedThreshold) {
  // Calibrate for l = 6 nodes per transition on the toy data: exactly the
  // six responsible nodes should be reported.
  const ToyExample toy = MakeToyExample();
  CadOptions options;
  options.engine = CommuteEngine::kExact;
  CadDetector detector(options);
  auto analyses = detector.Analyze(toy.sequence);
  ASSERT_TRUE(analyses.ok());
  const double delta = CalibrateDelta(*analyses, 6.0);
  const std::vector<AnomalyReport> reports = ApplyThreshold(*analyses, delta);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].nodes.size(), 6u);
  std::vector<NodeId> expected = toy.anomalous_nodes;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(reports[0].nodes, expected);
}

/// Parameterized over embedding seeds: the toy localization must be robust
/// to the randomness of the approximate engine at k = 100.
class CadApproxSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CadApproxSeedSweep, ToyTopEdgeIsAlwaysAnomalous) {
  const ToyExample toy = MakeToyExample();
  CadOptions options;
  options.engine = CommuteEngine::kApprox;
  options.approx.embedding_dim = 100;
  options.approx.seed = GetParam();
  auto analyses = CadDetector(options).Analyze(toy.sequence);
  ASSERT_TRUE(analyses.ok());
  const NodePair top = (*analyses)[0].edges[0].pair;
  EXPECT_NE(std::count(toy.anomalous_edges.begin(), toy.anomalous_edges.end(),
                       top),
            0)
      << "top pair " << top.u << "-" << top.v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CadApproxSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace cad
