#include "graph/relabel.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "common/check.h"
#include "commute/approx_commute.h"
#include "datagen/rmat.h"
#include "graph/graph.h"
#include "linalg/sparse_matrix.h"

namespace cad {
namespace {

WeightedGraph StarPlusPath() {
  // Node 0 is the hub (degree 5); 1..5 hang off it and 4-5-6 form a path.
  WeightedGraph g(7);
  for (NodeId v = 1; v <= 5; ++v) CAD_CHECK_OK(g.SetEdge(0, v, 1.0 + v));
  CAD_CHECK_OK(g.SetEdge(4, 5, 0.5));
  CAD_CHECK_OK(g.SetEdge(5, 6, 0.25));
  return g;
}

WeightedGraph PowerLawGraph() {
  RmatOptions options;
  options.num_nodes = 400;
  options.num_edges = 1600;
  options.seed = 7;
  Result<WeightedGraph> graph = MakeRmatGraph(options);
  CAD_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).ValueOrDie();
}

TEST(RelabelTest, PermutationIsAValidInverse) {
  const Relabeling relabeling = DegreeOrderRelabeling(PowerLawGraph());
  ASSERT_EQ(relabeling.new_id.size(), relabeling.old_id.size());
  for (size_t i = 0; i < relabeling.size(); ++i) {
    EXPECT_EQ(relabeling.old_id[relabeling.new_id[i]], i);
  }
}

TEST(RelabelTest, OrdersByDescendingDegreeWithIdTiebreak) {
  const WeightedGraph graph = StarPlusPath();
  const Relabeling relabeling = DegreeOrderRelabeling(graph);
  const std::vector<size_t> degrees = graph.Degrees();
  for (size_t p = 0; p + 1 < relabeling.old_id.size(); ++p) {
    const size_t da = degrees[relabeling.old_id[p]];
    const size_t db = degrees[relabeling.old_id[p + 1]];
    EXPECT_TRUE(da > db ||
                (da == db && relabeling.old_id[p] < relabeling.old_id[p + 1]))
        << "position " << p;
  }
  // The hub must land first.
  EXPECT_EQ(relabeling.old_id[0], 0u);
  EXPECT_EQ(relabeling.new_id[0], 0u);
}

TEST(RelabelTest, PermuteCsrRowsMatchesDensePermutation) {
  const WeightedGraph graph = StarPlusPath();
  const CsrMatrix laplacian = graph.ToLaplacianCsr(1e-6);
  const Relabeling relabeling = DegreeOrderRelabeling(graph);
  const CsrMatrix permuted = PermuteCsrRows(laplacian, relabeling);
  ASSERT_TRUE(permuted.CheckValid().ok());
  const DenseMatrix original = laplacian.ToDense();
  const DenseMatrix dense = permuted.ToDense();
  for (size_t i = 0; i < graph.num_nodes(); ++i) {
    for (size_t j = 0; j < graph.num_nodes(); ++j) {
      EXPECT_EQ(dense(relabeling.new_id[i], relabeling.new_id[j]),
                original(i, j));
    }
  }
}

TEST(RelabelTest, PermutedRowsKeepStoredOrder) {
  // The permuted matrix advertises unsorted rows (stored order preserved),
  // and a row-sweep product over it must be bitwise the original sweep of
  // the corresponding original row: same entries, same sequence.
  const WeightedGraph graph = PowerLawGraph();
  const CsrMatrix laplacian = graph.ToLaplacianCsr(1e-6);
  const Relabeling relabeling = DegreeOrderRelabeling(graph);
  const CsrMatrix permuted = PermuteCsrRows(laplacian, relabeling);
  EXPECT_FALSE(permuted.sorted_rows());

  const size_t n = graph.num_nodes();
  const size_t k = 3;
  DenseMatrix x(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < k; ++c) {
      x(i, c) = std::sin(static_cast<double>(i * k + c + 1));
    }
  }
  DenseMatrix x_perm(n, k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < k; ++c) x_perm(relabeling.new_id[i], c) = x(i, c);
  }
  DenseMatrix y(n, k);
  DenseMatrix y_perm(n, k);
  laplacian.MultiplyAccumulateBlock(1.0, x, &y);
  permuted.MultiplyAccumulateBlock(1.0, x_perm, &y_perm);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < k; ++c) {
      const double a = y(i, c);
      const double b = y_perm(relabeling.new_id[i], c);
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
          << "row " << i << " col " << c;
    }
  }
}

TEST(RelabelTest, RelabeledEmbeddingIsBitIdentical) {
  const WeightedGraph graph = PowerLawGraph();
  ApproxCommuteOptions options;
  options.embedding_dim = 6;
  options.cg.tolerance = 1e-10;

  Result<ApproxCommuteEmbedding> plain =
      ApproxCommuteEmbedding::Build(graph, options);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  options.relabel = true;
  Result<ApproxCommuteEmbedding> relabeled =
      ApproxCommuteEmbedding::Build(graph, options);
  ASSERT_TRUE(relabeled.ok()) << relabeled.status().ToString();

  const DenseMatrix& a = plain->embedding();
  const DenseMatrix& b = relabeled->embedding();
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.data().size() * sizeof(double)),
            0);
  EXPECT_EQ(plain->total_cg_iterations(), relabeled->total_cg_iterations());
}

TEST(RelabelTest, RelabeledBlockSolverIsBitIdenticalToo) {
  const WeightedGraph graph = PowerLawGraph();
  ApproxCommuteOptions options;
  options.embedding_dim = 6;
  options.cg.use_block_solver = true;

  Result<ApproxCommuteEmbedding> plain =
      ApproxCommuteEmbedding::Build(graph, options);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  options.relabel = true;
  Result<ApproxCommuteEmbedding> relabeled =
      ApproxCommuteEmbedding::Build(graph, options);
  ASSERT_TRUE(relabeled.ok()) << relabeled.status().ToString();

  const DenseMatrix& a = plain->embedding();
  const DenseMatrix& b = relabeled->embedding();
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.data().size() * sizeof(double)),
            0);
}

TEST(RelabelTest, RelabelRejectsIncompleteCholesky) {
  ApproxCommuteOptions options;
  options.embedding_dim = 4;
  options.relabel = true;
  options.cg.preconditioner = CgPreconditioner::kIncompleteCholesky;
  Result<ApproxCommuteEmbedding> build =
      ApproxCommuteEmbedding::Build(StarPlusPath(), options);
  EXPECT_FALSE(build.ok());
}

}  // namespace
}  // namespace cad
