#include "core/act_detector.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/toy_example.h"

namespace cad {
namespace {

TemporalGraphSequence TwoCliqueSequence(bool merge) {
  // Two 4-cliques; optionally merged by a strong edge in the second snapshot.
  WeightedGraph g1(8);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) {
      CAD_CHECK_OK(g1.SetEdge(i, j, 2.0));
      CAD_CHECK_OK(g1.SetEdge(i + 4, j + 4, 2.0));
    }
  }
  CAD_CHECK_OK(g1.SetEdge(0, 4, 0.2));
  WeightedGraph g2 = g1;
  if (merge) CAD_CHECK_OK(g2.SetEdge(1, 5, 3.0));
  TemporalGraphSequence seq(8);
  CAD_CHECK_OK(seq.Append(std::move(g1)));
  CAD_CHECK_OK(seq.Append(std::move(g2)));
  return seq;
}

TEST(ActDetectorTest, RejectsTooFewSnapshots) {
  TemporalGraphSequence seq(2);
  CAD_CHECK_OK(seq.Append(WeightedGraph(2)));
  EXPECT_FALSE(ActDetector().ScoreTransitions(seq).ok());
  EXPECT_FALSE(ActDetector().TransitionZScores(seq).ok());
}

TEST(ActDetectorTest, ActivityVectorsAreUnitNonNegative) {
  const TemporalGraphSequence seq = TwoCliqueSequence(true);
  auto activity = ActDetector().ActivityVectors(seq);
  ASSERT_TRUE(activity.ok());
  ASSERT_EQ(activity->size(), 2u);
  for (const std::vector<double>& a : *activity) {
    double norm_sq = 0.0;
    for (double v : a) {
      EXPECT_GE(v, 0.0);
      norm_sq += v * v;
    }
    EXPECT_NEAR(norm_sq, 1.0, 1e-8);
  }
}

TEST(ActDetectorTest, IdenticalSnapshotsScoreZero) {
  const TemporalGraphSequence seq = TwoCliqueSequence(false);
  auto scores = ActDetector().ScoreTransitions(seq);
  ASSERT_TRUE(scores.ok());
  for (double s : (*scores)[0]) EXPECT_LT(s, 1e-6);
  auto z = ActDetector().TransitionZScores(seq);
  ASSERT_TRUE(z.ok());
  EXPECT_LT((*z)[0], 1e-8);
}

TEST(ActDetectorTest, StructuralChangeRaisesZScore) {
  auto calm = ActDetector().TransitionZScores(TwoCliqueSequence(false));
  auto eventful = ActDetector().TransitionZScores(TwoCliqueSequence(true));
  ASSERT_TRUE(calm.ok());
  ASSERT_TRUE(eventful.ok());
  EXPECT_GT((*eventful)[0], (*calm)[0] + 1e-6);
}

TEST(ActDetectorTest, FlagsAffectedNodesNotJustResponsible) {
  // The known ACT failure mode (paper §3.4): when the r7-r8 bridge weakens,
  // ACT spreads score over the whole detached subgroup {r4, r6, r8, r9}.
  const ToyExample toy = MakeToyExample();
  auto scores = ActDetector().ScoreTransitions(toy.sequence);
  ASSERT_TRUE(scores.ok());
  const std::vector<double>& s = (*scores)[0];
  // Affected-but-innocent nodes receive a non-trivial share of the top score.
  const double top = *std::max_element(s.begin(), s.end());
  ASSERT_GT(top, 0.0);
  const double affected =
      std::max({s[ToyRed(4)], s[ToyRed(6)], s[ToyRed(9)]});
  EXPECT_GT(affected, 0.05 * top)
      << "expected ACT to assign meaningful score to affected nodes";
}

TEST(ActDetectorTest, WindowSummaryEqualsActivityForWindowOne) {
  const TemporalGraphSequence seq = TwoCliqueSequence(true);
  ActOptions options;
  options.window_size = 1;
  ActDetector detector(options);
  auto scores = detector.ScoreTransitions(seq);
  auto activity = detector.ActivityVectors(seq);
  ASSERT_TRUE(scores.ok());
  ASSERT_TRUE(activity.ok());
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR((*scores)[0][i],
                std::fabs((*activity)[1][i] - (*activity)[0][i]), 1e-9);
  }
}

TEST(ActDetectorTest, LargerWindowSmoothsSummary) {
  // Build a longer sequence: stable, stable, stable, then a merge event.
  WeightedGraph base(8);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) {
      CAD_CHECK_OK(base.SetEdge(i, j, 2.0));
      CAD_CHECK_OK(base.SetEdge(i + 4, j + 4, 2.0));
    }
  }
  CAD_CHECK_OK(base.SetEdge(0, 4, 0.2));
  WeightedGraph merged = base;
  CAD_CHECK_OK(merged.SetEdge(1, 5, 3.0));
  TemporalGraphSequence seq(8);
  for (int t = 0; t < 4; ++t) CAD_CHECK_OK(seq.Append(base));
  CAD_CHECK_OK(seq.Append(merged));

  ActOptions w3;
  w3.window_size = 3;
  auto z = ActDetector(w3).TransitionZScores(seq);
  ASSERT_TRUE(z.ok());
  ASSERT_EQ(z->size(), 4u);
  // Calm transitions near zero, the event transition clearly above.
  for (size_t t = 0; t < 3; ++t) EXPECT_LT((*z)[t], 1e-6);
  EXPECT_GT((*z)[3], 1e-4);
}

TEST(ActDetectorTest, HandlesEmptySnapshots) {
  TemporalGraphSequence seq(3);
  CAD_CHECK_OK(seq.Append(WeightedGraph(3)));
  CAD_CHECK_OK(seq.Append(WeightedGraph(3)));
  auto scores = ActDetector().ScoreTransitions(seq);
  ASSERT_TRUE(scores.ok());
  // Zero adjacency on both sides: no anomaly signal.
  for (double s : (*scores)[0]) EXPECT_EQ(s, 0.0);
}

TEST(ActDetectorTest, NameIsAct) { EXPECT_EQ(ActDetector().name(), "ACT"); }

}  // namespace
}  // namespace cad
