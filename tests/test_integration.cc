#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "core/act_detector.h"
#include "core/cad_detector.h"
#include "core/clc_detector.h"
#include "core/online_monitor.h"
#include "core/threshold.h"
#include "datagen/dblp_sim.h"
#include "datagen/enron_sim.h"
#include "datagen/precip_sim.h"
#include "datagen/synthetic_gmm.h"
#include "eval/roc.h"

namespace cad {
namespace {

/// Fig. 6's headline: on the GMM synthetic benchmark, CAD separates
/// anomalous nodes far better than ADJ / COM / ACT (paper AUCs:
/// 0.88 vs 0.53 / 0.51 / 0.53).
TEST(IntegrationTest, SyntheticBenchmarkCadBeatsBaselines) {
  std::map<std::string, double> auc_sums;
  const int kTrials = 3;
  for (int trial = 0; trial < kTrials; ++trial) {
    GmmBenchmarkOptions options;
    options.num_points = 200;
    options.seed = 100 + static_cast<uint64_t>(trial);
    const GmmBenchmarkInstance instance = MakeGmmBenchmark(options);

    CadOptions cad_options;
    cad_options.engine = CommuteEngine::kExact;
    CadDetector cad(cad_options);
    CadOptions adj_options = cad_options;
    adj_options.score_kind = EdgeScoreKind::kAdj;
    CadDetector adj(adj_options);
    CadOptions com_options = cad_options;
    com_options.score_kind = EdgeScoreKind::kCom;
    CadDetector com(com_options);
    ActDetector act;

    for (NodeScorer* scorer :
         std::vector<NodeScorer*>{&cad, &adj, &com, &act}) {
      auto scores = scorer->ScoreTransitions(instance.sequence);
      ASSERT_TRUE(scores.ok()) << scorer->name();
      auto auc = ComputeAuc((*scores)[0], instance.node_is_anomalous);
      ASSERT_TRUE(auc.ok()) << scorer->name();
      auc_sums[scorer->name()] += *auc;
    }
  }
  const double cad_auc = auc_sums["CAD"] / kTrials;
  const double adj_auc = auc_sums["ADJ"] / kTrials;
  const double com_auc = auc_sums["COM"] / kTrials;
  const double act_auc = auc_sums["ACT"] / kTrials;

  EXPECT_GT(cad_auc, 0.75) << "CAD should separate well";
  EXPECT_GT(cad_auc, adj_auc + 0.1);
  EXPECT_GT(cad_auc, com_auc + 0.1);
  EXPECT_GT(cad_auc, act_auc + 0.1);
}

/// Fig. 7 / §4.2.1's shape on the Enron-style simulation: with the global
/// threshold calibrated to l = 5, detections concentrate in the scripted
/// turmoil window, and the CEO-analogue is localized at the hub-burst
/// transition.
TEST(IntegrationTest, EnronStyleTimelineAndCeoLocalization) {
  EnronSimOptions options;
  options.num_employees = 120;
  const EnronSimData data = MakeEnronStyleData(options);

  CadOptions cad_options;
  cad_options.engine = CommuteEngine::kExact;
  CadDetector detector(cad_options);
  auto analyses = detector.Analyze(data.sequence);
  ASSERT_TRUE(analyses.ok());
  const double delta = CalibrateDelta(*analyses, 5.0);
  const std::vector<AnomalyReport> reports = ApplyThreshold(*analyses, delta);

  // Detection mass inside vs outside the event script: event transitions
  // must dominate (the Fig. 7 shape — tall dense bars in the turmoil
  // window, little in the calm opening).
  size_t event_detections = 0;
  size_t event_transitions = 0;
  size_t event_nodes = 0;
  size_t calm_nodes = 0;
  size_t calm_transitions = 0;
  for (const AnomalyReport& report : reports) {
    if (data.IsEventTransition(report.transition)) {
      ++event_transitions;
      event_nodes += report.nodes.size();
      if (!report.nodes.empty()) ++event_detections;
    } else if (report.transition < 10) {
      ++calm_transitions;
      calm_nodes += report.nodes.size();
    }
  }
  ASSERT_GT(event_transitions, 0u);
  ASSERT_GT(calm_transitions, 0u);
  // Most scripted event transitions are detected...
  EXPECT_GE(event_detections * 3, event_transitions * 2);
  // ...and the average flagged-node count at event transitions dwarfs the
  // calm opening's.
  const double event_mean = static_cast<double>(event_nodes) /
                            static_cast<double>(event_transitions);
  const double calm_mean = static_cast<double>(calm_nodes) /
                           static_cast<double>(calm_transitions);
  EXPECT_GT(event_mean, 3.0 * calm_mean + 1.0);

  // The CEO hub burst (onset transition 32) localizes the CEO.
  const AnomalyReport& burst = reports[32];
  EXPECT_NE(std::count(burst.nodes.begin(), burst.nodes.end(), data.ceo), 0)
      << "CEO not localized at the hub-burst transition";
}

/// §4.2.2's stories on the DBLP-style simulation: the field switch is the
/// top-ranked anomaly at its transition, its protagonist carries the top
/// node score, and its score exceeds the milder cross-area collaboration
/// (the paper's Rountev > Orlando severity ordering).
TEST(IntegrationTest, DblpStoriesRankedBySeverity) {
  DblpSimOptions options;
  options.num_authors = 320;
  const DblpSimData data = MakeDblpStyleData(options);

  CadOptions cad_options;
  cad_options.engine = CommuteEngine::kExact;
  CadDetector detector(cad_options);
  auto analyses = detector.Analyze(data.sequence);
  ASSERT_TRUE(analyses.ok());

  const CollaborationStory& field_switch = data.stories[0];
  const CollaborationStory& cross_area = data.stories[1];
  const TransitionScores& at_switch = (*analyses)[field_switch.transition];

  // Node-level: the field-switch protagonist has the highest node score.
  const std::vector<double>& node_scores = at_switch.node_scores;
  const auto top_node = static_cast<NodeId>(
      std::max_element(node_scores.begin(), node_scores.end()) -
      node_scores.begin());
  EXPECT_EQ(top_node, field_switch.author);

  // Severity ordering: protagonist of the full switch outranks the
  // cross-area collaborator.
  EXPECT_GT(node_scores[field_switch.author], node_scores[cross_area.author]);
  // But the cross-area collaborator still ranks highly (top 2%).
  size_t outranking = 0;
  for (double s : node_scores) {
    if (s > node_scores[cross_area.author]) ++outranking;
  }
  EXPECT_LE(outranking, node_scores.size() / 20);

  // The severed tie dominates its own transition.
  const CollaborationStory& severed = data.stories[2];
  const TransitionScores& at_severed = (*analyses)[severed.transition];
  EXPECT_EQ(at_severed.edges[0].pair,
            NodePair::Make(severed.author, severed.counterparts[0]));
}

/// §4.2's online-threshold note, end to end: streaming the organization
/// month by month must (a) reproduce the batch detector's transition scores
/// exactly, and (b) raise an alert naming the CEO at the hub-burst
/// transition, with the threshold calibrated purely from the past.
TEST(IntegrationTest, OnlineMonitorTracksBatchOnEnronStream) {
  EnronSimOptions options;
  options.num_employees = 100;
  options.num_months = 42;
  const EnronSimData data = MakeEnronStyleData(options);

  OnlineMonitorOptions monitor_options;
  monitor_options.detector.engine = CommuteEngine::kExact;
  monitor_options.nodes_per_transition = 5.0;
  monitor_options.warmup_transitions = 5;
  OnlineCadMonitor monitor(monitor_options);

  bool ceo_alerted = false;
  for (size_t month = 0; month < data.sequence.num_snapshots(); ++month) {
    auto report = monitor.Observe(data.sequence.Snapshot(month));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (!report->has_value()) continue;
    const AnomalyReport& alert = **report;
    if (alert.transition == 32 &&
        std::count(alert.nodes.begin(), alert.nodes.end(), data.ceo)) {
      ceo_alerted = true;
    }
  }
  EXPECT_TRUE(ceo_alerted) << "online monitor missed the CEO hub burst";

  // Score history identical to the batch pass.
  CadOptions batch_options;
  batch_options.engine = CommuteEngine::kExact;
  auto batch = CadDetector(batch_options).Analyze(data.sequence);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(monitor.history().size(), batch->size());
  for (size_t t = 0; t < batch->size(); ++t) {
    EXPECT_DOUBLE_EQ(monitor.history()[t].total_score,
                     (*batch)[t].total_score)
        << "transition " << t;
  }
}

/// §4.2.3's shape on the precipitation simulation: at the teleconnection
/// transition, the top anomalous edges disproportionately touch cells in
/// the coherently shifted regions.
TEST(IntegrationTest, PrecipitationEventLocalizesShiftedRegions) {
  PrecipSimOptions options;
  options.grid_width = 24;
  options.grid_height = 12;
  options.num_years = 8;
  options.event_year = 5;
  const PrecipSimData data = MakePrecipitationData(options);

  CadOptions cad_options;
  cad_options.engine = CommuteEngine::kExact;
  CadDetector detector(cad_options);
  auto analysis = detector.AnalyzeTransition(
      data.sequence.Snapshot(data.event_transition),
      data.sequence.Snapshot(data.event_transition + 1));
  ASSERT_TRUE(analysis.ok());

  // Of the 30 top-scored edges, most should touch a shifted-region cell.
  const size_t top_k = 30;
  ASSERT_GE(analysis->edges.size(), top_k);
  size_t touching = 0;
  for (size_t i = 0; i < top_k; ++i) {
    const NodePair pair = analysis->edges[i].pair;
    if (data.cell_in_shifted_region[pair.u] ||
        data.cell_in_shifted_region[pair.v]) {
      ++touching;
    }
  }
  // Shifted cells are a minority of the grid; require the top edges to be
  // clearly enriched (>= 2x the base rate) in shifted-region endpoints.
  size_t shifted_cells = 0;
  for (bool b : data.cell_in_shifted_region) shifted_cells += b ? 1 : 0;
  const double base_rate = static_cast<double>(shifted_cells) /
                           static_cast<double>(data.cell_in_shifted_region.size());
  EXPECT_LT(base_rate, 0.25);
  const double hit_rate = static_cast<double>(touching) /
                          static_cast<double>(top_k);
  EXPECT_GE(hit_rate, 2.0 * base_rate)
      << "only " << touching << " of top " << top_k
      << " edges touch shifted regions (base rate " << base_rate << ")";
}

}  // namespace
}  // namespace cad
