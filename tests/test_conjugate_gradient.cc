#include "linalg/conjugate_gradient.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/random_graphs.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"

namespace cad {
namespace {

CsrMatrix SpdTridiagonal(size_t n) {
  // 2 on the diagonal, -1 off-diagonal: SPD (discrete Laplacian + boundary).
  CooMatrix coo(n, n);
  for (size_t i = 0; i < n; ++i) {
    coo.Add(static_cast<uint32_t>(i), static_cast<uint32_t>(i), 2.0);
    if (i + 1 < n) {
      coo.AddSymmetric(static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1),
                       -1.0);
    }
  }
  return coo.ToCsr();
}

TEST(CgTest, SolvesIdentity) {
  CooMatrix coo(3, 3);
  for (uint32_t i = 0; i < 3; ++i) coo.Add(i, i, 1.0);
  std::vector<double> x;
  auto summary = ConjugateGradientSolver().Solve(coo.ToCsr(), {1, 2, 3}, &x);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->converged);
  EXPECT_LT(MaxAbsDifference(x, {1, 2, 3}), 1e-10);
}

TEST(CgTest, SolvesTridiagonal) {
  const CsrMatrix a = SpdTridiagonal(50);
  Rng rng(3);
  std::vector<double> x_true(50);
  for (double& v : x_true) v = rng.Normal();
  const std::vector<double> b = a.Multiply(x_true);
  std::vector<double> x;
  auto summary = ConjugateGradientSolver().Solve(a, b, &x);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->converged);
  EXPECT_LT(MaxAbsDifference(x, x_true), 1e-6);
}

TEST(CgTest, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = SpdTridiagonal(5);
  std::vector<double> x;
  auto summary = ConjugateGradientSolver().Solve(a, std::vector<double>(5), &x);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->converged);
  EXPECT_EQ(summary->iterations, 0u);
  EXPECT_EQ(MaxAbs(x), 0.0);
}

TEST(CgTest, ExactConvergenceInNSteps) {
  // CG converges in at most n iterations in exact arithmetic; allow slack.
  const CsrMatrix a = SpdTridiagonal(20);
  std::vector<double> b(20, 1.0);
  std::vector<double> x;
  auto summary = ConjugateGradientSolver().Solve(a, b, &x);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->converged);
  EXPECT_LE(summary->iterations, 25u);
}

TEST(CgTest, PreconditionerReducesIterationsOnIllScaledSystem) {
  // Diagonal entries spanning 6 orders of magnitude.
  const size_t n = 100;
  CooMatrix coo(n, n);
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    coo.Add(static_cast<uint32_t>(i), static_cast<uint32_t>(i),
            std::pow(10.0, rng.Uniform(-3.0, 3.0)));
    if (i + 1 < n) {
      coo.AddSymmetric(static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1),
                       1e-4);
    }
  }
  const CsrMatrix a = coo.ToCsr();
  std::vector<double> b(n, 1.0);

  CgOptions with_precond;
  with_precond.preconditioner = CgPreconditioner::kJacobi;
  CgOptions without_precond;
  without_precond.preconditioner = CgPreconditioner::kNone;
  std::vector<double> x;
  auto jac = ConjugateGradientSolver(with_precond).Solve(a, b, &x);
  auto plain = ConjugateGradientSolver(without_precond).Solve(a, b, &x);
  ASSERT_TRUE(jac.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(jac->converged);
  EXPECT_LT(jac->iterations, plain->iterations);
}

TEST(CgTest, LaplacianSystemWithBalancedRhs) {
  // Graph Laplacian is singular; with rhs orthogonal to 1 and a tiny
  // regularization the solve must converge.
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 2.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 1.0).ok());
  const CsrMatrix l = g.ToLaplacianCsr(1e-10);
  const std::vector<double> b = {1.0, -1.0, 1.0, -1.0};  // sums to zero
  std::vector<double> x;
  auto summary = ConjugateGradientSolver().Solve(l, b, &x);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->converged);
  const std::vector<double> residual = Subtract(l.Multiply(x), b);
  EXPECT_LT(Norm2(residual), 1e-6);
}

TEST(CgTest, RejectsNonSquare) {
  CsrMatrix a(2, 3);
  std::vector<double> x;
  EXPECT_FALSE(ConjugateGradientSolver().Solve(a, {1, 2}, &x).ok());
}

TEST(CgTest, RejectsSizeMismatch) {
  const CsrMatrix a = SpdTridiagonal(4);
  std::vector<double> x;
  EXPECT_FALSE(ConjugateGradientSolver().Solve(a, {1, 2}, &x).ok());
}

TEST(CgTest, DetectsIndefiniteMatrix) {
  // [[1, 2], [2, 1]] has a negative eigenvalue; CG must flag the breakdown.
  CooMatrix coo(2, 2);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 1, 1.0);
  coo.AddSymmetric(0, 1, 2.0);
  std::vector<double> x;
  CgOptions options;
  options.preconditioner = CgPreconditioner::kNone;
  auto summary =
      ConjugateGradientSolver(options).Solve(coo.ToCsr(), {1.0, -3.0}, &x);
  EXPECT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kNumericalError);
}

TEST(CgTest, IterationCapReportsNonConvergence) {
  const CsrMatrix a = SpdTridiagonal(200);
  std::vector<double> b(200, 1.0);
  CgOptions options;
  options.max_iterations = 2;
  options.tolerance = 1e-14;
  std::vector<double> x;
  auto summary = ConjugateGradientSolver(options).Solve(a, b, &x);
  ASSERT_TRUE(summary.ok());
  EXPECT_FALSE(summary->converged);
  EXPECT_EQ(summary->iterations, 2u);
}

/// Parameterized: random-graph Laplacian solves across sizes converge and
/// achieve the requested residual.
class CgLaplacianSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CgLaplacianSweep, ConvergesOnGraphLaplacians) {
  RandomGraphOptions opts;
  opts.num_nodes = GetParam();
  opts.average_degree = 6.0;
  opts.seed = 900 + GetParam();
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  const double eps = 1e-8 * std::max(g.Volume(), 1.0);
  const CsrMatrix l = g.ToLaplacianCsr(eps);

  // Balanced rhs: difference of two indicator vectors.
  std::vector<double> b(opts.num_nodes, 0.0);
  b[0] = 1.0;
  b[opts.num_nodes - 1] = -1.0;
  std::vector<double> x;
  auto summary = ConjugateGradientSolver().Solve(l, b, &x);
  ASSERT_TRUE(summary.ok());
  EXPECT_LE(summary->relative_residual, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgLaplacianSweep,
                         ::testing::Values(10, 50, 200, 1000));

TEST(CgWarmStartTest, ExactGuessConvergesInZeroIterations) {
  const CsrMatrix a = SpdTridiagonal(40);
  Rng rng(11);
  std::vector<double> x_true(40);
  for (double& v : x_true) v = rng.Normal();
  const std::vector<double> b = a.Multiply(x_true);
  std::vector<double> x;
  auto summary = ConjugateGradientSolver().Solve(a, b, x_true, &x);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->converged);
  EXPECT_EQ(summary->iterations, 0u);
  EXPECT_LT(MaxAbsDifference(x, x_true), 1e-12);
}

TEST(CgWarmStartTest, NearbyGuessReducesIterations) {
  const CsrMatrix a = SpdTridiagonal(200);
  Rng rng(12);
  std::vector<double> x_true(200);
  for (double& v : x_true) v = rng.Normal();
  const std::vector<double> b = a.Multiply(x_true);

  std::vector<double> x_cold;
  auto cold = ConjugateGradientSolver().Solve(a, b, &x_cold);
  ASSERT_TRUE(cold.ok());

  // Perturb the true solution slightly: a much better start than zero.
  std::vector<double> guess = x_true;
  for (double& v : guess) v += 1e-4 * rng.Normal();
  std::vector<double> x_warm;
  auto warm = ConjugateGradientSolver().Solve(a, b, guess, &x_warm);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->converged);
  EXPECT_LT(warm->iterations, cold->iterations);
  // The residual target is 1e-8 relative; the solution error is amplified
  // by the tridiagonal system's O(n^2) condition number.
  EXPECT_LT(MaxAbsDifference(x_warm, x_true), 1e-4);
}

TEST(CgWarmStartTest, PoorGuessStillConverges) {
  const CsrMatrix a = SpdTridiagonal(60);
  Rng rng(13);
  std::vector<double> x_true(60);
  for (double& v : x_true) v = rng.Normal();
  const std::vector<double> b = a.Multiply(x_true);
  std::vector<double> guess(60);
  for (double& v : guess) v = 100.0 * rng.Normal();
  std::vector<double> x;
  auto summary = ConjugateGradientSolver().Solve(a, b, guess, &x);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->converged);
  EXPECT_LT(MaxAbsDifference(x, x_true), 1e-6);
}

TEST(CgWarmStartTest, ZeroRhsIgnoresGuess) {
  // The b = 0 contract (x = 0, converged, 0 iterations) must hold even when
  // a nonzero guess is supplied.
  const CsrMatrix a = SpdTridiagonal(8);
  std::vector<double> x;
  auto summary = ConjugateGradientSolver().Solve(
      a, std::vector<double>(8), std::vector<double>(8, 5.0), &x);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary->converged);
  EXPECT_EQ(summary->iterations, 0u);
  EXPECT_EQ(MaxAbs(x), 0.0);
}

TEST(CgWarmStartTest, ZeroGuessMatchesColdStartBitwise) {
  const CsrMatrix a = SpdTridiagonal(50);
  Rng rng(14);
  std::vector<double> b(50);
  for (double& v : b) v = rng.Normal();
  std::vector<double> x_cold;
  std::vector<double> x_zero_guess;
  auto cold = ConjugateGradientSolver().Solve(a, b, &x_cold);
  auto warm = ConjugateGradientSolver().Solve(a, b, std::vector<double>(50),
                                              &x_zero_guess);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cold->iterations, warm->iterations);
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(x_cold[i], x_zero_guess[i]) << "component " << i;
  }
}

TEST(CgWarmStartTest, RejectsGuessSizeMismatch) {
  const CsrMatrix a = SpdTridiagonal(4);
  std::vector<double> x;
  EXPECT_FALSE(ConjugateGradientSolver()
                   .Solve(a, {1, 2, 3, 4}, {1.0, 2.0}, &x)
                   .ok());
}

TEST(SummarizeCgBatchTest, AggregatesMinMaxTotalAndResidual) {
  std::vector<CgSummary> summaries(3);
  summaries[0] = {.iterations = 7, .relative_residual = 1e-9, .converged = true};
  summaries[1] = {.iterations = 3, .relative_residual = 5e-9, .converged = true};
  summaries[2] = {.iterations = 12, .relative_residual = 2e-3,
                  .converged = false};
  const CgBatchStats stats = SummarizeCgBatch(summaries);
  EXPECT_EQ(stats.num_systems, 3u);
  EXPECT_EQ(stats.num_converged, 2u);
  EXPECT_EQ(stats.min_iterations, 3u);
  EXPECT_EQ(stats.max_iterations, 12u);
  EXPECT_EQ(stats.total_iterations, 22u);
  EXPECT_DOUBLE_EQ(stats.max_relative_residual, 2e-3);
}

TEST(SummarizeCgBatchTest, EmptyBatchIsAllZero) {
  const CgBatchStats stats = SummarizeCgBatch({});
  EXPECT_EQ(stats.num_systems, 0u);
  EXPECT_EQ(stats.num_converged, 0u);
  EXPECT_EQ(stats.min_iterations, 0u);
  EXPECT_EQ(stats.max_iterations, 0u);
  EXPECT_EQ(stats.total_iterations, 0u);
}

TEST(SummarizeCgBatchTest, ZeroIterationFirstSummaryIsAValidMin) {
  // A zero-rhs system converges in 0 iterations; the min must track it even
  // though it is the first element.
  std::vector<CgSummary> summaries(2);
  summaries[0] = {.iterations = 0, .relative_residual = 0.0, .converged = true};
  summaries[1] = {.iterations = 5, .relative_residual = 1e-9, .converged = true};
  const CgBatchStats stats = SummarizeCgBatch(summaries);
  EXPECT_EQ(stats.min_iterations, 0u);
  EXPECT_EQ(stats.max_iterations, 5u);
  EXPECT_EQ(stats.total_iterations, 5u);
}

TEST(SummarizeCgBatchTest, SolveManyBatchesAreRunToRunDeterministic) {
  // Two identical SolveMany batches must report identical iteration stats
  // (each solve's arithmetic is sequential, so iteration counts depend only
  // on the system/rhs/options tuple).
  RandomGraphOptions opts;
  opts.num_nodes = 80;
  opts.average_degree = 6.0;
  opts.seed = 4242;
  const WeightedGraph g = MakeRandomSparseGraph(opts);
  const CsrMatrix l = g.ToLaplacianCsr(1e-6 * std::max(g.Volume(), 1.0));
  std::vector<std::vector<double>> rhs(4,
                                       std::vector<double>(opts.num_nodes, 0.0));
  for (size_t j = 0; j < rhs.size(); ++j) {
    rhs[j][j] = 1.0;
    rhs[j][opts.num_nodes - 1 - j] = -1.0;
  }
  CgOptions options;
  options.num_threads = 4;
  const ConjugateGradientSolver solver(options);

  std::vector<std::vector<double>> x1;
  std::vector<std::vector<double>> x2;
  Result<std::vector<CgSummary>> first = solver.SolveMany(l, rhs, &x1);
  Result<std::vector<CgSummary>> second = solver.SolveMany(l, rhs, &x2);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const CgBatchStats stats1 = SummarizeCgBatch(*first);
  const CgBatchStats stats2 = SummarizeCgBatch(*second);
  EXPECT_EQ(stats1.num_systems, stats2.num_systems);
  EXPECT_EQ(stats1.num_converged, stats2.num_converged);
  EXPECT_EQ(stats1.min_iterations, stats2.min_iterations);
  EXPECT_EQ(stats1.max_iterations, stats2.max_iterations);
  EXPECT_EQ(stats1.total_iterations, stats2.total_iterations);
  EXPECT_EQ(stats1.max_relative_residual, stats2.max_relative_residual);
  EXPECT_GT(stats1.total_iterations, 0u);
}

}  // namespace
}  // namespace cad
