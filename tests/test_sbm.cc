#include "datagen/sbm.h"

#include <gtest/gtest.h>

#include "graph/components.h"

namespace cad {
namespace {

TEST(SbmTest, ShapeAndBlockAssignment) {
  SbmOptions options;
  options.num_nodes = 200;
  options.num_blocks = 4;
  const SbmGraph sbm = MakeStochasticBlockModel(options);
  EXPECT_EQ(sbm.graph.num_nodes(), 200u);
  ASSERT_EQ(sbm.block.size(), 200u);
  // Contiguous near-equal blocks of 50.
  std::vector<int> counts(4, 0);
  for (uint32_t b : sbm.block) {
    ASSERT_LT(b, 4u);
    ++counts[b];
  }
  for (int count : counts) EXPECT_EQ(count, 50);
  EXPECT_EQ(sbm.block[0], 0u);
  EXPECT_EQ(sbm.block[199], 3u);
}

TEST(SbmTest, EdgeCountsMatchProbabilities) {
  SbmOptions options;
  options.num_nodes = 600;
  options.num_blocks = 3;
  options.intra_block_prob = 0.05;
  options.inter_block_prob = 0.002;
  options.seed = 3;
  const SbmGraph sbm = MakeStochasticBlockModel(options);

  size_t intra = 0;
  size_t inter = 0;
  for (const Edge& e : sbm.graph.Edges()) {
    (sbm.block[e.u] == sbm.block[e.v] ? intra : inter) += 1;
  }
  // Expected intra: 3 blocks * C(200,2) * 0.05 = 2985; inter: 3 rectangles
  // * 200*200 * 0.002 = 240. Allow 4-sigma-ish slack.
  EXPECT_NEAR(static_cast<double>(intra), 2985.0, 250.0);
  EXPECT_NEAR(static_cast<double>(inter), 240.0, 70.0);
}

TEST(SbmTest, WeightsInRange) {
  SbmOptions options;
  options.num_nodes = 100;
  options.min_weight = 2.0;
  options.max_weight = 2.5;
  const SbmGraph sbm = MakeStochasticBlockModel(options);
  for (const Edge& e : sbm.graph.Edges()) {
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LT(e.weight, 2.5);
  }
}

TEST(SbmTest, DeterministicGivenSeed) {
  SbmOptions options;
  options.seed = 77;
  EXPECT_TRUE(MakeStochasticBlockModel(options).graph ==
              MakeStochasticBlockModel(options).graph);
  SbmOptions other = options;
  other.seed = 78;
  EXPECT_FALSE(MakeStochasticBlockModel(options).graph ==
               MakeStochasticBlockModel(other).graph);
}

TEST(SbmTest, ExtremeProbabilities) {
  SbmOptions zero;
  zero.num_nodes = 50;
  zero.intra_block_prob = 0.0;
  zero.inter_block_prob = 0.0;
  EXPECT_EQ(MakeStochasticBlockModel(zero).graph.num_edges(), 0u);

  SbmOptions ones;
  ones.num_nodes = 20;
  ones.num_blocks = 2;
  ones.intra_block_prob = 1.0;
  ones.inter_block_prob = 1.0;
  // Complete graph: C(20,2) edges.
  EXPECT_EQ(MakeStochasticBlockModel(ones).graph.num_edges(), 190u);
}

TEST(SbmTest, NoSelfLoopsOrDuplicates) {
  SbmOptions options;
  options.num_nodes = 120;
  options.intra_block_prob = 0.3;
  options.inter_block_prob = 0.1;
  const SbmGraph sbm = MakeStochasticBlockModel(options);
  for (const Edge& e : sbm.graph.Edges()) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LT(e.u, e.v);  // canonical orientation implies no duplicates
  }
}

TEST(SbmTest, DenseBlocksFormConnectedCommunities) {
  SbmOptions options;
  options.num_nodes = 200;
  options.num_blocks = 2;
  options.intra_block_prob = 0.2;
  options.inter_block_prob = 0.0;
  const SbmGraph sbm = MakeStochasticBlockModel(options);
  const ComponentLabeling labeling = ConnectedComponents(sbm.graph);
  // With p=0.2 over 100 nodes, each block is connected whp; no cross edges.
  EXPECT_EQ(labeling.num_components, 2u);
  EXPECT_FALSE(labeling.SameComponent(0, 199));
}

TEST(SbmTest, SingleBlockIsErdosRenyi) {
  SbmOptions options;
  options.num_nodes = 300;
  options.num_blocks = 1;
  options.intra_block_prob = 0.04;
  options.seed = 12;
  const SbmGraph sbm = MakeStochasticBlockModel(options);
  // Expected C(300,2) * 0.04 = 1794.
  EXPECT_NEAR(static_cast<double>(sbm.graph.num_edges()), 1794.0, 180.0);
}

}  // namespace
}  // namespace cad
