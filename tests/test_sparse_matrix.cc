#include "linalg/sparse_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cad {
namespace {

CsrMatrix SmallCsr() {
  // [[1, 0, 2],
  //  [0, 0, 3],
  //  [4, 5, 0]]
  CooMatrix coo(3, 3);
  coo.Add(0, 0, 1.0);
  coo.Add(0, 2, 2.0);
  coo.Add(1, 2, 3.0);
  coo.Add(2, 0, 4.0);
  coo.Add(2, 1, 5.0);
  return coo.ToCsr();
}

TEST(CooMatrixTest, TracksNnz) {
  CooMatrix coo(2, 2);
  EXPECT_EQ(coo.nnz(), 0u);
  coo.Add(0, 1, 1.0);
  coo.AddSymmetric(0, 1, 2.0);
  EXPECT_EQ(coo.nnz(), 3u);
}

TEST(CooMatrixTest, AddSymmetricOnDiagonalAddsOnce) {
  CooMatrix coo(2, 2);
  coo.AddSymmetric(1, 1, 3.0);
  EXPECT_EQ(coo.nnz(), 1u);
  EXPECT_EQ(coo.ToCsr().At(1, 1), 3.0);
}

TEST(CooToCsrTest, SumsDuplicates) {
  CooMatrix coo(2, 2);
  coo.Add(0, 1, 1.0);
  coo.Add(0, 1, 2.5);
  const CsrMatrix csr = coo.ToCsr();
  EXPECT_EQ(csr.nnz(), 1u);
  EXPECT_DOUBLE_EQ(csr.At(0, 1), 3.5);
}

TEST(CooToCsrTest, SortsColumnsWithinRows) {
  CooMatrix coo(1, 4);
  coo.Add(0, 3, 1.0);
  coo.Add(0, 0, 2.0);
  coo.Add(0, 2, 3.0);
  const CsrMatrix csr = coo.ToCsr();
  EXPECT_EQ(csr.col_indices(), (std::vector<uint32_t>{0, 2, 3}));
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix m(3, 3);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.At(1, 2), 0.0);
  const std::vector<double> y = m.Multiply(std::vector<double>{1, 2, 3});
  EXPECT_EQ(y, (std::vector<double>{0, 0, 0}));
}

TEST(CsrMatrixTest, At) {
  const CsrMatrix m = SmallCsr();
  EXPECT_EQ(m.At(0, 0), 1.0);
  EXPECT_EQ(m.At(0, 1), 0.0);
  EXPECT_EQ(m.At(2, 1), 5.0);
}

TEST(CsrMatrixTest, Multiply) {
  const CsrMatrix m = SmallCsr();
  const std::vector<double> y = m.Multiply({1, 2, 3});
  EXPECT_EQ(y, (std::vector<double>{7, 9, 14}));
}

TEST(CsrMatrixTest, MultiplyAccumulateScalesAndAdds) {
  const CsrMatrix m = SmallCsr();
  std::vector<double> y = {1, 1, 1};
  m.MultiplyAccumulate(2.0, {1, 0, 0}, &y);
  EXPECT_EQ(y, (std::vector<double>{3, 1, 9}));
}

TEST(CsrMatrixTest, Transpose) {
  const CsrMatrix t = SmallCsr().Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.At(2, 0), 2.0);
  EXPECT_EQ(t.At(0, 2), 4.0);
  EXPECT_EQ(t.At(1, 2), 5.0);
  EXPECT_EQ(t.nnz(), 5u);
}

TEST(CsrMatrixTest, TransposeTwiceIsIdentity) {
  const CsrMatrix m = SmallCsr();
  const CsrMatrix tt = m.Transpose().Transpose();
  EXPECT_EQ(tt.ToDense().MaxAbsDifference(m.ToDense()), 0.0);
}

TEST(CsrMatrixTest, Pruned) {
  CooMatrix coo(2, 2);
  coo.Add(0, 0, 1e-12);
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, -1e-12);
  const CsrMatrix pruned = coo.ToCsr().Pruned(1e-9);
  EXPECT_EQ(pruned.nnz(), 1u);
  EXPECT_EQ(pruned.At(0, 1), 1.0);
}

TEST(CsrMatrixTest, PrunedDropsExactZeros) {
  CooMatrix coo(1, 2);
  coo.Add(0, 0, 1.0);
  coo.Add(0, 0, -1.0);  // sums to zero
  coo.Add(0, 1, 2.0);
  const CsrMatrix csr = coo.ToCsr();
  EXPECT_EQ(csr.nnz(), 2u);
  EXPECT_EQ(csr.Pruned().nnz(), 1u);
}

TEST(CsrMatrixTest, DiagonalAndRowSums) {
  const CsrMatrix m = SmallCsr();
  EXPECT_EQ(m.Diagonal(), (std::vector<double>{1, 0, 0}));
  EXPECT_EQ(m.RowSums(), (std::vector<double>{3, 3, 9}));
  EXPECT_DOUBLE_EQ(m.TotalSum(), 15.0);
}

TEST(CsrMatrixTest, IsSymmetric) {
  CooMatrix coo(2, 2);
  coo.AddSymmetric(0, 1, 2.0);
  coo.Add(0, 0, 1.0);
  EXPECT_TRUE(coo.ToCsr().IsSymmetric());
  EXPECT_FALSE(SmallCsr().IsSymmetric());
}

TEST(CsrMatrixTest, ToDense) {
  const DenseMatrix dense = SmallCsr().ToDense();
  EXPECT_EQ(dense(2, 1), 5.0);
  EXPECT_EQ(dense(1, 1), 0.0);
}

TEST(CsrMatrixTest, RawConstructorValidatesShape) {
  // Valid construction.
  CsrMatrix m(2, 2, {0, 1, 2}, {1, 0}, {5.0, 6.0});
  EXPECT_EQ(m.At(0, 1), 5.0);
  EXPECT_EQ(m.At(1, 0), 6.0);
}

TEST(CsrMatrixTest, DenseMatvecAgreesWithSparse) {
  Rng rng(1);
  CooMatrix coo(20, 20);
  for (int e = 0; e < 60; ++e) {
    coo.Add(static_cast<uint32_t>(rng.UniformInt(20)),
            static_cast<uint32_t>(rng.UniformInt(20)), rng.Normal());
  }
  const CsrMatrix sparse = coo.ToCsr();
  const DenseMatrix dense = sparse.ToDense();
  std::vector<double> x(20);
  for (double& v : x) v = rng.Normal();
  const std::vector<double> ys = sparse.Multiply(x);
  const std::vector<double> yd = dense.Multiply(x);
  for (size_t i = 0; i < 20; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

}  // namespace
}  // namespace cad
