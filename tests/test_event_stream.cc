#include "io/event_stream.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace cad {
namespace {

TimestampedEvent Event(NodeId u, NodeId v, double t, double w = 1.0) {
  TimestampedEvent event;
  event.u = u;
  event.v = v;
  event.timestamp = t;
  event.weight = w;
  return event;
}

TEST(AggregateEventStreamTest, BucketsByWindow) {
  const std::vector<TimestampedEvent> events = {
      Event(0, 1, 0.0), Event(0, 1, 0.5), Event(1, 2, 1.2), Event(0, 2, 2.9)};
  EventAggregationOptions options;
  options.window_length = 1.0;
  auto sequence = AggregateEventStream(events, options);
  ASSERT_TRUE(sequence.ok());
  ASSERT_EQ(sequence->num_snapshots(), 3u);
  EXPECT_EQ(sequence->num_nodes(), 3u);
  EXPECT_EQ(sequence->Snapshot(0).EdgeWeight(0, 1), 2.0);  // two events
  EXPECT_EQ(sequence->Snapshot(1).EdgeWeight(1, 2), 1.0);
  EXPECT_EQ(sequence->Snapshot(2).EdgeWeight(0, 2), 1.0);
}

TEST(AggregateEventStreamTest, CustomWeightsAccumulate) {
  const std::vector<TimestampedEvent> events = {Event(0, 1, 0.0, 2.5),
                                                Event(1, 0, 0.1, 1.5)};
  EventAggregationOptions options;
  options.window_length = 1.0;
  auto sequence = AggregateEventStream(events, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->Snapshot(0).EdgeWeight(0, 1), 4.0);  // undirected sum
}

TEST(AggregateEventStreamTest, ExplicitStartDropsEarlierEvents) {
  const std::vector<TimestampedEvent> events = {Event(0, 1, 5.0),
                                                Event(0, 1, 15.0)};
  EventAggregationOptions options;
  options.window_length = 10.0;
  options.start_time = 10.0;
  options.num_windows = 1;
  options.num_nodes = 4;
  auto sequence = AggregateEventStream(events, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->num_snapshots(), 1u);
  EXPECT_EQ(sequence->num_nodes(), 4u);
  EXPECT_EQ(sequence->Snapshot(0).EdgeWeight(0, 1), 1.0);  // only t=15
}

TEST(AggregateEventStreamTest, EventsPastConfiguredWindowsDropped) {
  const std::vector<TimestampedEvent> events = {Event(0, 1, 0.0),
                                                Event(0, 1, 99.0)};
  EventAggregationOptions options;
  options.window_length = 1.0;
  options.num_windows = 2;
  auto sequence = AggregateEventStream(events, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->num_snapshots(), 2u);
  EXPECT_EQ(sequence->Snapshot(0).EdgeWeight(0, 1), 1.0);
  EXPECT_EQ(sequence->Snapshot(1).num_edges(), 0u);
}

TEST(AggregateEventStreamTest, EmptyStream) {
  EventAggregationOptions options;
  options.window_length = 1.0;
  options.num_nodes = 5;
  auto sequence = AggregateEventStream({}, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->num_snapshots(), 1u);
  EXPECT_EQ(sequence->num_nodes(), 5u);
}

TEST(AggregateEventStreamTest, RejectsBadInput) {
  EventAggregationOptions options;
  options.window_length = 0.0;
  EXPECT_FALSE(AggregateEventStream({}, options).ok());

  options.window_length = 1.0;
  EXPECT_FALSE(AggregateEventStream({Event(1, 1, 0.0)}, options).ok());

  options.num_nodes = 2;
  EXPECT_FALSE(AggregateEventStream({Event(0, 5, 0.0)}, options).ok());

  EventAggregationOptions plain;
  plain.window_length = 1.0;
  TimestampedEvent bad = Event(0, 1, 0.0);
  bad.weight = -1.0;
  EXPECT_FALSE(AggregateEventStream({bad}, plain).ok());
}

TEST(ReadEventStreamTest, ParsesFormats) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "0 1 10.5\n"
      "2  3   11.0  2.5\n");
  auto events = ReadEventStream(&in);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].u, 0u);
  EXPECT_EQ((*events)[0].v, 1u);
  EXPECT_DOUBLE_EQ((*events)[0].timestamp, 10.5);
  EXPECT_DOUBLE_EQ((*events)[0].weight, 1.0);
  EXPECT_DOUBLE_EQ((*events)[1].weight, 2.5);
}

TEST(ReadEventStreamTest, RejectsMalformedLines) {
  std::istringstream missing("0 1\n");
  EXPECT_FALSE(ReadEventStream(&missing).ok());
  std::istringstream garbage("a b c\n");
  EXPECT_FALSE(ReadEventStream(&garbage).ok());
  std::istringstream negative("-1 2 3.0\n");
  EXPECT_FALSE(ReadEventStream(&negative).ok());
  std::istringstream extra("0 1 2.0 3.0 4.0\n");
  EXPECT_FALSE(ReadEventStream(&extra).ok());
}

TEST(ReadEventStreamTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/events.txt";
  {
    std::ofstream out(path);
    out << "0 1 0.0\n0 1 1.5\n1 2 2.5 4.0\n";
  }
  auto events = ReadEventStreamFile(path);
  ASSERT_TRUE(events.ok());
  EventAggregationOptions options;
  options.window_length = 2.0;
  auto sequence = AggregateEventStream(*events, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->num_snapshots(), 2u);
  EXPECT_EQ(sequence->Snapshot(0).EdgeWeight(0, 1), 2.0);
  EXPECT_EQ(sequence->Snapshot(1).EdgeWeight(1, 2), 4.0);
  std::remove(path.c_str());
}

TEST(ReadEventStreamTest, MissingFile) {
  EXPECT_EQ(ReadEventStreamFile("/nonexistent/events.txt").status().code(),
            StatusCode::kIoError);
}

// Regression: with an explicit start_time past every event and derived
// num_windows, the span (last - start) is negative; the old code cast it to
// size_t, wrapping to ~2^64 windows. Must degrade to a single empty window.
TEST(AggregateEventStreamTest, StartAfterAllEventsDoesNotWrapWindowCount) {
  const std::vector<TimestampedEvent> events = {Event(0, 1, 0.0),
                                                Event(0, 1, 2.0)};
  EventAggregationOptions options;
  options.window_length = 1.0;
  options.start_time = 100.0;
  auto sequence = AggregateEventStream(events, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->num_snapshots(), 1u);
  EXPECT_EQ(sequence->Snapshot(0).num_edges(), 0u);
}

TEST(AggregateEventStreamTest, NonFiniteStartTimeRejected) {
  EventAggregationOptions options;
  options.window_length = 1.0;
  options.start_time = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AggregateEventStream({Event(0, 1, 0.0)}, options).ok());
}

TEST(AggregateEventStreamTest, AbsurdDerivedWindowCountRejected) {
  // A tiny window over a huge span must be reported, not allocated.
  const std::vector<TimestampedEvent> events = {Event(0, 1, 0.0),
                                                Event(0, 1, 2.0e12)};
  EventAggregationOptions options;
  options.window_length = 1.0;
  EXPECT_EQ(AggregateEventStream(events, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EventStreamReaderTest, ReadsEventsIncrementally) {
  std::istringstream in(
      "# header comment\n"
      "0 1 0.5\n"
      "\n"
      "2\t3\t1.5\t2.0\n");  // tabs are separators too
  EventStreamReader reader(&in);
  auto first = reader.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((*first)->u, 0u);
  EXPECT_EQ(reader.line_number(), 2u);
  auto second = reader.Next();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ((*second)->v, 3u);
  EXPECT_DOUBLE_EQ((*second)->weight, 2.0);
  auto end = reader.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST(EventStreamReaderTest, StrictPolicyReportsLineNumber) {
  std::istringstream in("0 1 0.5\nnot an event\n");
  EventStreamReader reader(&in);
  ASSERT_TRUE(reader.Next().ok());
  auto bad = reader.Next();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().ToString().find("line 2"), std::string::npos);
  EXPECT_EQ(reader.line_number(), 2u);
}

TEST(EventStreamReaderTest, SkipPolicyCountsRejectedRecords) {
  std::istringstream in(
      "0 1 0.5\n"
      "garbage line\n"
      "0 1\n"
      "2 3 1.5 2.0\n"
      "4 5 nan\n"
      "6 7 2.0 -1.0\n"
      "8 9 3.0\n");
  EventStreamReader reader(&in, EventErrorPolicy::kSkip);
  std::vector<TimestampedEvent> events;
  while (true) {
    auto next = reader.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    events.push_back(**next);
  }
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].v, 3u);
  EXPECT_EQ(events[2].u, 8u);
  EXPECT_EQ(reader.events_rejected(), 4u);
}

TEST(EventStreamReaderTest, RejectsNonFiniteFields) {
  for (const char* line : {"0 1 inf\n", "0 1 nan\n", "0 1 1.0 inf\n",
                           "0 1 1.0 nan\n", "0 1 1.0 -2.0\n"}) {
    std::istringstream in(line);
    EventStreamReader reader(&in);
    EXPECT_FALSE(reader.Next().ok()) << line;
  }
}

TEST(ReadEventStreamTest, SkipOverloadReportsRejectedCount) {
  std::istringstream in("0 1 0.5\nbogus\n2 3 1.5\n");
  size_t rejected = 0;
  auto events = ReadEventStream(&in, EventErrorPolicy::kSkip, &rejected);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 2u);
  EXPECT_EQ(rejected, 1u);
}

TEST(EventWindowAggregatorTest, CreateValidatesOptions) {
  EventWindowOptions options;
  options.num_nodes = 4;
  options.window_length = 0.0;
  EXPECT_FALSE(EventWindowAggregator::Create(options).ok());
  options.window_length = 1.0;
  options.start_time = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(EventWindowAggregator::Create(options).ok());
  options.start_time = 0.0;
  options.num_nodes = 0;
  EXPECT_FALSE(EventWindowAggregator::Create(options).ok());
  options.num_nodes = 4;
  EXPECT_TRUE(EventWindowAggregator::Create(options).ok());
}

TEST(EventWindowAggregatorTest, MatchesBatchAggregation) {
  const std::vector<TimestampedEvent> events = {
      Event(0, 1, 0.0),       Event(0, 1, 0.5, 2.0), Event(1, 2, 1.2),
      Event(0, 2, 2.9),       Event(2, 3, 6.1),  // windows 3-5 are empty
      Event(0, 3, 6.2, 0.5)};
  EventAggregationOptions batch_options;
  batch_options.window_length = 1.0;
  batch_options.start_time = 0.0;
  batch_options.num_nodes = 4;
  auto batch = AggregateEventStream(events, batch_options);
  ASSERT_TRUE(batch.ok());

  EventWindowOptions stream_options;
  stream_options.window_length = 1.0;
  stream_options.start_time = 0.0;
  stream_options.num_nodes = 4;
  auto aggregator = EventWindowAggregator::Create(stream_options);
  ASSERT_TRUE(aggregator.ok());
  std::vector<WeightedGraph> snapshots;
  std::vector<WeightedGraph> completed;
  for (const TimestampedEvent& event : events) {
    completed.clear();
    ASSERT_TRUE(aggregator->Add(event, &completed).ok());
    for (WeightedGraph& snapshot : completed) {
      snapshots.push_back(std::move(snapshot));
    }
  }
  snapshots.push_back(aggregator->Flush());

  ASSERT_EQ(snapshots.size(), batch->num_snapshots());
  for (size_t t = 0; t < snapshots.size(); ++t) {
    EXPECT_TRUE(snapshots[t] == batch->Snapshot(t)) << "window " << t;
  }
}

TEST(EventWindowAggregatorTest, EmitsEmptyWindowsForQuietPeriods) {
  EventWindowOptions options;
  options.window_length = 1.0;
  options.num_nodes = 3;
  auto aggregator = EventWindowAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok());
  std::vector<WeightedGraph> completed;
  ASSERT_TRUE(aggregator->Add(Event(0, 1, 0.5), &completed).ok());
  EXPECT_TRUE(completed.empty());
  ASSERT_TRUE(aggregator->Add(Event(1, 2, 3.5), &completed).ok());
  ASSERT_EQ(completed.size(), 3u);  // windows 0, 1, 2 close
  EXPECT_EQ(completed[0].EdgeWeight(0, 1), 1.0);
  EXPECT_EQ(completed[1].num_edges(), 0u);
  EXPECT_EQ(completed[2].num_edges(), 0u);
  EXPECT_EQ(aggregator->current_window(), 3u);
}

TEST(EventWindowAggregatorTest, RejectsOutOfOrderAndMalformedEvents) {
  EventWindowOptions options;
  options.window_length = 1.0;
  options.num_nodes = 4;
  auto aggregator = EventWindowAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok());
  std::vector<WeightedGraph> completed;
  ASSERT_TRUE(aggregator->Add(Event(0, 1, 5.5), &completed).ok());
  // An event whose window already closed is rejected without side effects.
  EXPECT_FALSE(aggregator->Add(Event(0, 1, 0.5), &completed).ok());
  // Self-loops, out-of-range endpoints, bad weights.
  EXPECT_FALSE(aggregator->Add(Event(2, 2, 5.6), &completed).ok());
  EXPECT_FALSE(aggregator->Add(Event(0, 9, 5.6), &completed).ok());
  TimestampedEvent bad = Event(0, 1, 5.6);
  bad.weight = -1.0;
  EXPECT_FALSE(aggregator->Add(bad, &completed).ok());
  // The open window is still usable afterwards.
  ASSERT_TRUE(aggregator->Add(Event(0, 1, 5.9), &completed).ok());
  EXPECT_EQ(aggregator->Flush().EdgeWeight(0, 1), 2.0);
}

TEST(EventWindowAggregatorTest, FirstWindowSupportsResumption) {
  EventWindowOptions options;
  options.window_length = 1.0;
  options.num_nodes = 3;
  options.first_window = 2;
  auto aggregator = EventWindowAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok());
  EXPECT_EQ(aggregator->current_window(), 2u);
  auto window = aggregator->WindowIndex(0.5);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(*window, 0u);  // bucketing is unchanged; skipping is the caller's
  std::vector<WeightedGraph> completed;
  // Events from already-processed windows are rejected by Add.
  EXPECT_FALSE(aggregator->Add(Event(0, 1, 0.5), &completed).ok());
  ASSERT_TRUE(aggregator->Add(Event(0, 1, 2.5), &completed).ok());
  EXPECT_TRUE(completed.empty());
  EXPECT_EQ(aggregator->Flush().EdgeWeight(0, 1), 1.0);
}

TEST(EventStreamReaderTest, AutoModeCommitsIntegerFromFirstLine) {
  std::istringstream in("0 1 0.5\n2 3 1.0\n");
  NodeVocabulary vocab;
  EventStreamReader reader(&in, EventErrorPolicy::kStrict, &vocab);
  EXPECT_EQ(reader.id_mode(), EventIdMode::kAuto);
  auto first = reader.Next();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(reader.id_mode(), EventIdMode::kInteger);
  EXPECT_EQ((*first)->u, 0u);
  EXPECT_TRUE(vocab.empty());  // integer streams never intern
}

TEST(EventStreamReaderTest, AutoModeCommitsNamedFromFirstLine) {
  std::istringstream in(
      "alice bob 0.5\n"
      "bob 7 1.0\n");  // '7' is a name once the stream is named
  NodeVocabulary vocab;
  EventStreamReader reader(&in, EventErrorPolicy::kStrict, &vocab);
  auto first = reader.Next();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(reader.id_mode(), EventIdMode::kNamed);
  EXPECT_EQ((*first)->u, 0u);
  EXPECT_EQ((*first)->v, 1u);
  auto second = reader.Next();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->u, 1u);
  EXPECT_EQ((*second)->v, 2u);
  ASSERT_EQ(vocab.size(), 3u);
  EXPECT_EQ(vocab.Name(0), "alice");
  EXPECT_EQ(vocab.Name(2), "7");
}

TEST(EventStreamReaderTest, GarbageFirstLineDoesNotLockIdMode) {
  // A malformed first data line must not commit the stream's id mode; the
  // next well-formed line decides.
  std::istringstream in(
      "0 1\n"       // integer-looking but malformed (missing timestamp)
      "alice bob 0.5\n");
  NodeVocabulary vocab;
  EventStreamReader reader(&in, EventErrorPolicy::kSkip, &vocab);
  auto event = reader.Next();
  ASSERT_TRUE(event.ok());
  ASSERT_TRUE(event->has_value());
  EXPECT_EQ(reader.id_mode(), EventIdMode::kNamed);
  EXPECT_EQ(vocab.Name(0), "alice");
  EXPECT_EQ(reader.events_rejected_parse(), 1u);
}

TEST(EventStreamReaderTest, RejectedNamedLineDoesNotPolluteVocabulary) {
  // The second endpoint is invalid, so the first must not be interned.
  std::istringstream in(
      "alice bob 0.5\n"
      "carol #bad 1.0\n"
      "dave erin 1.5\n");
  NodeVocabulary vocab;
  EventStreamReader reader(&in, EventErrorPolicy::kSkip, &vocab);
  std::vector<TimestampedEvent> events;
  while (true) {
    auto next = reader.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    events.push_back(**next);
  }
  EXPECT_EQ(events.size(), 2u);
  ASSERT_EQ(vocab.size(), 4u);
  EXPECT_FALSE(vocab.Find("carol").has_value());
  EXPECT_EQ(vocab.Name(2), "dave");
}

TEST(EventStreamReaderTest, NamedEventsMatchPremappedIntegerEvents) {
  // The named stream and its hand-mapped integer counterpart must produce
  // identical event sequences (the ingestion-equivalence contract that the
  // named-node CI smoke checks end to end).
  std::istringstream named_in(
      "alice bob 0.5 2.0\n"
      "bob carol 1.5\n"
      "alice carol 2.5\n");
  NodeVocabulary vocab;
  EventStreamReader named(&named_in, EventErrorPolicy::kStrict, &vocab);
  std::istringstream integer_in(
      "0 1 0.5 2.0\n"
      "1 2 1.5\n"
      "0 2 2.5\n");
  EventStreamReader integer(&integer_in, EventErrorPolicy::kStrict);
  while (true) {
    auto a = named.Next();
    auto b = integer.Next();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->has_value(), b->has_value());
    if (!a->has_value()) break;
    EXPECT_EQ((*a)->u, (*b)->u);
    EXPECT_EQ((*a)->v, (*b)->v);
    EXPECT_EQ((*a)->timestamp, (*b)->timestamp);
    EXPECT_EQ((*a)->weight, (*b)->weight);
  }
}

TEST(EventStreamReaderTest, ExplicitNamedModeTreatsIntegersAsNames) {
  std::istringstream in("10 11 0.5\n");
  NodeVocabulary vocab;
  EventStreamReader reader(&in, EventErrorPolicy::kStrict, &vocab,
                           EventIdMode::kNamed);
  auto event = reader.Next();
  ASSERT_TRUE(event.ok());
  EXPECT_EQ((*event)->u, 0u);
  EXPECT_EQ((*event)->v, 1u);
  EXPECT_EQ(vocab.Name(0), "10");
}

TEST(EventWindowAggregatorTest, GrowModeDiscoversNodeSet) {
  EventWindowOptions options;
  options.window_length = 1.0;
  options.num_nodes = 0;
  options.grow_nodes = true;
  auto aggregator = EventWindowAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok()) << aggregator.status().ToString();
  EXPECT_EQ(aggregator->num_nodes(), 0u);
  std::vector<WeightedGraph> completed;
  ASSERT_TRUE(aggregator->Add(Event(0, 1, 0.5), &completed).ok());
  EXPECT_EQ(aggregator->num_nodes(), 2u);
  ASSERT_TRUE(aggregator->Add(Event(3, 1, 1.5), &completed).ok());
  // Window 0 closed at the size the node set had reached then.
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].num_nodes(), 2u);
  EXPECT_EQ(aggregator->num_nodes(), 4u);
  const WeightedGraph last = aggregator->Flush();
  EXPECT_EQ(last.num_nodes(), 4u);
  EXPECT_EQ(last.EdgeWeight(1, 3), 1.0);
}

TEST(EventWindowAggregatorTest, GrowModeKeepsSizeAcrossEmptyWindows) {
  EventWindowOptions options;
  options.window_length = 1.0;
  options.num_nodes = 0;
  options.grow_nodes = true;
  auto aggregator = EventWindowAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok());
  std::vector<WeightedGraph> completed;
  ASSERT_TRUE(aggregator->Add(Event(0, 5, 0.5), &completed).ok());
  ASSERT_TRUE(aggregator->Add(Event(0, 1, 3.5), &completed).ok());
  ASSERT_EQ(completed.size(), 3u);  // windows 0-2; the quiet ones keep size 6
  EXPECT_EQ(completed[1].num_nodes(), 6u);
  EXPECT_EQ(completed[2].num_nodes(), 6u);
}

TEST(EventWindowAggregatorTest, FixedSizeStillRejectsOutOfRange) {
  EventWindowOptions options;
  options.window_length = 1.0;
  options.num_nodes = 2;
  auto aggregator = EventWindowAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok());
  std::vector<WeightedGraph> completed;
  const Status status = aggregator->Add(Event(0, 9, 0.5), &completed);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST(EventWindowAggregatorTest, WindowIndexRejectsBadTimestamps) {
  EventWindowOptions options;
  options.window_length = 1.0;
  options.start_time = 10.0;
  options.num_nodes = 2;
  auto aggregator = EventWindowAggregator::Create(options);
  ASSERT_TRUE(aggregator.ok());
  EXPECT_FALSE(aggregator->WindowIndex(9.0).ok());  // before start_time
  EXPECT_FALSE(
      aggregator->WindowIndex(std::numeric_limits<double>::quiet_NaN()).ok());
  EXPECT_FALSE(aggregator->WindowIndex(1e13).ok());  // absurd span
  auto window = aggregator->WindowIndex(12.5);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(*window, 2u);
}

}  // namespace
}  // namespace cad
