#include "io/event_stream.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace cad {
namespace {

TimestampedEvent Event(NodeId u, NodeId v, double t, double w = 1.0) {
  TimestampedEvent event;
  event.u = u;
  event.v = v;
  event.timestamp = t;
  event.weight = w;
  return event;
}

TEST(AggregateEventStreamTest, BucketsByWindow) {
  const std::vector<TimestampedEvent> events = {
      Event(0, 1, 0.0), Event(0, 1, 0.5), Event(1, 2, 1.2), Event(0, 2, 2.9)};
  EventAggregationOptions options;
  options.window_length = 1.0;
  auto sequence = AggregateEventStream(events, options);
  ASSERT_TRUE(sequence.ok());
  ASSERT_EQ(sequence->num_snapshots(), 3u);
  EXPECT_EQ(sequence->num_nodes(), 3u);
  EXPECT_EQ(sequence->Snapshot(0).EdgeWeight(0, 1), 2.0);  // two events
  EXPECT_EQ(sequence->Snapshot(1).EdgeWeight(1, 2), 1.0);
  EXPECT_EQ(sequence->Snapshot(2).EdgeWeight(0, 2), 1.0);
}

TEST(AggregateEventStreamTest, CustomWeightsAccumulate) {
  const std::vector<TimestampedEvent> events = {Event(0, 1, 0.0, 2.5),
                                                Event(1, 0, 0.1, 1.5)};
  EventAggregationOptions options;
  options.window_length = 1.0;
  auto sequence = AggregateEventStream(events, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->Snapshot(0).EdgeWeight(0, 1), 4.0);  // undirected sum
}

TEST(AggregateEventStreamTest, ExplicitStartDropsEarlierEvents) {
  const std::vector<TimestampedEvent> events = {Event(0, 1, 5.0),
                                                Event(0, 1, 15.0)};
  EventAggregationOptions options;
  options.window_length = 10.0;
  options.start_time = 10.0;
  options.num_windows = 1;
  options.num_nodes = 4;
  auto sequence = AggregateEventStream(events, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->num_snapshots(), 1u);
  EXPECT_EQ(sequence->num_nodes(), 4u);
  EXPECT_EQ(sequence->Snapshot(0).EdgeWeight(0, 1), 1.0);  // only t=15
}

TEST(AggregateEventStreamTest, EventsPastConfiguredWindowsDropped) {
  const std::vector<TimestampedEvent> events = {Event(0, 1, 0.0),
                                                Event(0, 1, 99.0)};
  EventAggregationOptions options;
  options.window_length = 1.0;
  options.num_windows = 2;
  auto sequence = AggregateEventStream(events, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->num_snapshots(), 2u);
  EXPECT_EQ(sequence->Snapshot(0).EdgeWeight(0, 1), 1.0);
  EXPECT_EQ(sequence->Snapshot(1).num_edges(), 0u);
}

TEST(AggregateEventStreamTest, EmptyStream) {
  EventAggregationOptions options;
  options.window_length = 1.0;
  options.num_nodes = 5;
  auto sequence = AggregateEventStream({}, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->num_snapshots(), 1u);
  EXPECT_EQ(sequence->num_nodes(), 5u);
}

TEST(AggregateEventStreamTest, RejectsBadInput) {
  EventAggregationOptions options;
  options.window_length = 0.0;
  EXPECT_FALSE(AggregateEventStream({}, options).ok());

  options.window_length = 1.0;
  EXPECT_FALSE(AggregateEventStream({Event(1, 1, 0.0)}, options).ok());

  options.num_nodes = 2;
  EXPECT_FALSE(AggregateEventStream({Event(0, 5, 0.0)}, options).ok());

  EventAggregationOptions plain;
  plain.window_length = 1.0;
  TimestampedEvent bad = Event(0, 1, 0.0);
  bad.weight = -1.0;
  EXPECT_FALSE(AggregateEventStream({bad}, plain).ok());
}

TEST(ReadEventStreamTest, ParsesFormats) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "0 1 10.5\n"
      "2  3   11.0  2.5\n");
  auto events = ReadEventStream(&in);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].u, 0u);
  EXPECT_EQ((*events)[0].v, 1u);
  EXPECT_DOUBLE_EQ((*events)[0].timestamp, 10.5);
  EXPECT_DOUBLE_EQ((*events)[0].weight, 1.0);
  EXPECT_DOUBLE_EQ((*events)[1].weight, 2.5);
}

TEST(ReadEventStreamTest, RejectsMalformedLines) {
  std::istringstream missing("0 1\n");
  EXPECT_FALSE(ReadEventStream(&missing).ok());
  std::istringstream garbage("a b c\n");
  EXPECT_FALSE(ReadEventStream(&garbage).ok());
  std::istringstream negative("-1 2 3.0\n");
  EXPECT_FALSE(ReadEventStream(&negative).ok());
  std::istringstream extra("0 1 2.0 3.0 4.0\n");
  EXPECT_FALSE(ReadEventStream(&extra).ok());
}

TEST(ReadEventStreamTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/events.txt";
  {
    std::ofstream out(path);
    out << "0 1 0.0\n0 1 1.5\n1 2 2.5 4.0\n";
  }
  auto events = ReadEventStreamFile(path);
  ASSERT_TRUE(events.ok());
  EventAggregationOptions options;
  options.window_length = 2.0;
  auto sequence = AggregateEventStream(*events, options);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->num_snapshots(), 2u);
  EXPECT_EQ(sequence->Snapshot(0).EdgeWeight(0, 1), 2.0);
  EXPECT_EQ(sequence->Snapshot(1).EdgeWeight(1, 2), 4.0);
  std::remove(path.c_str());
}

TEST(ReadEventStreamTest, MissingFile) {
  EXPECT_EQ(ReadEventStreamFile("/nonexistent/events.txt").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace cad
