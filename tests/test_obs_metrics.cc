// Tests for the metrics half of src/obs/: instrument semantics, histogram
// bucket boundaries, exactness of concurrent recording, and the
// deterministic sorted CSV/JSON exports.
//
// The CAD_METRIC_* macros write to the process-global registry, which never
// unregisters names; macro tests therefore use test-unique metric names and
// look them up in the snapshot instead of asserting on its overall size.
// Export-shape tests use local MetricsRegistry instances, which are fully
// isolated.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/obs.h"

namespace cad {
namespace obs {
namespace {

bool FindCounter(const MetricsSnapshot& snapshot, const std::string& name,
                 uint64_t* value) {
  for (const auto& [n, v] : snapshot.counters) {
    if (n == name) {
      *value = v;
      return true;
    }
  }
  return false;
}

const HistogramData* FindHistogram(const MetricsSnapshot& snapshot,
                                   const std::string& name) {
  for (const auto& [n, data] : snapshot.histograms) {
    if (n == name) return &data;
  }
  return nullptr;
}

// --- instrument semantics (no macros, registry-local) ----------------------

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2.0);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024.0);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kNumFiniteBuckets)));
}

TEST(HistogramTest, BucketIndexIsSmallestContainingBucket) {
  // Values <= 1 (and non-finite garbage) land in the first bucket.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
  // Upper bounds are inclusive.
  EXPECT_EQ(Histogram::BucketIndex(1.5), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.5), 2u);
  EXPECT_EQ(Histogram::BucketIndex(1024.0), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1025.0), 11u);
  // Largest finite bucket, then overflow.
  EXPECT_EQ(Histogram::BucketIndex(std::ldexp(1.0, 39)), 39u);
  EXPECT_EQ(Histogram::BucketIndex(1e12), Histogram::kNumFiniteBuckets);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumFiniteBuckets);
}

TEST(HistogramTest, ObserveTracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isinf(h.Min()));
  EXPECT_GT(h.Min(), 0.0);  // +inf sentinel
  EXPECT_TRUE(std::isinf(h.Max()));
  EXPECT_LT(h.Max(), 0.0);  // -inf sentinel

  h.Observe(3.0);
  h.Observe(1.0);
  h.Observe(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 10.0);
  EXPECT_EQ(h.bucket_count(Histogram::BucketIndex(3.0)), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::BucketIndex(1.0)), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::BucketIndex(10.0)), 1u);
}

TEST(HistogramTest, FixedPointSumIsExactForBinaryFractions) {
  // 0.25 * 1024 is integral, so a thousand observations accumulate with no
  // rounding drift at all.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Observe(0.25);
  EXPECT_DOUBLE_EQ(h.Sum(), 250.0);
}

TEST(HistogramTest, ResetRestoresSentinels) {
  Histogram h;
  h.Observe(7.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_TRUE(std::isinf(h.Min()) && h.Min() > 0.0);
  EXPECT_TRUE(std::isinf(h.Max()) && h.Max() < 0.0);
}

TEST(MetricsRegistryTest, HandlesAreStableAndResetZeroes) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  counter->Add(41);
  counter->Increment();
  EXPECT_EQ(registry.GetCounter("c"), counter);  // same handle on re-get
  EXPECT_EQ(counter->Value(), 42u);
  registry.GetGauge("g")->Set(0.5);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(registry.GetGauge("g")->Value(), 0.0);
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetCounter("mid")->Add(3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "alpha");
  EXPECT_EQ(snapshot.counters[1].first, "mid");
  EXPECT_EQ(snapshot.counters[2].first, "zeta");
}

// --- quantile interpolation -------------------------------------------------

TEST(QuantileTest, EmptyHistogramReturnsNaN) {
  const HistogramData empty;
  EXPECT_TRUE(std::isnan(empty.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(empty.Quantile(0.0)));
  EXPECT_TRUE(std::isnan(empty.Quantile(1.0)));
}

TEST(QuantileTest, SingleSampleReportsTheExactObservation) {
  MetricsRegistry registry;  // route through a snapshot for the Data form
  registry.GetHistogram("single")->Observe(3.0);
  const HistogramData* data =
      FindHistogram(registry.Snapshot(), "single");
  ASSERT_NE(data, nullptr);
  // The [min, max] clamp pins every rank of a one-sample histogram to the
  // observation itself.
  EXPECT_DOUBLE_EQ(data->Quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(data->Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(data->Quantile(0.99), 3.0);
  EXPECT_DOUBLE_EQ(data->Quantile(1.0), 3.0);
}

/// One observation per bucket at the bucket upper bounds 1, 2, 4, 8.
HistogramData PowerOfTwoLadder() {
  HistogramData data;
  data.count = 4;
  data.sum = 15.0;
  data.min = 1.0;
  data.max = 8.0;
  data.buckets = {{1.0, 1}, {2.0, 1}, {4.0, 1}, {8.0, 1}};
  return data;
}

TEST(QuantileTest, ExactBucketBoundariesInterpolateToTheBound) {
  const HistogramData data = PowerOfTwoLadder();
  // Rank q*count lands exactly on each bucket's cumulative edge, and linear
  // interpolation across [lower, upper] reaches the upper bound exactly.
  EXPECT_DOUBLE_EQ(data.Quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(data.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(data.Quantile(0.75), 4.0);
  EXPECT_DOUBLE_EQ(data.Quantile(1.0), 8.0);
}

TEST(QuantileTest, MidBucketRanksInterpolateLinearly) {
  const HistogramData data = PowerOfTwoLadder();
  // Rank 2.5 is halfway through the (2, 4] bucket: 2 + 0.5 * (4 - 2).
  EXPECT_DOUBLE_EQ(data.Quantile(0.625), 3.0);
  // Rank 0.5 is halfway through [0, 1] -> 0.5, clamped up to min = 1.
  EXPECT_DOUBLE_EQ(data.Quantile(0.125), 1.0);
}

TEST(QuantileTest, QIsClampedToUnitInterval) {
  const HistogramData data = PowerOfTwoLadder();
  EXPECT_DOUBLE_EQ(data.Quantile(-3.0), data.Quantile(0.0));
  EXPECT_DOUBLE_EQ(data.Quantile(7.0), data.Quantile(1.0));
}

TEST(QuantileTest, OverflowBucketReportsMax) {
  HistogramData data;
  data.count = 2;
  data.min = 1e12;
  data.max = 9e12;
  data.buckets = {{std::numeric_limits<double>::infinity(), 2}};
  EXPECT_DOUBLE_EQ(data.Quantile(0.5), 9e12);
  EXPECT_DOUBLE_EQ(data.Quantile(0.99), 9e12);
}

TEST(QuantileTest, DeterministicGivenIdenticalBucketCounts) {
  // Two histograms built in different observation orders have identical
  // bucket counts, so every quantile matches bit-for-bit.
  MetricsRegistry first;
  MetricsRegistry second;
  for (double v : {5.0, 100.0, 3.0, 17.0}) {
    first.GetHistogram("h")->Observe(v);
  }
  for (double v : {17.0, 3.0, 100.0, 5.0}) {
    second.GetHistogram("h")->Observe(v);
  }
  const HistogramData* a = FindHistogram(first.Snapshot(), "h");
  const HistogramData* b = FindHistogram(second.Snapshot(), "h");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a->Quantile(q), b->Quantile(q)) << "q=" << q;
  }
}

// --- delta snapshots --------------------------------------------------------

TEST(DiffSinceTest, CountersAndTimersBecomeDeltas) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(5);
  registry.GetTimer("t")->AddNanos(100);
  const MetricsSnapshot before = registry.Snapshot();
  registry.GetCounter("c")->Add(3);
  registry.GetTimer("t")->AddNanos(250);
  const MetricsSnapshot delta = registry.Snapshot().DiffSince(before);
  uint64_t value = 0;
  ASSERT_TRUE(FindCounter(delta, "c", &value));
  EXPECT_EQ(value, 3u);
  ASSERT_EQ(delta.timers.size(), 1u);
  EXPECT_EQ(delta.timers[0].second.count, 1u);
  EXPECT_EQ(delta.timers[0].second.total_ns, 250u);
}

TEST(DiffSinceTest, MetricAppearingBetweenSnapshotsReportsFullValue) {
  MetricsRegistry registry;
  registry.GetCounter("old")->Add(1);
  const MetricsSnapshot before = registry.Snapshot();
  registry.GetCounter("appeared")->Add(7);
  registry.GetHistogram("appeared_hist")->Observe(2.0);
  const MetricsSnapshot delta = registry.Snapshot().DiffSince(before);
  uint64_t value = 0;
  ASSERT_TRUE(FindCounter(delta, "appeared", &value));
  EXPECT_EQ(value, 7u);
  const HistogramData* hist = FindHistogram(delta, "appeared_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  // Unchanged instruments report a zero delta but stay listed.
  ASSERT_TRUE(FindCounter(delta, "old", &value));
  EXPECT_EQ(value, 0u);
}

TEST(DiffSinceTest, GaugesCarryTheCurrentValue) {
  MetricsRegistry registry;
  registry.GetGauge("g")->Set(1.5);
  const MetricsSnapshot before = registry.Snapshot();
  registry.GetGauge("g")->Set(9.0);
  const MetricsSnapshot delta = registry.Snapshot().DiffSince(before);
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(delta.gauges[0].second, 9.0);
}

TEST(DiffSinceTest, HistogramDeltaOmitsUnchangedBucketsKeepsLifetimeMinMax) {
  MetricsRegistry registry;
  registry.GetHistogram("h")->Observe(1.0);    // bucket_le_1
  registry.GetHistogram("h")->Observe(100.0);  // bucket_le_128
  const MetricsSnapshot before = registry.Snapshot();
  registry.GetHistogram("h")->Observe(100.0);
  const MetricsSnapshot delta = registry.Snapshot().DiffSince(before);
  const HistogramData* hist = FindHistogram(delta, "h");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_DOUBLE_EQ(hist->sum, 100.0);
  // Only the bucket that grew survives; min/max are the lifetime extrema.
  ASSERT_EQ(hist->buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(hist->buckets[0].first, 128.0);
  EXPECT_EQ(hist->buckets[0].second, 1u);
  EXPECT_DOUBLE_EQ(hist->min, 1.0);
  EXPECT_DOUBLE_EQ(hist->max, 100.0);
}

TEST(DiffSinceTest, BackwardsCounterIsACallerBug) {
  MetricsRegistry ahead;
  ahead.GetCounter("c")->Add(10);
  const MetricsSnapshot newer = ahead.Snapshot();
  MetricsRegistry behind;
  behind.GetCounter("c")->Add(4);
  const MetricsSnapshot older = behind.Snapshot();
#ifdef CAD_ENABLE_DCHECK
  EXPECT_DEATH((void)older.DiffSince(newer), "went backwards");
#else
  // Release builds clamp the impossible negative delta to zero.
  const MetricsSnapshot delta = older.DiffSince(newer);
  uint64_t value = 99;
  ASSERT_TRUE(FindCounter(delta, "c", &value));
  EXPECT_EQ(value, 0u);
#endif
}

// --- timer histograms -------------------------------------------------------

TEST(TimerHistogramTest, RegisteredSeparatelyAndExportedUnderTimerKind) {
  MetricsRegistry registry;
  registry.GetTimerHistogram("latency")->Observe(1.5e6);
  registry.GetTimerHistogram("latency")->Observe(3.0e6);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.histograms.empty());
  ASSERT_EQ(snapshot.timer_histograms.size(), 1u);
  EXPECT_EQ(snapshot.timer_histograms[0].second.count, 2u);

  std::ostringstream out;
  ASSERT_TRUE(WriteMetricsCsv(snapshot, &out).ok());
  const std::string csv = out.str();
  // Rows carry kind "timer" (so `grep -v '^timer'` strips them) with
  // millisecond quantile fields.
  EXPECT_NE(csv.find("timer,latency,count,2\n"), std::string::npos);
  EXPECT_NE(csv.find("timer,latency,p50_ms,"), std::string::npos);
  EXPECT_NE(csv.find("timer,latency,p90_ms,"), std::string::npos);
  EXPECT_NE(csv.find("timer,latency,p99_ms,"), std::string::npos);
  EXPECT_NE(csv.find("timer,latency,max_ms,3\n"), std::string::npos);
  EXPECT_EQ(csv.find("histogram,latency"), std::string::npos);
}

TEST(TimerHistogramTest, ResetZeroesAndDiffSinceDeltas) {
  MetricsRegistry registry;
  registry.GetTimerHistogram("latency")->Observe(10.0);
  const MetricsSnapshot before = registry.Snapshot();
  registry.GetTimerHistogram("latency")->Observe(20.0);
  const MetricsSnapshot delta = registry.Snapshot().DiffSince(before);
  ASSERT_EQ(delta.timer_histograms.size(), 1u);
  EXPECT_EQ(delta.timer_histograms[0].second.count, 1u);
  registry.Reset();
  const MetricsSnapshot cleared = registry.Snapshot();
  ASSERT_EQ(cleared.timer_histograms.size(), 1u);
  EXPECT_EQ(cleared.timer_histograms[0].second.count, 0u);
}

// --- exports ----------------------------------------------------------------

/// Builds the same small registry twice; exports must agree byte-for-byte
/// no matter when or in which order the instruments were touched.
MetricsSnapshot BuildReferenceSnapshot(bool reversed) {
  MetricsRegistry registry;
  if (reversed) {
    registry.GetTimer("t")->AddNanos(1500000);
    registry.GetHistogram("h")->Observe(3.0);
    registry.GetHistogram("h")->Observe(1.0);
    registry.GetGauge("g")->Set(0.5);
    registry.GetCounter("b")->Add(2);
    registry.GetCounter("a")->Add(1);
  } else {
    registry.GetCounter("a")->Add(1);
    registry.GetCounter("b")->Add(2);
    registry.GetGauge("g")->Set(0.5);
    registry.GetHistogram("h")->Observe(1.0);
    registry.GetHistogram("h")->Observe(3.0);
    registry.GetTimer("t")->AddNanos(1500000);
  }
  return registry.Snapshot();
}

TEST(MetricsExportTest, CsvIsDeterministicAcrossBuildOrder) {
  std::ostringstream first;
  std::ostringstream second;
  ASSERT_TRUE(WriteMetricsCsv(BuildReferenceSnapshot(false), &first).ok());
  ASSERT_TRUE(WriteMetricsCsv(BuildReferenceSnapshot(true), &second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST(MetricsExportTest, CsvRowsCarryKindNameFieldValue) {
  std::ostringstream out;
  ASSERT_TRUE(WriteMetricsCsv(BuildReferenceSnapshot(false), &out).ok());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("kind,name,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,a,value,1\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,b,value,2\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,value,0.5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,count,2\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,sum,4\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,min,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,max,3\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,bucket_le_1,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,bucket_le_4,1\n"), std::string::npos);
  EXPECT_NE(csv.find("timer,t,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("timer,t,total_ms,1.5\n"), std::string::npos);
  // Sorted: counter a before counter b.
  EXPECT_LT(csv.find("counter,a,"), csv.find("counter,b,"));
}

TEST(MetricsExportTest, JsonIsDeterministicAndStructured) {
  std::ostringstream first;
  std::ostringstream second;
  ASSERT_TRUE(WriteMetricsJson(BuildReferenceSnapshot(false), &first).ok());
  ASSERT_TRUE(WriteMetricsJson(BuildReferenceSnapshot(true), &second).ok());
  EXPECT_EQ(first.str(), second.str());
  const std::string json = first.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"a\""), std::string::npos);
}

TEST(MetricsExportTest, EmptyHistogramOmitsMinMaxRows) {
  MetricsRegistry registry;
  registry.GetHistogram("empty");
  std::ostringstream out;
  ASSERT_TRUE(WriteMetricsCsv(registry.Snapshot(), &out).ok());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("histogram,empty,count,0\n"), std::string::npos);
  EXPECT_EQ(csv.find("histogram,empty,min"), std::string::npos);
  EXPECT_EQ(csv.find("histogram,empty,max"), std::string::npos);
}

// --- macros against the global registry -------------------------------------

#ifndef CAD_OBS_DISABLED

TEST(MetricMacroTest, DisabledMacrosRecordNothing) {
  ASSERT_FALSE(MetricsEnabled()) << "tests must not leak the enabled state";
  CAD_METRIC_INC("test.obs_metrics.disabled_counter");
  CAD_METRIC_OBSERVE("test.obs_metrics.disabled_hist", 5.0);
  const MetricsSnapshot snapshot = SnapshotMetrics();
  uint64_t value = 0;
  EXPECT_FALSE(
      FindCounter(snapshot, "test.obs_metrics.disabled_counter", &value));
  EXPECT_EQ(FindHistogram(snapshot, "test.obs_metrics.disabled_hist"),
            nullptr);
}

TEST(MetricMacroTest, CounterAndGaugeRecordWhenEnabled) {
  const ScopedMetricsEnable enable;
  CAD_METRIC_ADD("test.obs_metrics.counter", 5);
  CAD_METRIC_INC("test.obs_metrics.counter");
  CAD_METRIC_SET("test.obs_metrics.gauge", 2.5);
  const MetricsSnapshot snapshot = SnapshotMetrics();
  uint64_t value = 0;
  ASSERT_TRUE(FindCounter(snapshot, "test.obs_metrics.counter", &value));
  EXPECT_EQ(value, 6u);
  bool gauge_found = false;
  for (const auto& [name, gauge] : snapshot.gauges) {
    if (name == "test.obs_metrics.gauge") {
      gauge_found = true;
      EXPECT_DOUBLE_EQ(gauge, 2.5);
    }
  }
  EXPECT_TRUE(gauge_found);
}

TEST(MetricMacroTest, ConcurrentIncrementsAreExact) {
  const ScopedMetricsEnable enable;
  constexpr size_t kTasks = 1000;
  ParallelFor(kTasks, 8, [](size_t i) {
    CAD_METRIC_INC("test.obs_metrics.concurrent_counter");
    CAD_METRIC_OBSERVE("test.obs_metrics.concurrent_hist",
                       static_cast<double>(i % 7 + 1));
  });
  const MetricsSnapshot snapshot = SnapshotMetrics();
  uint64_t value = 0;
  ASSERT_TRUE(
      FindCounter(snapshot, "test.obs_metrics.concurrent_counter", &value));
  EXPECT_EQ(value, kTasks);
  const HistogramData* hist =
      FindHistogram(snapshot, "test.obs_metrics.concurrent_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kTasks);
  double expected_sum = 0.0;
  for (size_t i = 0; i < kTasks; ++i) {
    expected_sum += static_cast<double>(i % 7 + 1);
  }
  // Integral observations are exact in the fixed-point sum, so this holds
  // bit-for-bit regardless of the interleaving.
  EXPECT_DOUBLE_EQ(hist->sum, expected_sum);
  EXPECT_DOUBLE_EQ(hist->min, 1.0);
  EXPECT_DOUBLE_EQ(hist->max, 7.0);
}

TEST(MetricMacroTest, TimeHistMacroRecordsIntoTimerHistograms) {
  const ScopedMetricsEnable enable;
  CAD_METRIC_TIME_HIST_NS("test.obs_metrics.latency_hist", 1000);
  CAD_METRIC_TIME_HIST_NS("test.obs_metrics.latency_hist", 3000);
  const MetricsSnapshot snapshot = SnapshotMetrics();
  const HistogramData* found = nullptr;
  for (const auto& [name, data] : snapshot.timer_histograms) {
    if (name == "test.obs_metrics.latency_hist") found = &data;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 2u);
  // Not registered as a plain (deterministic-contract) histogram.
  EXPECT_EQ(FindHistogram(snapshot, "test.obs_metrics.latency_hist"), nullptr);
}

TEST(MetricMacroTest, RepeatedRunsExportIdenticalNonTimerCsv) {
  const auto run_once = [] {
    const ScopedMetricsEnable enable;
    ParallelFor(64, 4, [](size_t i) {
      CAD_METRIC_INC("test.obs_metrics.replay_counter");
      CAD_METRIC_OBSERVE("test.obs_metrics.replay_hist",
                         static_cast<double>(i + 1));
    });
    std::ostringstream out;
    EXPECT_TRUE(WriteMetricsCsv(SnapshotMetrics(), &out).ok());
    // Drop timer rows, the one kind allowed to differ between reruns.
    std::istringstream in(out.str());
    std::string line;
    std::string filtered;
    while (std::getline(in, line)) {
      if (line.rfind("timer,", 0) == 0) continue;
      filtered += line;
      filtered += '\n';
    }
    return filtered;
  };
  EXPECT_EQ(run_once(), run_once());
}

#endif  // CAD_OBS_DISABLED

}  // namespace
}  // namespace obs
}  // namespace cad
