#include "graph/subgraph.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

WeightedGraph PathGraph(size_t n) {
  WeightedGraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) {
    CAD_CHECK_OK(g.SetEdge(i, i + 1, static_cast<double>(i + 1)));
  }
  return g;
}

TEST(InducedSubgraphTest, KeepsInternalEdgesOnly) {
  const WeightedGraph g = PathGraph(6);
  const Subgraph sub = InducedSubgraph(g, {1, 2, 4});
  EXPECT_EQ(sub.original_ids, (std::vector<NodeId>{1, 2, 4}));
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  // Only 1-2 survives (weight 2); 2-4 and 1-4 are not parent edges.
  EXPECT_EQ(sub.graph.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(sub.graph.EdgeWeight(0, 1), 2.0);
  EXPECT_FALSE(sub.graph.HasEdge(1, 2));
}

TEST(InducedSubgraphTest, DeduplicatesAndSorts) {
  const WeightedGraph g = PathGraph(4);
  const Subgraph sub = InducedSubgraph(g, {3, 1, 3, 1});
  EXPECT_EQ(sub.original_ids, (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(sub.graph.num_nodes(), 2u);
}

TEST(InducedSubgraphTest, EmptySelection) {
  const WeightedGraph g = PathGraph(3);
  const Subgraph sub = InducedSubgraph(g, {});
  EXPECT_EQ(sub.graph.num_nodes(), 0u);
  EXPECT_TRUE(sub.original_ids.empty());
}

TEST(NeighborhoodNodesTest, RadiusZeroIsJustCenter) {
  const WeightedGraph g = PathGraph(5);
  EXPECT_EQ(NeighborhoodNodes(g, 2, 0), (std::vector<NodeId>{2}));
}

TEST(NeighborhoodNodesTest, RadiusOneAndTwoOnPath) {
  const WeightedGraph g = PathGraph(7);
  EXPECT_EQ(NeighborhoodNodes(g, 3, 1), (std::vector<NodeId>{2, 3, 4}));
  EXPECT_EQ(NeighborhoodNodes(g, 3, 2), (std::vector<NodeId>{1, 2, 3, 4, 5}));
}

TEST(NeighborhoodNodesTest, LargeRadiusCoversComponentOnly) {
  WeightedGraph g(5);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(3, 4, 1.0));
  EXPECT_EQ(NeighborhoodNodes(g, 0, 10), (std::vector<NodeId>{0, 1}));
}

TEST(NeighborhoodNodesTest, EgonetExtraction) {
  // Combined use: egonet subgraph of a hub.
  WeightedGraph g(6);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(0, 2, 1.0));
  CAD_CHECK_OK(g.SetEdge(1, 2, 5.0));
  CAD_CHECK_OK(g.SetEdge(2, 3, 1.0));  // outside radius-1 of 0
  const Subgraph egonet = InducedSubgraph(g, NeighborhoodNodes(g, 0, 1));
  EXPECT_EQ(egonet.original_ids, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(egonet.graph.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(egonet.graph.EdgeWeight(1, 2), 5.0);
}

}  // namespace
}  // namespace cad
