#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 15);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RngTest, NormalScaledMoments) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(31);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, PoissonSmallMeanMoments) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(2.5));
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(41);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.Poisson(100.0));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 100.0, 0.5);
  EXPECT_NEAR(sum_sq / n - mean * mean, 100.0, 5.0);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(43);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(47);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, RademacherBalanced) {
  Rng rng(53);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double r = rng.Rademacher();
    EXPECT_TRUE(r == 1.0 || r == -1.0);
    sum += r;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(61);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(67);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_EQ(std::set<size_t>(sample.begin(), sample.end()).size(), 10u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(71);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(73);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(79);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continued stream.
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (parent.NextUint64() != child.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 5);
}

/// Parameterized sweep: UniformInt(n) stays in range and hits both extremes
/// across a spread of moduli (catches modulo-bias rejection bugs).
class RngUniformIntSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngUniformIntSweep, InRangeAndHitsExtremes) {
  const uint64_t n = GetParam();
  Rng rng(1000 + n);
  bool hit_zero = false;
  bool hit_max = false;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.UniformInt(n);
    ASSERT_LT(v, n);
    hit_zero |= (v == 0);
    hit_max |= (v == n - 1);
  }
  EXPECT_TRUE(hit_zero);
  EXPECT_TRUE(hit_max);
}

INSTANTIATE_TEST_SUITE_P(Moduli, RngUniformIntSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 100, 1000));

}  // namespace
}  // namespace cad
