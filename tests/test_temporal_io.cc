#include "io/temporal_io.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "datagen/toy_example.h"

namespace cad {
namespace {

TemporalGraphSequence SampleSequence() {
  TemporalGraphSequence seq(3);
  WeightedGraph g1(3);
  CAD_CHECK_OK(g1.SetEdge(0, 1, 1.5));
  CAD_CHECK_OK(g1.SetEdge(1, 2, 0.25));
  WeightedGraph g2(3);
  CAD_CHECK_OK(g2.SetEdge(0, 2, 3.0));
  CAD_CHECK_OK(seq.Append(std::move(g1)));
  CAD_CHECK_OK(seq.Append(std::move(g2)));
  return seq;
}

TEST(TemporalIoTest, RoundTripThroughStream) {
  const TemporalGraphSequence original = SampleSequence();
  std::ostringstream out;
  ASSERT_TRUE(WriteTemporalEdgeList(original, &out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_nodes(), 3u);
  ASSERT_EQ(parsed->num_snapshots(), 2u);
  EXPECT_TRUE(parsed->Snapshot(0) == original.Snapshot(0));
  EXPECT_TRUE(parsed->Snapshot(1) == original.Snapshot(1));
}

TEST(TemporalIoTest, RoundTripPreservesExactWeights) {
  TemporalGraphSequence seq(2);
  WeightedGraph g(2);
  CAD_CHECK_OK(g.SetEdge(0, 1, 0.1 + 0.2));  // non-representable decimal
  CAD_CHECK_OK(seq.Append(std::move(g)));
  std::ostringstream out;
  ASSERT_TRUE(WriteTemporalEdgeList(seq, &out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(0, 1), 0.1 + 0.2);
}

TEST(TemporalIoTest, RoundTripToyExampleThroughFile) {
  const ToyExample toy = MakeToyExample();
  const std::string path = ::testing::TempDir() + "/toy_sequence.txt";
  ASSERT_TRUE(WriteTemporalEdgeListFile(toy.sequence, path).ok());
  auto parsed = ReadTemporalEdgeListFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Snapshot(0) == toy.sequence.Snapshot(0));
  EXPECT_TRUE(parsed->Snapshot(1) == toy.sequence.Snapshot(1));
  std::remove(path.c_str());
}

TEST(TemporalIoTest, EmptySnapshotsPreserved) {
  TemporalGraphSequence seq(4);
  CAD_CHECK_OK(seq.Append(WeightedGraph(4)));
  CAD_CHECK_OK(seq.Append(WeightedGraph(4)));
  std::ostringstream out;
  ASSERT_TRUE(WriteTemporalEdgeList(seq, &out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_snapshots(), 2u);
  EXPECT_EQ(parsed->Snapshot(0).num_edges(), 0u);
}

TEST(TemporalIoTest, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "temporal 2 1\n"
      "# snapshot below\n"
      "snapshot 0\n"
      "edge 0 1 2.5\n"
      "\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(0, 1), 2.5);
}

TEST(TemporalIoTest, RejectsMissingHeader) {
  std::istringstream in("snapshot 0\nedge 0 1 1\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
}

TEST(TemporalIoTest, RejectsOutOfOrderSnapshots) {
  std::istringstream in("temporal 2 2\nsnapshot 1\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
}

TEST(TemporalIoTest, RejectsEdgeOutsideSnapshot) {
  std::istringstream in("temporal 2 1\nedge 0 1 1\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
}

TEST(TemporalIoTest, RejectsMalformedEdge) {
  std::istringstream in("temporal 2 1\nsnapshot 0\nedge 0 1\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
  std::istringstream in2("temporal 2 1\nsnapshot 0\nedge 0 x 1\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in2).ok());
}

TEST(TemporalIoTest, RejectsInvalidEdgeTarget) {
  // Node 5 out of range for 2 nodes.
  std::istringstream in("temporal 2 1\nsnapshot 0\nedge 0 5 1\n");
  auto parsed = ReadTemporalEdgeList(&in);
  EXPECT_FALSE(parsed.ok());
}

TEST(TemporalIoTest, RejectsSnapshotCountMismatch) {
  std::istringstream in("temporal 2 3\nsnapshot 0\n");
  auto parsed = ReadTemporalEdgeList(&in);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("mismatch"), std::string::npos);
}

TEST(TemporalIoTest, RejectsUnknownRecord) {
  std::istringstream in("temporal 2 1\nvertex 0\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
}

TEST(TemporalIoTest, ErrorsIncludeLineNumbers) {
  std::istringstream in("temporal 2 1\nsnapshot 0\nedge 0 1 bad\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
}

TEST(TemporalIoTest, AcceptsTabAndRepeatedSeparators) {
  // Real exports mix tabs and aligned columns; tokenization must not
  // produce empty fields from separator runs.
  std::istringstream in(
      "temporal 3 1\n"
      "snapshot 0\n"
      "edge\t0\t1\t2.5\n"
      "edge 1  2   0.5\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(0, 1), 2.5);
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(1, 2), 0.5);
}

TEST(TemporalIoTest, RejectsNonFiniteWeightWithLineNumber) {
  for (const char* bad : {"nan", "inf", "-inf"}) {
    std::istringstream in(std::string("temporal 2 1\nsnapshot 0\nedge 0 1 ") +
                          bad + "\n");
    auto parsed = ReadTemporalEdgeList(&in);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
  }
}

TEST(TemporalIoTest, FileNotFound) {
  auto parsed = ReadTemporalEdgeListFile("/nonexistent/dir/file.txt");
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
  EXPECT_EQ(
      WriteTemporalEdgeListFile(SampleSequence(), "/nonexistent/dir/file.txt")
          .code(),
      StatusCode::kIoError);
}

}  // namespace
}  // namespace cad
