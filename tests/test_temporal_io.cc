#include "io/temporal_io.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "datagen/toy_example.h"

namespace cad {
namespace {

TemporalGraphSequence SampleSequence() {
  TemporalGraphSequence seq(3);
  WeightedGraph g1(3);
  CAD_CHECK_OK(g1.SetEdge(0, 1, 1.5));
  CAD_CHECK_OK(g1.SetEdge(1, 2, 0.25));
  WeightedGraph g2(3);
  CAD_CHECK_OK(g2.SetEdge(0, 2, 3.0));
  CAD_CHECK_OK(seq.Append(std::move(g1)));
  CAD_CHECK_OK(seq.Append(std::move(g2)));
  return seq;
}

TEST(TemporalIoTest, RoundTripThroughStream) {
  const TemporalGraphSequence original = SampleSequence();
  std::ostringstream out;
  ASSERT_TRUE(WriteTemporalEdgeList(original, &out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_nodes(), 3u);
  ASSERT_EQ(parsed->num_snapshots(), 2u);
  EXPECT_TRUE(parsed->Snapshot(0) == original.Snapshot(0));
  EXPECT_TRUE(parsed->Snapshot(1) == original.Snapshot(1));
}

TEST(TemporalIoTest, RoundTripPreservesExactWeights) {
  TemporalGraphSequence seq(2);
  WeightedGraph g(2);
  CAD_CHECK_OK(g.SetEdge(0, 1, 0.1 + 0.2));  // non-representable decimal
  CAD_CHECK_OK(seq.Append(std::move(g)));
  std::ostringstream out;
  ASSERT_TRUE(WriteTemporalEdgeList(seq, &out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(0, 1), 0.1 + 0.2);
}

TEST(TemporalIoTest, RoundTripToyExampleThroughFile) {
  const ToyExample toy = MakeToyExample();
  const std::string path = ::testing::TempDir() + "/toy_sequence.txt";
  ASSERT_TRUE(WriteTemporalEdgeListFile(toy.sequence, path).ok());
  auto parsed = ReadTemporalEdgeListFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Snapshot(0) == toy.sequence.Snapshot(0));
  EXPECT_TRUE(parsed->Snapshot(1) == toy.sequence.Snapshot(1));
  std::remove(path.c_str());
}

TEST(TemporalIoTest, EmptySnapshotsPreserved) {
  TemporalGraphSequence seq(4);
  CAD_CHECK_OK(seq.Append(WeightedGraph(4)));
  CAD_CHECK_OK(seq.Append(WeightedGraph(4)));
  std::ostringstream out;
  ASSERT_TRUE(WriteTemporalEdgeList(seq, &out).ok());
  std::istringstream in(out.str());
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_snapshots(), 2u);
  EXPECT_EQ(parsed->Snapshot(0).num_edges(), 0u);
}

TEST(TemporalIoTest, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "temporal 2 1\n"
      "# snapshot below\n"
      "snapshot 0\n"
      "edge 0 1 2.5\n"
      "\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(0, 1), 2.5);
}

TEST(TemporalIoTest, RejectsMissingHeader) {
  std::istringstream in("snapshot 0\nedge 0 1 1\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
}

TEST(TemporalIoTest, RejectsOutOfOrderSnapshots) {
  std::istringstream in("temporal 2 2\nsnapshot 1\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
}

TEST(TemporalIoTest, RejectsEdgeOutsideSnapshot) {
  std::istringstream in("temporal 2 1\nedge 0 1 1\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
}

TEST(TemporalIoTest, RejectsMalformedEdge) {
  std::istringstream in("temporal 2 1\nsnapshot 0\nedge 0 1\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
  std::istringstream in2("temporal 2 1\nsnapshot 0\nedge 0 x 1\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in2).ok());
}

TEST(TemporalIoTest, RejectsInvalidEdgeTarget) {
  // Node 5 out of range for 2 nodes.
  std::istringstream in("temporal 2 1\nsnapshot 0\nedge 0 5 1\n");
  auto parsed = ReadTemporalEdgeList(&in);
  EXPECT_FALSE(parsed.ok());
}

TEST(TemporalIoTest, RejectsSnapshotCountMismatch) {
  std::istringstream in("temporal 2 3\nsnapshot 0\n");
  auto parsed = ReadTemporalEdgeList(&in);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("mismatch"), std::string::npos);
}

TEST(TemporalIoTest, RejectsUnknownRecord) {
  std::istringstream in("temporal 2 1\nvertex 0\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
}

TEST(TemporalIoTest, ErrorsIncludeLineNumbers) {
  std::istringstream in("temporal 2 1\nsnapshot 0\nedge 0 1 bad\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
}

TEST(TemporalIoTest, AcceptsTabAndRepeatedSeparators) {
  // Real exports mix tabs and aligned columns; tokenization must not
  // produce empty fields from separator runs.
  std::istringstream in(
      "temporal 3 1\n"
      "snapshot 0\n"
      "edge\t0\t1\t2.5\n"
      "edge 1  2   0.5\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(0, 1), 2.5);
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(1, 2), 0.5);
}

TEST(TemporalIoTest, RejectsNonFiniteWeightWithLineNumber) {
  for (const char* bad : {"nan", "inf", "-inf"}) {
    std::istringstream in(std::string("temporal 2 1\nsnapshot 0\nedge 0 1 ") +
                          bad + "\n");
    auto parsed = ReadTemporalEdgeList(&in);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
  }
}

TEST(TemporalIoTest, FileNotFound) {
  auto parsed = ReadTemporalEdgeListFile("/nonexistent/dir/file.txt");
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
  EXPECT_EQ(
      WriteTemporalEdgeListFile(SampleSequence(), "/nonexistent/dir/file.txt")
          .code(),
      StatusCode::kIoError);
}

TEST(TemporalIoTest, DuplicateEdgeRecordsAccumulate) {
  // Repeated 'edge u v w' within one snapshot sums the weights (the format
  // contract); both endpoint orders address the same undirected edge.
  std::istringstream in(
      "temporal 3 1\n"
      "snapshot 0\n"
      "edge 0 1 1.5\n"
      "edge 1 0 2.0\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(0, 1), 3.5);
}

TEST(TemporalIoTest, NamedModeInternsInFirstAppearanceOrder) {
  std::istringstream in(
      "temporal ? 2\n"
      "snapshot 0\n"
      "edge alice bob 1.0\n"
      "snapshot 1\n"
      "edge bob carol 2.0\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_nodes(), 3u);
  ASSERT_NE(parsed->vocabulary(), nullptr);
  EXPECT_EQ(parsed->vocabulary()->Name(0), "alice");
  EXPECT_EQ(parsed->vocabulary()->Name(1), "bob");
  EXPECT_EQ(parsed->vocabulary()->Name(2), "carol");
  // Every snapshot is sized to the full discovered node set: carol exists
  // (isolated) in snapshot 0 even though she first appears in snapshot 1.
  EXPECT_EQ(parsed->Snapshot(0).num_nodes(), 3u);
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(0, 1), 1.0);
  EXPECT_EQ(parsed->Snapshot(1).EdgeWeight(1, 2), 2.0);
}

TEST(TemporalIoTest, NamedModeDuplicateEdgesAccumulateToo) {
  // The accumulate contract holds in both loaders' modes.
  std::istringstream in(
      "temporal ? 1\n"
      "snapshot 0\n"
      "edge a b 1.0\n"
      "edge b a 0.5\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Snapshot(0).EdgeWeight(0, 1), 1.5);
}

TEST(TemporalIoTest, ZeroNodeHeaderAlsoMeansInfer) {
  std::istringstream in(
      "temporal 0 1\n"
      "snapshot 0\n"
      "edge x y 4.0\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_nodes(), 2u);
  ASSERT_NE(parsed->vocabulary(), nullptr);
  EXPECT_EQ(parsed->vocabulary()->Name(0), "x");
}

TEST(TemporalIoTest, NamedRoundTripPreservesVocabularyExactly) {
  // Includes a node that never touches an edge: the 'node' records carry it.
  std::istringstream in(
      "temporal ? 2\n"
      "node isolated_one\n"
      "snapshot 0\n"
      "edge alice bob 1.25\n"
      "snapshot 1\n"
      "edge alice bob 2.0\n");
  auto original = ReadTemporalEdgeList(&in);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  EXPECT_EQ(original->num_nodes(), 3u);
  EXPECT_EQ(original->vocabulary()->Name(0), "isolated_one");

  std::ostringstream out;
  ASSERT_TRUE(WriteTemporalEdgeList(*original, &out).ok());
  std::istringstream in2(out.str());
  auto reparsed = ReadTemporalEdgeList(&in2);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_NE(reparsed->vocabulary(), nullptr);
  EXPECT_TRUE(*reparsed->vocabulary() == *original->vocabulary());
  ASSERT_EQ(reparsed->num_snapshots(), 2u);
  EXPECT_TRUE(reparsed->Snapshot(0) == original->Snapshot(0));
  EXPECT_TRUE(reparsed->Snapshot(1) == original->Snapshot(1));

  // And the second write is byte-identical to the first (stable format).
  std::ostringstream out2;
  ASSERT_TRUE(WriteTemporalEdgeList(*reparsed, &out2).ok());
  EXPECT_EQ(out.str(), out2.str());
}

TEST(TemporalIoTest, IntegerModeOutputUnchangedByVocabularyLayer) {
  // Integer sequences must write exactly the historical format: no 'node'
  // records, no '?' header.
  std::ostringstream out;
  ASSERT_TRUE(WriteTemporalEdgeList(SampleSequence(), &out).ok());
  EXPECT_EQ(out.str().find("node "), std::string::npos);
  EXPECT_NE(out.str().find("temporal 3 2"), std::string::npos);
}

TEST(TemporalIoTest, NodeRecordRequiresInferredHeader) {
  std::istringstream in(
      "temporal 2 1\n"
      "node alice\n"
      "snapshot 0\n"
      "edge 0 1 1.0\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
}

TEST(TemporalIoTest, NamedModeRejectsSelfLoopByName) {
  std::istringstream in(
      "temporal ? 1\n"
      "snapshot 0\n"
      "edge alice alice 1.0\n");
  auto parsed = ReadTemporalEdgeList(&in);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
}

TEST(TemporalIoTest, NamedModeRejectsNegativeWeight) {
  std::istringstream in(
      "temporal ? 1\n"
      "snapshot 0\n"
      "edge a b -1.0\n");
  EXPECT_FALSE(ReadTemporalEdgeList(&in).ok());
}

}  // namespace
}  // namespace cad
