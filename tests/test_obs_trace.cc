// Tests for the tracing half of src/obs/: span nesting, the disabled
// fast-path, the post-run merge of per-thread buffers, the Chrome-trace JSON
// shape, and the bridge from spans into `span.<name>` timer metrics.
//
// Tracing state is process-global; every test starts from ScopedTracingEnable
// (which resets recorded events) or resets explicitly.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/obs.h"

namespace cad {
namespace obs {
namespace {

#ifndef CAD_OBS_DISABLED

std::vector<TraceEvent> EventsNamed(const std::vector<TraceEvent>& events,
                                    const std::string& name) {
  std::vector<TraceEvent> matching;
  for (const TraceEvent& event : events) {
    if (name == event.name) matching.push_back(event);
  }
  return matching;
}

TEST(TraceSpanTest, DisabledSpansRecordNoEvents) {
  ASSERT_FALSE(TracingEnabled());
  ASSERT_FALSE(MetricsEnabled());
  ResetTracing();
  { CAD_TRACE_SPAN("never_recorded"); }
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST(TraceSpanTest, NestedSpansCarryDepthsAndContainment) {
  const ScopedTracingEnable enable;
  {
    CAD_TRACE_SPAN("outer");
    { CAD_TRACE_SPAN("inner"); }
    { CAD_TRACE_SPAN("inner"); }
  }
  const std::vector<TraceEvent> events = CollectTraceEvents();
  const std::vector<TraceEvent> outer = EventsNamed(events, "outer");
  const std::vector<TraceEvent> inner = EventsNamed(events, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 2u);
  EXPECT_EQ(outer[0].depth, 0u);
  for (const TraceEvent& event : inner) {
    EXPECT_EQ(event.depth, 1u);
    EXPECT_EQ(event.thread_index, outer[0].thread_index);
    // Interval containment is what lets chrome://tracing rebuild the tree.
    EXPECT_GE(event.start_ns, outer[0].start_ns);
    EXPECT_LE(event.end_ns, outer[0].end_ns);
    EXPECT_LE(event.start_ns, event.end_ns);
  }
}

TEST(TraceSpanTest, WorkerThreadEventsMergeIntoOneCollection) {
  const ScopedTracingEnable enable;
  constexpr size_t kTasks = 16;
  ParallelFor(kTasks, 4, [](size_t) { CAD_TRACE_SPAN("worker_task"); });
  const std::vector<TraceEvent> events = CollectTraceEvents();
  // Every task's span survives the workers' thread exit (retired-list merge),
  // and the instrumented ParallelFor contributes its own span.
  EXPECT_EQ(EventsNamed(events, "worker_task").size(), kTasks);
  EXPECT_EQ(EventsNamed(events, "parallel_for").size(), 1u);
  // Collection is sorted by (thread_index, start).
  for (size_t i = 1; i < events.size(); ++i) {
    const bool ordered =
        events[i - 1].thread_index < events[i].thread_index ||
        (events[i - 1].thread_index == events[i].thread_index &&
         events[i - 1].start_ns <= events[i].start_ns);
    EXPECT_TRUE(ordered) << "events out of order at index " << i;
  }
}

TEST(TraceSpanTest, ResetDropsRecordedEvents) {
  const ScopedTracingEnable enable;
  { CAD_TRACE_SPAN("to_be_dropped"); }
  ASSERT_FALSE(CollectTraceEvents().empty());
  ResetTracing();
  EXPECT_TRUE(EventsNamed(CollectTraceEvents(), "to_be_dropped").empty());
}

TEST(TraceSpanTest, ChromeTraceJsonContainsCompleteEvents) {
  const ScopedTracingEnable enable;
  {
    CAD_TRACE_SPAN("json_outer");
    CAD_TRACE_SPAN("json_inner");
  }
  std::ostringstream out;
  ASSERT_TRUE(WriteChromeTraceJson(&out).ok());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"json_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"json_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);
  EXPECT_NE(json.find("\"X\""), std::string::npos);
}

TEST(TraceSpanTest, SpansBridgeToTimerMetricsWithoutTracing) {
  // Metrics-only mode: per-stage wall times must reach the metrics CSV even
  // when no trace is being captured.
  ASSERT_FALSE(TracingEnabled());
  const ScopedMetricsEnable enable;
  ResetTracing();
  { CAD_TRACE_SPAN("bridge_only_span"); }
  EXPECT_TRUE(CollectTraceEvents().empty());  // no trace events...
  const MetricsSnapshot snapshot = SnapshotMetrics();
  bool found = false;
  for (const auto& [name, data] : snapshot.timers) {
    if (name == "span.bridge_only_span") {
      found = true;
      EXPECT_EQ(data.count, 1u);
    }
  }
  EXPECT_TRUE(found);  // ...but the timer metric is there
}

TEST(TraceSpanTest, TracingAndMetricsTogetherRecordBoth) {
  const ScopedMetricsEnable metrics;
  const ScopedTracingEnable tracing;
  { CAD_TRACE_SPAN("both_modes_span"); }
  EXPECT_EQ(EventsNamed(CollectTraceEvents(), "both_modes_span").size(), 1u);
  const MetricsSnapshot snapshot = SnapshotMetrics();
  bool found = false;
  for (const auto& [name, data] : snapshot.timers) {
    if (name == "span.both_modes_span") found = data.count == 1;
  }
  EXPECT_TRUE(found);
}

#endif  // CAD_OBS_DISABLED

}  // namespace
}  // namespace obs
}  // namespace cad
