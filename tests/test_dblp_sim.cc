#include "datagen/dblp_sim.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace cad {
namespace {

DblpSimOptions SmallOptions(uint64_t seed = 21) {
  DblpSimOptions options;
  options.num_authors = 400;
  options.num_years = 6;
  options.num_communities = 8;
  options.seed = seed;
  return options;
}

const DblpSimData& SharedData() {
  static const DblpSimData* data =
      new DblpSimData(MakeDblpStyleData(SmallOptions()));
  return *data;
}

TEST(DblpSimTest, ShapeConsistent) {
  const DblpSimData& data = SharedData();
  EXPECT_EQ(data.sequence.num_nodes(), 400u);
  EXPECT_EQ(data.sequence.num_snapshots(), 6u);
  EXPECT_EQ(data.community.size(), 400u);
  EXPECT_EQ(data.stories.size(), 3u);
}

TEST(DblpSimTest, StoryKindNames) {
  EXPECT_STREQ(
      CollaborationStoryKindToString(CollaborationStoryKind::kFieldSwitch),
      "field-switch");
  EXPECT_STREQ(CollaborationStoryKindToString(
                   CollaborationStoryKind::kCrossAreaCollaboration),
               "cross-area-collaboration");
  EXPECT_STREQ(
      CollaborationStoryKindToString(CollaborationStoryKind::kSeveredTie),
      "severed-tie");
}

TEST(DblpSimTest, StoriesHaveExpectedKindsAndOrder) {
  const DblpSimData& data = SharedData();
  EXPECT_EQ(data.stories[0].kind, CollaborationStoryKind::kFieldSwitch);
  EXPECT_EQ(data.stories[1].kind,
            CollaborationStoryKind::kCrossAreaCollaboration);
  EXPECT_EQ(data.stories[2].kind, CollaborationStoryKind::kSeveredTie);
  // The two switch stories share a transition (for severity comparison).
  EXPECT_EQ(data.stories[0].transition, data.stories[1].transition);
  EXPECT_GT(data.stories[2].transition, data.stories[0].transition);
}

TEST(DblpSimTest, StoryProtagonistsInDistinctCommunities) {
  const DblpSimData& data = SharedData();
  EXPECT_NE(data.community[data.stories[0].author],
            data.community[data.stories[1].author]);
  EXPECT_NE(data.community[data.stories[0].author],
            data.community[data.stories[2].author]);
}

TEST(DblpSimTest, FieldSwitchCounterpartsAreCrossCommunity) {
  const DblpSimData& data = SharedData();
  const CollaborationStory& story = data.stories[0];
  for (NodeId counterpart : story.counterparts) {
    EXPECT_NE(data.community[story.author], data.community[counterpart]);
  }
}

TEST(DblpSimTest, FieldSwitchDropsOldTiesGainsNew) {
  const DblpSimData& data = SharedData();
  const CollaborationStory& story = data.stories[0];
  const size_t before_year = story.transition;
  const size_t after_year = story.transition + 1;
  const WeightedGraph& before = data.sequence.Snapshot(before_year);
  const WeightedGraph& after = data.sequence.Snapshot(after_year);

  // After the switch, the protagonist's collaborations are exactly the new
  // cross-community ones (up to Poisson zeros).
  for (NodeId counterpart : story.counterparts) {
    EXPECT_EQ(before.EdgeWeight(story.author, counterpart), 0.0);
  }
  double new_weight = 0.0;
  for (NodeId counterpart : story.counterparts) {
    new_weight += after.EdgeWeight(story.author, counterpart);
  }
  EXPECT_GT(new_weight, 0.0);
  // Old same-community ties are gone.
  for (NodeId other = 0; other < 400; ++other) {
    if (other == story.author) continue;
    if (data.community[other] == data.community[story.author]) {
      EXPECT_EQ(after.EdgeWeight(story.author, other), 0.0);
    }
  }
}

TEST(DblpSimTest, SeveredTieDisappears) {
  const DblpSimData& data = SharedData();
  const CollaborationStory& story = data.stories[2];
  const NodeId a = story.author;
  const NodeId b = story.counterparts[0];
  // Strong before (rate 8 -> almost surely positive), zero after.
  EXPECT_GT(data.sequence.Snapshot(story.transition).EdgeWeight(a, b), 2.0);
  for (size_t year = story.transition + 1; year < 6; ++year) {
    EXPECT_EQ(data.sequence.Snapshot(year).EdgeWeight(a, b), 0.0);
  }
}

TEST(DblpSimTest, BenignChurnExistsBetweenYears) {
  const DblpSimData& data = SharedData();
  // Even away from story transitions, yearly Poisson draws change weights.
  EXPECT_FALSE(data.sequence.Snapshot(0) == data.sequence.Snapshot(1));
}

TEST(DblpSimTest, EdgeWeightsArePaperCountsPlusBackbone) {
  const DblpSimData& data = SharedData();
  for (const Edge& e : data.sequence.Snapshot(2).Edges()) {
    EXPECT_GT(e.weight, 0.0);
    // Integer paper counts, possibly plus the constant 0.25 venue backbone.
    const double fractional = e.weight - std::floor(e.weight);
    EXPECT_TRUE(fractional == 0.0 || fractional == 0.25) << e.weight;
  }
}

TEST(DblpSimTest, SnapshotsAreConnectedViaBackbone) {
  const DblpSimData& data = SharedData();
  for (size_t year = 0; year < data.sequence.num_snapshots(); ++year) {
    // The venue backbone chain guarantees a single component every year.
    EXPECT_EQ(data.sequence.Snapshot(year).EdgeWeight(10, 11) >= 0.25, true);
  }
}

TEST(DblpSimTest, CommunitiesBalanced) {
  const DblpSimData& data = SharedData();
  std::vector<int> counts(8, 0);
  for (uint32_t c : data.community) ++counts[c];
  for (int count : counts) EXPECT_EQ(count, 50);
}

TEST(DblpSimTest, DeterministicGivenSeed) {
  const DblpSimData a = MakeDblpStyleData(SmallOptions(5));
  const DblpSimData b = MakeDblpStyleData(SmallOptions(5));
  EXPECT_TRUE(a.sequence.Snapshot(3) == b.sequence.Snapshot(3));
}

}  // namespace
}  // namespace cad
