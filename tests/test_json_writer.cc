#include "common/json_writer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "app/pipeline.h"
#include "datagen/toy_example.h"

namespace cad {
namespace {

TEST(EscapeJsonStringTest, Escapes) {
  EXPECT_EQ(EscapeJsonString("plain"), "plain");
  EXPECT_EQ(EscapeJsonString("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeJsonString("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapeJsonString("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(EscapeJsonString(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, ScalarValues) {
  {
    std::ostringstream out;
    JsonWriter json(&out);
    json.String("hi");
    EXPECT_EQ(out.str(), "\"hi\"");
    EXPECT_TRUE(json.complete());
  }
  {
    std::ostringstream out;
    JsonWriter json(&out);
    json.Number(2.5);
    EXPECT_EQ(out.str(), "2.5");
  }
  {
    std::ostringstream out;
    JsonWriter json(&out);
    json.Bool(true);
    EXPECT_EQ(out.str(), "true");
  }
  {
    std::ostringstream out;
    JsonWriter json(&out);
    json.Null();
    EXPECT_EQ(out.str(), "null");
  }
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  std::ostringstream out;
  JsonWriter json(&out);
  json.BeginObject();
  json.Key("name");
  json.String("cad");
  json.Key("count");
  json.Number(int64_t{3});
  json.Key("ok");
  json.Bool(false);
  json.EndObject();
  EXPECT_EQ(out.str(), "{\"name\":\"cad\",\"count\":3,\"ok\":false}");
  EXPECT_TRUE(json.complete());
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  std::ostringstream out;
  JsonWriter json(&out);
  json.BeginObject();
  json.Key("rows");
  json.BeginArray();
  json.Number(int64_t{1});
  json.BeginArray();
  json.Number(int64_t{2});
  json.Number(int64_t{3});
  json.EndArray();
  json.BeginObject();
  json.Key("x");
  json.Null();
  json.EndObject();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(out.str(), "{\"rows\":[1,[2,3],{\"x\":null}]}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  JsonWriter json(&out);
  json.BeginArray();
  json.Number(std::numeric_limits<double>::infinity());
  json.Number(std::nan(""));
  json.EndArray();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(JsonWriterTest, EmptyContainers) {
  std::ostringstream out;
  JsonWriter json(&out);
  json.BeginObject();
  json.Key("empty_array");
  json.BeginArray();
  json.EndArray();
  json.Key("empty_object");
  json.BeginObject();
  json.EndObject();
  json.EndObject();
  EXPECT_EQ(out.str(), "{\"empty_array\":[],\"empty_object\":{}}");
}

TEST(PipelineJsonTest, ToyReportIsWellFormed) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.nodes_per_transition = 6.0;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  std::ostringstream out;
  ASSERT_TRUE(WritePipelineResultJson(*result, &out).ok());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"method\":\"CAD\""), std::string::npos);
  EXPECT_NE(json.find("\"case\":\"case-2-new-bridge\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes\":[0,3,4,8,14,15]"), std::string::npos);
  // Brace balance as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace cad
