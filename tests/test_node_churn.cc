// Node-churn coverage (DESIGN.md §8): sequences whose node set grows must
// behave exactly like their full-size counterparts with the late nodes
// isolated early on — same consistency verdicts, same transition scores
// under both commute engines, bit for bit.

#include <gtest/gtest.h>

#include "core/cad_detector.h"
#include "graph/temporal_graph.h"

namespace cad {
namespace {

// Snapshot 0 at 6 nodes: a 6-cycle.
WeightedGraph EarlySnapshot(size_t n) {
  WeightedGraph g(n);
  for (NodeId i = 0; i < 5; ++i) CAD_CHECK_OK(g.SetEdge(i, i + 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(0, 5, 1.0));
  return g;
}

// Snapshot 1 at 8 nodes: nodes 6 and 7 appear (attached to the cycle) while
// node 2 loses all of its edges.
WeightedGraph LateSnapshot() {
  WeightedGraph g(8);
  for (const Edge& e : EarlySnapshot(8).Edges()) {
    if (e.u == 2 || e.v == 2) continue;
    CAD_CHECK_OK(g.SetEdge(e.u, e.v, e.weight));
  }
  CAD_CHECK_OK(g.SetEdge(5, 6, 2.0));
  CAD_CHECK_OK(g.SetEdge(6, 7, 1.0));
  return g;
}

// The grown sequence: snapshot 0 ingested at 6 nodes, snapshot 1 at 8.
TemporalGraphSequence GrownSequence() {
  TemporalGraphSequence seq(6);
  CAD_CHECK_OK(seq.AppendGrowing(EarlySnapshot(6)));
  CAD_CHECK_OK(seq.AppendGrowing(LateSnapshot()));
  return seq;
}

// The same history declared at the full size up front.
TemporalGraphSequence PremappedSequence() {
  TemporalGraphSequence seq(8);
  CAD_CHECK_OK(seq.Append(EarlySnapshot(8)));
  CAD_CHECK_OK(seq.Append(LateSnapshot()));
  return seq;
}

TEST(NodeChurnTest, AppendGrowingGrowsEarlierSnapshots) {
  const TemporalGraphSequence seq = GrownSequence();
  EXPECT_EQ(seq.num_nodes(), 8u);
  EXPECT_EQ(seq.Snapshot(0).num_nodes(), 8u);  // grown, new nodes isolated
  EXPECT_EQ(seq.Snapshot(0).EdgeWeight(0, 1), 1.0);
  EXPECT_EQ(seq.Snapshot(0).EdgeWeight(5, 6), 0.0);
}

TEST(NodeChurnTest, CheckConsistentAcceptsGrownSequences) {
  CAD_CHECK_OK(GrownSequence().CheckConsistent());
}

TEST(NodeChurnTest, AppendGrowingGrowsSmallerSnapshotsToo) {
  TemporalGraphSequence seq(8);
  CAD_CHECK_OK(seq.Append(EarlySnapshot(8)));
  CAD_CHECK_OK(seq.AppendGrowing(EarlySnapshot(6)));  // grown to 8 on entry
  EXPECT_EQ(seq.Snapshot(1).num_nodes(), 8u);
  CAD_CHECK_OK(seq.CheckConsistent());
}

TEST(NodeChurnTest, GrowToRejectsShrink) {
  TemporalGraphSequence seq(8);
  EXPECT_EQ(seq.GrowTo(4).code(), StatusCode::kInvalidArgument);
}

void ExpectIdenticalScores(CommuteEngine engine) {
  CadOptions options;
  options.engine = engine;
  options.approx.embedding_dim = 4;
  options.approx.seed = 3;
  CadDetector detector(options);
  auto grown = detector.Analyze(GrownSequence());
  auto premapped = detector.Analyze(PremappedSequence());
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  ASSERT_TRUE(premapped.ok()) << premapped.status().ToString();
  ASSERT_EQ(grown->size(), premapped->size());
  for (size_t t = 0; t < grown->size(); ++t) {
    const TransitionScores& a = (*grown)[t];
    const TransitionScores& b = (*premapped)[t];
    EXPECT_EQ(a.total_score, b.total_score);
    EXPECT_EQ(a.node_scores, b.node_scores);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (size_t i = 0; i < a.edges.size(); ++i) {
      EXPECT_EQ(a.edges[i].pair, b.edges[i].pair);
      EXPECT_EQ(a.edges[i].score, b.edges[i].score);
      EXPECT_EQ(a.edges[i].weight_delta, b.edges[i].weight_delta);
      EXPECT_EQ(a.edges[i].commute_delta, b.edges[i].commute_delta);
    }
  }
}

TEST(NodeChurnTest, GrownScoresMatchPremappedExact) {
  ExpectIdenticalScores(CommuteEngine::kExact);
}

TEST(NodeChurnTest, GrownScoresMatchPremappedApprox) {
  ExpectIdenticalScores(CommuteEngine::kApprox);
}

TEST(NodeChurnTest, VocabularySizeMustMatchNodeCount) {
  TemporalGraphSequence seq(2);
  Result<NodeVocabulary> small = NodeVocabulary::FromNames({"a"});
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(seq.SetVocabulary(*small).ok());
  Result<NodeVocabulary> exact_size = NodeVocabulary::FromNames({"a", "b"});
  ASSERT_TRUE(exact_size.ok());
  CAD_CHECK_OK(seq.SetVocabulary(*exact_size));
  ASSERT_NE(seq.vocabulary(), nullptr);
  EXPECT_EQ(seq.vocabulary()->Name(1), "b");
  // Growing the node set past the vocabulary breaks the covering invariant,
  // which CheckConsistent reports.
  CAD_CHECK_OK(seq.GrowTo(3));
  EXPECT_FALSE(seq.CheckConsistent().ok());
}

}  // namespace
}  // namespace cad
