#include "datagen/synthetic_gmm.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace cad {
namespace {

GmmBenchmarkOptions SmallOptions(uint64_t seed = 1) {
  GmmBenchmarkOptions options;
  options.num_points = 120;
  options.seed = seed;
  return options;
}

TEST(SyntheticGmmTest, ShapesConsistent) {
  const GmmBenchmarkInstance instance = MakeGmmBenchmark(SmallOptions());
  EXPECT_EQ(instance.sequence.num_snapshots(), 2u);
  EXPECT_EQ(instance.sequence.num_nodes(), 120u);
  EXPECT_EQ(instance.cluster.size(), 120u);
  EXPECT_EQ(instance.node_is_anomalous.size(), 120u);
}

TEST(SyntheticGmmTest, GroundTruthNonDegenerate) {
  const GmmBenchmarkInstance instance = MakeGmmBenchmark(SmallOptions());
  const size_t positives = static_cast<size_t>(
      std::count(instance.node_is_anomalous.begin(),
                 instance.node_is_anomalous.end(), true));
  EXPECT_GT(positives, 0u);
  EXPECT_LT(positives, 120u);
  EXPECT_FALSE(instance.anomalous_edges.empty());
}

TEST(SyntheticGmmTest, AnomalousEdgesAreCrossCluster) {
  const GmmBenchmarkInstance instance = MakeGmmBenchmark(SmallOptions(7));
  for (const NodePair& pair : instance.anomalous_edges) {
    EXPECT_NE(instance.cluster[pair.u], instance.cluster[pair.v]);
  }
}

TEST(SyntheticGmmTest, AnomalousNodesMatchEdges) {
  const GmmBenchmarkInstance instance = MakeGmmBenchmark(SmallOptions(9));
  std::vector<bool> expected(instance.node_is_anomalous.size(), false);
  for (const NodePair& pair : instance.anomalous_edges) {
    expected[pair.u] = true;
    expected[pair.v] = true;
  }
  EXPECT_EQ(instance.node_is_anomalous, expected);
}

TEST(SyntheticGmmTest, FirstSnapshotIsSimilarityGraph) {
  const GmmBenchmarkInstance instance = MakeGmmBenchmark(SmallOptions());
  const WeightedGraph& p = instance.sequence.Snapshot(0);
  // exp(-d) weights lie in (0, 1].
  for (const Edge& e : p.Edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 1.0);
  }
  // Near-complete graph at this scale.
  EXPECT_GT(p.num_edges(), 120u * 119u / 4);
}

TEST(SyntheticGmmTest, PerturbationsAddWeight) {
  const GmmBenchmarkInstance instance = MakeGmmBenchmark(SmallOptions(11));
  const WeightedGraph& before = instance.sequence.Snapshot(0);
  const WeightedGraph& after = instance.sequence.Snapshot(1);
  // The perturbed cross-cluster pairs gained U(0,1) mass on top of a small
  // base similarity; they should mostly have grown.
  size_t grew = 0;
  for (const NodePair& pair : instance.anomalous_edges) {
    if (after.EdgeWeight(pair.u, pair.v) > before.EdgeWeight(pair.u, pair.v)) {
      ++grew;
    }
  }
  EXPECT_GE(grew * 10, instance.anomalous_edges.size() * 9);
}

TEST(SyntheticGmmTest, DeterministicGivenSeed) {
  const GmmBenchmarkInstance a = MakeGmmBenchmark(SmallOptions(3));
  const GmmBenchmarkInstance b = MakeGmmBenchmark(SmallOptions(3));
  EXPECT_TRUE(a.sequence.Snapshot(0) == b.sequence.Snapshot(0));
  EXPECT_TRUE(a.sequence.Snapshot(1) == b.sequence.Snapshot(1));
  EXPECT_EQ(a.anomalous_edges.size(), b.anomalous_edges.size());
}

TEST(SyntheticGmmTest, DifferentSeedsDiffer) {
  const GmmBenchmarkInstance a = MakeGmmBenchmark(SmallOptions(3));
  const GmmBenchmarkInstance b = MakeGmmBenchmark(SmallOptions(4));
  EXPECT_FALSE(a.sequence.Snapshot(0) == b.sequence.Snapshot(0));
}

TEST(SyntheticGmmTest, ForcedAnomalyWhenDrawProducesNone) {
  GmmBenchmarkOptions options = SmallOptions();
  options.num_points = 30;
  options.perturbations_per_node = 0.0;  // no random perturbations at all
  const GmmBenchmarkInstance instance = MakeGmmBenchmark(options);
  EXPECT_EQ(instance.anomalous_edges.size(), 1u);  // the forced one
}

TEST(SyntheticGmmTest, CrossClusterFractionControlsGroundTruthSize) {
  GmmBenchmarkOptions mostly_within = SmallOptions(13);
  mostly_within.cross_cluster_fraction = 0.1;
  GmmBenchmarkOptions mostly_cross = SmallOptions(13);
  mostly_cross.cross_cluster_fraction = 0.9;
  const size_t few = MakeGmmBenchmark(mostly_within).anomalous_edges.size();
  const size_t many = MakeGmmBenchmark(mostly_cross).anomalous_edges.size();
  EXPECT_LT(few, many);
}

}  // namespace
}  // namespace cad
