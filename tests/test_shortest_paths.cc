#include "graph/shortest_paths.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(DijkstraTest, UnitLengthsOnPath) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(0, 1, 5.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 5.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 5.0).ok());
  const std::vector<double> dist =
      DijkstraDistances(g, 0, EdgeLengthMode::kUnit);
  EXPECT_EQ(dist, (std::vector<double>{0, 1, 2, 3}));
}

TEST(DijkstraTest, InverseWeightLengths) {
  // Stronger edges are shorter: 0-1 weight 2 has length 0.5.
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 4.0).ok());
  const std::vector<double> dist =
      DijkstraDistances(g, 0, EdgeLengthMode::kInverseWeight);
  EXPECT_DOUBLE_EQ(dist[1], 0.5);
  EXPECT_DOUBLE_EQ(dist[2], 0.75);
}

TEST(DijkstraTest, PicksShorterOfTwoRoutes) {
  WeightedGraph g(4);
  // Route A: 0-1-3 with lengths 1 + 1; Route B: 0-2-3 with lengths 0.25+0.25.
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 3, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(0, 2, 4.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 4.0).ok());
  const std::vector<double> dist =
      DijkstraDistances(g, 0, EdgeLengthMode::kInverseWeight);
  EXPECT_DOUBLE_EQ(dist[3], 0.5);
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  WeightedGraph g(3);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  const std::vector<double> dist =
      DijkstraDistances(g, 0, EdgeLengthMode::kUnit);
  EXPECT_EQ(dist[2], kInfiniteDistance);
}

TEST(DijkstraTest, SourceIsZero) {
  WeightedGraph g(2);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  EXPECT_EQ(DijkstraDistances(g, 1, EdgeLengthMode::kUnit)[1], 0.0);
}

TEST(DijkstraTest, SymmetricDistances) {
  WeightedGraph g(5);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 2.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 0.5).ok());
  ASSERT_TRUE(g.SetEdge(3, 4, 1.5).ok());
  ASSERT_TRUE(g.SetEdge(0, 4, 0.25).ok());
  const auto adjacency = g.AdjacencyLists();
  for (NodeId s = 0; s < 5; ++s) {
    const auto from_s =
        DijkstraDistances(adjacency, s, EdgeLengthMode::kInverseWeight);
    for (NodeId t = 0; t < 5; ++t) {
      const auto from_t =
          DijkstraDistances(adjacency, t, EdgeLengthMode::kInverseWeight);
      EXPECT_NEAR(from_s[t], from_t[s], 1e-12);
    }
  }
}

TEST(DijkstraTest, TriangleInequality) {
  WeightedGraph g(6);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 3.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 2.0).ok());
  ASSERT_TRUE(g.SetEdge(3, 4, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(4, 5, 2.0).ok());
  ASSERT_TRUE(g.SetEdge(0, 5, 0.5).ok());
  ASSERT_TRUE(g.SetEdge(1, 4, 1.0).ok());
  const auto adjacency = g.AdjacencyLists();
  std::vector<std::vector<double>> dist;
  for (NodeId s = 0; s < 6; ++s) {
    dist.push_back(
        DijkstraDistances(adjacency, s, EdgeLengthMode::kInverseWeight));
  }
  for (NodeId a = 0; a < 6; ++a) {
    for (NodeId b = 0; b < 6; ++b) {
      for (NodeId c = 0; c < 6; ++c) {
        EXPECT_LE(dist[a][b], dist[a][c] + dist[c][b] + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace cad
