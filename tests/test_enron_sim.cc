#include "datagen/enron_sim.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace cad {
namespace {

const EnronSimData& SharedData() {
  static const EnronSimData* data = new EnronSimData(MakeEnronStyleData());
  return *data;
}

TEST(EnronSimTest, ShapeMatchesPaperCorpus) {
  const EnronSimData& data = SharedData();
  EXPECT_EQ(data.sequence.num_nodes(), 151u);
  EXPECT_EQ(data.sequence.num_snapshots(), 48u);
  EXPECT_EQ(data.node_names.size(), 151u);
  EXPECT_EQ(data.node_roles.size(), 151u);
}

TEST(EnronSimTest, RolesAssigned) {
  const EnronSimData& data = SharedData();
  EXPECT_EQ(data.node_roles[data.ceo], "ceo");
  EXPECT_EQ(data.node_roles[data.incoming_ceo], "incoming_ceo");
  EXPECT_EQ(data.node_roles[data.assistant], "assistant");
  EXPECT_EQ(data.node_roles[data.energy_ceo], "energy_ceo");
  const auto count_role = [&data](const std::string& role) {
    return std::count(data.node_roles.begin(), data.node_roles.end(), role);
  };
  EXPECT_EQ(count_role("exec"), 10);
  EXPECT_EQ(count_role("legal"), 12);
  EXPECT_GT(count_role("trader"), 30);
  EXPECT_GT(count_role("staff"), 30);
}

TEST(EnronSimTest, SnapshotsAreSparse) {
  const EnronSimData& data = SharedData();
  // The paper's corpus has ~300 edges at the densest month; the simulator
  // should stay within the same order of magnitude.
  double max_edges = 0.0;
  for (size_t t = 0; t < 48; ++t) {
    max_edges = std::max(
        max_edges, static_cast<double>(data.sequence.Snapshot(t).num_edges()));
  }
  EXPECT_LT(max_edges, 1200.0);
  EXPECT_GT(data.sequence.AverageEdgesPerSnapshot(), 100.0);
}

TEST(EnronSimTest, EdgeWeightsAreCounts) {
  const EnronSimData& data = SharedData();
  for (const Edge& e : data.sequence.Snapshot(10).Edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_EQ(e.weight, std::floor(e.weight));  // integer email counts
  }
}

TEST(EnronSimTest, EventsCoverScriptedArc) {
  const EnronSimData& data = SharedData();
  ASSERT_GE(data.events.size(), 6u);
  // Onsets must be ordered and in range.
  for (const OrgEvent& event : data.events) {
    EXPECT_LT(event.onset_transition, data.sequence.num_transitions());
    EXPECT_LE(event.onset_transition, event.offset_transition);
    EXPECT_FALSE(event.key_nodes.empty());
    EXPECT_FALSE(event.description.empty());
  }
}

TEST(EnronSimTest, CeoHubBurstSpikesVolume) {
  const EnronSimData& data = SharedData();
  // Fig. 8a shape: the CEO's email volume in the burst months dwarfs the
  // calm baseline.
  double calm_total = 0.0;
  for (size_t month = 0; month < 12; ++month) {
    calm_total += data.MonthlyVolume(data.ceo, month);
  }
  const double calm_mean = calm_total / 12.0;
  const double burst = data.MonthlyVolume(data.ceo, 33);
  EXPECT_GT(burst, 2.0 * calm_mean);
}

TEST(EnronSimTest, TraderBurstRaisesTraderVolume) {
  const EnronSimData& data = SharedData();
  const OrgEvent* trader_event = nullptr;
  for (const OrgEvent& event : data.events) {
    if (event.description.find("trader burst") != std::string::npos) {
      trader_event = &event;
    }
  }
  ASSERT_NE(trader_event, nullptr);
  const NodeId trader = trader_event->key_nodes[0];
  const double before = data.MonthlyVolume(trader, 10);
  const double during = data.MonthlyVolume(trader, 12);
  EXPECT_GT(during, before + 20.0);
}

TEST(EnronSimTest, EventTransitionLookup) {
  const EnronSimData& data = SharedData();
  const OrgEvent& first = data.events.front();
  EXPECT_TRUE(data.IsEventTransition(first.onset_transition));
  const std::vector<NodeId> nodes = data.EventNodesAt(first.onset_transition);
  EXPECT_FALSE(nodes.empty());
  EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
  // A calm early transition is not an event.
  EXPECT_FALSE(data.IsEventTransition(2));
  EXPECT_TRUE(data.EventNodesAt(2).empty());
}

TEST(EnronSimTest, TurmoilWindowMarked) {
  const EnronSimData& data = SharedData();
  EXPECT_GT(data.turmoil_end_month, data.turmoil_begin_month);
  EXPECT_LE(data.turmoil_end_month, 48u);
  // Most events fall inside the turmoil window.
  size_t inside = 0;
  for (const OrgEvent& event : data.events) {
    if (event.onset_transition + 1 >= data.turmoil_begin_month &&
        event.onset_transition < data.turmoil_end_month) {
      ++inside;
    }
  }
  EXPECT_GE(inside * 2, data.events.size());
}

TEST(EnronSimTest, DeterministicGivenSeed) {
  EnronSimOptions options;
  options.num_employees = 80;
  options.num_months = 42;
  const EnronSimData a = MakeEnronStyleData(options);
  const EnronSimData b = MakeEnronStyleData(options);
  EXPECT_TRUE(a.sequence.Snapshot(20) == b.sequence.Snapshot(20));
}

TEST(EnronSimTest, CustomSizes) {
  EnronSimOptions options;
  options.num_employees = 64;
  options.num_months = 44;
  options.seed = 123;
  const EnronSimData data = MakeEnronStyleData(options);
  EXPECT_EQ(data.sequence.num_nodes(), 64u);
  EXPECT_EQ(data.sequence.num_snapshots(), 44u);
}

}  // namespace
}  // namespace cad
