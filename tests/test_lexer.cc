// Golden tests for the lint lexer (src/lint/lexer.h): token classification
// over raw strings, line splices, preprocessor directives, prefixed
// literals, and the edge cases that motivated replacing the regex linter.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/lexer.h"

namespace cad {
namespace lint {
namespace {

// Compact golden form: one "<kind>:<text>" per token.
std::string KindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "id";
    case TokenKind::kNumber: return "num";
    case TokenKind::kString: return "str";
    case TokenKind::kCharLiteral: return "chr";
    case TokenKind::kLineComment: return "lc";
    case TokenKind::kBlockComment: return "bc";
    case TokenKind::kHeaderName: return "hdr";
    case TokenKind::kPunct: return "p";
  }
  return "?";
}

std::vector<std::string> Golden(std::string_view content) {
  std::vector<std::string> out;
  for (const Token& token : LexCpp(content)) {
    out.push_back(KindName(token.kind) + ":" + token.text);
  }
  return out;
}

TEST(LexerGoldenTest, BasicStatement) {
  EXPECT_EQ(Golden("int x = 42;  // done\n"),
            (std::vector<std::string>{"id:int", "id:x", "p:=", "num:42", "p:;",
                                      "lc:// done"}));
}

TEST(LexerGoldenTest, StringsAreSingleTokens) {
  EXPECT_EQ(Golden("f(\"a // b\", 'c');\n"),
            (std::vector<std::string>{"id:f", "p:(", "str:\"a // b\"", "p:,",
                                      "chr:'c'", "p:)", "p:;"}));
  // Escaped quotes and backslashes do not end the literal early.
  EXPECT_EQ(Golden("\"a\\\"b\" '\\''"),
            (std::vector<std::string>{"str:\"a\\\"b\"", "chr:'\\''"}));
}

TEST(LexerGoldenTest, RawStrings) {
  EXPECT_EQ(Golden("auto s = R\"(no \\ escapes \" here)\";\n"),
            (std::vector<std::string>{"id:auto", "id:s", "p:=",
                                      "str:R\"(no \\ escapes \" here)\"",
                                      "p:;"}));
  // Custom delimiter: an inner )" must not terminate the literal.
  const std::string content = "R\"gold(a )\" b)gold\"";
  EXPECT_EQ(Golden(content), (std::vector<std::string>{"str:" + content}));
  // Encoding prefixes stay attached; a raw string can span lines.
  const std::vector<Token> tokens = LexCpp("u8R\"(line1\nline2)\" x");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].end_line, 2u);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[1].line, 2u);
}

TEST(LexerGoldenTest, RawStringBodyKeepsSplices) {
  // Inside a raw string a backslash-newline is content, not a splice.
  const std::string content = "R\"(a\\\nb)\"";
  EXPECT_EQ(Golden(content), (std::vector<std::string>{"str:" + content}));
}

TEST(LexerGoldenTest, LineSplices) {
  // A splice glues an identifier back together and vanishes from the text.
  EXPECT_EQ(Golden("as\\\nsert(1);"),
            (std::vector<std::string>{"id:assert", "p:(", "num:1", "p:)",
                                      "p:;"}));
  // A spliced line comment swallows the next physical line.
  EXPECT_EQ(Golden("// comment \\\nint x = 1;\nint y;\n"),
            (std::vector<std::string>{"lc:// comment int x = 1;", "id:int",
                                      "id:y", "p:;"}));
  // A splice inside a string literal continues it across lines.
  const std::vector<Token> spliced = LexCpp("\"ab\\\ncd\" x");
  ASSERT_EQ(spliced.size(), 2u);
  EXPECT_EQ(spliced[0].text, "\"abcd\"");
  EXPECT_EQ(spliced[0].line, 1u);
  EXPECT_EQ(spliced[0].end_line, 2u);
}

TEST(LexerGoldenTest, BlockComments) {
  EXPECT_EQ(Golden("a /* x\ny */ b"),
            (std::vector<std::string>{"id:a", "bc:/* x\ny */", "id:b"}));
  const std::vector<Token> tokens = LexCpp("/* assert(1)\n abort() */\n");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kBlockComment);
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[0].end_line, 2u);
}

TEST(LexerGoldenTest, PreprocessorDirectives) {
  const std::vector<Token> tokens =
      LexCpp("#include <vector>\n#include \"common/status.h\"\nint x;\n");
  ASSERT_EQ(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].text, "#");
  EXPECT_TRUE(tokens[0].in_directive);
  EXPECT_TRUE(tokens[0].at_line_start);
  EXPECT_EQ(tokens[2].kind, TokenKind::kHeaderName);
  EXPECT_EQ(tokens[2].text, "<vector>");
  EXPECT_EQ(tokens[5].kind, TokenKind::kString);
  EXPECT_EQ(tokens[5].text, "\"common/status.h\"");
  EXPECT_TRUE(tokens[5].in_directive);
  EXPECT_FALSE(tokens[6].in_directive);  // `int` after the directive ends
}

TEST(LexerGoldenTest, LessThanIsNotAHeaderNameOutsideInclude) {
  // `a < b > c` must not lex `< b >` as a header-name, and `#if x < 2` must
  // stay ordinary punctuation inside a non-include directive.
  EXPECT_EQ(Golden("a < b > c"),
            (std::vector<std::string>{"id:a", "p:<", "id:b", "p:>", "id:c"}));
  EXPECT_EQ(Golden("#if x < 2\n#endif\n"),
            (std::vector<std::string>{"p:#", "id:if", "id:x", "p:<", "num:2",
                                      "p:#", "id:endif"}));
}

TEST(LexerGoldenTest, NumbersAndDigitSeparators) {
  EXPECT_EQ(Golden("1'000'000 0x1Fu 1e-9 3.14f .5"),
            (std::vector<std::string>{"num:1'000'000", "num:0x1Fu", "num:1e-9",
                                      "num:3.14f", "num:.5"}));
}

TEST(LexerGoldenTest, QualificationAndMemberAccessPunct) {
  EXPECT_EQ(Golden("std::chrono::x p->lock() a.b"),
            (std::vector<std::string>{"id:std", "p:::", "id:chrono", "p:::",
                                      "id:x", "id:p", "p:->", "id:lock", "p:(",
                                      "p:)", "id:a", "p:.", "id:b"}));
}

TEST(LexerGoldenTest, PrefixedLiteralsAndPlainIdentifiers) {
  EXPECT_EQ(Golden("L\"wide\" u8'c' R2D2  Really \"s\""),
            (std::vector<std::string>{"str:L\"wide\"", "chr:u8'c'", "id:R2D2",
                                      "id:Really", "str:\"s\""}));
}

TEST(LexerGoldenTest, UnterminatedConstructsDoNotLoopOrThrow) {
  EXPECT_EQ(Golden("\"unterminated\nint x;\n"),
            (std::vector<std::string>{"str:\"unterminated", "id:int", "id:x",
                                      "p:;"}));
  const std::vector<Token> block = LexCpp("/* never closed\nint x;\n");
  ASSERT_EQ(block.size(), 1u);
  EXPECT_EQ(block[0].kind, TokenKind::kBlockComment);
  const std::vector<Token> raw = LexCpp("R\"(never closed\n");
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].kind, TokenKind::kString);
  EXPECT_TRUE(LexCpp("").empty());
}

TEST(LexerGoldenTest, LineNumbersAndLineStartFlags) {
  const std::vector<Token> tokens = LexCpp("int x;\n  y = 1;\n");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_TRUE(tokens[0].at_line_start);
  EXPECT_FALSE(tokens[1].at_line_start);
  EXPECT_EQ(tokens[3].text, "y");
  EXPECT_EQ(tokens[3].line, 2u);
  EXPECT_TRUE(tokens[3].at_line_start);  // indentation does not count
}

}  // namespace
}  // namespace lint
}  // namespace cad
