#include "graph/node_vocabulary.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(NodeVocabularyTest, InternAssignsDenseIdsInFirstAppearanceOrder) {
  NodeVocabulary vocab;
  EXPECT_TRUE(vocab.empty());
  Result<NodeId> alice = vocab.Intern("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_EQ(*alice, 0u);
  Result<NodeId> bob = vocab.Intern("bob");
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(*bob, 1u);
  // Re-interning returns the existing id without growing.
  Result<NodeId> again = vocab.Intern("alice");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(NodeVocabularyTest, NameAndFindRoundtrip) {
  NodeVocabulary vocab;
  CAD_CHECK_OK(vocab.Intern("x").status());
  CAD_CHECK_OK(vocab.Intern("y").status());
  EXPECT_EQ(vocab.Name(0), "x");
  EXPECT_EQ(vocab.Name(1), "y");
  ASSERT_TRUE(vocab.Find("y").has_value());
  EXPECT_EQ(*vocab.Find("y"), 1u);
  EXPECT_FALSE(vocab.Find("z").has_value());
}

TEST(NodeVocabularyTest, NumericLookingNamesAreJustNames) {
  // In named mode every token is a name, including numeric-looking ones;
  // "7" interns to whatever dense id comes next.
  NodeVocabulary vocab;
  CAD_CHECK_OK(vocab.Intern("alice").status());
  Result<NodeId> seven = vocab.Intern("7");
  ASSERT_TRUE(seven.ok());
  EXPECT_EQ(*seven, 1u);
  EXPECT_EQ(vocab.Name(1), "7");
}

TEST(NodeVocabularyTest, RejectsInvalidNames) {
  NodeVocabulary vocab;
  EXPECT_EQ(vocab.Intern("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(vocab.Intern("has space").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(vocab.Intern("tab\there").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(vocab.Intern("#comment").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(vocab.size(), 0u);
}

TEST(NodeVocabularyTest, ValidateNodeNameMatchesIntern) {
  EXPECT_TRUE(NodeVocabulary::ValidateNodeName("ok_name.1-x").ok());
  EXPECT_FALSE(NodeVocabulary::ValidateNodeName("bad name").ok());
  EXPECT_FALSE(NodeVocabulary::ValidateNodeName("").ok());
}

TEST(NodeVocabularyTest, FromNamesBuildsAndRejectsDuplicates) {
  Result<NodeVocabulary> vocab = NodeVocabulary::FromNames({"a", "b", "c"});
  ASSERT_TRUE(vocab.ok());
  EXPECT_EQ(vocab->size(), 3u);
  EXPECT_EQ(vocab->Name(2), "c");

  EXPECT_EQ(NodeVocabulary::FromNames({"a", "b", "a"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(NodeVocabulary::FromNames({"a", "bad name"}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NodeVocabularyTest, Equality) {
  Result<NodeVocabulary> a = NodeVocabulary::FromNames({"a", "b"});
  Result<NodeVocabulary> b = NodeVocabulary::FromNames({"a", "b"});
  Result<NodeVocabulary> c = NodeVocabulary::FromNames({"b", "a"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(*a == *b);
  EXPECT_TRUE(*a != *c);  // same names, different ids: not interchangeable
}

TEST(NodeVocabularyTest, NodeLabelFallsBackToDecimalId) {
  Result<NodeVocabulary> vocab = NodeVocabulary::FromNames({"a"});
  ASSERT_TRUE(vocab.ok());
  EXPECT_EQ(NodeLabel(&*vocab, 0), "a");
  EXPECT_EQ(NodeLabel(&*vocab, 5), "5");   // beyond the vocabulary
  EXPECT_EQ(NodeLabel(nullptr, 3), "3");   // integer-id sequence
}

}  // namespace
}  // namespace cad
