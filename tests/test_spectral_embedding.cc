#include "graph/spectral_embedding.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/toy_example.h"

namespace cad {
namespace {

double Distance2d(const DenseMatrix& coords, NodeId a, NodeId b) {
  const double dx = coords(a, 0) - coords(b, 0);
  const double dy = coords(a, 1) - coords(b, 1);
  return std::sqrt(dx * dx + dy * dy);
}

TEST(SpectralEmbeddingTest, DimensionsAndEigenvalues) {
  WeightedGraph g(10);
  for (NodeId i = 0; i + 1 < 10; ++i) CAD_CHECK_OK(g.SetEdge(i, i + 1, 1.0));
  auto embedding = ComputeSpectralEmbedding(g);
  ASSERT_TRUE(embedding.ok());
  EXPECT_EQ(embedding->coordinates.rows(), 10u);
  EXPECT_EQ(embedding->coordinates.cols(), 2u);
  ASSERT_EQ(embedding->eigenvalues.size(), 2u);
  // Connected path: both reported eigenvalues nonzero and ascending.
  EXPECT_GT(embedding->eigenvalues[0], 1e-9);
  EXPECT_LE(embedding->eigenvalues[0], embedding->eigenvalues[1] + 1e-12);
}

TEST(SpectralEmbeddingTest, FiedlerVectorSeparatesTwoClusters) {
  // Two 4-cliques joined by a weak edge: the Fiedler coordinate must give
  // the two cliques opposite signs.
  WeightedGraph g(8);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) {
      CAD_CHECK_OK(g.SetEdge(i, j, 2.0));
      CAD_CHECK_OK(g.SetEdge(i + 4, j + 4, 2.0));
    }
  }
  CAD_CHECK_OK(g.SetEdge(0, 4, 0.1));
  auto embedding = ComputeSpectralEmbedding(g);
  ASSERT_TRUE(embedding.ok());
  const double sign_first = embedding->coordinates(1, 0);
  for (NodeId i : {0, 1, 2, 3}) {
    EXPECT_GT(embedding->coordinates(i, 0) * sign_first, 0.0);
  }
  for (NodeId i : {4, 5, 6, 7}) {
    EXPECT_LT(embedding->coordinates(i, 0) * sign_first, 0.0);
  }
}

TEST(SpectralEmbeddingTest, RejectsBadArguments) {
  WeightedGraph tiny(2);
  CAD_CHECK_OK(tiny.SetEdge(0, 1, 1.0));
  EXPECT_FALSE(ComputeSpectralEmbedding(tiny).ok());  // needs n >= 3 for 2-D
  SpectralEmbeddingOptions zero;
  zero.dimension = 0;
  WeightedGraph g(5);
  EXPECT_FALSE(ComputeSpectralEmbedding(g, zero).ok());
}

TEST(SpectralEmbeddingTest, DenseAndLanczosPathsAgree) {
  WeightedGraph g(40);
  for (NodeId i = 0; i + 1 < 40; ++i) {
    CAD_CHECK_OK(g.SetEdge(i, i + 1, 1.0 + (i % 3)));
  }
  CAD_CHECK_OK(g.SetEdge(0, 39, 0.5));
  SpectralEmbeddingOptions dense;
  dense.dense_limit = 100;  // force dense
  SpectralEmbeddingOptions sparse;
  sparse.dense_limit = 10;  // force Lanczos
  auto a = ComputeSpectralEmbedding(g, dense);
  auto b = ComputeSpectralEmbedding(g, sparse);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->eigenvalues[0], b->eigenvalues[0], 1e-6);
  EXPECT_NEAR(a->eigenvalues[1], b->eigenvalues[1], 1e-6);
  // Coordinates agree up to the canonicalized sign.
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(a->coordinates(i, 0), b->coordinates(i, 0), 1e-5);
  }
}

TEST(SpectralEmbeddingTest, ToyExampleFig2Geometry) {
  // Fig. 2 of the paper: in the 2-D Laplacian eigenmap,
  //  (a) at time t the blue and red communities are separated;
  //  (b) at time t+1 the detached red subgroup {r4, r6, r8, r9} drifts away
  //      from the red core, and b1/r1 plus b4/b5 move closer together.
  const ToyExample toy = MakeToyExample();
  auto before = ComputeSpectralEmbedding(toy.sequence.Snapshot(0));
  auto after = ComputeSpectralEmbedding(toy.sequence.Snapshot(1));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());

  // (a) Community separation at time t in the Fiedler coordinate: average
  // blue and red coordinates differ strongly.
  double blue_mean = 0.0;
  double red_mean = 0.0;
  for (int i = 1; i <= 8; ++i) blue_mean += before->coordinates(ToyBlue(i), 0);
  for (int i = 1; i <= 9; ++i) red_mean += before->coordinates(ToyRed(i), 0);
  blue_mean /= 8.0;
  red_mean /= 9.0;
  EXPECT_GT(std::fabs(blue_mean - red_mean), 0.1);

  // (b) b1-r1 and b4-b5 get closer; r8 moves away from the red core (r7).
  EXPECT_LT(Distance2d(after->coordinates, ToyBlue(1), ToyRed(1)),
            Distance2d(before->coordinates, ToyBlue(1), ToyRed(1)));
  EXPECT_LT(Distance2d(after->coordinates, ToyBlue(4), ToyBlue(5)),
            Distance2d(before->coordinates, ToyBlue(4), ToyBlue(5)));
  EXPECT_GT(Distance2d(after->coordinates, ToyRed(8), ToyRed(7)),
            Distance2d(before->coordinates, ToyRed(8), ToyRed(7)));
}

}  // namespace
}  // namespace cad
