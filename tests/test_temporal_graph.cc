#include "graph/temporal_graph.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

WeightedGraph GraphWithEdge(size_t n, NodeId u, NodeId v, double w) {
  WeightedGraph g(n);
  CAD_CHECK_OK(g.SetEdge(u, v, w));
  return g;
}

TEST(TemporalGraphTest, EmptySequence) {
  TemporalGraphSequence seq(10);
  EXPECT_EQ(seq.num_nodes(), 10u);
  EXPECT_EQ(seq.num_snapshots(), 0u);
  EXPECT_EQ(seq.num_transitions(), 0u);
  EXPECT_EQ(seq.AverageEdgesPerSnapshot(), 0.0);
}

TEST(TemporalGraphTest, AppendAndAccess) {
  TemporalGraphSequence seq(3);
  ASSERT_TRUE(seq.Append(GraphWithEdge(3, 0, 1, 1.0)).ok());
  ASSERT_TRUE(seq.Append(GraphWithEdge(3, 1, 2, 2.0)).ok());
  EXPECT_EQ(seq.num_snapshots(), 2u);
  EXPECT_EQ(seq.num_transitions(), 1u);
  EXPECT_EQ(seq.Snapshot(0).EdgeWeight(0, 1), 1.0);
  EXPECT_EQ(seq.Snapshot(1).EdgeWeight(1, 2), 2.0);
}

TEST(TemporalGraphTest, RejectsNodeCountMismatch) {
  TemporalGraphSequence seq(3);
  EXPECT_EQ(seq.Append(WeightedGraph(4)).code(),
            StatusCode::kInvalidArgument);
}

TEST(TemporalGraphTest, SingleSnapshotHasNoTransitions) {
  TemporalGraphSequence seq(2);
  ASSERT_TRUE(seq.Append(WeightedGraph(2)).ok());
  EXPECT_EQ(seq.num_transitions(), 0u);
}

TEST(TemporalGraphTest, AverageEdges) {
  TemporalGraphSequence seq(4);
  WeightedGraph g1(4);
  ASSERT_TRUE(g1.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g1.SetEdge(2, 3, 1.0).ok());
  ASSERT_TRUE(seq.Append(g1).ok());
  ASSERT_TRUE(seq.Append(GraphWithEdge(4, 0, 2, 1.0)).ok());
  EXPECT_DOUBLE_EQ(seq.AverageEdgesPerSnapshot(), 1.5);
}

TEST(TemporalGraphTest, TransitionSupportIsUnionOfEdgeSets) {
  TemporalGraphSequence seq(4);
  WeightedGraph g1(4);
  ASSERT_TRUE(g1.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g1.SetEdge(1, 2, 1.0).ok());
  WeightedGraph g2(4);
  ASSERT_TRUE(g2.SetEdge(1, 2, 2.0).ok());  // shared, modified
  ASSERT_TRUE(g2.SetEdge(2, 3, 1.0).ok());  // new
  ASSERT_TRUE(seq.Append(g1).ok());
  ASSERT_TRUE(seq.Append(g2).ok());

  const std::vector<NodePair> support = seq.TransitionSupport(0);
  ASSERT_EQ(support.size(), 3u);
  EXPECT_EQ(support[0], NodePair::Make(0, 1));
  EXPECT_EQ(support[1], NodePair::Make(1, 2));
  EXPECT_EQ(support[2], NodePair::Make(2, 3));
}

TEST(TemporalGraphTest, TransitionSupportDeduplicates) {
  TemporalGraphSequence seq(2);
  ASSERT_TRUE(seq.Append(GraphWithEdge(2, 0, 1, 1.0)).ok());
  ASSERT_TRUE(seq.Append(GraphWithEdge(2, 0, 1, 5.0)).ok());
  EXPECT_EQ(seq.TransitionSupport(0).size(), 1u);
}

TEST(TemporalGraphTest, MutableSnapshotAllowsEditing) {
  TemporalGraphSequence seq(2);
  ASSERT_TRUE(seq.Append(WeightedGraph(2)).ok());
  ASSERT_TRUE(seq.MutableSnapshot(0).SetEdge(0, 1, 4.0).ok());
  EXPECT_EQ(seq.Snapshot(0).EdgeWeight(0, 1), 4.0);
}

}  // namespace
}  // namespace cad
