#include "linalg/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(VectorOpsTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VectorOpsTest, Norms) {
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredNorm2({3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Norm2({}), 0.0);
}

TEST(VectorOpsTest, Axpy) {
  std::vector<double> y = {1, 1};
  Axpy(2.0, {3, -1}, &y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(VectorOpsTest, ScaleInPlace) {
  std::vector<double> x = {2, -4};
  ScaleInPlace(0.5, &x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(VectorOpsTest, AddSubtract) {
  EXPECT_EQ(Add({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
  EXPECT_EQ(Subtract({1, 2}, {3, 4}), (std::vector<double>{-2, -2}));
}

TEST(VectorOpsTest, SumAndMaxAbs) {
  EXPECT_DOUBLE_EQ(Sum({1, -2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(MaxAbs({1, -5, 3}), 5.0);
  EXPECT_DOUBLE_EQ(MaxAbs({}), 0.0);
}

TEST(VectorOpsTest, MaxAbsDifference) {
  EXPECT_DOUBLE_EQ(MaxAbsDifference({1, 2}, {0, 5}), 3.0);
}

TEST(VectorOpsTest, Constant) {
  EXPECT_EQ(Constant(3, 2.5), (std::vector<double>{2.5, 2.5, 2.5}));
  EXPECT_TRUE(Constant(0, 1.0).empty());
}

TEST(VectorOpsTest, CauchySchwarzHolds) {
  const std::vector<double> a = {1.0, -2.0, 0.5, 3.0};
  const std::vector<double> b = {0.3, 4.0, -1.0, 2.0};
  EXPECT_LE(std::fabs(Dot(a, b)), Norm2(a) * Norm2(b) + 1e-12);
}

}  // namespace
}  // namespace cad
