#include "eval/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cad {
namespace {

TEST(StatisticsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatisticsTest, VarianceAndStdDev) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({7.0}), 0.0);
  // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatisticsTest, QuantileInterpolates) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0 / 3.0), 2.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(StatisticsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatisticsTest, PearsonPerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(StatisticsTest, PearsonZeroVarianceIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
}

TEST(StatisticsTest, PearsonIndependentNearZero) {
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.03);
}

TEST(StatisticsTest, MidRanksWithTies) {
  // values 10, 20, 20, 30 -> ranks 1, 2.5, 2.5, 4.
  EXPECT_EQ(MidRanks({10, 20, 20, 30}),
            (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
  EXPECT_TRUE(MidRanks({}).empty());
}

TEST(StatisticsTest, SpearmanMonotoneNonlinear) {
  // y = x^3 is a nonlinear monotone map: Spearman 1, Pearson < 1.
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y;
  for (double v : x) y.push_back(v * v * v);
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
}

TEST(StatisticsTest, SpearmanAntiMonotone) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

}  // namespace
}  // namespace cad
