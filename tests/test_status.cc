#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/result.h"

namespace cad {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::NotFound("missing");
  Status copy = original;
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.message(), "missing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::IoError("disk");
  EXPECT_EQ(os.str(), "IoError: disk");
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericalError),
               "NumericalError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailsIfNegative(int value) {
  if (value < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Passthrough(int value) {
  CAD_RETURN_NOT_OK(FailsIfNegative(value));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Passthrough(1).ok());
  EXPECT_EQ(Passthrough(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string moved = std::move(r).ValueOrDie();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> HalveEven(int value) {
  if (value % 2 != 0) return Status::InvalidArgument("odd");
  return value / 2;
}

Status UseAssignOrReturn(int value, int* out) {
  int halved = 0;
  CAD_ASSIGN_OR_RETURN(halved, HalveEven(value));
  *out = halved;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(3, &out).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ArrowOperatorOnStruct) {
  struct Payload {
    int value;
  };
  Result<Payload> r = Payload{9};
  EXPECT_EQ(r->value, 9);
}

}  // namespace
}  // namespace cad
