#include "common/flags.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (std::string& arg : storage) argv.push_back(arg.data());
  return argv;
}

TEST(FlagParserTest, ParsesEqualsForm) {
  FlagParser flags;
  int64_t trials = 10;
  double rate = 0.5;
  std::string name = "default";
  bool verbose = false;
  flags.AddInt64("trials", &trials, "");
  flags.AddDouble("rate", &rate, "");
  flags.AddString("name", &name, "");
  flags.AddBool("verbose", &verbose, "");

  std::vector<std::string> storage = {"prog", "--trials=20", "--rate=0.25",
                                      "--name=run1", "--verbose=true"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(trials, 20);
  EXPECT_DOUBLE_EQ(rate, 0.25);
  EXPECT_EQ(name, "run1");
  EXPECT_TRUE(verbose);
}

TEST(FlagParserTest, ParsesSpaceSeparatedForm) {
  FlagParser flags;
  int64_t n = 0;
  flags.AddInt64("n", &n, "");
  std::vector<std::string> storage = {"prog", "--n", "123"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(n, 123);
}

TEST(FlagParserTest, BareBooleanSetsTrue) {
  FlagParser flags;
  bool full = false;
  flags.AddBool("full", &full, "");
  std::vector<std::string> storage = {"prog", "--full"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(full);
}

TEST(FlagParserTest, BooleanFalseForms) {
  FlagParser flags;
  bool opt = true;
  flags.AddBool("opt", &opt, "");
  std::vector<std::string> storage = {"prog", "--opt=false"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_FALSE(opt);
}

TEST(FlagParserTest, RejectsUnknownFlag) {
  FlagParser flags;
  std::vector<std::string> storage = {"prog", "--mystery=1"};
  auto argv = MakeArgv(storage);
  EXPECT_EQ(flags.Parse(static_cast<int>(argv.size()), argv.data()).code(),
            StatusCode::kNotFound);
}

TEST(FlagParserTest, RejectsPositionalArgument) {
  FlagParser flags;
  std::vector<std::string> storage = {"prog", "stray"};
  auto argv = MakeArgv(storage);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, RejectsMalformedValue) {
  FlagParser flags;
  int64_t n = 0;
  flags.AddInt64("n", &n, "");
  std::vector<std::string> storage = {"prog", "--n=notanumber"};
  auto argv = MakeArgv(storage);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, MissingValueForNonBool) {
  FlagParser flags;
  int64_t n = 0;
  flags.AddInt64("n", &n, "");
  std::vector<std::string> storage = {"prog", "--n"};
  auto argv = MakeArgv(storage);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, HelpRequested) {
  FlagParser flags;
  int64_t n = 5;
  flags.AddInt64("n", &n, "node count");
  std::vector<std::string> storage = {"prog", "--help"};
  auto argv = MakeArgv(storage);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.Usage().find("node count"), std::string::npos);
  EXPECT_NE(flags.Usage().find("default: 5"), std::string::npos);
}

TEST(FlagParserTest, EmptyArgvIsOk) {
  FlagParser flags;
  std::vector<std::string> storage = {"prog"};
  auto argv = MakeArgv(storage);
  EXPECT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_FALSE(flags.help_requested());
}

}  // namespace
}  // namespace cad
