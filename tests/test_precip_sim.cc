#include "datagen/precip_sim.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace cad {
namespace {

PrecipSimOptions SmallOptions(uint64_t seed = 77) {
  PrecipSimOptions options;
  options.grid_width = 24;
  options.grid_height = 12;
  options.num_years = 8;
  options.event_year = 5;
  options.seed = seed;
  return options;
}

TEST(ValueKnnGraphTest, DegreeBounds) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const WeightedGraph g = MakeValueKnnGraph(values, 2, 1.0);
  // Each node connects to its 2 nearest; undirected union can give degree
  // between 2 and 2k.
  for (size_t degree : g.Degrees()) {
    EXPECT_GE(degree, 2u);
    EXPECT_LE(degree, 4u);
  }
}

TEST(ValueKnnGraphTest, NearestValuesConnected) {
  const std::vector<double> values = {0.0, 0.1, 5.0, 5.1, 10.0};
  const WeightedGraph g = MakeValueKnnGraph(values, 1, 1.0);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 4));
}

TEST(ValueKnnGraphTest, WeightsAreGaussianSimilarities) {
  const std::vector<double> values = {0.0, 1.0};
  const WeightedGraph g = MakeValueKnnGraph(values, 1, 1.0);
  EXPECT_NEAR(g.EdgeWeight(0, 1), std::exp(-0.5), 1e-12);
}

TEST(ValueKnnGraphTest, AutoSigmaUsed) {
  const std::vector<double> values = {0.0, 1.0, 2.0, 3.0};
  const WeightedGraph g = MakeValueKnnGraph(values, 1);
  EXPECT_GT(g.num_edges(), 0u);
  for (const Edge& e : g.Edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 1.0);
  }
}

TEST(ValueKnnGraphTest, DegenerateInputs) {
  EXPECT_EQ(MakeValueKnnGraph({}, 3).num_edges(), 0u);
  EXPECT_EQ(MakeValueKnnGraph({1.0}, 3).num_edges(), 0u);
  EXPECT_EQ(MakeValueKnnGraph({1.0, 2.0}, 0).num_edges(), 0u);
  // Identical values (sigma would be 0): must not crash.
  const WeightedGraph g = MakeValueKnnGraph({2.0, 2.0, 2.0}, 1);
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(PrecipSimTest, ShapeConsistent) {
  const PrecipSimData data = MakePrecipitationData(SmallOptions());
  EXPECT_EQ(data.sequence.num_nodes(), 24u * 12u);
  EXPECT_EQ(data.sequence.num_snapshots(), 8u);
  EXPECT_EQ(data.precipitation.size(), 8u);
  EXPECT_EQ(data.region_of.size(), 24u * 12u);
  EXPECT_EQ(data.event_transition, 4u);
}

TEST(PrecipSimTest, RegionsPopulated) {
  const PrecipSimData data = MakePrecipitationData(SmallOptions());
  ASSERT_EQ(data.regions.size(), 8u);
  for (size_t r = 0; r < data.regions.size(); ++r) {
    size_t members = 0;
    for (uint32_t assignment : data.region_of) {
      if (assignment == r) ++members;
    }
    EXPECT_GT(members, 0u) << data.regions[r].name;
  }
}

TEST(PrecipSimTest, ShiftedRegionsMarked) {
  const PrecipSimData data = MakePrecipitationData(SmallOptions());
  size_t shifted = 0;
  for (size_t cell = 0; cell < data.region_of.size(); ++cell) {
    if (data.cell_in_shifted_region[cell]) {
      ++shifted;
      ASSERT_NE(data.region_of[cell], 0xffffffffu);
      EXPECT_NE(data.regions[data.region_of[cell]].event_sign, 0);
    }
  }
  EXPECT_GT(shifted, 0u);
}

TEST(PrecipSimTest, EventYearShiftsRegionalMeansInAggregate) {
  // Per-region, the one-year shift can be masked by interannual noise (by
  // design — Fig. 10's "subtle" signal); but the sign-weighted aggregate
  // over all shifted regions must be clearly positive.
  const PrecipSimData data = MakePrecipitationData(SmallOptions());
  const size_t event_year = 5;
  double aggregate = 0.0;
  size_t shifted_regions = 0;
  for (size_t r = 0; r < data.regions.size(); ++r) {
    if (data.regions[r].event_sign == 0) continue;
    ++shifted_regions;
    double other_years = 0.0;
    for (size_t year = 0; year < 8; ++year) {
      if (year != event_year) other_years += data.RegionalMean(r, year);
    }
    other_years /= 7.0;
    aggregate += data.regions[r].event_sign *
                 (data.RegionalMean(r, event_year) - other_years);
  }
  ASSERT_EQ(shifted_regions, 4u);
  // Expected aggregate = 4 * shift; require at least half.
  const PrecipSimOptions defaults;
  const double shift =
      defaults.event_shift_sigmas * defaults.interannual_noise;
  EXPECT_GT(aggregate, 4.0 * shift * 0.5);
}

TEST(PrecipSimTest, ShiftIsSubtleRelativeToInterannualNoise) {
  // Fig. 10's point: the event-year change is not an extreme outlier in the
  // year-over-year difference series.
  const PrecipSimOptions options = SmallOptions();
  const PrecipSimData data = MakePrecipitationData(options);
  const double shift = options.event_shift_sigmas * options.interannual_noise;
  // Interannual swings between consecutive non-event years can reach the
  // same order as the injected shift.
  double max_benign_swing = 0.0;
  for (size_t r = 0; r < data.regions.size(); ++r) {
    for (size_t year = 1; year < 4; ++year) {  // before the event
      max_benign_swing = std::max(
          max_benign_swing,
          std::fabs(data.RegionalMean(r, year) -
                    data.RegionalMean(r, year - 1)));
    }
  }
  EXPECT_GT(max_benign_swing, 0.4 * shift);
}

TEST(PrecipSimTest, GraphsUseValueSpaceNeighbors) {
  const PrecipSimData data = MakePrecipitationData(SmallOptions());
  const WeightedGraph& g = data.sequence.Snapshot(0);
  EXPECT_GT(g.num_edges(), data.sequence.num_nodes());  // ~k*n/2 edges
  // All weights in (0, 1].
  for (const Edge& e : g.Edges()) {
    EXPECT_GT(e.weight, 0.0);
    EXPECT_LE(e.weight, 1.0);
  }
}

TEST(PrecipSimTest, DeterministicGivenSeed) {
  const PrecipSimData a = MakePrecipitationData(SmallOptions(5));
  const PrecipSimData b = MakePrecipitationData(SmallOptions(5));
  EXPECT_TRUE(a.sequence.Snapshot(2) == b.sequence.Snapshot(2));
  EXPECT_EQ(a.precipitation[3], b.precipitation[3]);
}

TEST(PrecipSimTest, PrecipitationNonNegative) {
  const PrecipSimData data = MakePrecipitationData(SmallOptions());
  for (const auto& field : data.precipitation) {
    for (double value : field) EXPECT_GE(value, 0.0);
  }
}

}  // namespace
}  // namespace cad
