#include "commute/solver_cache.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "graph/graph.h"

namespace cad {
namespace {

/// A small connected graph whose edge weights are scaled by `weight_scale`
/// (scaling every weight by s scales the Laplacian diagonal by s, making the
/// drift ratio exactly |s - 1| against the unscaled snapshot).
CsrMatrix ScaledLaplacian(double weight_scale, size_t n = 12) {
  WeightedGraph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    CAD_CHECK_OK(g.SetEdge(u, u + 1, weight_scale));
  }
  CAD_CHECK_OK(g.SetEdge(0, n - 1, 2.0 * weight_scale));
  return g.ToLaplacianCsr(1e-6);
}

TEST(SolverCacheTest, FirstCallFactorizes) {
  CommuteSolverCache cache(0.25);
  Result<const IncompleteCholesky*> factor =
      cache.FactorFor(ScaledLaplacian(1.0));
  ASSERT_TRUE(factor.ok());
  ASSERT_NE(*factor, nullptr);
  EXPECT_EQ(cache.refactorizations(), 1u);
  EXPECT_EQ(cache.factor_reuses(), 0u);
  EXPECT_EQ(cache.last_relative_change(), 0.0);
}

TEST(SolverCacheTest, IdenticalLaplacianReusesFactor) {
  CommuteSolverCache cache(0.25);
  Result<const IncompleteCholesky*> first =
      cache.FactorFor(ScaledLaplacian(1.0));
  ASSERT_TRUE(first.ok());
  const IncompleteCholesky* original = *first;
  Result<const IncompleteCholesky*> second =
      cache.FactorFor(ScaledLaplacian(1.0));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, original);
  EXPECT_EQ(cache.refactorizations(), 1u);
  EXPECT_EQ(cache.factor_reuses(), 1u);
  EXPECT_EQ(cache.last_relative_change(), 0.0);
}

TEST(SolverCacheTest, SmallDriftReusesFactor) {
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.1)).ok());
  EXPECT_EQ(cache.factor_reuses(), 1u);
  EXPECT_EQ(cache.refactorizations(), 1u);
  EXPECT_NEAR(cache.last_relative_change(), 0.1, 1e-6);
}

TEST(SolverCacheTest, DriftExactlyAtThresholdStillReuses) {
  // The trigger is strict: change > threshold. Scaling weights by 1.25
  // against a threshold of 0.25 sits exactly on the boundary.
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.25)).ok());
  EXPECT_EQ(cache.factor_reuses(), 1u);
  EXPECT_EQ(cache.refactorizations(), 1u);
  EXPECT_NEAR(cache.last_relative_change(), 0.25, 1e-6);
}

TEST(SolverCacheTest, LargeDriftRefactorizes) {
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(2.0)).ok());
  EXPECT_EQ(cache.factor_reuses(), 0u);
  EXPECT_EQ(cache.refactorizations(), 2u);
  EXPECT_NEAR(cache.last_relative_change(), 1.0, 1e-6);
}

TEST(SolverCacheTest, RefactorizationResetsTheDriftBaseline) {
  // After a refactorization at scale 2.0, a further 10% drift is measured
  // against the new baseline and reuses again.
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(2.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(2.2)).ok());
  EXPECT_EQ(cache.refactorizations(), 2u);
  EXPECT_EQ(cache.factor_reuses(), 1u);
  EXPECT_NEAR(cache.last_relative_change(), 0.1, 1e-6);
}

TEST(SolverCacheTest, ZeroThresholdRefactorizesOnAnyChange) {
  CommuteSolverCache cache(0.0);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  EXPECT_EQ(cache.factor_reuses(), 1u);  // exactly identical: change == 0
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.000001)).ok());
  EXPECT_EQ(cache.refactorizations(), 2u);
}

TEST(SolverCacheTest, DimensionChangeRefactorizes) {
  CommuteSolverCache cache(10.0);  // threshold so large drift never triggers
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0, 12)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0, 16)).ok());
  EXPECT_EQ(cache.refactorizations(), 2u);
  EXPECT_EQ(cache.factor_reuses(), 0u);
}

TEST(SolverCacheTest, ClearDropsFactorAndEmbedding) {
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  cache.StoreEmbedding(DenseMatrix(4, 12));
  ASSERT_NE(cache.PreviousEmbedding(4, 12), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.PreviousEmbedding(4, 12), nullptr);
  // Clear also resets the statistics, so the forced refactorization that
  // follows is counted from a clean slate.
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  EXPECT_EQ(cache.refactorizations(), 1u);
  EXPECT_EQ(cache.factor_reuses(), 0u);
}

TEST(SolverCacheTest, EmbeddingShapeMismatchReturnsNull) {
  CommuteSolverCache cache;
  EXPECT_EQ(cache.PreviousEmbedding(4, 12), nullptr);
  cache.StoreEmbedding(DenseMatrix(4, 12));
  EXPECT_NE(cache.PreviousEmbedding(4, 12), nullptr);
  EXPECT_EQ(cache.PreviousEmbedding(5, 12), nullptr);  // k changed
  EXPECT_EQ(cache.PreviousEmbedding(4, 13), nullptr);  // n changed
}

TEST(SolverCacheTest, DimensionChangeKeepsDriftGaugeHonest) {
  // Node-set growth must register as the large drift it is (computed over
  // the union index range, missing entries read as zero) instead of
  // silently resetting the gauge, and must be counted as a dimension
  // invalidation distinct from drift-triggered refactorizations.
  CommuteSolverCache cache(10.0);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0, 12)).ok());
  EXPECT_EQ(cache.dimension_invalidations(), 0u);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0, 16)).ok());
  EXPECT_EQ(cache.dimension_invalidations(), 1u);
  // The four appended path nodes contribute their whole degree as change.
  EXPECT_GT(cache.last_relative_change(), 0.0);
}

TEST(SolverCacheTest, RestoreRejectsNonSquareFactor) {
  CommuteSolverCache cache;
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  CommuteSolverCache::State state = cache.ExportState();
  CsrMatrix rectangular(3, 4, {0, 0, 0, 0}, {}, {});
  state.factor_lower = rectangular;
  CommuteSolverCache restored;
  const Status status = restored.RestoreState(std::move(state));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SolverCacheTest, RestoreRejectsDiagonalFactorSizeMismatch) {
  // The regression this guards: a checkpoint whose factor_diagonal was
  // truncated relative to the factor dimension used to be installed as-is,
  // and the next FactorFor indexed the short diagonal out of bounds.
  CommuteSolverCache cache;
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  CommuteSolverCache::State state = cache.ExportState();
  ASSERT_FALSE(state.factor_diagonal.empty());
  state.factor_diagonal.pop_back();
  CommuteSolverCache restored;
  const Status status = restored.RestoreState(std::move(state));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SolverCacheTest, RestoreRejectsDiagonalWithoutFactor) {
  CommuteSolverCache::State state;
  state.factor_diagonal = {1.0, 2.0};
  CommuteSolverCache restored;
  const Status status = restored.RestoreState(std::move(state));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SolverCacheTest, RejectedRestoreLeavesCacheUntouched) {
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  cache.StoreEmbedding(DenseMatrix(4, 12));

  CommuteSolverCache::State corrupt = cache.ExportState();
  corrupt.factor_diagonal.pop_back();
  ASSERT_FALSE(cache.RestoreState(std::move(corrupt)).ok());

  // The previously cached factor and embedding are still served.
  EXPECT_NE(cache.PreviousEmbedding(4, 12), nullptr);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  EXPECT_EQ(cache.factor_reuses(), 1u);
  EXPECT_EQ(cache.refactorizations(), 1u);
}

TEST(SolverCacheTest, RestoredStateOfOtherDimensionIsGuarded) {
  // A *valid* state of a different dimension than the next stream's graphs
  // (say, a checkpoint from before node growth) must be handled by
  // invalidation, not out-of-bounds reads.
  CommuteSolverCache cache;
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0, 12)).ok());
  CommuteSolverCache restored;
  ASSERT_TRUE(restored.RestoreState(cache.ExportState()).ok());
  ASSERT_TRUE(restored.FactorFor(ScaledLaplacian(1.0, 16)).ok());
  EXPECT_EQ(restored.dimension_invalidations(), 1u);
  // The exported counter (1 refactorization) carries over; the dimension
  // invalidation adds the second.
  EXPECT_EQ(restored.refactorizations(), 2u);
}

TEST(SolverCacheTest, IncrementalRhsShapeGating) {
  CommuteSolverCache cache;
  EXPECT_EQ(cache.IncrementalRhs(12, 4), nullptr);
  DenseMatrix rhs(12, 4);  // node-major n x k
  rhs(3, 1) = 0.75;
  cache.StoreIncrementalRhs(rhs);
  ASSERT_NE(cache.IncrementalRhs(12, 4), nullptr);
  EXPECT_EQ((*cache.IncrementalRhs(12, 4))(3, 1), 0.75);
  ASSERT_NE(cache.MutableIncrementalRhs(12, 4), nullptr);
  EXPECT_EQ(cache.IncrementalRhs(13, 4), nullptr);  // n changed
  EXPECT_EQ(cache.IncrementalRhs(12, 5), nullptr);  // k changed
  cache.Clear();
  EXPECT_EQ(cache.IncrementalRhs(12, 4), nullptr);
}

TEST(SolverCacheTest, IncrementalAccountingAndChurnAdmission) {
  CommuteSolverCache cache;
  EXPECT_TRUE(cache.AdmitChurn(0.01, 0.25));
  EXPECT_EQ(cache.last_churn_ratio(), 0.01);
  EXPECT_EQ(cache.churn_rejections(), 0u);
  EXPECT_FALSE(cache.AdmitChurn(0.5, 0.25));
  EXPECT_EQ(cache.last_churn_ratio(), 0.5);
  EXPECT_EQ(cache.churn_rejections(), 1u);
  // Threshold is inclusive: ratio == threshold is admitted.
  EXPECT_TRUE(cache.AdmitChurn(0.25, 0.25));

  cache.RecordIncrementalBuild(2, 8);
  cache.RecordIncrementalBuild(0, 8);
  EXPECT_EQ(cache.incremental_builds(), 2u);
  EXPECT_EQ(cache.rhs_resolved(), 2u);
  EXPECT_EQ(cache.rhs_reused(), 14u);
  EXPECT_EQ(cache.last_resolved_fraction(), 0.0);
}

TEST(SolverCacheTest, IncrementalStateRoundTripsThroughExportRestore) {
  CommuteSolverCache cache;
  DenseMatrix rhs(6, 3);
  rhs(5, 2) = -1.25;
  cache.StoreIncrementalRhs(rhs);
  cache.RecordIncrementalBuild(1, 3);
  EXPECT_FALSE(cache.AdmitChurn(0.9, 0.25));

  CommuteSolverCache restored;
  ASSERT_TRUE(restored.RestoreState(cache.ExportState()).ok());
  ASSERT_NE(restored.IncrementalRhs(6, 3), nullptr);
  EXPECT_EQ((*restored.IncrementalRhs(6, 3))(5, 2), -1.25);
  EXPECT_EQ(restored.incremental_builds(), 1u);
  EXPECT_EQ(restored.rhs_resolved(), 1u);
  EXPECT_EQ(restored.rhs_reused(), 2u);
  EXPECT_NEAR(restored.last_resolved_fraction(), 1.0 / 3.0, 1e-15);
  EXPECT_EQ(restored.last_churn_ratio(), 0.9);
  EXPECT_EQ(restored.churn_rejections(), 1u);
}

TEST(SolverCacheTest, StoredEmbeddingRoundTrips) {
  CommuteSolverCache cache;
  DenseMatrix z(2, 3);
  z(0, 0) = 1.5;
  z(1, 2) = -2.25;
  cache.StoreEmbedding(z);
  const DenseMatrix* stored = cache.PreviousEmbedding(2, 3);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ((*stored)(0, 0), 1.5);
  EXPECT_EQ((*stored)(1, 2), -2.25);
}

}  // namespace
}  // namespace cad
