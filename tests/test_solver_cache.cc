#include "commute/solver_cache.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "graph/graph.h"

namespace cad {
namespace {

/// A small connected graph whose edge weights are scaled by `weight_scale`
/// (scaling every weight by s scales the Laplacian diagonal by s, making the
/// drift ratio exactly |s - 1| against the unscaled snapshot).
CsrMatrix ScaledLaplacian(double weight_scale, size_t n = 12) {
  WeightedGraph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    CAD_CHECK_OK(g.SetEdge(u, u + 1, weight_scale));
  }
  CAD_CHECK_OK(g.SetEdge(0, n - 1, 2.0 * weight_scale));
  return g.ToLaplacianCsr(1e-6);
}

TEST(SolverCacheTest, FirstCallFactorizes) {
  CommuteSolverCache cache(0.25);
  Result<const IncompleteCholesky*> factor =
      cache.FactorFor(ScaledLaplacian(1.0));
  ASSERT_TRUE(factor.ok());
  ASSERT_NE(*factor, nullptr);
  EXPECT_EQ(cache.refactorizations(), 1u);
  EXPECT_EQ(cache.factor_reuses(), 0u);
  EXPECT_EQ(cache.last_relative_change(), 0.0);
}

TEST(SolverCacheTest, IdenticalLaplacianReusesFactor) {
  CommuteSolverCache cache(0.25);
  Result<const IncompleteCholesky*> first =
      cache.FactorFor(ScaledLaplacian(1.0));
  ASSERT_TRUE(first.ok());
  const IncompleteCholesky* original = *first;
  Result<const IncompleteCholesky*> second =
      cache.FactorFor(ScaledLaplacian(1.0));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, original);
  EXPECT_EQ(cache.refactorizations(), 1u);
  EXPECT_EQ(cache.factor_reuses(), 1u);
  EXPECT_EQ(cache.last_relative_change(), 0.0);
}

TEST(SolverCacheTest, SmallDriftReusesFactor) {
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.1)).ok());
  EXPECT_EQ(cache.factor_reuses(), 1u);
  EXPECT_EQ(cache.refactorizations(), 1u);
  EXPECT_NEAR(cache.last_relative_change(), 0.1, 1e-6);
}

TEST(SolverCacheTest, DriftExactlyAtThresholdStillReuses) {
  // The trigger is strict: change > threshold. Scaling weights by 1.25
  // against a threshold of 0.25 sits exactly on the boundary.
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.25)).ok());
  EXPECT_EQ(cache.factor_reuses(), 1u);
  EXPECT_EQ(cache.refactorizations(), 1u);
  EXPECT_NEAR(cache.last_relative_change(), 0.25, 1e-6);
}

TEST(SolverCacheTest, LargeDriftRefactorizes) {
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(2.0)).ok());
  EXPECT_EQ(cache.factor_reuses(), 0u);
  EXPECT_EQ(cache.refactorizations(), 2u);
  EXPECT_NEAR(cache.last_relative_change(), 1.0, 1e-6);
}

TEST(SolverCacheTest, RefactorizationResetsTheDriftBaseline) {
  // After a refactorization at scale 2.0, a further 10% drift is measured
  // against the new baseline and reuses again.
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(2.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(2.2)).ok());
  EXPECT_EQ(cache.refactorizations(), 2u);
  EXPECT_EQ(cache.factor_reuses(), 1u);
  EXPECT_NEAR(cache.last_relative_change(), 0.1, 1e-6);
}

TEST(SolverCacheTest, ZeroThresholdRefactorizesOnAnyChange) {
  CommuteSolverCache cache(0.0);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  EXPECT_EQ(cache.factor_reuses(), 1u);  // exactly identical: change == 0
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.000001)).ok());
  EXPECT_EQ(cache.refactorizations(), 2u);
}

TEST(SolverCacheTest, DimensionChangeRefactorizes) {
  CommuteSolverCache cache(10.0);  // threshold so large drift never triggers
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0, 12)).ok());
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0, 16)).ok());
  EXPECT_EQ(cache.refactorizations(), 2u);
  EXPECT_EQ(cache.factor_reuses(), 0u);
}

TEST(SolverCacheTest, ClearDropsFactorAndEmbedding) {
  CommuteSolverCache cache(0.25);
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  cache.StoreEmbedding(DenseMatrix(4, 12));
  ASSERT_NE(cache.PreviousEmbedding(4, 12), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.PreviousEmbedding(4, 12), nullptr);
  // Clear also resets the statistics, so the forced refactorization that
  // follows is counted from a clean slate.
  ASSERT_TRUE(cache.FactorFor(ScaledLaplacian(1.0)).ok());
  EXPECT_EQ(cache.refactorizations(), 1u);
  EXPECT_EQ(cache.factor_reuses(), 0u);
}

TEST(SolverCacheTest, EmbeddingShapeMismatchReturnsNull) {
  CommuteSolverCache cache;
  EXPECT_EQ(cache.PreviousEmbedding(4, 12), nullptr);
  cache.StoreEmbedding(DenseMatrix(4, 12));
  EXPECT_NE(cache.PreviousEmbedding(4, 12), nullptr);
  EXPECT_EQ(cache.PreviousEmbedding(5, 12), nullptr);  // k changed
  EXPECT_EQ(cache.PreviousEmbedding(4, 13), nullptr);  // n changed
}

TEST(SolverCacheTest, StoredEmbeddingRoundTrips) {
  CommuteSolverCache cache;
  DenseMatrix z(2, 3);
  z(0, 0) = 1.5;
  z(1, 2) = -2.25;
  cache.StoreEmbedding(z);
  const DenseMatrix* stored = cache.PreviousEmbedding(2, 3);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ((*stored)(0, 0), 1.5);
  EXPECT_EQ((*stored)(1, 2), -2.25);
}

}  // namespace
}  // namespace cad
