#include "app/pipeline.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "datagen/toy_example.h"

namespace cad {
namespace {

TEST(PipelineTest, MethodFamilyClassification) {
  EXPECT_TRUE(IsCommuteBasedMethod("CAD"));
  EXPECT_TRUE(IsCommuteBasedMethod("ADJ"));
  EXPECT_TRUE(IsCommuteBasedMethod("COM"));
  EXPECT_TRUE(IsCommuteBasedMethod("SUM"));
  EXPECT_FALSE(IsCommuteBasedMethod("ACT"));
  EXPECT_FALSE(IsCommuteBasedMethod("CLC"));
  EXPECT_FALSE(IsCommuteBasedMethod("AFM"));
  EXPECT_FALSE(IsCommuteBasedMethod("bogus"));
}

TEST(PipelineTest, RejectsUnknownMethodAndShortSequences) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.method = "bogus";
  EXPECT_FALSE(RunAnomalyPipeline(toy.sequence, options).ok());

  TemporalGraphSequence single(3);
  CAD_CHECK_OK(single.Append(WeightedGraph(3)));
  options.method = "CAD";
  EXPECT_FALSE(RunAnomalyPipeline(single, options).ok());
}

TEST(PipelineTest, CadOnToyLocalizesAndClassifies) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.nodes_per_transition = 6.0;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->method, "CAD");
  EXPECT_GT(result->delta, 0.0);
  ASSERT_EQ(result->reports.size(), 1u);
  EXPECT_EQ(result->reports[0].nodes, toy.anomalous_nodes);
  ASSERT_EQ(result->edges.size(), 3u);

  // The three reported edges carry the paper's case labels.
  for (const ReportedEdge& reported : result->edges) {
    if (reported.edge.pair == NodePair::Make(ToyBlue(1), ToyRed(1))) {
      EXPECT_EQ(reported.anomaly_case, AnomalyCase::kNewBridge);
    } else if (reported.edge.pair == NodePair::Make(ToyRed(7), ToyRed(8))) {
      EXPECT_EQ(reported.anomaly_case, AnomalyCase::kWeakenedBridge);
    } else if (reported.edge.pair == NodePair::Make(ToyBlue(4), ToyBlue(5))) {
      EXPECT_EQ(reported.anomaly_case, AnomalyCase::kMagnitudeChange);
    } else {
      ADD_FAILURE() << "unexpected edge reported";
    }
  }
}

TEST(PipelineTest, ClassificationCanBeDisabled) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.nodes_per_transition = 6.0;
  options.cad.engine = CommuteEngine::kExact;
  options.classify_cases = false;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  for (const ReportedEdge& reported : result->edges) {
    EXPECT_EQ(reported.anomaly_case, AnomalyCase::kUnclassified);
  }
}

TEST(PipelineTest, BaselineMethodsProduceNodeScoresOnly) {
  const ToyExample toy = MakeToyExample();
  for (const char* method : {"ACT", "CLC", "AFM"}) {
    PipelineOptions options;
    options.method = method;
    auto result = RunAnomalyPipeline(toy.sequence, options);
    ASSERT_TRUE(result.ok()) << method;
    EXPECT_TRUE(result->reports.empty()) << method;
    EXPECT_TRUE(result->edges.empty()) << method;
    ASSERT_EQ(result->node_scores.size(), 1u) << method;
    EXPECT_EQ(result->node_scores[0].size(), 17u) << method;
  }
}

TEST(PipelineTest, AdjVariantRunsThroughSamePath) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.method = "ADJ";
  options.nodes_per_transition = 4.0;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->method, "ADJ");
  EXPECT_FALSE(result->node_scores.empty());
}

TEST(PipelineTest, EdgeReportCsvFormat) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.nodes_per_transition = 6.0;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteEdgeReportCsv(*result, &out).ok());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("transition,u,v,score,weight_delta,commute_delta,case"),
            std::string::npos);
  // 3 edges -> header + 3 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("case-2-new-bridge"), std::string::npos);
}

TEST(PipelineTest, NodeScoresCsvSkipsZeros) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  std::ostringstream nonzero;
  ASSERT_TRUE(WriteNodeScoresCsv(*result, &nonzero, true).ok());
  std::ostringstream all;
  ASSERT_TRUE(WriteNodeScoresCsv(*result, &all, false).ok());
  // All rows = header + 17; nonzero strictly fewer (several toy nodes are 0).
  const std::string all_csv = all.str();
  const std::string nonzero_csv = nonzero.str();
  EXPECT_EQ(std::count(all_csv.begin(), all_csv.end(), '\n'), 18);
  EXPECT_LT(std::count(nonzero_csv.begin(), nonzero_csv.end(), '\n'), 18);
}

}  // namespace
}  // namespace cad
