#include "app/pipeline.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "datagen/toy_example.h"

namespace cad {
namespace {

TEST(PipelineTest, MethodFamilyClassification) {
  EXPECT_TRUE(IsCommuteBasedMethod("CAD"));
  EXPECT_TRUE(IsCommuteBasedMethod("ADJ"));
  EXPECT_TRUE(IsCommuteBasedMethod("COM"));
  EXPECT_TRUE(IsCommuteBasedMethod("SUM"));
  EXPECT_FALSE(IsCommuteBasedMethod("ACT"));
  EXPECT_FALSE(IsCommuteBasedMethod("CLC"));
  EXPECT_FALSE(IsCommuteBasedMethod("AFM"));
  EXPECT_FALSE(IsCommuteBasedMethod("bogus"));
}

TEST(PipelineTest, RejectsUnknownMethodAndShortSequences) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.method = "bogus";
  EXPECT_FALSE(RunAnomalyPipeline(toy.sequence, options).ok());

  TemporalGraphSequence single(3);
  CAD_CHECK_OK(single.Append(WeightedGraph(3)));
  options.method = "CAD";
  EXPECT_FALSE(RunAnomalyPipeline(single, options).ok());
}

TEST(PipelineTest, CadOnToyLocalizesAndClassifies) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.nodes_per_transition = 6.0;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->method, "CAD");
  EXPECT_GT(result->delta, 0.0);
  ASSERT_EQ(result->reports.size(), 1u);
  EXPECT_EQ(result->reports[0].nodes, toy.anomalous_nodes);
  ASSERT_EQ(result->edges.size(), 3u);

  // The three reported edges carry the paper's case labels.
  for (const ReportedEdge& reported : result->edges) {
    if (reported.edge.pair == NodePair::Make(ToyBlue(1), ToyRed(1))) {
      EXPECT_EQ(reported.anomaly_case, AnomalyCase::kNewBridge);
    } else if (reported.edge.pair == NodePair::Make(ToyRed(7), ToyRed(8))) {
      EXPECT_EQ(reported.anomaly_case, AnomalyCase::kWeakenedBridge);
    } else if (reported.edge.pair == NodePair::Make(ToyBlue(4), ToyBlue(5))) {
      EXPECT_EQ(reported.anomaly_case, AnomalyCase::kMagnitudeChange);
    } else {
      ADD_FAILURE() << "unexpected edge reported";
    }
  }
}

TEST(PipelineTest, ClassificationCanBeDisabled) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.nodes_per_transition = 6.0;
  options.cad.engine = CommuteEngine::kExact;
  options.classify_cases = false;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  for (const ReportedEdge& reported : result->edges) {
    EXPECT_EQ(reported.anomaly_case, AnomalyCase::kUnclassified);
  }
}

TEST(PipelineTest, BaselineMethodsProduceNodeScoresOnly) {
  const ToyExample toy = MakeToyExample();
  for (const char* method : {"ACT", "CLC", "AFM"}) {
    PipelineOptions options;
    options.method = method;
    auto result = RunAnomalyPipeline(toy.sequence, options);
    ASSERT_TRUE(result.ok()) << method;
    EXPECT_TRUE(result->reports.empty()) << method;
    EXPECT_TRUE(result->edges.empty()) << method;
    ASSERT_EQ(result->node_scores.size(), 1u) << method;
    EXPECT_EQ(result->node_scores[0].size(), 17u) << method;
  }
}

TEST(PipelineTest, AdjVariantRunsThroughSamePath) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.method = "ADJ";
  options.nodes_per_transition = 4.0;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->method, "ADJ");
  EXPECT_FALSE(result->node_scores.empty());
}

TEST(PipelineTest, EdgeReportCsvFormat) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.nodes_per_transition = 6.0;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteEdgeReportCsv(*result, &out).ok());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("transition,u,v,score,weight_delta,commute_delta,case"),
            std::string::npos);
  // 3 edges -> header + 3 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("case-2-new-bridge"), std::string::npos);
}

TEST(PipelineTest, NodeScoresCsvSkipsZeros) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  std::ostringstream nonzero;
  ASSERT_TRUE(WriteNodeScoresCsv(*result, &nonzero, true).ok());
  std::ostringstream all;
  ASSERT_TRUE(WriteNodeScoresCsv(*result, &all, false).ok());
  // All rows = header + 17; nonzero strictly fewer (several toy nodes are 0).
  const std::string all_csv = all.str();
  const std::string nonzero_csv = nonzero.str();
  EXPECT_EQ(std::count(all_csv.begin(), all_csv.end(), '\n'), 18);
  EXPECT_LT(std::count(nonzero_csv.begin(), nonzero_csv.end(), '\n'), 18);
}

// With a vocabulary attached to the input sequence, every writer renders
// node names instead of integer ids; without one, output is unchanged.
TEST(PipelineTest, WritersRenderNodeNamesWhenVocabularyPresent) {
  ToyExample toy = MakeToyExample();
  std::vector<std::string> names;
  names.reserve(toy.sequence.num_nodes());
  for (size_t i = 0; i < toy.sequence.num_nodes(); ++i) {
    names.push_back("host-" + std::to_string(i));
  }
  auto vocabulary = NodeVocabulary::FromNames(names);
  ASSERT_TRUE(vocabulary.ok());
  CAD_CHECK_OK(toy.sequence.SetVocabulary(*vocabulary));

  PipelineOptions options;
  options.nodes_per_transition = 6.0;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->vocabulary.has_value());

  std::ostringstream edges;
  ASSERT_TRUE(WriteEdgeReportCsv(*result, &edges).ok());
  const std::string edge_csv = edges.str();
  EXPECT_NE(edge_csv.find("host-"), std::string::npos);

  std::ostringstream nodes;
  ASSERT_TRUE(WriteNodeScoresCsv(*result, &nodes, false).ok());
  const std::string node_csv = nodes.str();
  EXPECT_NE(node_csv.find("host-0,"), std::string::npos);

  std::ostringstream json;
  ASSERT_TRUE(WritePipelineResultJson(*result, &json).ok());
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find("\"u\":\"host-"), std::string::npos);
  EXPECT_NE(json_text.find("\"v\":\"host-"), std::string::npos);
}

TEST(PipelineTest, WritersKeepIntegerIdsWithoutVocabulary) {
  const ToyExample toy = MakeToyExample();
  PipelineOptions options;
  options.nodes_per_transition = 6.0;
  options.cad.engine = CommuteEngine::kExact;
  auto result = RunAnomalyPipeline(toy.sequence, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->vocabulary.has_value());

  std::ostringstream json;
  ASSERT_TRUE(WritePipelineResultJson(*result, &json).ok());
  // Integer path: u/v stay JSON numbers, never quoted strings.
  EXPECT_EQ(json.str().find("\"u\":\""), std::string::npos);
  EXPECT_EQ(json.str().find("\"v\":\""), std::string::npos);
}

}  // namespace
}  // namespace cad
