#include "graph/components.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(ComponentsTest, EmptyGraph) {
  WeightedGraph g(0);
  const ComponentLabeling labeling = ConnectedComponents(g);
  EXPECT_EQ(labeling.num_components, 0u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ComponentsTest, EdgelessGraphIsAllSingletons) {
  WeightedGraph g(4);
  const ComponentLabeling labeling = ConnectedComponents(g);
  EXPECT_EQ(labeling.num_components, 4u);
  EXPECT_EQ(labeling.sizes, (std::vector<size_t>{1, 1, 1, 1}));
  EXPECT_FALSE(IsConnected(g));
}

TEST(ComponentsTest, SingleComponent) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 1.0).ok());
  EXPECT_TRUE(IsConnected(g));
  const ComponentLabeling labeling = ConnectedComponents(g);
  EXPECT_EQ(labeling.num_components, 1u);
  EXPECT_EQ(labeling.sizes[0], 4u);
}

TEST(ComponentsTest, TwoComponentsPlusIsolated) {
  WeightedGraph g(5);
  ASSERT_TRUE(g.SetEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(2, 3, 1.0).ok());
  const ComponentLabeling labeling = ConnectedComponents(g);
  EXPECT_EQ(labeling.num_components, 3u);
  EXPECT_TRUE(labeling.SameComponent(0, 1));
  EXPECT_TRUE(labeling.SameComponent(2, 3));
  EXPECT_FALSE(labeling.SameComponent(1, 2));
  EXPECT_FALSE(labeling.SameComponent(0, 4));
  EXPECT_EQ(labeling.sizes, (std::vector<size_t>{2, 2, 1}));
}

TEST(ComponentsTest, IdsAssignedInOrderOfSmallestNode) {
  WeightedGraph g(4);
  ASSERT_TRUE(g.SetEdge(2, 3, 1.0).ok());
  const ComponentLabeling labeling = ConnectedComponents(g);
  EXPECT_EQ(labeling.component[0], 0u);
  EXPECT_EQ(labeling.component[1], 1u);
  EXPECT_EQ(labeling.component[2], 2u);
  EXPECT_EQ(labeling.component[3], 2u);
}

TEST(ComponentsTest, SizesSumToNodeCount) {
  WeightedGraph g(10);
  ASSERT_TRUE(g.SetEdge(0, 5, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(5, 9, 1.0).ok());
  ASSERT_TRUE(g.SetEdge(1, 2, 1.0).ok());
  const ComponentLabeling labeling = ConnectedComponents(g);
  size_t total = 0;
  for (size_t s : labeling.sizes) total += s;
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace cad
