// Tests for the heartbeat emitter (src/obs/stats_reporter.h): count-based
// emission cadence, the line-delimited record schema, delta semantics against
// the global registry, and the non-timer determinism contract (the volatile
// "timer" object is the record's last key, strippable by truncation).
//
// Like the metric-macro tests, these run against the process-global registry
// and therefore use test-unique metric names.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace cad {
namespace obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// The deterministic prefix of a heartbeat line: everything before the
/// volatile trailing "timer" object.
std::string StripTimer(const std::string& line) {
  const size_t cut = line.find(",\"timer\":");
  return cut == std::string::npos ? line : line.substr(0, cut);
}

TEST(StatsReporterTest, EmitsEveryNthTickAndCountsRecords) {
  const ScopedMetricsEnable enable;
  std::ostringstream out;
  StatsReporter reporter(&out, 3);
  for (int tick = 1; tick <= 9; ++tick) {
    const Result<bool> emitted = reporter.Tick();
    ASSERT_TRUE(emitted.ok());
    EXPECT_EQ(*emitted, tick % 3 == 0) << "tick " << tick;
  }
  EXPECT_EQ(reporter.ticks(), 9u);
  EXPECT_EQ(reporter.records_emitted(), 3u);
  EXPECT_EQ(Lines(out.str()).size(), 3u);
}

TEST(StatsReporterTest, RecordCarriesSchemaFieldsWithTimerLast) {
  const ScopedMetricsEnable enable;
  std::ostringstream out;
  StatsReporter reporter(&out, 1);
  CAD_METRIC_INC("test.stats.schema_counter");
  ASSERT_TRUE(reporter.Tick().ok());
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"v\":1,\"seq\":0,\"window\":1,"), std::string::npos);
  EXPECT_NE(line.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(line.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(line.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(line.find("\"test.stats.schema_counter\":1"), std::string::npos);
  // Exactly one volatile "timer" key, and nothing deterministic after it:
  // consumers strip it by truncating the line there.
  const size_t timer_at = line.find(",\"timer\":{");
  ASSERT_NE(timer_at, std::string::npos);
  EXPECT_EQ(line.find(",\"timer\":{", timer_at + 1), std::string::npos);
  EXPECT_NE(line.find("\"peak_rss_bytes\":", timer_at), std::string::npos);
}

TEST(StatsReporterTest, CountersAreDeltasAndZeroDeltasAreOmitted) {
  const ScopedMetricsEnable enable;
  std::ostringstream out;
  StatsReporter reporter(&out, 1);
  CAD_METRIC_ADD("test.stats.delta_counter", 2);
  ASSERT_TRUE(reporter.Tick().ok());
  CAD_METRIC_ADD("test.stats.delta_counter", 5);
  ASSERT_TRUE(reporter.Tick().ok());
  ASSERT_TRUE(reporter.Tick().ok());  // no activity since the last record
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"test.stats.delta_counter\":2"),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"test.stats.delta_counter\":5"),
            std::string::npos);
  // The idle heartbeat omits the unchanged counter entirely.
  EXPECT_EQ(lines[2].find("test.stats.delta_counter"), std::string::npos);
}

TEST(StatsReporterTest, WindowLatencyQuantilesAppearInTheTimerObject) {
  const ScopedMetricsEnable enable;
  std::ostringstream out;
  StatsReporter reporter(&out, 1);
  CAD_METRIC_TIME_HIST_NS("test.stats.latency", 2000000);
  CAD_METRIC_TIME_HIST_NS("test.stats.latency", 4000000);
  ASSERT_TRUE(reporter.Tick().ok());
  const std::string line = Lines(out.str()).at(0);
  const size_t timer_at = line.find(",\"timer\":{");
  ASSERT_NE(timer_at, std::string::npos);
  // Quantiles live inside the volatile section, in milliseconds.
  EXPECT_GT(line.find("\"test.stats.latency\":{\"count\":2,\"p50_ms\":"),
            timer_at);
  EXPECT_GT(line.find("\"p90_ms\":", timer_at), timer_at);
  EXPECT_GT(line.find("\"p99_ms\":", timer_at), timer_at);
  EXPECT_GT(line.find("\"max_ms\":", timer_at), timer_at);
  // And nowhere in the deterministic prefix.
  EXPECT_EQ(StripTimer(line).find("test.stats.latency"), std::string::npos);
}

TEST(StatsReporterTest, NonTimerFieldsAreIdenticalAcrossIdenticalWorkloads) {
  const auto run = [] {
    const ScopedMetricsEnable enable;
    std::ostringstream out;
    StatsReporter reporter(&out, 2);
    for (int tick = 0; tick < 6; ++tick) {
      CAD_METRIC_INC("test.stats.replay");
      CAD_METRIC_OBSERVE("test.stats.replay_hist",
                         static_cast<double>(tick + 1));
      CAD_METRIC_TIME_HIST_NS("test.stats.replay_latency", 1000 * (tick + 1));
      EXPECT_TRUE(reporter.Tick().ok());
    }
    std::string stripped;
    for (const std::string& line : Lines(out.str())) {
      stripped += StripTimer(line);
      stripped += '\n';
    }
    return stripped;
  };
  EXPECT_EQ(run(), run());
}

TEST(StatsReporterTest, SinkFailureSurfacesAsIoError) {
  const ScopedMetricsEnable enable;
  std::ostringstream out;
  StatsReporter reporter(&out, 1);
  out.setstate(std::ios::badbit);
  const Result<bool> emitted = reporter.Tick();
  ASSERT_FALSE(emitted.ok());
  EXPECT_EQ(emitted.status().code(), StatusCode::kIoError);
}

TEST(StatsReporterTest, PeakRssIsPositiveOnSupportedPlatforms) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(PeakRssBytes(), 0u);
#else
  EXPECT_EQ(PeakRssBytes(), 0u);
#endif
}

}  // namespace
}  // namespace obs
}  // namespace cad
