#include "datagen/gmm.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(GmmTest, CreateValidatesComponents) {
  EXPECT_FALSE(GaussianMixture::Create({}).ok());

  std::vector<GaussianComponent> mismatched = {
      GaussianComponent{{0.0, 0.0}, {1.0}, 1.0}};
  EXPECT_FALSE(GaussianMixture::Create(mismatched).ok());

  std::vector<GaussianComponent> negative_weight = {
      GaussianComponent{{0.0}, {1.0}, -1.0}};
  EXPECT_FALSE(GaussianMixture::Create(negative_weight).ok());

  std::vector<GaussianComponent> negative_stddev = {
      GaussianComponent{{0.0}, {-1.0}, 1.0}};
  EXPECT_FALSE(GaussianMixture::Create(negative_stddev).ok());

  std::vector<GaussianComponent> valid = {
      GaussianComponent{{0.0, 1.0}, {1.0, 2.0}, 1.0}};
  EXPECT_TRUE(GaussianMixture::Create(valid).ok());
}

TEST(GmmTest, Standard4ComponentLayout) {
  const GaussianMixture mixture = GaussianMixture::Standard4Component2d(4.0, 0.7);
  EXPECT_EQ(mixture.num_components(), 4u);
  EXPECT_EQ(mixture.dimension(), 2u);
  // Means are on the corners of a side-4 square.
  EXPECT_EQ(mixture.components()[0].mean, (std::vector<double>{0, 0}));
  EXPECT_EQ(mixture.components()[3].mean, (std::vector<double>{4, 4}));
}

TEST(GmmTest, SampleCountsAndLabels) {
  const GaussianMixture mixture = GaussianMixture::Standard4Component2d();
  Rng rng(10);
  const GmmSample sample = mixture.Sample(1000, &rng);
  EXPECT_EQ(sample.points.size(), 1000u);
  EXPECT_EQ(sample.component.size(), 1000u);
  for (uint32_t c : sample.component) EXPECT_LT(c, 4u);
}

TEST(GmmTest, AllComponentsRepresented) {
  const GaussianMixture mixture = GaussianMixture::Standard4Component2d();
  Rng rng(20);
  const GmmSample sample = mixture.Sample(400, &rng);
  std::vector<int> counts(4, 0);
  for (uint32_t c : sample.component) ++counts[c];
  for (int count : counts) EXPECT_GT(count, 50);  // roughly balanced
}

TEST(GmmTest, PointsClusterAroundTheirComponentMean) {
  const GaussianMixture mixture = GaussianMixture::Standard4Component2d(8.0, 0.5);
  Rng rng(30);
  const GmmSample sample = mixture.Sample(500, &rng);
  for (size_t i = 0; i < sample.points.size(); ++i) {
    const auto& mean = mixture.components()[sample.component[i]].mean;
    EXPECT_LT(EuclideanDistance(sample.points[i], mean), 4.0);  // 8 sigma
  }
}

TEST(GmmTest, MixtureWeightsRespected) {
  std::vector<GaussianComponent> components = {
      GaussianComponent{{0.0}, {0.1}, 9.0},
      GaussianComponent{{10.0}, {0.1}, 1.0}};
  auto mixture = GaussianMixture::Create(components);
  ASSERT_TRUE(mixture.ok());
  Rng rng(40);
  const GmmSample sample = mixture->Sample(5000, &rng);
  int first = 0;
  for (uint32_t c : sample.component) first += (c == 0);
  EXPECT_NEAR(static_cast<double>(first) / 5000.0, 0.9, 0.03);
}

TEST(GmmTest, DeterministicGivenSeed) {
  const GaussianMixture mixture = GaussianMixture::Standard4Component2d();
  Rng rng1(50);
  Rng rng2(50);
  const GmmSample a = mixture.Sample(10, &rng1);
  const GmmSample b = mixture.Sample(10, &rng2);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.component, b.component);
}

TEST(EuclideanDistanceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({}, {}), 0.0);
}

}  // namespace
}  // namespace cad
