// Death tests for the CAD_CHECK family and Result's abort contract: these
// guard the library's fail-fast behaviour on programming errors.

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/result.h"

namespace cad {
namespace {

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ CAD_CHECK(1 == 2) << "extra context"; },
               "CHECK failed.*1 == 2.*extra context");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  CAD_CHECK(true);
  CAD_CHECK(2 + 2 == 4) << "never evaluated";
  SUCCEED();
}

TEST(CheckDeathTest, ComparisonMacrosIncludeValues) {
  EXPECT_DEATH({ CAD_CHECK_EQ(3, 5); }, "3 +vs +5");
  EXPECT_DEATH({ CAD_CHECK_LT(9, 2); }, "9 +vs +2");
  CAD_CHECK_GE(5, 5);
  CAD_CHECK_NE(1, 2);
}

TEST(CheckDeathTest, CheckOkAbortsWithStatusMessage) {
  EXPECT_DEATH({ CAD_CHECK_OK(Status::NotFound("the thing")); },
               "NotFound: the thing");
  CAD_CHECK_OK(Status::OK());
}

TEST(CheckDeathTest, ResultValueOrDieAbortsOnError) {
  EXPECT_DEATH(
      {
        Result<int> result = Status::InvalidArgument("boom");
        (void)result.ValueOrDie();
      },
      "boom");
}

TEST(CheckDeathTest, MessageSideEffectsOnlyOnFailure) {
  // The streamed expression must not be evaluated when the check passes.
  int evaluations = 0;
  const auto count = [&evaluations]() {
    ++evaluations;
    return "msg";
  };
  CAD_CHECK(true) << count();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace cad
