// Multi-tenant fleet tests (src/server/fleet.h, src/server/tenant.h):
// kill/resume byte-identity for the exact and warm-start approximate
// engines, bounded-queue backpressure accounting, shared cache-budget
// eviction, stale-checkpoint rejection, finish semantics, and a concurrent
// multi-producer ingest stress whose non-timer metrics must be invariant to
// the worker-thread count (the TSan target).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "server/event_queue.h"
#include "server/fleet.h"
#include "server/tenant.h"

namespace cad::server {
namespace {

/// mkdtemp-backed scratch directory; removes its contents on destruction.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    std::string pattern = ::testing::TempDir() + "/cad_fleet_XXXXXX";
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    CAD_CHECK(::mkdtemp(buffer.data()) != nullptr);
    path_ = buffer.data();
  }
  ~ScopedTempDir() {
    // Tenant files are flat (<name>.ckpt/.csv plus .tmp leftovers).
    const std::string cleanup = "rm -rf '" + path_ + "'";
    (void)::system(cleanup.c_str());  // best-effort scratch cleanup
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Deterministic integer-id event stream: `windows` windows of
/// `per_window` events over `nodes` nodes, seeded per tenant so every
/// tenant sees a different (but reproducible) graph sequence.
std::vector<WireEvent> MakeEvents(size_t seed, size_t windows,
                                  size_t per_window, size_t nodes) {
  std::vector<WireEvent> events;
  events.reserve(windows * per_window);
  uint64_t state = 0x9e3779b97f4a7c15ull * (seed + 1);
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (size_t w = 0; w < windows; ++w) {
    for (size_t i = 0; i < per_window; ++i) {
      const size_t u = next() % nodes;
      size_t v = next() % nodes;
      if (v == u) v = (v + 1) % nodes;
      WireEvent event;
      event.u = std::to_string(u);
      event.v = std::to_string(v);
      event.timestamp =
          static_cast<double>(w) +
          (0.5 + static_cast<double>(i)) / (2.0 * per_window);
      event.weight = 1.0;
      events.push_back(std::move(event));
    }
  }
  return events;
}

std::vector<std::vector<WireEvent>> InBatches(
    const std::vector<WireEvent>& events, size_t batch_size) {
  std::vector<std::vector<WireEvent>> batches;
  for (size_t i = 0; i < events.size(); i += batch_size) {
    const size_t end = std::min(events.size(), i + batch_size);
    batches.emplace_back(events.begin() + i, events.begin() + end);
  }
  return batches;
}

OnlineMonitorOptions ExactMonitor() {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kExact;
  options.nodes_per_transition = 2.0;
  options.warmup_transitions = 2;
  return options;
}

OnlineMonitorOptions ApproxWarmStartMonitor() {
  OnlineMonitorOptions options;
  options.detector.engine = CommuteEngine::kApprox;
  options.detector.approx.embedding_dim = 8;
  options.detector.approx.seed = 3;
  options.detector.approx.warm_start = true;
  options.nodes_per_transition = 2.0;
  options.warmup_transitions = 2;
  return options;
}

/// Pulls the integer after `"key":` out of a stats JSON blob.
int64_t JsonInt(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  CAD_CHECK(pos != std::string::npos);
  return std::atoll(json.c_str() + pos + needle.size());
}

uint64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

// --- kill/resume byte-identity ---------------------------------------------

constexpr size_t kTenants = 8;
constexpr size_t kWindows = 12;
constexpr size_t kPerWindow = 24;
constexpr size_t kNodes = 20;

FleetOptions FleetFor(const std::string& data_dir,
                      const OnlineMonitorOptions& monitor) {
  FleetOptions options;
  options.num_workers = 4;
  options.data_dir = data_dir;
  options.tenant.monitor = monitor;
  options.tenant.window_length = 1.0;
  options.tenant.checkpoint_every = 2;
  return options;
}

std::string TenantName(size_t i) { return "t" + std::to_string(i); }

void FeedAndFinish(TenantFleet* fleet, const std::string& name,
                   const std::vector<WireEvent>& events) {
  for (std::vector<WireEvent>& batch : InBatches(events, 64)) {
    while (true) {
      const Result<bool> accepted = fleet->Enqueue(name, batch);
      ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
      if (*accepted) break;
    }
  }
  const Status finished = fleet->Finish(name);
  ASSERT_TRUE(finished.ok()) << finished.ToString();
}

/// An uninterrupted run and a kill-between-intervals/resume/replay run over
/// the same per-tenant streams must produce byte-identical report CSVs for
/// every tenant.
void RunFleetKillResume(const OnlineMonitorOptions& monitor) {
  ScopedTempDir base_dir;
  ScopedTempDir kill_dir;

  std::vector<std::vector<WireEvent>> streams;
  for (size_t i = 0; i < kTenants; ++i) {
    streams.push_back(MakeEvents(i, kWindows, kPerWindow, kNodes));
  }

  {  // Baseline: every tenant start-to-finish in one server lifetime.
    Result<std::unique_ptr<TenantFleet>> fleet =
        TenantFleet::Create(FleetFor(base_dir.path(), monitor));
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    for (size_t i = 0; i < kTenants; ++i) {
      ASSERT_TRUE((*fleet)->Open(TenantName(i)).ok());
    }
    for (size_t i = 0; i < kTenants; ++i) {
      FeedAndFinish(fleet->get(), TenantName(i), streams[i]);
    }
  }

  {  // First lifetime: half the stream, then an abrupt stop — no drain, no
     // finish, exactly what outlives a kill -9 is the interval checkpoints.
    Result<std::unique_ptr<TenantFleet>> fleet =
        TenantFleet::Create(FleetFor(kill_dir.path(), monitor));
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    for (size_t i = 0; i < kTenants; ++i) {
      ASSERT_TRUE((*fleet)->Open(TenantName(i)).ok());
      const std::vector<WireEvent> half(
          streams[i].begin(), streams[i].begin() + streams[i].size() / 2);
      for (std::vector<WireEvent>& batch : InBatches(half, 64)) {
        while (true) {
          const Result<bool> accepted = (*fleet)->Enqueue(TenantName(i),
                                                          batch);
          ASSERT_TRUE(accepted.ok());
          if (*accepted) break;
        }
      }
    }
  }

  {  // Second lifetime: resume everything, replay the full streams (resume
     // drops already-observed windows idempotently), finish, compare.
    Result<std::unique_ptr<TenantFleet>> fleet =
        TenantFleet::Create(FleetFor(kill_dir.path(), monitor));
    ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
    ASSERT_TRUE((*fleet)->ResumeAll().ok());
    EXPECT_EQ((*fleet)->tenant_count(), kTenants);
    for (size_t i = 0; i < kTenants; ++i) {
      const Result<OpenReply> reply = (*fleet)->Open(TenantName(i));
      ASSERT_TRUE(reply.ok());
      // Non-vacuity: the restart really resumed mid-stream state.
      EXPECT_TRUE(reply->resumed) << TenantName(i);
      EXPECT_GE(reply->next_window, 2u) << TenantName(i);
    }
    for (size_t i = 0; i < kTenants; ++i) {
      FeedAndFinish(fleet->get(), TenantName(i), streams[i]);
    }
  }

  for (size_t i = 0; i < kTenants; ++i) {
    const std::string name = TenantName(i);
    const std::string baseline = ReadFile(base_dir.path() + "/" + name +
                                          ".csv");
    const std::string resumed = ReadFile(kill_dir.path() + "/" + name +
                                         ".csv");
    ASSERT_FALSE(baseline.empty()) << name;
    EXPECT_EQ(baseline, resumed) << name;
  }
}

TEST(FleetKillResumeTest, ExactEngineByteIdentical) {
  RunFleetKillResume(ExactMonitor());
}

TEST(FleetKillResumeTest, ApproxWarmStartByteIdentical) {
  // Warm start is the hard case: resumed CG iterates must retrace the
  // uninterrupted run, which only works if the envelope checkpoint carried
  // the solver cache along with the monitor.
  RunFleetKillResume(ApproxWarmStartMonitor());
}

// --- backpressure -----------------------------------------------------------

TEST(BoundedBatchQueueTest, CapacityIsCountedInEvents) {
  BoundedBatchQueue queue(10);
  EXPECT_TRUE(queue.TryPush(std::vector<WireEvent>(6)));
  EXPECT_TRUE(queue.TryPush(std::vector<WireEvent>(4)));
  EXPECT_EQ(queue.pending_events(), 10u);
  EXPECT_FALSE(queue.TryPush(std::vector<WireEvent>(1)));
  ASSERT_TRUE(queue.TryPop().has_value());
  EXPECT_EQ(queue.pending_events(), 4u);
  EXPECT_TRUE(queue.TryPush(std::vector<WireEvent>(6)));
}

TEST(BoundedBatchQueueTest, EmptyQueueAcceptsOversizedBatch) {
  // A batch larger than the whole capacity must not be permanently
  // unqueueable; it is admitted alone and the next push waits.
  BoundedBatchQueue queue(4);
  EXPECT_TRUE(queue.TryPush(std::vector<WireEvent>(100)));
  EXPECT_FALSE(queue.TryPush(std::vector<WireEvent>(1)));
  const std::optional<std::vector<WireEvent>> popped = queue.TryPop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->size(), 100u);
  EXPECT_TRUE(queue.empty());
}

TEST(BoundedBatchQueueTest, PopsInFifoOrder) {
  BoundedBatchQueue queue(100);
  EXPECT_TRUE(queue.TryPush(std::vector<WireEvent>(1)));
  EXPECT_TRUE(queue.TryPush(std::vector<WireEvent>(2)));
  EXPECT_EQ(queue.TryPop()->size(), 1u);
  EXPECT_EQ(queue.TryPop()->size(), 2u);
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(FleetBackpressureTest, EveryRejectionIsCountedAndNothingIsDropped) {
  obs::SetMetricsEnabled(true);
  obs::ResetMetrics();
  ScopedTempDir dir;
  FleetOptions options = FleetFor(dir.path(), ExactMonitor());
  options.num_workers = 1;
  options.tenant.queue_capacity_events = 8;  // tiny: force rejections
  options.tenant.checkpoint_every = 0;
  Result<std::unique_ptr<TenantFleet>> fleet = TenantFleet::Create(options);
  ASSERT_TRUE(fleet.ok());
  ASSERT_TRUE((*fleet)->Open("bp").ok());

  const std::vector<WireEvent> events =
      MakeEvents(0, /*windows=*/6, /*per_window=*/40, kNodes);
  size_t rejections_seen = 0;
  for (std::vector<WireEvent>& batch : InBatches(events, 16)) {
    while (true) {
      const Result<bool> accepted = (*fleet)->Enqueue("bp", batch);
      ASSERT_TRUE(accepted.ok());
      if (*accepted) break;
      ++rejections_seen;
    }
  }
  ASSERT_TRUE((*fleet)->Finish("bp").ok());

  const Result<std::string> stats = (*fleet)->StatsJson("bp");
  ASSERT_TRUE(stats.ok());
  // Reject-with-status means the retried events all arrived exactly once.
  EXPECT_EQ(JsonInt(*stats, "received"),
            static_cast<int64_t>(events.size()));
  EXPECT_EQ(JsonInt(*stats, "rejections"),
            static_cast<int64_t>(rejections_seen));
  EXPECT_EQ(CounterValue(obs::SnapshotMetrics(), "server.queue_rejections"),
            rejections_seen);
  obs::SetMetricsEnabled(false);
}

// --- shared cache budget ----------------------------------------------------

TEST(FleetCacheBudgetTest, EvictsIdleTenantsDownToTheBudget) {
  obs::SetMetricsEnabled(true);
  obs::ResetMetrics();
  const std::vector<WireEvent> events =
      MakeEvents(1, /*windows=*/6, kPerWindow, kNodes);

  // Control run: unlimited budget leaves a warm cache behind, proving the
  // eviction assertion below is non-vacuous.
  {
    ScopedTempDir dir;
    FleetOptions options = FleetFor(dir.path(), ApproxWarmStartMonitor());
    options.tenant.checkpoint_every = 0;
    Result<std::unique_ptr<TenantFleet>> fleet = TenantFleet::Create(options);
    ASSERT_TRUE(fleet.ok());
    ASSERT_TRUE((*fleet)->Open("warm").ok());
    FeedAndFinish(fleet->get(), "warm", events);
    const Result<std::string> stats = (*fleet)->StatsJson("warm");
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(JsonInt(*stats, "cache_bytes"), 0);
  }

  {
    ScopedTempDir dir;
    FleetOptions options = FleetFor(dir.path(), ApproxWarmStartMonitor());
    options.tenant.checkpoint_every = 0;
    options.cache_budget_bytes = 1;  // anything warm is over budget
    Result<std::unique_ptr<TenantFleet>> fleet = TenantFleet::Create(options);
    ASSERT_TRUE(fleet.ok());
    ASSERT_TRUE((*fleet)->Open("a").ok());
    ASSERT_TRUE((*fleet)->Open("b").ok());
    FeedAndFinish(fleet->get(), "a", events);
    FeedAndFinish(fleet->get(), "b", events);
    // Both tenants are idle after Finish, so enforcement on the last
    // release must have evicted them back under the 1-byte budget.
    const Result<std::string> summary = (*fleet)->StatsJson("");
    ASSERT_TRUE(summary.ok());
    EXPECT_LE(JsonInt(*summary, "cache_bytes"), 1);
    EXPECT_GE(CounterValue(obs::SnapshotMetrics(), "server.cache_evictions"),
              1u);
  }
  obs::SetMetricsEnabled(false);
}

// --- stale checkpoint -------------------------------------------------------

TEST(TenantStaleCheckpointTest, CheckpointAheadOfReplayedStreamIsIoError) {
  ScopedTempDir dir;
  TenantOptions options;
  options.monitor = ExactMonitor();
  options.checkpoint_path = dir.path() + "/stale.ckpt";
  options.output_path = dir.path() + "/stale.csv";

  const std::vector<WireEvent> full =
      MakeEvents(2, /*windows=*/8, kPerWindow, kNodes);
  {
    Result<std::unique_ptr<Tenant>> tenant = Tenant::Create("stale", options);
    ASSERT_TRUE(tenant.ok());
    ASSERT_TRUE((*tenant)->ApplyBatch(full).ok());
    ASSERT_TRUE((*tenant)->Finish().ok());
  }

  // The replayed "stream" covers only windows 0-1: the checkpoint claims
  // windows the stream never contained, so this is a mismatched pairing of
  // checkpoint and input, not a resumable state.
  Result<std::unique_ptr<Tenant>> resumed = Tenant::Create("stale", options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE((*resumed)->resumed());
  const std::vector<WireEvent> shorter(
      full.begin(), full.begin() + 2 * kPerWindow);
  ASSERT_TRUE((*resumed)->ApplyBatch(shorter).ok());
  const Status finished = (*resumed)->Finish();
  ASSERT_FALSE(finished.ok());
  EXPECT_EQ(finished.code(), StatusCode::kIoError);
  EXPECT_NE(finished.message().find("checkpoint"), std::string::npos)
      << finished.ToString();
}

// --- finish semantics -------------------------------------------------------

TEST(TenantFinishTest, SecondFinishAndPostFinishBatchesAreRejected) {
  TenantOptions options;
  options.monitor = ExactMonitor();
  Result<std::unique_ptr<Tenant>> tenant = Tenant::Create("once", options);
  ASSERT_TRUE(tenant.ok());
  const std::vector<WireEvent> events =
      MakeEvents(3, /*windows=*/4, kPerWindow, kNodes);
  ASSERT_TRUE((*tenant)->ApplyBatch(events).ok());
  ASSERT_TRUE((*tenant)->Finish().ok());

  const Status again = (*tenant)->Finish();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  const Status late = (*tenant)->ApplyBatch(events);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
}

// --- open/enqueue validation ------------------------------------------------

TEST(FleetOpenTest, ValidatesNamesAndIsIdempotent) {
  ScopedTempDir dir;
  Result<std::unique_ptr<TenantFleet>> fleet =
      TenantFleet::Create(FleetFor(dir.path(), ExactMonitor()));
  ASSERT_TRUE(fleet.ok());
  for (const char* bad : {"", ".", "..", "a/b", "a b"}) {
    const Result<OpenReply> reply = (*fleet)->Open(bad);
    ASSERT_FALSE(reply.ok()) << bad;
    EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  ASSERT_TRUE((*fleet)->Open("same").ok());
  ASSERT_TRUE((*fleet)->Open("same").ok());
  EXPECT_EQ((*fleet)->tenant_count(), 1u);

  const Result<bool> unknown =
      (*fleet)->Enqueue("nope", std::vector<WireEvent>(1));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

// --- concurrent ingest stress (TSan target) ---------------------------------

/// Runs `tenants` producer threads against a fleet with `workers` workers
/// and returns (per-tenant report CSVs, non-timer counter snapshot).
std::pair<std::vector<std::string>, std::vector<std::pair<std::string,
                                                          uint64_t>>>
RunStress(size_t workers) {
  ScopedTempDir dir;
  FleetOptions options = FleetFor(dir.path(), ExactMonitor());
  options.num_workers = workers;
  options.tenant.checkpoint_every = 0;
  // Ample capacity: rejections depend on scheduling and must stay 0 for
  // the cross-thread-count metric comparison.
  options.tenant.queue_capacity_events = 1u << 20;
  Result<std::unique_ptr<TenantFleet>> fleet = TenantFleet::Create(options);
  CAD_CHECK(fleet.ok());

  constexpr size_t kStressTenants = 8;
  for (size_t i = 0; i < kStressTenants; ++i) {
    CAD_CHECK((*fleet)->Open(TenantName(i)).ok());
  }
  std::vector<std::thread> producers;
  for (size_t i = 0; i < kStressTenants; ++i) {
    producers.emplace_back([&fleet, i] {
      const std::vector<WireEvent> events =
          MakeEvents(i, /*windows=*/6, /*per_window=*/16, kNodes);
      for (std::vector<WireEvent>& batch : InBatches(events, 32)) {
        while (true) {
          const Result<bool> accepted = (*fleet)->Enqueue(TenantName(i),
                                                          batch);
          CAD_CHECK(accepted.ok());
          if (*accepted) break;
        }
      }
      CAD_CHECK((*fleet)->Finish(TenantName(i)).ok());
    });
  }
  for (std::thread& producer : producers) producer.join();

  std::vector<std::string> reports;
  for (size_t i = 0; i < kStressTenants; ++i) {
    reports.push_back(ReadFile(dir.path() + "/" + TenantName(i) + ".csv"));
    CAD_CHECK(!reports.back().empty());
  }
  return {std::move(reports), obs::SnapshotMetrics().counters};
}

TEST(FleetStressTest, ConcurrentIngestIsThreadCountInvariant) {
  obs::SetMetricsEnabled(true);
  obs::ResetMetrics();
  auto [reports_small, counters_small] = RunStress(/*workers=*/2);
  obs::ResetMetrics();
  auto [reports_large, counters_large] = RunStress(/*workers=*/7);
  obs::SetMetricsEnabled(false);

  // Reports are byte-identical and every non-timer counter (per-tenant
  // events/windows, fleet rejections/evictions) lands on the same value no
  // matter how many workers raced over the queues.
  ASSERT_EQ(reports_small.size(), reports_large.size());
  for (size_t i = 0; i < reports_small.size(); ++i) {
    EXPECT_EQ(reports_small[i], reports_large[i]) << TenantName(i);
  }
  EXPECT_EQ(counters_small, counters_large);
}

}  // namespace
}  // namespace cad::server
