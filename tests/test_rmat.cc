#include "datagen/rmat.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include <gtest/gtest.h>

#include "common/check.h"
#include "graph/graph.h"
#include "graph/temporal_graph.h"

namespace cad {
namespace {

RmatOptions SmallOptions() {
  RmatOptions options;
  options.num_nodes = 300;
  options.num_edges = 1200;
  options.seed = 42;
  return options;
}

bool SameEdges(const std::vector<Edge>& a, const std::vector<Edge>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].u != b[i].u || a[i].v != b[i].v) return false;
    // Byte comparison: determinism means identical doubles, not close ones.
    if (std::memcmp(&a[i].weight, &b[i].weight, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(RmatTest, EdgeSamplesAreCanonicalAndInRange) {
  const std::vector<Edge> samples = RmatEdgeSamples(SmallOptions(), 500);
  ASSERT_EQ(samples.size(), 500u);
  for (const Edge& e : samples) {
    EXPECT_LT(e.u, e.v);  // canonical, and no self-loops
    EXPECT_LT(e.v, 300u);
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(RmatTest, SameSeedGivesByteIdenticalSampleStream) {
  const std::vector<Edge> first = RmatEdgeSamples(SmallOptions(), 2000);
  const std::vector<Edge> second = RmatEdgeSamples(SmallOptions(), 2000);
  EXPECT_TRUE(SameEdges(first, second));
}

TEST(RmatTest, DifferentSeedsGiveDifferentStreams) {
  RmatOptions other = SmallOptions();
  other.seed = 43;
  const std::vector<Edge> first = RmatEdgeSamples(SmallOptions(), 2000);
  const std::vector<Edge> second = RmatEdgeSamples(other, 2000);
  EXPECT_FALSE(SameEdges(first, second));
}

TEST(RmatTest, GraphHasExactDistinctEdgeCount) {
  Result<WeightedGraph> graph = MakeRmatGraph(SmallOptions());
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_nodes(), 300u);
  EXPECT_EQ(graph->num_edges(), 1200u);
}

TEST(RmatTest, GraphBuildIsDeterministic) {
  Result<WeightedGraph> first = MakeRmatGraph(SmallOptions());
  Result<WeightedGraph> second = MakeRmatGraph(SmallOptions());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(SameEdges(first->Edges(), second->Edges()));
}

TEST(RmatTest, PowerLawSkew) {
  // The Graph500 parameters concentrate mass in the low-id quadrant, so the
  // top decile of nodes by degree should hold well over a uniform share of
  // the volume. A coarse structural check, not a distribution fit.
  RmatOptions options = SmallOptions();
  options.num_nodes = 2000;
  options.num_edges = 10000;
  Result<WeightedGraph> graph = MakeRmatGraph(options);
  ASSERT_TRUE(graph.ok());
  std::vector<size_t> degrees = graph->Degrees();
  std::sort(degrees.begin(), degrees.end(), std::greater<size_t>());
  size_t top = 0;
  size_t total = 0;
  for (size_t i = 0; i < degrees.size(); ++i) {
    if (i < degrees.size() / 10) top += degrees[i];
    total += degrees[i];
  }
  EXPECT_GT(static_cast<double>(top), 0.3 * static_cast<double>(total));
}

TEST(RmatTest, RejectsMalformedOptions) {
  RmatOptions options = SmallOptions();
  options.a = 0.9;
  options.b = 0.9;  // a + b + c > 1
  EXPECT_FALSE(MakeRmatGraph(options).ok());

  options = SmallOptions();
  options.num_nodes = 1;  // no canonical edge exists
  EXPECT_FALSE(MakeRmatGraph(options).ok());

  options = SmallOptions();
  options.num_edges = 300ull * 299ull;  // more than n*(n-1)/2 distinct edges
  EXPECT_FALSE(MakeRmatGraph(options).ok());

  options = SmallOptions();
  options.min_weight = 2.0;
  options.max_weight = 1.0;  // inverted weight range
  EXPECT_FALSE(MakeRmatGraph(options).ok());
}

TEST(RmatTest, TemporalSequenceShape) {
  RmatTemporalOptions options;
  options.base = SmallOptions();
  options.num_snapshots = 5;
  Result<TemporalGraphSequence> sequence = MakeRmatTemporalSequence(options);
  ASSERT_TRUE(sequence.ok()) << sequence.status().ToString();
  EXPECT_EQ(sequence->num_snapshots(), 5u);
  for (size_t t = 0; t < sequence->num_snapshots(); ++t) {
    EXPECT_EQ(sequence->Snapshot(t).num_nodes(), 300u);
  }
}

TEST(RmatTest, TemporalSequenceIsDeterministic) {
  RmatTemporalOptions options;
  options.base = SmallOptions();
  Result<TemporalGraphSequence> first = MakeRmatTemporalSequence(options);
  Result<TemporalGraphSequence> second = MakeRmatTemporalSequence(options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->num_snapshots(), second->num_snapshots());
  for (size_t t = 0; t < first->num_snapshots(); ++t) {
    EXPECT_TRUE(SameEdges(first->Snapshot(t).Edges(),
                          second->Snapshot(t).Edges()))
        << "snapshot " << t;
  }
}

TEST(RmatTest, AnomalyInjectionReportsGroundTruth) {
  RmatTemporalOptions options;
  options.base = SmallOptions();
  options.num_snapshots = 4;
  options.anomaly_snapshot = 2;
  options.anomaly_fraction = 0.05;
  std::vector<Edge> injected;
  Result<TemporalGraphSequence> sequence =
      MakeRmatTemporalSequence(options, &injected);
  ASSERT_TRUE(sequence.ok()) << sequence.status().ToString();
  EXPECT_FALSE(injected.empty());
  for (const Edge& e : injected) {
    EXPECT_LT(e.u, e.v);
    EXPECT_LT(e.v, 300u);
  }
}

TEST(RmatTest, DisabledAnomalyInjectsNothing) {
  RmatTemporalOptions options;
  options.base = SmallOptions();
  options.num_snapshots = 3;
  options.anomaly_snapshot = 99;  // >= num_snapshots disables injection
  std::vector<Edge> injected;
  Result<TemporalGraphSequence> sequence =
      MakeRmatTemporalSequence(options, &injected);
  ASSERT_TRUE(sequence.ok());
  EXPECT_TRUE(injected.empty());
}

}  // namespace
}  // namespace cad
