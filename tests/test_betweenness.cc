#include <algorithm>

#include <gtest/gtest.h>

#include "graph/centrality.h"

namespace cad {
namespace {

WeightedGraph UnitPath(size_t n) {
  WeightedGraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) CAD_CHECK_OK(g.SetEdge(i, i + 1, 1.0));
  return g;
}

BetweennessOptions Raw() {
  BetweennessOptions options;
  options.normalized = false;
  return options;
}

TEST(BetweennessTest, PathKnownValues) {
  // Path 0-1-2-3-4: node 2 lies on shortest paths between {0,1} x {3,4}
  // plus (1,3)... exact counts: bc(2) = |{(0,3),(0,4),(1,3),(1,4)}| = 4? No:
  // also (0,4) passes through 1,2,3. Pairs through node 2: (0,3), (0,4),
  // (1,3), (1,4) -> 4; through node 1: (0,2), (0,3), (0,4) -> 3.
  const std::vector<double> bc = BetweennessCentrality(UnitPath(5), Raw());
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 3.0);
  EXPECT_DOUBLE_EQ(bc[2], 4.0);
  EXPECT_DOUBLE_EQ(bc[3], 3.0);
}

TEST(BetweennessTest, StarCenterCarriesAllPairs) {
  WeightedGraph g(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) CAD_CHECK_OK(g.SetEdge(0, leaf, 1.0));
  const std::vector<double> bc = BetweennessCentrality(g, Raw());
  // All C(4,2) = 6 leaf pairs route through the center.
  EXPECT_DOUBLE_EQ(bc[0], 6.0);
  for (NodeId leaf = 1; leaf < 5; ++leaf) EXPECT_DOUBLE_EQ(bc[leaf], 0.0);
}

TEST(BetweennessTest, EqualPathSplitting) {
  // 4-cycle: between opposite corners there are two equal shortest paths;
  // each intermediate node gets half a pair from each of its two opposite
  // pairs -> bc = 0.5 per node (one opposite pair, split over 2 routes).
  WeightedGraph g(4);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(1, 2, 1.0));
  CAD_CHECK_OK(g.SetEdge(2, 3, 1.0));
  CAD_CHECK_OK(g.SetEdge(0, 3, 1.0));
  const std::vector<double> bc = BetweennessCentrality(g, Raw());
  for (NodeId i = 0; i < 4; ++i) EXPECT_NEAR(bc[i], 0.5, 1e-12);
}

TEST(BetweennessTest, WeightsShiftShortestPaths) {
  // Triangle with one slow edge: 0-2 direct has length 1/0.2 = 5, via node 1
  // it is 1 + 1 = 2, so node 1 carries the (0,2) pair.
  WeightedGraph g(3);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(1, 2, 1.0));
  CAD_CHECK_OK(g.SetEdge(0, 2, 0.2));
  const std::vector<double> bc = BetweennessCentrality(g, Raw());
  EXPECT_DOUBLE_EQ(bc[1], 1.0);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[2], 0.0);
}

TEST(BetweennessTest, NormalizationBoundsScores) {
  WeightedGraph g = UnitPath(20);
  BetweennessOptions normalized;
  const std::vector<double> bc = BetweennessCentrality(g, normalized);
  for (double v : bc) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
  // Midpoint of a path approaches the maximum.
  EXPECT_GT(bc[10], 0.5);
}

TEST(BetweennessTest, TinyGraphsAreZero) {
  EXPECT_EQ(BetweennessCentrality(WeightedGraph(0), Raw()).size(), 0u);
  EXPECT_EQ(BetweennessCentrality(UnitPath(2), Raw()),
            (std::vector<double>{0.0, 0.0}));
}

TEST(BetweennessTest, DisconnectedComponentsIndependent) {
  WeightedGraph g(6);
  CAD_CHECK_OK(g.SetEdge(0, 1, 1.0));
  CAD_CHECK_OK(g.SetEdge(1, 2, 1.0));
  CAD_CHECK_OK(g.SetEdge(3, 4, 1.0));
  CAD_CHECK_OK(g.SetEdge(4, 5, 1.0));
  const std::vector<double> bc = BetweennessCentrality(g, Raw());
  EXPECT_DOUBLE_EQ(bc[1], 1.0);  // middle of its 3-path
  EXPECT_DOUBLE_EQ(bc[4], 1.0);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
}

TEST(BetweennessTest, SampledEstimateTracksExact) {
  // Barbell: two cliques joined through a 3-node bridge; the bridge carries
  // everything.
  WeightedGraph g(23);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = a + 1; b < 10; ++b) {
      CAD_CHECK_OK(g.SetEdge(a, b, 1.0));
      CAD_CHECK_OK(g.SetEdge(a + 13, b + 13, 1.0));
    }
  }
  CAD_CHECK_OK(g.SetEdge(9, 10, 1.0));
  CAD_CHECK_OK(g.SetEdge(10, 11, 1.0));
  CAD_CHECK_OK(g.SetEdge(11, 12, 1.0));
  CAD_CHECK_OK(g.SetEdge(12, 13, 1.0));

  const std::vector<double> exact = BetweennessCentrality(g, Raw());
  BetweennessOptions sampled = Raw();
  sampled.num_samples = 12;
  sampled.seed = 9;
  const std::vector<double> approx = BetweennessCentrality(g, sampled);
  // The bridge node 11 dominates in both, and the estimate is within 2x.
  const auto max_exact =
      std::max_element(exact.begin(), exact.end()) - exact.begin();
  const auto max_approx =
      std::max_element(approx.begin(), approx.end()) - approx.begin();
  EXPECT_EQ(max_exact, 11);
  // With 12 pivots the sampled argmax can land on any of the three
  // equivalent-role bridge nodes.
  EXPECT_GE(max_approx, 10);
  EXPECT_LE(max_approx, 12);
  EXPECT_NEAR(approx[11], exact[11], exact[11]);
}

}  // namespace
}  // namespace cad
