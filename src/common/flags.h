#ifndef CAD_COMMON_FLAGS_H_
#define CAD_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace cad {

/// \brief Minimal command-line flag parser for the benchmark and example
/// binaries.
///
/// Supports `--name=value` and `--name value` forms plus bare boolean
/// `--name`. Unknown flags are rejected so that typos in experiment scripts
/// fail loudly.
///
/// \code
///   FlagParser flags;
///   int64_t trials = 10;
///   flags.AddInt64("trials", &trials, "number of repetitions");
///   CAD_CHECK_OK(flags.Parse(argc, argv));
/// \endcode
class FlagParser {
 public:
  void AddInt64(const std::string& name, int64_t* target,
                const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Parses argv, writing values into the registered targets. Returns an
  /// error for unknown flags or malformed values. `--help` prints usage and
  /// sets help_requested().
  [[nodiscard]] Status Parse(int argc, char** argv);

  bool help_requested() const { return help_requested_; }

  /// Human-readable usage string listing all registered flags and their
  /// current (default) values.
  std::string Usage() const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct Flag {
    Type type;
    void* target;
    std::string help;
    std::string default_value;
  };

  [[nodiscard]] Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace cad

#endif  // CAD_COMMON_FLAGS_H_
