#ifndef CAD_COMMON_RNG_H_
#define CAD_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cad {

/// \brief Deterministic pseudo-random number generator (xoshiro256++ seeded
/// via SplitMix64) with the distributions needed by the data generators.
///
/// Every stochastic component in the library draws through an `Rng` so that
/// all experiments are exactly reproducible from a single seed. The generator
/// is not cryptographically secure and is not thread-safe; use one instance
/// per thread.
class Rng {
 public:
  /// Seeds the generator. Two `Rng` objects with the same seed produce
  /// identical streams on all platforms.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit word.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via the Marsaglia polar method.
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Exponential with the given rate (rate > 0).
  double Exponential(double rate);

  /// Poisson-distributed count. Uses Knuth's method for small means and a
  /// normal approximation (rounded, clamped at 0) for mean > 64, which is
  /// accurate enough for workload synthesis.
  uint64_t Poisson(double mean);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Rademacher variate: +1 or -1 with equal probability.
  double Rademacher();

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Draws `k` distinct indices uniformly from [0, n). Requires k <= n.
  /// Returned indices are in ascending order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; useful for giving each
  /// sub-component its own reproducible stream.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace cad

#endif  // CAD_COMMON_RNG_H_
