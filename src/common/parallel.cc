#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/timer.h"

namespace cad {
namespace {

std::atomic<const ParallelHooks*> g_hooks{nullptr};

/// Pairs call_begin/call_end around every exit path of ParallelFor.
class HookScope {
 public:
  HookScope(const ParallelHooks* hooks, size_t count) : hooks_(hooks) {
    if (hooks_ != nullptr && hooks_->call_begin != nullptr) {
      cookie_ = hooks_->call_begin(count);
    }
  }
  ~HookScope() {
    if (hooks_ != nullptr && hooks_->call_end != nullptr) {
      hooks_->call_end(cookie_);
    }
  }

  HookScope(const HookScope&) = delete;
  HookScope& operator=(const HookScope&) = delete;

 private:
  const ParallelHooks* hooks_;
  void* cookie_ = nullptr;
};

}  // namespace

void SetParallelHooks(const ParallelHooks* hooks) {
  g_hooks.store(hooks, std::memory_order_release);
}

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  const ParallelHooks* hooks = g_hooks.load(std::memory_order_acquire);
  HookScope scope(hooks, count);
  // Latch the switch once per call so a mid-call toggle cannot split the
  // accounting; instrumentation only observes, so `fn`'s results (and their
  // bit patterns) are untouched either way.
  const bool observe = hooks != nullptr && hooks->observe_tasks != nullptr &&
                       hooks->task_time_ns != nullptr && hooks->observe_tasks();
  const auto run_task = [&](size_t i) {
    if (observe) {
      // Per-task wall time is a "timer" metric: the only CSV kind allowed
      // to vary between same-seed runs (see the determinism contract).
      const Timer task_timer;
      fn(i);
      hooks->task_time_ns(task_timer.ElapsedNanos());
    } else {
      fn(i);
    }
  };

  num_threads = std::min(num_threads, count);
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) {
      run_task(i);
    }
    return;
  }

  std::atomic<size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      run_task(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (size_t t = 0; t + 1 < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  worker();  // the calling thread participates
  for (std::thread& thread : threads) thread.join();
}

size_t HardwareThreads() {
  const unsigned int count = std::thread::hardware_concurrency();
  return count == 0 ? 1 : static_cast<size_t>(count);
}

}  // namespace cad
