#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "obs/obs.h"

namespace cad {

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  CAD_TRACE_SPAN("parallel_for");
  CAD_METRIC_INC("parallel.calls");
  CAD_METRIC_ADD("parallel.tasks", count);
  // Latch the switch once per call so a mid-call toggle cannot split the
  // accounting; instrumentation only observes, so `fn`'s results (and their
  // bit patterns) are untouched either way.
  const bool observe = obs::MetricsEnabled();

  num_threads = std::min(num_threads, count);
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) {
      if (observe) {
        // Per-task wall time is a "timer" metric: the only CSV kind allowed
        // to vary between same-seed runs (see the determinism contract).
        const Timer task_timer;
        fn(i);
        CAD_METRIC_TIME_NS("parallel.task", task_timer.ElapsedNanos());
      } else {
        fn(i);
      }
    }
    return;
  }

  std::atomic<size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      if (observe) {
        const Timer task_timer;
        fn(i);
        CAD_METRIC_TIME_NS("parallel.task", task_timer.ElapsedNanos());
      } else {
        fn(i);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (size_t t = 0; t + 1 < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  worker();  // the calling thread participates
  for (std::thread& thread : threads) thread.join();
}

size_t HardwareThreads() {
  const unsigned int count = std::thread::hardware_concurrency();
  return count == 0 ? 1 : static_cast<size_t>(count);
}

}  // namespace cad
