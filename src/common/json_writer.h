#ifndef CAD_COMMON_JSON_WRITER_H_
#define CAD_COMMON_JSON_WRITER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"

namespace cad {

/// \brief Minimal streaming JSON emitter (RFC 8259 subset): nested
/// objects/arrays, string escaping, and finite-number formatting. Enough for
/// machine-readable anomaly reports without pulling in a JSON library.
///
/// Usage is push-based and validated with CHECKs in debug builds:
/// \code
///   JsonWriter json(&out);
///   json.BeginObject();
///   json.Key("delta");
///   json.Number(0.5);
///   json.Key("edges");
///   json.BeginArray();
///   ...
///   json.EndArray();
///   json.EndObject();
/// \endcode
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream* out);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; must be directly inside an object.
  void Key(const std::string& key);

  void String(const std::string& value);
  void Number(double value);
  void Number(int64_t value);
  void Number(size_t value);
  void Bool(bool value);
  void Null();

  /// True once the single top-level value is complete.
  bool complete() const { return complete_; }

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();
  void WriteEscaped(const std::string& text);

  std::ostream* out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
  bool complete_ = false;
};

/// Escapes one string for embedding in JSON (without the quotes).
std::string EscapeJsonString(const std::string& text);

}  // namespace cad

#endif  // CAD_COMMON_JSON_WRITER_H_
