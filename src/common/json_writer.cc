#include "common/json_writer.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.h"

namespace cad {

std::string EscapeJsonString(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

JsonWriter::JsonWriter(std::ostream* out) : out_(out) {
  CAD_CHECK(out != nullptr);
}

void JsonWriter::BeforeValue() {
  CAD_DCHECK(!complete_);
  if (!stack_.empty()) {
    if (stack_.back() == Scope::kObject) {
      CAD_DCHECK(pending_key_);
    } else if (!first_in_scope_.back()) {
      (*out_) << ",";
    }
    first_in_scope_.back() = false;
  }
  pending_key_ = false;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  (*out_) << "{";
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
}

void JsonWriter::EndObject() {
  CAD_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  CAD_CHECK(!pending_key_);
  (*out_) << "}";
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) complete_ = true;
}

void JsonWriter::BeginArray() {
  BeforeValue();
  (*out_) << "[";
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
}

void JsonWriter::EndArray() {
  CAD_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  (*out_) << "]";
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) complete_ = true;
}

void JsonWriter::Key(const std::string& key) {
  CAD_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  CAD_CHECK(!pending_key_);
  if (!first_in_scope_.back()) (*out_) << ",";
  first_in_scope_.back() = false;
  (*out_) << "\"" << EscapeJsonString(key) << "\":";
  pending_key_ = true;
  // Key() handled its own comma; neutralize BeforeValue's comma logic by
  // marking the scope "fresh" for the upcoming value.
  first_in_scope_.back() = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  (*out_) << "\"" << EscapeJsonString(value) << "\"";
  if (stack_.empty()) complete_ = true;
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; emit null per common practice.
    (*out_) << "null";
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.12g", value);
    (*out_) << buffer;
  }
  if (stack_.empty()) complete_ = true;
}

void JsonWriter::Number(int64_t value) {
  BeforeValue();
  (*out_) << value;
  if (stack_.empty()) complete_ = true;
}

void JsonWriter::Number(size_t value) {
  Number(static_cast<int64_t>(value));
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  (*out_) << (value ? "true" : "false");
  if (stack_.empty()) complete_ = true;
}

void JsonWriter::Null() {
  BeforeValue();
  (*out_) << "null";
  if (stack_.empty()) complete_ = true;
}

}  // namespace cad
