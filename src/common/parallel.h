#ifndef CAD_COMMON_PARALLEL_H_
#define CAD_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cad {

/// \brief Observability hooks for ParallelFor, injected by a higher layer.
///
/// common/ sits at the bottom of the layer DAG and must not depend on
/// src/obs, so ParallelFor publishes its lifecycle through this table
/// instead of calling the metrics/tracing macros directly. src/obs installs
/// an implementation at static-init time (from metrics.cc, which every
/// metrics consumer links); with no hooks installed ParallelFor runs
/// uninstrumented.
struct ParallelHooks {
  /// Called once per ParallelFor invocation before any task runs; the
  /// returned cookie is handed back to call_end (may be nullptr).
  void* (*call_begin)(size_t task_count) = nullptr;
  /// Called once after every task has completed, including on early paths.
  void (*call_end)(void* cookie) = nullptr;
  /// Latched once per call; true enables per-task wall-time measurement.
  bool (*observe_tasks)() = nullptr;
  /// Receives each task's elapsed wall time when observe_tasks() was true.
  void (*task_time_ns)(uint64_t nanos) = nullptr;
};

/// Installs `hooks` (nullptr uninstalls). The table must outlive every
/// subsequent ParallelFor call; installation is an atomic pointer swap.
void SetParallelHooks(const ParallelHooks* hooks);

/// \brief Runs `fn(i)` for every i in [0, count), distributing iterations
/// over up to `num_threads` worker threads via an atomic work counter.
///
/// With num_threads <= 1 (or count <= 1) everything runs inline on the
/// calling thread — callers can pass a configuration value straight through.
/// `fn` must be safe to invoke concurrently from multiple threads for
/// distinct `i`; iteration order is unspecified. The call returns after all
/// iterations complete.
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn);

/// \brief Number of hardware threads, with a floor of 1.
size_t HardwareThreads();

}  // namespace cad

#endif  // CAD_COMMON_PARALLEL_H_
