#ifndef CAD_COMMON_PARALLEL_H_
#define CAD_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace cad {

/// \brief Runs `fn(i)` for every i in [0, count), distributing iterations
/// over up to `num_threads` worker threads via an atomic work counter.
///
/// With num_threads <= 1 (or count <= 1) everything runs inline on the
/// calling thread — callers can pass a configuration value straight through.
/// `fn` must be safe to invoke concurrently from multiple threads for
/// distinct `i`; iteration order is unspecified. The call returns after all
/// iterations complete.
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn);

/// \brief Number of hardware threads, with a floor of 1.
size_t HardwareThreads();

}  // namespace cad

#endif  // CAD_COMMON_PARALLEL_H_
