#include "common/status.h"

namespace cad {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace cad
