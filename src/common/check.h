#ifndef CAD_COMMON_CHECK_H_
#define CAD_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace cad {
namespace internal {

/// \brief Accumulates a failure message and aborts the process when
/// destroyed. Used only via the CAD_CHECK* macros.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Converts the streamed CheckFailure chain to void so it can appear on one
/// arm of a ternary expression. `&` binds more loosely than `<<`, so the
/// whole message chain is evaluated first.
class Voidify {
 public:
  void operator&(const CheckFailure&) {}
};

}  // namespace internal
}  // namespace cad

/// Aborts with a diagnostic when `condition` is false. Enabled in all build
/// types: these guard invariants whose violation would corrupt results.
/// Supports streaming extra context: `CAD_CHECK(i < n) << "i=" << i;`.
#define CAD_CHECK(condition)              \
  (condition) ? (void)0                   \
              : ::cad::internal::Voidify() & \
                    ::cad::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define CAD_CHECK_OK(status_expr)                                      \
  do {                                                                 \
    const ::cad::Status _cad_check_status = (status_expr);             \
    CAD_CHECK(_cad_check_status.ok()) << _cad_check_status.ToString(); \
  } while (false)

#define CAD_CHECK_EQ(a, b) CAD_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define CAD_CHECK_NE(a, b) CAD_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define CAD_CHECK_LT(a, b) CAD_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define CAD_CHECK_LE(a, b) CAD_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define CAD_CHECK_GT(a, b) CAD_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define CAD_CHECK_GE(a, b) CAD_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

/// CAD_DCHECK* — the debug-tier invariant net for hot paths. These compile to
/// nothing unless the build defines CAD_ENABLE_DCHECK (CMake:
/// -DCAD_ENABLE_DCHECK=ON; CI turns it on for the sanitizer jobs). When
/// disabled, conditions and status expressions are type-checked but never
/// evaluated, so validators of any cost can sit at hot-path entry points.
#ifdef CAD_ENABLE_DCHECK

#define CAD_DCHECK(condition) CAD_CHECK(condition)
#define CAD_DCHECK_OK(status_expr) CAD_CHECK_OK(status_expr)
#define CAD_DCHECK_EQ(a, b) CAD_CHECK_EQ(a, b)
#define CAD_DCHECK_NE(a, b) CAD_CHECK_NE(a, b)
#define CAD_DCHECK_LT(a, b) CAD_CHECK_LT(a, b)
#define CAD_DCHECK_LE(a, b) CAD_CHECK_LE(a, b)
#define CAD_DCHECK_GT(a, b) CAD_CHECK_GT(a, b)
#define CAD_DCHECK_GE(a, b) CAD_CHECK_GE(a, b)

#else  // !CAD_ENABLE_DCHECK

/// Disabled form: the condition sits on the dead arm of `true || ...` so it
/// is type-checked but never evaluated, and streamed context compiles away.
#define CAD_DCHECK(condition)                   \
  (true || (condition)) ? (void)0               \
                        : ::cad::internal::Voidify() & \
                              ::cad::internal::CheckFailure(__FILE__, __LINE__, #condition)

/// Disabled form: the status expression compiles (so validator signatures
/// stay honest) but is never evaluated.
#define CAD_DCHECK_OK(status_expr)                          \
  do {                                                      \
    if (false) {                                            \
      const ::cad::Status _cad_dcheck_status = (status_expr); \
      (void)_cad_dcheck_status;                             \
    }                                                       \
  } while (false)

#define CAD_DCHECK_EQ(a, b) CAD_DCHECK((a) == (b))
#define CAD_DCHECK_NE(a, b) CAD_DCHECK((a) != (b))
#define CAD_DCHECK_LT(a, b) CAD_DCHECK((a) < (b))
#define CAD_DCHECK_LE(a, b) CAD_DCHECK((a) <= (b))
#define CAD_DCHECK_GT(a, b) CAD_DCHECK((a) > (b))
#define CAD_DCHECK_GE(a, b) CAD_DCHECK((a) >= (b))

#endif  // CAD_ENABLE_DCHECK

#endif  // CAD_COMMON_CHECK_H_
