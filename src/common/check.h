#ifndef CAD_COMMON_CHECK_H_
#define CAD_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace cad {
namespace internal {

/// \brief Accumulates a failure message and aborts the process when
/// destroyed. Used only via the CAD_CHECK* macros.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Converts the streamed CheckFailure chain to void so it can appear on one
/// arm of a ternary expression. `&` binds more loosely than `<<`, so the
/// whole message chain is evaluated first.
class Voidify {
 public:
  void operator&(const CheckFailure&) {}
};

}  // namespace internal
}  // namespace cad

/// Aborts with a diagnostic when `condition` is false. Enabled in all build
/// types: these guard invariants whose violation would corrupt results.
/// Supports streaming extra context: `CAD_CHECK(i < n) << "i=" << i;`.
#define CAD_CHECK(condition)              \
  (condition) ? (void)0                   \
              : ::cad::internal::Voidify() & \
                    ::cad::internal::CheckFailure(__FILE__, __LINE__, #condition)

/// Debug-only variant for hot paths. The condition is type-checked but never
/// evaluated in release builds.
#ifdef NDEBUG
#define CAD_DCHECK(condition)                   \
  (true || (condition)) ? (void)0               \
                        : ::cad::internal::Voidify() & \
                              ::cad::internal::CheckFailure(__FILE__, __LINE__, #condition)
#else
#define CAD_DCHECK(condition) CAD_CHECK(condition)
#endif

#define CAD_CHECK_OK(status_expr)                                      \
  do {                                                                 \
    const ::cad::Status _cad_check_status = (status_expr);             \
    CAD_CHECK(_cad_check_status.ok()) << _cad_check_status.ToString(); \
  } while (false)

#define CAD_CHECK_EQ(a, b) CAD_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define CAD_CHECK_NE(a, b) CAD_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define CAD_CHECK_LT(a, b) CAD_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define CAD_CHECK_LE(a, b) CAD_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define CAD_CHECK_GT(a, b) CAD_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define CAD_CHECK_GE(a, b) CAD_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#endif  // CAD_COMMON_CHECK_H_
