#include "common/csv_writer.h"

#include <ostream>
#include <sstream>

#include "common/check.h"

namespace cad {

std::string EscapeCsvField(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

CsvWriter::CsvWriter(std::ostream* out, std::vector<std::string> columns)
    : out_(out), num_columns_(columns.size()) {
  CAD_CHECK(out_ != nullptr);
  CAD_CHECK_GT(num_columns_, 0u);
  WriteCells(columns);
}

void CsvWriter::WriteCells(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) (*out_) << ',';
    (*out_) << EscapeCsvField(cells[i]);
  }
  (*out_) << '\n';
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  CAD_CHECK_EQ(cells.size(), num_columns_);
  WriteCells(cells);
  ++rows_written_;
}

void CsvWriter::WriteNumericRow(const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double value : values) {
    std::ostringstream cell;
    cell.precision(precision);
    cell << value;
    cells.push_back(cell.str());
  }
  WriteRow(cells);
}

}  // namespace cad
