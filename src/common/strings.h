#ifndef CAD_COMMON_STRINGS_H_
#define CAD_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cad {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits `text` on runs of ASCII whitespace (space, tab, CR, ...), dropping
/// empty fields: leading/trailing whitespace and repeated separators produce
/// no tokens. This is the tokenizer for whitespace-delimited text formats,
/// where Split(text, ' ') would manufacture spurious empty fields from a
/// doubled space or a tab.
std::vector<std::string> SplitTokens(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a base-10 signed integer; the whole string must be consumed.
[[nodiscard]] Result<int64_t> ParseInt64(std::string_view text);

/// Parses a floating-point number; the whole string must be consumed.
[[nodiscard]] Result<double> ParseDouble(std::string_view text);

/// Formats a double with `precision` significant digits.
std::string FormatDouble(double value, int precision = 6);

}  // namespace cad

#endif  // CAD_COMMON_STRINGS_H_
