#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace cad {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> SplitTokens(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string buffer(StripWhitespace(text));
  if (buffer.empty()) {
    return Status::InvalidArgument("ParseInt64: empty input");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("ParseInt64: out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("ParseInt64: trailing garbage in: " +
                                   buffer);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  const std::string buffer(StripWhitespace(text));
  if (buffer.empty()) {
    return Status::InvalidArgument("ParseDouble: empty input");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("ParseDouble: out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("ParseDouble: trailing garbage in: " +
                                   buffer);
  }
  return value;
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace cad
