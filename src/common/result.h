#ifndef CAD_COMMON_RESULT_H_
#define CAD_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace cad {

/// \brief Holds either a value of type `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result`. Functions that can fail but produce a value
/// return `Result<T>`:
/// \code
///   Result<WeightedGraph> g = ReadTemporalEdgeList(path);
///   if (!g.ok()) return g.status();
///   Use(g.ValueOrDie());
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (success).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (failure). Passing an OK status is a
  /// programming error and degrades to an Internal error.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      state_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// The failure status, or OK when a value is held.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(state_);
  }

  /// Returns the contained value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    CAD_CHECK(ok()) << "Result::ValueOrDie on error: "
                    << std::get<Status>(state_).ToString();
    return std::get<T>(state_);
  }

  T& ValueOrDie() & {
    CAD_CHECK(ok()) << "Result::ValueOrDie on error: "
                    << std::get<Status>(state_).ToString();
    return std::get<T>(state_);
  }

  /// Moves the contained value out; aborts if this holds an error.
  T ValueOrDie() && {
    CAD_CHECK(ok()) << "Result::ValueOrDie on error: "
                    << std::get<Status>(state_).ToString();
    return std::move(std::get<T>(state_));
  }

  /// Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> state_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its status on failure, and
/// otherwise move-assigns its value into `lhs`, which must already be
/// declared.
#define CAD_ASSIGN_OR_RETURN(lhs, rexpr)            \
  do {                                              \
    auto _cad_result = (rexpr);                     \
    if (!_cad_result.ok()) return _cad_result.status(); \
    lhs = std::move(_cad_result).ValueOrDie();      \
  } while (false)

}  // namespace cad

#endif  // CAD_COMMON_RESULT_H_
