#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace cad {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // All-zero state would lock xoshiro at zero; SplitMix64 cannot produce
  // four zero outputs in a row, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::NextUint64() {
  // xoshiro256++ step.
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  CAD_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  CAD_CHECK(n > 0) << "UniformInt requires n > 0";
  // Rejection sampling over the largest multiple of n below 2^64.
  const uint64_t threshold = (0 - n) % n;  // == 2^64 mod n
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CAD_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Normal() {
  // Marsaglia polar method; discards the second variate for simplicity.
  for (;;) {
    const double u = Uniform(-1.0, 1.0);
    const double v = Uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::Normal(double mean, double stddev) {
  CAD_DCHECK(stddev >= 0.0);
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  CAD_CHECK(rate > 0.0);
  // -log(1 - U) avoids log(0) since Uniform() < 1.
  return -std::log1p(-Uniform()) / rate;
}

uint64_t Rng::Poisson(double mean) {
  CAD_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    const double sample = Normal(mean, std::sqrt(mean));
    return sample <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(sample));
  }
  // Knuth's multiplication method.
  const double limit = std::exp(-mean);
  uint64_t count = 0;
  double product = Uniform();
  while (product > limit) {
    ++count;
    product *= Uniform();
  }
  return count;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Rademacher() { return (NextUint64() & 1) ? 1.0 : -1.0; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  CAD_CHECK_LE(k, n);
  std::vector<size_t> picked;
  picked.reserve(k);
  if (k == 0) return picked;
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<size_t> indices(n);
    for (size_t i = 0; i < n; ++i) indices[i] = i;
    for (size_t i = 0; i < k; ++i) {
      const size_t j = i + static_cast<size_t>(UniformInt(n - i));
      std::swap(indices[i], indices[j]);
    }
    picked.assign(indices.begin(), indices.begin() + static_cast<long>(k));
  } else {
    // Sparse case: rejection sampling into a hash set.
    std::unordered_set<size_t> seen;
    seen.reserve(k * 2);
    while (picked.size() < k) {
      const size_t candidate = static_cast<size_t>(UniformInt(n));
      if (seen.insert(candidate).second) picked.push_back(candidate);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace cad
