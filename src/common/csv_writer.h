#ifndef CAD_COMMON_CSV_WRITER_H_
#define CAD_COMMON_CSV_WRITER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"

namespace cad {

/// \brief Minimal CSV emitter used by the benchmark harnesses to dump
/// series for plotting. Fields containing commas, quotes, or newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer. A header row is written
  /// immediately.
  CsvWriter(std::ostream* out, std::vector<std::string> columns);

  /// Appends a row; the cell count must match the column count.
  void WriteRow(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void WriteNumericRow(const std::vector<double>& values, int precision = 8);

  size_t rows_written() const { return rows_written_; }

 private:
  void WriteCells(const std::vector<std::string>& cells);

  std::ostream* out_;
  size_t num_columns_;
  size_t rows_written_ = 0;
};

/// Escapes one CSV field (exposed for tests).
std::string EscapeCsvField(const std::string& field);

}  // namespace cad

#endif  // CAD_COMMON_CSV_WRITER_H_
