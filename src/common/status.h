#ifndef CAD_COMMON_STATUS_H_
#define CAD_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace cad {

/// \brief Machine-readable category of a failure.
///
/// The set is deliberately small: callers almost always branch only on
/// ok/not-ok and use the message for diagnostics.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kNumericalError = 6,
  kIoError = 7,
  kNotImplemented = 8,
  kInternal = 9,
};

/// \brief Returns a stable human-readable name for a status code
/// (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Arrow-style status object used for error propagation across the
/// public API instead of exceptions.
///
/// A `Status` is cheap to pass around in the success case: an OK status holds
/// only a null pointer. Failure states carry a code and a message.
///
/// Typical usage:
/// \code
///   Status s = graph.AddEdge(u, v, w);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per failure code.
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The failure message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null for OK. shared_ptr keeps copies cheap; statuses are immutable.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller.
#define CAD_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::cad::Status _cad_status = (expr);         \
    if (!_cad_status.ok()) return _cad_status;  \
  } while (false)

}  // namespace cad

#endif  // CAD_COMMON_STATUS_H_
