#include "common/flags.h"

#include <iostream>
#include <sstream>

#include "common/result.h"
#include "common/strings.h"

namespace cad {

void FlagParser::AddInt64(const std::string& name, int64_t* target,
                          const std::string& help) {
  flags_[name] = Flag{Type::kInt64, target, help, std::to_string(*target)};
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_[name] = Flag{Type::kDouble, target, help, FormatDouble(*target)};
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_[name] = Flag{Type::kBool, target, help, *target ? "true" : "false"};
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_[name] = Flag{Type::kString, target, help, *target};
}

Status FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::NotFound("unknown flag: --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt64: {
      Result<int64_t> parsed = ParseInt64(value);
      if (!parsed.ok()) return parsed.status();
      *static_cast<int64_t*>(flag.target) = *parsed;
      return Status::OK();
    }
    case Type::kDouble: {
      Result<double> parsed = ParseDouble(value);
      if (!parsed.ok()) return parsed.status();
      *static_cast<double*>(flag.target) = *parsed;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("bad boolean for --" + name + ": " +
                                       value);
      }
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable flag type");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::cout << Usage();
      continue;
    }
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::NotFound("unknown flag: --" + name);
      }
      // Booleans may appear bare; other types consume the next argument.
      if (it->second.type == Type::kBool) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + name + " needs a value");
        }
        value = argv[++i];
      }
    }
    CAD_RETURN_NOT_OK(SetValue(name, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::ostringstream os;
  os << "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")  "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace cad
