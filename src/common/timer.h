#ifndef CAD_COMMON_TIMER_H_
#define CAD_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace cad {

/// \brief Simple monotonic stopwatch used by the benchmark harnesses and the
/// observability layer (src/obs/).
///
/// This header is the repo's single owner of raw wall-clock access: the
/// `raw-clock` lint rule bans std::chrono steady/high_resolution clock use
/// everywhere else so that all timing flows through one instrumentable seam.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Monotonic timestamp in nanoseconds since an arbitrary (per-process)
  /// epoch. The basis for every trace span and timer metric.
  static uint64_t NowNanos() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Restart().
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cad

#endif  // CAD_COMMON_TIMER_H_
