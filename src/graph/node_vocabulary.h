#ifndef CAD_GRAPH_NODE_VOCABULARY_H_
#define CAD_GRAPH_NODE_VOCABULARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cad {

/// \brief Bidirectional mapping between external string node ids and the
/// dense integer `NodeId`s the solvers operate on.
///
/// The paper's datasets (Enron email addresses, DBLP author names,
/// precipitation station codes) are string-keyed and their node sets grow
/// over time. The vocabulary assigns dense ids in first-appearance order, so
/// the mapping is deterministic for a given input stream: replaying a prefix
/// of the stream reproduces a prefix of the vocabulary. That property is what
/// makes checkpoint/resume of named streams exact (DESIGN.md §8).
///
/// Names must be non-empty, contain no whitespace or control characters
/// (they appear as single tokens in the text formats), and must not start
/// with '#' (the comment marker).
class NodeVocabulary {
 public:
  NodeVocabulary() = default;

  /// Checks that `name` is well-formed (non-empty, no whitespace/control
  /// characters, no leading '#') without interning it. Callers that must
  /// intern several names atomically validate them all first.
  [[nodiscard]] static Status ValidateNodeName(std::string_view name);

  /// Returns the id for `name`, inserting it at the next dense id if unseen.
  /// Rejects malformed names (see ValidateNodeName) and overflow past the
  /// `NodeId` range.
  [[nodiscard]] Result<NodeId> Intern(std::string_view name);

  /// The id for `name`, or nullopt if it has never been interned.
  std::optional<NodeId> Find(std::string_view name) const;

  /// The name for a dense id. Bounds-checked.
  const std::string& Name(NodeId id) const {
    CAD_CHECK_LT(static_cast<size_t>(id), names_.size());
    return names_[id];
  }

  /// Number of interned names; dense ids are [0, size()).
  size_t size() const { return names_.size(); }

  bool empty() const { return names_.empty(); }

  /// All names in dense-id order.
  const std::vector<std::string>& names() const { return names_; }

  /// Rebuilds a vocabulary from a dense-id-ordered name list (checkpoint
  /// restore). Rejects malformed or duplicate names.
  [[nodiscard]] static Result<NodeVocabulary> FromNames(
      const std::vector<std::string>& names);

  bool operator==(const NodeVocabulary& other) const {
    return names_ == other.names_;
  }
  bool operator!=(const NodeVocabulary& other) const {
    return !(*this == other);
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> ids_;
};

/// \brief Renders a node id for human-facing output: the vocabulary name when
/// one covers `id`, otherwise the decimal id. Integer-id runs (no vocabulary)
/// therefore render exactly as before.
std::string NodeLabel(const NodeVocabulary* vocabulary, NodeId id);

}  // namespace cad

#endif  // CAD_GRAPH_NODE_VOCABULARY_H_
