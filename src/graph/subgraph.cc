#include "graph/subgraph.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace cad {

Subgraph InducedSubgraph(const WeightedGraph& graph,
                         std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (NodeId node : nodes) CAD_CHECK_LT(node, graph.num_nodes());

  Subgraph subgraph;
  subgraph.original_ids = nodes;
  subgraph.graph = WeightedGraph(nodes.size());
  for (size_t a = 0; a < nodes.size(); ++a) {
    for (size_t b = a + 1; b < nodes.size(); ++b) {
      const double weight = graph.EdgeWeight(nodes[a], nodes[b]);
      if (weight != 0.0) {
        CAD_CHECK_OK(subgraph.graph.SetEdge(static_cast<NodeId>(a),
                                            static_cast<NodeId>(b), weight));
      }
    }
  }
  return subgraph;
}

std::vector<NodeId> NeighborhoodNodes(const WeightedGraph& graph,
                                      NodeId center, size_t radius) {
  CAD_CHECK_LT(center, graph.num_nodes());
  const auto adjacency = graph.AdjacencyLists();
  std::vector<size_t> distance(graph.num_nodes(), SIZE_MAX);
  distance[center] = 0;
  std::queue<NodeId> frontier;
  frontier.push(center);
  std::vector<NodeId> result = {center};
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    if (distance[node] >= radius) continue;
    for (const auto& neighbor : adjacency[node]) {
      if (distance[neighbor.node] == SIZE_MAX) {
        distance[neighbor.node] = distance[node] + 1;
        result.push_back(neighbor.node);
        frontier.push(neighbor.node);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace cad
