#ifndef CAD_GRAPH_GRAPH_H_
#define CAD_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "linalg/sparse_matrix.h"

namespace cad {

/// \brief Node identifier. Nodes are dense integers [0, num_nodes).
using NodeId = uint32_t;

/// \brief An undirected weighted edge in canonical orientation (u < v).
struct Edge {
  NodeId u;
  NodeId v;
  double weight;

  bool operator==(const Edge& other) const {
    return u == other.u && v == other.v && weight == other.weight;
  }
};

/// \brief Canonical (u < v) pair identifying an undirected edge slot,
/// independent of weight. Used as a key into score maps.
struct NodePair {
  NodeId u;
  NodeId v;

  /// Normalizes the orientation so that u <= v.
  static NodePair Make(NodeId a, NodeId b) {
    return a <= b ? NodePair{a, b} : NodePair{b, a};
  }

  uint64_t Key() const { return (static_cast<uint64_t>(u) << 32) | v; }

  bool operator==(const NodePair& other) const {
    return u == other.u && v == other.v;
  }
  bool operator<(const NodePair& other) const { return Key() < other.Key(); }
};

/// \brief Undirected weighted graph on a fixed node set.
///
/// Matches the paper's framework (§2): the vertex set is fixed, edge weights
/// are non-negative, and "no edge" is represented by weight zero. Self-loops
/// are disallowed. The graph is mutable during construction; adjacency views
/// (CSR) are built on demand.
class WeightedGraph {
 public:
  /// Creates an edgeless graph on `num_nodes` nodes.
  explicit WeightedGraph(size_t num_nodes = 0) : num_nodes_(num_nodes) {}

  size_t num_nodes() const { return num_nodes_; }

  /// Grows the node set to `num_nodes`; new nodes are isolated. Shrinking is
  /// rejected (edges could dangle). Growing never touches existing edges, so
  /// volume and degrees of existing nodes are unchanged.
  [[nodiscard]] Status GrowTo(size_t num_nodes);

  /// Number of edges with nonzero weight.
  size_t num_edges() const { return weights_.size(); }

  /// Sets the weight of edge {u, v}. Weight 0 deletes the edge. Returns
  /// InvalidArgument for self-loops, negative weights, or out-of-range ids.
  [[nodiscard]] Status SetEdge(NodeId u, NodeId v, double weight);

  /// Adds `delta` to the weight of edge {u, v}; the result must stay >= 0.
  [[nodiscard]] Status AddEdgeWeight(NodeId u, NodeId v, double delta);

  /// Weight of edge {u, v}; 0 if absent. Self-queries return 0.
  double EdgeWeight(NodeId u, NodeId v) const;

  /// True if {u, v} has nonzero weight.
  bool HasEdge(NodeId u, NodeId v) const { return EdgeWeight(u, v) != 0.0; }

  /// All edges in canonical orientation, sorted by (u, v).
  std::vector<Edge> Edges() const;

  /// Weighted degree (sum of incident edge weights) of every node.
  std::vector<double> WeightedDegrees() const;

  /// Unweighted degree (neighbor count) of every node.
  std::vector<size_t> Degrees() const;

  /// Graph volume V_G = sum of weighted degrees = 2 * total edge weight.
  double Volume() const;

  /// Symmetric adjacency matrix in CSR form.
  CsrMatrix ToAdjacencyCsr() const;

  /// Combinatorial Laplacian L = D - A in CSR form, with `regularization`
  /// added to every diagonal entry. A small positive regularization makes L
  /// strictly positive definite, which the commute-time engines use to handle
  /// disconnected snapshots (see DESIGN.md).
  CsrMatrix ToLaplacianCsr(double regularization = 0.0) const;

  /// Dense adjacency matrix; small graphs only.
  DenseMatrix ToAdjacencyDense() const;

  /// Dense Laplacian; small graphs only.
  DenseMatrix ToLaplacianDense(double regularization = 0.0) const;

  /// Sorted neighbor lists (adjacency view shared by BFS/Dijkstra).
  struct Neighbor {
    NodeId node;
    double weight;
  };
  std::vector<std::vector<Neighbor>> AdjacencyLists() const;

  /// Summary string: "WeightedGraph(n=…, m=…, volume=…)".
  std::string ToString() const;

  bool operator==(const WeightedGraph& other) const;

 private:
  size_t num_nodes_;
  // Keyed by NodePair::Key() with u < v; values are strictly positive.
  std::unordered_map<uint64_t, double> weights_;
};

}  // namespace cad

#endif  // CAD_GRAPH_GRAPH_H_
