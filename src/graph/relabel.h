#ifndef CAD_GRAPH_RELABEL_H_
#define CAD_GRAPH_RELABEL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "linalg/sparse_matrix.h"

namespace cad {

/// \brief A node permutation with its inverse.
///
/// `new_id[i]` is the solver-space position of original node i, and
/// `old_id[p]` is the original node stored at solver-space position p
/// (old_id[new_id[i]] == i). The permutation is a *private memory layout*
/// of the solver: everything observable — right-hand sides, embeddings,
/// scores, reports — is stated in original ids, and the contract is that a
/// relabeled solve replays the exact floating-point operation sequence of
/// the unrelabeled solve (see PermuteCsrRows and
/// CgSolveContext::reduction_order), so results are bit-identical, not
/// merely close.
struct Relabeling {
  std::vector<uint32_t> new_id;
  std::vector<uint32_t> old_id;

  size_t size() const { return new_id.size(); }

  bool IsIdentity() const {
    for (size_t i = 0; i < new_id.size(); ++i) {
      if (new_id[i] != i) return false;
    }
    return true;
  }
};

/// \brief Degree-descending relabeling: position 0 gets the highest-degree
/// node (unweighted degree; ties broken by ascending original id, so the
/// permutation is deterministic). On power-law graphs this packs the hub
/// rows — the ones nearly every SpMM gather touches — into a contiguous
/// cache-resident prefix of the solution block.
Relabeling DegreeOrderRelabeling(const WeightedGraph& graph);

/// \brief Applies `relabeling` to both axes of a square CSR matrix while
/// preserving each row's *stored entry order* (new row new_id[i] holds
/// original row i's entries, in original storage order, with columns mapped
/// through new_id).
///
/// Preserving stored order is the whole point: a CSR row sweep accumulates
/// in storage order, so the permuted matrix reproduces every per-row
/// partial-sum sequence of the original bit for bit. The price is that the
/// permuted matrix's rows are no longer column-sorted; it is constructed
/// with CsrMatrix's unsorted-rows tag and only valid for kernels documented
/// to work in stored order (Multiply*, Diagonal). Requires a square matrix
/// matching the relabeling's size.
CsrMatrix PermuteCsrRows(const CsrMatrix& matrix,
                         const Relabeling& relabeling);

}  // namespace cad

#endif  // CAD_GRAPH_RELABEL_H_
