#ifndef CAD_GRAPH_TEMPORAL_STATS_H_
#define CAD_GRAPH_TEMPORAL_STATS_H_

#include <iosfwd>
#include <vector>

#include "graph/temporal_graph.h"

namespace cad {

/// \brief Structural summary of one snapshot.
struct SnapshotStats {
  size_t num_edges = 0;
  double volume = 0.0;
  double mean_weight = 0.0;
  size_t num_components = 0;
  size_t largest_component = 0;
  size_t isolated_nodes = 0;
};

/// \brief Change summary of one transition t -> t+1.
struct TransitionStats {
  /// Edges present at t+1 but not at t.
  size_t edges_added = 0;
  /// Edges present at t but not at t+1.
  size_t edges_removed = 0;
  /// Edges present in both with a different weight.
  size_t edges_reweighted = 0;
  /// Sum of |dA| over the union support.
  double weight_change_l1 = 0.0;
  /// |E_t intersect E_{t+1}| / |E_t union E_{t+1}| (1 for identical
  /// supports; 1 for two empty snapshots by convention).
  double support_jaccard = 1.0;
};

/// \brief Dataset profile: per-snapshot structure and per-transition churn.
///
/// Intended as the first thing an analyst runs on a new temporal dataset
/// (cad_cli --profile): it answers "how sparse, how connected, how volatile"
/// before any anomaly scoring, and its churn numbers give context for
/// interpreting CAD's anomaly rate.
struct TemporalProfile {
  std::vector<SnapshotStats> snapshots;
  std::vector<TransitionStats> transitions;
};

/// Computes the profile (O(sum of snapshot sizes)).
TemporalProfile ProfileSequence(const TemporalGraphSequence& sequence);

/// Renders the profile as two fixed-width text tables.
void PrintTemporalProfile(const TemporalProfile& profile, std::ostream* out);

}  // namespace cad

#endif  // CAD_GRAPH_TEMPORAL_STATS_H_
