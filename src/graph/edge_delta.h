#ifndef CAD_GRAPH_EDGE_DELTA_H_
#define CAD_GRAPH_EDGE_DELTA_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace cad {

/// \brief One edge whose weight differs between two snapshots. Endpoints are
/// canonical (u < v); a weight of zero on either side encodes insertion
/// (weight_before == 0) or deletion (weight_after == 0).
struct ChangedEdge {
  NodeId u = 0;
  NodeId v = 0;
  double weight_before = 0.0;
  double weight_after = 0.0;

  /// Signed weight delta w' - w; never zero for a ChangedEdge produced by
  /// DiffSnapshots.
  double delta() const { return weight_after - weight_before; }
};

/// \brief The rank-k difference between two consecutive snapshots, viewed as
/// a Laplacian update
///
///   L_after = L_before + B W B^T,
///
/// where column j of B is the signed incidence vector e_{u_j} - e_{v_j} of
/// changed edge j and W = diag(delta_j) holds the signed weight deltas. This
/// is the input to the incremental maintenance paths (exact Woodbury update
/// and churn-scoped approximate re-solves; DESIGN.md §12).
struct EdgeDelta {
  /// Changed edges in canonical (u, v) order — the same order Edges()
  /// streams them, which keeps downstream updates deterministic.
  std::vector<ChangedEdge> changes;
  /// Edge counts of the two snapshots, for churn accounting.
  size_t edges_before = 0;
  size_t edges_after = 0;

  /// The rank of the Laplacian update.
  size_t rank() const { return changes.size(); }

  /// Fraction of the (larger) edge set touched by this delta, the quantity
  /// compared against the incremental churn threshold. 0 for two empty
  /// snapshots.
  double ChurnRatio() const;
};

/// \brief Diffs two snapshots into the rank-k Laplacian update that maps
/// `before` to `after`.
///
/// Runs one merge pass over the two canonical edge lists, O(m log m) from
/// the Edges() sorts. The snapshots may have different node counts (edges
/// incident to nodes beyond the smaller snapshot simply appear as
/// insertions/deletions); callers that need matching dimensions — the
/// Woodbury path does — must check num_nodes themselves.
EdgeDelta DiffSnapshots(const WeightedGraph& before,
                        const WeightedGraph& after);

}  // namespace cad

#endif  // CAD_GRAPH_EDGE_DELTA_H_
