#include "graph/shortest_paths.h"

#include <queue>
#include <utility>

#include "common/check.h"

namespace cad {

std::vector<double> DijkstraDistances(
    const std::vector<std::vector<WeightedGraph::Neighbor>>& adjacency,
    NodeId source, EdgeLengthMode mode) {
  const size_t n = adjacency.size();
  CAD_CHECK_LT(source, n);
  std::vector<double> dist(n, kInfiniteDistance);
  dist[source] = 0.0;

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;  // stale entry
    for (const auto& neighbor : adjacency[node]) {
      const double length = mode == EdgeLengthMode::kUnit
                                ? 1.0
                                : 1.0 / neighbor.weight;
      const double candidate = d + length;
      if (candidate < dist[neighbor.node]) {
        dist[neighbor.node] = candidate;
        heap.emplace(candidate, neighbor.node);
      }
    }
  }
  return dist;
}

std::vector<double> DijkstraDistances(const WeightedGraph& graph,
                                      NodeId source, EdgeLengthMode mode) {
  return DijkstraDistances(graph.AdjacencyLists(), source, mode);
}

}  // namespace cad
