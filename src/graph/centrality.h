#ifndef CAD_GRAPH_CENTRALITY_H_
#define CAD_GRAPH_CENTRALITY_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/shortest_paths.h"

namespace cad {

/// \brief Options for closeness centrality.
struct ClosenessOptions {
  EdgeLengthMode length_mode = EdgeLengthMode::kInverseWeight;
  /// Number of pivot sources for the sampled estimator; 0 means exact
  /// (one Dijkstra per node).
  size_t num_samples = 0;
  /// Seed for pivot selection in the sampled estimator.
  uint64_t seed = 42;
};

/// \brief Closeness centrality of every node.
///
/// Uses the Wasserman–Faust formulation, which is well defined on
/// disconnected graphs:
///
///   cc(i) = ((r_i - 1) / (n - 1)) * ((r_i - 1) / sum_{j reachable} d(i, j))
///
/// where r_i is the number of nodes reachable from i (including i). Isolated
/// nodes get centrality 0.
///
/// With `num_samples > 0` the distance sums are estimated from Dijkstra runs
/// out of `num_samples` uniformly sampled pivots (the Eppstein–Wang
/// estimator); this is the CLC baseline configuration used for large graphs
/// in the scalability study (§4.1.3).
std::vector<double> ClosenessCentrality(
    const WeightedGraph& graph, const ClosenessOptions& options = {});

/// \brief Options for betweenness centrality.
struct BetweennessOptions {
  EdgeLengthMode length_mode = EdgeLengthMode::kInverseWeight;
  /// Number of source pivots for the Brandes-Pich approximation; 0 means
  /// exact (one accumulation pass per node).
  size_t num_samples = 0;
  /// Seed for pivot selection.
  uint64_t seed = 42;
  /// Scale scores by 2 / ((n-1)(n-2)) so they are comparable across sizes.
  bool normalized = true;
};

/// \brief (Approximate) shortest-path betweenness centrality via Brandes'
/// dependency-accumulation algorithm on weighted graphs.
///
/// Exact cost is O(n (m + n) log n); with `num_samples` pivots the cost
/// drops proportionally and scores are rescaled to estimate the exact
/// values (Brandes & Pich). Complements closeness as a "commonplace node
/// centrality measure" (paper §4) for downstream analyses; CAD itself does
/// not use it.
std::vector<double> BetweennessCentrality(
    const WeightedGraph& graph, const BetweennessOptions& options = {});

}  // namespace cad

#endif  // CAD_GRAPH_CENTRALITY_H_
