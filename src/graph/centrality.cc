#include "graph/centrality.h"

#include <cmath>
#include <queue>
#include <utility>

#include "common/check.h"

namespace cad {

namespace {

std::vector<double> ExactCloseness(const WeightedGraph& graph,
                                   EdgeLengthMode mode) {
  const size_t n = graph.num_nodes();
  std::vector<double> centrality(n, 0.0);
  if (n <= 1) return centrality;
  const auto adjacency = graph.AdjacencyLists();
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> dist =
        DijkstraDistances(adjacency, static_cast<NodeId>(i), mode);
    double sum = 0.0;
    size_t reachable = 0;  // excludes i itself
    for (size_t j = 0; j < n; ++j) {
      if (j == i || dist[j] == kInfiniteDistance) continue;
      sum += dist[j];
      ++reachable;
    }
    if (reachable == 0 || sum == 0.0) continue;
    const double r = static_cast<double>(reachable);
    // Wasserman-Faust: scale by the reachable fraction so that nodes in tiny
    // components do not look spuriously central.
    centrality[i] = (r / static_cast<double>(n - 1)) * (r / sum);
  }
  return centrality;
}

std::vector<double> SampledCloseness(const WeightedGraph& graph,
                                     const ClosenessOptions& options) {
  const size_t n = graph.num_nodes();
  std::vector<double> centrality(n, 0.0);
  if (n <= 1) return centrality;
  const size_t s = std::min(options.num_samples, n);
  Rng rng(options.seed);
  const std::vector<size_t> pivots = rng.SampleWithoutReplacement(n, s);

  const auto adjacency = graph.AdjacencyLists();
  std::vector<double> finite_sum(n, 0.0);
  std::vector<size_t> finite_count(n, 0);
  for (size_t pivot : pivots) {
    const std::vector<double> dist = DijkstraDistances(
        adjacency, static_cast<NodeId>(pivot), options.length_mode);
    for (size_t j = 0; j < n; ++j) {
      if (dist[j] == kInfiniteDistance) continue;
      finite_sum[j] += dist[j];
      ++finite_count[j];
    }
  }

  // Eppstein-Wang style estimator: mean distance to reachable nodes from the
  // pivot sample, reachable-set size extrapolated from the finite fraction.
  for (size_t i = 0; i < n; ++i) {
    if (finite_count[i] == 0) continue;
    const double mean_dist =
        finite_sum[i] / static_cast<double>(finite_count[i]);
    const double reachable = static_cast<double>(n) *
                             static_cast<double>(finite_count[i]) /
                             static_cast<double>(s);
    if (mean_dist <= 0.0 || reachable <= 1.0) continue;
    centrality[i] = (reachable - 1.0) /
                    (static_cast<double>(n - 1) * mean_dist);
  }
  return centrality;
}

/// One Brandes accumulation pass from `source`: Dijkstra with shortest-path
/// counts, then dependency back-propagation in order of decreasing distance.
void BrandesAccumulate(
    const std::vector<std::vector<WeightedGraph::Neighbor>>& adjacency,
    NodeId source, EdgeLengthMode mode, std::vector<double>* centrality) {
  const size_t n = adjacency.size();
  std::vector<double> dist(n, kInfiniteDistance);
  std::vector<double> sigma(n, 0.0);       // shortest-path counts
  std::vector<double> dependency(n, 0.0);  // accumulated dependencies
  std::vector<std::vector<NodeId>> predecessors(n);

  dist[source] = 0.0;
  sigma[source] = 1.0;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.emplace(0.0, source);
  std::vector<NodeId> settled_order;
  std::vector<bool> settled(n, false);

  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (settled[node]) continue;
    settled[node] = true;
    settled_order.push_back(node);
    for (const auto& neighbor : adjacency[node]) {
      const double length =
          mode == EdgeLengthMode::kUnit ? 1.0 : 1.0 / neighbor.weight;
      const double candidate = d + length;
      if (candidate < dist[neighbor.node] - 1e-15) {
        dist[neighbor.node] = candidate;
        sigma[neighbor.node] = sigma[node];
        predecessors[neighbor.node].assign(1, node);
        heap.emplace(candidate, neighbor.node);
      } else if (std::fabs(candidate - dist[neighbor.node]) <= 1e-15 &&
                 !settled[neighbor.node]) {
        sigma[neighbor.node] += sigma[node];
        predecessors[neighbor.node].push_back(node);
      }
    }
  }

  // Back-propagate dependencies in reverse settle order.
  for (auto it = settled_order.rbegin(); it != settled_order.rend(); ++it) {
    const NodeId w = *it;
    for (NodeId pred : predecessors[w]) {
      dependency[pred] +=
          sigma[pred] / sigma[w] * (1.0 + dependency[w]);
    }
    if (w != source) (*centrality)[w] += dependency[w];
  }
}

}  // namespace

std::vector<double> ClosenessCentrality(const WeightedGraph& graph,
                                        const ClosenessOptions& options) {
  if (options.num_samples == 0 || options.num_samples >= graph.num_nodes()) {
    return ExactCloseness(graph, options.length_mode);
  }
  return SampledCloseness(graph, options);
}

std::vector<double> BetweennessCentrality(const WeightedGraph& graph,
                                          const BetweennessOptions& options) {
  const size_t n = graph.num_nodes();
  std::vector<double> centrality(n, 0.0);
  if (n < 3) return centrality;
  const auto adjacency = graph.AdjacencyLists();

  std::vector<size_t> sources;
  if (options.num_samples == 0 || options.num_samples >= n) {
    sources.resize(n);
    for (size_t i = 0; i < n; ++i) sources[i] = i;
  } else {
    Rng rng(options.seed);
    sources = rng.SampleWithoutReplacement(n, options.num_samples);
  }
  for (size_t source : sources) {
    BrandesAccumulate(adjacency, static_cast<NodeId>(source),
                      options.length_mode, &centrality);
  }

  // Undirected graphs double-count each pair; Brandes-Pich extrapolation
  // rescales sampled runs to estimate the full sum.
  double scale = 0.5 * static_cast<double>(n) /
                 static_cast<double>(sources.size());
  if (options.normalized) {
    scale *= 2.0 / (static_cast<double>(n - 1) * static_cast<double>(n - 2));
  }
  for (double& value : centrality) value *= scale;
  return centrality;
}

}  // namespace cad
