#include "graph/node_vocabulary.h"

#include <cstdint>
#include <limits>

namespace cad {

Status NodeVocabulary::ValidateNodeName(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("node name must be non-empty");
  }
  if (name.front() == '#') {
    return Status::InvalidArgument("node name \"" + std::string(name) +
                                   "\" must not start with '#'");
  }
  for (const char c : name) {
    const auto byte = static_cast<unsigned char>(c);
    if (byte <= 0x20 || byte == 0x7f) {
      return Status::InvalidArgument(
          "node name \"" + std::string(name) +
          "\" contains whitespace or control characters");
    }
  }
  return Status::OK();
}

Result<NodeId> NodeVocabulary::Intern(std::string_view name) {
  CAD_RETURN_NOT_OK(ValidateNodeName(name));
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  if (names_.size() > std::numeric_limits<NodeId>::max()) {
    return Status::InvalidArgument("node vocabulary exceeds the NodeId range");
  }
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<NodeId> NodeVocabulary::Find(std::string_view name) const {
  const auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

Result<NodeVocabulary> NodeVocabulary::FromNames(
    const std::vector<std::string>& names) {
  NodeVocabulary vocabulary;
  for (size_t i = 0; i < names.size(); ++i) {
    Result<NodeId> id = vocabulary.Intern(names[i]);
    if (!id.ok()) return id.status();
    if (*id != i) {
      return Status::InvalidArgument("duplicate node name \"" + names[i] +
                                     "\" at position " + std::to_string(i));
    }
  }
  return vocabulary;
}

std::string NodeLabel(const NodeVocabulary* vocabulary, NodeId id) {
  if (vocabulary != nullptr && static_cast<size_t>(id) < vocabulary->size()) {
    return vocabulary->Name(id);
  }
  return std::to_string(id);
}

}  // namespace cad
