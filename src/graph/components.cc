#include "graph/components.h"

#include <queue>

namespace cad {

ComponentLabeling ConnectedComponents(const WeightedGraph& graph) {
  const size_t n = graph.num_nodes();
  constexpr uint32_t kUnassigned = 0xffffffffu;
  ComponentLabeling labeling;
  labeling.component.assign(n, kUnassigned);

  const auto adjacency = graph.AdjacencyLists();
  std::queue<NodeId> frontier;
  for (size_t start = 0; start < n; ++start) {
    if (labeling.component[start] != kUnassigned) continue;
    const auto id = static_cast<uint32_t>(labeling.num_components++);
    labeling.sizes.push_back(0);
    labeling.component[start] = id;
    frontier.push(static_cast<NodeId>(start));
    while (!frontier.empty()) {
      const NodeId node = frontier.front();
      frontier.pop();
      ++labeling.sizes[id];
      for (const auto& neighbor : adjacency[node]) {
        if (labeling.component[neighbor.node] == kUnassigned) {
          labeling.component[neighbor.node] = id;
          frontier.push(neighbor.node);
        }
      }
    }
  }
  return labeling;
}

bool IsConnected(const WeightedGraph& graph) {
  if (graph.num_nodes() == 0) return true;
  return ConnectedComponents(graph).num_components == 1;
}

}  // namespace cad
