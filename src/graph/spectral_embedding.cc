#include "graph/spectral_embedding.h"

#include <cmath>

#include "linalg/jacobi_eigen.h"
#include "linalg/lanczos.h"

namespace cad {

namespace {

/// Flips column `col` of `m` so its largest-magnitude entry is positive.
void CanonicalizeSign(DenseMatrix* m, size_t col) {
  double best = 0.0;
  for (size_t i = 0; i < m->rows(); ++i) {
    if (std::fabs((*m)(i, col)) > std::fabs(best)) best = (*m)(i, col);
  }
  if (best < 0.0) {
    for (size_t i = 0; i < m->rows(); ++i) (*m)(i, col) = -(*m)(i, col);
  }
}

}  // namespace

Result<SpectralEmbedding> ComputeSpectralEmbedding(
    const WeightedGraph& graph, const SpectralEmbeddingOptions& options) {
  const size_t n = graph.num_nodes();
  if (options.dimension == 0) {
    return Status::InvalidArgument("embedding dimension must be positive");
  }
  if (n < options.dimension + 1) {
    return Status::InvalidArgument(
        "graph too small for a " + std::to_string(options.dimension) +
        "-dimensional spectral embedding");
  }
  const size_t want = options.dimension + 1;  // +1 for the constant vector

  SpectralEmbedding embedding;
  embedding.coordinates = DenseMatrix(n, options.dimension);
  embedding.eigenvalues.resize(options.dimension);

  if (n <= options.dense_limit) {
    EigenDecomposition eig;
    CAD_ASSIGN_OR_RETURN(eig,
                         JacobiEigenDecomposition(graph.ToLaplacianDense()));
    for (size_t d = 0; d < options.dimension; ++d) {
      embedding.eigenvalues[d] = eig.eigenvalues[d + 1];
      for (size_t i = 0; i < n; ++i) {
        embedding.coordinates(i, d) = eig.eigenvectors(i, d + 1);
      }
      CanonicalizeSign(&embedding.coordinates, d);
    }
    return embedding;
  }

  LanczosOptions lanczos;
  lanczos.num_eigenpairs = want;
  lanczos.seed = options.seed;
  LanczosResult result;
  CAD_ASSIGN_OR_RETURN(result,
                       SmallestEigenpairs(graph.ToLaplacianCsr(), lanczos));
  for (size_t d = 0; d < options.dimension; ++d) {
    embedding.eigenvalues[d] = result.eigenvalues[d + 1];
    for (size_t i = 0; i < n; ++i) {
      embedding.coordinates(i, d) = result.eigenvectors(i, d + 1);
    }
    CanonicalizeSign(&embedding.coordinates, d);
  }
  return embedding;
}

}  // namespace cad
