#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cad {

namespace {

Status ValidateEndpoints(NodeId u, NodeId v, size_t num_nodes) {
  if (u == v) {
    return Status::InvalidArgument("self-loops are not allowed (node " +
                                   std::to_string(u) + ")");
  }
  if (u >= num_nodes || v >= num_nodes) {
    return Status::OutOfRange("edge endpoint out of range: {" +
                              std::to_string(u) + ", " + std::to_string(v) +
                              "} with n=" + std::to_string(num_nodes));
  }
  return Status::OK();
}

}  // namespace

Status WeightedGraph::GrowTo(size_t num_nodes) {
  if (num_nodes < num_nodes_) {
    return Status::InvalidArgument(
        "GrowTo cannot shrink the node set: " + std::to_string(num_nodes) +
        " < " + std::to_string(num_nodes_));
  }
  num_nodes_ = num_nodes;
  return Status::OK();
}

Status WeightedGraph::SetEdge(NodeId u, NodeId v, double weight) {
  CAD_RETURN_NOT_OK(ValidateEndpoints(u, v, num_nodes_));
  if (weight < 0.0 || !std::isfinite(weight)) {
    return Status::InvalidArgument("edge weight must be finite and >= 0, got " +
                                   std::to_string(weight));
  }
  const uint64_t key = NodePair::Make(u, v).Key();
  if (weight == 0.0) {
    weights_.erase(key);
  } else {
    weights_[key] = weight;
  }
  return Status::OK();
}

Status WeightedGraph::AddEdgeWeight(NodeId u, NodeId v, double delta) {
  CAD_RETURN_NOT_OK(ValidateEndpoints(u, v, num_nodes_));
  const double next = EdgeWeight(u, v) + delta;
  if (next < 0.0) {
    return Status::InvalidArgument(
        "AddEdgeWeight would make weight negative: " + std::to_string(next));
  }
  return SetEdge(u, v, next);
}

double WeightedGraph::EdgeWeight(NodeId u, NodeId v) const {
  if (u == v || u >= num_nodes_ || v >= num_nodes_) return 0.0;
  const auto it = weights_.find(NodePair::Make(u, v).Key());
  return it == weights_.end() ? 0.0 : it->second;
}

std::vector<Edge> WeightedGraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(weights_.size());
  for (const auto& [key, weight] : weights_) {
    edges.push_back(Edge{static_cast<NodeId>(key >> 32),
                         static_cast<NodeId>(key & 0xffffffffULL), weight});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return edges;
}

std::vector<double> WeightedGraph::WeightedDegrees() const {
  std::vector<double> degrees(num_nodes_, 0.0);
  for (const auto& [key, weight] : weights_) {
    degrees[key >> 32] += weight;
    degrees[key & 0xffffffffULL] += weight;
  }
  return degrees;
}

std::vector<size_t> WeightedGraph::Degrees() const {
  std::vector<size_t> degrees(num_nodes_, 0);
  for (const auto& [key, weight] : weights_) {
    (void)weight;
    ++degrees[key >> 32];
    ++degrees[key & 0xffffffffULL];
  }
  return degrees;
}

double WeightedGraph::Volume() const {
  double total = 0.0;
  for (const auto& [key, weight] : weights_) {
    (void)key;
    total += weight;
  }
  return 2.0 * total;
}

CsrMatrix WeightedGraph::ToAdjacencyCsr() const {
  CooMatrix coo(num_nodes_, num_nodes_);
  coo.Reserve(2 * weights_.size());
  for (const auto& [key, weight] : weights_) {
    const auto u = static_cast<uint32_t>(key >> 32);
    const auto v = static_cast<uint32_t>(key & 0xffffffffULL);
    coo.AddSymmetric(u, v, weight);
  }
  return coo.ToCsr();
}

CsrMatrix WeightedGraph::ToLaplacianCsr(double regularization) const {
  const std::vector<double> degrees = WeightedDegrees();
  CooMatrix coo(num_nodes_, num_nodes_);
  coo.Reserve(2 * weights_.size() + num_nodes_);
  for (const auto& [key, weight] : weights_) {
    const auto u = static_cast<uint32_t>(key >> 32);
    const auto v = static_cast<uint32_t>(key & 0xffffffffULL);
    coo.AddSymmetric(u, v, -weight);
  }
  for (size_t i = 0; i < num_nodes_; ++i) {
    coo.Add(static_cast<uint32_t>(i), static_cast<uint32_t>(i),
            degrees[i] + regularization);
  }
  return coo.ToCsr();
}

DenseMatrix WeightedGraph::ToAdjacencyDense() const {
  DenseMatrix a(num_nodes_, num_nodes_);
  for (const auto& [key, weight] : weights_) {
    const size_t u = key >> 32;
    const size_t v = key & 0xffffffffULL;
    a(u, v) = weight;
    a(v, u) = weight;
  }
  return a;
}

DenseMatrix WeightedGraph::ToLaplacianDense(double regularization) const {
  DenseMatrix l(num_nodes_, num_nodes_);
  const std::vector<double> degrees = WeightedDegrees();
  for (const auto& [key, weight] : weights_) {
    const size_t u = key >> 32;
    const size_t v = key & 0xffffffffULL;
    l(u, v) = -weight;
    l(v, u) = -weight;
  }
  for (size_t i = 0; i < num_nodes_; ++i) {
    l(i, i) = degrees[i] + regularization;
  }
  return l;
}

std::vector<std::vector<WeightedGraph::Neighbor>>
WeightedGraph::AdjacencyLists() const {
  std::vector<std::vector<Neighbor>> lists(num_nodes_);
  for (const auto& [key, weight] : weights_) {
    const auto u = static_cast<NodeId>(key >> 32);
    const auto v = static_cast<NodeId>(key & 0xffffffffULL);
    lists[u].push_back(Neighbor{v, weight});
    lists[v].push_back(Neighbor{u, weight});
  }
  for (auto& list : lists) {
    std::sort(list.begin(), list.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.node < b.node;
              });
  }
  return lists;
}

std::string WeightedGraph::ToString() const {
  std::ostringstream os;
  os << "WeightedGraph(n=" << num_nodes_ << ", m=" << num_edges()
     << ", volume=" << Volume() << ")";
  return os.str();
}

bool WeightedGraph::operator==(const WeightedGraph& other) const {
  return num_nodes_ == other.num_nodes_ && weights_ == other.weights_;
}

}  // namespace cad
