#ifndef CAD_GRAPH_SHORTEST_PATHS_H_
#define CAD_GRAPH_SHORTEST_PATHS_H_

#include <limits>
#include <vector>

#include "graph/graph.h"

namespace cad {

/// \brief How an edge weight is converted into a traversal length for
/// shortest-path computations.
enum class EdgeLengthMode {
  /// Every edge has length 1 (hop distance).
  kUnit,
  /// Length = 1 / weight: strong ties are short. This is the convention used
  /// for closeness centrality over communication-volume graphs, where a
  /// higher weight means a closer relationship.
  kInverseWeight,
};

/// Sentinel distance for unreachable nodes.
inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

/// \brief Single-source shortest path distances via Dijkstra's algorithm
/// (binary-heap implementation, O((n + m) log n)).
///
/// `adjacency` must come from WeightedGraph::AdjacencyLists(); passing it in
/// lets callers amortize the adjacency build across many sources.
std::vector<double> DijkstraDistances(
    const std::vector<std::vector<WeightedGraph::Neighbor>>& adjacency,
    NodeId source, EdgeLengthMode mode);

/// Convenience overload building the adjacency view internally.
std::vector<double> DijkstraDistances(const WeightedGraph& graph,
                                      NodeId source, EdgeLengthMode mode);

}  // namespace cad

#endif  // CAD_GRAPH_SHORTEST_PATHS_H_
