#ifndef CAD_GRAPH_SPECTRAL_EMBEDDING_H_
#define CAD_GRAPH_SPECTRAL_EMBEDDING_H_

#include <cstddef>

#include "common/result.h"
#include "graph/graph.h"
#include "linalg/dense_matrix.h"

namespace cad {

/// \brief Options for Laplacian eigenmap embeddings.
struct SpectralEmbeddingOptions {
  /// Number of embedding coordinates (eigenvectors beyond the trivial
  /// constant one). The paper's Fig. 2 uses 2: the Fiedler vector and the
  /// third-smallest eigenvector.
  size_t dimension = 2;
  /// Node count threshold below which the dense Jacobi eigensolver is used;
  /// larger graphs use sparse Lanczos.
  size_t dense_limit = 300;
  /// Seed for the Lanczos start vector (large-graph path).
  uint64_t seed = 5;
};

/// \brief A spectral (Laplacian eigenmap) embedding of a graph.
struct SpectralEmbedding {
  /// n x d matrix; row i holds node i's coordinates. Column j corresponds
  /// to the (j+2)-th smallest Laplacian eigenvector (the constant
  /// eigenvector is skipped).
  DenseMatrix coordinates;
  /// The corresponding Laplacian eigenvalues, ascending.
  std::vector<double> eigenvalues;
};

/// \brief Computes the Laplacian eigenmap embedding of `graph` (paper §3.5,
/// Fig. 2): nodes are mapped to the eigenvectors of L = D - A with the
/// smallest nonzero eigenvalues. Commute-time distance is (up to scaling)
/// Euclidean distance in the full such embedding, so low-dimensional
/// projections visualize the structure CAD scores against.
///
/// Sign convention: each eigenvector is flipped so that its largest-magnitude
/// entry is positive, making embeddings comparable across snapshots.
[[nodiscard]] Result<SpectralEmbedding> ComputeSpectralEmbedding(
    const WeightedGraph& graph,
    const SpectralEmbeddingOptions& options = SpectralEmbeddingOptions());

}  // namespace cad

#endif  // CAD_GRAPH_SPECTRAL_EMBEDDING_H_
