#ifndef CAD_GRAPH_TEMPORAL_GRAPH_H_
#define CAD_GRAPH_TEMPORAL_GRAPH_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/node_vocabulary.h"

namespace cad {

/// \brief A temporal sequence of graph snapshots G_1, ..., G_T over a fixed
/// node set (paper §2).
///
/// Snapshots are indexed from 0; "transition t" refers to the change from
/// snapshot t to snapshot t+1, so a sequence of T snapshots has T-1
/// transitions.
class TemporalGraphSequence {
 public:
  /// Creates an empty sequence over `num_nodes` nodes.
  explicit TemporalGraphSequence(size_t num_nodes = 0)
      : num_nodes_(num_nodes) {}

  size_t num_nodes() const { return num_nodes_; }

  /// Number of snapshots T.
  size_t num_snapshots() const { return snapshots_.size(); }

  /// Number of transitions (T-1, or 0 for fewer than two snapshots).
  size_t num_transitions() const {
    return snapshots_.size() < 2 ? 0 : snapshots_.size() - 1;
  }

  /// Appends a snapshot. Its node count must match the sequence's.
  [[nodiscard]] Status Append(WeightedGraph snapshot);

  /// Appends a snapshot, growing whichever side is smaller: a larger snapshot
  /// grows the sequence (earlier snapshots gain isolated nodes), a smaller
  /// snapshot is grown to the sequence's node count. This is the ingestion
  /// path for discovered node sets (DESIGN.md §8); `Append` stays strict so
  /// fixed-size pipelines keep their node-count invariant.
  [[nodiscard]] Status AppendGrowing(WeightedGraph snapshot);

  /// Grows the node set to `num_nodes`, including every existing snapshot;
  /// the new nodes are isolated everywhere. Shrinking is rejected.
  [[nodiscard]] Status GrowTo(size_t num_nodes);

  /// Attaches a string-id vocabulary covering the node set exactly
  /// (vocabulary size must equal num_nodes()). Purely a relabeling layer:
  /// detectors and solvers never look at it.
  [[nodiscard]] Status SetVocabulary(NodeVocabulary vocabulary);

  /// The attached vocabulary, or nullptr for integer-id sequences.
  const NodeVocabulary* vocabulary() const {
    return vocabulary_.has_value() ? &*vocabulary_ : nullptr;
  }

  void ClearVocabulary() { vocabulary_.reset(); }

  /// Snapshot at time t (0-based). Bounds-checked.
  const WeightedGraph& Snapshot(size_t t) const {
    CAD_CHECK_LT(t, snapshots_.size());
    return snapshots_[t];
  }

  WeightedGraph& MutableSnapshot(size_t t) {
    CAD_CHECK_LT(t, snapshots_.size());
    return snapshots_[t];
  }

  const std::vector<WeightedGraph>& snapshots() const { return snapshots_; }

  /// Average number of nonzero-weight edges per snapshot (the paper's `m`).
  double AverageEdgesPerSnapshot() const;

  /// Union of the edge supports of snapshots t and t+1, i.e. every node pair
  /// whose weight is nonzero in either snapshot. These are the only pairs
  /// whose CAD score can be nonzero.
  std::vector<NodePair> TransitionSupport(size_t t) const;

  /// \brief Snapshot-consistency validation for CAD_DCHECK_OK at detector
  /// and pipeline entry points: every snapshot shares the sequence's node
  /// count and every edge has a finite, positive weight with in-range,
  /// canonically ordered endpoints. O(sum of snapshot edge counts).
  [[nodiscard]] Status CheckConsistent() const;

 private:
  size_t num_nodes_;
  std::vector<WeightedGraph> snapshots_;
  std::optional<NodeVocabulary> vocabulary_;
};

}  // namespace cad

#endif  // CAD_GRAPH_TEMPORAL_GRAPH_H_
