#include "graph/edge_delta.h"

#include <algorithm>

namespace cad {

double EdgeDelta::ChurnRatio() const {
  const size_t denom = std::max(edges_before, edges_after);
  if (denom == 0) return changes.empty() ? 0.0 : 1.0;
  return static_cast<double>(changes.size()) / static_cast<double>(denom);
}

EdgeDelta DiffSnapshots(const WeightedGraph& before,
                        const WeightedGraph& after) {
  const std::vector<Edge> old_edges = before.Edges();
  const std::vector<Edge> new_edges = after.Edges();
  EdgeDelta delta;
  delta.edges_before = old_edges.size();
  delta.edges_after = new_edges.size();

  // Both lists are sorted by canonical (u, v), so a single merge pass finds
  // every insertion, deletion, and weight change.
  size_t i = 0;
  size_t j = 0;
  while (i < old_edges.size() || j < new_edges.size()) {
    if (j == new_edges.size() ||
        (i < old_edges.size() &&
         NodePair{old_edges[i].u, old_edges[i].v} <
             NodePair{new_edges[j].u, new_edges[j].v})) {
      const Edge& e = old_edges[i++];
      delta.changes.push_back(ChangedEdge{e.u, e.v, e.weight, 0.0});
    } else if (i == old_edges.size() ||
               NodePair{new_edges[j].u, new_edges[j].v} <
                   NodePair{old_edges[i].u, old_edges[i].v}) {
      const Edge& e = new_edges[j++];
      delta.changes.push_back(ChangedEdge{e.u, e.v, 0.0, e.weight});
    } else {
      const Edge& old_edge = old_edges[i++];
      const Edge& new_edge = new_edges[j++];
      if (old_edge.weight != new_edge.weight) {
        delta.changes.push_back(ChangedEdge{old_edge.u, old_edge.v,
                                            old_edge.weight, new_edge.weight});
      }
    }
  }
  return delta;
}

}  // namespace cad
