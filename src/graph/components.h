#ifndef CAD_GRAPH_COMPONENTS_H_
#define CAD_GRAPH_COMPONENTS_H_

#include <vector>

#include "graph/graph.h"

namespace cad {

/// \brief Connected-component labeling of a weighted graph.
struct ComponentLabeling {
  /// component[i] is the 0-based component id of node i; ids are assigned in
  /// order of the smallest node in each component.
  std::vector<uint32_t> component;
  /// Number of connected components.
  size_t num_components = 0;
  /// Node count of each component.
  std::vector<size_t> sizes;

  bool SameComponent(NodeId u, NodeId v) const {
    return component[u] == component[v];
  }
};

/// \brief Computes connected components via BFS. Isolated nodes form
/// singleton components.
///
/// The commute-time engines need this because commute distance is infinite
/// across components; the exact engine can compute per-component
/// pseudoinverses, and callers may want to report component splits.
ComponentLabeling ConnectedComponents(const WeightedGraph& graph);

/// True if the graph has a single connected component (or no nodes).
bool IsConnected(const WeightedGraph& graph);

}  // namespace cad

#endif  // CAD_GRAPH_COMPONENTS_H_
