#ifndef CAD_GRAPH_SUBGRAPH_H_
#define CAD_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace cad {

/// \brief An induced subgraph together with the mapping back to the parent
/// graph's node ids.
struct Subgraph {
  /// The induced graph; node i corresponds to parent node original_ids[i].
  WeightedGraph graph;
  /// Sorted parent-node ids, one per subgraph node.
  std::vector<NodeId> original_ids;
};

/// \brief Induced subgraph on `nodes` (duplicates ignored, order
/// normalized). Edges of the parent with both endpoints selected are kept
/// with their weights.
Subgraph InducedSubgraph(const WeightedGraph& graph,
                         std::vector<NodeId> nodes);

/// \brief Nodes within `radius` hops of `center` (center included,
/// radius 0 = just the center). Used to extract the egonet views shown in
/// the paper's Fig. 8b.
std::vector<NodeId> NeighborhoodNodes(const WeightedGraph& graph,
                                      NodeId center, size_t radius);

}  // namespace cad

#endif  // CAD_GRAPH_SUBGRAPH_H_
