#include "graph/relabel.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace cad {

Relabeling DegreeOrderRelabeling(const WeightedGraph& graph) {
  const size_t n = graph.num_nodes();
  const std::vector<size_t> degrees = graph.Degrees();
  Relabeling relabeling;
  relabeling.old_id.resize(n);
  std::iota(relabeling.old_id.begin(), relabeling.old_id.end(), 0u);
  std::stable_sort(relabeling.old_id.begin(), relabeling.old_id.end(),
                   [&degrees](uint32_t a, uint32_t b) {
                     return degrees[a] > degrees[b];
                   });
  relabeling.new_id.resize(n);
  for (size_t p = 0; p < n; ++p) {
    relabeling.new_id[relabeling.old_id[p]] = static_cast<uint32_t>(p);
  }
  return relabeling;
}

CsrMatrix PermuteCsrRows(const CsrMatrix& matrix,
                         const Relabeling& relabeling) {
  const size_t n = matrix.rows();
  CAD_CHECK_EQ(matrix.cols(), n);
  CAD_CHECK_EQ(relabeling.size(), n);

  std::vector<size_t> offsets(n + 1, 0);
  for (size_t p = 0; p < n; ++p) {
    const uint32_t i = relabeling.old_id[p];
    offsets[p + 1] = offsets[p] + (matrix.RowEnd(i) - matrix.RowBegin(i));
  }
  std::vector<uint32_t> cols(matrix.nnz());
  std::vector<double> vals(matrix.nnz());
  const std::vector<uint32_t>& src_cols = matrix.col_indices();
  const std::vector<double>& src_vals = matrix.values();
  for (size_t p = 0; p < n; ++p) {
    const uint32_t i = relabeling.old_id[p];
    size_t out = offsets[p];
    for (size_t q = matrix.RowBegin(i); q < matrix.RowEnd(i); ++q, ++out) {
      cols[out] = relabeling.new_id[src_cols[q]];
      vals[out] = src_vals[q];
    }
  }
  return CsrMatrix(n, n, std::move(offsets), std::move(cols), std::move(vals),
                   CsrMatrix::UnsortedRowsTag());
}

}  // namespace cad
