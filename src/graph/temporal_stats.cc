#include "graph/temporal_stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "graph/components.h"

namespace cad {

TemporalProfile ProfileSequence(const TemporalGraphSequence& sequence) {
  TemporalProfile profile;
  profile.snapshots.reserve(sequence.num_snapshots());
  for (size_t t = 0; t < sequence.num_snapshots(); ++t) {
    const WeightedGraph& g = sequence.Snapshot(t);
    SnapshotStats stats;
    stats.num_edges = g.num_edges();
    stats.volume = g.Volume();
    stats.mean_weight =
        stats.num_edges > 0
            ? stats.volume / (2.0 * static_cast<double>(stats.num_edges))
            : 0.0;
    const ComponentLabeling labeling = ConnectedComponents(g);
    stats.num_components = labeling.num_components;
    for (size_t size : labeling.sizes) {
      stats.largest_component = std::max(stats.largest_component, size);
      if (size == 1) ++stats.isolated_nodes;
    }
    profile.snapshots.push_back(stats);
  }

  profile.transitions.reserve(sequence.num_transitions());
  for (size_t t = 0; t + 1 < sequence.num_snapshots(); ++t) {
    const WeightedGraph& before = sequence.Snapshot(t);
    const WeightedGraph& after = sequence.Snapshot(t + 1);
    TransitionStats stats;
    size_t shared = 0;
    for (const NodePair& pair : sequence.TransitionSupport(t)) {
      const double w1 = before.EdgeWeight(pair.u, pair.v);
      const double w2 = after.EdgeWeight(pair.u, pair.v);
      stats.weight_change_l1 += std::fabs(w2 - w1);
      if (w1 == 0.0) {
        ++stats.edges_added;
      } else if (w2 == 0.0) {
        ++stats.edges_removed;
      } else {
        ++shared;
        if (w1 != w2) ++stats.edges_reweighted;
      }
    }
    const size_t union_size = stats.edges_added + stats.edges_removed + shared;
    stats.support_jaccard =
        union_size == 0 ? 1.0
                        : static_cast<double>(shared) /
                              static_cast<double>(union_size);
    profile.transitions.push_back(stats);
  }
  return profile;
}

void PrintTemporalProfile(const TemporalProfile& profile, std::ostream* out) {
  (*out) << "snapshot  edges  volume      mean_w  components  largest  isolated\n";
  for (size_t t = 0; t < profile.snapshots.size(); ++t) {
    const SnapshotStats& s = profile.snapshots[t];
    (*out) << std::left << std::setw(10) << t << std::setw(7) << s.num_edges
           << std::setw(12) << s.volume << std::setw(8)
           << std::setprecision(3) << s.mean_weight << std::setw(12)
           << s.num_components << std::setw(9) << s.largest_component
           << s.isolated_nodes << "\n";
  }
  (*out) << "\ntransition  added  removed  reweighted  |dA|_1      jaccard\n";
  for (size_t t = 0; t < profile.transitions.size(); ++t) {
    const TransitionStats& s = profile.transitions[t];
    (*out) << std::left << std::setw(12) << t << std::setw(7) << s.edges_added
           << std::setw(9) << s.edges_removed << std::setw(12)
           << s.edges_reweighted << std::setw(12) << s.weight_change_l1
           << std::setprecision(3) << s.support_jaccard << "\n";
  }
}

}  // namespace cad
