#include "graph/temporal_graph.h"

#include <algorithm>
#include <cmath>

namespace cad {

Status TemporalGraphSequence::Append(WeightedGraph snapshot) {
  if (snapshot.num_nodes() != num_nodes_) {
    return Status::InvalidArgument(
        "snapshot node count " + std::to_string(snapshot.num_nodes()) +
        " does not match sequence node count " + std::to_string(num_nodes_));
  }
  snapshots_.push_back(std::move(snapshot));
  return Status::OK();
}

Status TemporalGraphSequence::AppendGrowing(WeightedGraph snapshot) {
  if (snapshot.num_nodes() > num_nodes_) {
    CAD_RETURN_NOT_OK(GrowTo(snapshot.num_nodes()));
  } else if (snapshot.num_nodes() < num_nodes_) {
    CAD_RETURN_NOT_OK(snapshot.GrowTo(num_nodes_));
  }
  snapshots_.push_back(std::move(snapshot));
  return Status::OK();
}

Status TemporalGraphSequence::GrowTo(size_t num_nodes) {
  if (num_nodes < num_nodes_) {
    return Status::InvalidArgument(
        "GrowTo cannot shrink the node set: " + std::to_string(num_nodes) +
        " < " + std::to_string(num_nodes_));
  }
  for (WeightedGraph& snapshot : snapshots_) {
    CAD_RETURN_NOT_OK(snapshot.GrowTo(num_nodes));
  }
  num_nodes_ = num_nodes;
  return Status::OK();
}

Status TemporalGraphSequence::SetVocabulary(NodeVocabulary vocabulary) {
  if (vocabulary.size() != num_nodes_) {
    return Status::InvalidArgument(
        "vocabulary size " + std::to_string(vocabulary.size()) +
        " does not match sequence node count " + std::to_string(num_nodes_));
  }
  vocabulary_ = std::move(vocabulary);
  return Status::OK();
}

double TemporalGraphSequence::AverageEdgesPerSnapshot() const {
  if (snapshots_.empty()) return 0.0;
  double total = 0.0;
  for (const WeightedGraph& g : snapshots_) {
    total += static_cast<double>(g.num_edges());
  }
  return total / static_cast<double>(snapshots_.size());
}

Status TemporalGraphSequence::CheckConsistent() const {
  if (vocabulary_.has_value() && vocabulary_->size() != num_nodes_) {
    return Status::Internal(
        "vocabulary has " + std::to_string(vocabulary_->size()) +
        " names, sequence has " + std::to_string(num_nodes_) + " nodes");
  }
  for (size_t t = 0; t < snapshots_.size(); ++t) {
    const WeightedGraph& g = snapshots_[t];
    if (g.num_nodes() != num_nodes_) {
      return Status::Internal(
          "snapshot " + std::to_string(t) + " has " +
          std::to_string(g.num_nodes()) + " nodes, sequence has " +
          std::to_string(num_nodes_));
    }
    for (const Edge& e : g.Edges()) {
      if (e.u >= num_nodes_ || e.v >= num_nodes_ || e.u >= e.v) {
        return Status::Internal("snapshot " + std::to_string(t) +
                                ": edge (" + std::to_string(e.u) + ", " +
                                std::to_string(e.v) +
                                ") is out of range or not canonical (u < v)");
      }
      if (!std::isfinite(e.weight) || e.weight <= 0.0) {
        return Status::NumericalError(
            "snapshot " + std::to_string(t) + ": edge (" +
            std::to_string(e.u) + ", " + std::to_string(e.v) +
            ") has non-finite or non-positive weight " +
            std::to_string(e.weight));
      }
    }
  }
  return Status::OK();
}

std::vector<NodePair> TemporalGraphSequence::TransitionSupport(size_t t) const {
  CAD_CHECK_LT(t + 1, snapshots_.size());
  std::vector<NodePair> support;
  support.reserve(snapshots_[t].num_edges() + snapshots_[t + 1].num_edges());
  for (const Edge& e : snapshots_[t].Edges()) {
    support.push_back(NodePair{e.u, e.v});
  }
  for (const Edge& e : snapshots_[t + 1].Edges()) {
    support.push_back(NodePair{e.u, e.v});
  }
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  return support;
}

}  // namespace cad
