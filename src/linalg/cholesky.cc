#include "linalg/cholesky.h"

#include <cmath>

#include "obs/obs.h"

namespace cad {

Result<CholeskyFactorization> CholeskyFactorization::Factor(
    const DenseMatrix& a, double pivot_tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky: matrix must be square");
  }
  if (!a.IsSymmetric(1e-9)) {
    return Status::InvalidArgument("Cholesky: matrix must be symmetric");
  }
  CAD_DCHECK_OK(a.CheckFinite());
  CAD_TRACE_SPAN("cholesky_factor");
  CAD_METRIC_INC("cholesky.factorizations");
  const size_t n = a.rows();
  DenseMatrix lower(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= lower(j, k) * lower(j, k);
    if (diag <= pivot_tol) {
      return Status::NumericalError(
          "Cholesky: non-positive pivot at column " + std::to_string(j) +
          " (value " + std::to_string(diag) + "); matrix is not SPD");
    }
    const double ljj = std::sqrt(diag);
    lower(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= lower(i, k) * lower(j, k);
      lower(i, j) = sum / ljj;
    }
  }
  return CholeskyFactorization(std::move(lower));
}

std::vector<double> CholeskyFactorization::Solve(
    const std::vector<double>& b) const {
  const size_t n = dimension();
  CAD_CHECK_EQ(b.size(), n);
  // Forward substitution: L y = b.
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    const double* li = lower_.row(i);
    for (size_t k = 0; k < i; ++k) sum -= li[k] * y[k];
    y[i] = sum / li[i];
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= lower_(k, i) * x[k];
    x[i] = sum / lower_(i, i);
  }
  return x;
}

DenseMatrix CholeskyFactorization::SolveMatrix(const DenseMatrix& b) const {
  const size_t n = dimension();
  CAD_CHECK_EQ(b.rows(), n);
  DenseMatrix x(n, b.cols());
  std::vector<double> column(n);
  for (size_t j = 0; j < b.cols(); ++j) {
    for (size_t i = 0; i < n; ++i) column[i] = b(i, j);
    const std::vector<double> solution = Solve(column);
    for (size_t i = 0; i < n; ++i) x(i, j) = solution[i];
  }
  return x;
}

DenseMatrix CholeskyFactorization::Inverse() const {
  return SolveMatrix(DenseMatrix::Identity(dimension()));
}

}  // namespace cad
