#include "linalg/conjugate_gradient.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "common/check.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "obs/obs.h"

#include "linalg/incomplete_cholesky.h"
#include "linalg/vector_ops.h"

namespace cad {

namespace {

/// Applies M^{-1} r -> z for the configured preconditioner.
using Preconditioner =
    std::function<void(const std::vector<double>&, std::vector<double>*)>;

/// Builds the preconditioner application for one matrix. The IC factor (if
/// any) is owned by the returned closure unless `cached` supplies a prebuilt
/// one, in which case the closure borrows it (the caller keeps it alive).
Result<Preconditioner> MakePreconditioner(const CsrMatrix& a,
                                          CgPreconditioner kind,
                                          const IncompleteCholesky* cached) {
  switch (kind) {
    case CgPreconditioner::kNone:
      return Preconditioner(
          [](const std::vector<double>& r, std::vector<double>* z) {
            *z = r;
          });
    case CgPreconditioner::kJacobi: {
      // Zero diagonal entries (isolated Laplacian nodes) fall back to
      // identity scaling.
      auto inv_diag = std::make_shared<std::vector<double>>(a.Diagonal());
      for (double& d : *inv_diag) d = (d > 0.0) ? 1.0 / d : 1.0;
      return Preconditioner(
          [inv_diag](const std::vector<double>& r, std::vector<double>* z) {
            z->resize(r.size());
            for (size_t i = 0; i < r.size(); ++i) {
              (*z)[i] = (*inv_diag)[i] * r[i];
            }
          });
    }
    case CgPreconditioner::kIncompleteCholesky: {
      if (cached != nullptr) {
        return Preconditioner(
            [cached](const std::vector<double>& r, std::vector<double>* z) {
              *z = cached->Apply(r);
            });
      }
      Result<IncompleteCholesky> factor = IncompleteCholesky::Factor(a);
      if (!factor.ok()) return factor.status();
      auto ic = std::make_shared<IncompleteCholesky>(
          std::move(factor).ValueOrDie());
      return Preconditioner(
          [ic](const std::vector<double>& r, std::vector<double>* z) {
            *z = ic->Apply(r);
          });
    }
  }
  return Status::Internal("unknown preconditioner kind");
}

/// Shared read-only preconditioner state for the block path. Dispatched by
/// kind instead of a std::function so the per-iteration block apply carries
/// no closure indirection.
struct BlockPreconditioner {
  CgPreconditioner kind = CgPreconditioner::kNone;
  std::vector<double> inv_diag;                    // kJacobi
  const IncompleteCholesky* borrowed = nullptr;    // kIncompleteCholesky
  std::optional<IncompleteCholesky> owned;

  const IncompleteCholesky* factor() const {
    return owned.has_value() ? &*owned : borrowed;
  }

  /// Z = M^{-1} R, column by column bit-identical to the scalar closures.
  void Apply(const DenseMatrix& r, DenseMatrix* z) const {
    const size_t n = r.rows();
    const size_t k = r.cols();
    if (z->rows() != n || z->cols() != k) *z = DenseMatrix(n, k);
    switch (kind) {
      case CgPreconditioner::kNone:
        *z = r;
        return;
      case CgPreconditioner::kJacobi:
        for (size_t i = 0; i < n; ++i) {
          const double d = inv_diag[i];
          const double* ri = r.row(i);
          double* zi = z->mutable_row(i);
          for (size_t c = 0; c < k; ++c) zi[c] = d * ri[c];
        }
        return;
      case CgPreconditioner::kIncompleteCholesky:
        factor()->ApplyBlock(r, z);
        return;
    }
  }
};

Result<BlockPreconditioner> MakeBlockPreconditioner(
    const CsrMatrix& a, CgPreconditioner kind,
    const IncompleteCholesky* cached) {
  BlockPreconditioner precond;
  precond.kind = kind;
  switch (kind) {
    case CgPreconditioner::kNone:
      return precond;
    case CgPreconditioner::kJacobi:
      // Same zero-diagonal fallback as the scalar Jacobi closure.
      precond.inv_diag = a.Diagonal();
      for (double& d : precond.inv_diag) d = (d > 0.0) ? 1.0 / d : 1.0;
      return precond;
    case CgPreconditioner::kIncompleteCholesky: {
      if (cached != nullptr) {
        precond.borrowed = cached;
        return precond;
      }
      Result<IncompleteCholesky> factor = IncompleteCholesky::Factor(a);
      if (!factor.ok()) return factor.status();
      precond.owned.emplace(std::move(factor).ValueOrDie());
      return precond;
    }
  }
  return Status::Internal("unknown preconditioner kind");
}

Result<CgSummary> SolveWithPreconditioner(const CsrMatrix& a,
                                          const std::vector<double>& b,
                                          const Preconditioner& apply,
                                          const CgOptions& options,
                                          const std::vector<double>* x0,
                                          std::vector<double>* x) {
  const size_t n = a.rows();

  const double b_norm = Norm2(b);
  CgSummary summary;
  if (b_norm == 0.0) {
    // The solution of A x = 0 is the zero vector regardless of any guess.
    x->assign(n, 0.0);
    summary.converged = true;
    return summary;
  }

  const double target = options.tolerance * b_norm;
  std::vector<double> r;
  if (x0 != nullptr) {
    *x = *x0;
    r = b;
    a.MultiplyAccumulate(-1.0, *x, &r);  // r = b - A x0
    const double r0_norm = Norm2(r);
    summary.relative_residual = r0_norm / b_norm;
    if (r0_norm <= target) {
      // The guess already meets the residual target (the warm-start payoff).
      summary.converged = true;
      return summary;
    }
  } else {
    x->assign(n, 0.0);
    r = b;  // residual at x0 = 0
  }

  std::vector<double> z(n);
  apply(r, &z);
  std::vector<double> p = z;
  std::vector<double> ap(n);
  double rz = Dot(r, z);

  const size_t max_iters =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;

  for (size_t iter = 0; iter < max_iters; ++iter) {
    ap.assign(n, 0.0);
    a.MultiplyAccumulate(1.0, p, &ap);
    const double pap = Dot(p, ap);
    if (pap <= 0.0) {
      // Direction of non-positive curvature: matrix is not PSD (or a
      // numerical breakdown on a semidefinite system). Surface as an error.
      return Status::NumericalError(
          "CG: non-positive curvature encountered (p^T A p = " +
          std::to_string(pap) + "); matrix not positive semidefinite?");
    }
    const double alpha = rz / pap;
    Axpy(alpha, p, x);
    Axpy(-alpha, ap, &r);

    const double r_norm = Norm2(r);
    summary.iterations = iter + 1;
    summary.relative_residual = r_norm / b_norm;
    if (r_norm <= target) {
      summary.converged = true;
      return summary;
    }

    apply(r, &z);
    const double rz_next = Dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  summary.converged = summary.relative_residual <= options.tolerance;
  return summary;
}

/// Copies columns [begin, end) of `m` into *out, already shaped
/// m.rows() x (end - begin) (possibly a pooled buffer).
void CopyColumnsInto(const DenseMatrix& m, size_t begin, size_t end,
                     DenseMatrix* out) {
  for (size_t i = 0; i < m.rows(); ++i) {
    const double* src = m.row(i) + begin;
    std::copy(src, src + (end - begin), out->mutable_row(i));
  }
}

/// The lockstep kernel behind SolveBlock: advances all columns of B through
/// one shared SpMM/preconditioner sweep per iteration, with per-column
/// scalars and an active mask that freezes converged columns. Every
/// floating-point operation touching column c happens in exactly the order
/// SolveWithPreconditioner would execute it for that column alone, so the
/// results (and iteration counts) are bit-identical to k serial solves.
///
/// `order` (when non-null) redirects the cross-row reductions — ||b||,
/// ||r||, r^T z, p^T Ap — to visit rows in the given permutation while the
/// elementwise sweeps stay layout-order. A degree-relabeled system passes
/// original-id order here, which restores the exact scalar sequence of the
/// unrelabeled solve (see CgSolveContext::reduction_order).
/// `tile_plan` (when non-null) routes the SpMM sweeps through the
/// cache-blocked kernel; `ws` pools the four n x k temporaries.
Result<std::vector<CgSummary>> LockstepSolve(const CsrMatrix& a,
                                             const DenseMatrix& b,
                                             const BlockPreconditioner& precond,
                                             const CgOptions& options,
                                             const DenseMatrix* x0,
                                             DenseMatrix* x,
                                             const CsrTilePlan* tile_plan,
                                             const uint32_t* order,
                                             DenseWorkspace* ws) {
  const size_t n = a.rows();
  const size_t k = b.cols();
  std::vector<CgSummary> summaries(k);
  // The solution block leaves this function, so it is acquired (not
  // scoped); the caller hands it back to the pool when done.
  *x = ws != nullptr ? ws->Acquire(n, k) : DenseMatrix(n, k);
  const auto spmm = [&](double alpha, const DenseMatrix& in,
                        DenseMatrix* out) {
    if (tile_plan != nullptr) {
      a.MultiplyAccumulateBlockTiled(alpha, in, out, *tile_plan);
    } else {
      a.MultiplyAccumulateBlock(alpha, in, out);
    }
  };
  // Overwrite form for the per-iteration product AP: bitwise equal to
  // zero-filling the output and accumulating (MultiplyOverwriteBlock writes
  // `0.0 + alpha * sum`), but skips the fill pass over n*k doubles. The
  // tiled kernel has no overwrite variant, so that path keeps the fill.
  const auto spmm_overwrite = [&](double alpha, const DenseMatrix& in,
                                  DenseMatrix* out) {
    if (tile_plan != nullptr) {
      std::fill(out->mutable_data().begin(), out->mutable_data().end(), 0.0);
      a.MultiplyAccumulateBlockTiled(alpha, in, out, *tile_plan);
    } else {
      a.MultiplyOverwriteBlock(alpha, in, out);
    }
  };

  // Per-column ||b||, accumulated in the same ascending-i order as Norm2
  // (under `order`, in the caller's original row order).
  std::vector<double> accum(k, 0.0);
  for (size_t j = 0; j < n; ++j) {
    const double* bi = b.row(order != nullptr ? order[j] : j);
    for (size_t c = 0; c < k; ++c) accum[c] += bi[c] * bi[c];
  }
  std::vector<double> b_norm(k, 0.0);
  std::vector<double> target(k, 0.0);
  std::vector<uint32_t> active;  // still-iterating columns, ascending
  active.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    b_norm[c] = std::sqrt(accum[c]);
    if (b_norm[c] == 0.0) {
      summaries[c].converged = true;  // x column stays zero
    } else {
      target[c] = options.tolerance * b_norm[c];
      active.push_back(static_cast<uint32_t>(c));
    }
  }

  PooledDense r_pool(ws, n, k);
  DenseMatrix& r = r_pool.get();
  std::copy(b.data().begin(), b.data().end(), r.mutable_data().begin());
  if (x0 != nullptr && !active.empty()) {
    *x = *x0;
    // Zero-rhs columns keep the serial contract x = 0 regardless of guess.
    for (size_t c = 0; c < k; ++c) {
      if (b_norm[c] != 0.0) continue;
      for (size_t i = 0; i < n; ++i) (*x)(i, c) = 0.0;
    }
    spmm(-1.0, *x0, &r);  // R = B - A X0
    std::fill(accum.begin(), accum.end(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      const double* ri = r.row(order != nullptr ? order[j] : j);
      for (const uint32_t c : active) accum[c] += ri[c] * ri[c];
    }
    size_t w = 0;
    for (const uint32_t c : active) {
      const double r0_norm = std::sqrt(accum[c]);
      summaries[c].relative_residual = r0_norm / b_norm[c];
      if (r0_norm <= target[c]) {
        summaries[c].converged = true;  // guess already meets the target
      } else {
        active[w++] = c;
      }
    }
    active.resize(w);
  }
  if (active.empty()) return summaries;

  PooledDense z_pool(ws, n, k);
  DenseMatrix& z = z_pool.get();
  precond.Apply(r, &z);
  PooledDense p_pool(ws, n, k);
  DenseMatrix& p = p_pool.get();
  std::copy(z.data().begin(), z.data().end(), p.mutable_data().begin());
  PooledDense ap_pool(ws, n, k);
  DenseMatrix& ap = ap_pool.get();
  std::vector<double> rz(k, 0.0);
  for (size_t j = 0; j < n; ++j) {
    const size_t i = order != nullptr ? order[j] : j;
    const double* ri = r.row(i);
    const double* zi = z.row(i);
    for (const uint32_t c : active) rz[c] += ri[c] * zi[c];
  }
  std::vector<double> scalars(k, 0.0);

  const size_t max_iters =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;

  // cad-lint: hot-path begin (per-iteration loop: no buffer growth allowed)
  for (size_t iter = 0; iter < max_iters && !active.empty(); ++iter) {
    spmm_overwrite(1.0, p, &ap);

    std::fill(scalars.begin(), scalars.end(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      const size_t i = order != nullptr ? order[j] : j;
      const double* pi = p.row(i);
      const double* api = ap.row(i);
      for (const uint32_t c : active) scalars[c] += pi[c] * api[c];
    }
    for (const uint32_t c : active) {
      if (scalars[c] <= 0.0) {
        return Status::NumericalError(
            "CG: non-positive curvature encountered (p^T A p = " +
            std::to_string(scalars[c]) +
            "); matrix not positive semidefinite?");
      }
    }
    // scalars now holds p^T A p; turn it into alpha = rz / pap per column.
    for (const uint32_t c : active) scalars[c] = rz[c] / scalars[c];
    // X/R update fused with the ||r|| reduction in one sweep. The updates
    // are elementwise, so visiting rows in reduction order (`order[j]`)
    // instead of layout order changes nothing; the reduction itself still
    // accumulates each column in the exact ascending-original-id sequence
    // Norm2 uses, so convergence decisions stay bit-identical.
    std::fill(accum.begin(), accum.end(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      const size_t i = order != nullptr ? order[j] : j;
      double* xi = x->mutable_row(i);
      double* ri = r.mutable_row(i);
      const double* pi = p.row(i);
      const double* api = ap.row(i);
      for (const uint32_t c : active) {
        const double alpha = scalars[c];
        xi[c] += alpha * pi[c];
        const double rv = ri[c] - alpha * api[c];
        ri[c] = rv;
        accum[c] += rv * rv;
      }
    }
    size_t w = 0;
    for (const uint32_t c : active) {
      const double r_norm = std::sqrt(accum[c]);
      summaries[c].iterations = iter + 1;
      summaries[c].relative_residual = r_norm / b_norm[c];
      if (r_norm <= target[c]) {
        summaries[c].converged = true;
      } else {
        active[w++] = c;
      }
    }
    active.resize(w);  // shrink only, never reallocates  // cad-lint: allow(hot-alloc)
    if (active.empty()) break;

    std::fill(scalars.begin(), scalars.end(), 0.0);
    if (precond.kind == CgPreconditioner::kIncompleteCholesky) {
      // IC(0) apply is a triangular solve with its own row ordering; keep
      // the generic two-pass form.
      precond.Apply(r, &z);
      for (size_t j = 0; j < n; ++j) {
        const size_t i = order != nullptr ? order[j] : j;
        const double* ri = r.row(i);
        const double* zi = z.row(i);
        for (const uint32_t c : active) scalars[c] += ri[c] * zi[c];
      }
    } else {
      // Jacobi/identity applies are elementwise, so the apply fuses with
      // the r^T z reduction: z rows are written with the exact expressions
      // BlockPreconditioner::Apply uses (z = r, or z = inv_diag * r), and
      // the reduction still sweeps columns in ascending-original-id order.
      // Only active columns of z are refreshed; frozen columns are never
      // read again.
      const bool jacobi = precond.kind == CgPreconditioner::kJacobi;
      for (size_t j = 0; j < n; ++j) {
        const size_t i = order != nullptr ? order[j] : j;
        const double d = jacobi ? precond.inv_diag[i] : 1.0;
        const double* ri = r.row(i);
        double* zi = z.mutable_row(i);
        for (const uint32_t c : active) {
          const double zv = d * ri[c];
          zi[c] = zv;
          scalars[c] += ri[c] * zv;
        }
      }
    }
    for (const uint32_t c : active) {
      const double rz_next = scalars[c];
      const double beta = rz_next / rz[c];
      rz[c] = rz_next;
      scalars[c] = beta;
    }
    for (size_t i = 0; i < n; ++i) {
      double* pi = p.mutable_row(i);
      const double* zi = z.row(i);
      for (const uint32_t c : active) pi[c] = zi[c] + scalars[c] * pi[c];
    }
  }
  // cad-lint: hot-path end
  // Iteration cap reached: same convergence call as the serial tail.
  for (const uint32_t c : active) {
    summaries[c].converged =
        summaries[c].relative_residual <= options.tolerance;
  }
  return summaries;
}

/// Records the outcome counters shared by Solve and SolveMany's per-RHS
/// solves. Counters only: their sums are independent of thread count and
/// scheduling, so this is safe to call from ParallelFor workers. Gauges
/// (last-write-wins) are set only from deterministic single-threaded points.
void RecordSolveMetrics(const CgSummary& summary) {
  CAD_METRIC_INC("pcg.solves");
  CAD_METRIC_ADD("pcg.iterations", summary.iterations);
  if (!summary.converged) CAD_METRIC_INC("pcg.nonconverged");
}

Status ValidateSystem(const CsrMatrix& a, size_t rhs_size) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CG: matrix must be square");
  }
  if (rhs_size != a.rows()) {
    return Status::InvalidArgument("CG: rhs size mismatch");
  }
  return Status::OK();
}

Status ValidateContext(const CgSolveContext& context, size_t rows,
                       size_t cols) {
  if (context.initial_guess != nullptr &&
      (context.initial_guess->rows() != rows ||
       context.initial_guess->cols() != cols)) {
    return Status::InvalidArgument(
        "CG: initial-guess block must be " + std::to_string(rows) + "x" +
        std::to_string(cols) + ", got " +
        std::to_string(context.initial_guess->rows()) + "x" +
        std::to_string(context.initial_guess->cols()));
  }
  if (context.cached_factor != nullptr &&
      context.cached_factor->dimension() != rows) {
    return Status::InvalidArgument("CG: cached IC(0) factor dimension " +
                                   std::to_string(
                                       context.cached_factor->dimension()) +
                                   " does not match system size " +
                                   std::to_string(rows));
  }
  return Status::OK();
}

}  // namespace

CgBatchStats SummarizeCgBatch(const std::vector<CgSummary>& summaries) {
  CgBatchStats stats;
  stats.num_systems = summaries.size();
  for (size_t i = 0; i < summaries.size(); ++i) {
    const CgSummary& summary = summaries[i];
    if (summary.converged) ++stats.num_converged;
    if (i == 0 || summary.iterations < stats.min_iterations) {
      stats.min_iterations = summary.iterations;
    }
    stats.max_iterations = std::max(stats.max_iterations, summary.iterations);
    stats.total_iterations += summary.iterations;
    stats.max_relative_residual =
        std::max(stats.max_relative_residual, summary.relative_residual);
  }
  return stats;
}

const char* CgPreconditionerToString(CgPreconditioner preconditioner) {
  switch (preconditioner) {
    case CgPreconditioner::kNone:
      return "none";
    case CgPreconditioner::kJacobi:
      return "jacobi";
    case CgPreconditioner::kIncompleteCholesky:
      return "ic0";
  }
  return "unknown";
}

Result<CgSummary> ConjugateGradientSolver::Solve(const CsrMatrix& a,
                                                 const std::vector<double>& b,
                                                 std::vector<double>* x) const {
  CAD_TRACE_SPAN("pcg_solve");
  CAD_RETURN_NOT_OK(ValidateSystem(a, b.size()));
  CAD_DCHECK_OK(a.CheckValid(CsrValidateOptions{.require_symmetric = true}));
  Preconditioner apply;
  {
    CAD_TRACE_SPAN("pcg_precond_setup");
    const Timer setup_timer;
    CAD_ASSIGN_OR_RETURN(
        apply, MakePreconditioner(a, options_.preconditioner, nullptr));
    CAD_METRIC_TIME_NS("pcg.precond_setup", setup_timer.ElapsedNanos());
  }
  Result<CgSummary> summary =
      SolveWithPreconditioner(a, b, apply, options_, nullptr, x);
  if (summary.ok()) {
    RecordSolveMetrics(*summary);
    CAD_METRIC_SET("pcg.last_relative_residual", summary->relative_residual);
  }
  return summary;
}

Result<CgSummary> ConjugateGradientSolver::Solve(const CsrMatrix& a,
                                                 const std::vector<double>& b,
                                                 const std::vector<double>& x0,
                                                 std::vector<double>* x) const {
  CAD_TRACE_SPAN("pcg_solve");
  CAD_RETURN_NOT_OK(ValidateSystem(a, b.size()));
  if (x0.size() != b.size()) {
    return Status::InvalidArgument("CG: initial guess size mismatch");
  }
  CAD_DCHECK_OK(a.CheckValid(CsrValidateOptions{.require_symmetric = true}));
  Preconditioner apply;
  {
    CAD_TRACE_SPAN("pcg_precond_setup");
    const Timer setup_timer;
    CAD_ASSIGN_OR_RETURN(
        apply, MakePreconditioner(a, options_.preconditioner, nullptr));
    CAD_METRIC_TIME_NS("pcg.precond_setup", setup_timer.ElapsedNanos());
  }
  Result<CgSummary> summary =
      SolveWithPreconditioner(a, b, apply, options_, &x0, x);
  if (summary.ok()) {
    RecordSolveMetrics(*summary);
    CAD_METRIC_SET("pcg.last_relative_residual", summary->relative_residual);
  }
  return summary;
}

Result<std::vector<CgSummary>> ConjugateGradientSolver::SolveMany(
    const CsrMatrix& a, const std::vector<std::vector<double>>& rhs,
    std::vector<std::vector<double>>* solutions) const {
  return SolveMany(a, rhs, solutions, CgSolveContext());
}

Result<std::vector<CgSummary>> ConjugateGradientSolver::SolveMany(
    const CsrMatrix& a, const std::vector<std::vector<double>>& rhs,
    std::vector<std::vector<double>>* solutions,
    const CgSolveContext& context) const {
  for (const std::vector<double>& b : rhs) {
    CAD_RETURN_NOT_OK(ValidateSystem(a, b.size()));
  }
  CAD_RETURN_NOT_OK(ValidateContext(context, a.rows(), rhs.size()));
  const size_t n = a.rows();
  const size_t k = rhs.size();

  if (options_.use_block_solver) {
    // Pack the right-hand sides into a node-major block, solve in lockstep,
    // and unpack. The kernel is bit-identical per system, so callers cannot
    // observe the dispatch beyond speed (and the pcg.block_solves counter).
    PooledDense b(context.workspace, n, k);
    for (size_t c = 0; c < k; ++c) {
      for (size_t i = 0; i < n; ++i) b.get()(i, c) = rhs[c][i];
    }
    DenseMatrix x;
    std::vector<CgSummary> summaries;
    CAD_ASSIGN_OR_RETURN(summaries, SolveBlock(a, b.get(), &x, context));
    solutions->assign(k, std::vector<double>());
    for (size_t c = 0; c < k; ++c) {
      (*solutions)[c].resize(n);
      for (size_t i = 0; i < n; ++i) (*solutions)[c][i] = x(i, c);
    }
    if (context.workspace != nullptr) {
      context.workspace->Release(std::move(x));
    }
    return summaries;
  }

  CAD_TRACE_SPAN("pcg_solve_many");
  CAD_DCHECK_OK(a.CheckValid(CsrValidateOptions{.require_symmetric = true}));
  Preconditioner apply;
  {
    CAD_TRACE_SPAN("pcg_precond_setup");
    const Timer setup_timer;
    CAD_ASSIGN_OR_RETURN(apply,
                         MakePreconditioner(a, options_.preconditioner,
                                            context.cached_factor));
    CAD_METRIC_TIME_NS("pcg.precond_setup", setup_timer.ElapsedNanos());
  }
  solutions->resize(k);
  std::vector<CgSummary> summaries(k);
  std::vector<Status> statuses(k);
  // The systems are independent; the preconditioner closure is shared
  // read-only (Jacobi diagonal / IC factor are immutable after build).
  // Instrumentation only observes (counters commute, the per-RHS histogram
  // is scheduling-independent), so solutions stay bit-identical across
  // thread counts — see tests/test_parallel_stress.cc.
  ParallelFor(k, options_.num_threads, [&](size_t i) {
    CAD_TRACE_SPAN("pcg_rhs");
    std::vector<double> x0_col;
    const std::vector<double>* x0 = nullptr;
    if (context.initial_guess != nullptr) {
      x0_col.resize(n);
      for (size_t row = 0; row < n; ++row) {
        x0_col[row] = (*context.initial_guess)(row, i);
      }
      x0 = &x0_col;
    }
    Result<CgSummary> result =
        SolveWithPreconditioner(a, rhs[i], apply, options_, x0,
                                &(*solutions)[i]);
    if (result.ok()) {
      summaries[i] = *result;
      RecordSolveMetrics(summaries[i]);
      CAD_METRIC_OBSERVE("pcg.iterations_per_rhs", summaries[i].iterations);
    } else {
      statuses[i] = result.status();
    }
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  CAD_METRIC_INC("pcg.batches");
  // Batch aggregate (not per-system, so it is deterministic even when the
  // systems were solved concurrently).
  CAD_METRIC_SET("pcg.last_batch_max_relative_residual",
                 SummarizeCgBatch(summaries).max_relative_residual);
  return summaries;
}

Result<std::vector<CgSummary>> ConjugateGradientSolver::SolveBlock(
    const CsrMatrix& a, const DenseMatrix& b, DenseMatrix* x,
    const CgSolveContext& context) const {
  CAD_TRACE_SPAN("pcg_solve_block");
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CG: matrix must be square");
  }
  if (b.rows() != a.rows()) {
    return Status::InvalidArgument("CG: rhs block row count mismatch");
  }
  CAD_RETURN_NOT_OK(ValidateContext(context, b.rows(), b.cols()));
  if (context.reduction_order != nullptr &&
      context.reduction_order->size() != a.rows()) {
    return Status::InvalidArgument(
        "CG: reduction_order size " +
        std::to_string(context.reduction_order->size()) +
        " does not match system size " + std::to_string(a.rows()));
  }
  if (!a.sorted_rows() &&
      options_.preconditioner == CgPreconditioner::kIncompleteCholesky) {
    // IC(0) elimination depends on the stored entry order, so a factor of
    // the relabeled matrix would not reproduce the unrelabeled
    // preconditioner. Order-free preconditioners (none/Jacobi) only.
    return Status::InvalidArgument(
        "CG: kIncompleteCholesky is incompatible with unsorted-row "
        "(relabeled) matrices; use kJacobi or kNone");
  }
  CAD_DCHECK_OK(a.CheckValid(CsrValidateOptions{.require_symmetric = true}));

  // The cache-blocking plan re-bands sorted rows only; a relabeled matrix's
  // stored order *is* its bit-identity contract, so it runs untiled.
  std::optional<CsrTilePlan> tile_plan;
  if (options_.tiled_spmm && a.sorted_rows() && a.rows() > 0) {
    CAD_TRACE_SPAN("pcg_tile_plan");
    const Timer plan_timer;
    tile_plan.emplace(CsrTilePlan::Build(a, b.cols()));
    CAD_METRIC_TIME_NS("pcg.tile_plan_build", plan_timer.ElapsedNanos());
    CAD_METRIC_INC("pcg.tiled_solves");
  }

  BlockPreconditioner precond;
  {
    CAD_TRACE_SPAN("pcg_precond_setup");
    const Timer setup_timer;
    CAD_ASSIGN_OR_RETURN(precond,
                         MakeBlockPreconditioner(a, options_.preconditioner,
                                                 context.cached_factor));
    CAD_METRIC_TIME_NS("pcg.precond_setup", setup_timer.ElapsedNanos());
  }

  const size_t n = a.rows();
  const size_t k = b.cols();
  // Acquired, not scoped: the solution block is returned to the caller,
  // who releases it back into the workspace once unpacked.
  *x = context.workspace != nullptr ? context.workspace->Acquire(n, k)
                                    : DenseMatrix(n, k);
  std::vector<CgSummary> summaries(k);
  // Column chunking: each chunk runs the lockstep kernel over a contiguous
  // column range. Chunking only regroups which columns share a sweep; it
  // never changes any column's arithmetic, so solutions are independent of
  // the thread count (and of the chunk boundaries).
  const size_t num_chunks =
      options_.num_threads <= 1 ? std::min<size_t>(k, 1)
                                : std::min(options_.num_threads, k);
  std::vector<Status> statuses(num_chunks);
  ParallelFor(num_chunks, options_.num_threads, [&](size_t chunk) {
    CAD_TRACE_SPAN("pcg_block_chunk");
    const size_t begin = chunk * k / num_chunks;
    const size_t end = (chunk + 1) * k / num_chunks;
    PooledDense chunk_b(context.workspace, n, end - begin);
    CopyColumnsInto(b, begin, end, &chunk_b.get());
    PooledDense chunk_x0(context.workspace,
                         context.initial_guess != nullptr ? n : 0,
                         context.initial_guess != nullptr ? end - begin : 0);
    const DenseMatrix* x0 = nullptr;
    if (context.initial_guess != nullptr) {
      CopyColumnsInto(*context.initial_guess, begin, end, &chunk_x0.get());
      x0 = &chunk_x0.get();
    }
    DenseMatrix chunk_x;
    Result<std::vector<CgSummary>> chunk_summaries = LockstepSolve(
        a, chunk_b.get(), precond, options_, x0, &chunk_x,
        tile_plan.has_value() ? &*tile_plan : nullptr,
        context.reduction_order != nullptr ? context.reduction_order->data()
                                           : nullptr,
        context.workspace);
    if (!chunk_summaries.ok()) {
      statuses[chunk] = chunk_summaries.status();
      if (context.workspace != nullptr && chunk_x.rows() > 0) {
        context.workspace->Release(std::move(chunk_x));
      }
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      const double* src = chunk_x.row(i);
      std::copy(src, src + (end - begin), x->mutable_row(i) + begin);
    }
    for (size_t c = begin; c < end; ++c) {
      summaries[c] = (*chunk_summaries)[c - begin];
    }
    if (context.workspace != nullptr) {
      context.workspace->Release(std::move(chunk_x));
    }
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  // Per-system and batch metrics are recorded post-join, in column order, so
  // the export matches the per-RHS path row for row (plus the block
  // counter) at any thread count.
  for (const CgSummary& summary : summaries) {
    RecordSolveMetrics(summary);
    CAD_METRIC_OBSERVE("pcg.iterations_per_rhs", summary.iterations);
  }
  CAD_METRIC_ADD("pcg.block_solves", k);
  CAD_METRIC_INC("pcg.batches");
  CAD_METRIC_SET("pcg.last_batch_max_relative_residual",
                 SummarizeCgBatch(summaries).max_relative_residual);
  return summaries;
}

}  // namespace cad
