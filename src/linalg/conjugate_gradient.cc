#include "linalg/conjugate_gradient.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "obs/obs.h"

#include "linalg/incomplete_cholesky.h"
#include "linalg/vector_ops.h"

namespace cad {

namespace {

/// Applies M^{-1} r -> z for the configured preconditioner.
using Preconditioner =
    std::function<void(const std::vector<double>&, std::vector<double>*)>;

/// Builds the preconditioner application for one matrix. The IC factor (if
/// any) is owned by the returned closure.
Result<Preconditioner> MakePreconditioner(const CsrMatrix& a,
                                          CgPreconditioner kind) {
  switch (kind) {
    case CgPreconditioner::kNone:
      return Preconditioner(
          [](const std::vector<double>& r, std::vector<double>* z) {
            *z = r;
          });
    case CgPreconditioner::kJacobi: {
      // Zero diagonal entries (isolated Laplacian nodes) fall back to
      // identity scaling.
      auto inv_diag = std::make_shared<std::vector<double>>(a.Diagonal());
      for (double& d : *inv_diag) d = (d > 0.0) ? 1.0 / d : 1.0;
      return Preconditioner(
          [inv_diag](const std::vector<double>& r, std::vector<double>* z) {
            z->resize(r.size());
            for (size_t i = 0; i < r.size(); ++i) {
              (*z)[i] = (*inv_diag)[i] * r[i];
            }
          });
    }
    case CgPreconditioner::kIncompleteCholesky: {
      Result<IncompleteCholesky> factor = IncompleteCholesky::Factor(a);
      if (!factor.ok()) return factor.status();
      auto ic = std::make_shared<IncompleteCholesky>(
          std::move(factor).ValueOrDie());
      return Preconditioner(
          [ic](const std::vector<double>& r, std::vector<double>* z) {
            *z = ic->Apply(r);
          });
    }
  }
  return Status::Internal("unknown preconditioner kind");
}

Result<CgSummary> SolveWithPreconditioner(const CsrMatrix& a,
                                          const std::vector<double>& b,
                                          const Preconditioner& apply,
                                          const CgOptions& options,
                                          std::vector<double>* x) {
  const size_t n = a.rows();
  x->assign(n, 0.0);

  const double b_norm = Norm2(b);
  CgSummary summary;
  if (b_norm == 0.0) {
    summary.converged = true;
    return summary;
  }

  std::vector<double> r = b;  // residual, since x0 = 0
  std::vector<double> z(n);
  apply(r, &z);
  std::vector<double> p = z;
  std::vector<double> ap(n);
  double rz = Dot(r, z);

  const size_t max_iters =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 100;
  const double target = options.tolerance * b_norm;

  for (size_t iter = 0; iter < max_iters; ++iter) {
    ap.assign(n, 0.0);
    a.MultiplyAccumulate(1.0, p, &ap);
    const double pap = Dot(p, ap);
    if (pap <= 0.0) {
      // Direction of non-positive curvature: matrix is not PSD (or a
      // numerical breakdown on a semidefinite system). Surface as an error.
      return Status::NumericalError(
          "CG: non-positive curvature encountered (p^T A p = " +
          std::to_string(pap) + "); matrix not positive semidefinite?");
    }
    const double alpha = rz / pap;
    Axpy(alpha, p, x);
    Axpy(-alpha, ap, &r);

    const double r_norm = Norm2(r);
    summary.iterations = iter + 1;
    summary.relative_residual = r_norm / b_norm;
    if (r_norm <= target) {
      summary.converged = true;
      return summary;
    }

    apply(r, &z);
    const double rz_next = Dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  summary.converged = summary.relative_residual <= options.tolerance;
  return summary;
}

/// Records the outcome counters shared by Solve and SolveMany's per-RHS
/// solves. Counters only: their sums are independent of thread count and
/// scheduling, so this is safe to call from ParallelFor workers. Gauges
/// (last-write-wins) are set only from deterministic single-threaded points.
void RecordSolveMetrics(const CgSummary& summary) {
  CAD_METRIC_INC("pcg.solves");
  CAD_METRIC_ADD("pcg.iterations", summary.iterations);
  if (!summary.converged) CAD_METRIC_INC("pcg.nonconverged");
}

Status ValidateSystem(const CsrMatrix& a, size_t rhs_size) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CG: matrix must be square");
  }
  if (rhs_size != a.rows()) {
    return Status::InvalidArgument("CG: rhs size mismatch");
  }
  return Status::OK();
}

}  // namespace

CgBatchStats SummarizeCgBatch(const std::vector<CgSummary>& summaries) {
  CgBatchStats stats;
  stats.num_systems = summaries.size();
  for (size_t i = 0; i < summaries.size(); ++i) {
    const CgSummary& summary = summaries[i];
    if (summary.converged) ++stats.num_converged;
    if (i == 0 || summary.iterations < stats.min_iterations) {
      stats.min_iterations = summary.iterations;
    }
    stats.max_iterations = std::max(stats.max_iterations, summary.iterations);
    stats.total_iterations += summary.iterations;
    stats.max_relative_residual =
        std::max(stats.max_relative_residual, summary.relative_residual);
  }
  return stats;
}

const char* CgPreconditionerToString(CgPreconditioner preconditioner) {
  switch (preconditioner) {
    case CgPreconditioner::kNone:
      return "none";
    case CgPreconditioner::kJacobi:
      return "jacobi";
    case CgPreconditioner::kIncompleteCholesky:
      return "ic0";
  }
  return "unknown";
}

Result<CgSummary> ConjugateGradientSolver::Solve(const CsrMatrix& a,
                                                 const std::vector<double>& b,
                                                 std::vector<double>* x) const {
  CAD_TRACE_SPAN("pcg_solve");
  CAD_RETURN_NOT_OK(ValidateSystem(a, b.size()));
  CAD_DCHECK_OK(a.CheckValid(CsrValidateOptions{.require_symmetric = true}));
  Preconditioner apply;
  {
    CAD_TRACE_SPAN("pcg_precond_setup");
    const Timer setup_timer;
    CAD_ASSIGN_OR_RETURN(apply, MakePreconditioner(a, options_.preconditioner));
    CAD_METRIC_TIME_NS("pcg.precond_setup", setup_timer.ElapsedNanos());
  }
  Result<CgSummary> summary = SolveWithPreconditioner(a, b, apply, options_, x);
  if (summary.ok()) {
    RecordSolveMetrics(*summary);
    CAD_METRIC_SET("pcg.last_relative_residual", summary->relative_residual);
  }
  return summary;
}

Result<std::vector<CgSummary>> ConjugateGradientSolver::SolveMany(
    const CsrMatrix& a, const std::vector<std::vector<double>>& rhs,
    std::vector<std::vector<double>>* solutions) const {
  CAD_TRACE_SPAN("pcg_solve_many");
  for (const std::vector<double>& b : rhs) {
    CAD_RETURN_NOT_OK(ValidateSystem(a, b.size()));
  }
  CAD_DCHECK_OK(a.CheckValid(CsrValidateOptions{.require_symmetric = true}));
  Preconditioner apply;
  {
    CAD_TRACE_SPAN("pcg_precond_setup");
    const Timer setup_timer;
    CAD_ASSIGN_OR_RETURN(apply, MakePreconditioner(a, options_.preconditioner));
    CAD_METRIC_TIME_NS("pcg.precond_setup", setup_timer.ElapsedNanos());
  }
  solutions->resize(rhs.size());
  std::vector<CgSummary> summaries(rhs.size());
  std::vector<Status> statuses(rhs.size());
  // The systems are independent; the preconditioner closure is shared
  // read-only (Jacobi diagonal / IC factor are immutable after build).
  // Instrumentation only observes (counters commute, the per-RHS histogram
  // is scheduling-independent), so solutions stay bit-identical across
  // thread counts — see tests/test_parallel_stress.cc.
  ParallelFor(rhs.size(), options_.num_threads, [&](size_t i) {
    CAD_TRACE_SPAN("pcg_rhs");
    Result<CgSummary> result =
        SolveWithPreconditioner(a, rhs[i], apply, options_, &(*solutions)[i]);
    if (result.ok()) {
      summaries[i] = *result;
      RecordSolveMetrics(summaries[i]);
      CAD_METRIC_OBSERVE("pcg.iterations_per_rhs", summaries[i].iterations);
    } else {
      statuses[i] = result.status();
    }
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  CAD_METRIC_INC("pcg.batches");
  // Batch aggregate (not per-system, so it is deterministic even when the
  // systems were solved concurrently).
  CAD_METRIC_SET("pcg.last_batch_max_relative_residual",
                 SummarizeCgBatch(summaries).max_relative_residual);
  return summaries;
}

}  // namespace cad
