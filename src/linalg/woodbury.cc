#include "linalg/woodbury.h"

#include <cmath>
#include <cstddef>

#include "common/check.h"
#include "linalg/cholesky.h"

namespace cad {

namespace {

/// Applies one same-sign pass: L+ <- L+ -/+ U C^{-1} U^T with
/// C = diag(1/|w_j|) -/+ V. `sign` is +1 for increments (subtract the
/// correction), -1 for decrements (add it).
Status ApplyPass(const std::vector<IncidenceUpdate>& terms, double sign,
                 DenseMatrix* lplus) {
  const size_t k = terms.size();
  if (k == 0) return Status::OK();
  const size_t n = lplus->rows();

  // U = L+ B, gathered column-pair differences. Row i of U reads two entries
  // of row i of L+ per term, so the sweep is row-major friendly on both
  // sides.
  DenseMatrix u(n, k);
  for (size_t i = 0; i < n; ++i) {
    const double* lrow = lplus->row(i);
    double* urow = u.mutable_row(i);
    for (size_t j = 0; j < k; ++j) {
      urow[j] = lrow[terms[j].u] - lrow[terms[j].v];
    }
  }

  // Capacitance C = diag(1/|w|) + sign * V with V = B^T U; V(a, b) is the
  // (u_a - v_a) difference of column b of U. SPD whenever the update keeps
  // the component structure; a failed Cholesky is the breakdown signal.
  DenseMatrix c(k, k);
  for (size_t a = 0; a < k; ++a) {
    const double* ru = u.row(terms[a].u);
    const double* rv = u.row(terms[a].v);
    double* crow = c.mutable_row(a);
    for (size_t b = 0; b < k; ++b) crow[b] = sign * (ru[b] - rv[b]);
    crow[a] += 1.0 / std::fabs(terms[a].weight_delta);
  }
  Result<CholeskyFactorization> factor = CholeskyFactorization::Factor(c);
  if (!factor.ok()) {
    return Status::NumericalError(
        "ApplyWoodburyUpdate: capacitance matrix is not positive definite "
        "(the update likely changes the component structure): " +
        factor.status().message());
  }

  // X = C^{-1} U^T (k x n), then the rank-k correction
  // L+ <- L+ - sign * U X, accumulated row by row.
  DenseMatrix ut(k, n);
  for (size_t i = 0; i < n; ++i) {
    const double* urow = u.row(i);
    for (size_t j = 0; j < k; ++j) ut(j, i) = urow[j];
  }
  const DenseMatrix x = factor->SolveMatrix(ut);
  for (size_t i = 0; i < n; ++i) {
    const double* urow = u.row(i);
    double* lrow = lplus->mutable_row(i);
    for (size_t j = 0; j < k; ++j) {
      const double scale = -sign * urow[j];
      const double* xrow = x.row(j);
      for (size_t t = 0; t < n; ++t) lrow[t] += scale * xrow[t];
    }
  }
  return Status::OK();
}

}  // namespace

Status ApplyWoodburyUpdate(const std::vector<IncidenceUpdate>& updates,
                           DenseMatrix* lplus) {
  CAD_CHECK(lplus != nullptr);
  CAD_CHECK(lplus->rows() == lplus->cols());
  const size_t n = lplus->rows();
  std::vector<IncidenceUpdate> increments;
  std::vector<IncidenceUpdate> decrements;
  for (const IncidenceUpdate& term : updates) {
    CAD_CHECK(term.u < n && term.v < n && term.u != term.v);
    if (term.weight_delta > 0.0) {
      increments.push_back(term);
    } else if (term.weight_delta < 0.0) {
      decrements.push_back(term);
    }
  }
  // Increments first: the intermediate matrix then corresponds to the graph
  // with all strengthened/new edges present, which keeps every decrement
  // within a still-connected component (given the caller's component-
  // equality precondition) until the final matrix is reached.
  CAD_RETURN_NOT_OK(ApplyPass(increments, 1.0, lplus));
  CAD_RETURN_NOT_OK(ApplyPass(decrements, -1.0, lplus));
  return Status::OK();
}

}  // namespace cad
