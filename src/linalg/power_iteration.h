#ifndef CAD_LINALG_POWER_ITERATION_H_
#define CAD_LINALG_POWER_ITERATION_H_

#include <vector>

#include "common/result.h"
#include "linalg/sparse_matrix.h"

namespace cad {

/// \brief Options for the power method.
struct PowerIterationOptions {
  size_t max_iterations = 1000;
  /// Stop when the iterate moves by less than this in max-norm.
  double tolerance = 1e-10;
  /// Diagonal shift sigma applied internally (iterating on A + sigma I and
  /// reporting eigenvalues of A). A positive shift breaks the +/- lambda tie
  /// on bipartite adjacency matrices, where vanilla power iteration
  /// oscillates forever. Negative means automatic: half the maximum absolute
  /// row sum. Zero disables shifting.
  double shift = -1.0;
};

/// \brief Result of a power-method run.
struct PowerIterationResult {
  /// Unit-norm eigenvector estimate for the dominant eigenvalue.
  std::vector<double> eigenvector;
  /// Rayleigh-quotient estimate of the dominant eigenvalue.
  double eigenvalue = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

/// \brief Dominant eigenvector of a square matrix by power iteration,
/// starting from the uniform vector.
///
/// Used by the ACT baseline (Ide & Kashima): the "activity vector" of a
/// snapshot is the principal eigenvector of its (entrywise non-negative)
/// adjacency matrix, which by Perron-Frobenius can be taken entrywise
/// non-negative; callers take absolute values to fix the sign. A zero matrix
/// yields the uniform vector with eigenvalue 0 (converged).
[[nodiscard]] Result<PowerIterationResult> PrincipalEigenvector(
    const CsrMatrix& a,
    const PowerIterationOptions& options = PowerIterationOptions());

}  // namespace cad

#endif  // CAD_LINALG_POWER_ITERATION_H_
