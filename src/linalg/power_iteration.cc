#include "linalg/power_iteration.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace cad {

Result<PowerIterationResult> PrincipalEigenvector(
    const CsrMatrix& a, const PowerIterationOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("PrincipalEigenvector: matrix must be square");
  }
  const size_t n = a.rows();
  PowerIterationResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Resolve the diagonal shift (see options.shift). For a non-negative
  // matrix this guarantees a strictly dominant eigenvalue lambda_1 + sigma.
  double sigma = options.shift;
  if (sigma < 0.0) {
    double max_abs_row_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double row_sum = 0.0;
      for (size_t p = a.RowBegin(i); p < a.RowEnd(i); ++p) {
        row_sum += std::fabs(a.values()[p]);
      }
      max_abs_row_sum = std::max(max_abs_row_sum, row_sum);
    }
    sigma = 0.5 * max_abs_row_sum;
  }

  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> y(n);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // y = (A + sigma I) x.
    for (size_t i = 0; i < n; ++i) y[i] = sigma * x[i];
    a.MultiplyAccumulate(1.0, x, &y);
    const double norm = Norm2(y);
    if (norm == 0.0) {
      // x is in the nullspace of the shifted matrix (e.g. zero matrix with
      // zero shift): dominant eigenvalue 0.
      result.eigenvector = x;
      result.eigenvalue = 0.0;
      result.iterations = iter + 1;
      result.converged = true;
      return result;
    }
    ScaleInPlace(1.0 / norm, &y);
    // Fix the sign so convergence is testable for negative eigenvalues.
    if (Dot(x, y) < 0.0) ScaleInPlace(-1.0, &y);
    const double step = MaxAbsDifference(x, y);
    x.swap(y);
    result.iterations = iter + 1;
    if (step < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  // Rayleigh quotient of the *unshifted* matrix with the final iterate.
  y.assign(n, 0.0);
  a.MultiplyAccumulate(1.0, x, &y);
  result.eigenvalue = Dot(x, y);
  result.eigenvector = std::move(x);
  return result;
}

}  // namespace cad
