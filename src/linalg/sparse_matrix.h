#ifndef CAD_LINALG_SPARSE_MATRIX_H_
#define CAD_LINALG_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace cad {

/// \brief What CsrMatrix::CheckValid should verify beyond the core CSR
/// structural invariants.
struct CsrValidateOptions {
  /// Additionally require the matrix to be square and symmetric (the
  /// Laplacian/adjacency contract of the solver entry points).
  bool require_symmetric = false;
  /// Absolute tolerance for the symmetry comparison.
  double symmetry_tol = 1e-12;
};

/// \brief A single nonzero in coordinate format.
struct Triplet {
  uint32_t row;
  uint32_t col;
  double value;
};

class CsrMatrix;
class CsrTilePlan;

/// \brief Coordinate-format builder for sparse matrices.
///
/// Accumulates (row, col, value) triplets in arbitrary order; duplicates are
/// summed when converting to CSR. This is the ingestion format for graph
/// adjacency and Laplacian construction.
class CooMatrix {
 public:
  CooMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return triplets_.size(); }

  /// Appends a triplet. Indices must be in range.
  void Add(uint32_t row, uint32_t col, double value) {
    CAD_DCHECK(row < rows_ && col < cols_);
    triplets_.push_back(Triplet{row, col, value});
  }

  /// Appends `value` at (row, col) and (col, row).
  void AddSymmetric(uint32_t row, uint32_t col, double value) {
    Add(row, col, value);
    if (row != col) Add(col, row, value);
  }

  void Reserve(size_t capacity) { triplets_.reserve(capacity); }

  const std::vector<Triplet>& triplets() const { return triplets_; }

  /// Converts to CSR. Duplicate coordinates are summed; entries that sum to
  /// exactly zero are kept (call CsrMatrix::Pruned to drop them).
  CsrMatrix ToCsr() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<Triplet> triplets_;
};

/// \brief Compressed sparse row matrix.
///
/// Immutable after construction. All large-graph computation (Laplacian
/// matvec inside CG, degree extraction, adjacency iteration) runs on this
/// representation.
class CsrMatrix {
 public:
  /// Creates an empty rows x cols matrix with no nonzeros.
  CsrMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), row_offsets_(rows + 1, 0) {}

  /// Creates a CSR matrix from raw arrays. `row_offsets` must have
  /// rows+1 entries, be non-decreasing, and end at col_indices.size().
  CsrMatrix(size_t rows, size_t cols, std::vector<size_t> row_offsets,
            std::vector<uint32_t> col_indices, std::vector<double> values);

  /// Tag type for the unsorted-rows constructor below.
  struct UnsortedRowsTag {};

  /// Raw-array constructor for matrices whose rows are intentionally *not*
  /// column-sorted — the degree-relabeled Laplacians built by
  /// PermuteCsrRows, where each row keeps its pre-permutation storage order
  /// so row sweeps replay the original floating-point sequence. Columns
  /// must still be in range, unique per row, and values finite; only the
  /// sortedness invariant is relaxed (see sorted_rows()).
  CsrMatrix(size_t rows, size_t cols, std::vector<size_t> row_offsets,
            std::vector<uint32_t> col_indices, std::vector<double> values,
            UnsortedRowsTag tag);

  /// True when every row's column indices are stored strictly increasing
  /// (the default). False only for matrices built with UnsortedRowsTag;
  /// those support the Multiply* sweeps, Diagonal and At (linear scan), but
  /// not order-dependent consumers (IC(0) factorization, tile plans).
  bool sorted_rows() const { return sorted_rows_; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  const std::vector<size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<uint32_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A x. Requires x.size() == cols().
  std::vector<double> Multiply(const std::vector<double>& x) const;

  /// y += alpha * A x (no allocation). Requires matching sizes.
  void MultiplyAccumulate(double alpha, const std::vector<double>& x,
                          std::vector<double>* y) const;

  /// Y = A X for a row-major cols() x k dense block (SpMM): one CSR sweep
  /// serves all k columns instead of k sweeps. Column c of the result is
  /// bit-identical to Multiply(column c of X) — the per-column accumulation
  /// order is unchanged, only the loop nest is. Resizes *y to rows() x k.
  void MultiplyBlock(const DenseMatrix& x, DenseMatrix* y) const;

  /// Y += alpha * A X, the block analog of MultiplyAccumulate (no resize;
  /// *y must already be rows() x X.cols()). Same bit-identity guarantee.
  void MultiplyAccumulateBlock(double alpha, const DenseMatrix& x,
                               DenseMatrix* y) const;

  /// Y = alpha * A X without reading Y first (no resize; *y must already be
  /// rows() x X.cols()). Each output is computed as `0.0 + alpha * sum`, so
  /// the result is bitwise identical to zero-filling Y and calling
  /// MultiplyAccumulateBlock — it just skips the extra write pass. Used by
  /// the lockstep CG loop, where Y is overwritten every iteration anyway.
  void MultiplyOverwriteBlock(double alpha, const DenseMatrix& x,
                              DenseMatrix* y) const;

  /// Cache-blocked Y += alpha * A X using a precomputed CsrTilePlan (built
  /// from this matrix; see CsrTilePlan::Build). Row blocks keep a small
  /// accumulator tile hot while column bands bound the working set of X
  /// gathers. Per row the nonzeros are visited in ascending-band,
  /// ascending-column order — exactly the sorted storage order — so every
  /// per-column partial-sum sequence matches MultiplyAccumulateBlock bit
  /// for bit.
  void MultiplyAccumulateBlockTiled(double alpha, const DenseMatrix& x,
                                    DenseMatrix* y,
                                    const CsrTilePlan& plan) const;

  /// Returns the entry at (row, col), or 0 if absent. O(log deg(row)) for
  /// sorted rows, O(deg(row)) otherwise.
  double At(uint32_t row, uint32_t col) const;

  /// Returns A^T.
  CsrMatrix Transpose() const;

  /// Returns a copy with entries |v| <= threshold removed.
  CsrMatrix Pruned(double threshold = 0.0) const;

  /// The main diagonal as a dense vector.
  std::vector<double> Diagonal() const;

  /// Row sums (for an adjacency matrix: weighted degrees).
  std::vector<double> RowSums() const;

  /// Sum of all stored values.
  double TotalSum() const;

  /// True if square and exactly symmetric in sparsity and values up to tol.
  bool IsSymmetric(double tol = 1e-12) const;

  /// \brief Full structural validation: row offsets non-decreasing and
  /// consistent with nnz, column indices strictly increasing (sorted,
  /// unique) within each row and in range, all values finite, plus the
  /// optional symmetry contract. O(nnz) (O(nnz log nnz) with symmetry).
  /// Intended for CAD_DCHECK_OK at solver entry points; returns the first
  /// violation found with row/position detail.
  [[nodiscard]] Status CheckValid(
      const CsrValidateOptions& options = CsrValidateOptions()) const;

  /// Densifies; intended for tests and small matrices only.
  DenseMatrix ToDense() const;

  /// Iteration support: [begin, end) positions of row i's nonzeros.
  size_t RowBegin(size_t i) const { return row_offsets_[i]; }
  size_t RowEnd(size_t i) const { return row_offsets_[i + 1]; }

 private:
  // Shared body of MultiplyAccumulateBlock / MultiplyOverwriteBlock; the
  // flag only changes how each finished row sum lands in Y.
  template <bool kOverwrite>
  void BlockProductImpl(double alpha, const DenseMatrix& x,
                        DenseMatrix* y) const;

  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_offsets_;
  std::vector<uint32_t> col_indices_;
  std::vector<double> values_;
  bool sorted_rows_ = true;
};

/// \brief Precomputed cache-blocking layout for
/// CsrMatrix::MultiplyAccumulateBlockTiled.
///
/// The matrix is cut into row blocks of `row_block` rows; within a block
/// the nonzeros are regrouped band-major: all entries with columns in band
/// 0 ([0, col_block)) first, then band 1, and so on, each band's entries
/// ordered by (row, column). The kernel walks one block's stream start to
/// finish, so X gathers stay inside one band (col_block * k doubles — sized
/// for L2) while the block's accumulator tile (row_block * k doubles) stays
/// in L1. Because bands partition the column range in ascending order, the
/// per-row visit order equals the sorted CSR storage order and the product
/// is bit-identical to the untiled kernel.
///
/// Build is O(nnz + rows * num_bands) once; the plan is immutable and
/// shared read-only across threads and CG iterations. Requires
/// matrix.sorted_rows() — relabeled (unsorted-row) matrices must keep their
/// stored order and cannot be re-banded without changing result bits.
class CsrTilePlan {
 public:
  /// A maximal run of one row's entries inside one (row block, band) cell.
  struct Segment {
    uint32_t local_row;  // row index within the row block
    uint32_t length;     // number of entries
  };

  /// Builds a plan for `matrix`. `row_block`/`col_block` of 0 pick defaults
  /// sized for `block_width`-column right-hand blocks (the solver's k).
  static CsrTilePlan Build(const CsrMatrix& matrix, size_t block_width,
                           size_t row_block = 0, size_t col_block = 0);

  size_t row_block() const { return row_block_; }
  size_t col_block() const { return col_block_; }
  size_t num_row_blocks() const {
    return block_segment_offsets_.empty() ? 0
                                          : block_segment_offsets_.size() - 1;
  }
  size_t rows() const { return rows_; }
  size_t nnz() const { return values_.size(); }

  const std::vector<uint32_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }
  const std::vector<Segment>& segments() const { return segments_; }
  /// Per row block: [first, last) segment indices.
  const std::vector<size_t>& block_segment_offsets() const {
    return block_segment_offsets_;
  }

 private:
  size_t rows_ = 0;
  size_t row_block_ = 0;
  size_t col_block_ = 0;
  std::vector<uint32_t> col_indices_;  // band-major reordered copy
  std::vector<double> values_;
  std::vector<Segment> segments_;
  std::vector<size_t> block_segment_offsets_;
};

}  // namespace cad

#endif  // CAD_LINALG_SPARSE_MATRIX_H_
