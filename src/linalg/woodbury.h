#ifndef CAD_LINALG_WOODBURY_H_
#define CAD_LINALG_WOODBURY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/dense_matrix.h"

namespace cad {

/// \brief One rank-one incidence term w (e_u - e_v)(e_u - e_v)^T of a
/// Laplacian update. `weight_delta` is the signed weight change: positive
/// for a strengthened or inserted edge, negative for a weakened or deleted
/// one.
struct IncidenceUpdate {
  uint32_t u = 0;
  uint32_t v = 0;
  double weight_delta = 0.0;
};

/// \brief In-place Sherman–Morrison–Woodbury rank-k update of a Laplacian
/// pseudoinverse under L' = L + sum_j w_j b_j b_j^T with b_j = e_u - e_v.
///
/// The update is applied in two passes — all increments (w_j > 0) first,
/// then all decrements — each via the Woodbury identity restricted to the
/// pseudoinverse's range:
///
///   increments:  L'+ = L+ - U (D + V)^{-1} U^T,   D = diag(1/w_j)
///   decrements:  L'+ = L+ + U (|D| - V)^{-1} U^T
///
/// with U = L+ B and V = B^T L+ B (the effective-resistance Gram matrix of
/// the changed pairs). Both capacitance systems are k x k, solved by dense
/// Cholesky, so the total cost is O(n^2 k + k^3) against the O(n^3) of a
/// full rebuild.
///
/// Validity precondition (checked by the *caller*, which has the graphs):
/// the connected-component structure must be identical before and after the
/// update. That makes every b_j range-compatible with L+ in both passes —
/// increments within existing components cannot merge anything, and
/// decrements that would disconnect a component show up here as a
/// non-positive-definite capacitance matrix, returned as NumericalError so
/// the caller can fall back to a full rebuild.
///
/// Terms with weight_delta == 0 are ignored. An empty update is a no-op.
[[nodiscard]] Status ApplyWoodburyUpdate(
    const std::vector<IncidenceUpdate>& updates, DenseMatrix* lplus);

}  // namespace cad

#endif  // CAD_LINALG_WOODBURY_H_
