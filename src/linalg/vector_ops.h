#ifndef CAD_LINALG_VECTOR_OPS_H_
#define CAD_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace cad {

/// Free-function kernels over `std::vector<double>`. Vectors are plain
/// containers throughout the library; these helpers keep the solver code
/// readable without introducing an expression-template vector type.

/// Dot product; sizes must match.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& a);

/// Squared Euclidean norm.
double SquaredNorm2(const std::vector<double>& a);

/// y += alpha * x; sizes must match.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// x *= alpha.
void ScaleInPlace(double alpha, std::vector<double>* x);

/// Returns a - b; sizes must match.
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Returns a + b; sizes must match.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Sum of all entries.
double Sum(const std::vector<double>& a);

/// max_i |a[i]|.
double MaxAbs(const std::vector<double>& a);

/// max_i |a[i] - b[i]|; sizes must match.
double MaxAbsDifference(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Constant vector of the given size.
std::vector<double> Constant(size_t n, double value);

}  // namespace cad

#endif  // CAD_LINALG_VECTOR_OPS_H_
