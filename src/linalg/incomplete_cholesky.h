#ifndef CAD_LINALG_INCOMPLETE_CHOLESKY_H_
#define CAD_LINALG_INCOMPLETE_CHOLESKY_H_

#include <vector>

#include "common/result.h"
#include "linalg/sparse_matrix.h"

namespace cad {

/// \brief Zero-fill incomplete Cholesky factorization IC(0) of a sparse
/// symmetric positive definite matrix, used as a CG preconditioner.
///
/// Computes a lower-triangular factor L with exactly the sparsity pattern of
/// the lower triangle of A such that L L^T ~= A. On graph Laplacians this
/// typically cuts PCG iteration counts by 2-4x over Jacobi at a modest
/// per-iteration cost (two sparse triangular solves); see the
/// `ablation_regularization` bench.
///
/// Breakdown handling: IC(0) can encounter non-positive pivots on matrices
/// that are SPD but far from diagonally dominant. `Factor` retries with an
/// increasing diagonal shift (factorizing A + shift * diag(A)) until the
/// factorization completes, which yields a valid (if weaker) preconditioner.
class IncompleteCholesky {
 public:
  /// Factorizes `a` (square, symmetric; checked in debug builds). Returns
  /// InvalidArgument for non-square input and NumericalError if even heavy
  /// shifting cannot complete the factorization (e.g. an indefinite matrix).
  [[nodiscard]] static Result<IncompleteCholesky> Factor(const CsrMatrix& a);

  /// Rebuilds a factorization from a previously computed lower factor and
  /// shift (checkpoint restore). The transpose is recomputed, which is
  /// deterministic, so the result applies identically to the original.
  static IncompleteCholesky FromFactor(CsrMatrix lower, double shift) {
    CsrMatrix transpose = lower.Transpose();
    return IncompleteCholesky(std::move(lower), std::move(transpose), shift);
  }

  /// Applies the preconditioner: solves L L^T x = b (two triangular
  /// solves). Requires b.size() == dimension().
  std::vector<double> Apply(const std::vector<double>& b) const;

  /// Blocked application: solves L L^T X = B for a row-major
  /// dimension() x k block in one pair of triangular sweeps. Column c is
  /// bit-identical to Apply(column c of B) — the per-column substitution
  /// order is unchanged. Resizes *x to match b.
  void ApplyBlock(const DenseMatrix& b, DenseMatrix* x) const;

  size_t dimension() const { return lower_.rows(); }

  /// The incomplete factor (lower triangular, diagonal included).
  const CsrMatrix& lower() const { return lower_; }

  /// The diagonal shift that was needed (0 when IC(0) succeeded directly).
  double shift_used() const { return shift_used_; }

 private:
  IncompleteCholesky(CsrMatrix lower, CsrMatrix lower_transpose, double shift)
      : lower_(std::move(lower)),
        lower_transpose_(std::move(lower_transpose)),
        shift_used_(shift) {}

  CsrMatrix lower_;
  CsrMatrix lower_transpose_;  // upper-triangular rows, for back substitution
  double shift_used_;
};

}  // namespace cad

#endif  // CAD_LINALG_INCOMPLETE_CHOLESKY_H_
