#ifndef CAD_LINALG_CHOLESKY_H_
#define CAD_LINALG_CHOLESKY_H_

#include <vector>

#include "common/result.h"
#include "linalg/dense_matrix.h"

namespace cad {

/// \brief Dense Cholesky factorization A = L L^T of a symmetric positive
/// definite matrix.
///
/// Used by the exact commute-time engine: the pseudoinverse of a connected
/// graph's Laplacian is obtained from the SPD matrix L + (1/n) 11^T, which is
/// factorized once and then solved against many right-hand sides.
class CholeskyFactorization {
 public:
  /// Factorizes `a`, which must be square and symmetric. Returns
  /// NumericalError if a non-positive pivot is encountered (matrix not
  /// positive definite to within `pivot_tol`).
  [[nodiscard]] static Result<CholeskyFactorization> Factor(const DenseMatrix& a,
                                              double pivot_tol = 1e-13);

  /// Solves A x = b. Requires b.size() == dimension().
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves A X = B column-wise, where B is dimension() x k.
  DenseMatrix SolveMatrix(const DenseMatrix& b) const;

  /// Computes A^{-1} by solving against the identity.
  DenseMatrix Inverse() const;

  size_t dimension() const { return lower_.rows(); }

  /// The lower-triangular factor (upper triangle is zero).
  const DenseMatrix& lower() const { return lower_; }

 private:
  explicit CholeskyFactorization(DenseMatrix lower)
      : lower_(std::move(lower)) {}

  DenseMatrix lower_;
};

}  // namespace cad

#endif  // CAD_LINALG_CHOLESKY_H_
