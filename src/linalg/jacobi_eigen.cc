#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/obs.h"

namespace cad {

namespace {

/// Frobenius norm of the strictly off-diagonal part.
double OffDiagonalNorm(const DenseMatrix& a) {
  double sum = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = i + 1; j < a.cols(); ++j) {
      sum += 2.0 * a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

}  // namespace

Result<EigenDecomposition> JacobiEigenDecomposition(
    const DenseMatrix& input, const JacobiOptions& options) {
  if (input.rows() != input.cols()) {
    return Status::InvalidArgument("JacobiEigen: matrix must be square");
  }
  if (!input.IsSymmetric(1e-9)) {
    return Status::InvalidArgument("JacobiEigen: matrix must be symmetric");
  }
  CAD_DCHECK_OK(input.CheckFinite());
  CAD_TRACE_SPAN("jacobi_eigen");
  CAD_METRIC_INC("jacobi.decompositions");
  const size_t n = input.rows();
  DenseMatrix a = input;
  DenseMatrix v = DenseMatrix::Identity(n);

  const double scale = std::max(input.FrobeniusNorm(), 1e-300);
  bool converged = (n <= 1) || OffDiagonalNorm(a) <= options.tolerance * scale;

  int sweeps_used = 0;
  for (int sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    ++sweeps_used;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        // Classic Jacobi rotation annihilating a(p,q).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        const double app = a(p, p);
        const double aqq = a(q, q);
        a(p, p) = app - t * apq;
        a(q, q) = aqq + t * apq;
        a(p, q) = 0.0;
        a(q, p) = 0.0;
        for (size_t k = 0; k < n; ++k) {
          if (k == p || k == q) continue;
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(p, k) = a(k, p);
          a(k, q) = s * akp + c * akq;
          a(q, k) = a(k, q);
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    converged = OffDiagonalNorm(a) <= options.tolerance * scale;
  }
  CAD_METRIC_ADD("jacobi.sweeps", static_cast<uint64_t>(sweeps_used));
  if (!converged) {
    return Status::NumericalError(
        "JacobiEigen: failed to converge in " +
        std::to_string(options.max_sweeps) + " sweeps");
  }

  // Sort eigenpairs ascending by eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&a](size_t x, size_t y) { return a(x, x) < a(y, y); });

  EigenDecomposition decomposition;
  decomposition.eigenvalues.resize(n);
  decomposition.eigenvectors = DenseMatrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    const size_t src = order[j];
    decomposition.eigenvalues[j] = a(src, src);
    for (size_t i = 0; i < n; ++i) {
      decomposition.eigenvectors(i, j) = v(i, src);
    }
  }
  return decomposition;
}

Result<DenseMatrix> SymmetricPseudoInverse(const DenseMatrix& a,
                                           double rank_tol) {
  CAD_DCHECK_OK(a.CheckFinite());
  CAD_TRACE_SPAN("pseudoinverse");
  CAD_METRIC_INC("jacobi.pseudoinverses");
  EigenDecomposition eig;
  CAD_ASSIGN_OR_RETURN(eig, JacobiEigenDecomposition(a));
  const size_t n = a.rows();
  double max_abs_eig = 0.0;
  for (double lambda : eig.eigenvalues) {
    max_abs_eig = std::max(max_abs_eig, std::fabs(lambda));
  }
  const double cutoff = rank_tol * std::max(max_abs_eig, 1e-300);

  // pinv(A) = V diag(1/lambda_i or 0) V^T.
  DenseMatrix pinv(n, n);
  for (size_t k = 0; k < n; ++k) {
    const double lambda = eig.eigenvalues[k];
    if (std::fabs(lambda) <= cutoff) continue;
    const double inv = 1.0 / lambda;
    for (size_t i = 0; i < n; ++i) {
      const double vik = eig.eigenvectors(i, k) * inv;
      if (vik == 0.0) continue;
      for (size_t j = 0; j < n; ++j) {
        pinv(i, j) += vik * eig.eigenvectors(j, k);
      }
    }
  }
  return pinv;
}

}  // namespace cad
