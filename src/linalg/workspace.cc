#include "linalg/workspace.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"

namespace cad {

DenseMatrix DenseWorkspace::Acquire(size_t rows, size_t cols) {
  const size_t need = rows * cols;
  std::vector<double> buffer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++acquires_;
    // Retired buffers are kept sorted by capacity (Release inserts in
    // order); best fit is the first one that's big enough.
    const auto it = std::lower_bound(
        retired_.begin(), retired_.end(), need,
        [](const std::vector<double>& held, size_t capacity) {
          return held.capacity() < capacity;
        });
    if (it != retired_.end()) {
      buffer = std::move(*it);
      retired_.erase(it);
      ++pool_hits_;
      CAD_METRIC_INC("workspace.pool_hits");
    }
    CAD_METRIC_INC("workspace.acquires");
  }
  buffer.assign(need, 0.0);
  return DenseMatrix(rows, cols, std::move(buffer));
}

void DenseWorkspace::Release(DenseMatrix&& matrix) {
  std::vector<double> buffer = std::move(matrix.mutable_data());
  if (buffer.capacity() == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto at = std::upper_bound(
      retired_.begin(), retired_.end(), buffer.capacity(),
      [](size_t capacity, const std::vector<double>& held) {
        return capacity < held.capacity();
      });
  retired_.insert(at, std::move(buffer));
}

void DenseWorkspace::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_.clear();
}

size_t DenseWorkspace::acquires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return acquires_;
}

size_t DenseWorkspace::pool_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pool_hits_;
}

size_t DenseWorkspace::retired_capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const std::vector<double>& buffer : retired_) {
    total += buffer.capacity();
  }
  return total;
}

}  // namespace cad
