#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cmath>

namespace cad {

CsrMatrix CooMatrix::ToCsr() const {
  // Counting sort by row, then sort each row's slice by column and merge
  // duplicates. Avoids a full O(nnz log nnz) global sort.
  std::vector<size_t> counts(rows_ + 1, 0);
  for (const Triplet& t : triplets_) ++counts[t.row + 1];
  for (size_t i = 0; i < rows_; ++i) counts[i + 1] += counts[i];

  std::vector<uint32_t> cols(triplets_.size());
  std::vector<double> vals(triplets_.size());
  {
    std::vector<size_t> cursor(counts.begin(), counts.end() - 1);
    for (const Triplet& t : triplets_) {
      const size_t pos = cursor[t.row]++;
      cols[pos] = t.col;
      vals[pos] = t.value;
    }
  }

  std::vector<size_t> row_offsets(rows_ + 1, 0);
  std::vector<uint32_t> out_cols;
  std::vector<double> out_vals;
  out_cols.reserve(triplets_.size());
  out_vals.reserve(triplets_.size());

  std::vector<std::pair<uint32_t, double>> row_buffer;
  for (size_t i = 0; i < rows_; ++i) {
    row_buffer.clear();
    for (size_t p = counts[i]; p < counts[i + 1]; ++p) {
      row_buffer.emplace_back(cols[p], vals[p]);
    }
    std::sort(row_buffer.begin(), row_buffer.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Merge duplicate columns by summation.
    for (size_t p = 0; p < row_buffer.size();) {
      const uint32_t col = row_buffer[p].first;
      double sum = 0.0;
      while (p < row_buffer.size() && row_buffer[p].first == col) {
        sum += row_buffer[p].second;
        ++p;
      }
      out_cols.push_back(col);
      out_vals.push_back(sum);
    }
    row_offsets[i + 1] = out_cols.size();
  }
  return CsrMatrix(rows_, cols_, std::move(row_offsets), std::move(out_cols),
                   std::move(out_vals));
}

CsrMatrix::CsrMatrix(size_t rows, size_t cols, std::vector<size_t> row_offsets,
                     std::vector<uint32_t> col_indices,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  CAD_CHECK_EQ(row_offsets_.size(), rows_ + 1);
  CAD_CHECK_EQ(col_indices_.size(), values_.size());
  CAD_CHECK_EQ(row_offsets_.back(), col_indices_.size());
  CAD_CHECK_EQ(row_offsets_.front(), 0u);
  CAD_DCHECK_OK(CheckValid());
}

Status CsrMatrix::CheckValid(const CsrValidateOptions& options) const {
  if (row_offsets_.size() != rows_ + 1) {
    return Status::Internal("CSR: row_offsets size " +
                            std::to_string(row_offsets_.size()) +
                            " != rows+1 = " + std::to_string(rows_ + 1));
  }
  if (col_indices_.size() != values_.size()) {
    return Status::Internal("CSR: col_indices/values size mismatch");
  }
  if (row_offsets_.front() != 0 || row_offsets_.back() != values_.size()) {
    return Status::Internal("CSR: row_offsets must start at 0 and end at nnz");
  }
  for (size_t i = 0; i < rows_; ++i) {
    if (row_offsets_[i] > row_offsets_[i + 1]) {
      return Status::Internal("CSR: row_offsets decrease at row " +
                              std::to_string(i));
    }
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      if (col_indices_[p] >= cols_) {
        return Status::Internal(
            "CSR: column index " + std::to_string(col_indices_[p]) +
            " out of range in row " + std::to_string(i));
      }
      if (p > row_offsets_[i] && col_indices_[p - 1] >= col_indices_[p]) {
        return Status::Internal(
            "CSR: column indices not sorted/unique in row " +
            std::to_string(i) + " (" + std::to_string(col_indices_[p - 1]) +
            " then " + std::to_string(col_indices_[p]) + ")");
      }
      if (!std::isfinite(values_[p])) {
        return Status::NumericalError("CSR: non-finite value at row " +
                                      std::to_string(i) + ", col " +
                                      std::to_string(col_indices_[p]));
      }
    }
  }
  if (options.require_symmetric && !IsSymmetric(options.symmetry_tol)) {
    return Status::Internal("CSR: matrix is not symmetric within tol " +
                            std::to_string(options.symmetry_tol));
  }
  return Status::OK();
}

std::vector<double> CsrMatrix::Multiply(const std::vector<double>& x) const {
  CAD_CHECK_EQ(x.size(), cols_);
  std::vector<double> y(rows_, 0.0);
  MultiplyAccumulate(1.0, x, &y);
  return y;
}

void CsrMatrix::MultiplyAccumulate(double alpha, const std::vector<double>& x,
                                   std::vector<double>* y) const {
  CAD_DCHECK(x.size() == cols_ && y->size() == rows_);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      sum += values_[p] * x[col_indices_[p]];
    }
    (*y)[i] += alpha * sum;
  }
}

void CsrMatrix::MultiplyBlock(const DenseMatrix& x, DenseMatrix* y) const {
  *y = DenseMatrix(rows_, x.cols());
  MultiplyAccumulateBlock(1.0, x, y);
}

void CsrMatrix::MultiplyAccumulateBlock(double alpha, const DenseMatrix& x,
                                        DenseMatrix* y) const {
  CAD_DCHECK(x.rows() == cols_ && y->rows() == rows_ &&
             y->cols() == x.cols());
  const size_t k = x.cols();
  // Per-row accumulators: column c follows the exact FP sequence of
  // MultiplyAccumulate on column c (a local sum over the row's nonzeros in
  // CSR order, then one `+= alpha * sum`), so the block product is
  // bit-identical to k independent SpMVs — the determinism contract the
  // block CG path relies on.
  std::vector<double> sums(k);
  const size_t k4 = k - k % 4;
  for (size_t i = 0; i < rows_; ++i) {
    std::fill(sums.begin(), sums.end(), 0.0);
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      const double v = values_[p];
      const double* xj = x.row(col_indices_[p]);
      size_t c = 0;
      for (; c < k4; c += 4) {
        sums[c] += v * xj[c];
        sums[c + 1] += v * xj[c + 1];
        sums[c + 2] += v * xj[c + 2];
        sums[c + 3] += v * xj[c + 3];
      }
      for (; c < k; ++c) sums[c] += v * xj[c];
    }
    double* yi = y->mutable_row(i);
    for (size_t c = 0; c < k; ++c) yi[c] += alpha * sums[c];
  }
}

double CsrMatrix::At(uint32_t row, uint32_t col) const {
  CAD_DCHECK(row < rows_ && col < cols_);
  const auto begin = col_indices_.begin() + static_cast<long>(row_offsets_[row]);
  const auto end = col_indices_.begin() + static_cast<long>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<size_t>(it - col_indices_.begin())];
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<size_t> offsets(cols_ + 1, 0);
  for (uint32_t col : col_indices_) ++offsets[col + 1];
  for (size_t i = 0; i < cols_; ++i) offsets[i + 1] += offsets[i];

  std::vector<uint32_t> out_cols(nnz());
  std::vector<double> out_vals(nnz());
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      const size_t pos = cursor[col_indices_[p]]++;
      out_cols[pos] = static_cast<uint32_t>(i);
      out_vals[pos] = values_[p];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(offsets), std::move(out_cols),
                   std::move(out_vals));
}

CsrMatrix CsrMatrix::Pruned(double threshold) const {
  std::vector<size_t> offsets(rows_ + 1, 0);
  std::vector<uint32_t> out_cols;
  std::vector<double> out_vals;
  out_cols.reserve(nnz());
  out_vals.reserve(nnz());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      if (std::fabs(values_[p]) > threshold) {
        out_cols.push_back(col_indices_[p]);
        out_vals.push_back(values_[p]);
      }
    }
    offsets[i + 1] = out_cols.size();
  }
  return CsrMatrix(rows_, cols_, std::move(offsets), std::move(out_cols),
                   std::move(out_vals));
}

std::vector<double> CsrMatrix::Diagonal() const {
  const size_t n = std::min(rows_, cols_);
  std::vector<double> diag(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    diag[i] = At(static_cast<uint32_t>(i), static_cast<uint32_t>(i));
  }
  return diag;
}

std::vector<double> CsrMatrix::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      sum += values_[p];
    }
    sums[i] = sum;
  }
  return sums;
}

double CsrMatrix::TotalSum() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

bool CsrMatrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      const uint32_t j = col_indices_[p];
      if (std::fabs(values_[p] - At(j, static_cast<uint32_t>(i))) > tol) {
        return false;
      }
    }
  }
  return true;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix dense(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      dense(i, col_indices_[p]) += values_[p];
    }
  }
  return dense;
}

}  // namespace cad
