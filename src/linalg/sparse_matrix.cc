#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cmath>

namespace cad {

CsrMatrix CooMatrix::ToCsr() const {
  // Counting sort by row, then sort each row's slice by column and merge
  // duplicates. Avoids a full O(nnz log nnz) global sort.
  std::vector<size_t> counts(rows_ + 1, 0);
  for (const Triplet& t : triplets_) ++counts[t.row + 1];
  for (size_t i = 0; i < rows_; ++i) counts[i + 1] += counts[i];

  std::vector<uint32_t> cols(triplets_.size());
  std::vector<double> vals(triplets_.size());
  {
    std::vector<size_t> cursor(counts.begin(), counts.end() - 1);
    for (const Triplet& t : triplets_) {
      const size_t pos = cursor[t.row]++;
      cols[pos] = t.col;
      vals[pos] = t.value;
    }
  }

  std::vector<size_t> row_offsets(rows_ + 1, 0);
  std::vector<uint32_t> out_cols;
  std::vector<double> out_vals;
  out_cols.reserve(triplets_.size());
  out_vals.reserve(triplets_.size());

  std::vector<std::pair<uint32_t, double>> row_buffer;
  for (size_t i = 0; i < rows_; ++i) {
    row_buffer.clear();
    for (size_t p = counts[i]; p < counts[i + 1]; ++p) {
      row_buffer.emplace_back(cols[p], vals[p]);
    }
    std::sort(row_buffer.begin(), row_buffer.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Merge duplicate columns by summation.
    for (size_t p = 0; p < row_buffer.size();) {
      const uint32_t col = row_buffer[p].first;
      double sum = 0.0;
      while (p < row_buffer.size() && row_buffer[p].first == col) {
        sum += row_buffer[p].second;
        ++p;
      }
      out_cols.push_back(col);
      out_vals.push_back(sum);
    }
    row_offsets[i + 1] = out_cols.size();
  }
  return CsrMatrix(rows_, cols_, std::move(row_offsets), std::move(out_cols),
                   std::move(out_vals));
}

CsrMatrix::CsrMatrix(size_t rows, size_t cols, std::vector<size_t> row_offsets,
                     std::vector<uint32_t> col_indices,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  CAD_CHECK_EQ(row_offsets_.size(), rows_ + 1);
  CAD_CHECK_EQ(col_indices_.size(), values_.size());
  CAD_CHECK_EQ(row_offsets_.back(), col_indices_.size());
  CAD_CHECK_EQ(row_offsets_.front(), 0u);
  CAD_DCHECK_OK(CheckValid());
}

CsrMatrix::CsrMatrix(size_t rows, size_t cols, std::vector<size_t> row_offsets,
                     std::vector<uint32_t> col_indices,
                     std::vector<double> values, UnsortedRowsTag /*tag*/)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)),
      sorted_rows_(false) {
  CAD_CHECK_EQ(row_offsets_.size(), rows_ + 1);
  CAD_CHECK_EQ(col_indices_.size(), values_.size());
  CAD_CHECK_EQ(row_offsets_.back(), col_indices_.size());
  CAD_CHECK_EQ(row_offsets_.front(), 0u);
  CAD_DCHECK_OK(CheckValid());
}

Status CsrMatrix::CheckValid(const CsrValidateOptions& options) const {
  if (row_offsets_.size() != rows_ + 1) {
    return Status::Internal("CSR: row_offsets size " +
                            std::to_string(row_offsets_.size()) +
                            " != rows+1 = " + std::to_string(rows_ + 1));
  }
  if (col_indices_.size() != values_.size()) {
    return Status::Internal("CSR: col_indices/values size mismatch");
  }
  if (row_offsets_.front() != 0 || row_offsets_.back() != values_.size()) {
    return Status::Internal("CSR: row_offsets must start at 0 and end at nnz");
  }
  // Unsorted-row matrices relax the ordering invariant but keep uniqueness,
  // checked with a last-seen-row stamp per column instead of an adjacency
  // comparison.
  std::vector<size_t> column_stamp;
  if (!sorted_rows_) column_stamp.assign(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    if (row_offsets_[i] > row_offsets_[i + 1]) {
      return Status::Internal("CSR: row_offsets decrease at row " +
                              std::to_string(i));
    }
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      if (col_indices_[p] >= cols_) {
        return Status::Internal(
            "CSR: column index " + std::to_string(col_indices_[p]) +
            " out of range in row " + std::to_string(i));
      }
      if (sorted_rows_) {
        if (p > row_offsets_[i] && col_indices_[p - 1] >= col_indices_[p]) {
          return Status::Internal(
              "CSR: column indices not sorted/unique in row " +
              std::to_string(i) + " (" + std::to_string(col_indices_[p - 1]) +
              " then " + std::to_string(col_indices_[p]) + ")");
        }
      } else {
        if (column_stamp[col_indices_[p]] == i) {
          return Status::Internal("CSR: duplicate column index " +
                                  std::to_string(col_indices_[p]) +
                                  " in unsorted row " + std::to_string(i));
        }
        column_stamp[col_indices_[p]] = i;
      }
      if (!std::isfinite(values_[p])) {
        return Status::NumericalError("CSR: non-finite value at row " +
                                      std::to_string(i) + ", col " +
                                      std::to_string(col_indices_[p]));
      }
    }
  }
  if (options.require_symmetric && !IsSymmetric(options.symmetry_tol)) {
    return Status::Internal("CSR: matrix is not symmetric within tol " +
                            std::to_string(options.symmetry_tol));
  }
  return Status::OK();
}

std::vector<double> CsrMatrix::Multiply(const std::vector<double>& x) const {
  CAD_CHECK_EQ(x.size(), cols_);
  std::vector<double> y(rows_, 0.0);
  MultiplyAccumulate(1.0, x, &y);
  return y;
}

void CsrMatrix::MultiplyAccumulate(double alpha, const std::vector<double>& x,
                                   std::vector<double>* y) const {
  CAD_DCHECK(x.size() == cols_ && y->size() == rows_);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      sum += values_[p] * x[col_indices_[p]];
    }
    (*y)[i] += alpha * sum;
  }
}

void CsrMatrix::MultiplyBlock(const DenseMatrix& x, DenseMatrix* y) const {
  *y = DenseMatrix(rows_, x.cols());
  MultiplyAccumulateBlock(1.0, x, y);
}

namespace {

/// Accumulates columns [c0, c0 + W) of one CSR row into W compile-time
/// register accumulators. The per-column arithmetic is exactly the scalar
/// kernel's: a local sum over the row's nonzeros in storage order, nothing
/// else — W only controls how many independent column sums advance per
/// entry load, so the result is bit-identical at any W. Keeping the sums in
/// a fixed-size local array (instead of a heap vector the compiler must
/// assume aliased) lets them live in registers across the whole row: the
/// inner loop issues no stores, which is worth ~2-3x on the CG hot sweep.
template <size_t W, bool kOverwrite>
inline void AccumulateRowChunk(const double* values, const uint32_t* cols,
                               size_t begin, size_t end, const double* x,
                               size_t stride, size_t c0, double alpha,
                               double* yi) {
  double sums[W] = {0.0};
  // The column stream is sequential (hardware-prefetched) but the X rows it
  // gathers are not; issuing the row address a few entries ahead hides the
  // DRAM latency that otherwise dominates power-law rows. Prefetch is a
  // hint — it cannot change the arithmetic.
  constexpr size_t kPrefetchAhead = 8;
  for (size_t p = begin; p < end; ++p) {
    if (p + kPrefetchAhead < end) {
      __builtin_prefetch(
          x + static_cast<size_t>(cols[p + kPrefetchAhead]) * stride + c0);
    }
    const double v = values[p];
    const double* xj = x + static_cast<size_t>(cols[p]) * stride + c0;
    for (size_t w = 0; w < W; ++w) sums[w] += v * xj[w];
  }
  for (size_t w = 0; w < W; ++w) {
    // The overwrite form spells out `0.0 +` so its result is bitwise the
    // accumulate form applied to a zero-filled Y (0.0 + (-0.0) is +0.0,
    // exactly as `fill(0); y += v` would produce).
    yi[c0 + w] = kOverwrite ? 0.0 + alpha * sums[w] : yi[c0 + w] + alpha * sums[w];
  }
}

/// One row of the block product for k <= 16, dispatched to the exact
/// compile-time width so the whole row runs in one pass with k register
/// accumulators.
template <bool kOverwrite>
inline void AccumulateRowNarrow(const double* values, const uint32_t* cols,
                                size_t begin, size_t end, const double* x,
                                size_t k, double alpha, double* yi) {
  switch (k) {
    case 1: AccumulateRowChunk<1, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 2: AccumulateRowChunk<2, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 3: AccumulateRowChunk<3, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 4: AccumulateRowChunk<4, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 5: AccumulateRowChunk<5, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 6: AccumulateRowChunk<6, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 7: AccumulateRowChunk<7, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 8: AccumulateRowChunk<8, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 9: AccumulateRowChunk<9, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 10: AccumulateRowChunk<10, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 11: AccumulateRowChunk<11, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 12: AccumulateRowChunk<12, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 13: AccumulateRowChunk<13, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 14: AccumulateRowChunk<14, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 15: AccumulateRowChunk<15, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    case 16: AccumulateRowChunk<16, kOverwrite>(values, cols, begin, end, x, k, 0, alpha, yi); break;
    default: break;
  }
}

}  // namespace

template <bool kOverwrite>
void CsrMatrix::BlockProductImpl(double alpha, const DenseMatrix& x,
                                 DenseMatrix* y) const {
  CAD_DCHECK(x.rows() == cols_ && y->rows() == rows_ &&
             y->cols() == x.cols());
  const size_t k = x.cols();
  // Per-row accumulators: column c follows the exact FP sequence of
  // MultiplyAccumulate on column c (a local sum over the row's nonzeros in
  // CSR order, then one `+= alpha * sum`), so the block product is
  // bit-identical to k independent SpMVs — the determinism contract the
  // block CG path relies on. For k <= 16 the row dispatches to a
  // compile-time width with register accumulators (AccumulateRowChunk);
  // wider blocks keep the single-pass heap accumulators. Neither variant
  // mixes columns, so neither can change bits.
  if (k >= 1 && k <= 16) {
    const double* xd = x.data().data();
    for (size_t i = 0; i < rows_; ++i) {
      AccumulateRowNarrow<kOverwrite>(values_.data(), col_indices_.data(),
                                      row_offsets_[i], row_offsets_[i + 1],
                                      xd, k, alpha, y->mutable_row(i));
    }
    return;
  }
  std::vector<double> sums(k);
  const size_t k4 = k - k % 4;
  for (size_t i = 0; i < rows_; ++i) {
    std::fill(sums.begin(), sums.end(), 0.0);
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      const double v = values_[p];
      const double* xj = x.row(col_indices_[p]);
      size_t c = 0;
      for (; c < k4; c += 4) {
        sums[c] += v * xj[c];
        sums[c + 1] += v * xj[c + 1];
        sums[c + 2] += v * xj[c + 2];
        sums[c + 3] += v * xj[c + 3];
      }
      for (; c < k; ++c) sums[c] += v * xj[c];
    }
    double* yi = y->mutable_row(i);
    for (size_t c = 0; c < k; ++c) {
      yi[c] = kOverwrite ? 0.0 + alpha * sums[c] : yi[c] + alpha * sums[c];
    }
  }
}

void CsrMatrix::MultiplyAccumulateBlock(double alpha, const DenseMatrix& x,
                                        DenseMatrix* y) const {
  BlockProductImpl<false>(alpha, x, y);
}

void CsrMatrix::MultiplyOverwriteBlock(double alpha, const DenseMatrix& x,
                                       DenseMatrix* y) const {
  BlockProductImpl<true>(alpha, x, y);
}

void CsrMatrix::MultiplyAccumulateBlockTiled(double alpha,
                                             const DenseMatrix& x,
                                             DenseMatrix* y,
                                             const CsrTilePlan& plan) const {
  CAD_DCHECK(x.rows() == cols_ && y->rows() == rows_ &&
             y->cols() == x.cols());
  CAD_DCHECK_EQ(plan.rows(), rows_);
  CAD_DCHECK_EQ(plan.nnz(), nnz());
  const size_t k = x.cols();
  const size_t k4 = k - k % 4;
  const size_t row_block = plan.row_block();
  const std::vector<uint32_t>& cols = plan.col_indices();
  const std::vector<double>& vals = plan.values();
  const std::vector<CsrTilePlan::Segment>& segments = plan.segments();
  const std::vector<size_t>& block_offsets = plan.block_segment_offsets();

  // One accumulator tile per row block, identical per-column arithmetic to
  // the untiled kernel's `sums`: each row's products arrive in ascending
  // column order (bands ascending, columns ascending within a band), and
  // the tile row is folded into Y with a single `+= alpha * sum`.
  std::vector<double> tile(row_block * k);
  size_t pos = 0;
  for (size_t block = 0; block + 1 < block_offsets.size(); ++block) {
    const size_t first_row = block * row_block;
    const size_t rows_here = std::min(row_block, rows_ - first_row);
    std::fill(tile.begin(), tile.begin() + rows_here * k, 0.0);
    for (size_t s = block_offsets[block]; s < block_offsets[block + 1]; ++s) {
      const CsrTilePlan::Segment segment = segments[s];
      double* sums = tile.data() + static_cast<size_t>(segment.local_row) * k;
      for (uint32_t e = 0; e < segment.length; ++e, ++pos) {
        const double v = vals[pos];
        const double* xj = x.row(cols[pos]);
        size_t c = 0;
        for (; c < k4; c += 4) {
          sums[c] += v * xj[c];
          sums[c + 1] += v * xj[c + 1];
          sums[c + 2] += v * xj[c + 2];
          sums[c + 3] += v * xj[c + 3];
        }
        for (; c < k; ++c) sums[c] += v * xj[c];
      }
    }
    for (size_t r = 0; r < rows_here; ++r) {
      double* yi = y->mutable_row(first_row + r);
      const double* sums = tile.data() + r * k;
      for (size_t c = 0; c < k; ++c) yi[c] += alpha * sums[c];
    }
  }
}

CsrTilePlan CsrTilePlan::Build(const CsrMatrix& matrix, size_t block_width,
                               size_t row_block, size_t col_block) {
  CAD_CHECK(matrix.sorted_rows());
  const size_t rows = matrix.rows();
  const size_t cols = matrix.cols();
  const size_t k = std::max<size_t>(block_width, 1);
  if (row_block == 0) {
    // Accumulator tile ~ 32 KiB: hot in L1 next to the streamed matrix.
    row_block = std::max<size_t>(16, 4096 / k);
  }
  if (col_block == 0) {
    // Band of X ~ 512 KiB: the gather working set fits mid-level cache.
    col_block = std::max<size_t>(1024, 65536 / k);
  }
  CsrTilePlan plan;
  plan.rows_ = rows;
  plan.row_block_ = row_block;
  plan.col_block_ = col_block;
  if (rows == 0) {
    plan.block_segment_offsets_.assign(1, 0);
    return plan;
  }
  const size_t num_blocks = (rows + row_block - 1) / row_block;
  const size_t num_bands = (cols + col_block - 1) / col_block;
  plan.col_indices_.resize(matrix.nnz());
  plan.values_.resize(matrix.nnz());
  plan.block_segment_offsets_.reserve(num_blocks + 1);
  plan.block_segment_offsets_.push_back(0);

  const std::vector<uint32_t>& src_cols = matrix.col_indices();
  const std::vector<double>& src_vals = matrix.values();
  std::vector<size_t> cursor(row_block);
  size_t out = 0;
  for (size_t block = 0; block < num_blocks; ++block) {
    const size_t first_row = block * row_block;
    const size_t rows_here = std::min(row_block, rows - first_row);
    for (size_t r = 0; r < rows_here; ++r) {
      cursor[r] = matrix.RowBegin(first_row + r);
    }
    for (size_t band = 0; band < num_bands; ++band) {
      const size_t band_end_col = std::min(cols, (band + 1) * col_block);
      for (size_t r = 0; r < rows_here; ++r) {
        const size_t row_end = matrix.RowEnd(first_row + r);
        size_t p = cursor[r];
        const size_t start = p;
        while (p < row_end && src_cols[p] < band_end_col) ++p;
        if (p > start) {
          plan.segments_.push_back(Segment{static_cast<uint32_t>(r),
                                           static_cast<uint32_t>(p - start)});
          std::copy(src_cols.begin() + static_cast<long>(start),
                    src_cols.begin() + static_cast<long>(p),
                    plan.col_indices_.begin() + static_cast<long>(out));
          std::copy(src_vals.begin() + static_cast<long>(start),
                    src_vals.begin() + static_cast<long>(p),
                    plan.values_.begin() + static_cast<long>(out));
          out += p - start;
          cursor[r] = p;
        }
      }
    }
    plan.block_segment_offsets_.push_back(plan.segments_.size());
  }
  CAD_CHECK_EQ(out, matrix.nnz());
  return plan;
}

double CsrMatrix::At(uint32_t row, uint32_t col) const {
  CAD_DCHECK(row < rows_ && col < cols_);
  if (!sorted_rows_) {
    for (size_t p = row_offsets_[row]; p < row_offsets_[row + 1]; ++p) {
      if (col_indices_[p] == col) return values_[p];
    }
    return 0.0;
  }
  const auto begin = col_indices_.begin() + static_cast<long>(row_offsets_[row]);
  const auto end = col_indices_.begin() + static_cast<long>(row_offsets_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<size_t>(it - col_indices_.begin())];
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<size_t> offsets(cols_ + 1, 0);
  for (uint32_t col : col_indices_) ++offsets[col + 1];
  for (size_t i = 0; i < cols_; ++i) offsets[i + 1] += offsets[i];

  std::vector<uint32_t> out_cols(nnz());
  std::vector<double> out_vals(nnz());
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      const size_t pos = cursor[col_indices_[p]]++;
      out_cols[pos] = static_cast<uint32_t>(i);
      out_vals[pos] = values_[p];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(offsets), std::move(out_cols),
                   std::move(out_vals));
}

CsrMatrix CsrMatrix::Pruned(double threshold) const {
  std::vector<size_t> offsets(rows_ + 1, 0);
  std::vector<uint32_t> out_cols;
  std::vector<double> out_vals;
  out_cols.reserve(nnz());
  out_vals.reserve(nnz());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      if (std::fabs(values_[p]) > threshold) {
        out_cols.push_back(col_indices_[p]);
        out_vals.push_back(values_[p]);
      }
    }
    offsets[i + 1] = out_cols.size();
  }
  if (!sorted_rows_) {
    // Pruning preserves the stored order, so the unsorted tag carries over.
    return CsrMatrix(rows_, cols_, std::move(offsets), std::move(out_cols),
                     std::move(out_vals), UnsortedRowsTag());
  }
  return CsrMatrix(rows_, cols_, std::move(offsets), std::move(out_cols),
                   std::move(out_vals));
}

std::vector<double> CsrMatrix::Diagonal() const {
  const size_t n = std::min(rows_, cols_);
  std::vector<double> diag(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    diag[i] = At(static_cast<uint32_t>(i), static_cast<uint32_t>(i));
  }
  return diag;
}

std::vector<double> CsrMatrix::RowSums() const {
  std::vector<double> sums(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      sum += values_[p];
    }
    sums[i] = sum;
  }
  return sums;
}

double CsrMatrix::TotalSum() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

bool CsrMatrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      const uint32_t j = col_indices_[p];
      if (std::fabs(values_[p] - At(j, static_cast<uint32_t>(i))) > tol) {
        return false;
      }
    }
  }
  return true;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix dense(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      dense(i, col_indices_[p]) += values_[p];
    }
  }
  return dense;
}

}  // namespace cad
