#ifndef CAD_LINALG_CONJUGATE_GRADIENT_H_
#define CAD_LINALG_CONJUGATE_GRADIENT_H_

#include <vector>

#include "common/result.h"
#include "linalg/dense_matrix.h"
#include "linalg/incomplete_cholesky.h"
#include "linalg/sparse_matrix.h"
#include "linalg/workspace.h"

namespace cad {

/// \brief Preconditioner choices for PCG.
enum class CgPreconditioner {
  /// Plain CG.
  kNone,
  /// Diagonal scaling. Cheap; helps on heterogeneous degree distributions.
  kJacobi,
  /// Zero-fill incomplete Cholesky (IC(0)). Stronger; typically 2-4x fewer
  /// iterations on graph Laplacians at the cost of two sparse triangular
  /// solves per iteration and an upfront factorization.
  kIncompleteCholesky,
};

const char* CgPreconditionerToString(CgPreconditioner preconditioner);

/// \brief Options for the (preconditioned) conjugate gradient solver.
struct CgOptions {
  /// Relative residual target: stop when ||b - Ax|| <= tolerance * ||b||.
  double tolerance = 1e-8;
  /// Iteration cap; 0 means 10 * n + 100.
  size_t max_iterations = 0;
  CgPreconditioner preconditioner = CgPreconditioner::kJacobi;
  /// Worker threads for SolveMany (the k right-hand sides are independent);
  /// 1 = serial. The preconditioner is built once and shared read-only.
  size_t num_threads = 1;
  /// Route SolveMany through SolveBlock: all systems advance in lockstep
  /// sharing each sparse sweep (SpMM) instead of running k independent
  /// SpMV-at-a-time solves. Solutions and iteration counts are bit-identical
  /// to the per-RHS path; only the memory-access pattern changes.
  bool use_block_solver = false;
  /// Run SolveBlock's SpMM sweeps through a precomputed cache-blocking plan
  /// (CsrTilePlan): row-block accumulator tiles plus column bands that keep
  /// the gather working set cache-resident. The plan visits each row's
  /// nonzeros in their sorted storage order, so results stay bit-identical;
  /// the plan build (O(nnz), once per SolveBlock) is amortized over the CG
  /// iterations. Ignored for unsorted-row (relabeled) matrices, whose
  /// stored order must not be re-banded.
  bool tiled_spmm = false;
};

/// \brief Optional cross-call state for a solve: an initial-guess block and
/// a prebuilt IC(0) factorization. Both are borrowed and must outlive the
/// call; both default to "absent", which reproduces the stateless behavior.
struct CgSolveContext {
  /// n x k initial guesses, column c seeding system c (n x 1 for Solve).
  /// nullptr starts every system from the zero vector. A guess adds one
  /// extra residual evaluation up front and can return in 0 iterations.
  const DenseMatrix* initial_guess = nullptr;
  /// Reuse this IC(0) factor instead of refactorizing. Consulted only when
  /// options.preconditioner == kIncompleteCholesky; see
  /// commute/solver_cache.h for the staleness policy that feeds it.
  const IncompleteCholesky* cached_factor = nullptr;
  /// Row visitation order for SolveBlock's cross-row reductions (norms and
  /// dot products): when set (size n, a permutation), reduction j reads row
  /// (*reduction_order)[j] instead of row j. The degree-relabeled solve
  /// passes its original-id -> solver-row map here so every reduction
  /// accumulates in *original node order*, replaying the unrelabeled FP
  /// sequence exactly — this is what makes relabeling bit-invisible.
  /// Elementwise sweeps (axpy, Jacobi) are row-independent and ignore it.
  /// Only honored by SolveBlock; leave unset for identity layouts.
  const std::vector<uint32_t>* reduction_order = nullptr;
  /// Buffer pool for the solve's dense temporaries (residual/direction/
  /// product blocks and per-chunk staging). nullptr allocates per call.
  /// Pooled buffers are re-zeroed on acquire, so results are bitwise
  /// independent of whether a pool is supplied.
  DenseWorkspace* workspace = nullptr;
};

/// \brief Outcome of a CG solve.
struct CgSummary {
  size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// \brief Aggregate over the per-RHS summaries of one SolveMany batch.
/// Iteration counts are deterministic for a fixed system/rhs/options tuple
/// (each solve's arithmetic is sequential), so identical batches produce
/// identical stats regardless of CgOptions::num_threads.
struct CgBatchStats {
  size_t num_systems = 0;
  size_t num_converged = 0;
  size_t min_iterations = 0;
  size_t max_iterations = 0;
  size_t total_iterations = 0;
  /// Largest relative residual across the batch (worst-converged system).
  double max_relative_residual = 0.0;
};

/// Folds a batch of per-RHS summaries into CgBatchStats.
CgBatchStats SummarizeCgBatch(const std::vector<CgSummary>& summaries);

/// \brief Preconditioned conjugate gradient for symmetric positive
/// (semi-)definite systems A x = b.
///
/// This is the practical stand-in for the Spielman-Teng near-linear solver
/// referenced by the paper (see DESIGN.md, substitutions): the approximate
/// commute-time embedding solves k = O(log n) systems against the graph
/// Laplacian through this interface.
///
/// For singular-but-consistent systems (e.g. the Laplacian of a connected
/// graph with a right-hand side orthogonal to the all-ones vector), CG
/// converges to the minimum-norm-compatible solution provided `x0` has no
/// nullspace component; callers solving Laplacian systems should either
/// project `b` or use the epsilon-regularized Laplacian.
class ConjugateGradientSolver {
 public:
  explicit ConjugateGradientSolver(CgOptions options = CgOptions())
      : options_(options) {}

  /// Solves A x = b starting from the zero vector. `a` must be square and
  /// symmetric (checked in debug builds only, for cost reasons). Writes the
  /// solution into *x and returns a summary. Returns NumericalError only on
  /// a breakdown (indefinite matrix); non-convergence is reported via
  /// `CgSummary::converged` so that callers can decide how strict to be.
  ///
  /// With kIncompleteCholesky the factorization is computed per call unless
  /// a prebuilt factor is supplied via CgSolveContext; SolveMany/SolveBlock
  /// additionally amortize one factorization across right-hand sides.
  [[nodiscard]] Result<CgSummary> Solve(const CsrMatrix& a, const std::vector<double>& b,
                          std::vector<double>* x) const;

  /// Solve with an initial guess: starts from `x0` instead of the zero
  /// vector, converging in 0 iterations when x0 already satisfies the
  /// residual target (the temporal warm-start path). With x0 = 0 this is
  /// numerically equivalent to the overload above.
  [[nodiscard]] Result<CgSummary> Solve(const CsrMatrix& a, const std::vector<double>& b,
                          const std::vector<double>& x0,
                          std::vector<double>* x) const;

  /// Solves A x_i = b_i for several right-hand sides, building the
  /// preconditioner once. Returns one summary per system; `solutions` is
  /// resized to match. With options().use_block_solver the systems are
  /// solved in lockstep via SolveBlock (bit-identical results).
  [[nodiscard]] Result<std::vector<CgSummary>> SolveMany(
      const CsrMatrix& a, const std::vector<std::vector<double>>& rhs,
      std::vector<std::vector<double>>* solutions) const;

  /// SolveMany with warm-start state: initial guesses (column c of
  /// context.initial_guess seeds system c) and/or a cached IC(0) factor.
  [[nodiscard]] Result<std::vector<CgSummary>> SolveMany(
      const CsrMatrix& a, const std::vector<std::vector<double>>& rhs,
      std::vector<std::vector<double>>* solutions,
      const CgSolveContext& context) const;

  /// Lockstep block solve of A X = B for a row-major n x k right-hand-side
  /// block: every CG iteration advances all still-unconverged systems
  /// through one shared SpMM sweep with per-system scalars (alpha, beta,
  /// residual norms) and a convergence mask that freezes finished columns.
  /// Per system the floating-point operation sequence is exactly the serial
  /// Solve sequence, so solutions, residuals, and iteration counts are
  /// bit-identical to k independent Solve calls — at any num_threads
  /// (columns are chunked across threads; chunking never mixes columns).
  /// Writes the n x k solution block into *x.
  [[nodiscard]] Result<std::vector<CgSummary>> SolveBlock(
      const CsrMatrix& a, const DenseMatrix& b, DenseMatrix* x,
      const CgSolveContext& context = CgSolveContext()) const;

  const CgOptions& options() const { return options_; }

 private:
  CgOptions options_;
};

}  // namespace cad

#endif  // CAD_LINALG_CONJUGATE_GRADIENT_H_
