#ifndef CAD_LINALG_CONJUGATE_GRADIENT_H_
#define CAD_LINALG_CONJUGATE_GRADIENT_H_

#include <vector>

#include "common/result.h"
#include "linalg/sparse_matrix.h"

namespace cad {

/// \brief Preconditioner choices for PCG.
enum class CgPreconditioner {
  /// Plain CG.
  kNone,
  /// Diagonal scaling. Cheap; helps on heterogeneous degree distributions.
  kJacobi,
  /// Zero-fill incomplete Cholesky (IC(0)). Stronger; typically 2-4x fewer
  /// iterations on graph Laplacians at the cost of two sparse triangular
  /// solves per iteration and an upfront factorization.
  kIncompleteCholesky,
};

const char* CgPreconditionerToString(CgPreconditioner preconditioner);

/// \brief Options for the (preconditioned) conjugate gradient solver.
struct CgOptions {
  /// Relative residual target: stop when ||b - Ax|| <= tolerance * ||b||.
  double tolerance = 1e-8;
  /// Iteration cap; 0 means 10 * n + 100.
  size_t max_iterations = 0;
  CgPreconditioner preconditioner = CgPreconditioner::kJacobi;
  /// Worker threads for SolveMany (the k right-hand sides are independent);
  /// 1 = serial. The preconditioner is built once and shared read-only.
  size_t num_threads = 1;
};

/// \brief Outcome of a CG solve.
struct CgSummary {
  size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// \brief Aggregate over the per-RHS summaries of one SolveMany batch.
/// Iteration counts are deterministic for a fixed system/rhs/options tuple
/// (each solve's arithmetic is sequential), so identical batches produce
/// identical stats regardless of CgOptions::num_threads.
struct CgBatchStats {
  size_t num_systems = 0;
  size_t num_converged = 0;
  size_t min_iterations = 0;
  size_t max_iterations = 0;
  size_t total_iterations = 0;
  /// Largest relative residual across the batch (worst-converged system).
  double max_relative_residual = 0.0;
};

/// Folds a batch of per-RHS summaries into CgBatchStats.
CgBatchStats SummarizeCgBatch(const std::vector<CgSummary>& summaries);

/// \brief Preconditioned conjugate gradient for symmetric positive
/// (semi-)definite systems A x = b.
///
/// This is the practical stand-in for the Spielman-Teng near-linear solver
/// referenced by the paper (see DESIGN.md, substitutions): the approximate
/// commute-time embedding solves k = O(log n) systems against the graph
/// Laplacian through this interface.
///
/// For singular-but-consistent systems (e.g. the Laplacian of a connected
/// graph with a right-hand side orthogonal to the all-ones vector), CG
/// converges to the minimum-norm-compatible solution provided `x0` has no
/// nullspace component; callers solving Laplacian systems should either
/// project `b` or use the epsilon-regularized Laplacian.
class ConjugateGradientSolver {
 public:
  explicit ConjugateGradientSolver(CgOptions options = CgOptions())
      : options_(options) {}

  /// Solves A x = b starting from the zero vector. `a` must be square and
  /// symmetric (checked in debug builds only, for cost reasons). Writes the
  /// solution into *x and returns a summary. Returns NumericalError only on
  /// a breakdown (indefinite matrix); non-convergence is reported via
  /// `CgSummary::converged` so that callers can decide how strict to be.
  ///
  /// With kIncompleteCholesky the factorization is recomputed per call; use
  /// SolveMany to amortize it across right-hand sides.
  [[nodiscard]] Result<CgSummary> Solve(const CsrMatrix& a, const std::vector<double>& b,
                          std::vector<double>* x) const;

  /// Solves A x_i = b_i for several right-hand sides, building the
  /// preconditioner once. Returns one summary per system; `solutions` is
  /// resized to match.
  [[nodiscard]] Result<std::vector<CgSummary>> SolveMany(
      const CsrMatrix& a, const std::vector<std::vector<double>>& rhs,
      std::vector<std::vector<double>>* solutions) const;

  const CgOptions& options() const { return options_; }

 private:
  CgOptions options_;
};

}  // namespace cad

#endif  // CAD_LINALG_CONJUGATE_GRADIENT_H_
