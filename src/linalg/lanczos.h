#ifndef CAD_LINALG_LANCZOS_H_
#define CAD_LINALG_LANCZOS_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/sparse_matrix.h"

namespace cad {

/// \brief Options for the Lanczos extreme-eigenpair solver.
struct LanczosOptions {
  /// Number of eigenpairs to return from the requested end of the spectrum.
  size_t num_eigenpairs = 2;
  /// Krylov subspace dimension; 0 means min(n, 4 * num_eigenpairs + 40).
  size_t max_subspace = 0;
  /// Residual target ||A v - lambda v|| <= tolerance * ||A||_F for
  /// convergence reporting (results are returned either way).
  double tolerance = 1e-8;
  /// Seed for the random start vector.
  uint64_t seed = 3;
};

/// \brief Result of a Lanczos run: `eigenvalues[i]` with the matching column
/// i of `eigenvectors` (n x k), plus per-pair residual norms.
struct LanczosResult {
  std::vector<double> eigenvalues;
  DenseMatrix eigenvectors;
  std::vector<double> residuals;
  bool converged = false;
};

/// \brief Computes the `num_eigenpairs` algebraically smallest eigenpairs of
/// a sparse symmetric matrix via Lanczos with full reorthogonalization.
///
/// Used for Laplacian eigenmap embeddings at scale (the paper's Fig. 2 plots
/// the 2nd and 3rd smallest Laplacian eigenvectors): the smallest
/// eigenvalues of a PSD Laplacian are an extreme end of the spectrum, which
/// Lanczos approximates well from a Krylov space of modest dimension. Full
/// reorthogonalization keeps the basis numerically orthogonal, which is
/// affordable at the subspace sizes used here.
[[nodiscard]] Result<LanczosResult> SmallestEigenpairs(
    const CsrMatrix& a, const LanczosOptions& options = LanczosOptions());

/// \brief Same, for the algebraically largest eigenpairs.
[[nodiscard]] Result<LanczosResult> LargestEigenpairs(
    const CsrMatrix& a, const LanczosOptions& options = LanczosOptions());

}  // namespace cad

#endif  // CAD_LINALG_LANCZOS_H_
