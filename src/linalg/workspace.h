#ifndef CAD_LINALG_WORKSPACE_H_
#define CAD_LINALG_WORKSPACE_H_

#include <cstddef>
#include <mutex>
#include <vector>

#include "linalg/dense_matrix.h"

namespace cad {

/// \brief A pool of reusable dense-matrix backing buffers.
///
/// The per-snapshot hot path allocates the same handful of n x k blocks
/// (JL right-hand sides, CG residual/direction/product temporaries,
/// solution staging) every window, churning hundreds of megabytes through
/// the allocator at the million-node scale. The workspace retires those
/// buffers instead and re-issues them on the next Acquire.
///
/// Acquire returns a zero-filled matrix — byte-for-byte the state a fresh
/// `DenseMatrix(rows, cols)` starts in — so a pooled computation produces
/// bitwise-identical results to the malloc path; only where the bytes live
/// changes. Release accepts any matrix (shape-independent: the flat buffer
/// is what's recycled).
///
/// Thread-safe: Acquire/Release take an internal mutex. Calls happen at
/// solve boundaries (a handful per window), never inside iteration loops,
/// so contention is nil.
class DenseWorkspace {
 public:
  DenseWorkspace() = default;
  DenseWorkspace(const DenseWorkspace&) = delete;
  DenseWorkspace& operator=(const DenseWorkspace&) = delete;

  /// A zero-filled rows x cols matrix, backed by a retired buffer when one
  /// of sufficient capacity exists (largest-first), freshly allocated
  /// otherwise.
  DenseMatrix Acquire(size_t rows, size_t cols);

  /// Retires a matrix's buffer into the pool. The matrix is consumed.
  void Release(DenseMatrix&& matrix);

  /// Drops all retired buffers (e.g. after a node-count change makes the
  /// old capacity class useless).
  void Clear();

  /// Lifetime counters, for tests and the obs layer.
  size_t acquires() const;
  size_t pool_hits() const;
  /// Total doubles currently held by retired buffers.
  size_t retired_capacity() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<double>> retired_;
  size_t acquires_ = 0;
  size_t pool_hits_ = 0;
};

/// \brief RAII handle: acquires from a workspace when one is given, falls
/// back to a plain allocation otherwise, and releases on destruction. Keeps
/// call sites free of nullptr plumbing.
class PooledDense {
 public:
  PooledDense(DenseWorkspace* workspace, size_t rows, size_t cols)
      : workspace_(workspace),
        matrix_(workspace != nullptr ? workspace->Acquire(rows, cols)
                                     : DenseMatrix(rows, cols)) {}
  ~PooledDense() {
    if (workspace_ != nullptr) workspace_->Release(std::move(matrix_));
  }
  PooledDense(const PooledDense&) = delete;
  PooledDense& operator=(const PooledDense&) = delete;

  DenseMatrix& get() { return matrix_; }
  const DenseMatrix& get() const { return matrix_; }

 private:
  DenseWorkspace* workspace_;
  DenseMatrix matrix_;
};

}  // namespace cad

#endif  // CAD_LINALG_WORKSPACE_H_
