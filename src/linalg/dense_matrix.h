#ifndef CAD_LINALG_DENSE_MATRIX_H_
#define CAD_LINALG_DENSE_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace cad {

/// \brief Row-major dense matrix of doubles.
///
/// This is the workhorse for the *exact* commute-time path (Laplacian
/// pseudoinverse, Eq. 3 of the paper), which is used on small graphs such as
/// the 17-node toy example and the 151-node Enron-style network. Large
/// graphs go through the sparse/approximate path instead.
class DenseMatrix {
 public:
  /// Creates an empty 0x0 matrix.
  DenseMatrix() = default;

  /// Creates a rows x cols matrix initialized to zero.
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a matrix from row-major data. `data.size()` must equal
  /// rows * cols.
  DenseMatrix(size_t rows, size_t cols, std::vector<double> data);

  DenseMatrix(const DenseMatrix&) = default;
  DenseMatrix& operator=(const DenseMatrix&) = default;
  DenseMatrix(DenseMatrix&&) = default;
  DenseMatrix& operator=(DenseMatrix&&) = default;

  /// The n x n identity.
  static DenseMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t i, size_t j) {
    CAD_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    CAD_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Pointer to the start of row `i`.
  const double* row(size_t i) const {
    CAD_DCHECK(i < rows_);
    return data_.data() + i * cols_;
  }
  double* mutable_row(size_t i) {
    CAD_DCHECK(i < rows_);
    return data_.data() + i * cols_;
  }

  /// Matrix-vector product y = A x. Requires x.size() == cols().
  std::vector<double> Multiply(const std::vector<double>& x) const;

  /// Matrix-matrix product A * other. Requires cols() == other.rows().
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// Returns A^T.
  DenseMatrix Transpose() const;

  /// Elementwise sum; shapes must match.
  DenseMatrix Add(const DenseMatrix& other) const;

  /// Elementwise difference; shapes must match.
  DenseMatrix Subtract(const DenseMatrix& other) const;

  /// Returns s * A.
  DenseMatrix Scale(double s) const;

  /// max_{i,j} |A(i,j) - B(i,j)|; shapes must match.
  double MaxAbsDifference(const DenseMatrix& other) const;

  /// True if the matrix is square and |A(i,j)-A(j,i)| <= tol for all i,j.
  bool IsSymmetric(double tol = 1e-12) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// \brief Structural validation for CAD_DCHECK_OK at dense-solver entry
  /// points: data size matches rows*cols and every entry is finite. O(n*m).
  [[nodiscard]] Status CheckFinite() const;

  /// \brief Validates this matrix has exactly the given shape.
  [[nodiscard]] Status CheckShape(size_t expected_rows,
                                  size_t expected_cols) const;

  /// Debug rendering, one row per line.
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace cad

#endif  // CAD_LINALG_DENSE_MATRIX_H_
