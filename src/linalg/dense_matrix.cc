#include "linalg/dense_matrix.h"

#include <cmath>
#include <sstream>

namespace cad {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  CAD_CHECK_EQ(data_.size(), rows_ * cols_);
}

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix eye(n, n);
  for (size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

std::vector<double> DenseMatrix::Multiply(const std::vector<double>& x) const {
  CAD_CHECK_EQ(x.size(), cols_);
  std::vector<double> y(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = row(i);
    double sum = 0.0;
    for (size_t j = 0; j < cols_; ++j) sum += a[j] * x[j];
    y[i] = sum;
  }
  return y;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  CAD_CHECK_EQ(cols_, other.rows());
  DenseMatrix out(rows_, other.cols());
  // i-k-j loop order for cache-friendly access of both operands.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = row(i);
    double* o = out.mutable_row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = other.row(k);
      for (size_t j = 0; j < other.cols(); ++j) o[j] += aik * b[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = row(i);
    for (size_t j = 0; j < cols_; ++j) out(j, i) = a[j];
  }
  return out;
}

DenseMatrix DenseMatrix::Add(const DenseMatrix& other) const {
  CAD_CHECK(rows_ == other.rows() && cols_ == other.cols());
  DenseMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

DenseMatrix DenseMatrix::Subtract(const DenseMatrix& other) const {
  CAD_CHECK(rows_ == other.rows() && cols_ == other.cols());
  DenseMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

DenseMatrix DenseMatrix::Scale(double s) const {
  DenseMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = s * data_[i];
  return out;
}

double DenseMatrix::MaxAbsDifference(const DenseMatrix& other) const {
  CAD_CHECK(rows_ == other.rows() && cols_ == other.cols());
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

bool DenseMatrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

Status DenseMatrix::CheckFinite() const {
  if (data_.size() != rows_ * cols_) {
    return Status::Internal("DenseMatrix: data size " +
                            std::to_string(data_.size()) + " != " +
                            std::to_string(rows_) + "x" +
                            std::to_string(cols_));
  }
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = row(i);
    for (size_t j = 0; j < cols_; ++j) {
      if (!std::isfinite(a[j])) {
        return Status::NumericalError(
            "DenseMatrix: non-finite entry at (" + std::to_string(i) + ", " +
            std::to_string(j) + ")");
      }
    }
  }
  return Status::OK();
}

Status DenseMatrix::CheckShape(size_t expected_rows,
                               size_t expected_cols) const {
  if (rows_ != expected_rows || cols_ != expected_cols) {
    return Status::InvalidArgument(
        "DenseMatrix: shape " + std::to_string(rows_) + "x" +
        std::to_string(cols_) + " != expected " +
        std::to_string(expected_rows) + "x" + std::to_string(expected_cols));
  }
  return Status::OK();
}

std::string DenseMatrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = row(i);
    for (size_t j = 0; j < cols_; ++j) {
      if (j != 0) os << " ";
      os << a[j];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cad
