#include "linalg/incomplete_cholesky.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/obs.h"

namespace cad {

namespace {

/// Attempts IC(0) of a + shift * diag(a). Returns the lower factor in CSR
/// (sorted columns, diagonal last in each row) or an error on breakdown.
Result<CsrMatrix> TryFactor(const CsrMatrix& a, double shift) {
  const size_t n = a.rows();
  // Extract the lower-triangle pattern row by row (columns ascending, so
  // the diagonal is each row's last entry).
  std::vector<size_t> offsets(n + 1, 0);
  std::vector<uint32_t> cols;
  std::vector<double> vals;
  cols.reserve(a.nnz() / 2 + n);
  vals.reserve(a.nnz() / 2 + n);
  for (size_t i = 0; i < n; ++i) {
    bool has_diagonal = false;
    for (size_t p = a.RowBegin(i); p < a.RowEnd(i); ++p) {
      const uint32_t j = a.col_indices()[p];
      if (j > i) break;  // columns sorted; rest is upper triangle
      double value = a.values()[p];
      if (j == i) {
        value *= (1.0 + shift);
        has_diagonal = true;
      }
      cols.push_back(j);
      vals.push_back(value);
    }
    if (!has_diagonal) {
      return Status::NumericalError(
          "IncompleteCholesky: zero diagonal at row " + std::to_string(i));
    }
    offsets[i + 1] = cols.size();
  }

  // In-place IC(0): process rows in order; for entry (i, k) use the already
  // finished rows. Two-pointer merges exploit sorted columns.
  for (size_t i = 0; i < n; ++i) {
    const size_t row_begin = offsets[i];
    const size_t row_end = offsets[i + 1];
    for (size_t p = row_begin; p < row_end; ++p) {
      const uint32_t k = cols[p];
      // dot = sum_{j < k} L(i, j) * L(k, j) over the shared pattern.
      double dot = 0.0;
      {
        size_t pi = row_begin;
        size_t pk = offsets[k];
        const size_t k_end = offsets[k + 1];
        while (pi < p && pk < k_end && cols[pk] < k) {
          if (cols[pi] == cols[pk]) {
            dot += vals[pi] * vals[pk];
            ++pi;
            ++pk;
          } else if (cols[pi] < cols[pk]) {
            ++pi;
          } else {
            ++pk;
          }
        }
      }
      if (k == i) {
        const double pivot = vals[p] - dot;
        if (pivot <= 0.0) {
          return Status::NumericalError(
              "IncompleteCholesky: non-positive pivot at row " +
              std::to_string(i));
        }
        vals[p] = std::sqrt(pivot);
      } else {
        // L(k, k) is the last entry of row k.
        const double lkk = vals[offsets[k + 1] - 1];
        vals[p] = (vals[p] - dot) / lkk;
      }
    }
  }
  return CsrMatrix(n, n, std::move(offsets), std::move(cols), std::move(vals));
}

}  // namespace

Result<IncompleteCholesky> IncompleteCholesky::Factor(const CsrMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("IncompleteCholesky: matrix must be square");
  }
  CAD_DCHECK(a.IsSymmetric(1e-9));
  CAD_DCHECK_OK(a.CheckValid());
  CAD_TRACE_SPAN("ic0_factor");
  double shift = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Result<CsrMatrix> lower = TryFactor(a, shift);
    if (lower.ok()) {
      CAD_METRIC_INC("ic0.factorizations");
      CAD_METRIC_ADD("ic0.shift_retries", static_cast<uint64_t>(attempt));
      // The shift sequence is deterministic for a given matrix, so this
      // gauge stays reproducible across runs and thread counts.
      CAD_METRIC_SET("ic0.last_shift", shift);
      CsrMatrix transpose = lower->Transpose();
      return IncompleteCholesky(std::move(lower).ValueOrDie(),
                                std::move(transpose), shift);
    }
    shift = shift == 0.0 ? 1e-3 : shift * 10.0;
  }
  return Status::NumericalError(
      "IncompleteCholesky: factorization failed even with diagonal shift; "
      "matrix is likely not positive definite");
}

std::vector<double> IncompleteCholesky::Apply(
    const std::vector<double>& b) const {
  const size_t n = dimension();
  CAD_CHECK_EQ(b.size(), n);
  // Forward substitution L y = b (diagonal is each row's last entry).
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    const size_t end = lower_.RowEnd(i);
    for (size_t p = lower_.RowBegin(i); p + 1 < end; ++p) {
      sum -= lower_.values()[p] * y[lower_.col_indices()[p]];
    }
    y[i] = sum / lower_.values()[end - 1];
  }
  // Back substitution L^T x = y using the transpose's (upper-triangular)
  // rows, whose first entry is the diagonal.
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = y[i];
    const size_t begin = lower_transpose_.RowBegin(i);
    for (size_t p = begin + 1; p < lower_transpose_.RowEnd(i); ++p) {
      sum -= lower_transpose_.values()[p] * x[lower_transpose_.col_indices()[p]];
    }
    x[i] = sum / lower_transpose_.values()[begin];
  }
  return x;
}

void IncompleteCholesky::ApplyBlock(const DenseMatrix& b,
                                    DenseMatrix* x) const {
  const size_t n = dimension();
  const size_t k = b.cols();
  CAD_CHECK_EQ(b.rows(), n);
  // Each column follows exactly the scalar Apply substitution order (terms
  // subtracted in CSR position order, then one division), so the block
  // application is bit-identical to k scalar applications.
  const size_t k4 = k - k % 4;
  const auto accumulate_row = [k, k4](double coeff, const double* src,
                                      double* sums) {
    size_t c = 0;
    for (; c < k4; c += 4) {
      sums[c] -= coeff * src[c];
      sums[c + 1] -= coeff * src[c + 1];
      sums[c + 2] -= coeff * src[c + 2];
      sums[c + 3] -= coeff * src[c + 3];
    }
    for (; c < k; ++c) sums[c] -= coeff * src[c];
  };

  // Forward substitution L Y = B (diagonal is each row's last entry).
  DenseMatrix y(n, k);
  std::vector<double> sums(k);
  for (size_t i = 0; i < n; ++i) {
    const double* bi = b.row(i);
    std::copy(bi, bi + k, sums.begin());
    const size_t end = lower_.RowEnd(i);
    for (size_t p = lower_.RowBegin(i); p + 1 < end; ++p) {
      accumulate_row(lower_.values()[p], y.row(lower_.col_indices()[p]),
                     sums.data());
    }
    const double diag = lower_.values()[end - 1];
    double* yi = y.mutable_row(i);
    for (size_t c = 0; c < k; ++c) yi[c] = sums[c] / diag;
  }
  // Back substitution L^T X = Y using the transpose's (upper-triangular)
  // rows, whose first entry is the diagonal.
  *x = DenseMatrix(n, k);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    const double* yi = y.row(i);
    std::copy(yi, yi + k, sums.begin());
    const size_t begin = lower_transpose_.RowBegin(i);
    for (size_t p = begin + 1; p < lower_transpose_.RowEnd(i); ++p) {
      accumulate_row(lower_transpose_.values()[p],
                     x->row(lower_transpose_.col_indices()[p]), sums.data());
    }
    const double diag = lower_transpose_.values()[begin];
    double* xi = x->mutable_row(i);
    for (size_t c = 0; c < k; ++c) xi[c] = sums[c] / diag;
  }
}

}  // namespace cad
