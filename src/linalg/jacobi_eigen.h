#ifndef CAD_LINALG_JACOBI_EIGEN_H_
#define CAD_LINALG_JACOBI_EIGEN_H_

#include <vector>

#include "common/result.h"
#include "linalg/dense_matrix.h"

namespace cad {

/// \brief Full eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  std::vector<double> eigenvalues;
  /// Column j of `eigenvectors` is the unit eigenvector for eigenvalues[j].
  DenseMatrix eigenvectors;
};

/// \brief Options for the cyclic Jacobi eigensolver.
struct JacobiOptions {
  /// Convergence threshold on the Frobenius norm of the off-diagonal part,
  /// relative to the Frobenius norm of the input.
  double tolerance = 1e-12;
  /// Maximum number of full sweeps over all off-diagonal pairs.
  int max_sweeps = 64;
};

/// \brief Computes all eigenvalues and eigenvectors of a symmetric matrix
/// using the cyclic Jacobi rotation method.
///
/// O(n^3) per sweep with typically <15 sweeps; intended for the small dense
/// matrices of the exact path (spectral embeddings of the toy and Enron-scale
/// graphs, Fig. 2 of the paper). Returns InvalidArgument for non-square or
/// non-symmetric input and NumericalError if convergence fails.
[[nodiscard]] Result<EigenDecomposition> JacobiEigenDecomposition(
    const DenseMatrix& a, const JacobiOptions& options = JacobiOptions());

/// \brief Moore-Penrose pseudoinverse of a symmetric matrix via its
/// eigendecomposition. Eigenvalues with |lambda| <= rank_tol * max|lambda|
/// are treated as zero.
///
/// This is the textbook route to the Laplacian pseudoinverse L^+ used in the
/// commute-time formula c(i,j) = V_G (l^+_ii + l^+_jj - 2 l^+_ij).
[[nodiscard]] Result<DenseMatrix> SymmetricPseudoInverse(const DenseMatrix& a,
                                           double rank_tol = 1e-10);

}  // namespace cad

#endif  // CAD_LINALG_JACOBI_EIGEN_H_
