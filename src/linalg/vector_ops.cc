#include "linalg/vector_ops.h"

#include <cmath>

#include "common/check.h"

namespace cad {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  CAD_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

double SquaredNorm2(const std::vector<double>& a) { return Dot(a, a); }

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  CAD_DCHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void ScaleInPlace(double alpha, std::vector<double>* x) {
  for (double& v : *x) v *= alpha;
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  CAD_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  CAD_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

double Sum(const std::vector<double>& a) {
  double sum = 0.0;
  for (double v : a) sum += v;
  return sum;
}

double MaxAbs(const std::vector<double>& a) {
  double max_abs = 0.0;
  for (double v : a) max_abs = std::max(max_abs, std::fabs(v));
  return max_abs;
}

double MaxAbsDifference(const std::vector<double>& a,
                        const std::vector<double>& b) {
  CAD_DCHECK(a.size() == b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

std::vector<double> Constant(size_t n, double value) {
  return std::vector<double>(n, value);
}

}  // namespace cad
