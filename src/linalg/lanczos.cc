#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/vector_ops.h"

namespace cad {

namespace {

Result<LanczosResult> ExtremeEigenpairs(const CsrMatrix& a,
                                        const LanczosOptions& options,
                                        bool smallest) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Lanczos: matrix must be square");
  }
  const size_t n = a.rows();
  if (options.num_eigenpairs == 0) {
    return Status::InvalidArgument("Lanczos: num_eigenpairs must be > 0");
  }
  if (options.num_eigenpairs > n) {
    return Status::InvalidArgument("Lanczos: more eigenpairs than dimension");
  }

  const size_t subspace =
      std::min(n, options.max_subspace > 0 ? options.max_subspace
                                           : 4 * options.num_eigenpairs + 40);

  // Lanczos with full reorthogonalization: build an orthonormal Krylov
  // basis q_0..q_{m-1} and the tridiagonal projection T (alpha on the
  // diagonal, beta off-diagonal).
  Rng rng(options.seed);
  std::vector<std::vector<double>> basis;
  basis.reserve(subspace);
  std::vector<double> alpha;
  std::vector<double> beta;

  std::vector<double> q(n);
  for (double& v : q) v = rng.Normal();
  ScaleInPlace(1.0 / std::max(Norm2(q), 1e-300), &q);
  basis.push_back(q);

  std::vector<double> w(n);
  for (size_t j = 0; j < subspace; ++j) {
    w.assign(n, 0.0);
    a.MultiplyAccumulate(1.0, basis[j], &w);
    alpha.push_back(Dot(basis[j], w));
    // w -= alpha_j q_j + beta_{j-1} q_{j-1}, then reorthogonalize against
    // the whole basis (twice is enough in practice; once suffices with the
    // full sweep below).
    Axpy(-alpha[j], basis[j], &w);
    if (j > 0) Axpy(-beta[j - 1], basis[j - 1], &w);
    for (const std::vector<double>& prior : basis) {
      Axpy(-Dot(prior, w), prior, &w);
    }
    const double norm = Norm2(w);
    if (j + 1 == subspace || norm < 1e-12) {
      // Invariant subspace found (or subspace exhausted).
      break;
    }
    beta.push_back(norm);
    ScaleInPlace(1.0 / norm, &w);
    basis.push_back(w);
  }

  const size_t m = basis.size();
  if (options.num_eigenpairs > m) {
    return Status::NumericalError(
        "Lanczos: Krylov space collapsed at dimension " + std::to_string(m) +
        " < requested " + std::to_string(options.num_eigenpairs));
  }

  // Eigendecomposition of the small tridiagonal T.
  DenseMatrix t(m, m);
  for (size_t i = 0; i < m; ++i) {
    t(i, i) = alpha[i];
    if (i + 1 < m) {
      t(i, i + 1) = beta[i];
      t(i + 1, i) = beta[i];
    }
  }
  EigenDecomposition ritz;
  CAD_ASSIGN_OR_RETURN(ritz, JacobiEigenDecomposition(t));

  // Select the requested end of the Ritz spectrum (eigenvalues ascending).
  const size_t k = options.num_eigenpairs;
  LanczosResult result;
  result.eigenvalues.resize(k);
  result.eigenvectors = DenseMatrix(n, k);
  result.residuals.resize(k);
  const double scale = std::max(1e-300, [&a] {
    double sum = 0.0;
    for (double v : a.values()) sum += v * v;
    return std::sqrt(sum);
  }());

  result.converged = true;
  for (size_t out = 0; out < k; ++out) {
    const size_t src = smallest ? out : m - 1 - out;
    result.eigenvalues[out] = ritz.eigenvalues[src];
    // Ritz vector: v = Q y.
    std::vector<double> v(n, 0.0);
    for (size_t j = 0; j < m; ++j) {
      Axpy(ritz.eigenvectors(j, src), basis[j], &v);
    }
    const double v_norm = Norm2(v);
    if (v_norm > 0.0) ScaleInPlace(1.0 / v_norm, &v);
    // Residual ||A v - lambda v||.
    std::vector<double> av(n, 0.0);
    a.MultiplyAccumulate(1.0, v, &av);
    Axpy(-result.eigenvalues[out], v, &av);
    result.residuals[out] = Norm2(av);
    if (result.residuals[out] > options.tolerance * scale) {
      result.converged = false;
    }
    for (size_t i = 0; i < n; ++i) result.eigenvectors(i, out) = v[i];
  }
  // Keep ascending order for the "largest" variant too.
  if (!smallest) {
    std::reverse(result.eigenvalues.begin(), result.eigenvalues.end());
    std::reverse(result.residuals.begin(), result.residuals.end());
    DenseMatrix reversed(n, k);
    for (size_t c = 0; c < k; ++c) {
      for (size_t i = 0; i < n; ++i) {
        reversed(i, c) = result.eigenvectors(i, k - 1 - c);
      }
    }
    result.eigenvectors = std::move(reversed);
  }
  return result;
}

}  // namespace

Result<LanczosResult> SmallestEigenpairs(const CsrMatrix& a,
                                         const LanczosOptions& options) {
  return ExtremeEigenpairs(a, options, /*smallest=*/true);
}

Result<LanczosResult> LargestEigenpairs(const CsrMatrix& a,
                                        const LanczosOptions& options) {
  return ExtremeEigenpairs(a, options, /*smallest=*/false);
}

}  // namespace cad
