#include "io/dot_writer.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/check.h"

namespace cad {

namespace {

std::string EscapeDotLabel(const std::string& label) {
  std::string escaped;
  for (char c : label) {
    if (c == '"' || c == '\\') escaped += '\\';
    escaped += c;
  }
  return escaped;
}

}  // namespace

Status WriteDot(const WeightedGraph& graph, const DotOptions& options,
                std::ostream* out) {
  CAD_CHECK(out != nullptr);
  if (!options.node_names.empty() &&
      options.node_names.size() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "node_names size must be 0 or num_nodes, got " +
        std::to_string(options.node_names.size()));
  }
  const auto is_highlighted_node = [&options](NodeId node) {
    return std::count(options.highlighted_nodes.begin(),
                      options.highlighted_nodes.end(), node) > 0;
  };
  const auto is_highlighted_edge = [&options](NodePair pair) {
    return std::count(options.highlighted_edges.begin(),
                      options.highlighted_edges.end(), pair) > 0;
  };

  (*out) << "graph cad {\n  layout=neato;\n  overlap=false;\n";
  const std::vector<size_t> degrees = graph.Degrees();
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    if (!options.include_isolated && degrees[node] == 0 &&
        !is_highlighted_node(node)) {
      continue;
    }
    (*out) << "  n" << node;
    (*out) << " [label=\""
           << EscapeDotLabel(options.node_names.empty()
                                 ? std::to_string(node)
                                 : options.node_names[node])
           << "\"";
    if (is_highlighted_node(node)) {
      (*out) << ", style=filled, fillcolor=\"#e74c3c\", fontcolor=white";
    }
    (*out) << "];\n";
  }
  for (const Edge& edge : graph.Edges()) {
    (*out) << "  n" << edge.u << " -- n" << edge.v << " [penwidth="
           << std::max(0.2, edge.weight * options.weight_to_penwidth);
    if (is_highlighted_edge(NodePair::Make(edge.u, edge.v))) {
      (*out) << ", color=\"#e74c3c\"";
    }
    (*out) << "];\n";
  }
  (*out) << "}\n";
  if (!out->good()) return Status::IoError("dot stream write failed");
  return Status::OK();
}

Status WriteDotFile(const WeightedGraph& graph, const DotOptions& options,
                    const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return WriteDot(graph, options, &file);
}

}  // namespace cad
