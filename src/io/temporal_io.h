#ifndef CAD_IO_TEMPORAL_IO_H_
#define CAD_IO_TEMPORAL_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "graph/temporal_graph.h"

namespace cad {

/// Text format for temporal graph sequences:
///
///   # comment lines start with '#'
///   temporal <num_nodes> <num_snapshots>
///   snapshot <t>
///   edge <u> <v> <weight>
///   ...
///
/// Snapshots must appear in order 0..T-1; every snapshot header must be
/// present even if the snapshot has no edges. Weights must be positive
/// (absent edges are simply not listed).

/// Serializes `sequence` into the text format.
[[nodiscard]] Status WriteTemporalEdgeList(const TemporalGraphSequence& sequence,
                             std::ostream* out);

/// Serializes `sequence` to a file, overwriting it.
[[nodiscard]] Status WriteTemporalEdgeListFile(const TemporalGraphSequence& sequence,
                                 const std::string& path);

/// Parses the text format.
[[nodiscard]] Result<TemporalGraphSequence> ReadTemporalEdgeList(std::istream* in);

/// Parses the text format from a file.
[[nodiscard]] Result<TemporalGraphSequence> ReadTemporalEdgeListFile(const std::string& path);

}  // namespace cad

#endif  // CAD_IO_TEMPORAL_IO_H_
