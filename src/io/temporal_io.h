#ifndef CAD_IO_TEMPORAL_IO_H_
#define CAD_IO_TEMPORAL_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "graph/temporal_graph.h"

namespace cad {

/// Text format for temporal graph sequences:
///
///   # comment lines start with '#'
///   temporal <num_nodes> <num_snapshots>
///   snapshot <t>
///   edge <u> <v> <weight>
///   ...
///
/// Snapshots must appear in order 0..T-1; every snapshot header must be
/// present even if the snapshot has no edges. Weights must be positive
/// (absent edges are simply not listed). An `edge` repeated within one
/// snapshot accumulates: the snapshot's weight is the sum of the repeated
/// records (both this loader and the event loader define duplicates this
/// way, so the two ingestion paths agree).
///
/// Named mode (DESIGN.md §8): a header of `temporal ? <num_snapshots>` (or
/// `temporal 0 <num_snapshots>`) means the node set is discovered rather
/// than declared. Every endpoint token — numeric-looking or not — is
/// interned as a string name in first-appearance order, and the returned
/// sequence carries the resulting NodeVocabulary with every snapshot sized
/// to the full discovered node set (earlier snapshots hold later-appearing
/// nodes as isolated). Optional `node <name>` records intern a name without
/// requiring an incident edge; the writer emits one per vocabulary entry in
/// dense-id order so the name -> id mapping round-trips exactly.

/// Serializes `sequence` into the text format.
[[nodiscard]] Status WriteTemporalEdgeList(const TemporalGraphSequence& sequence,
                             std::ostream* out);

/// Serializes `sequence` to a file, overwriting it.
[[nodiscard]] Status WriteTemporalEdgeListFile(const TemporalGraphSequence& sequence,
                                 const std::string& path);

/// Parses the text format.
[[nodiscard]] Result<TemporalGraphSequence> ReadTemporalEdgeList(std::istream* in);

/// Parses the text format from a file.
[[nodiscard]] Result<TemporalGraphSequence> ReadTemporalEdgeListFile(const std::string& path);

}  // namespace cad

#endif  // CAD_IO_TEMPORAL_IO_H_
