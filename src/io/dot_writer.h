#ifndef CAD_IO_DOT_WRITER_H_
#define CAD_IO_DOT_WRITER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace cad {

/// \brief Rendering options for Graphviz export.
struct DotOptions {
  /// Optional node labels; must be empty or have num_nodes entries.
  std::vector<std::string> node_names;
  /// Nodes drawn filled red (e.g. the anomalous node set V_t).
  std::vector<NodeId> highlighted_nodes;
  /// Edges drawn bold red (e.g. the anomalous edge set E_t).
  std::vector<NodePair> highlighted_edges;
  /// Include nodes with no incident edges.
  bool include_isolated = false;
  /// Scale factor applied to edge weights for penwidth.
  double weight_to_penwidth = 0.5;
};

/// \brief Writes `graph` in Graphviz dot format, highlighting anomalous
/// nodes and edges. Used to render the paper's Fig. 8b style anomaly
/// subgraphs (`dot -Tpng out.dot`).
[[nodiscard]] Status WriteDot(const WeightedGraph& graph, const DotOptions& options,
                std::ostream* out);

/// File variant; overwrites `path`.
[[nodiscard]] Status WriteDotFile(const WeightedGraph& graph, const DotOptions& options,
                    const std::string& path);

}  // namespace cad

#endif  // CAD_IO_DOT_WRITER_H_
