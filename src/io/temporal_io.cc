#include "io/temporal_io.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/strings.h"
#include "obs/obs.h"

namespace cad {

Status WriteTemporalEdgeList(const TemporalGraphSequence& sequence,
                             std::ostream* out) {
  CAD_CHECK(out != nullptr);
  (*out) << "# CAD temporal graph sequence\n";
  (*out) << "temporal " << sequence.num_nodes() << " "
         << sequence.num_snapshots() << "\n";
  out->precision(17);
  for (size_t t = 0; t < sequence.num_snapshots(); ++t) {
    (*out) << "snapshot " << t << "\n";
    for (const Edge& e : sequence.Snapshot(t).Edges()) {
      (*out) << "edge " << e.u << " " << e.v << " " << e.weight << "\n";
    }
  }
  if (!out->good()) {
    return Status::IoError("stream write failed");
  }
  return Status::OK();
}

Status WriteTemporalEdgeListFile(const TemporalGraphSequence& sequence,
                                 const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return WriteTemporalEdgeList(sequence, &file);
}

Result<TemporalGraphSequence> ReadTemporalEdgeList(std::istream* in) {
  CAD_CHECK(in != nullptr);
  CAD_TRACE_SPAN("temporal_load");
  TemporalGraphSequence sequence;
  bool header_seen = false;
  size_t declared_snapshots = 0;
  size_t num_nodes = 0;
  WeightedGraph current(0);
  bool in_snapshot = false;
  size_t expected_snapshot = 0;
  size_t line_number = 0;
  size_t edges_read = 0;

  const auto error_at = [&line_number](const std::string& message) {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": " + message);
  };

  std::string line;
  while (std::getline(*in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::vector<std::string> fields = SplitTokens(stripped);

    if (fields[0] == "temporal") {
      if (header_seen) return error_at("duplicate 'temporal' header");
      if (fields.size() != 3) return error_at("'temporal' needs 2 fields");
      Result<int64_t> nodes = ParseInt64(fields[1]);
      Result<int64_t> snaps = ParseInt64(fields[2]);
      if (!nodes.ok() || *nodes < 0) return error_at("bad node count");
      if (!snaps.ok() || *snaps < 0) return error_at("bad snapshot count");
      num_nodes = static_cast<size_t>(*nodes);
      declared_snapshots = static_cast<size_t>(*snaps);
      sequence = TemporalGraphSequence(num_nodes);
      header_seen = true;
    } else if (fields[0] == "snapshot") {
      if (!header_seen) return error_at("'snapshot' before 'temporal'");
      if (fields.size() != 2) return error_at("'snapshot' needs 1 field");
      Result<int64_t> index = ParseInt64(fields[1]);
      if (!index.ok() || *index < 0 ||
          static_cast<size_t>(*index) != expected_snapshot) {
        return error_at("snapshots must appear in order; expected " +
                        std::to_string(expected_snapshot));
      }
      if (in_snapshot) {
        CAD_RETURN_NOT_OK(sequence.Append(std::move(current)));
      }
      current = WeightedGraph(num_nodes);
      in_snapshot = true;
      ++expected_snapshot;
    } else if (fields[0] == "edge") {
      if (!in_snapshot) return error_at("'edge' outside a snapshot");
      if (fields.size() != 4) return error_at("'edge' needs 3 fields");
      Result<int64_t> u = ParseInt64(fields[1]);
      Result<int64_t> v = ParseInt64(fields[2]);
      Result<double> weight = ParseDouble(fields[3]);
      if (!u.ok() || !v.ok() || !weight.ok()) {
        return error_at("malformed edge");
      }
      if (*u < 0 || *v < 0) return error_at("negative node id");
      if (!std::isfinite(*weight)) {
        return error_at("non-finite edge weight '" + fields[3] + "'");
      }
      const Status set = current.SetEdge(static_cast<NodeId>(*u),
                                         static_cast<NodeId>(*v), *weight);
      if (!set.ok()) return error_at(set.message());
      ++edges_read;
    } else {
      return error_at("unknown record '" + fields[0] + "'");
    }
  }
  if (in->bad()) {
    return Status::IoError("edge-list read failed at line " +
                           std::to_string(line_number));
  }
  if (!header_seen) {
    return Status::InvalidArgument("missing 'temporal' header");
  }
  if (in_snapshot) {
    CAD_RETURN_NOT_OK(sequence.Append(std::move(current)));
  }
  if (sequence.num_snapshots() != declared_snapshots) {
    return Status::InvalidArgument(
        "snapshot count mismatch: header declares " +
        std::to_string(declared_snapshots) + ", found " +
        std::to_string(sequence.num_snapshots()));
  }
  CAD_METRIC_ADD("io.snapshots_loaded", sequence.num_snapshots());
  CAD_METRIC_ADD("io.edges_loaded", edges_read);
  return sequence;
}

Result<TemporalGraphSequence> ReadTemporalEdgeListFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return ReadTemporalEdgeList(&file);
}

}  // namespace cad
