#include "io/temporal_io.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/strings.h"
#include "obs/obs.h"

namespace cad {

Status WriteTemporalEdgeList(const TemporalGraphSequence& sequence,
                             std::ostream* out) {
  CAD_CHECK(out != nullptr);
  const NodeVocabulary* vocabulary = sequence.vocabulary();
  (*out) << "# CAD temporal graph sequence\n";
  if (vocabulary == nullptr) {
    (*out) << "temporal " << sequence.num_nodes() << " "
           << sequence.num_snapshots() << "\n";
  } else {
    (*out) << "temporal ? " << sequence.num_snapshots() << "\n";
    for (const std::string& name : vocabulary->names()) {
      (*out) << "node " << name << "\n";
    }
  }
  out->precision(17);
  for (size_t t = 0; t < sequence.num_snapshots(); ++t) {
    (*out) << "snapshot " << t << "\n";
    for (const Edge& e : sequence.Snapshot(t).Edges()) {
      (*out) << "edge " << NodeLabel(vocabulary, e.u) << " "
             << NodeLabel(vocabulary, e.v) << " " << e.weight << "\n";
    }
  }
  if (!out->good()) {
    return Status::IoError("stream write failed");
  }
  return Status::OK();
}

Status WriteTemporalEdgeListFile(const TemporalGraphSequence& sequence,
                                 const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return WriteTemporalEdgeList(sequence, &file);
}

Result<TemporalGraphSequence> ReadTemporalEdgeList(std::istream* in) {
  CAD_CHECK(in != nullptr);
  CAD_TRACE_SPAN("temporal_load");
  TemporalGraphSequence sequence;
  bool header_seen = false;
  bool named_mode = false;
  size_t declared_snapshots = 0;
  size_t num_nodes = 0;
  WeightedGraph current(0);
  NodeVocabulary vocabulary;
  // Named mode: edges are buffered per snapshot and materialized at EOF once
  // the full node set is known, so every snapshot is sized to the discovered
  // vocabulary (earlier snapshots hold later-appearing nodes as isolated).
  std::vector<Edge> pending_current;
  std::vector<std::vector<Edge>> pending_snapshots;
  bool in_snapshot = false;
  size_t expected_snapshot = 0;
  size_t line_number = 0;
  size_t edges_read = 0;

  const auto error_at = [&line_number](const std::string& message) {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": " + message);
  };

  std::string line;
  while (std::getline(*in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::vector<std::string> fields = SplitTokens(stripped);

    if (fields[0] == "temporal") {
      if (header_seen) return error_at("duplicate 'temporal' header");
      if (fields.size() != 3) return error_at("'temporal' needs 2 fields");
      if (fields[1] == "?") {
        named_mode = true;
      } else {
        Result<int64_t> nodes = ParseInt64(fields[1]);
        if (!nodes.ok() || *nodes < 0) return error_at("bad node count");
        num_nodes = static_cast<size_t>(*nodes);
        // num_nodes = 0 also means "infer": a declared size of zero admits
        // no edges anyway, so no previously valid file changes meaning.
        named_mode = num_nodes == 0;
      }
      Result<int64_t> snaps = ParseInt64(fields[2]);
      if (!snaps.ok() || *snaps < 0) return error_at("bad snapshot count");
      declared_snapshots = static_cast<size_t>(*snaps);
      sequence = TemporalGraphSequence(num_nodes);
      header_seen = true;
    } else if (fields[0] == "node") {
      if (!header_seen) return error_at("'node' before 'temporal'");
      if (!named_mode) {
        return error_at("'node' records require a 'temporal ?' header");
      }
      if (fields.size() != 2) return error_at("'node' needs 1 field");
      Result<NodeId> id = vocabulary.Intern(fields[1]);
      if (!id.ok()) return error_at(id.status().message());
    } else if (fields[0] == "snapshot") {
      if (!header_seen) return error_at("'snapshot' before 'temporal'");
      if (fields.size() != 2) return error_at("'snapshot' needs 1 field");
      Result<int64_t> index = ParseInt64(fields[1]);
      if (!index.ok() || *index < 0 ||
          static_cast<size_t>(*index) != expected_snapshot) {
        return error_at("snapshots must appear in order; expected " +
                        std::to_string(expected_snapshot));
      }
      if (in_snapshot) {
        if (named_mode) {
          pending_snapshots.push_back(std::move(pending_current));
          pending_current.clear();
        } else {
          CAD_RETURN_NOT_OK(sequence.Append(std::move(current)));
        }
      }
      current = WeightedGraph(num_nodes);
      in_snapshot = true;
      ++expected_snapshot;
    } else if (fields[0] == "edge") {
      if (!in_snapshot) return error_at("'edge' outside a snapshot");
      if (fields.size() != 4) return error_at("'edge' needs 3 fields");
      Result<double> weight = ParseDouble(fields[3]);
      if (!weight.ok()) return error_at("malformed edge");
      if (!std::isfinite(*weight)) {
        return error_at("non-finite edge weight '" + fields[3] + "'");
      }
      if (named_mode) {
        if (*weight < 0.0) {
          return error_at("edge weight must be finite and >= 0, got " +
                          fields[3]);
        }
        Result<NodeId> u = vocabulary.Intern(fields[1]);
        if (!u.ok()) return error_at(u.status().message());
        Result<NodeId> v = vocabulary.Intern(fields[2]);
        if (!v.ok()) return error_at(v.status().message());
        if (*u == *v) {
          return error_at("self-loops are not allowed (node '" + fields[1] +
                          "')");
        }
        pending_current.push_back(Edge{*u, *v, *weight});
      } else {
        Result<int64_t> u = ParseInt64(fields[1]);
        Result<int64_t> v = ParseInt64(fields[2]);
        if (!u.ok() || !v.ok()) return error_at("malformed edge");
        if (*u < 0 || *v < 0) return error_at("negative node id");
        // Repeated edge records within one snapshot accumulate (see the
        // format contract in temporal_io.h).
        const Status add = current.AddEdgeWeight(
            static_cast<NodeId>(*u), static_cast<NodeId>(*v), *weight);
        if (!add.ok()) return error_at(add.message());
      }
      ++edges_read;
    } else {
      return error_at("unknown record '" + fields[0] + "'");
    }
  }
  if (in->bad()) {
    return Status::IoError("edge-list read failed at line " +
                           std::to_string(line_number));
  }
  if (!header_seen) {
    return Status::InvalidArgument("missing 'temporal' header");
  }
  if (in_snapshot) {
    if (named_mode) {
      pending_snapshots.push_back(std::move(pending_current));
    } else {
      CAD_RETURN_NOT_OK(sequence.Append(std::move(current)));
    }
  }
  if (named_mode) {
    sequence = TemporalGraphSequence(vocabulary.size());
    for (std::vector<Edge>& pending : pending_snapshots) {
      WeightedGraph snapshot(vocabulary.size());
      for (const Edge& e : pending) {
        CAD_RETURN_NOT_OK(snapshot.AddEdgeWeight(e.u, e.v, e.weight));
      }
      CAD_RETURN_NOT_OK(sequence.Append(std::move(snapshot)));
    }
  }
  if (sequence.num_snapshots() != declared_snapshots) {
    return Status::InvalidArgument(
        "snapshot count mismatch: header declares " +
        std::to_string(declared_snapshots) + ", found " +
        std::to_string(sequence.num_snapshots()));
  }
  // An inferred file that named no nodes at all (e.g. a legacy
  // 'temporal 0 0') stays a plain integer sequence: an empty vocabulary
  // carries no information and would change the write-side roundtrip.
  if (named_mode && !vocabulary.empty()) {
    CAD_RETURN_NOT_OK(sequence.SetVocabulary(std::move(vocabulary)));
  }
  CAD_METRIC_ADD("io.snapshots_loaded", sequence.num_snapshots());
  CAD_METRIC_ADD("io.edges_loaded", edges_read);
  return sequence;
}

Result<TemporalGraphSequence> ReadTemporalEdgeListFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return ReadTemporalEdgeList(&file);
}

}  // namespace cad
