#include "io/event_stream.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>

#include "common/strings.h"

namespace cad {

Result<TemporalGraphSequence> AggregateEventStream(
    const std::vector<TimestampedEvent>& events,
    const EventAggregationOptions& options) {
  if (!(options.window_length > 0.0) ||
      !std::isfinite(options.window_length)) {
    return Status::InvalidArgument("window_length must be positive");
  }
  // Resolve the node count and the time origin.
  size_t num_nodes = options.num_nodes;
  double start = options.start_time;
  double last = -std::numeric_limits<double>::infinity();
  for (const TimestampedEvent& event : events) {
    if (event.u == event.v) {
      return Status::InvalidArgument("self-loop event at node " +
                                     std::to_string(event.u));
    }
    if (!std::isfinite(event.timestamp) || !std::isfinite(event.weight) ||
        event.weight < 0.0) {
      return Status::InvalidArgument("event has non-finite or negative field");
    }
    if (options.num_nodes == 0) {
      num_nodes = std::max<size_t>(num_nodes,
                                   std::max(event.u, event.v) + size_t{1});
    } else if (event.u >= num_nodes || event.v >= num_nodes) {
      return Status::OutOfRange("event endpoint exceeds num_nodes");
    }
    if (std::isnan(start) || event.timestamp < start) {
      if (std::isnan(options.start_time)) {
        start = std::isnan(start) ? event.timestamp
                                  : std::min(start, event.timestamp);
      }
    }
    last = std::max(last, event.timestamp);
  }
  if (events.empty() && std::isnan(start)) start = 0.0;

  size_t num_windows = options.num_windows;
  if (num_windows == 0) {
    num_windows =
        events.empty()
            ? 1
            : static_cast<size_t>(
                  std::floor((last - start) / options.window_length)) +
                  1;
  }

  std::vector<WeightedGraph> snapshots(num_windows, WeightedGraph(num_nodes));
  for (const TimestampedEvent& event : events) {
    const double offset = event.timestamp - start;
    if (offset < 0.0) continue;  // before the configured start: dropped
    const auto window =
        static_cast<size_t>(std::floor(offset / options.window_length));
    if (window >= num_windows) continue;  // after the configured end
    CAD_RETURN_NOT_OK(
        snapshots[window].AddEdgeWeight(event.u, event.v, event.weight));
  }

  TemporalGraphSequence sequence(num_nodes);
  for (WeightedGraph& snapshot : snapshots) {
    CAD_RETURN_NOT_OK(sequence.Append(std::move(snapshot)));
  }
  return sequence;
}

Result<std::vector<TimestampedEvent>> ReadEventStream(std::istream* in) {
  CAD_CHECK(in != nullptr);
  std::vector<TimestampedEvent> events;
  std::string line;
  size_t line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    // Collapse runs of whitespace by splitting and dropping empties.
    std::vector<std::string> fields;
    for (std::string& field : Split(std::string(stripped), ' ')) {
      if (!field.empty()) fields.push_back(std::move(field));
    }
    if (fields.size() != 3 && fields.size() != 4) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": expected '<u> <v> <timestamp> [weight]'");
    }
    Result<int64_t> u = ParseInt64(fields[0]);
    Result<int64_t> v = ParseInt64(fields[1]);
    Result<double> timestamp = ParseDouble(fields[2]);
    if (!u.ok() || !v.ok() || !timestamp.ok() || *u < 0 || *v < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": malformed event");
    }
    TimestampedEvent event;
    event.u = static_cast<NodeId>(*u);
    event.v = static_cast<NodeId>(*v);
    event.timestamp = *timestamp;
    if (fields.size() == 4) {
      Result<double> weight = ParseDouble(fields[3]);
      if (!weight.ok()) {
        return Status::InvalidArgument("line " + std::to_string(line_number) +
                                       ": malformed weight");
      }
      event.weight = *weight;
    }
    events.push_back(event);
  }
  return events;
}

Result<std::vector<TimestampedEvent>> ReadEventStreamFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return ReadEventStream(&file);
}

}  // namespace cad
