#include "io/event_stream.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>

#include "common/strings.h"
#include "obs/obs.h"

namespace cad {

namespace {

// Largest window count AggregateEventStream will materialize when it has to
// derive one from the event span. Guards the size_t cast against the
// wraparound/overflow class of bugs: a bogus start_time or a tiny window
// length must fail loudly instead of attempting a ~2^64-snapshot allocation.
constexpr double kMaxDerivedWindows = 1e12;

/// True when `token` parses as a non-negative integer, i.e. a valid dense
/// node id (used by EventIdMode::kAuto to commit a stream's id mode).
bool LooksLikeIntegerId(const std::string& token) {
  Result<int64_t> value = ParseInt64(token);
  return value.ok() && *value >= 0;
}

/// Parses one non-comment line of the event format. `line` must already be
/// stripped and non-empty. With a vocabulary, endpoint tokens are interned
/// as names; interning happens only after every other field validates, so
/// rejected lines never pollute the vocabulary.
Result<TimestampedEvent> ParseEventLine(std::string_view line,
                                        size_t line_number,
                                        NodeVocabulary* vocabulary) {
  const auto error_at = [line_number](const std::string& message) {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": " + message);
  };
  const std::vector<std::string> fields = SplitTokens(line);
  if (fields.size() != 3 && fields.size() != 4) {
    return error_at("expected '<u> <v> <timestamp> [weight]'");
  }
  Result<double> timestamp = ParseDouble(fields[2]);
  if (!timestamp.ok()) {
    return error_at("malformed event");
  }
  if (!std::isfinite(*timestamp)) {
    return error_at("non-finite timestamp");
  }
  TimestampedEvent event;
  event.timestamp = *timestamp;
  if (fields.size() == 4) {
    Result<double> weight = ParseDouble(fields[3]);
    if (!weight.ok()) {
      return error_at("malformed weight");
    }
    if (!std::isfinite(*weight) || *weight < 0.0) {
      return error_at("weight must be finite and >= 0");
    }
    event.weight = *weight;
  }
  if (vocabulary == nullptr) {
    Result<int64_t> u = ParseInt64(fields[0]);
    Result<int64_t> v = ParseInt64(fields[1]);
    if (!u.ok() || !v.ok() || *u < 0 || *v < 0) {
      return error_at("malformed event");
    }
    event.u = static_cast<NodeId>(*u);
    event.v = static_cast<NodeId>(*v);
  } else {
    // Validate both names before interning either, so a line rejected on
    // its second endpoint leaves the vocabulary untouched.
    const Status valid_u = NodeVocabulary::ValidateNodeName(fields[0]);
    if (!valid_u.ok()) return error_at(valid_u.message());
    const Status valid_v = NodeVocabulary::ValidateNodeName(fields[1]);
    if (!valid_v.ok()) return error_at(valid_v.message());
    Result<NodeId> u = vocabulary->Intern(fields[0]);
    if (!u.ok()) return error_at(u.status().message());
    Result<NodeId> v = vocabulary->Intern(fields[1]);
    if (!v.ok()) return error_at(v.status().message());
    event.u = *u;
    event.v = *v;
  }
  return event;
}

}  // namespace

Result<TemporalGraphSequence> AggregateEventStream(
    const std::vector<TimestampedEvent>& events,
    const EventAggregationOptions& options) {
  if (!(options.window_length > 0.0) ||
      !std::isfinite(options.window_length)) {
    return Status::InvalidArgument("window_length must be positive");
  }
  if (!std::isnan(options.start_time) && !std::isfinite(options.start_time)) {
    return Status::InvalidArgument("start_time must be finite when set");
  }
  // Resolve the node count and the time origin.
  size_t num_nodes = options.num_nodes;
  double start = options.start_time;
  for (const TimestampedEvent& event : events) {
    if (event.u == event.v) {
      return Status::InvalidArgument("self-loop event at node " +
                                     std::to_string(event.u));
    }
    if (!std::isfinite(event.timestamp) || !std::isfinite(event.weight) ||
        event.weight < 0.0) {
      return Status::InvalidArgument("event has non-finite or negative field");
    }
    if (options.num_nodes == 0) {
      num_nodes = std::max<size_t>(num_nodes,
                                   std::max(event.u, event.v) + size_t{1});
    } else if (event.u >= num_nodes || event.v >= num_nodes) {
      return Status::OutOfRange("event endpoint exceeds num_nodes");
    }
    if (std::isnan(options.start_time)) {
      start = std::isnan(start) ? event.timestamp
                                : std::min(start, event.timestamp);
    }
  }
  if (events.empty() && std::isnan(start)) start = 0.0;

  size_t num_windows = options.num_windows;
  if (num_windows == 0) {
    // Only events at or after the start can open a window. With an explicit
    // start_time every event may precede it; `last - start` then goes
    // negative and the old floor-then-cast wrapped to ~2^64 windows.
    double last_in_range = -std::numeric_limits<double>::infinity();
    for (const TimestampedEvent& event : events) {
      if (event.timestamp >= start) {
        last_in_range = std::max(last_in_range, event.timestamp);
      }
    }
    if (std::isinf(last_in_range)) {
      num_windows = 1;  // no event in range: same shape as the empty stream
    } else {
      const double span = (last_in_range - start) / options.window_length;
      if (!(span < kMaxDerivedWindows)) {
        return Status::InvalidArgument(
            "event span needs more than 1e12 windows; check start_time and "
            "window_length or set num_windows explicitly");
      }
      num_windows = static_cast<size_t>(std::floor(span)) + 1;
    }
  }

  std::vector<WeightedGraph> snapshots(num_windows, WeightedGraph(num_nodes));
  for (const TimestampedEvent& event : events) {
    const double offset = event.timestamp - start;
    if (offset < 0.0) continue;  // before the configured start: dropped
    const auto window =
        static_cast<size_t>(std::floor(offset / options.window_length));
    if (window >= num_windows) continue;  // after the configured end
    CAD_RETURN_NOT_OK(
        snapshots[window].AddEdgeWeight(event.u, event.v, event.weight));
  }

  TemporalGraphSequence sequence(num_nodes);
  for (WeightedGraph& snapshot : snapshots) {
    CAD_RETURN_NOT_OK(sequence.Append(std::move(snapshot)));
  }
  return sequence;
}

EventStreamReader::EventStreamReader(std::istream* in,
                                     EventErrorPolicy policy,
                                     NodeVocabulary* vocabulary,
                                     EventIdMode id_mode)
    : in_(in), policy_(policy), vocabulary_(vocabulary), id_mode_(id_mode) {
  CAD_CHECK(in != nullptr);
  // Named interpretation needs somewhere to put the names.
  if (vocabulary_ == nullptr) id_mode_ = EventIdMode::kInteger;
}

Result<std::optional<TimestampedEvent>> EventStreamReader::Next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_number_;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    bool committed_this_line = false;
    if (id_mode_ == EventIdMode::kAuto) {
      // Commit the stream's id mode on its first data line so every later
      // line is interpreted consistently (a numeric token in a named stream
      // is a name; an alphabetic token in an integer stream is malformed).
      const std::vector<std::string> fields = SplitTokens(stripped);
      id_mode_ = (fields.size() >= 2 && LooksLikeIntegerId(fields[0]) &&
                  LooksLikeIntegerId(fields[1]))
                     ? EventIdMode::kInteger
                     : EventIdMode::kNamed;
      committed_this_line = true;
    }
    Result<TimestampedEvent> event = ParseEventLine(
        stripped, line_number_,
        id_mode_ == EventIdMode::kNamed ? vocabulary_ : nullptr);
    if (event.ok()) {
      return std::optional<TimestampedEvent>(*event);
    }
    // Garbage must not lock the mode: a rejected line never interned
    // anything (endpoints are validated before interning), so the next
    // well-formed line should decide.
    if (committed_this_line) id_mode_ = EventIdMode::kAuto;
    if (policy_ == EventErrorPolicy::kStrict) {
      return event.status();
    }
    ++events_rejected_parse_;
    CAD_METRIC_INC("io.events_rejected_parse");
    CAD_METRIC_INC("io.events_rejected");
  }
  // getline stopped: distinguish clean EOF from a mid-file read failure,
  // which would otherwise silently truncate the stream.
  if (in_->bad()) {
    return Status::IoError("event stream read failed at line " +
                           std::to_string(line_number_));
  }
  return std::optional<TimestampedEvent>();
}

Result<std::vector<TimestampedEvent>> ReadEventStream(std::istream* in) {
  return ReadEventStream(in, EventErrorPolicy::kStrict, nullptr);
}

Result<std::vector<TimestampedEvent>> ReadEventStream(
    std::istream* in, EventErrorPolicy policy, size_t* events_rejected) {
  return ReadEventStream(in, policy, events_rejected, nullptr);
}

Result<std::vector<TimestampedEvent>> ReadEventStream(
    std::istream* in, EventErrorPolicy policy, size_t* events_rejected,
    NodeVocabulary* vocabulary, EventIdMode id_mode) {
  EventStreamReader reader(in, policy, vocabulary, id_mode);
  std::vector<TimestampedEvent> events;
  while (true) {
    std::optional<TimestampedEvent> event;
    CAD_ASSIGN_OR_RETURN(event, reader.Next());
    if (!event.has_value()) break;
    events.push_back(*event);
  }
  if (events_rejected != nullptr) *events_rejected = reader.events_rejected();
  return events;
}

Result<std::vector<TimestampedEvent>> ReadEventStreamFile(
    const std::string& path) {
  return ReadEventStreamFile(path, EventErrorPolicy::kStrict, nullptr);
}

Result<std::vector<TimestampedEvent>> ReadEventStreamFile(
    const std::string& path, EventErrorPolicy policy,
    size_t* events_rejected) {
  return ReadEventStreamFile(path, policy, events_rejected, nullptr);
}

Result<std::vector<TimestampedEvent>> ReadEventStreamFile(
    const std::string& path, EventErrorPolicy policy, size_t* events_rejected,
    NodeVocabulary* vocabulary, EventIdMode id_mode) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return ReadEventStream(&file, policy, events_rejected, vocabulary, id_mode);
}

Result<EventWindowAggregator> EventWindowAggregator::Create(
    const EventWindowOptions& options) {
  if (!(options.window_length > 0.0) ||
      !std::isfinite(options.window_length)) {
    return Status::InvalidArgument("window_length must be positive");
  }
  if (!std::isfinite(options.start_time)) {
    return Status::InvalidArgument("start_time must be finite");
  }
  if (options.num_nodes == 0 && !options.grow_nodes) {
    return Status::InvalidArgument("num_nodes must be > 0 unless grow_nodes");
  }
  return EventWindowAggregator(options);
}

Result<size_t> EventWindowAggregator::WindowIndex(double timestamp) const {
  if (!std::isfinite(timestamp)) {
    return Status::InvalidArgument("non-finite timestamp");
  }
  const double offset = timestamp - options_.start_time;
  if (offset < 0.0) {
    return Status::InvalidArgument("timestamp precedes start_time");
  }
  const double span = offset / options_.window_length;
  if (!(span < kMaxDerivedWindows)) {
    return Status::InvalidArgument("timestamp too far past start_time");
  }
  return static_cast<size_t>(std::floor(span));
}

Status EventWindowAggregator::Add(const TimestampedEvent& event,
                                  std::vector<WeightedGraph>* completed) {
  CAD_CHECK(completed != nullptr);
  if (event.u == event.v) {
    return Status::InvalidArgument("self-loop event at node " +
                                   std::to_string(event.u));
  }
  if (!options_.grow_nodes &&
      (event.u >= current_.num_nodes() || event.v >= current_.num_nodes())) {
    return Status::OutOfRange("event endpoint exceeds num_nodes");
  }
  if (!std::isfinite(event.weight) || event.weight < 0.0) {
    return Status::InvalidArgument("event weight must be finite and >= 0");
  }
  size_t window = 0;
  CAD_ASSIGN_OR_RETURN(window, WindowIndex(event.timestamp));
  if (window < current_window_) {
    return Status::InvalidArgument(
        "out-of-order event: window " + std::to_string(window) +
        " while window " + std::to_string(current_window_) + " is open");
  }
  while (current_window_ < window) {
    // A snapshot closes at the size the node set had reached; the set never
    // shrinks, so later windows (and monitors growing their previous
    // snapshot) see non-decreasing sizes.
    const size_t nodes_at_close = current_.num_nodes();
    completed->push_back(std::move(current_));
    current_ = WeightedGraph(nodes_at_close);
    ++current_window_;
  }
  if (options_.grow_nodes) {
    const size_t needed =
        static_cast<size_t>(std::max(event.u, event.v)) + size_t{1};
    if (needed > current_.num_nodes()) {
      CAD_RETURN_NOT_OK(current_.GrowTo(needed));
    }
  }
  return current_.AddEdgeWeight(event.u, event.v, event.weight);
}

WeightedGraph EventWindowAggregator::Flush() {
  const size_t nodes_at_close = current_.num_nodes();
  WeightedGraph closed = std::move(current_);
  current_ = WeightedGraph(nodes_at_close);
  ++current_window_;
  return closed;
}

}  // namespace cad
