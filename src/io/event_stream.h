#ifndef CAD_IO_EVENT_STREAM_H_
#define CAD_IO_EVENT_STREAM_H_

#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/node_vocabulary.h"
#include "graph/temporal_graph.h"

namespace cad {

/// \brief One timestamped interaction (an email, a co-authored paper, a
/// message) between two nodes.
struct TimestampedEvent {
  NodeId u = 0;
  NodeId v = 0;
  double timestamp = 0.0;
  /// Contribution to the edge weight of its window (emails: 1 each).
  double weight = 1.0;
};

/// \brief Options for turning an event stream into graph snapshots.
struct EventAggregationOptions {
  /// Window length in timestamp units (e.g. 30*24*3600 for monthly windows
  /// over unix seconds). Must be positive.
  double window_length = 1.0;
  /// Start of window 0; NaN (default) means the minimum event timestamp.
  /// When set, it must be finite.
  double start_time = std::numeric_limits<double>::quiet_NaN();
  /// Node-set size; 0 means max node id + 1 (the paper's fixed-vertex-set
  /// framing requires all snapshots to share it).
  size_t num_nodes = 0;
  /// Number of windows; 0 means enough to cover the last event at or after
  /// the start. Events outside [start, start + num_windows * window_length)
  /// are dropped.
  size_t num_windows = 0;
};

/// \brief Aggregates events into a TemporalGraphSequence: each event adds
/// its weight to edge {u, v} of the window containing its timestamp.
/// Self-loop events are rejected (InvalidArgument), as are non-positive
/// window lengths and events with non-finite fields.
[[nodiscard]] Result<TemporalGraphSequence> AggregateEventStream(
    const std::vector<TimestampedEvent>& events,
    const EventAggregationOptions& options);

/// \brief Per-record failure handling for streaming ingestion.
enum class EventErrorPolicy {
  /// Fail fast: the first malformed record aborts the read with a
  /// line-numbered error (the historical behavior).
  kStrict,
  /// Drop-and-count: malformed records are skipped; the reader tracks the
  /// count (and bumps the `io.events_rejected` metric) so operators can
  /// alert on rejection rates instead of losing the whole stream.
  kSkip,
};

/// \brief How event endpoint tokens are interpreted (DESIGN.md §8).
enum class EventIdMode {
  /// Decide from the first data line: if both endpoint tokens parse as
  /// non-negative integers the stream is integer-keyed, otherwise named.
  /// Without a vocabulary the reader is always integer-keyed.
  kAuto,
  /// Endpoints are dense integer ids (the historical format).
  kInteger,
  /// Every endpoint token — numeric-looking or not — is interned into the
  /// vocabulary in first-appearance order.
  kNamed,
};

/// \brief Incremental reader for the event text format:
///
///   # comment lines start with '#', blank lines are ignored
///   <u> <v> <timestamp> [weight]
///
/// Fields are separated by runs of whitespace. Records with missing/extra
/// fields, unparsable numbers, negative ids, non-finite timestamps or
/// weights, or negative weights are malformed; EventErrorPolicy decides
/// whether they abort the read or are counted and skipped. Unlike the bulk
/// ReadEventStream, the reader holds one record at a time, so arbitrarily
/// long streams can be consumed in O(1) memory.
///
/// With a vocabulary attached, endpoint tokens are interned as string names
/// per EventIdMode. A line's endpoints are interned only after every other
/// field validates, so rejected lines never pollute the vocabulary. The
/// caller owns the vocabulary; replaying a stream prefix reproduces a
/// vocabulary prefix, which is what makes checkpoint resume of named
/// streams exact.
class EventStreamReader {
 public:
  explicit EventStreamReader(
      std::istream* in, EventErrorPolicy policy = EventErrorPolicy::kStrict,
      NodeVocabulary* vocabulary = nullptr,
      EventIdMode id_mode = EventIdMode::kAuto);

  /// The next well-formed event, or nullopt at end of stream. A mid-file
  /// read failure (stream badbit) reports IoError rather than a silent
  /// truncation at EOF.
  [[nodiscard]] Result<std::optional<TimestampedEvent>> Next();

  /// 1-based line number of the most recently consumed line.
  size_t line_number() const { return line_number_; }

  /// Records dropped so far under EventErrorPolicy::kSkip because they
  /// failed to parse. (Range rejections happen downstream, at the window
  /// aggregator; see `io.events_rejected_range`.)
  size_t events_rejected() const { return events_rejected_parse_; }

  /// Alias for events_rejected(), named for symmetry with the
  /// `io.events_rejected_parse` metric.
  size_t events_rejected_parse() const { return events_rejected_parse_; }

  /// The resolved id mode: kAuto until the first data line commits it.
  EventIdMode id_mode() const { return id_mode_; }

 private:
  std::istream* in_;
  EventErrorPolicy policy_;
  NodeVocabulary* vocabulary_;
  EventIdMode id_mode_;
  size_t line_number_ = 0;
  size_t events_rejected_parse_ = 0;
};

/// Text format, one event per line; see EventStreamReader. Strict policy:
/// the first malformed line aborts with a line-numbered error.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStream(std::istream* in);

/// ReadEventStream with an explicit error policy. Under kSkip,
/// `*events_rejected` (optional) receives the dropped-record count.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStream(
    std::istream* in, EventErrorPolicy policy, size_t* events_rejected);

/// Vocabulary-aware variant: endpoint tokens are interpreted per `id_mode`
/// (auto-detected from the first data line by default), interning names
/// into `*vocabulary` in first-appearance order. Integer-keyed streams
/// leave the vocabulary empty.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStream(
    std::istream* in, EventErrorPolicy policy, size_t* events_rejected,
    NodeVocabulary* vocabulary, EventIdMode id_mode = EventIdMode::kAuto);

/// File variant of ReadEventStream.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStreamFile(
    const std::string& path);

/// File variant with an explicit error policy.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStreamFile(
    const std::string& path, EventErrorPolicy policy, size_t* events_rejected);

/// File variant of the vocabulary-aware read.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStreamFile(
    const std::string& path, EventErrorPolicy policy, size_t* events_rejected,
    NodeVocabulary* vocabulary, EventIdMode id_mode = EventIdMode::kAuto);

/// \brief Configuration for EventWindowAggregator.
struct EventWindowOptions {
  /// Window length in timestamp units. Must be positive and finite.
  double window_length = 1.0;
  /// Start of window 0. Must be finite (streaming cannot infer it after the
  /// fact; infer from the first event before constructing if needed).
  double start_time = 0.0;
  /// Node-set size of the first emitted snapshot. Must be > 0 unless
  /// `grow_nodes` is set, in which case 0 means "start empty and discover".
  size_t num_nodes = 0;
  /// Index of the first window to materialize; events in earlier windows
  /// are rejected by Add. Used to resume a stream from a checkpoint.
  size_t first_window = 0;
  /// When true the node set is discovered rather than declared: an event
  /// endpoint past the current size grows the open window instead of being
  /// rejected as out of range. Emitted snapshot sizes are non-decreasing
  /// (each window keeps the size the node set had when it closed); consumers
  /// that need a fixed size grow earlier snapshots afterwards.
  bool grow_nodes = false;
};

/// \brief Streaming counterpart of AggregateEventStream: feed time-ordered
/// events one at a time; each window's snapshot is emitted as soon as an
/// event lands past its end, so only the one in-progress window is held in
/// memory. Buckets match AggregateEventStream exactly (same floor((t -
/// start) / window_length) arithmetic), so driving a monitor from this
/// aggregator reproduces the batch pipeline's snapshots.
class EventWindowAggregator {
 public:
  /// Validates options. InvalidArgument on a non-positive/non-finite window
  /// length, non-finite start, or zero node count without `grow_nodes`.
  [[nodiscard]] static Result<EventWindowAggregator> Create(
      const EventWindowOptions& options);

  /// Window index containing `timestamp` (same bucketing as
  /// AggregateEventStream). InvalidArgument for timestamps before
  /// start_time or non-finite.
  [[nodiscard]] Result<size_t> WindowIndex(double timestamp) const;

  /// Feeds one event. Windows that closed strictly before the event's
  /// window are appended to `*completed` in order (possibly none, possibly
  /// several empty ones for quiet periods). Malformed events (self-loop,
  /// endpoint >= num_nodes, non-finite fields, negative weight) and events
  /// before the current open window (out of order, or before first_window)
  /// return InvalidArgument without consuming the event — the caller's
  /// error policy decides whether that is fatal.
  [[nodiscard]] Status Add(const TimestampedEvent& event,
                           std::vector<WeightedGraph>* completed);

  /// Closes and returns the in-progress window (the final, possibly
  /// partial, snapshot). The aggregator then continues with the next
  /// window index, so Flush at end-of-stream matches AggregateEventStream's
  /// last window.
  WeightedGraph Flush();

  /// Index of the currently open window.
  size_t current_window() const { return current_window_; }

  /// Current node-set size (grows under EventWindowOptions::grow_nodes).
  size_t num_nodes() const { return current_.num_nodes(); }

 private:
  explicit EventWindowAggregator(const EventWindowOptions& options)
      : options_(options),
        current_window_(options.first_window),
        current_(WeightedGraph(options.num_nodes)) {}

  EventWindowOptions options_;
  size_t current_window_;
  WeightedGraph current_;
};

}  // namespace cad

#endif  // CAD_IO_EVENT_STREAM_H_
