#ifndef CAD_IO_EVENT_STREAM_H_
#define CAD_IO_EVENT_STREAM_H_

#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/temporal_graph.h"

namespace cad {

/// \brief One timestamped interaction (an email, a co-authored paper, a
/// message) between two nodes.
struct TimestampedEvent {
  NodeId u = 0;
  NodeId v = 0;
  double timestamp = 0.0;
  /// Contribution to the edge weight of its window (emails: 1 each).
  double weight = 1.0;
};

/// \brief Options for turning an event stream into graph snapshots.
struct EventAggregationOptions {
  /// Window length in timestamp units (e.g. 30*24*3600 for monthly windows
  /// over unix seconds). Must be positive.
  double window_length = 1.0;
  /// Start of window 0; NaN (default) means the minimum event timestamp.
  double start_time = std::numeric_limits<double>::quiet_NaN();
  /// Node-set size; 0 means max node id + 1 (the paper's fixed-vertex-set
  /// framing requires all snapshots to share it).
  size_t num_nodes = 0;
  /// Number of windows; 0 means enough to cover the last event. Events
  /// outside [start, start + num_windows * window_length) are dropped.
  size_t num_windows = 0;
};

/// \brief Aggregates events into a TemporalGraphSequence: each event adds
/// its weight to edge {u, v} of the window containing its timestamp.
/// Self-loop events are rejected (InvalidArgument), as are non-positive
/// window lengths and events with non-finite fields.
[[nodiscard]] Result<TemporalGraphSequence> AggregateEventStream(
    const std::vector<TimestampedEvent>& events,
    const EventAggregationOptions& options);

/// Text format, one event per line (comments with '#', blank lines ignored):
///   <u> <v> <timestamp> [weight]
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStream(std::istream* in);

/// File variant of ReadEventStream.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStreamFile(
    const std::string& path);

}  // namespace cad

#endif  // CAD_IO_EVENT_STREAM_H_
