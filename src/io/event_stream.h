#ifndef CAD_IO_EVENT_STREAM_H_
#define CAD_IO_EVENT_STREAM_H_

#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/temporal_graph.h"

namespace cad {

/// \brief One timestamped interaction (an email, a co-authored paper, a
/// message) between two nodes.
struct TimestampedEvent {
  NodeId u = 0;
  NodeId v = 0;
  double timestamp = 0.0;
  /// Contribution to the edge weight of its window (emails: 1 each).
  double weight = 1.0;
};

/// \brief Options for turning an event stream into graph snapshots.
struct EventAggregationOptions {
  /// Window length in timestamp units (e.g. 30*24*3600 for monthly windows
  /// over unix seconds). Must be positive.
  double window_length = 1.0;
  /// Start of window 0; NaN (default) means the minimum event timestamp.
  /// When set, it must be finite.
  double start_time = std::numeric_limits<double>::quiet_NaN();
  /// Node-set size; 0 means max node id + 1 (the paper's fixed-vertex-set
  /// framing requires all snapshots to share it).
  size_t num_nodes = 0;
  /// Number of windows; 0 means enough to cover the last event at or after
  /// the start. Events outside [start, start + num_windows * window_length)
  /// are dropped.
  size_t num_windows = 0;
};

/// \brief Aggregates events into a TemporalGraphSequence: each event adds
/// its weight to edge {u, v} of the window containing its timestamp.
/// Self-loop events are rejected (InvalidArgument), as are non-positive
/// window lengths and events with non-finite fields.
[[nodiscard]] Result<TemporalGraphSequence> AggregateEventStream(
    const std::vector<TimestampedEvent>& events,
    const EventAggregationOptions& options);

/// \brief Per-record failure handling for streaming ingestion.
enum class EventErrorPolicy {
  /// Fail fast: the first malformed record aborts the read with a
  /// line-numbered error (the historical behavior).
  kStrict,
  /// Drop-and-count: malformed records are skipped; the reader tracks the
  /// count (and bumps the `io.events_rejected` metric) so operators can
  /// alert on rejection rates instead of losing the whole stream.
  kSkip,
};

/// \brief Incremental reader for the event text format:
///
///   # comment lines start with '#', blank lines are ignored
///   <u> <v> <timestamp> [weight]
///
/// Fields are separated by runs of whitespace. Records with missing/extra
/// fields, unparsable numbers, negative ids, non-finite timestamps or
/// weights, or negative weights are malformed; EventErrorPolicy decides
/// whether they abort the read or are counted and skipped. Unlike the bulk
/// ReadEventStream, the reader holds one record at a time, so arbitrarily
/// long streams can be consumed in O(1) memory.
class EventStreamReader {
 public:
  explicit EventStreamReader(std::istream* in,
                             EventErrorPolicy policy = EventErrorPolicy::kStrict);

  /// The next well-formed event, or nullopt at end of stream. A mid-file
  /// read failure (stream badbit) reports IoError rather than a silent
  /// truncation at EOF.
  [[nodiscard]] Result<std::optional<TimestampedEvent>> Next();

  /// 1-based line number of the most recently consumed line.
  size_t line_number() const { return line_number_; }

  /// Records dropped so far under EventErrorPolicy::kSkip.
  size_t events_rejected() const { return events_rejected_; }

 private:
  std::istream* in_;
  EventErrorPolicy policy_;
  size_t line_number_ = 0;
  size_t events_rejected_ = 0;
};

/// Text format, one event per line; see EventStreamReader. Strict policy:
/// the first malformed line aborts with a line-numbered error.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStream(std::istream* in);

/// ReadEventStream with an explicit error policy. Under kSkip,
/// `*events_rejected` (optional) receives the dropped-record count.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStream(
    std::istream* in, EventErrorPolicy policy, size_t* events_rejected);

/// File variant of ReadEventStream.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStreamFile(
    const std::string& path);

/// File variant with an explicit error policy.
[[nodiscard]] Result<std::vector<TimestampedEvent>> ReadEventStreamFile(
    const std::string& path, EventErrorPolicy policy, size_t* events_rejected);

/// \brief Configuration for EventWindowAggregator.
struct EventWindowOptions {
  /// Window length in timestamp units. Must be positive and finite.
  double window_length = 1.0;
  /// Start of window 0. Must be finite (streaming cannot infer it after the
  /// fact; infer from the first event before constructing if needed).
  double start_time = 0.0;
  /// Fixed node-set size shared by every emitted snapshot. Must be > 0.
  size_t num_nodes = 0;
  /// Index of the first window to materialize; events in earlier windows
  /// are rejected by Add. Used to resume a stream from a checkpoint.
  size_t first_window = 0;
};

/// \brief Streaming counterpart of AggregateEventStream: feed time-ordered
/// events one at a time; each window's snapshot is emitted as soon as an
/// event lands past its end, so only the one in-progress window is held in
/// memory. Buckets match AggregateEventStream exactly (same floor((t -
/// start) / window_length) arithmetic), so driving a monitor from this
/// aggregator reproduces the batch pipeline's snapshots.
class EventWindowAggregator {
 public:
  /// Validates options. InvalidArgument on a non-positive/non-finite window
  /// length, non-finite start, or zero node count.
  [[nodiscard]] static Result<EventWindowAggregator> Create(
      const EventWindowOptions& options);

  /// Window index containing `timestamp` (same bucketing as
  /// AggregateEventStream). InvalidArgument for timestamps before
  /// start_time or non-finite.
  [[nodiscard]] Result<size_t> WindowIndex(double timestamp) const;

  /// Feeds one event. Windows that closed strictly before the event's
  /// window are appended to `*completed` in order (possibly none, possibly
  /// several empty ones for quiet periods). Malformed events (self-loop,
  /// endpoint >= num_nodes, non-finite fields, negative weight) and events
  /// before the current open window (out of order, or before first_window)
  /// return InvalidArgument without consuming the event — the caller's
  /// error policy decides whether that is fatal.
  [[nodiscard]] Status Add(const TimestampedEvent& event,
                           std::vector<WeightedGraph>* completed);

  /// Closes and returns the in-progress window (the final, possibly
  /// partial, snapshot). The aggregator then continues with the next
  /// window index, so Flush at end-of-stream matches AggregateEventStream's
  /// last window.
  WeightedGraph Flush();

  /// Index of the currently open window.
  size_t current_window() const { return current_window_; }

 private:
  explicit EventWindowAggregator(const EventWindowOptions& options)
      : options_(options),
        current_window_(options.first_window),
        current_(WeightedGraph(options.num_nodes)) {}

  EventWindowOptions options_;
  size_t current_window_;
  WeightedGraph current_;
};

}  // namespace cad

#endif  // CAD_IO_EVENT_STREAM_H_
