#include "app/pipeline.h"

#include <ostream>

#include "common/strings.h"
#include "common/csv_writer.h"
#include "common/json_writer.h"
#include "obs/obs.h"

namespace cad {

namespace {

/// Ticks the optional heartbeat reporter after a pipeline stage completes.
Status TickStats(const PipelineOptions& options) {
  if (options.stats == nullptr) return Status::OK();
  const Result<bool> emitted = options.stats->Tick();
  return emitted.status();
}

Result<EdgeScoreKind> KindFromName(const std::string& method) {
  if (method == "CAD") return EdgeScoreKind::kCad;
  if (method == "ADJ") return EdgeScoreKind::kAdj;
  if (method == "COM") return EdgeScoreKind::kCom;
  if (method == "SUM") return EdgeScoreKind::kSum;
  return Status::InvalidArgument("not a commute-based method: " + method);
}

Result<PipelineResult> RunCommuteFamily(const TemporalGraphSequence& sequence,
                                        const PipelineOptions& options) {
  PipelineResult result;
  result.method = options.method;

  CadOptions cad_options = options.cad;
  CAD_ASSIGN_OR_RETURN(cad_options.score_kind, KindFromName(options.method));
  cad_options.approx.warm_start = options.warm_start;
  cad_options.approx.refactor_threshold = options.refactor_threshold;
  cad_options.approx.cg.use_block_solver = options.block_solver;
  CadDetector detector(cad_options);

  std::vector<TransitionScores> analyses;
  {
    CAD_TRACE_SPAN("pipeline_score");
    CAD_ASSIGN_OR_RETURN(analyses, detector.Analyze(sequence));
  }
  result.node_scores.reserve(analyses.size());
  for (const TransitionScores& scores : analyses) {
    result.node_scores.push_back(scores.node_scores);
  }
  CAD_RETURN_NOT_OK(TickStats(options));

  {
    CAD_TRACE_SPAN("pipeline_threshold");
    result.delta = CalibrateDelta(analyses, options.nodes_per_transition);
    CAD_METRIC_SET("pipeline.delta", result.delta);
  }
  CAD_RETURN_NOT_OK(TickStats(options));
  {
    CAD_TRACE_SPAN("pipeline_localize");
    result.reports = ApplyThreshold(analyses, result.delta);
  }
  CAD_RETURN_NOT_OK(TickStats(options));

  CAD_TRACE_SPAN("pipeline_classify");
  for (const AnomalyReport& report : result.reports) {
    if (report.edges.empty()) continue;
    std::unique_ptr<CommuteTimeOracle> oracle;
    if (options.classify_cases) {
      CAD_ASSIGN_OR_RETURN(
          oracle, detector.BuildOracle(sequence.Snapshot(report.transition)));
    }
    for (const ScoredEdge& edge : report.edges) {
      ReportedEdge reported;
      reported.transition = report.transition;
      reported.edge = edge;
      if (options.classify_cases) {
        reported.anomaly_case = ClassifyAnomalousEdge(
            edge, oracle->CommuteTime(edge.pair.u, edge.pair.v),
            sequence.Snapshot(report.transition),
            sequence.Snapshot(report.transition + 1));
      }
      result.edges.push_back(reported);
    }
  }
  CAD_METRIC_ADD("pipeline.reported_edges", result.edges.size());
  CAD_RETURN_NOT_OK(TickStats(options));
  return result;
}

Result<PipelineResult> RunNodeScorer(const TemporalGraphSequence& sequence,
                                     const PipelineOptions& options) {
  PipelineResult result;
  result.method = options.method;
  if (options.method == "ACT") {
    CAD_ASSIGN_OR_RETURN(result.node_scores,
                         ActDetector(options.act).ScoreTransitions(sequence));
  } else if (options.method == "CLC") {
    CAD_ASSIGN_OR_RETURN(result.node_scores,
                         ClcDetector(options.clc).ScoreTransitions(sequence));
  } else if (options.method == "AFM") {
    CAD_ASSIGN_OR_RETURN(result.node_scores,
                         AfmDetector(options.afm).ScoreTransitions(sequence));
  } else {
    return Status::InvalidArgument(
        "unknown method '" + options.method +
        "'; expected CAD, ADJ, COM, SUM, ACT, CLC, or AFM");
  }
  CAD_RETURN_NOT_OK(TickStats(options));
  return result;
}

}  // namespace

bool IsCommuteBasedMethod(const std::string& method) {
  return method == "CAD" || method == "ADJ" || method == "COM" ||
         method == "SUM";
}

Result<PipelineResult> RunAnomalyPipeline(const TemporalGraphSequence& sequence,
                                          const PipelineOptions& options) {
  if (sequence.num_snapshots() < 2) {
    return Status::InvalidArgument(
        "the pipeline needs at least two snapshots");
  }
  CAD_DCHECK_OK(sequence.CheckConsistent());
  Result<PipelineResult> result = [&] {
    CAD_TRACE_SPAN("pipeline_run");
    CAD_METRIC_INC("pipeline.runs");
    return IsCommuteBasedMethod(options.method)
               ? RunCommuteFamily(sequence, options)
               : RunNodeScorer(sequence, options);
  }();
  if (result.ok() && sequence.vocabulary() != nullptr) {
    result.ValueOrDie().vocabulary = *sequence.vocabulary();
  }
  // Attach the registry state so callers (cad_cli, tests) can export it
  // without reaching into the obs singletons themselves.
  if (result.ok() && obs::MetricsEnabled()) {
    result.ValueOrDie().metrics = obs::SnapshotMetrics();
  }
  return result;
}

Status WriteEdgeReportCsv(const PipelineResult& result, std::ostream* out) {
  CAD_CHECK(out != nullptr);
  const NodeVocabulary* vocabulary =
      result.vocabulary.has_value() ? &*result.vocabulary : nullptr;
  CsvWriter writer(out, {"transition", "u", "v", "score", "weight_delta",
                         "commute_delta", "case"});
  for (const ReportedEdge& reported : result.edges) {
    writer.WriteRow({std::to_string(reported.transition),
                     NodeLabel(vocabulary, reported.edge.pair.u),
                     NodeLabel(vocabulary, reported.edge.pair.v),
                     FormatDouble(reported.edge.score, 9),
                     FormatDouble(reported.edge.weight_delta, 9),
                     FormatDouble(reported.edge.commute_delta, 9),
                     AnomalyCaseToString(reported.anomaly_case)});
  }
  if (!out->good()) return Status::IoError("edge report write failed");
  return Status::OK();
}

Status WriteNodeScoresCsv(const PipelineResult& result, std::ostream* out,
                          bool only_nonzero) {
  CAD_CHECK(out != nullptr);
  const NodeVocabulary* vocabulary =
      result.vocabulary.has_value() ? &*result.vocabulary : nullptr;
  CsvWriter writer(out, {"transition", "node", "score"});
  for (size_t t = 0; t < result.node_scores.size(); ++t) {
    for (size_t node = 0; node < result.node_scores[t].size(); ++node) {
      const double score = result.node_scores[t][node];
      if (only_nonzero && score == 0.0) continue;
      writer.WriteRow({std::to_string(t),
                       NodeLabel(vocabulary, static_cast<NodeId>(node)),
                       FormatDouble(score, 9)});
    }
  }
  if (!out->good()) return Status::IoError("node score write failed");
  return Status::OK();
}

Status WritePipelineResultJson(const PipelineResult& result,
                               std::ostream* out) {
  CAD_CHECK(out != nullptr);
  const NodeVocabulary* vocabulary =
      result.vocabulary.has_value() ? &*result.vocabulary : nullptr;
  JsonWriter json(out);
  json.BeginObject();
  json.Key("method");
  json.String(result.method);
  json.Key("delta");
  json.Number(result.delta);
  json.Key("num_transitions");
  json.Number(result.node_scores.size());
  json.Key("transitions");
  json.BeginArray();
  for (const AnomalyReport& report : result.reports) {
    if (report.nodes.empty()) continue;  // calm transitions omitted
    json.BeginObject();
    json.Key("transition");
    json.Number(report.transition);
    json.Key("nodes");
    json.BeginArray();
    for (NodeId node : report.nodes) {
      if (vocabulary != nullptr) {
        json.String(NodeLabel(vocabulary, node));
      } else {
        json.Number(static_cast<size_t>(node));
      }
    }
    json.EndArray();
    json.Key("edges");
    json.BeginArray();
    for (const ReportedEdge& reported : result.edges) {
      if (reported.transition != report.transition) continue;
      json.BeginObject();
      json.Key("u");
      if (vocabulary != nullptr) {
        json.String(NodeLabel(vocabulary, reported.edge.pair.u));
      } else {
        json.Number(static_cast<size_t>(reported.edge.pair.u));
      }
      json.Key("v");
      if (vocabulary != nullptr) {
        json.String(NodeLabel(vocabulary, reported.edge.pair.v));
      } else {
        json.Number(static_cast<size_t>(reported.edge.pair.v));
      }
      json.Key("score");
      json.Number(reported.edge.score);
      json.Key("weight_delta");
      json.Number(reported.edge.weight_delta);
      json.Key("commute_delta");
      json.Number(reported.edge.commute_delta);
      json.Key("case");
      json.String(AnomalyCaseToString(reported.anomaly_case));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  (*out) << "\n";
  if (!out->good()) return Status::IoError("json report write failed");
  return Status::OK();
}

}  // namespace cad
