#ifndef CAD_APP_PIPELINE_H_
#define CAD_APP_PIPELINE_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/act_detector.h"
#include "core/afm_detector.h"
#include "core/cad_detector.h"
#include "core/case_classifier.h"
#include "core/clc_detector.h"
#include "core/threshold.h"
#include "graph/node_vocabulary.h"
#include "graph/temporal_graph.h"
#include "obs/metrics.h"
#include "obs/stats_reporter.h"

namespace cad {

/// \brief End-to-end configuration for the anomaly pipeline (and the
/// `cad_cli` tool built on it).
struct PipelineOptions {
  /// Method name: "CAD", "ADJ", "COM", "SUM" (commute-based family with
  /// edge-level localization) or "ACT", "CLC", "AFM" (node-score-only
  /// baselines).
  std::string method = "CAD";
  /// Target average anomalous nodes per transition for the global threshold
  /// (commute-based family only).
  double nodes_per_transition = 5.0;
  /// Commute-based family settings (engine, k, seed).
  CadOptions cad;
  /// Baseline settings.
  ActOptions act;
  ClosenessOptions clc;
  AfmOptions afm;
  /// Attach the paper's Case 1/2/3 labels to reported anomalous edges
  /// (commute-based family only; costs one extra oracle build per flagged
  /// transition).
  bool classify_cases = true;
  /// Solver performance knobs for the commute-based family. These are the
  /// authoritative pipeline-level switches: they are copied into
  /// cad.approx (overriding whatever the caller left there) so that CLI and
  /// bench frontends have a single place to flip them.
  /// Warm-start consecutive snapshot solves from the previous embedding
  /// (see ApproxCommuteOptions::warm_start).
  bool warm_start = false;
  /// IC(0) refactorization trigger under warm_start
  /// (see CommuteSolverCache).
  double refactor_threshold = 0.1;
  /// Advance the k CG systems in lockstep through shared SpMM sweeps
  /// (see CgOptions::use_block_solver). Bit-identical results either way.
  bool block_solver = false;
  /// Optional heartbeat reporter (not owned; must outlive the run). The
  /// pipeline ticks it once per completed stage (score, threshold, localize,
  /// classify for the commute family; score for the node-score baselines),
  /// so a StatsReporter(out, 1) emits a progress record after every stage of
  /// a long batch run. nullptr disables the heartbeat.
  obs::StatsReporter* stats = nullptr;
};

/// \brief One classified anomalous edge in the pipeline output.
struct ReportedEdge {
  size_t transition = 0;
  ScoredEdge edge;
  AnomalyCase anomaly_case = AnomalyCase::kUnclassified;
};

/// \brief Full pipeline output.
struct PipelineResult {
  std::string method;
  /// Per-transition node anomaly scores (all methods).
  TransitionNodeScores node_scores;
  /// Thresholded localization output (commute-based family; empty for
  /// ACT/CLC/AFM, which do not localize edges).
  std::vector<AnomalyReport> reports;
  /// Flat list of reported edges with case labels, for CSV export.
  std::vector<ReportedEdge> edges;
  /// The calibrated threshold (commute-based family).
  double delta = 0.0;
  /// Snapshot of the global metrics registry taken when the pipeline
  /// finished; empty unless metrics recording was enabled (see src/obs/).
  obs::MetricsSnapshot metrics;
  /// Copied from the input sequence when it carries one (named-node inputs,
  /// DESIGN.md §8). The CSV/JSON writers then render original names in the
  /// u/v/node columns; without a vocabulary output is unchanged.
  std::optional<NodeVocabulary> vocabulary;
};

/// True if `method` names the commute-based (edge-localizing) family.
bool IsCommuteBasedMethod(const std::string& method);

/// \brief Runs the configured method over the sequence: scores every
/// transition, calibrates the global threshold, extracts anomaly sets, and
/// (optionally) classifies each reported edge into the paper's taxonomy.
[[nodiscard]] Result<PipelineResult> RunAnomalyPipeline(const TemporalGraphSequence& sequence,
                                          const PipelineOptions& options);

/// \brief Writes the flat anomalous-edge list as CSV:
/// transition,u,v,score,weight_delta,commute_delta,case.
[[nodiscard]] Status WriteEdgeReportCsv(const PipelineResult& result, std::ostream* out);

/// \brief Writes per-transition node scores as CSV: transition,node,score.
/// With `only_nonzero`, rows with score 0 are skipped.
[[nodiscard]] Status WriteNodeScoresCsv(const PipelineResult& result, std::ostream* out,
                          bool only_nonzero = true);

/// \brief Writes the full result as one JSON document:
/// {method, delta, transitions: [{transition, nodes, edges: [{u, v, score,
/// weight_delta, commute_delta, case}]}]}. Node scores are omitted (use the
/// CSV for bulk scores). With a vocabulary, u/v and the nodes array are the
/// original name strings instead of integer ids.
[[nodiscard]] Status WritePipelineResultJson(const PipelineResult& result,
                               std::ostream* out);

}  // namespace cad

#endif  // CAD_APP_PIPELINE_H_
