#ifndef CAD_OBS_TRACE_H_
#define CAD_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/status.h"

namespace cad {
namespace obs {

/// \brief Scoped trace spans (DESIGN.md §5).
///
/// `CAD_TRACE_SPAN("pcg_solve")` opens a span that closes at end of scope.
/// Each thread appends completed spans to its own buffer (no cross-thread
/// contention on the hot path); buffers of exited threads are merged into a
/// process-wide retired list, and CollectTraceEvents()/WriteChromeTraceJson()
/// perform the post-run merge over live and retired threads. Nesting is
/// captured per thread as a depth, so the collected events form one wall-time
/// tree per thread; in the Chrome trace viewer the trees reconstruct
/// themselves from interval containment.
///
/// Disabled by default: an inactive span costs a few relaxed atomic loads.
/// Spans activate when tracing, metrics recording, OR the flight recorder
/// (obs/flight_recorder.h) is on: with metrics enabled, every completed span
/// also accumulates into the timer metric `span.<name>`, which is how
/// per-stage wall times reach the metrics CSV even when no trace is being
/// captured; with the flight recorder enabled, completed spans land in its
/// bounded ring for failure-path postmortems.

/// One completed span. `name` points at static storage (the macro passes
/// string literals); events never own memory.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  /// Nesting depth within the owning thread (0 = top level).
  uint32_t depth = 0;
  /// Dense per-process thread index in registration order (not the OS tid).
  uint32_t thread_index = 0;
};

bool TracingEnabled();
/// Enabling (re)starts the trace epoch that Chrome-trace timestamps are
/// relative to.
void SetTracingEnabled(bool enabled);

/// Drops all recorded events (live and retired threads).
void ResetTracing();

/// Merged events from every thread, sorted by (thread_index, start, depth).
std::vector<TraceEvent> CollectTraceEvents();

/// \brief Writes the merged events in Chrome trace format (load via
/// chrome://tracing or https://ui.perfetto.dev): one complete ("ph":"X")
/// event per span with microsecond timestamps relative to the trace epoch.
[[nodiscard]] Status WriteChromeTraceJson(std::ostream* out);

/// \brief RAII span. Prefer the CAD_TRACE_SPAN macro, which compiles away
/// under -DCAD_OBS=OFF. `name` must outlive the trace (pass a literal).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // null when recording was off at entry
  bool tracing_ = false;        // latched at entry; metrics-only spans skip
                                // the per-thread event log entirely
  uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace cad

#ifndef CAD_OBS_DISABLED

#define CAD_OBS_CONCAT_INNER(a, b) a##b
#define CAD_OBS_CONCAT(a, b) CAD_OBS_CONCAT_INNER(a, b)
/// Opens a span named `name` (a string literal) until end of scope.
#define CAD_TRACE_SPAN(name) \
  ::cad::obs::TraceSpan CAD_OBS_CONCAT(_cad_trace_span_, __LINE__)(name)

#else  // CAD_OBS_DISABLED

#define CAD_TRACE_SPAN(name) \
  do {                       \
  } while (false)

#endif  // CAD_OBS_DISABLED

#endif  // CAD_OBS_TRACE_H_
