#include "obs/stats_reporter.h"

#include <ostream>
#include <utility>

#include "common/check.h"
#include "common/json_writer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cad {
namespace obs {

StatsReporter::StatsReporter(std::ostream* out, uint64_t every)
    : out_(out), every_(every), previous_(SnapshotMetrics()) {
  CAD_CHECK(out != nullptr);
  CAD_CHECK_GE(every, uint64_t{1}) << "stats_every must be >= 1";
}

Result<bool> StatsReporter::Tick() {
  ++ticks_;
  if (ticks_ % every_ != 0) return false;
  CAD_RETURN_NOT_OK(EmitRecord());
  return true;
}

Status StatsReporter::EmitRecord() {
  MetricsSnapshot current = SnapshotMetrics();
  const MetricsSnapshot delta = current.DiffSince(previous_);
  previous_ = std::move(current);

  JsonWriter json(out_);
  json.BeginObject();
  json.Key("v");
  json.Number(size_t{1});
  json.Key("seq");
  json.Number(static_cast<size_t>(records_));
  json.Key("window");
  json.Number(static_cast<size_t>(ticks_));

  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : delta.counters) {
    if (value == 0) continue;  // keep heartbeats compact
    json.Key(name);
    json.Number(static_cast<size_t>(value));
  }
  json.EndObject();

  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : delta.gauges) {
    json.Key(name);
    json.Number(value);
  }
  json.EndObject();

  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, data] : delta.histograms) {
    if (data.count == 0) continue;
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Number(static_cast<size_t>(data.count));
    json.Key("sum");
    json.Number(data.sum);
    json.Key("p50");
    json.Number(data.Quantile(0.5));
    json.Key("p90");
    json.Number(data.Quantile(0.9));
    json.Key("p99");
    json.Number(data.Quantile(0.99));
    json.Key("max");
    json.Number(data.max);
    json.EndObject();
  }
  json.EndObject();

  // The volatile wall-clock section. Keep this key LAST: the determinism
  // contract lets consumers strip it by truncating at `,"timer":`.
  json.Key("timer");
  json.BeginObject();
  json.Key("timers");
  json.BeginObject();
  for (const auto& [name, data] : delta.timers) {
    if (data.count == 0) continue;
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Number(static_cast<size_t>(data.count));
    json.Key("total_ms");
    json.Number(static_cast<double>(data.total_ns) / 1e6);
    json.EndObject();
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, data] : delta.timer_histograms) {
    if (data.count == 0) continue;
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Number(static_cast<size_t>(data.count));
    json.Key("p50_ms");
    json.Number(data.Quantile(0.5) / 1e6);
    json.Key("p90_ms");
    json.Number(data.Quantile(0.9) / 1e6);
    json.Key("p99_ms");
    json.Number(data.Quantile(0.99) / 1e6);
    json.Key("max_ms");
    json.Number(data.max / 1e6);
    json.EndObject();
  }
  json.EndObject();
  json.Key("peak_rss_bytes");
  json.Number(static_cast<size_t>(PeakRssBytes()));
  json.EndObject();  // timer

  json.EndObject();
  (*out_) << "\n";
  out_->flush();
  if (!out_->good()) return Status::IoError("heartbeat write failed");
  ++records_;
  return Status::OK();
}

uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB elsewhere
#endif
#else
  return 0;
#endif
}

}  // namespace obs
}  // namespace cad
