#ifndef CAD_OBS_STATS_REPORTER_H_
#define CAD_OBS_STATS_REPORTER_H_

#include <cstdint>
#include <iosfwd>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace cad {
namespace obs {

/// \brief Count-based heartbeat emitter for long-running monitors
/// (DESIGN.md §10).
///
/// A StatsReporter is ticked once per unit of work (a stream window, a
/// pipeline stage); every `every`-th tick it writes one line-delimited JSON
/// record to the configured stream: counter deltas since the previous
/// heartbeat, current gauges, histogram deltas with interpolated quantiles,
/// and a trailing volatile `"timer"` object (wall-time instruments plus the
/// process peak RSS).
///
/// Determinism contract (mirrors the metrics-CSV contract): emission is
/// count-based, never wall-clock-based, and every field outside the `"timer"`
/// key is byte-identical across same-seed runs at any thread count. The
/// `"timer"` key is always the LAST key of the record, so consumers strip the
/// volatile part by truncating the line at `,"timer":` (or by deleting the
/// key after parsing).
///
/// Record schema (one object per line, fixed key order):
/// \code
///   {"v":1,"seq":<heartbeat index>,"window":<tick count>,
///    "counters":{<name>:<delta>, ...},            // zero deltas omitted
///    "gauges":{<name>:<current value>, ...},
///    "histograms":{<name>:{"count":..,"sum":..,"p50":..,"p90":..,
///                          "p99":..,"max":..}, ...},  // interval deltas
///    "timer":{"timers":{<name>:{"count":..,"total_ms":..}, ...},
///             "histograms":{<name>:{"count":..,"p50_ms":..,"p90_ms":..,
///                                   "p99_ms":..,"max_ms":..}, ...},
///             "peak_rss_bytes":<n>}}
/// \endcode
class StatsReporter {
 public:
  /// Emits to `*out` (not owned; must outlive the reporter) every `every`
  /// ticks. `every` must be >= 1. The metrics baseline for the first
  /// heartbeat's deltas is taken here, so construct the reporter after
  /// enabling metrics and before the monitored work starts.
  StatsReporter(std::ostream* out, uint64_t every);

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// \brief Advances the work counter; on every `every`-th call snapshots the
  /// global metrics registry, emits one heartbeat line, and flushes. Returns
  /// true when a record was written, false otherwise; IoError if the sink
  /// rejected the write.
  [[nodiscard]] Result<bool> Tick();

  /// Ticks seen so far.
  uint64_t ticks() const { return ticks_; }
  /// Heartbeat records written so far.
  uint64_t records_emitted() const { return records_; }

 private:
  [[nodiscard]] Status EmitRecord();

  std::ostream* out_;
  uint64_t every_;
  uint64_t ticks_ = 0;
  uint64_t records_ = 0;
  /// Baseline for the next heartbeat's deltas.
  MetricsSnapshot previous_;
};

/// \brief Peak resident set size of this process in bytes (getrusage on
/// POSIX; 0 where unsupported). Schedule-dependent, so it is only ever
/// reported inside the heartbeat's volatile "timer" object.
uint64_t PeakRssBytes();

}  // namespace obs
}  // namespace cad

#endif  // CAD_OBS_STATS_REPORTER_H_
