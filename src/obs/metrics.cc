#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/csv_writer.h"
#include "common/json_writer.h"
#include "obs/trace.h"

namespace cad {
namespace obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Formats metric values for CSV/JSON field names: integers print without a
/// decimal point so bucket field names stay readable (bucket_le_1024).
std::string FormatBound(double bound) {
  if (std::isinf(bound)) return "inf";
  return std::to_string(static_cast<uint64_t>(bound));
}

}  // namespace

double Histogram::BucketUpperBound(size_t index) {
  CAD_CHECK(index < kNumBuckets);
  if (index == kNumFiniteBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(index));  // 2^index
}

size_t Histogram::BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // NaN and <= 1 land in the first bucket
  // Smallest i with value <= 2^i, i.e. ceil(log2(value)) for value > 1.
  const int exponent = std::ilogb(value);
  const double floor_pow = std::ldexp(1.0, exponent);
  const size_t index =
      static_cast<size_t>(exponent) + (value > floor_pow ? 1 : 0);
  return std::min(index, kNumFiniteBuckets);
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  sum_fixed_.fetch_add(static_cast<int64_t>(std::llround(value * kSumScale)),
                       std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Monotone CAS against the +-inf sentinels: deterministic for a fixed
  // multiset of observations regardless of interleaving.
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Sum() const {
  return static_cast<double>(sum_fixed_.load(std::memory_order_relaxed)) /
         kSumScale;
}

double Histogram::Min() const { return min_.load(std::memory_order_relaxed); }

double Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_fixed_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (const auto& [upper, bucket_count] : buckets) {
    const uint64_t next = cumulative + bucket_count;
    if (rank <= static_cast<double>(next) || next == count) {
      if (std::isinf(upper)) return max;  // overflow bucket: only max is known
      // Log2 buckets span (upper/2, upper]; the first spans [0, 1].
      const double lower = upper == 1.0 ? 0.0 : upper / 2.0;
      const double fraction =
          bucket_count == 0
              ? 1.0
              : (rank - static_cast<double>(cumulative)) /
                    static_cast<double>(bucket_count);
      const double value = lower + fraction * (upper - lower);
      return std::min(std::max(value, min), max);
    }
    cumulative = next;
  }
  return max;  // unreachable for a consistent snapshot
}

namespace {

/// Merge-walks two name-sorted vectors; `previous` may be missing names
/// (instruments registered after it was taken).
template <typename T, typename Diff>
std::vector<std::pair<std::string, T>> DiffSorted(
    const std::vector<std::pair<std::string, T>>& current,
    const std::vector<std::pair<std::string, T>>& previous, Diff diff) {
  std::vector<std::pair<std::string, T>> result;
  result.reserve(current.size());
  size_t p = 0;
  for (const auto& [name, value] : current) {
    while (p < previous.size() && previous[p].first < name) ++p;
    const T* before =
        (p < previous.size() && previous[p].first == name) ? &previous[p].second
                                                           : nullptr;
    result.emplace_back(name, diff(value, before));
  }
  return result;
}

uint64_t MonotoneDelta(uint64_t current, uint64_t previous) {
  CAD_DCHECK_GE(current, previous)
      << "metric went backwards between snapshots (mismatched registries or "
         "an interleaved Reset)";
  return current >= previous ? current - previous : 0;
}

HistogramData DiffHistogram(const HistogramData& current,
                            const HistogramData* previous) {
  if (previous == nullptr) return current;
  HistogramData delta;
  delta.count = MonotoneDelta(current.count, previous->count);
  delta.sum = current.sum - previous->sum;
  // Per-interval extrema are not recoverable from buckets: carry the
  // lifetime min/max (still valid bounds for every interval observation).
  delta.min = current.min;
  delta.max = current.max;
  size_t p = 0;
  for (const auto& [bound, bucket_count] : current.buckets) {
    while (p < previous->buckets.size() && previous->buckets[p].first < bound) {
      ++p;
    }
    const uint64_t before =
        (p < previous->buckets.size() && previous->buckets[p].first == bound)
            ? previous->buckets[p].second
            : 0;
    const uint64_t bucket_delta = MonotoneDelta(bucket_count, before);
    if (bucket_delta > 0) delta.buckets.emplace_back(bound, bucket_delta);
  }
  return delta;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::DiffSince(
    const MetricsSnapshot& previous) const {
  MetricsSnapshot delta;
  delta.counters = DiffSorted(
      counters, previous.counters, [](uint64_t value, const uint64_t* before) {
        return before == nullptr ? value : MonotoneDelta(value, *before);
      });
  // Gauges are last-write instruments; the interval delta is the value.
  delta.gauges = gauges;
  const auto diff_histogram = [](const HistogramData& value,
                                 const HistogramData* before) {
    return DiffHistogram(value, before);
  };
  delta.histograms = DiffSorted(histograms, previous.histograms,
                                diff_histogram);
  delta.timer_histograms = DiffSorted(timer_histograms,
                                      previous.timer_histograms,
                                      diff_histogram);
  delta.timers = DiffSorted(
      timers, previous.timers, [](const TimerData& value,
                                  const TimerData* before) {
        if (before == nullptr) return value;
        return TimerData{MonotoneDelta(value.count, before->count),
                         MonotoneDelta(value.total_ns, before->total_ns)};
      });
  return delta;
}

void MetricsRegistry::CheckKind(const std::string& name, Kind kind) {
  const auto [it, inserted] = kinds_.emplace(name, kind);
  CAD_CHECK(it->second == kind)
      << "metric '" << name << "' registered under two instrument kinds";
  (void)inserted;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  CheckKind(name, Kind::kCounter);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  CheckKind(name, Kind::kGauge);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  CheckKind(name, Kind::kHistogram);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

TimerMetric* MetricsRegistry::GetTimer(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  CheckKind(name, Kind::kTimer);
  std::unique_ptr<TimerMetric>& slot = timers_[name];
  if (!slot) slot = std::make_unique<TimerMetric>();
  return slot.get();
}

Histogram* MetricsRegistry::GetTimerHistogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  CheckKind(name, Kind::kTimerHistogram);
  std::unique_ptr<Histogram>& slot = timer_histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::Reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, histogram] : timer_histograms_) histogram->Reset();
  for (auto& [name, timer] : timers_) timer->Reset();
}

namespace {

HistogramData SnapshotHistogram(const Histogram& histogram) {
  HistogramData data;
  data.count = histogram.count();
  data.sum = histogram.Sum();
  data.min = histogram.Min();
  data.max = histogram.Max();
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t bucket_count = histogram.bucket_count(b);
    if (bucket_count == 0) continue;
    data.buckets.emplace_back(Histogram::BucketUpperBound(b), bucket_count);
  }
  return data;
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  // std::map iteration is already name-sorted.
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, SnapshotHistogram(*histogram));
  }
  for (const auto& [name, histogram] : timer_histograms_) {
    snapshot.timer_histograms.emplace_back(name, SnapshotHistogram(*histogram));
  }
  for (const auto& [name, timer] : timers_) {
    snapshot.timers.emplace_back(name,
                                 TimerData{timer->count(), timer->total_ns()});
  }
  return snapshot;
}

MetricsRegistry& GlobalMetrics() {
  // Intentionally leaked so exiting threads can still flush into it.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* PrefixedMetrics::GetCounter(const std::string& suffix) const {
  return GlobalMetrics().GetCounter(prefix_ + "." + suffix);
}

Gauge* PrefixedMetrics::GetGauge(const std::string& suffix) const {
  return GlobalMetrics().GetGauge(prefix_ + "." + suffix);
}

Histogram* PrefixedMetrics::GetHistogram(const std::string& suffix) const {
  return GlobalMetrics().GetHistogram(prefix_ + "." + suffix);
}

TimerMetric* PrefixedMetrics::GetTimer(const std::string& suffix) const {
  return GlobalMetrics().GetTimer(prefix_ + "." + suffix);
}

Histogram* PrefixedMetrics::GetTimerHistogram(
    const std::string& suffix) const {
  return GlobalMetrics().GetTimerHistogram(prefix_ + "." + suffix);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void ResetMetrics() { GlobalMetrics().Reset(); }

MetricsSnapshot SnapshotMetrics() { return GlobalMetrics().Snapshot(); }

Status WriteMetricsCsv(const MetricsSnapshot& snapshot, std::ostream* out) {
  CAD_CHECK(out != nullptr);
  CsvWriter writer(out, {"kind", "name", "field", "value"});
  for (const auto& [name, value] : snapshot.counters) {
    writer.WriteRow({"counter", name, "value", std::to_string(value)});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    writer.WriteRow({"gauge", name, "value", FormatDouble(value, 12)});
  }
  for (const auto& [name, data] : snapshot.histograms) {
    writer.WriteRow({"histogram", name, "count", std::to_string(data.count)});
    writer.WriteRow({"histogram", name, "sum", FormatDouble(data.sum, 12)});
    if (data.count > 0) {
      writer.WriteRow({"histogram", name, "min", FormatDouble(data.min, 12)});
      writer.WriteRow({"histogram", name, "max", FormatDouble(data.max, 12)});
    }
    for (const auto& [bound, bucket_count] : data.buckets) {
      writer.WriteRow({"histogram", name, "bucket_le_" + FormatBound(bound),
                       std::to_string(bucket_count)});
    }
  }
  for (const auto& [name, data] : snapshot.timers) {
    writer.WriteRow({"timer", name, "count", std::to_string(data.count)});
    writer.WriteRow({"timer", name, "total_ms",
                     FormatDouble(static_cast<double>(data.total_ns) / 1e6, 6)});
  }
  // Timer histograms record nanosecond durations; like plain timers they are
  // wall-clock-dependent, so they export under kind "timer" to stay out of
  // the deterministic non-timer row contract.
  for (const auto& [name, data] : snapshot.timer_histograms) {
    writer.WriteRow({"timer", name, "count", std::to_string(data.count)});
    writer.WriteRow({"timer", name, "total_ms",
                     FormatDouble(data.sum / 1e6, 6)});
    if (data.count > 0) {
      writer.WriteRow(
          {"timer", name, "p50_ms", FormatDouble(data.Quantile(0.5) / 1e6, 6)});
      writer.WriteRow(
          {"timer", name, "p90_ms", FormatDouble(data.Quantile(0.9) / 1e6, 6)});
      writer.WriteRow({"timer", name, "p99_ms",
                       FormatDouble(data.Quantile(0.99) / 1e6, 6)});
      writer.WriteRow({"timer", name, "max_ms",
                       FormatDouble(data.max / 1e6, 6)});
    }
  }
  if (!out->good()) return Status::IoError("metrics CSV write failed");
  return Status::OK();
}

Status WriteMetricsJson(const MetricsSnapshot& snapshot, std::ostream* out) {
  CAD_CHECK(out != nullptr);
  JsonWriter json(out);
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    json.Key(name);
    json.Number(static_cast<size_t>(value));
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    json.Key(name);
    json.Number(value);
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, data] : snapshot.histograms) {
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Number(static_cast<size_t>(data.count));
    json.Key("sum");
    json.Number(data.sum);
    if (data.count > 0) {
      json.Key("min");
      json.Number(data.min);
      json.Key("max");
      json.Number(data.max);
    }
    json.Key("buckets");
    json.BeginArray();
    for (const auto& [bound, bucket_count] : data.buckets) {
      json.BeginObject();
      json.Key("le");
      if (std::isinf(bound)) {
        json.String("inf");
      } else {
        json.Number(bound);
      }
      json.Key("count");
      json.Number(static_cast<size_t>(bucket_count));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.Key("timers");
  json.BeginObject();
  for (const auto& [name, data] : snapshot.timers) {
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Number(static_cast<size_t>(data.count));
    json.Key("total_ms");
    json.Number(static_cast<double>(data.total_ns) / 1e6);
    json.EndObject();
  }
  json.EndObject();
  json.Key("timer_histograms");
  json.BeginObject();
  for (const auto& [name, data] : snapshot.timer_histograms) {
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Number(static_cast<size_t>(data.count));
    json.Key("total_ms");
    json.Number(data.sum / 1e6);
    if (data.count > 0) {
      json.Key("p50_ms");
      json.Number(data.Quantile(0.5) / 1e6);
      json.Key("p90_ms");
      json.Number(data.Quantile(0.9) / 1e6);
      json.Key("p99_ms");
      json.Number(data.Quantile(0.99) / 1e6);
      json.Key("max_ms");
      json.Number(data.max / 1e6);
    }
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  (*out) << "\n";
  if (!out->good()) return Status::IoError("metrics JSON write failed");
  return Status::OK();
}


namespace {

/// ParallelFor instrumentation (common/parallel.h). common/ cannot call up
/// into obs/, so the hooks live here and are installed at static-init time;
/// metrics.cc is linked into anything that consumes metrics, so every
/// observable binary gets them.
void* ParallelCallBegin(size_t task_count) {
  CAD_METRIC_INC("parallel.calls");
  CAD_METRIC_ADD("parallel.tasks", task_count);
  if (!TracingEnabled() && !MetricsEnabled()) return nullptr;
  return new TraceSpan("parallel_for");
}

void ParallelCallEnd(void* cookie) { delete static_cast<TraceSpan*>(cookie); }

void ParallelTaskTimeNs(uint64_t nanos) {
  CAD_METRIC_TIME_NS("parallel.task", nanos);
}

const ParallelHooks kParallelHooks{&ParallelCallBegin, &ParallelCallEnd,
                                   &MetricsEnabled, &ParallelTaskTimeNs};

[[maybe_unused]] const bool g_parallel_hooks_installed = [] {
  SetParallelHooks(&kParallelHooks);
  return true;
}();

}  // namespace

}  // namespace obs
}  // namespace cad
