#ifndef CAD_OBS_FLIGHT_RECORDER_H_
#define CAD_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/status.h"

namespace cad {
namespace obs {

/// \brief Bounded lock-free ring of recent trace spans and point events
/// (DESIGN.md §10).
///
/// Long-running monitors cannot afford full-run tracing (the per-thread span
/// logs grow without bound), but when a window fails mid-stream the last few
/// hundred spans are exactly what a postmortem needs. The flight recorder
/// keeps a fixed-size ring of the most recent events; writers overwrite the
/// oldest slots and never block, so the steady-state cost is a handful of
/// relaxed atomic stores per span. Runtime-off by default (one relaxed load
/// per call site when disabled); compiled under the same CAD_OBS switch as
/// the rest of the layer.
///
/// When enabled, every TraceSpan (CAD_TRACE_SPAN) records itself into the
/// ring on destruction, and CAD_FLIGHT_NOTE records zero-duration point
/// events carrying one numeric payload (a window index, an input line
/// number). On failure, WriteFlightRecorderJson() dumps the surviving events
/// in record order.

/// One recovered ring entry. `name` points at static storage (call sites
/// pass string literals); `ticket` is the global record sequence number
/// (0-based), so gaps reveal overwritten history.
struct FlightEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  /// Point-event payload (CAD_FLIGHT_NOTE); 0 for spans.
  double value = 0.0;
  uint64_t ticket = 0;
};

/// \brief The ring itself. Thread-safe: writers claim slots with a single
/// fetch_add and publish via a per-slot sequence word (seqlock); readers
/// discard slots whose sequence changed mid-read. Every slot field is an
/// atomic, so concurrent overwrite is a stale-data problem (filtered by the
/// sequence check), never a data race.
class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 1024;

  /// Records one event; never blocks. `name` must outlive the recorder
  /// (pass a literal).
  void Record(const char* name, uint64_t start_ns, uint64_t end_ns,
              double value);

  /// Drops all recorded events and restarts the ticket sequence. Not safe
  /// against concurrent writers (callers quiesce first, as tests do).
  void Reset();

  /// \brief Recovers the surviving events, oldest first (ticket order).
  /// Slots being overwritten during collection are skipped, so a concurrent
  /// collect under-reports rather than returning torn entries.
  std::vector<FlightEvent> Collect() const;

  /// Total events ever recorded (>= Collect().size(); the difference is the
  /// overwritten/dropped count).
  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    /// 0 = never written / write in progress; ticket+1 once published.
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> end_ns{0};
    std::atomic<double> value{0.0};
  };

  Slot slots_[kCapacity];
  std::atomic<uint64_t> head_{0};
};

/// The process-wide ring used by CAD_FLIGHT_NOTE and TraceSpan.
FlightRecorder& GlobalFlightRecorder();

/// Runtime switch; disabled by default. Enabling does not clear the ring
/// (call ResetFlightRecorder() for a fresh epoch).
bool FlightRecorderEnabled();
void SetFlightRecorderEnabled(bool enabled);

/// Clears the global ring.
void ResetFlightRecorder();

/// Records a zero-duration point event at the current time into the global
/// ring (no-op when disabled). Prefer the CAD_FLIGHT_NOTE macro, which
/// compiles away under -DCAD_OBS=OFF.
void FlightNote(const char* name, double value);

/// Surviving events from the global ring, oldest first.
std::vector<FlightEvent> CollectFlightRecorder();

/// \brief Dumps the global ring as one JSON object:
/// {"total_recorded": N, "dropped": D, "events": [{"name", "start_ns",
/// "end_ns", "duration_ns", "value", "ticket"}, ...]} followed by a newline.
/// Written on failure paths, so it must not itself CHECK on odd state.
[[nodiscard]] Status WriteFlightRecorderJson(std::ostream* out);

}  // namespace obs
}  // namespace cad

#ifndef CAD_OBS_DISABLED

/// Records a named point event with one numeric payload when the flight
/// recorder is enabled. `name` must be a string literal.
#define CAD_FLIGHT_NOTE(name, value)                     \
  do {                                                   \
    if (::cad::obs::FlightRecorderEnabled()) {           \
      ::cad::obs::FlightNote(name,                       \
                             static_cast<double>(value)); \
    }                                                    \
  } while (false)

#else  // CAD_OBS_DISABLED

#define CAD_FLIGHT_NOTE(name, value) \
  do {                               \
    if (false) {                     \
      (void)(name);                  \
      (void)(value);                 \
    }                                \
  } while (false)

#endif  // CAD_OBS_DISABLED

#endif  // CAD_OBS_FLIGHT_RECORDER_H_
