#ifndef CAD_OBS_OBS_H_
#define CAD_OBS_OBS_H_

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/stats_reporter.h"
#include "obs/trace.h"

namespace cad {
namespace obs {

/// \brief Umbrella for the observability layer: include this from
/// instrumented code to get the CAD_METRIC_* and CAD_TRACE_SPAN macros.
///
/// Environment-driven setup for binaries without flag plumbing (examples,
/// CI): setting CAD_METRICS_CSV=<path> and/or CAD_TRACE_JSON=<path> before
/// launch enables the corresponding subsystem; FlushObservability() writes
/// the configured exports at the end of main.

/// Reads CAD_METRICS_CSV / CAD_TRACE_JSON from the environment and enables
/// metrics / tracing for each variable that is set and non-empty.
void InitObservabilityFromEnv();

/// Writes the exports configured by InitObservabilityFromEnv. A no-op OK
/// when neither variable was set.
[[nodiscard]] Status FlushObservability();

/// Test helper: clears and enables metrics on entry, restores the previous
/// enabled state on exit (recorded values are left in place for inspection).
class ScopedMetricsEnable {
 public:
  ScopedMetricsEnable() : previous_(MetricsEnabled()) {
    ResetMetrics();
    SetMetricsEnabled(true);
  }
  ~ScopedMetricsEnable() { SetMetricsEnabled(previous_); }

  ScopedMetricsEnable(const ScopedMetricsEnable&) = delete;
  ScopedMetricsEnable& operator=(const ScopedMetricsEnable&) = delete;

 private:
  bool previous_;
};

/// Test helper: clears and enables the flight recorder on entry, restores
/// the previous enabled state on exit (the ring is left for inspection).
class ScopedFlightRecorderEnable {
 public:
  ScopedFlightRecorderEnable() : previous_(FlightRecorderEnabled()) {
    ResetFlightRecorder();
    SetFlightRecorderEnabled(true);
  }
  ~ScopedFlightRecorderEnable() { SetFlightRecorderEnabled(previous_); }

  ScopedFlightRecorderEnable(const ScopedFlightRecorderEnable&) = delete;
  ScopedFlightRecorderEnable& operator=(const ScopedFlightRecorderEnable&) =
      delete;

 private:
  bool previous_;
};

/// Test helper: clears and enables tracing on entry, restores on exit.
class ScopedTracingEnable {
 public:
  ScopedTracingEnable() : previous_(TracingEnabled()) {
    ResetTracing();
    SetTracingEnabled(true);
  }
  ~ScopedTracingEnable() { SetTracingEnabled(previous_); }

  ScopedTracingEnable(const ScopedTracingEnable&) = delete;
  ScopedTracingEnable& operator=(const ScopedTracingEnable&) = delete;

 private:
  bool previous_;
};

}  // namespace obs
}  // namespace cad

#endif  // CAD_OBS_OBS_H_
