#include "obs/flight_recorder.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "common/json_writer.h"
#include "common/timer.h"

namespace cad {
namespace obs {

namespace {

std::atomic<bool> g_flight_recorder_enabled{false};

}  // namespace

void FlightRecorder::Record(const char* name, uint64_t start_ns,
                            uint64_t end_ns, double value) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % kCapacity];
  // Seqlock write: unpublish, write fields, publish with the new sequence.
  // Readers that observe different sequence words before/after their field
  // reads discard the slot, so field stores can all be relaxed.
  slot.seq.store(0, std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.end_ns.store(end_ns, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

void FlightRecorder::Reset() {
  for (Slot& slot : slots_) slot.seq.store(0, std::memory_order_relaxed);
  head_.store(0, std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRecorder::Collect() const {
  std::vector<FlightEvent> events;
  events.reserve(kCapacity);
  for (const Slot& slot : slots_) {
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before == 0) continue;  // empty or mid-write
    FlightEvent event;
    event.name = slot.name.load(std::memory_order_relaxed);
    event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    event.end_ns = slot.end_ns.load(std::memory_order_relaxed);
    event.value = slot.value.load(std::memory_order_relaxed);
    const uint64_t seq_after = slot.seq.load(std::memory_order_acquire);
    if (seq_after != seq_before) continue;  // overwritten while reading
    event.ticket = seq_before - 1;
    events.push_back(event);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.ticket < b.ticket;
            });
  return events;
}

FlightRecorder& GlobalFlightRecorder() {
  // Leaked so failure-path dumps work at any point of process shutdown.
  static FlightRecorder* recorder = new FlightRecorder;
  return *recorder;
}

bool FlightRecorderEnabled() {
  return g_flight_recorder_enabled.load(std::memory_order_relaxed);
}

void SetFlightRecorderEnabled(bool enabled) {
  g_flight_recorder_enabled.store(enabled, std::memory_order_relaxed);
}

void ResetFlightRecorder() { GlobalFlightRecorder().Reset(); }

void FlightNote(const char* name, double value) {
  if (!FlightRecorderEnabled()) return;
  const uint64_t now = Timer::NowNanos();
  GlobalFlightRecorder().Record(name, now, now, value);
}

std::vector<FlightEvent> CollectFlightRecorder() {
  return GlobalFlightRecorder().Collect();
}

Status WriteFlightRecorderJson(std::ostream* out) {
  CAD_CHECK(out != nullptr);
  const FlightRecorder& recorder = GlobalFlightRecorder();
  const std::vector<FlightEvent> events = recorder.Collect();
  const uint64_t total = recorder.total_recorded();
  const uint64_t dropped =
      total >= events.size() ? total - events.size() : 0;

  JsonWriter json(out);
  json.BeginObject();
  json.Key("total_recorded");
  json.Number(static_cast<size_t>(total));
  json.Key("dropped");
  json.Number(static_cast<size_t>(dropped));
  json.Key("events");
  json.BeginArray();
  for (const FlightEvent& event : events) {
    json.BeginObject();
    json.Key("name");
    json.String(event.name != nullptr ? event.name : "");
    json.Key("start_ns");
    json.Number(static_cast<size_t>(event.start_ns));
    json.Key("end_ns");
    json.Number(static_cast<size_t>(event.end_ns));
    json.Key("duration_ns");
    json.Number(static_cast<size_t>(
        event.end_ns >= event.start_ns ? event.end_ns - event.start_ns : 0));
    json.Key("value");
    json.Number(event.value);
    json.Key("ticket");
    json.Number(static_cast<size_t>(event.ticket));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  (*out) << "\n";
  if (!out->good()) return Status::IoError("flight recorder write failed");
  return Status::OK();
}

}  // namespace obs
}  // namespace cad
