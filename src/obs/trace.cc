#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <ostream>
#include <string>

#include "common/check.h"
#include "common/timer.h"
#include "common/json_writer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace cad {
namespace obs {

namespace {

/// Per-thread span buffer. The owning thread appends under `mutex` (always
/// uncontended except while a collector is reading); `depth` is touched only
/// by the owner.
struct ThreadLog {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  uint32_t thread_index = 0;
  uint32_t depth = 0;
};

/// Process-wide trace state. Lock order: TraceState::mutex before any
/// ThreadLog::mutex (collection and thread retirement both follow it).
struct TraceState {
  std::mutex mutex;
  std::vector<ThreadLog*> live;
  std::vector<TraceEvent> retired;
  std::atomic<uint32_t> next_thread_index{0};
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> epoch_ns{0};
};

TraceState& State() {
  // Leaked so thread_local destructors can flush into it at any point of
  // process shutdown.
  static TraceState* state = new TraceState;
  return *state;
}

/// Owns one ThreadLog for the calling thread; on thread exit the events are
/// merged into the retired list (the "post-run merge" for short-lived
/// ParallelFor workers).
class ThreadLogHandle {
 public:
  ThreadLogHandle() : log_(new ThreadLog) {
    TraceState& state = State();
    log_->thread_index =
        state.next_thread_index.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.live.push_back(log_);
  }

  ~ThreadLogHandle() {
    TraceState& state = State();
    const std::lock_guard<std::mutex> state_lock(state.mutex);
    {
      const std::lock_guard<std::mutex> log_lock(log_->mutex);
      state.retired.insert(state.retired.end(), log_->events.begin(),
                           log_->events.end());
    }
    state.live.erase(std::find(state.live.begin(), state.live.end(), log_));
    delete log_;
  }

  ThreadLog* log() { return log_; }

 private:
  ThreadLog* log_;
};

ThreadLog& LocalLog() {
  thread_local ThreadLogHandle handle;
  return *handle.log();
}

void SortEvents(std::vector<TraceEvent>* events) {
  std::sort(events->begin(), events->end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.thread_index != b.thread_index) {
                return a.thread_index < b.thread_index;
              }
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
}

}  // namespace

bool TracingEnabled() {
  return State().enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  TraceState& state = State();
  if (enabled && !state.enabled.load(std::memory_order_relaxed)) {
    state.epoch_ns.store(Timer::NowNanos(), std::memory_order_relaxed);
  }
  state.enabled.store(enabled, std::memory_order_relaxed);
}

void ResetTracing() {
  TraceState& state = State();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.retired.clear();
  for (ThreadLog* log : state.live) {
    const std::lock_guard<std::mutex> log_lock(log->mutex);
    log->events.clear();
  }
}

std::vector<TraceEvent> CollectTraceEvents() {
  TraceState& state = State();
  std::vector<TraceEvent> events;
  {
    const std::lock_guard<std::mutex> lock(state.mutex);
    events = state.retired;
    for (ThreadLog* log : state.live) {
      const std::lock_guard<std::mutex> log_lock(log->mutex);
      events.insert(events.end(), log->events.begin(), log->events.end());
    }
  }
  SortEvents(&events);
  return events;
}

Status WriteChromeTraceJson(std::ostream* out) {
  CAD_CHECK(out != nullptr);
  const std::vector<TraceEvent> events = CollectTraceEvents();
  const uint64_t epoch = State().epoch_ns.load(std::memory_order_relaxed);

  JsonWriter json(out);
  json.BeginObject();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("traceEvents");
  json.BeginArray();
  for (const TraceEvent& event : events) {
    const uint64_t start = event.start_ns >= epoch ? event.start_ns - epoch : 0;
    json.BeginObject();
    json.Key("name");
    json.String(event.name);
    json.Key("cat");
    json.String("cad");
    json.Key("ph");
    json.String("X");
    json.Key("ts");
    json.Number(static_cast<double>(start) / 1e3);
    json.Key("dur");
    json.Number(static_cast<double>(event.end_ns - event.start_ns) / 1e3);
    json.Key("pid");
    json.Number(size_t{0});
    json.Key("tid");
    json.Number(static_cast<size_t>(event.thread_index));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  (*out) << "\n";
  if (!out->good()) return Status::IoError("chrome trace write failed");
  return Status::OK();
}

TraceSpan::TraceSpan(const char* name) {
  tracing_ = TracingEnabled();
  if (!tracing_ && !MetricsEnabled() && !FlightRecorderEnabled()) return;
  name_ = name;
  if (tracing_) ++LocalLog().depth;
  start_ns_ = Timer::NowNanos();
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  const uint64_t end_ns = Timer::NowNanos();
  if (tracing_) {
    ThreadLog& log = LocalLog();
    --log.depth;
    const std::lock_guard<std::mutex> lock(log.mutex);
    log.events.push_back(
        TraceEvent{name_, start_ns_, end_ns, log.depth, log.thread_index});
  }
  // Bridge into the metrics layer so span wall times land in the CSV export
  // under kind "timer" whether or not a trace is being captured.
  if (MetricsEnabled()) {
    GlobalMetrics()
        .GetTimer(std::string("span.") + name_)
        ->AddNanos(end_ns - start_ns_);
  }
  // Feed the flight recorder's bounded ring so a failure dump shows the last
  // spans leading up to the error without full-run tracing.
  if (FlightRecorderEnabled()) {
    GlobalFlightRecorder().Record(name_, start_ns_, end_ns, 0.0);
  }
}

}  // namespace obs
}  // namespace cad
