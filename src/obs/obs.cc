#include "obs/obs.h"

#include <cstdlib>
#include <fstream>
#include <string>

namespace cad {
namespace obs {

namespace {

std::string& MetricsCsvPath() {
  static std::string* path = new std::string;
  return *path;
}

std::string& TraceJsonPath() {
  static std::string* path = new std::string;
  return *path;
}

}  // namespace

void InitObservabilityFromEnv() {
  const char* metrics_csv = std::getenv("CAD_METRICS_CSV");
  if (metrics_csv != nullptr && metrics_csv[0] != '\0') {
    MetricsCsvPath() = metrics_csv;
    SetMetricsEnabled(true);
  }
  const char* trace_json = std::getenv("CAD_TRACE_JSON");
  if (trace_json != nullptr && trace_json[0] != '\0') {
    TraceJsonPath() = trace_json;
    SetTracingEnabled(true);
  }
}

Status FlushObservability() {
  if (!MetricsCsvPath().empty()) {
    std::ofstream out(MetricsCsvPath());
    if (!out.is_open()) {
      return Status::IoError("cannot open CAD_METRICS_CSV path " +
                             MetricsCsvPath());
    }
    CAD_RETURN_NOT_OK(WriteMetricsCsv(SnapshotMetrics(), &out));
  }
  if (!TraceJsonPath().empty()) {
    std::ofstream out(TraceJsonPath());
    if (!out.is_open()) {
      return Status::IoError("cannot open CAD_TRACE_JSON path " +
                             TraceJsonPath());
    }
    CAD_RETURN_NOT_OK(WriteChromeTraceJson(&out));
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace cad
