#ifndef CAD_OBS_METRICS_H_
#define CAD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cad {
namespace obs {

/// \brief Dependency-free metrics layer (DESIGN.md §5).
///
/// Four instrument kinds, all thread-safe and near-zero-cost when disabled
/// (one relaxed atomic load per call site, see the CAD_METRIC_* macros):
///  - Counter: monotonically increasing uint64. Deterministic across thread
///    counts and runs (integer addition commutes).
///  - Gauge: last-written double. Only write values that are themselves
///    deterministic (residuals, shifts) — never wall-clock durations, which
///    belong in TimerMetric so exports can separate reproducible rows.
///  - Histogram: fixed log2-spaced buckets plus count/sum/min/max. The sum
///    is accumulated in 1/1024 fixed point so that concurrent observation
///    order cannot perturb the exported bytes (exact for integral values
///    such as iteration counts and nanosecond durations).
///  - TimerMetric: count + total nanoseconds of wall time. Exported under
///    kind "timer" so deterministic diffing can filter it out
///    (`grep -v '^timer' metrics.csv` is byte-stable across runs).
///  - Timer histogram (GetTimerHistogram / CAD_METRIC_TIME_HIST_NS): a
///    Histogram whose observations are nanosecond durations, so quantiles
///    (p50/p90/p99) of per-window latency are computable mid-run. Exported
///    under kind "timer" — wall time stays on the volatile side of the
///    determinism contract.
///
/// Exports are sorted by instrument name, so two identical workloads produce
/// byte-identical CSV/JSON regardless of registration or scheduling order.

class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Wall-time accumulator: total nanoseconds + number of intervals.
class TimerMetric {
 public:
  void AddNanos(uint64_t nanos) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(nanos, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t total_ns() const { return total_ns_.load(std::memory_order_relaxed); }
  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
};

/// \brief Histogram over fixed log-spaced buckets.
///
/// Finite bucket i (0-based) has upper bound 2^i; values <= 1 land in bucket
/// 0, values above 2^(kNumFiniteBuckets-1) land in the overflow bucket. The
/// bounds cover both iteration counts (1..10^6) and nanosecond durations
/// (10^2..10^11) without configuration.
class Histogram {
 public:
  /// Finite buckets with upper bounds 2^0 .. 2^39 (~5.5e11); index
  /// kNumFiniteBuckets is the +inf overflow bucket.
  static constexpr size_t kNumFiniteBuckets = 40;
  static constexpr size_t kNumBuckets = kNumFiniteBuckets + 1;
  /// Fixed-point scale for the order-independent sum (binary, so integral
  /// observations accumulate exactly).
  static constexpr double kSumScale = 1024.0;

  /// Upper bound of bucket `index`; +inf for the overflow bucket.
  static double BucketUpperBound(size_t index);
  /// Index of the bucket `value` falls into (value <= upper bound).
  static size_t BucketIndex(double value);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  /// Sum of observed values, rounded to 1/1024 per observation.
  double Sum() const;
  double Min() const;  // +inf when empty
  double Max() const;  // -inf when empty
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_fixed_{0};
  // Sentinel-initialized so concurrent first observations need no special
  // case: every update is a plain monotone CAS.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Exported view of one histogram.
struct HistogramData {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// (upper bound, count) for every non-empty bucket, in bound order. The
  /// overflow bucket reports an upper bound of +inf.
  std::vector<std::pair<double, uint64_t>> buckets;

  /// \brief Interpolated quantile estimate from the bucket counts
  /// (DESIGN.md §10). `q` is clamped to [0, 1]; an empty histogram returns
  /// NaN. The target rank q*count is located in the cumulative bucket
  /// counts and linearly interpolated across that bucket's [lower, upper)
  /// span (lower = upper/2 for log2 buckets, 0 for the first); the result
  /// is clamped into [min, max], so a single-sample histogram reports the
  /// exact observation and ranks landing in the +inf overflow bucket
  /// report max. Deterministic given identical bucket counts.
  double Quantile(double q) const;
};

struct TimerData {
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

/// \brief Point-in-time export of a registry, sorted by name within each
/// instrument kind. Byte-identical exports for identical workloads.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;
  std::vector<std::pair<std::string, TimerData>> timers;
  /// Histograms of wall-time observations (CAD_METRIC_TIME_HIST_NS).
  /// Exported under CSV kind "timer" so the determinism contract's
  /// `grep -v '^timer'` filter strips them like plain timers.
  std::vector<std::pair<std::string, HistogramData>> timer_histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           timers.empty() && timer_histograms.empty();
  }

  /// \brief Delta view since `previous` (taken earlier from the same
  /// registry): counters, timers, and histogram counts/sums/buckets become
  /// differences, so rates over the interval fall out directly. Rules:
  ///  - Counters/timers: current minus previous. Registered instruments are
  ///    monotone, so a current value below the previous one is a caller bug
  ///    (snapshots from different registries, or a Reset in between) —
  ///    CAD_DCHECK fires, release builds clamp the delta to 0.
  ///  - Instruments absent from `previous` (registered in between) report
  ///    their full current value.
  ///  - Gauges are last-write instruments: the delta carries the current
  ///    value unchanged.
  ///  - Histogram min/max cannot be recovered per interval from buckets, so
  ///    the delta carries the lifetime min/max; zero-delta buckets are
  ///    omitted. Quantile() on a delta therefore interpolates the
  ///    interval's observations, clamped to lifetime extrema.
  /// Entries whose delta is zero are kept (callers filter as needed).
  MetricsSnapshot DiffSince(const MetricsSnapshot& previous) const;
};

/// \brief Owns instruments by name. Handles returned by the Get* methods are
/// valid for the registry's lifetime (the global registry never dies).
/// Registering one name under two different kinds is a CHECK failure.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  TimerMetric* GetTimer(const std::string& name);
  /// A histogram of wall-time observations (nanoseconds). Same storage as
  /// GetHistogram but exported under CSV kind "timer": durations may vary
  /// between runs, so they must live on the volatile side of the
  /// determinism contract while still supporting Quantile().
  Histogram* GetTimerHistogram(const std::string& name);

  /// Zeroes every registered instrument (handles stay valid).
  void Reset();

  MetricsSnapshot Snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kTimer, kTimerHistogram };
  void CheckKind(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<TimerMetric>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>> timer_histograms_;
};

/// The process-wide registry used by the CAD_METRIC_* macros.
MetricsRegistry& GlobalMetrics();

/// \brief Handle factory for per-entity instrument families (the
/// multi-tenant server's `tenant.<name>.` prefixes, DESIGN.md §13): binds a
/// prefix once and resolves `<prefix>.<suffix>` instruments in the global
/// registry. The CAD_METRIC_* macros cache one static handle per call site
/// and so cannot vary the name at runtime; this is the sanctioned path for
/// dynamic names. Handles come from the same registry, so prefixed rows
/// appear in the same sorted exports and inherit the determinism contract
/// of their kind. Resolution takes the registry lock — resolve handles once
/// per entity and bump those, not per event.
class PrefixedMetrics {
 public:
  explicit PrefixedMetrics(std::string prefix) : prefix_(std::move(prefix)) {}

  Counter* GetCounter(const std::string& suffix) const;
  Gauge* GetGauge(const std::string& suffix) const;
  Histogram* GetHistogram(const std::string& suffix) const;
  TimerMetric* GetTimer(const std::string& suffix) const;
  Histogram* GetTimerHistogram(const std::string& suffix) const;

  const std::string& prefix() const { return prefix_; }

 private:
  std::string prefix_;
};

/// Runtime switch for the CAD_METRIC_* macros; disabled by default so
/// instrumented hot paths cost one relaxed atomic load.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Zeroes the global registry.
void ResetMetrics();

/// Snapshot of the global registry (sorted, deterministic).
MetricsSnapshot SnapshotMetrics();

/// \brief Writes a snapshot as CSV with header `kind,name,field,value`.
/// Rows are emitted counters, gauges, histograms, then timers and timer
/// histograms (the latter two under kind "timer", with p50/p90/p99/max
/// quantile fields in milliseconds), each block sorted by name; histogram
/// buckets appear as `bucket_le_<bound>` fields in bound order (empty
/// buckets omitted). All rows except kind "timer" are byte-identical across
/// reruns of a deterministic workload.
[[nodiscard]] Status WriteMetricsCsv(const MetricsSnapshot& snapshot,
                                     std::ostream* out);

/// \brief Writes a snapshot as one JSON object
/// {counters: {...}, gauges: {...}, histograms: {...}, timers: {...}} with
/// sorted keys.
[[nodiscard]] Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                                      std::ostream* out);

}  // namespace obs
}  // namespace cad

// --- Instrumentation macros ------------------------------------------------
//
// Each macro checks the runtime switch first and resolves its instrument
// handle once per call site (function-local static), so the disabled cost is
// a relaxed load + branch and the enabled steady-state cost is one atomic
// RMW. `name` must be a string literal (or other static-storage string).
// Building with -DCAD_OBS=OFF (CMake) defines CAD_OBS_DISABLED and compiles
// every call site away entirely.

#ifndef CAD_OBS_DISABLED

#define CAD_METRIC_ADD(name, delta)                                     \
  do {                                                                  \
    if (::cad::obs::MetricsEnabled()) {                                 \
      static ::cad::obs::Counter* _cad_metric_handle =                  \
          ::cad::obs::GlobalMetrics().GetCounter(name);                 \
      _cad_metric_handle->Add(static_cast<uint64_t>(delta));            \
    }                                                                   \
  } while (false)

#define CAD_METRIC_INC(name) CAD_METRIC_ADD(name, 1)

#define CAD_METRIC_SET(name, value)                                     \
  do {                                                                  \
    if (::cad::obs::MetricsEnabled()) {                                 \
      static ::cad::obs::Gauge* _cad_metric_handle =                    \
          ::cad::obs::GlobalMetrics().GetGauge(name);                   \
      _cad_metric_handle->Set(static_cast<double>(value));              \
    }                                                                   \
  } while (false)

#define CAD_METRIC_OBSERVE(name, value)                                 \
  do {                                                                  \
    if (::cad::obs::MetricsEnabled()) {                                 \
      static ::cad::obs::Histogram* _cad_metric_handle =                \
          ::cad::obs::GlobalMetrics().GetHistogram(name);               \
      _cad_metric_handle->Observe(static_cast<double>(value));          \
    }                                                                   \
  } while (false)

#define CAD_METRIC_TIME_NS(name, nanos)                                 \
  do {                                                                  \
    if (::cad::obs::MetricsEnabled()) {                                 \
      static ::cad::obs::TimerMetric* _cad_metric_handle =              \
          ::cad::obs::GlobalMetrics().GetTimer(name);                   \
      _cad_metric_handle->AddNanos(static_cast<uint64_t>(nanos));       \
    }                                                                   \
  } while (false)

#define CAD_METRIC_TIME_HIST_NS(name, nanos)                            \
  do {                                                                  \
    if (::cad::obs::MetricsEnabled()) {                                 \
      static ::cad::obs::Histogram* _cad_metric_handle =                \
          ::cad::obs::GlobalMetrics().GetTimerHistogram(name);          \
      _cad_metric_handle->Observe(static_cast<double>(nanos));          \
    }                                                                   \
  } while (false)

#else  // CAD_OBS_DISABLED

#define CAD_METRIC_ADD(name, delta) \
  do {                              \
    if (false) {                    \
      (void)(name);                 \
      (void)(delta);                \
    }                               \
  } while (false)
#define CAD_METRIC_INC(name) CAD_METRIC_ADD(name, 1)
#define CAD_METRIC_SET(name, value) CAD_METRIC_ADD(name, value)
#define CAD_METRIC_OBSERVE(name, value) CAD_METRIC_ADD(name, value)
#define CAD_METRIC_TIME_NS(name, nanos) CAD_METRIC_ADD(name, nanos)
#define CAD_METRIC_TIME_HIST_NS(name, nanos) CAD_METRIC_ADD(name, nanos)

#endif  // CAD_OBS_DISABLED

#endif  // CAD_OBS_METRICS_H_
