#ifndef CAD_CORE_EDGE_SCORES_H_
#define CAD_CORE_EDGE_SCORES_H_

#include <vector>

#include "commute/commute_time.h"
#include "graph/graph.h"

namespace cad {

/// \brief Which per-edge anomaly score to compute for a transition.
///
/// The paper defines CAD's score and two degenerate variants used as
/// baselines (§3.4), plus we add the additive fusion for the ablation bench.
enum class EdgeScoreKind {
  /// dE(i,j) = |dA(i,j)| * |dc(i,j)| — the CAD score (paper §2.5).
  kCad,
  /// dE(i,j) = |dA(i,j)| — adjacency change only (ADJ baseline).
  kAdj,
  /// dE(i,j) = |dc(i,j)| — commute-time change only (COM baseline).
  kCom,
  /// dE(i,j) = |dA|/max|dA| + |dc|/max|dc| — normalized additive fusion
  /// (ablation only; not in the paper).
  kSum,
};

const char* EdgeScoreKindToString(EdgeScoreKind kind);

/// \brief One scored node pair within a transition.
struct ScoredEdge {
  NodePair pair;
  /// The anomaly score dE_t(e) for the selected EdgeScoreKind.
  double score = 0.0;
  /// A_{t+1}(i,j) - A_t(i,j).
  double weight_delta = 0.0;
  /// c_{t+1}(i,j) - c_t(i,j).
  double commute_delta = 0.0;
};

/// \brief All scores for one transition t -> t+1.
struct TransitionScores {
  /// Scored pairs over the union of edge supports of G_t and G_{t+1}
  /// (every pair that could have a nonzero score), sorted by score
  /// descending, ties broken by (u, v) for determinism.
  std::vector<ScoredEdge> edges;
  /// Node scores dN_t(i) = sum_j dE_t(e_{i,j}) (paper §3.5.1).
  std::vector<double> node_scores;
  /// Sum of all edge scores (the value compared against delta when S is
  /// empty).
  double total_score = 0.0;
};

/// \brief Computes per-edge anomaly scores for the transition between
/// `before` and `after`, using the given commute-time oracles for the two
/// snapshots.
///
/// Only pairs in the union of the two snapshots' edge supports are scored;
/// every other pair has dA = 0 and hence score 0 for kCad/kAdj (and is not
/// part of the COM support by the paper's O(m log m) argument, §3.3).
/// For kCom the same support is used — this matches the paper's runtime
/// analysis, which treats the number of nonzero score entries as O(m).
TransitionScores ComputeTransitionScores(const WeightedGraph& before,
                                         const WeightedGraph& after,
                                         const CommuteTimeOracle& oracle_before,
                                         const CommuteTimeOracle& oracle_after,
                                         EdgeScoreKind kind);

/// \brief Selects the anomalous edge set E_t for threshold `delta`:
/// the smallest prefix of the (descending) score order such that the scores
/// of all *remaining* pairs sum to < delta (paper §2.4.1). Returns indices
/// into `scores.edges`.
std::vector<size_t> SelectAnomalousEdges(const TransitionScores& scores,
                                         double delta);

/// \brief Union of the endpoints of the selected edges, ascending. This is
/// the anomalous node set V_t.
std::vector<NodeId> EndpointUnion(const TransitionScores& scores,
                                  const std::vector<size_t>& edge_indices);

}  // namespace cad

#endif  // CAD_CORE_EDGE_SCORES_H_
